// Package repro_test benchmarks the regeneration of every table and
// figure in the paper's evaluation section (one Benchmark per artifact),
// plus the headline end-to-end campaign and the §2.1.2 worker-scaling
// ablation.  Analysis benchmarks share a single paper-scale campaign
// (5 × 100 × 7 = 3500 surrogate trainings) built once per run.
package repro_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/ddp"
	"repro/internal/experiments"
)

var (
	benchOnce sync.Once
	benchCamp *experiments.Campaign
	benchErr  error
)

func paperCampaign(b *testing.B) *experiments.Campaign {
	b.Helper()
	benchOnce.Do(func() {
		benchCamp, benchErr = experiments.RunPaperCampaign(context.Background(), experiments.PaperOptions())
	})
	if benchErr != nil {
		b.Fatalf("campaign: %v", benchErr)
	}
	return benchCamp
}

// BenchmarkPaperCampaign runs the paper's full experiment — 5 independent
// NSGA-II deployments, 3500 simulated DeePMD trainings — per iteration.
func BenchmarkPaperCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.PaperOptions()
		opts.Seed = int64(i) + 1
		if _, err := experiments.RunPaperCampaign(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Representation regenerates Table 1 (initialization
// ranges and mutation standard deviations).
func BenchmarkTable1Representation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.RenderTable1(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1Convergence regenerates Fig. 1's per-generation loss level
// plots from the shared campaign.
func BenchmarkFig1Convergence(b *testing.B) {
	c := paperCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := experiments.Fig1(c)
		if len(f.Hists) != 7 {
			b.Fatal("wrong generation count")
		}
		if s := f.Render(); len(s) == 0 {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkFig2ParetoFront regenerates Fig. 2's final Pareto frontier.
func BenchmarkFig2ParetoFront(b *testing.B) {
	c := paperCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Fig2(c); len(pts) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

// BenchmarkTable2FrontierValues regenerates Table 2 (frontier force and
// energy values).
func BenchmarkTable2FrontierValues(b *testing.B) {
	c := paperCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := experiments.RenderTable2(c); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig3ParallelCoordinates regenerates Fig. 3's parallel-
// coordinates dataset and the §3.2 insight extraction.
func BenchmarkFig3ParallelCoordinates(b *testing.B) {
	c := paperCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := experiments.Fig3(c)
		ins := experiments.AnalyzeFig3(c)
		if len(p.Rows) == 0 || ins.Total == 0 {
			b.Fatal("empty analysis")
		}
	}
}

// BenchmarkTable3SelectedSolutions regenerates Table 3 (lowest force,
// lowest energy, lowest runtime among chemically accurate solutions).
func BenchmarkTable3SelectedSolutions(b *testing.B) {
	c := paperCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailureAccounting regenerates the §3.2 failed-training counts.
func BenchmarkFailureAccounting(b *testing.B) {
	c := paperCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Failures(c)
		if r.TotalEvaluations != 3500 {
			b.Fatal("wrong evaluation count")
		}
	}
}

// BenchmarkDDPWorkerScaling measures the allreduce cost as the simulated
// GPU count grows — the ablation behind the §2.1.2/§2.2.1 distributed-
// training discussion.
func BenchmarkDDPWorkerScaling(b *testing.B) {
	const params = 100000
	for _, workers := range []int{1, 2, 6, 12} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			buffers := make([][]float64, workers)
			for w := range buffers {
				buffers[w] = make([]float64, params)
				for i := range buffers[w] {
					buffers[w][i] = float64(w + i)
				}
			}
			b.SetBytes(int64(8 * params * workers))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ddp.AllReduceMean(buffers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return fmt.Sprintf("%s=%d", prefix, n)
}
