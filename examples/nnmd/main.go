// NNMD: the full deep-potential lifecycle in one run — generate
// reference data with classical MD (the CP2K substitute), train a
// DeepPot-SE model on it, freeze the model to disk, reload it, and run
// molecular dynamics *under the learned potential*, comparing its
// predictions against the reference along the trajectory.  This is the
// application the paper's hyperparameter tuning exists to serve (§1).
//
//	go run ./examples/nnmd
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/deepmd"
	"repro/internal/descriptor"
	"repro/internal/md"
	"repro/internal/nn"
)

func main() {
	// 1. Reference data from the classical molten-salt potential.
	rng := rand.New(rand.NewSource(1))
	species := []md.Species{
		md.Al, md.Al, md.K, md.K,
		md.Cl, md.Cl, md.Cl, md.Cl, md.Cl, md.Cl, md.Cl, md.Cl,
	}
	refPot := md.NewPaperBMH(4.5)
	fmt.Println("1. generating reference trajectory (classical BMH+Coulomb)…")
	data := dataset.Generate(rng, species, 8.5, 498, refPot, 0.5, 400, 10, 60)
	data.Shuffle(rng)
	train, val := data.Split(0.25)

	// 2. Train a small DeepPot-SE model.
	fmt.Println("2. training a DeepPot-SE potential on the reference data…")
	model, err := deepmd.NewModel(rand.New(rand.NewSource(2)), deepmd.ModelConfig{
		Descriptor: descriptor.Config{
			RCut: 4.2, RCutSmth: 2.0,
			EmbeddingSizes: []int{8, 16}, AxisNeurons: 4,
			Activation: nn.Tanh, NumSpecies: 3, NeighborNorm: 8,
		},
		FittingSizes:      []int{24},
		FittingActivation: nn.Tanh,
		NumSpecies:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := deepmd.Train(context.Background(), model, train, val, deepmd.TrainConfig{
		Steps: 2500, BatchSize: 2, StartLR: 0.005, StopLR: 1e-4,
		ScaleByWorker: "none", Workers: 1, DispFreq: 500, ValFrames: 8, Seed: 3,
	}, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   final validation: rmse_e=%.4g eV/atom, rmse_f=%.4g eV/Å\n",
		res.FinalEnergyRMSE, res.FinalForceRMSE)

	// 3. Freeze and reload (the `dp freeze` step).
	dir, err := os.MkdirTemp("", "nnmd-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	frozen := filepath.Join(dir, "frozen.model")
	if err := model.SaveFile(frozen); err != nil {
		log.Fatal(err)
	}
	loaded, err := deepmd.LoadModelFile(frozen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. froze and reloaded model (%d parameters) at %s\n", loaded.ParamCount(), frozen)

	// 4. MD under the learned potential, checking against the reference.
	fmt.Println("4. running MD under the learned potential…")
	sys := md.NewSystem(rand.New(rand.NewSource(4)), species, 8.5, 400)
	nnPot := deepmd.NewMDPotential(loaded)
	it := md.NewIntegrator(nnPot, md.Langevin{T: 498, Gamma: 0.05, Rng: rand.New(rand.NewSource(5))}, 0.5)
	nnPot.Compute(sys)

	refSys := &md.System{Box: sys.Box, Species: sys.Species,
		Pos: make([]md.Vec3, sys.N()), Vel: make([]md.Vec3, sys.N()), Frc: make([]md.Vec3, sys.N())}
	var sumAbs, maxAbs float64
	var nSamples int
	it.Run(sys, 400, 100, func(step int) {
		// Evaluate the reference potential on the NN-driven configuration.
		copy(refSys.Pos, sys.Pos)
		refPot.Compute(refSys)
		diff := math.Abs(sys.PotEng-refSys.PotEng) / float64(sys.N())
		sumAbs += diff
		if diff > maxAbs {
			maxAbs = diff
		}
		nSamples++
		fmt.Printf("   step %4d: T=%6.1f K  E_nn=%9.3f eV  E_ref=%9.3f eV  |ΔE|/atom=%.4f\n",
			step, sys.Temperature(), sys.PotEng, refSys.PotEng, diff)
	})
	fmt.Printf("\nlearned-vs-reference energy along the NN trajectory: mean %.4f, max %.4f eV/atom\n",
		sumAbs/float64(nSamples), maxAbs)
	fmt.Println("(a briefly trained toy model drifts out of distribution as force errors")
	fmt.Println(" compound along the trajectory — exactly the failure mode §3.2 warns about,")
	fmt.Println(" and why the Summit campaign pushes validation error below 0.004 eV/atom)")
}
