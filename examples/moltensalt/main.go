// Moltensalt: a reduced-scale version of the paper's experiment — tune
// the seven DeePMD training hyperparameters for the molten AlCl₃/KCl
// potential with NSGA-II against the Summit-training surrogate, then
// report the Pareto frontier and the chemically accurate picks of
// Table 3.
//
//	go run ./examples/moltensalt
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	opts := core.DefaultCampaign()
	// Reduced scale: 2 runs × 40 individuals × 5 rounds = 400 simulated
	// trainings (the paper ran 5 × 100 × 7 = 3500 on Summit).
	opts.Runs, opts.PopSize, opts.Generations = 2, 40, 4

	fmt.Printf("tuning %d hyperparameters over %d simulated DeePMD trainings…\n",
		len(core.PaperBounds()), opts.Runs*opts.PopSize*(opts.Generations+1))
	c, err := core.RunCampaign(context.Background(), opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfailures: %d of %d trainings (none should appear in the last generation: %d)\n",
		c.Result.TotalFailures(), c.Result.TotalEvaluations(), c.Result.LastGenFailures())

	fmt.Println("\nPareto frontier (energy eV/atom, force eV/Å):")
	for i, p := range experiments.Fig2(c) {
		fmt.Printf("  %2d  energy=%.4f  force=%.4f  runtime=%.0f min  %s\n",
			i+1, p.EnergyError, p.ForceError, p.Runtime.Minutes(), p.Params)
	}

	t3, err := experiments.Table3(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected chemically accurate solutions (Table 3):")
	fmt.Printf("  lowest force:   force=%.4f energy=%.4f  %s\n",
		t3.LowestForce.ForceError, t3.LowestForce.EnergyError, t3.LowestForce.Params)
	fmt.Printf("  lowest energy:  force=%.4f energy=%.4f  %s\n",
		t3.LowestEnergy.ForceError, t3.LowestEnergy.EnergyError, t3.LowestEnergy.Params)
	fmt.Printf("  lowest runtime: %.0f min  %s\n",
		t3.LowestRuntime.Runtime.Minutes(), t3.LowestRuntime.Params)
}
