// Realtraining: the complete pipeline with no surrogate — generate
// molten-salt reference data with the classical MD engine (the CP2K
// substitute), then run the paper's §2.2.4 evaluation workflow end to
// end for two hyperparameter candidates: decode genome → UUID run
// directory → input.json template substitution → real DeepPot-SE
// training → fitness from lcurve.out.  Everything is scaled down so it
// finishes in seconds on a laptop.
//
//	go run ./examples/realtraining
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/hpo"
	"repro/internal/md"
)

func main() {
	// 1. Reference data: a 20-atom molten AlCl₃/KCl mixture at 498 K.
	rng := rand.New(rand.NewSource(1))
	species := []md.Species{}
	for i := 0; i < 4; i++ {
		species = append(species, md.Al)
	}
	for i := 0; i < 2; i++ {
		species = append(species, md.K)
	}
	for i := 0; i < 14; i++ {
		species = append(species, md.Cl)
	}
	pot := md.NewPaperBMH(4.5)
	fmt.Println("generating reference trajectory with the classical MD engine…")
	data := dataset.Generate(rng, species, 9.0, 498, pot, 0.5, 300, 10, 40)
	data.Shuffle(rng)
	train, val := data.Split(0.25) // paper: 25% withheld for validation
	fmt.Printf("dataset: %d training / %d validation frames, %d atoms\n",
		train.Len(), val.Len(), train.NAtoms())

	// 2. The evaluation workflow with the real in-process trainer.
	workDir, err := os.MkdirTemp("", "realtraining-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)
	trainer := &hpo.RealTrainer{Train: train, Val: val, Workers: 2, ValFrames: 5}
	evaluator := &hpo.WorkflowEvaluator{
		WorkDir: workDir,
		// Shrink the fixed network sizes so training takes seconds: the
		// paper's {25,50,100}/{240,240,240} become {6,12}/{16}.
		Template: strings.NewReplacer(
			"[25, 50, 100]", "[6, 12]",
			"[240, 240, 240]", "[16]",
		).Replace(hpo.DefaultInputTemplate),
		Steps: 500, DispFreq: 100, Seed: 3,
		TrainDir: "unused-in-process", ValDir: "unused-in-process",
		Trainer: hpo.TrainerFunc(trainer.TrainRun),
	}

	// 3. Evaluate two candidates: a sensible one and an undertrained one.
	candidates := []hpo.HParams{
		{StartLR: 0.005, StopLR: 1e-4, RCut: 4.0, RCutSmth: 2.0,
			ScaleByWorker: "none", DescActiv: "tanh", FittingActiv: "tanh"},
		{StartLR: 5e-7, StopLR: 4e-7, RCut: 4.0, RCutSmth: 2.0,
			ScaleByWorker: "none", DescActiv: "tanh", FittingActiv: "tanh"},
	}
	for i, h := range candidates {
		g, err := hpo.Encode(h)
		if err != nil {
			log.Fatal(err)
		}
		fit, err := evaluator.Evaluate(context.Background(), g)
		if err != nil {
			log.Fatalf("candidate %d: %v", i+1, err)
		}
		fmt.Printf("candidate %d (%s):\n  rmse_e_val=%.4g eV/atom  rmse_f_val=%.4g eV/Å\n",
			i+1, h, fit[0], fit[1])
	}
	fmt.Println("\nthe well-tuned candidate should show clearly lower losses —")
	fmt.Println("the same signal the 3500-training Summit campaign optimizes at scale.")
}
