// Distributed: run the hyperparameter search through the Dask-style
// scheduler/worker cluster over local TCP, including a mid-campaign
// worker failure — demonstrating the paper's operational choice of
// disabling worker "nannies" and letting the scheduler reassign tasks
// from dead workers (§2.2.5).
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/surrogate"
)

func main() {
	// The surrogate plays the role of the two-hour DeePMD training each
	// Summit node performed; a small delay makes the fan-out visible.
	inner := surrogate.NewEvaluator(surrogate.Config{Seed: 7})
	handler := cluster.EvalHandler(evalWithDelay{inner})

	lc, err := cluster.NewLocalCluster(8, handler, 2*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()
	fmt.Printf("scheduler on %s with %d workers\n", lc.Scheduler.Addr(), len(lc.Workers))

	// Kill two workers mid-campaign: their in-flight evaluations must be
	// reassigned, not lost.
	go func() {
		time.Sleep(150 * time.Millisecond)
		lc.Workers[0].Close()
		lc.Workers[1].Close()
		fmt.Println("!! killed workers 0 and 1 (no nannies: they stay dead)")
	}()

	res, err := hpo.RunCampaign(context.Background(), hpo.CampaignConfig{
		Runs: 1, PopSize: 30, Generations: 4,
		Evaluator:   &cluster.Evaluator{Client: lc.Client},
		Parallelism: 30, AnnealFactor: 0.85, BaseSeed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	st := lc.Scheduler.Stats()
	fmt.Printf("\nscheduler stats: submitted=%d completed=%d failed=%d reassigned=%d workers=%d\n",
		st.Submitted, st.Completed, st.Failed, st.Reassigned, st.Workers)
	fmt.Printf("campaign: %d evaluations, %d failures\n",
		res.TotalEvaluations(), res.TotalFailures())
	fmt.Println("frontier:")
	for i, ind := range res.ParetoFront() {
		h, _ := hpo.Decode(ind.Genome)
		fmt.Printf("  %2d energy=%.4f force=%.4f  %s\n", i+1, ind.Fitness[0], ind.Fitness[1], h)
	}
}

// evalWithDelay adds a tiny sleep so task fan-out and reassignment are
// observable.
type evalWithDelay struct{ inner *surrogate.Evaluator }

func (e evalWithDelay) Evaluate(ctx context.Context, g ea.Genome) (ea.Fitness, error) {
	select {
	case <-time.After(10 * time.Millisecond):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return e.inner.Evaluate(ctx, g)
}
