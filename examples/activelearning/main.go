// Activelearning: a DP-GEN-style on-the-fly training loop — the
// production workflow that surrounds the hyperparameters the paper's
// campaign tunes.  A committee of deep potentials is trained on a small
// reference dataset; committee-driven MD explores configuration space;
// configurations where the committee disagrees (model deviation inside a
// trust window) are labeled with the reference potential and added to the
// training set; the committee retrains.  Watch the dataset grow and the
// validation error respond round by round.
//
//	go run ./examples/activelearning
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/active"
	"repro/internal/deepmd"
	"repro/internal/descriptor"
	"repro/internal/md"
	"repro/internal/nn"
)

func main() {
	species := []md.Species{
		md.Al, md.Al, md.K, md.K,
		md.Cl, md.Cl, md.Cl, md.Cl, md.Cl, md.Cl, md.Cl, md.Cl,
	}
	cfg := active.Config{
		EnsembleSize: 3,
		Model: deepmd.ModelConfig{
			Descriptor: descriptor.Config{
				RCut: 4.0, RCutSmth: 2.0,
				EmbeddingSizes: []int{6, 12}, AxisNeurons: 3,
				Activation: nn.Tanh, NumSpecies: 3, NeighborNorm: 8,
			},
			FittingSizes:      []int{16},
			FittingActivation: nn.Tanh,
			NumSpecies:        3,
		},
		Train: deepmd.TrainConfig{
			Steps: 500, BatchSize: 2, StartLR: 0.005, StopLR: 1e-4,
			ScaleByWorker: "none", Workers: 1, DispFreq: 500, ValFrames: 6,
		},
		Rounds: 4, InitialFrames: 24,
		ExploreSteps: 300, SampleEvery: 20,
		DevLo: 0.05, DevHi: 5.0,
		MaxSelectPerRound: 8,
		Temperature:       498, Dt: 0.5,
		Seed: 11,
	}

	fmt.Println("running 4 active-learning rounds (train committee → explore → select → label)…")
	rep, err := active.Run(context.Background(), species, 8.5, md.NewPaperBMH(4.0), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Render())
	first, last := rep.Rounds[0], rep.Rounds[len(rep.Rounds)-1]
	fmt.Printf("\ndataset grew %d → %d frames; committee force deviation %.3f → %.3f eV/Å\n",
		first.TrainFrames, last.TrainFrames, first.MeanDeviation, last.MeanDeviation)
	fmt.Println("(in production, the labeler is DFT and each round's trainings use the")
	fmt.Println(" hyperparameters the paper's NSGA-II campaign selected)")
}
