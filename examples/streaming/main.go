// Streaming: out-of-core training from a sharded on-disk dataset.  A
// molten-salt trajectory is generated with the classical MD engine and
// saved in the DeePMD set.NNN/*.npy layout across several shards; the
// same system directory is then trained from twice — once fully
// materialized in memory, once streamed through a byte-budgeted LRU
// frame cache far smaller than the dataset — and the two learning
// curves are compared byte for byte.  The eviction counter proves the
// streamed run really was out-of-core.
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/dataset/stream"
	"repro/internal/deepmd"
	"repro/internal/descriptor"
	"repro/internal/md"
	"repro/internal/nn"
)

func main() {
	// 1. Reference data: a small molten AlCl₃/KCl trajectory, saved as a
	// DeePMD system directory sharded into sets of 8 frames.
	rng := rand.New(rand.NewSource(1))
	species := []md.Species{md.Al, md.Al, md.K, md.K, md.Cl, md.Cl, md.Cl, md.Cl, md.Cl, md.Cl}
	pot := md.NewPaperBMH(4.5)
	fmt.Println("generating reference trajectory with the classical MD engine…")
	data := dataset.Generate(rng, species, 8.0, 498, pot, 0.5, 200, 5, 32)

	dir, err := os.MkdirTemp("", "streaming-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := data.Save(dir, 8); err != nil {
		log.Fatal(err)
	}
	inMem, err := dataset.Load(dir)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Open the same directory out-of-core: the cache budget holds only
	// a fraction of the frames, so training constantly evicts and
	// re-reads shards; the prefetcher overlaps those reads with compute.
	store, err := stream.Open(dir, stream.Options{
		CacheBytes: store4Frames(len(data.Types)),
		Prefetch:   16,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	fmt.Printf("dataset: %d frames, %d atoms, %d B resident in memory\n",
		inMem.Len(), inMem.NAtoms(), store.FrameBytes())
	fmt.Printf("cache budget: %d B (≈4 frames of %d)\n", store.Stats().CacheBudget, store.Len())

	// 3. Train the identical model from the identical seed against both
	// sources and compare the learning curves byte for byte.
	var memCurve, streamCurve bytes.Buffer
	if err := trainOnce(inMem, inMem, &memCurve); err != nil {
		log.Fatal(err)
	}
	if err := trainOnce(store, store, &streamCurve); err != nil {
		log.Fatal(err)
	}

	st := store.Stats()
	fmt.Printf("stream: %d hits, %d misses, %d evictions, %d prefetched\n",
		st.Hits, st.Misses, st.Evictions, st.Prefetched)
	if st.Evictions == 0 {
		log.Fatal("expected evictions: the cache budget should not hold the dataset")
	}
	if !bytes.Equal(memCurve.Bytes(), streamCurve.Bytes()) {
		log.Fatal("learning curves differ: streamed training must be bit-identical")
	}
	fmt.Println("\nstreamed and in-memory learning curves are byte-identical —")
	fmt.Println("datasets larger than RAM train to exactly the same model.")
}

// store4Frames returns a cache budget holding about four frames of a
// 3N-wide system — far below the 32-frame dataset.
func store4Frames(natoms int) int64 {
	return 4 * (int64(16*3*natoms) + 64)
}

func trainOnce(train, val deepmd.FrameSource, lcurve *bytes.Buffer) error {
	mrng := rand.New(rand.NewSource(5))
	model, err := deepmd.NewModel(mrng, deepmd.ModelConfig{
		Descriptor: descriptor.Config{
			RCut: 4.0, RCutSmth: 1.0,
			EmbeddingSizes: []int{4, 8},
			AxisNeurons:    2,
			Activation:     nn.Tanh,
			NumSpecies:     3,
			NeighborNorm:   8,
		},
		FittingSizes:      []int{10},
		FittingActivation: nn.Tanh,
		NumSpecies:        3,
	})
	if err != nil {
		return err
	}
	_, err = deepmd.TrainSource(context.Background(), model, train, val, deepmd.TrainConfig{
		Steps: 40, BatchSize: 2, StartLR: 0.002, StopLR: 5e-4,
		ScaleByWorker: "none", Workers: 1, DispFreq: 10, ValFrames: 4, Seed: 11,
	}, lcurve)
	return err
}
