// Walltime: the multi-job campaign pattern behind the paper's Summit
// deployment — batch jobs were capped at 12 hours (§2.2.5), so a long
// campaign must save its state and resume in the next submission.  This
// example runs "job 1" (3 generations), saves the full campaign as JSON,
// then "job 2" loads the file and continues for 3 more generations,
// showing that the frontier strictly improves across the boundary.
//
//	go run ./examples/walltime
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/nsga2"
	"repro/internal/surrogate"
)

func main() {
	dir, err := os.MkdirTemp("", "walltime-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	checkpoint := filepath.Join(dir, "campaign.json")

	cfg := hpo.CampaignConfig{
		Runs: 2, PopSize: 50, Generations: 3,
		Evaluator:   surrogate.NewEvaluator(surrogate.Config{Seed: 99}),
		Parallelism: 8, AnnealFactor: 0.85, BaseSeed: 99,
	}

	// ---- Job 1: run until "walltime", then checkpoint. ----
	fmt.Println("job 1: running 2 runs × 4 evaluation rounds…")
	first, err := hpo.RunCampaign(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := hpo.SaveCampaignFile(checkpoint, first); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(checkpoint)
	fmt.Printf("job 1 done: %d evaluations, checkpoint %s (%d KiB)\n",
		first.TotalEvaluations(), checkpoint, fi.Size()/1024)
	ref := ea.Fitness{0.03, 0.6}
	hv1 := nsga2.Hypervolume2D(first.LastGenerations(), ref)
	fmt.Printf("job 1 frontier: %d points, hypervolume %.6f\n\n",
		len(first.ParetoFront()), hv1)

	// ---- Job 2: a fresh process loads the checkpoint and resumes. ----
	fmt.Println("job 2: loading checkpoint and resuming 3 more generations…")
	loaded, err := hpo.LoadCampaignFile(checkpoint)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := hpo.ResumeCampaign(context.Background(), loaded, cfg, 3)
	if err != nil {
		log.Fatal(err)
	}
	hv2 := nsga2.Hypervolume2D(resumed.LastGenerations(), ref)
	fmt.Printf("job 2 done: %d total evaluations across both jobs\n", resumed.TotalEvaluations())
	fmt.Printf("job 2 frontier: %d points, hypervolume %.6f (Δ %+.2e)\n",
		len(resumed.ParetoFront()), hv2, hv2-hv1)

	fmt.Println("\nfinal frontier:")
	for i, ind := range resumed.ParetoFront() {
		h, _ := hpo.Decode(ind.Genome)
		fmt.Printf("  %2d energy=%.4f force=%.4f  %s\n", i+1, ind.Fitness[0], ind.Fitness[1], h)
	}
}
