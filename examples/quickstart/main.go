// Quickstart: minimize a classic two-objective benchmark (ZDT1) with the
// library's NSGA-II in ~30 lines, then print the Pareto front.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/core"
)

func main() {
	// ZDT1: f1 = x0, f2 = g·(1 − sqrt(f1/g)), g = 1 + 9·mean(x1..xn).
	// True Pareto front: f2 = 1 − sqrt(f1) at x1..xn = 0.
	const dim = 10
	zdt1 := core.EvaluatorFunc(func(_ context.Context, x core.Genome) (core.Fitness, error) {
		f1 := x[0]
		s := 0.0
		for _, xi := range x[1:] {
			s += xi
		}
		g := 1 + 9*s/float64(dim-1)
		return core.Fitness{f1, g * (1 - math.Sqrt(f1/g))}, nil
	})

	bounds := make(core.Bounds, dim)
	std := make([]float64, dim)
	for i := range bounds {
		bounds[i] = core.Interval{Lo: 0, Hi: 1}
		std[i] = 0.3
	}

	res, err := core.Minimize(context.Background(), zdt1, bounds, std, 60, 80, 42)
	if err != nil {
		log.Fatal(err)
	}

	front := core.ParetoFront(res.Final)
	sort.Slice(front, func(i, j int) bool { return front[i].Fitness[0] < front[j].Fitness[0] })
	fmt.Printf("ZDT1 Pareto front (%d points, true front is f2 = 1 − √f1):\n", len(front))
	var worst float64
	for _, ind := range front {
		gap := math.Abs(ind.Fitness[1] - (1 - math.Sqrt(ind.Fitness[0])))
		if gap > worst {
			worst = gap
		}
	}
	for i := 0; i < len(front); i += max(1, len(front)/10) {
		f := front[i].Fitness
		fmt.Printf("  f1=%.3f  f2=%.3f  (true %.3f)\n", f[0], f[1], 1-math.Sqrt(f[0]))
	}
	fmt.Printf("largest deviation from the analytic front: %.4f\n", worst)
}

