// Command pareto reads rows of objective values from a CSV (or
// whitespace-separated) stream and prints the non-dominated subset — the
// standalone version of the Fig. 2 frontier extraction.
//
// Usage:
//
//	pareto [-cols 0,1] < results.csv
//
// All selected columns are minimized.  Lines failing to parse are
// skipped with a warning.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

func main() {
	log.SetFlags(0)
	colsFlag := flag.String("cols", "0,1", "comma-separated objective column indices")
	flag.Parse()

	var cols []int
	for _, c := range strings.Split(*colsFlag, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil || i < 0 {
			log.Fatalf("bad column index %q", c)
		}
		cols = append(cols, i)
	}

	var pop ea.Population
	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
		fit := make(ea.Fitness, len(cols))
		ok := true
		for k, c := range cols {
			if c >= len(fields) {
				ok = false
				break
			}
			v, err := strconv.ParseFloat(fields[c], 64)
			if err != nil {
				ok = false
				break
			}
			fit[k] = v
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "pareto: skipping line %d: %q\n", lineNo, line)
			continue
		}
		pop = append(pop, &ea.Individual{Fitness: fit, Evaluated: true})
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("reading stdin: %v", err)
	}

	front := nsga2.NonDominated(pop)
	frontSet := map[*ea.Individual]bool{}
	for _, ind := range front {
		frontSet[ind] = true
	}
	n := 0
	for i, ind := range pop {
		if frontSet[ind] {
			fmt.Println(lines[i])
			n++
		}
	}
	fmt.Fprintf(os.Stderr, "pareto: %d of %d rows non-dominated\n", n, len(pop))
}
