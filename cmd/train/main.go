// Command train is the `dp train` substitute: it reads a DeePMD-style
// input.json, loads the referenced datasets, trains a deep-potential
// model in-process and writes lcurve.out next to the input — the exact
// artifact the paper's fitness extraction reads (§2.2.4).
//
// Usage:
//
//	train -input run/input.json [-workers 6] [-steps 0] [-valframes 8]
//	      [-data-dir dir] [-cache-bytes N] [-prefetch N] [-fast]
//
// -steps, if positive, truncates numb_steps for reduced-scale runs.
//
// With -data-dir the train/ and val/ system directories under it are
// streamed out-of-core through a byte-budgeted LRU frame cache instead
// of being materialized in memory; training output is bit-identical to
// the in-memory path.  -fast switches to the cross-frame fused gradient
// path (deterministic, but not bit-identical to the paper reduction
// order).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/dataset/stream"
	"repro/internal/deepmd"
	"repro/internal/hpo"
)

func main() {
	log.SetFlags(0)
	input := flag.String("input", "input.json", "path to input.json")
	workers := flag.Int("workers", 6, "simulated data-parallel workers (paper: 6 GPUs)")
	steps := flag.Int("steps", 0, "override numb_steps (0 = use input.json)")
	valFrames := flag.Int("valframes", 8, "validation frames per lcurve evaluation")
	dataDir := flag.String("data-dir", "", "stream train/ and val/ system dirs under this path out-of-core (instead of loading the input.json systems in memory)")
	cacheBytes := flag.Int64("cache-bytes", stream.DefaultCacheBytes, "LRU frame-cache budget per streamed system, in bytes")
	prefetch := flag.Int("prefetch", 64, "prefetch queue depth for streamed systems (0 = synchronous shard reads)")
	fast := flag.Bool("fast", false, "cross-frame fused gradient path (deterministic, not bit-identical to the paper reduction order)")
	flag.Parse()

	in, err := deepmd.ParseInputFile(*input)
	if err != nil {
		log.Fatalf("parsing %s: %v", *input, err)
	}
	if err := in.Validate(); err != nil {
		log.Fatalf("invalid input.json: %v", err)
	}
	runDir := filepath.Dir(*input)

	var trainSrc, valSrc deepmd.FrameSource
	var trainStore *stream.Store
	if *dataDir != "" {
		opts := stream.Options{CacheBytes: *cacheBytes, Prefetch: *prefetch}
		trainStore, err = stream.Open(filepath.Join(*dataDir, "train"), opts)
		if err != nil {
			log.Fatalf("opening streamed training data: %v", err)
		}
		defer trainStore.Close()
		valStore, err := stream.Open(filepath.Join(*dataDir, "val"), opts)
		if err != nil {
			log.Fatalf("opening streamed validation data: %v", err)
		}
		defer valStore.Close()
		fmt.Printf("streaming %d training and %d validation frames (%d atoms); cache budget %d B, dataset %d B\n",
			trainStore.Len(), valStore.Len(), len(trainStore.AtomTypes()),
			*cacheBytes, trainStore.FrameBytes())
		trainSrc, valSrc = trainStore, valStore
	} else {
		if len(in.Training.Systems) == 0 || len(in.Training.ValidationData.Systems) == 0 {
			log.Fatal("input.json must reference training and validation systems")
		}
		trainSet, err := dataset.Load(resolve(runDir, in.Training.Systems[0]))
		if err != nil {
			log.Fatalf("loading training data: %v", err)
		}
		valSet, err := dataset.Load(resolve(runDir, in.Training.ValidationData.Systems[0]))
		if err != nil {
			log.Fatalf("loading validation data: %v", err)
		}
		fmt.Printf("loaded %d training and %d validation frames (%d atoms)\n",
			trainSet.Len(), valSet.Len(), trainSet.NAtoms())
		trainSrc, valSrc = trainSet, valSet
	}

	rt := &hpo.RealTrainer{
		Train: trainSrc, Val: valSrc,
		Workers: *workers, StepsOverride: *steps, ValFrames: *valFrames,
		Fast: *fast,
	}
	if err := rt.TrainRun(context.Background(), *input, runDir); err != nil {
		log.Fatalf("training: %v", err)
	}
	if trainStore != nil {
		st := trainStore.Stats()
		fmt.Printf("stream: %d hits, %d misses, %d evictions, %d prefetched (%d B cached)\n",
			st.Hits, st.Misses, st.Evictions, st.Prefetched, st.CachedBytes)
	}
	rmseE, rmseF, err := deepmd.FinalLosses(filepath.Join(runDir, "lcurve.out"))
	if err != nil {
		log.Fatalf("reading lcurve.out: %v", err)
	}
	fmt.Printf("final rmse_e_val = %.6g eV/atom, rmse_f_val = %.6g eV/Å\n", rmseE, rmseF)
}

// resolve joins relative dataset paths against the run directory.
func resolve(runDir, p string) string {
	if filepath.IsAbs(p) {
		return p
	}
	return filepath.Join(runDir, p)
}
