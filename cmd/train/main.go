// Command train is the `dp train` substitute: it reads a DeePMD-style
// input.json, loads the referenced datasets, trains a deep-potential
// model in-process and writes lcurve.out next to the input — the exact
// artifact the paper's fitness extraction reads (§2.2.4).
//
// Usage:
//
//	train -input run/input.json [-workers 6] [-steps 0] [-valframes 8]
//
// -steps, if positive, truncates numb_steps for reduced-scale runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/deepmd"
	"repro/internal/hpo"
)

func main() {
	log.SetFlags(0)
	input := flag.String("input", "input.json", "path to input.json")
	workers := flag.Int("workers", 6, "simulated data-parallel workers (paper: 6 GPUs)")
	steps := flag.Int("steps", 0, "override numb_steps (0 = use input.json)")
	valFrames := flag.Int("valframes", 8, "validation frames per lcurve evaluation")
	flag.Parse()

	in, err := deepmd.ParseInputFile(*input)
	if err != nil {
		log.Fatalf("parsing %s: %v", *input, err)
	}
	if err := in.Validate(); err != nil {
		log.Fatalf("invalid input.json: %v", err)
	}
	if len(in.Training.Systems) == 0 || len(in.Training.ValidationData.Systems) == 0 {
		log.Fatal("input.json must reference training and validation systems")
	}
	runDir := filepath.Dir(*input)
	trainSet, err := dataset.Load(resolve(runDir, in.Training.Systems[0]))
	if err != nil {
		log.Fatalf("loading training data: %v", err)
	}
	valSet, err := dataset.Load(resolve(runDir, in.Training.ValidationData.Systems[0]))
	if err != nil {
		log.Fatalf("loading validation data: %v", err)
	}
	fmt.Printf("loaded %d training and %d validation frames (%d atoms)\n",
		trainSet.Len(), valSet.Len(), trainSet.NAtoms())

	rt := &hpo.RealTrainer{
		Train: trainSet, Val: valSet,
		Workers: *workers, StepsOverride: *steps, ValFrames: *valFrames,
	}
	if err := rt.TrainRun(context.Background(), *input, runDir); err != nil {
		log.Fatalf("training: %v", err)
	}
	rmseE, rmseF, err := deepmd.FinalLosses(filepath.Join(runDir, "lcurve.out"))
	if err != nil {
		log.Fatalf("reading lcurve.out: %v", err)
	}
	fmt.Printf("final rmse_e_val = %.6g eV/atom, rmse_f_val = %.6g eV/Å\n", rmseE, rmseF)
}

// resolve joins relative dataset paths against the run directory.
func resolve(runDir, p string) string {
	if filepath.IsAbs(p) {
		return p
	}
	return filepath.Join(runDir, p)
}
