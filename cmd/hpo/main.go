// Command hpo runs the NSGA-II hyperparameter-optimization campaign.  Two
// evaluation backends are available:
//
//   - surrogate (default): the calibrated Summit-training response
//     surface — paper scale finishes in seconds.
//   - real: genuine in-process deep-potential trainings on an MD-generated
//     dataset (use small -pop/-gens/-steps; every evaluation trains a
//     network).
//
// Results are printed as CSV (one row per final solution) plus a frontier
// summary.
//
// Usage:
//
//	hpo [-backend surrogate|real] [-runs 5] [-pop 100] [-gens 6] [-seed 2023]
//	    [-data data/] [-steps 200] [-workers 6] [-out results.csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/surrogate"
)

func main() {
	log.SetFlags(0)
	backend := flag.String("backend", "surrogate", "evaluation backend: surrogate or real")
	runs := flag.Int("runs", 5, "independent EA runs")
	pop := flag.Int("pop", 100, "population size")
	gens := flag.Int("gens", 6, "offspring generations")
	seed := flag.Int64("seed", 2023, "base seed")
	par := flag.Int("par", 8, "parallel evaluations")
	dataDir := flag.String("data", "data", "dataset directory (real backend; expects train/ and val/)")
	steps := flag.Int("steps", 200, "training steps per evaluation (real backend)")
	workers := flag.Int("workers", 6, "simulated data-parallel workers (real backend)")
	out := flag.String("out", "", "CSV output path (default stdout)")
	saveJSON := flag.String("save", "", "also save the full campaign (every generation) as JSON")
	timeout := flag.Duration("timeout", 2*time.Hour, "per-evaluation limit (paper: 2h)")
	noMemo := flag.Bool("no-memo", false, "disable genome-keyed fitness memoization")
	flag.Parse()

	var evaluator ea.Evaluator
	switch *backend {
	case "surrogate":
		evaluator = surrogate.NewEvaluator(surrogate.Config{Seed: *seed})
	case "real":
		trainSet, err := dataset.Load(*dataDir + "/train")
		if err != nil {
			log.Fatalf("loading %s/train: %v (run mdgen first)", *dataDir, err)
		}
		valSet, err := dataset.Load(*dataDir + "/val")
		if err != nil {
			log.Fatalf("loading %s/val: %v", *dataDir, err)
		}
		workDir, err := os.MkdirTemp("", "hpo-runs-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(workDir)
		rt := &hpo.RealTrainer{
			Train: trainSet, Val: valSet,
			Workers: *workers, StepsOverride: *steps, ValFrames: 4,
		}
		evaluator = &hpo.WorkflowEvaluator{
			WorkDir: workDir,
			Steps:   *steps, DispFreq: max(*steps/4, 1), Seed: *seed,
			TrainDir: *dataDir + "/train", ValDir: *dataDir + "/val",
			Trainer: hpo.TrainerFunc(rt.TrainRun),
		}
	default:
		log.Fatalf("unknown backend %q", *backend)
	}

	// Exact-duplicate genomes (unmutated clones, converged populations)
	// re-train nothing new; serve them from the memo cache unless opted
	// out.
	var memo *ea.MemoEvaluator
	if !*noMemo {
		memo = ea.NewMemoEvaluator(evaluator)
		evaluator = memo
	}

	fmt.Fprintf(os.Stderr, "hpo: backend=%s runs=%d pop=%d gens=%d (%d evaluations)\n",
		*backend, *runs, *pop, *gens, *runs**pop*(*gens+1))
	start := time.Now()
	res, err := hpo.RunCampaign(context.Background(), hpo.CampaignConfig{
		Runs: *runs, PopSize: *pop, Generations: *gens,
		Evaluator: evaluator, Parallelism: *par,
		EvalTimeout: *timeout, AnnealFactor: 0.85, BaseSeed: *seed,
		Observer: func(run, gen int, evaluated, survivors ea.Population) {
			fmt.Fprintf(os.Stderr, "  run %d gen %d: %d evaluated, %d failures\n",
				run, gen, len(evaluated), evaluated.Failures())
		},
	})
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}
	fmt.Fprintf(os.Stderr, "hpo: done in %v; %d evaluations, %d failures\n",
		time.Since(start).Round(time.Millisecond), res.TotalEvaluations(), res.TotalFailures())
	if memo != nil {
		st := memo.Stats()
		fmt.Fprintf(os.Stderr, "hpo: memo cache: %d hits, %d misses, %d entries\n",
			st.Hits, st.Misses, st.Entries)
	}

	if *saveJSON != "" {
		if err := hpo.SaveCampaignFile(*saveJSON, res); err != nil {
			log.Fatalf("saving campaign: %v", err)
		}
		fmt.Fprintf(os.Stderr, "hpo: saved full campaign to %s\n", *saveJSON)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "energy_loss,force_loss,start_lr,stop_lr,rcut,rcut_smth,scale_by_worker,desc_activ_func,fitting_activ_func,on_frontier")
	frontSet := map[*ea.Individual]bool{}
	for _, ind := range res.ParetoFront() {
		frontSet[ind] = true
	}
	for _, ind := range res.LastGenerations() {
		if ind.Fitness.IsFailure() {
			continue
		}
		h, err := hpo.Decode(ind.Genome)
		if err != nil {
			continue
		}
		onFront := 0
		if frontSet[ind] {
			onFront = 1
		}
		fmt.Fprintf(w, "%.6g,%.6g,%.6g,%.6g,%.4f,%.4f,%s,%s,%s,%d\n",
			ind.Fitness[0], ind.Fitness[1], h.StartLR, h.StopLR, h.RCut, h.RCutSmth,
			h.ScaleByWorker, h.DescActiv, h.FittingActiv, onFront)
	}
}

