// Command hpo runs the NSGA-II hyperparameter-optimization campaign.  Two
// evaluation backends are available:
//
//   - surrogate (default): the calibrated Summit-training response
//     surface — paper scale finishes in seconds.
//   - real: genuine in-process deep-potential trainings on an MD-generated
//     dataset (use small -pop/-gens/-steps; every evaluation trains a
//     network).
//
// Results are printed as CSV (one row per final solution) plus a frontier
// summary.
//
// Usage:
//
//	hpo [-backend surrogate|real] [-runs 5] [-pop 100] [-gens 6] [-seed 2023]
//	    [-data data/] [-steps 200] [-workers 6] [-out results.csv]
//	    [-data-dir dir] [-cache-bytes N] [-prefetch N] [-fast]
//
// With -data-dir the real backend streams the train/ and val/ system
// directories out-of-core through a byte-budgeted LRU frame cache
// (bit-identical to -data's in-memory loading); -fast switches every
// training to the cross-frame fused gradient path.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataset"
	"repro/internal/dataset/stream"
	"repro/internal/deepmd"
	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/surrogate"
)

func main() {
	log.SetFlags(0)
	backend := flag.String("backend", "surrogate", "evaluation backend: surrogate or real")
	runs := flag.Int("runs", 5, "independent EA runs")
	pop := flag.Int("pop", 100, "population size")
	gens := flag.Int("gens", 6, "offspring generations")
	seed := flag.Int64("seed", 2023, "base seed")
	par := flag.Int("par", 8, "parallel evaluations")
	dataDir := flag.String("data", "data", "dataset directory (real backend; expects train/ and val/)")
	streamDir := flag.String("data-dir", "", "stream datasets out-of-core from this directory (real backend; expects train/ and val/; overrides -data)")
	cacheBytes := flag.Int64("cache-bytes", stream.DefaultCacheBytes, "LRU frame-cache budget per streamed system, in bytes")
	prefetch := flag.Int("prefetch", 64, "prefetch queue depth for streamed systems (0 = synchronous shard reads)")
	fast := flag.Bool("fast", false, "cross-frame fused gradient path (deterministic, not bit-identical to the paper reduction order)")
	steps := flag.Int("steps", 200, "training steps per evaluation (real backend)")
	workers := flag.Int("workers", 6, "simulated data-parallel workers (real backend)")
	out := flag.String("out", "", "CSV output path (default stdout)")
	saveJSON := flag.String("save", "", "also save the full campaign (every generation) as JSON")
	timeout := flag.Duration("timeout", 2*time.Hour, "per-evaluation limit (paper: 2h)")
	noMemo := flag.Bool("no-memo", false, "disable genome-keyed fitness memoization")
	flag.Parse()

	var evaluator ea.Evaluator
	switch *backend {
	case "surrogate":
		evaluator = surrogate.NewEvaluator(surrogate.Config{Seed: *seed})
	case "real":
		trainPath, valPath := *dataDir+"/train", *dataDir+"/val"
		var trainSrc, valSrc deepmd.FrameSource
		if *streamDir != "" {
			// Out-of-core: stream shards through the byte-budgeted LRU cache
			// instead of materializing the systems; training is bit-identical.
			trainPath, valPath = filepath.Join(*streamDir, "train"), filepath.Join(*streamDir, "val")
			opts := stream.Options{CacheBytes: *cacheBytes, Prefetch: *prefetch}
			ts, err := stream.Open(trainPath, opts)
			if err != nil {
				log.Fatalf("opening %s: %v (run mdgen first)", trainPath, err)
			}
			defer ts.Close()
			vs, err := stream.Open(valPath, opts)
			if err != nil {
				log.Fatalf("opening %s: %v", valPath, err)
			}
			defer vs.Close()
			trainSrc, valSrc = ts, vs
		} else {
			trainSet, err := dataset.Load(trainPath)
			if err != nil {
				log.Fatalf("loading %s: %v (run mdgen first)", trainPath, err)
			}
			valSet, err := dataset.Load(valPath)
			if err != nil {
				log.Fatalf("loading %s: %v", valPath, err)
			}
			trainSrc, valSrc = trainSet, valSet
		}
		workDir, err := os.MkdirTemp("", "hpo-runs-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(workDir)
		rt := &hpo.RealTrainer{
			Train: trainSrc, Val: valSrc,
			Workers: *workers, StepsOverride: *steps, ValFrames: 4,
			Fast: *fast,
		}
		evaluator = &hpo.WorkflowEvaluator{
			WorkDir: workDir,
			Steps:   *steps, DispFreq: max(*steps/4, 1), Seed: *seed,
			TrainDir: trainPath, ValDir: valPath,
			Trainer: hpo.TrainerFunc(rt.TrainRun),
		}
	default:
		log.Fatalf("unknown backend %q", *backend)
	}

	// Exact-duplicate genomes (unmutated clones, converged populations)
	// re-train nothing new; serve them from the memo cache unless opted
	// out.
	var memo *ea.MemoEvaluator
	if !*noMemo {
		memo = ea.NewMemoEvaluator(evaluator)
		evaluator = memo
	}

	fmt.Fprintf(os.Stderr, "hpo: backend=%s runs=%d pop=%d gens=%d (%d evaluations)\n",
		*backend, *runs, *pop, *gens, *runs**pop*(*gens+1))
	start := time.Now()
	res, err := hpo.RunCampaign(context.Background(), hpo.CampaignConfig{
		Runs: *runs, PopSize: *pop, Generations: *gens,
		Evaluator: evaluator, Parallelism: *par,
		EvalTimeout: *timeout, AnnealFactor: 0.85, BaseSeed: *seed,
		Observer: func(run, gen int, evaluated, survivors ea.Population) {
			fmt.Fprintf(os.Stderr, "  run %d gen %d: %d evaluated, %d failures\n",
				run, gen, len(evaluated), evaluated.Failures())
		},
	})
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}
	fmt.Fprintf(os.Stderr, "hpo: done in %v; %d evaluations, %d failures\n",
		time.Since(start).Round(time.Millisecond), res.TotalEvaluations(), res.TotalFailures())
	if memo != nil {
		st := memo.Stats()
		fmt.Fprintf(os.Stderr, "hpo: memo cache: %d hits, %d misses, %d entries\n",
			st.Hits, st.Misses, st.Entries)
	}

	if *saveJSON != "" {
		if err := hpo.SaveCampaignFile(*saveJSON, res); err != nil {
			log.Fatalf("saving campaign: %v", err)
		}
		fmt.Fprintf(os.Stderr, "hpo: saved full campaign to %s\n", *saveJSON)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "energy_loss,force_loss,start_lr,stop_lr,rcut,rcut_smth,scale_by_worker,desc_activ_func,fitting_activ_func,on_frontier")
	frontSet := map[*ea.Individual]bool{}
	for _, ind := range res.ParetoFront() {
		frontSet[ind] = true
	}
	for _, ind := range res.LastGenerations() {
		if ind.Fitness.IsFailure() {
			continue
		}
		h, err := hpo.Decode(ind.Genome)
		if err != nil {
			continue
		}
		onFront := 0
		if frontSet[ind] {
			onFront = 1
		}
		fmt.Fprintf(w, "%.6g,%.6g,%.6g,%.6g,%.4f,%.4f,%s,%s,%s,%d\n",
			ind.Fitness[0], ind.Fitness[1], h.StartLR, h.StopLR, h.RCut, h.RCutSmth,
			h.ScaleByWorker, h.DescActiv, h.FittingActiv, onFront)
	}
}
