// Command mdgen generates a molten AlCl₃/KCl training dataset with the
// classical MD engine — the substitute for the paper's CP2K FPMD data
// generation (§2.1.3).  Output is a DeePMD-style system directory (plus a
// sibling validation split): type.raw and set.NNN/{coord,energy,force,box}.npy.
//
// Usage:
//
//	mdgen -out data/ [-frames 2000] [-box 17.84] [-temp 498] [-seed 1]
//	      [-equil 2000] [-every 10] [-val 0.25] [-rcut 5.0]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/md"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "data", "output directory (train/ and val/ subdirectories)")
	frames := flag.Int("frames", 2000, "number of frames to sample")
	box := flag.Float64("box", 17.84, "cubic box side, Å (paper: 17.84)")
	temp := flag.Float64("temp", 498, "temperature, K (paper: 498)")
	seed := flag.Int64("seed", 1, "RNG seed")
	equil := flag.Int("equil", 2000, "equilibration steps before sampling")
	every := flag.Int("every", 10, "steps between samples")
	val := flag.Float64("val", 0.25, "validation fraction (paper: 0.25)")
	rcut := flag.Float64("rcut", 5.0, "MD interaction cutoff, Å")
	setSize := flag.Int("setsize", 1000, "frames per set.NNN directory")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	pot := md.NewPaperBMH(*rcut)
	fmt.Printf("simulating %d atoms (32 Al + 16 K + 112 Cl) at %.0f K in a %.2f Å box…\n",
		len(md.PaperComposition()), *temp, *box)
	d := dataset.Generate(rng, md.PaperComposition(), *box, *temp, pot, 0.5, *equil, *every, *frames)
	fmt.Printf("sampled %d frames; shuffling and splitting %.0f%% for validation\n",
		d.Len(), *val*100)
	d.Shuffle(rng)
	train, valSet := d.Split(*val)

	trainDir := filepath.Join(*out, "train")
	valDir := filepath.Join(*out, "val")
	if err := train.Save(trainDir, *setSize); err != nil {
		log.Fatalf("saving training set: %v", err)
	}
	if err := valSet.Save(valDir, *setSize); err != nil {
		log.Fatalf("saving validation set: %v", err)
	}
	fmt.Printf("wrote %d training frames to %s and %d validation frames to %s\n",
		train.Len(), trainDir, valSet.Len(), valDir)
}
