// Command lint runs the project-native static-analysis suite
// (internal/lint) over the module and gates the result against the
// committed baseline.
//
// Usage:
//
//	go run ./cmd/lint ./...                    # enforce (CI and tier-1)
//	go run ./cmd/lint -update-baseline ./...   # shrink the baseline
//	go run ./cmd/lint -list                    # describe the rules
//
// Exit status: 0 clean (or fully baselined), 1 new or stale findings,
// 2 load/type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "scripts/lint_baseline.txt", "baseline file, relative to the module root")
		update       = flag.Bool("update-baseline", false, "rewrite the baseline from this run's findings")
		list         = flag.Bool("list", false, "list rules and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := lint.ModuleRoot(".")
	if err != nil {
		fatal(2, "lint: %v", err)
	}
	bl := *baselinePath
	if !filepath.IsAbs(bl) {
		bl = filepath.Join(root, bl)
	}

	patterns := flag.Args()
	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fatal(2, "lint: %v", err)
	}

	var diags []lint.Diagnostic
	typeErrs := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "lint: type error in %s: %v\n", pkg.ImportPath, e)
			typeErrs++
		}
		diags = append(diags, lint.Run(pkg, lint.All())...)
	}
	if typeErrs > 0 {
		fatal(2, "lint: %d type error(s); findings would be unreliable", typeErrs)
	}

	if *update {
		if err := lint.WriteBaseline(bl, diags); err != nil {
			fatal(2, "lint: %v", err)
		}
		fmt.Printf("lint: baseline updated with %d finding(s): %s\n", len(diags), bl)
		return
	}

	base, err := lint.ReadBaseline(bl)
	if err != nil {
		fatal(2, "lint: %v", err)
	}
	fresh, stale := lint.Gate(diags, base)
	for _, d := range fresh {
		fmt.Println(d.String())
	}
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "lint: stale baseline entry (finding no longer reproduces): %s\n", s)
	}
	switch {
	case len(fresh) > 0:
		fatal(1, "lint: %d new finding(s); fix them or //lint:ignore with a reason", len(fresh))
	case len(stale) > 0:
		fatal(1, "lint: %d stale baseline entr(ies); run: go run ./cmd/lint -update-baseline ./...", len(stale))
	}
	fmt.Printf("lint: clean (%d package(s), %d baselined finding(s))\n", len(pkgs), len(diags))
}

func fatal(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
