// Command lint runs the project-native static-analysis suite
// (internal/lint) over the module and gates the result against the
// committed baseline.  All nine analyzers run: the five package-local
// rules plus the four interprocedural rules (goroutineleak, lockorder,
// detflow, hotalloc) built on the call-graph engine.
//
// Usage:
//
//	go run ./cmd/lint ./...                    # enforce (CI and tier-1)
//	go run ./cmd/lint -update-baseline ./...   # shrink the baseline
//	go run ./cmd/lint -list                    # describe the rules
//	go run ./cmd/lint -json ./...              # machine-readable findings
//	go run ./cmd/lint -format=github ./...     # ::error annotations for CI
//	go run ./cmd/lint -v ./...                 # load + per-analyzer timing
//
// Exit status: 0 clean (or fully baselined), 1 new or stale findings,
// 2 load/type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "scripts/lint_baseline.txt", "baseline file, relative to the module root")
		update       = flag.Bool("update-baseline", false, "rewrite the baseline from this run's findings")
		list         = flag.Bool("list", false, "list rules and exit")
		jsonOut      = flag.Bool("json", false, "emit new findings as a JSON array on stdout")
		format       = flag.String("format", "text", "finding format: text or github (::error workflow annotations)")
		verbose      = flag.Bool("v", false, "report load and per-analyzer wall time on stderr")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "github" {
		fatal(2, "lint: unknown -format %q (want text or github)", *format)
	}

	root, err := lint.ModuleRoot(".")
	if err != nil {
		fatal(2, "lint: %v", err)
	}
	bl := *baselinePath
	if !filepath.IsAbs(bl) {
		bl = filepath.Join(root, bl)
	}

	loadStart := time.Now()
	pkgs, err := lint.Load(root, flag.Args()...)
	if err != nil {
		fatal(2, "lint: %v", err)
	}
	loadTime := time.Since(loadStart)

	typeErrs := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "lint: type error in %s: %v\n", pkg.ImportPath, e)
			typeErrs++
		}
	}
	if typeErrs > 0 {
		fatal(2, "lint: %d type error(s); findings would be unreliable", typeErrs)
	}

	prog := lint.NewProgram(pkgs)
	diags := prog.Run(lint.All())

	if *verbose {
		fmt.Fprintf(os.Stderr, "lint: load       %8.0fms  (%d packages)\n", loadTime.Seconds()*1e3, len(pkgs))
		for _, t := range prog.Timings() {
			fmt.Fprintf(os.Stderr, "lint: %-10s %8.0fms\n", t.Name, t.Duration.Seconds()*1e3)
		}
	}

	if *update {
		if err := lint.WriteBaseline(bl, diags); err != nil {
			fatal(2, "lint: %v", err)
		}
		fmt.Printf("lint: baseline updated with %d finding(s): %s\n", len(diags), bl)
		return
	}

	base, err := lint.ReadBaseline(bl)
	if err != nil {
		fatal(2, "lint: %v", err)
	}
	fresh, stale := lint.Gate(diags, base)
	emit(fresh, *jsonOut, *format)
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "lint: stale baseline entry (finding no longer reproduces): %s\n", s)
	}
	switch {
	case len(fresh) > 0:
		fatal(1, "lint: %d new finding(s); fix them or //lint:ignore with a reason", len(fresh))
	case len(stale) > 0:
		fatal(1, "lint: %d stale baseline entr(ies); run: go run ./cmd/lint -update-baseline ./...", len(stale))
	}
	if !*jsonOut {
		fmt.Printf("lint: clean (%d package(s), %d baselined finding(s))\n", len(pkgs), len(diags))
	}
}

// jsonDiag is the machine-readable finding shape for -json.
type jsonDiag struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func emit(fresh []lint.Diagnostic, asJSON bool, format string) {
	if asJSON {
		out := make([]jsonDiag, 0, len(fresh))
		for _, d := range fresh {
			out = append(out, jsonDiag{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Rule: d.Rule, Msg: d.Msg})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(2, "lint: encoding findings: %v", err)
		}
		return
	}
	for _, d := range fresh {
		if format == "github" {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=lint/%s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, githubEscape(d.Msg))
			continue
		}
		fmt.Println(d.String())
	}
}

// githubEscape encodes the characters the workflow-command parser
// treats specially in the message position.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func fatal(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
