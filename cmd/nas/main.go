// Command nas runs the paper's §4 future-work extension: neural
// architecture search over the two DeePMD networks, jointly with the
// original seven training hyperparameters (an 11-gene genome), and
// compares the resulting Pareto frontier against the fixed-architecture
// baseline by hypervolume.
//
// Usage:
//
//	nas [-runs 3] [-pop 80] [-gens 6] [-seed 7]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/nas"
)

func main() {
	log.SetFlags(0)
	runs := flag.Int("runs", 3, "independent EA runs per campaign")
	pop := flag.Int("pop", 80, "population size")
	gens := flag.Int("gens", 6, "offspring generations")
	seed := flag.Int64("seed", 7, "base seed (shared by both campaigns)")
	par := flag.Int("par", 8, "parallel evaluations")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "running fixed-architecture and NAS campaigns (%d evaluations each)…\n",
		*runs**pop*(*gens+1))
	res, err := nas.Compare(context.Background(), nas.CompareConfig{
		Runs: *runs, PopSize: *pop, Generations: *gens, Seed: *seed, Parallelism: *par,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
}
