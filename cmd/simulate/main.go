// Command simulate runs molecular dynamics with a frozen deep-potential
// model — the deployment step that motivates the whole pipeline
// (quantum-accuracy dynamics at ~10000× first-principles speed, §1).
//
// Usage:
//
//	simulate -model frozen.model [-steps 1000] [-dt 0.5] [-temp 498]
//	         [-box 17.84] [-thermostat berendsen|langevin|nve] [-seed 1]
//
// The paper's 160-atom molten AlCl₃/KCl composition is simulated; energy,
// temperature and drift are reported periodically.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/deepmd"
	"repro/internal/md"
)

func main() {
	log.SetFlags(0)
	modelPath := flag.String("model", "frozen.model", "frozen model file (see examples/nnmd)")
	steps := flag.Int("steps", 1000, "MD steps")
	dt := flag.Float64("dt", 0.5, "timestep, fs")
	temp := flag.Float64("temp", 498, "initial/target temperature, K")
	box := flag.Float64("box", 17.84, "cubic box side, Å")
	thermo := flag.String("thermostat", "berendsen", "berendsen, langevin, or nve")
	seed := flag.Int64("seed", 1, "RNG seed")
	report := flag.Int("report", 100, "steps between reports")
	flag.Parse()

	model, err := deepmd.LoadModelFile(*modelPath)
	if err != nil {
		log.Fatalf("loading model: %v", err)
	}
	fmt.Printf("loaded deep potential: rcut=%.2f Å, %d parameters\n",
		model.Cfg.Descriptor.RCut, model.ParamCount())

	rng := rand.New(rand.NewSource(*seed))
	sys := md.NewSystem(rng, md.PaperComposition(), *box, *temp)
	pot := deepmd.NewMDPotential(model)

	var thermostat md.Thermostat
	switch *thermo {
	case "berendsen":
		thermostat = md.Berendsen{T: *temp, Tau: 100}
	case "langevin":
		thermostat = md.Langevin{T: *temp, Gamma: 0.02, Rng: rng}
	case "nve":
		thermostat = md.NVE{}
	default:
		log.Fatalf("unknown thermostat %q", *thermo)
	}

	it := md.NewIntegrator(pot, thermostat, *dt)
	pot.Compute(sys)
	e0 := md.TotalEnergy(sys)
	fmt.Printf("%8s %14s %14s %12s %12s\n", "step", "E_pot (eV)", "E_tot (eV)", "T (K)", "drift (eV)")
	it.Run(sys, *steps, *report, func(step int) {
		et := md.TotalEnergy(sys)
		fmt.Printf("%8d %14.4f %14.4f %12.1f %12.2e\n",
			step, sys.PotEng, et, sys.Temperature(), math.Abs(et-e0))
	})
	fmt.Printf("done: %d steps of %d atoms under the learned potential\n", *steps, sys.N())
}
