// Command serve runs the campaign service: a long-lived, multi-tenant
// HTTP control plane over the NSGA-II hyperparameter-optimization stack.
// It is the always-on promotion of the one-shot `hpo` and `cluster
// -mode drive` binaries — clients create campaigns over JSON, stream
// per-generation events, and fetch frontiers, while every campaign
// shares one worker fleet and one genome-keyed memo cache.
//
// Usage:
//
//	serve [-addr 127.0.0.1:8080] [-checkpoint-dir DIR]
//	      [-backend local|remote] [-workers 4] [-scheduler-addr HOST:PORT]
//	      [-seed 2023] [-lease 10m] [-transport binary|json] [-no-memo]
//	      [-mux-conns 0] [-coalesce 0] [-queue-depth 4096]
//	      [-max-concurrent 4] [-max-active-per-tenant 2]
//	      [-max-campaigns-per-tenant 16] [-max-inflight-per-tenant 64]
//	      [-drain-timeout 30s]
//
// -mux-conns N multiplexes the fleet's logical connections over N
// shared TCP connections (the local backend's whole fleet, or the
// remote backend's client) with -coalesce as the frame-coalescing
// latency budget; -queue-depth bounds the local scheduler's pending
// queue, blocking submitters when it fills.
//
// The local backend starts an in-process scheduler plus -workers
// surrogate workers (the single-machine analogue of the paper's Summit
// deployment); the remote backend connects to an already-running
// `cluster -mode scheduler` fleet at -scheduler-addr.
//
// On SIGTERM or SIGINT the service drains: admission stops, every
// running campaign's in-flight generation is cancelled, and every
// campaign is checkpointed to -checkpoint-dir.  A restarted serve with
// the same -checkpoint-dir resumes them with zero completed generations
// lost — and, because campaign execution is restart-invariant, with a
// final frontier byte-identical to an uninterrupted run's.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/surrogate"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	backend := flag.String("backend", "local", "evaluation backend: local (in-process fleet) or remote (existing scheduler)")
	workers := flag.Int("workers", 4, "local backend: in-process surrogate workers")
	schedulerAddr := flag.String("scheduler-addr", "127.0.0.1:7077", "remote backend: scheduler address")
	seed := flag.Int64("seed", 2023, "local backend: surrogate model seed")
	lease := flag.Duration("lease", 10*time.Minute, "local backend: per-task lease; 0 disables")
	transport := flag.String("transport", "binary", "cluster framing: binary (length-prefixed wire protocol) or json (compatibility)")
	noMemo := flag.Bool("no-memo", false, "disable the shared genome-keyed memo cache")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for campaign checkpoints; empty disables persistence")
	maxConcurrent := flag.Int("max-concurrent", 4, "campaigns running at once, all tenants combined")
	maxActive := flag.Int("max-active-per-tenant", 2, "one tenant's campaigns running at once")
	maxCampaigns := flag.Int("max-campaigns-per-tenant", 16, "one tenant's queued+running campaigns")
	maxInflight := flag.Int("max-inflight-per-tenant", 64, "one tenant's concurrent evaluations")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight legs to checkpoint on shutdown")
	muxConns := flag.Int("mux-conns", 0, "multiplex the fleet over this many shared TCP connections; 0 keeps one connection per peer")
	coalesce := flag.Duration("coalesce", 0, "frame-coalescing latency budget for mux sessions; 0 batches opportunistically only")
	queueDepth := flag.Int("queue-depth", 4096, "local backend: scheduler pending-task capacity; full queue blocks submitters")
	flag.Parse()

	tr, err := cluster.ParseTransport(*transport)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	if *muxConns > 0 && tr != cluster.TransportBinary {
		log.Fatal("serve: -mux-conns requires -transport binary")
	}
	if err := run(*addr, *backend, *workers, *schedulerAddr, *seed, *lease, tr, *noMemo,
		*checkpointDir, *maxConcurrent, *maxActive, *maxCampaigns, *maxInflight, *drainTimeout,
		*muxConns, *coalesce, *queueDepth); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

func run(addr, backend string, workers int, schedulerAddr string, seed int64,
	lease time.Duration, transport cluster.Transport, noMemo bool, checkpointDir string,
	maxConcurrent, maxActive, maxCampaigns, maxInflight int, drainTimeout time.Duration,
	muxConns int, coalesce time.Duration, queueDepth int) error {

	var events cluster.EventCounters
	cfg := service.Config{
		DisableMemo:           noMemo,
		CheckpointDir:         checkpointDir,
		MaxConcurrent:         maxConcurrent,
		MaxActivePerTenant:    maxActive,
		MaxCampaignsPerTenant: maxCampaigns,
		MaxInFlightPerTenant:  maxInflight,
		Logf:                  log.Printf,
		SchedulerEvents:       &events,
	}

	switch backend {
	case "local":
		opts := []cluster.LocalOption{cluster.WithTransport(transport), cluster.WithQueueDepth(queueDepth)}
		if muxConns > 0 {
			opts = append(opts, cluster.WithMuxConns(muxConns), cluster.WithCoalesce(coalesce))
		}
		lc, err := cluster.NewLocalCluster(workers, cluster.EvalHandler(surrogate.NewEvaluator(surrogate.Config{Seed: seed})), lease, opts...)
		if err != nil {
			return fmt.Errorf("local fleet: %w", err)
		}
		defer func() {
			if err := lc.Close(); err != nil {
				log.Printf("fleet_close err=%v", err)
			}
		}()
		lc.Scheduler.OnEvent = events.Record
		cfg.Evaluator = &cluster.Evaluator{Client: lc.Client}
		cfg.SchedulerStats = func() (cluster.Stats, []cluster.WorkerStats) {
			return lc.Scheduler.Stats(), lc.Scheduler.WorkerStats()
		}
		cfg.SchedulerWire = lc.Scheduler.Wire
		cfg.SchedulerQueue = lc.Scheduler.QueueDepths
		cfg.SchedulerMux = lc.Scheduler.Mux
	case "remote":
		var client *cluster.Client
		var err error
		if muxConns > 0 {
			dialer := &cluster.MuxDialer{Addr: schedulerAddr, Conns: muxConns, Coalesce: coalesce}
			defer func() {
				if err := dialer.Close(); err != nil {
					log.Printf("dialer_close err=%v", err)
				}
			}()
			client, err = cluster.NewClientMux(dialer)
			cfg.SchedulerMux = dialer.Stats
		} else {
			client, err = cluster.NewClientTransport(schedulerAddr, transport)
		}
		if err != nil {
			return fmt.Errorf("connecting scheduler %s: %w", schedulerAddr, err)
		}
		defer func() {
			if err := client.Close(); err != nil {
				log.Printf("client_close err=%v", err)
			}
		}()
		client.Logf = log.Printf
		cfg.Evaluator = &cluster.Evaluator{Client: client}
		cfg.SchedulerWire = client.Wire
	default:
		return fmt.Errorf("unknown backend %q (want local or remote)", backend)
	}

	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	if restored, err := svc.Restore(); err != nil {
		return fmt.Errorf("restoring checkpoints: %w", err)
	} else if restored > 0 {
		log.Printf("restored_campaigns n=%d", restored)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	// The "listening" line is the readiness handshake scripts wait for.
	fmt.Printf("serve listening on %s (backend=%s)\n", ln.Addr(), backend)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	case <-ctx.Done():
	}
	stop()

	log.Printf("shutdown_begin drain_timeout=%s", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("drain_incomplete err=%v", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		if closeErr := srv.Close(); closeErr != nil && !errors.Is(closeErr, http.ErrServerClosed) {
			log.Printf("http_close err=%v", closeErr)
		}
	}
	log.Printf("shutdown_done")
	return nil
}
