// Command experiments regenerates the paper's tables and figures from a
// fresh campaign against the Summit-training surrogate.
//
// Usage:
//
//	experiments [-exp all|table1|fig1|fig2|table2|fig3|table3|failures]
//	            [-runs 5] [-pop 100] [-gens 6] [-seed 2023]
//
// With defaults it reproduces the full paper scale: 5 independent NSGA-II
// runs × 100 individuals × 7 evaluation rounds = 3500 simulated trainings.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/hpo"
	"repro/internal/sensitivity"
	"repro/internal/surrogate"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "experiment to regenerate: all, table1, fig1, fig2, table2, fig3, table3, failures, convergence, correlations, ablation, baselines, scaling, sensitivity")
	runs := flag.Int("runs", 5, "independent EA runs (paper: 5)")
	pop := flag.Int("pop", 100, "population size (paper: 100)")
	gens := flag.Int("gens", 6, "offspring generations (paper: 6)")
	seed := flag.Int64("seed", 2023, "campaign base seed")
	par := flag.Int("par", 8, "parallel evaluations per run")
	pngDir := flag.String("png", "", "also write Fig. 1/2 level plots as PNGs into this directory")
	flag.Parse()

	if *exp == "table1" {
		fmt.Print(experiments.RenderTable1())
		return
	}
	if *exp == "sensitivity" {
		// The §2.2.1 pre-campaign screening: no EA needed.
		ev := surrogate.NewEvaluator(surrogate.Config{Seed: *seed, NoiseScale: -1, DisableFailures: true})
		rep := hpo.PaperRepresentation()
		mor, err := sensitivity.Morris(context.Background(), ev, rep.Bounds, hpo.GeneNames[:], 40, 8, 2, *seed)
		if err != nil {
			log.Fatalf("morris: %v", err)
		}
		fmt.Print(sensitivity.RenderMorris(mor, []string{"energy", "force"}))
		baseline, err := hpo.Encode(hpo.HParams{
			StartLR: 0.004, StopLR: 5e-5, RCut: 9, RCutSmth: 3,
			ScaleByWorker: "none", DescActiv: "tanh", FittingActiv: "tanh",
		})
		if err != nil {
			log.Fatal(err)
		}
		oat, err := sensitivity.OAT(context.Background(), ev, rep.Bounds, hpo.GeneNames[:], baseline, 13, 2)
		if err != nil {
			log.Fatalf("oat: %v", err)
		}
		fmt.Println()
		fmt.Print(sensitivity.RenderOAT(oat, []string{"energy", "force"}))
		return
	}

	opts := experiments.Options{
		Runs: *runs, PopSize: *pop, Generations: *gens, Seed: *seed, Parallelism: *par,
	}
	fmt.Fprintf(os.Stderr, "running campaign: %d runs × %d individuals × %d generations…\n",
		opts.Runs, opts.PopSize, opts.Generations+1)
	c, err := experiments.RunPaperCampaign(context.Background(), opts)
	if err != nil {
		log.Fatalf("campaign failed: %v", err)
	}

	show := func(name, text string) {
		fmt.Printf("==== %s ====\n%s\n", name, text)
	}
	if *pngDir != "" {
		if err := os.MkdirAll(*pngDir, 0o755); err != nil {
			log.Fatalf("creating %s: %v", *pngDir, err)
		}
		for g, h := range experiments.Fig1(c).Hists {
			path := fmt.Sprintf("%s/fig1_gen%d.png", *pngDir, g)
			if err := h.WritePNGFile(path, 8); err != nil {
				log.Fatalf("writing %s: %v", path, err)
			}
		}
		if err := experiments.Fig2Hist(c).WritePNGFile(*pngDir+"/fig2_pool.png", 10); err != nil {
			log.Fatalf("writing fig2 png: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote level-plot PNGs to %s\n", *pngDir)
	}
	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		show("Table 1", experiments.RenderTable1())
	}
	if want("fig1") {
		show("Fig. 1", experiments.Fig1(c).Render())
	}
	if want("fig2") {
		show("Fig. 2", experiments.RenderFig2(c))
	}
	if want("table2") {
		show("Table 2", experiments.RenderTable2(c))
	}
	if want("fig3") {
		show("Fig. 3", experiments.RenderFig3(c))
	}
	if want("table3") {
		text, err := experiments.RenderTable3(c)
		if err != nil {
			log.Fatalf("table3: %v", err)
		}
		show("Table 3", text)
	}
	if want("failures") {
		show("Failures", experiments.RenderFailures(c))
	}
	if want("convergence") {
		show("Convergence (Fig. 1 companion)", experiments.RenderConvergence(c))
	}
	if want("correlations") {
		text, err := experiments.RenderCorrelations(c)
		if err != nil {
			log.Fatalf("correlations: %v", err)
		}
		show("Correlations (Fig. 3 companion)", text)
	}
	if *exp == "ablation" { // expensive: only on explicit request
		abl, err := experiments.PipelineAblation(context.Background(), opts)
		if err != nil {
			log.Fatalf("ablation: %v", err)
		}
		show("Ablation", abl.Render())
	}
	if *exp == "scaling" {
		sc, err := experiments.ParallelScaling(context.Background(),
			[]int{1, 2, 4, 8, 16}, *pop, 2, 10*time.Millisecond, *seed)
		if err != nil {
			log.Fatalf("scaling: %v", err)
		}
		show("Parallel scaling", sc.Render())
	}
	if *exp == "baselines" { // expensive: only on explicit request
		cmp, err := experiments.CompareBaselines(context.Background(), opts)
		if err != nil {
			log.Fatalf("baselines: %v", err)
		}
		show("Baselines", cmp.Render())
	}
}
