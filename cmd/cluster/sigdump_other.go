//go:build !unix

package main

import "context"

// notifyDumpSignal is a no-op on platforms without SIGUSR1; the periodic
// -stats ticker remains available.
func notifyDumpSignal(context.Context, func()) {}
