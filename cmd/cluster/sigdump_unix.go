//go:build unix

package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// notifyDumpSignal invokes dump on SIGUSR1 — `kill -USR1 <pid>` pulls an
// on-demand stats snapshot out of a running scheduler without stopping it.
func notifyDumpSignal(ctx context.Context, dump func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	go func() {
		defer signal.Stop(ch)
		for {
			select {
			case <-ch:
				dump()
			case <-ctx.Done():
				return
			}
		}
	}()
}
