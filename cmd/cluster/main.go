// Command cluster runs the distributed-evaluation components standalone,
// mirroring the paper's Dask deployment on the Summit batch node
// (§2.2.5): a scheduler, any number of workers (each evaluating genomes
// with the Summit surrogate), and a driver mode that submits a whole
// NSGA-II campaign through the scheduler.
//
// Usage:
//
//	cluster -mode scheduler [-addr 127.0.0.1:7077] [-lease 10m] [-stats 30s] [-events]
//	                        [-queue-depth 4096] [-queue-shards 8] [-coalesce 0]
//	cluster -mode worker    [-addr 127.0.0.1:7077] [-name w0] [-seed 2023] [-task-timeout 2h] [-heartbeat 15s] [-transport binary|json]
//	                        [-mux-conns 0] [-coalesce 0]
//	cluster -mode drive     [-addr 127.0.0.1:7077] [-runs 1] [-pop 20] [-gens 3] [-transport binary|json]
//	                        [-mux-conns 0] [-coalesce 0]
//
// Workers and drivers frame their connection with the length-prefixed
// binary wire protocol by default; -transport json selects the legacy
// JSON framing.  The scheduler needs no flag — it sniffs the first byte
// of each connection and speaks whichever framing the peer chose, so
// mixed fleets interoperate.
//
// -mux-conns N (workers and drivers) multiplexes every logical
// connection the process opens over a pool of N shared TCP connections
// instead of one per peer; -coalesce sets the frame-coalescing latency
// budget on whichever side the flag is passed to (the scheduler flag
// governs its reply batching to mux peers, the worker/drive flag the
// dialer's).  Mux requires binary framing, so -mux-conns rejects
// -transport json.
//
// The scheduler prints its Stats line every -stats interval and, on
// Unix, dumps aggregate, per-shard queue-depth, mux-session, and
// per-worker counters on SIGUSR1.  Workers reconnect to a bounced
// scheduler with exponential backoff and renew their task leases with
// heartbeats while a training runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/cluster"
	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/surrogate"
)

func main() {
	log.SetFlags(0)
	mode := flag.String("mode", "", "scheduler, worker, or drive")
	addr := flag.String("addr", "127.0.0.1:7077", "scheduler address")
	name := flag.String("name", "worker", "worker name")
	seed := flag.Int64("seed", 2023, "surrogate / campaign seed")
	runs := flag.Int("runs", 1, "drive: independent EA runs")
	pop := flag.Int("pop", 20, "drive: population size")
	gens := flag.Int("gens", 3, "drive: offspring generations")
	lease := flag.Duration("lease", 0, "scheduler: per-task lease; 0 disables the liveness backstop")
	statsEvery := flag.Duration("stats", 30*time.Second, "scheduler: periodic stats line interval; 0 disables")
	events := flag.Bool("events", false, "scheduler: log every lifecycle event")
	taskTimeout := flag.Duration("task-timeout", 2*time.Hour, "worker: per-task execution cap (the paper's two-hour limit)")
	heartbeat := flag.Duration("heartbeat", 15*time.Second, "worker: lease-renewal interval while executing; 0 disables")
	maxReconnects := flag.Int("max-reconnects", 0, "worker: consecutive failed re-dials before giving up; 0 retries forever")
	noMemo := flag.Bool("no-memo", false, "drive: disable genome-keyed fitness memoization")
	transport := flag.String("transport", "binary", "worker/drive: connection framing, binary or json (scheduler auto-negotiates)")
	queueDepth := flag.Int("queue-depth", 4096, "scheduler: pending-task capacity across all shards; full queue blocks submitters")
	queueShards := flag.Int("queue-shards", 8, "scheduler: pending-queue shard count (rounded to a power of two)")
	muxConns := flag.Int("mux-conns", 0, "worker/drive: multiplex over this many shared TCP connections; 0 keeps one connection per peer")
	coalesce := flag.Duration("coalesce", 0, "frame-coalescing latency budget for mux sessions; 0 batches opportunistically only")
	flag.Parse()

	tr, err := cluster.ParseTransport(*transport)
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	if *muxConns > 0 && tr != cluster.TransportBinary {
		log.Fatal("cluster: -mux-conns requires -transport binary")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch *mode {
	case "scheduler":
		sched, err := cluster.NewSchedulerWithConfig(*addr, cluster.SchedulerConfig{
			QueueDepth:  *queueDepth,
			QueueShards: *queueShards,
			Coalesce:    *coalesce,
		})
		if err != nil {
			log.Fatalf("scheduler: %v", err)
		}
		sched.Logf = log.Printf
		sched.TaskTimeout = *lease
		if *events {
			sched.OnEvent = func(e cluster.Event) { log.Printf("event: %s", e) }
		}
		fmt.Printf("scheduler listening on %s (Ctrl-C to stop)\n", sched.Addr())
		dump := func() {
			log.Printf("stats: %s", sched)
			log.Printf("%s", sched.Wire())
			log.Printf("%s", sched.Mux())
			log.Printf("queue: shard_depths=%v", sched.QueueDepths())
			for _, ws := range sched.WorkerStats() {
				log.Printf("stats: %s", ws)
			}
		}
		notifyDumpSignal(ctx, dump)
		if *statsEvery > 0 {
			go func() {
				ticker := time.NewTicker(*statsEvery)
				defer ticker.Stop()
				for {
					select {
					case <-ticker.C:
						dump()
					case <-ctx.Done():
						return
					}
				}
			}()
		}
		<-ctx.Done()
		dump()
		fmt.Printf("final stats: %s\n", sched)
		sched.Close()

	case "worker":
		ev := surrogate.NewEvaluator(surrogate.Config{Seed: *seed})
		var w *cluster.Worker
		if *muxConns > 0 {
			dialer := &cluster.MuxDialer{Addr: *addr, Conns: *muxConns, Coalesce: *coalesce}
			defer dialer.Close()
			w, err = cluster.NewWorkerMux(dialer, *name, cluster.EvalHandler(ev))
		} else {
			w, err = cluster.NewWorkerTransport(*addr, *name, cluster.EvalHandler(ev), tr)
		}
		if err != nil {
			log.Fatalf("worker: %v", err)
		}
		w.TaskTimeout = *taskTimeout
		w.Heartbeat = *heartbeat
		w.MaxReconnects = *maxReconnects
		w.Logf = log.Printf
		fmt.Printf("worker %q connected to %s\n", *name, *addr)
		if err := w.Run(ctx); err != nil {
			log.Fatalf("worker exited: %v", err)
		}

	case "drive":
		var client *cluster.Client
		if *muxConns > 0 {
			dialer := &cluster.MuxDialer{Addr: *addr, Conns: *muxConns, Coalesce: *coalesce}
			defer dialer.Close()
			client, err = cluster.NewClientMux(dialer)
		} else {
			client, err = cluster.NewClientTransport(*addr, tr)
		}
		if err != nil {
			log.Fatalf("client: %v", err)
		}
		client.Logf = log.Printf
		defer client.Close()
		// Memoize by genome so exact-duplicate individuals never travel to
		// a worker at all — a cluster round trip plus a full training
		// saved per duplicate.
		var evaluator ea.Evaluator = &cluster.Evaluator{Client: client}
		var memo *ea.MemoEvaluator
		if !*noMemo {
			memo = ea.NewMemoEvaluator(evaluator)
			evaluator = memo
		}
		res, err := hpo.RunCampaign(ctx, hpo.CampaignConfig{
			Runs: *runs, PopSize: *pop, Generations: *gens,
			Evaluator:   evaluator,
			Parallelism: *pop, AnnealFactor: 0.85, BaseSeed: *seed,
		})
		if err != nil {
			log.Fatalf("campaign: %v", err)
		}
		fmt.Printf("campaign done: %d evaluations, %d failures, frontier:\n",
			res.TotalEvaluations(), res.TotalFailures())
		if memo != nil {
			st := memo.Stats()
			fmt.Printf("memo cache: %d hits, %d misses, %d entries\n",
				st.Hits, st.Misses, st.Entries)
		}
		for i, ind := range res.ParetoFront() {
			h, _ := hpo.Decode(ind.Genome)
			fmt.Printf("  %2d energy=%.4f force=%.4f  %s\n", i+1, ind.Fitness[0], ind.Fitness[1], h)
		}

	default:
		log.Fatal("cluster: -mode must be scheduler, worker, or drive")
	}
}
