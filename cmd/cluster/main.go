// Command cluster runs the distributed-evaluation components standalone,
// mirroring the paper's Dask deployment on the Summit batch node
// (§2.2.5): a scheduler, any number of workers (each evaluating genomes
// with the Summit surrogate), and a driver mode that submits a whole
// NSGA-II campaign through the scheduler.
//
// Usage:
//
//	cluster -mode scheduler [-addr 127.0.0.1:7077]
//	cluster -mode worker    [-addr 127.0.0.1:7077] [-name w0] [-seed 2023]
//	cluster -mode drive     [-addr 127.0.0.1:7077] [-runs 1] [-pop 20] [-gens 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/surrogate"
)

func main() {
	log.SetFlags(0)
	mode := flag.String("mode", "", "scheduler, worker, or drive")
	addr := flag.String("addr", "127.0.0.1:7077", "scheduler address")
	name := flag.String("name", "worker", "worker name")
	seed := flag.Int64("seed", 2023, "surrogate / campaign seed")
	runs := flag.Int("runs", 1, "drive: independent EA runs")
	pop := flag.Int("pop", 20, "drive: population size")
	gens := flag.Int("gens", 3, "drive: offspring generations")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch *mode {
	case "scheduler":
		sched, err := cluster.NewScheduler(*addr)
		if err != nil {
			log.Fatalf("scheduler: %v", err)
		}
		sched.Logf = log.Printf
		fmt.Printf("scheduler listening on %s (Ctrl-C to stop)\n", sched.Addr())
		<-ctx.Done()
		fmt.Printf("final stats: %s\n", sched)
		sched.Close()

	case "worker":
		ev := surrogate.NewEvaluator(surrogate.Config{Seed: *seed})
		w, err := cluster.NewWorker(*addr, *name, cluster.EvalHandler(ev))
		if err != nil {
			log.Fatalf("worker: %v", err)
		}
		w.TaskTimeout = 2 * time.Hour
		fmt.Printf("worker %q connected to %s\n", *name, *addr)
		if err := w.Run(ctx); err != nil {
			log.Fatalf("worker exited: %v", err)
		}

	case "drive":
		client, err := cluster.NewClient(*addr)
		if err != nil {
			log.Fatalf("client: %v", err)
		}
		defer client.Close()
		res, err := hpo.RunCampaign(ctx, hpo.CampaignConfig{
			Runs: *runs, PopSize: *pop, Generations: *gens,
			Evaluator:   &cluster.Evaluator{Client: client},
			Parallelism: *pop, AnnealFactor: 0.85, BaseSeed: *seed,
		})
		if err != nil {
			log.Fatalf("campaign: %v", err)
		}
		fmt.Printf("campaign done: %d evaluations, %d failures, frontier:\n",
			res.TotalEvaluations(), res.TotalFailures())
		for i, ind := range res.ParetoFront() {
			h, _ := hpo.Decode(ind.Genome)
			fmt.Printf("  %2d energy=%.4f force=%.4f  %s\n", i+1, ind.Fitness[0], ind.Fitness[1], h)
		}

	default:
		log.Fatal("cluster: -mode must be scheduler, worker, or drive")
	}
}
