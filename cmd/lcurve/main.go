// Command lcurve inspects a DeePMD-style lcurve.out training log: it
// prints summary statistics and an ASCII chart of the validation losses
// over training steps — the file the paper's fitness extraction reads
// (§2.2.4 item 4c).
//
// Usage:
//
//	lcurve path/to/lcurve.out [-width 70] [-height 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"repro/internal/deepmd"
)

func main() {
	log.SetFlags(0)
	width := flag.Int("width", 70, "chart width in columns")
	height := flag.Int("height", 16, "chart height in rows")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lcurve [flags] <lcurve.out>")
		os.Exit(2)
	}
	recs, err := deepmd.ReadLCurveFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("reading %s: %v", flag.Arg(0), err)
	}
	if len(recs) == 0 {
		log.Fatal("no data rows")
	}
	last := recs[len(recs)-1]
	fmt.Printf("%d records, steps %d..%d\n", len(recs), recs[0].Step, last.Step)
	fmt.Printf("final: rmse_e_val=%.6g eV/atom  rmse_f_val=%.6g eV/Å  lr=%.3g\n",
		last.RmseEVal, last.RmseFVal, last.LR)

	fmt.Println("\nrmse_f_val over training (log scale):")
	fmt.Print(chart(recs, func(r deepmd.LCurveRecord) float64 { return r.RmseFVal }, *width, *height))
	fmt.Println("\nrmse_e_val over training (log scale):")
	fmt.Print(chart(recs, func(r deepmd.LCurveRecord) float64 { return r.RmseEVal }, *width, *height))
}

// chart renders one series as ASCII, y on a log axis.
func chart(recs []deepmd.LCurveRecord, get func(deepmd.LCurveRecord) float64, width, height int) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range recs {
		v := get(r)
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	//lint:ignore floateq degenerate-range guard: a constant series has lo bitwise equal to hi by construction
	if !(hi > 0) || lo == hi {
		return "(series constant or empty)\n"
	}
	llo, lhi := math.Log10(lo), math.Log10(hi)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for i, r := range recs {
		v := get(r)
		if v <= 0 || math.IsNaN(v) {
			continue
		}
		x := i * (width - 1) / max(len(recs)-1, 1)
		y := int((math.Log10(v) - llo) / (lhi - llo) * float64(height-1))
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		grid[height-1-y][x] = '*'
	}
	var b strings.Builder
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%.2e", hi)
		case height - 1:
			label = fmt.Sprintf("%.2e", lo)
		}
		fmt.Fprintf(&b, "%10s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%10s  %-*d%*d\n", "step", width-8, recs[0].Step, 8, recs[len(recs)-1].Step)
	return b.String()
}
