#!/usr/bin/env bash
# bench.sh — hot-path benchmark runner for the binary wire-protocol PR.
#
# Runs the cluster transport benchmarks and writes BENCH_7.json at the
# repo root: ns/op and allocs/op per benchmark, the end-to-end scheduler
# throughput speedup of binary framing over JSON at every grid point
# (workers × loopback/chaos-proxy; the acceptance metric is the
# workers=100 loopback point, target >= 2x), and the in-memory codec
# round-trip speedup that isolates pure framing cost from the sockets.
#
# Each benchmark runs BENCHCOUNT times and the fastest rep is recorded,
# which keeps the speedup ratios stable on noisy shared machines.
#
# Usage:
#   scripts/bench.sh                              # full run
#   BENCHTIME=1x BENCHCOUNT=1 scripts/bench.sh    # CI smoke: one iteration
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-0.3s}"
BENCHCOUNT="${BENCHCOUNT:-3}"
OUT="${OUT:-BENCH_7.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchtime "$BENCHTIME" -count "$BENCHCOUNT" \
    ./internal/cluster/ | tee "$raw"

awk -v benchtime="$BENCHTIME" '
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!(name in ns)) { order[++n] = name }
    if (!(name in ns) || $3 + 0 < ns[name] + 0) {
        ns[name] = $3
        alloc[name] = ($8 == "allocs/op") ? $7 : ""
    }
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {\n", benchtime
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns[name]
        if (alloc[name] != "") printf ", \"allocs_per_op\": %s", alloc[name]
        printf "}%s\n", (i < n) ? "," : ""
    }
    # End-to-end scheduler throughput, binary over JSON, per grid point:
    # ns/op of the transport=json twin divided by the binary run.
    printf "  },\n  \"sched_throughput_speedup_vs_json\": {\n"
    np = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (name !~ /^BenchmarkSchedulerThroughput.*transport=binary$/) continue
        twin = name; sub(/transport=binary$/, "transport=json", twin)
        if (!(twin in ns) || ns[name] + 0 == 0) continue
        pairs[++np] = sprintf("    \"%s\": %.2f", name, ns[twin] / ns[name])
    }
    for (i = 1; i <= np; i++) printf "%s%s\n", pairs[i], (i < np) ? "," : ""
    # Pure framing cost with no scheduler and no sockets in the way.
    printf "  },\n  \"codec_speedup_vs_json\": {\n"
    np = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (name !~ /^BenchmarkCodecRoundTrip.*transport=binary$/) continue
        twin = name; sub(/transport=binary$/, "transport=json", twin)
        if (!(twin in ns) || ns[name] + 0 == 0) continue
        pairs[++np] = sprintf("    \"%s\": %.2f", name, ns[twin] / ns[name])
    }
    for (i = 1; i <= np; i++) printf "%s%s\n", pairs[i], (i < np) ? "," : ""
    printf "  }\n}\n"
}' "$raw" > "$OUT"

echo "wrote $OUT"
