#!/usr/bin/env bash
# bench.sh — hot-path benchmark runner for the scheduler scale-out PR.
#
# Runs the cluster transport benchmarks and writes BENCH_8.json at the
# repo root: ns/op and allocs/op per benchmark, plus four speedup
# sections —
#   sched_throughput_speedup_vs_json    binary over JSON per grid point
#                                       (carried over from BENCH_7)
#   codec_speedup_vs_json               pure framing cost, no sockets
#   sched_throughput_speedup_vs_bench7  the scale-out grid (mux over a
#                                       2-connection pool vs one conn
#                                       per peer) against the committed
#                                       BENCH_7 binary baselines; the
#                                       acceptance metric is the
#                                       workers=500 mux point, >= 2x
#   sched_throughput_speedup_mux_vs_perconn
#                                       mux vs per-conn within this run,
#                                       defined at every fleet size
#                                       including workers=1000 (which
#                                       has no BENCH_7 baseline)
#
# Each benchmark runs BENCHCOUNT times and the fastest rep is recorded,
# which keeps the speedup ratios stable on noisy shared machines.
#
# Usage:
#   scripts/bench.sh                              # full run
#   BENCHTIME=1x BENCHCOUNT=1 scripts/bench.sh    # CI smoke: one iteration
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-0.3s}"
BENCHCOUNT="${BENCHCOUNT:-3}"
OUT="${OUT:-BENCH_8.json}"
BASELINE="${BASELINE:-BENCH_7.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchtime "$BENCHTIME" -count "$BENCHCOUNT" \
    ./internal/cluster/ | tee "$raw"

awk -v benchtime="$BENCHTIME" '
# First input file: the committed BENCH_7 baselines (binary framing, one
# TCP connection per peer) keyed by worker count.
FNR == NR {
    if (match($0, /"BenchmarkSchedulerThroughput\/workers=[0-9]+\/transport=binary": \{"ns_per_op": [0-9.]+/)) {
        s = substr($0, RSTART, RLENGTH)
        match(s, /workers=[0-9]+/); w = substr(s, RSTART + 8, RLENGTH - 8)
        match(s, /ns_per_op": [0-9.]+/); base[w] = substr(s, RSTART + 12, RLENGTH - 12)
    }
    next
}
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!(name in ns)) { order[++n] = name }
    if (!(name in ns) || $3 + 0 < ns[name] + 0) {
        ns[name] = $3
        alloc[name] = ($8 == "allocs/op") ? $7 : ""
    }
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {\n", benchtime
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns[name]
        if (alloc[name] != "") printf ", \"allocs_per_op\": %s", alloc[name]
        printf "}%s\n", (i < n) ? "," : ""
    }
    # End-to-end scheduler throughput, binary over JSON, per grid point.
    printf "  },\n  \"sched_throughput_speedup_vs_json\": {\n"
    np = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (name !~ /^BenchmarkSchedulerThroughput.*transport=binary$/) continue
        twin = name; sub(/transport=binary$/, "transport=json", twin)
        if (!(twin in ns) || ns[name] + 0 == 0) continue
        pairs[++np] = sprintf("    \"%s\": %.2f", name, ns[twin] / ns[name])
    }
    for (i = 1; i <= np; i++) printf "%s%s\n", pairs[i], (i < np) ? "," : ""
    # Pure framing cost with no scheduler and no sockets in the way.
    printf "  },\n  \"codec_speedup_vs_json\": {\n"
    np = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (name !~ /^BenchmarkCodecRoundTrip.*transport=binary$/) continue
        twin = name; sub(/transport=binary$/, "transport=json", twin)
        if (!(twin in ns) || ns[name] + 0 == 0) continue
        pairs[++np] = sprintf("    \"%s\": %.2f", name, ns[twin] / ns[name])
    }
    for (i = 1; i <= np; i++) printf "%s%s\n", pairs[i], (i < np) ? "," : ""
    # Scale-out grid against the committed BENCH_7 binary baselines: the
    # same worker count over one connection per peer, pre-sharding and
    # pre-mux.  Defined wherever BENCH_7 has the matching point.
    printf "  },\n  \"sched_throughput_speedup_vs_bench7\": {\n"
    np = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (name !~ /^BenchmarkSchedulerThroughputScaleOut\//) continue
        w = name; sub(/^.*workers=/, "", w); sub(/\/.*$/, "", w)
        if (!(w in base) || ns[name] + 0 == 0) continue
        pairs[++np] = sprintf("    \"%s\": %.2f", name, base[w] / ns[name])
    }
    for (i = 1; i <= np; i++) printf "%s%s\n", pairs[i], (i < np) ? "," : ""
    # Mux vs per-conn within this run, defined at every fleet size.
    printf "  },\n  \"sched_throughput_speedup_mux_vs_perconn\": {\n"
    np = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (name !~ /^BenchmarkSchedulerThroughputScaleOut.*mode=mux$/) continue
        twin = name; sub(/mode=mux$/, "mode=perconn", twin)
        if (!(twin in ns) || ns[name] + 0 == 0) continue
        pairs[++np] = sprintf("    \"%s\": %.2f", name, ns[twin] / ns[name])
    }
    for (i = 1; i <= np; i++) printf "%s%s\n", pairs[i], (i < np) ? "," : ""
    printf "  }\n}\n"
}' "$BASELINE" "$raw" > "$OUT"

echo "wrote $OUT"
