#!/usr/bin/env bash
# bench.sh — hot-path benchmark runner for the streaming-dataset PR.
#
# Runs the nn, descriptor, deepmd, and dataset/stream benchmarks and
# writes BENCH_6.json at the repo root: ns/op and allocs/op per
# benchmark, the speedup of each batched fitting-net path over its
# scalar twin, and the per-frame train-step speedup of the whole-frame
# batched path over the previous PR's per-atom baseline recorded in
# BENCH_5.json (this PR's acceptance metric, target >= 2x for the fast
# cross-frame mode).
#
# Each benchmark runs BENCHCOUNT times and the fastest rep is recorded,
# which keeps the speedup ratios stable on noisy shared machines.
#
# Usage:
#   scripts/bench.sh                              # full run
#   BENCHTIME=1x BENCHCOUNT=1 scripts/bench.sh    # CI smoke: one iteration
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-0.3s}"
BENCHCOUNT="${BENCHCOUNT:-3}"
OUT="${OUT:-BENCH_6.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Per-frame train-step cost of the previous PR, from the committed
# BENCH_5.json (BatchSize=1, so ns/op is already per frame).
base5="$(sed -n 's/.*"BenchmarkTrainStepByWorkers\/workers=1": {"ns_per_op": \([0-9]*\).*/\1/p' BENCH_5.json)"

go test -run '^$' -bench . -benchtime "$BENCHTIME" -count "$BENCHCOUNT" \
    ./internal/nn/... ./internal/descriptor/ ./internal/deepmd/ \
    ./internal/dataset/stream/ | tee "$raw"

awk -v benchtime="$BENCHTIME" -v base5="$base5" '
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!(name in ns)) { order[++n] = name }
    if (!(name in ns) || $3 + 0 < ns[name] + 0) {
        ns[name] = $3
        alloc[name] = ($8 == "allocs/op") ? $7 : ""
    }
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {\n", benchtime
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns[name]
        if (alloc[name] != "") printf ", \"allocs_per_op\": %s", alloc[name]
        printf "}%s\n", (i < n) ? "," : ""
    }
    printf "  },\n  \"speedup_batched_vs_scalar\": {\n"
    np = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (name !~ /Batch\//) continue
        scalar = name; sub(/Batch\//, "Scalar/", scalar)
        if (!(scalar in ns) || ns[name] + 0 == 0) continue
        pairs[++np] = sprintf("    \"%s\": %.2f", name, ns[scalar] / ns[name])
    }
    for (i = 1; i <= np; i++) printf "%s%s\n", pairs[i], (i < np) ? "," : ""
    # Per-frame speedup of the whole-frame batched train step over the
    # previous PR: BENCH_5 TrainStepByWorkers/workers=1 ns/frame divided
    # by this run TrainStepBatch ns/op over its batch size.
    printf "  },\n  \"train_step_speedup_vs_bench5\": {\n"
    np = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (name !~ /TrainStepBatch\//) continue
        batch = name; sub(/.*batch=/, "", batch)
        if (batch + 0 == 0 || ns[name] + 0 == 0 || base5 + 0 == 0) continue
        pairs[++np] = sprintf("    \"%s\": %.2f", name, base5 / (ns[name] / batch))
    }
    for (i = 1; i <= np; i++) printf "%s%s\n", pairs[i], (i < np) ? "," : ""
    printf "  }\n}\n"
}' "$raw" > "$OUT"

echo "wrote $OUT"
