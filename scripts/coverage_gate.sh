#!/usr/bin/env bash
# coverage_gate.sh — per-package statement-coverage ratchet.
#
# Runs `go test -cover` over internal packages and fails if any package
# listed in scripts/coverage_baseline.txt has dropped more than SLACK
# percentage points below its recorded floor.  Packages not in the
# baseline pass (new packages ratchet in on the next -update).
#
# Usage:
#   scripts/coverage_gate.sh            # enforce
#   scripts/coverage_gate.sh -update    # rewrite the baseline from HEAD
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/coverage_baseline.txt
# Small slack absorbs run-to-run noise from timing-dependent paths
# (reconnect/timeout branches in the cluster plane).
SLACK=2.0

report="$(go test -count=1 -cover ./internal/... | awk '$1 == "ok" { for (i = 1; i <= NF; i++) if ($i == "coverage:") { sub(/%$/, "", $(i+1)); print $2, $(i+1) } }')"

if [[ "${1:-}" == "-update" ]]; then
    printf '%s\n' "$report" > "$BASELINE"
    echo "coverage baseline updated:"
    cat "$BASELINE"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "missing $BASELINE — run scripts/coverage_gate.sh -update" >&2
    exit 1
fi

fail=0
while read -r pkg floor; do
    [[ -z "$pkg" ]] && continue
    got="$(printf '%s\n' "$report" | awk -v p="$pkg" '$1 == p { print $2 }')"
    if [[ -z "$got" ]]; then
        echo "WARN: $pkg in baseline but produced no coverage line" >&2
        continue
    fi
    if awk -v g="$got" -v f="$floor" -v s="$SLACK" 'BEGIN { exit !(g + s < f) }'; then
        echo "FAIL: $pkg coverage $got% fell below baseline $floor% (slack $SLACK)" >&2
        fail=1
    else
        echo "ok:   $pkg $got% (baseline $floor%)"
    fi
done < "$BASELINE"

exit "$fail"
