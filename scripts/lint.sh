#!/usr/bin/env bash
# Project-native static analysis gate.
#
# Runs the internal/lint suite (determinism, floateq, ctxhygiene,
# lockdiscipline, errdiscard) over the whole module and fails on any
# finding not covered by scripts/lint_baseline.txt.  The baseline is a
# ratchet: it may only shrink, and stale entries fail the gate too.
#
# Usage:
#   scripts/lint.sh                 # gate (CI entry point)
#   scripts/lint.sh -update-baseline  # rewrite the baseline after fixes
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./cmd/lint "$@" ./...
