#!/usr/bin/env bash
# Project-native static analysis gate.
#
# Runs the internal/lint suite over the whole module and fails on any
# finding not covered by scripts/lint_baseline.txt.  Nine analyzers:
# five package-local (determinism, floateq, ctxhygiene, lockdiscipline,
# errdiscard) and four interprocedural over the cross-package call
# graph (goroutineleak, lockorder, detflow, hotalloc).  The baseline is
# a ratchet: it may only shrink, and stale entries fail the gate too.
#
# The expensive `go list -export` load is memoized in .lintcache/
# (content-hashed over the toolchain, go.mod/go.sum and every tracked
# .go file), so repeat runs on an unchanged tree skip straight to
# analysis.
#
# Usage:
#   scripts/lint.sh                   # gate (CI entry point)
#   scripts/lint.sh -format=github    # gate with GitHub annotations
#   scripts/lint.sh -update-baseline  # rewrite the baseline after fixes
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./cmd/lint "$@" ./...
