#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the campaign service binary.
#
# Boots `cmd/serve` on a local fleet, drives one tiny campaign over the
# HTTP API (create, SSE event stream, frontier, /metrics), SIGTERMs the
# process and requires a clean drain, then restarts it on the same
# checkpoint directory and requires the campaign — frontier included —
# to have survived the bounce byte-for-byte.
#
# Usage:
#   scripts/serve_smoke.sh          # CI entry point
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18931
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "serve_smoke: $1" >&2
    shift
    for f in "$@"; do
        echo "--- $f ---" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

# wait_line FILE PATTERN — readiness handshake on the serve log.
wait_line() {
    for _ in $(seq 1 100); do
        grep -q "$2" "$1" && return 0
        if [[ -n "$SERVE_PID" ]] && ! kill -0 "$SERVE_PID" 2>/dev/null; then
            fail "serve exited while waiting for \"$2\"" "$1"
        fi
        sleep 0.1
    done
    fail "timed out waiting for \"$2\"" "$1"
}

go build -o "$WORK/serve" ./cmd/serve

"$WORK/serve" -addr "$ADDR" -workers 2 -checkpoint-dir "$WORK/ckpt" >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
wait_line "$WORK/serve.log" "serve listening on"

create="$(curl -sSf -X POST "$BASE/v1/campaigns" \
    -H 'Content-Type: application/json' \
    -d '{"tenant":"smoke","name":"tiny","runs":1,"pop_size":5,"generations":2,"base_seed":7}')"
id="$(printf '%s' "$create" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[[ -n "$id" ]] || fail "create returned no campaign id: $create"

# The SSE stream replays the full event backlog and closes itself once
# the campaign is terminal, so this curl doubles as the run-to-done wait.
curl -sSf -N -m 60 -H 'Accept: text/event-stream' \
    "$BASE/v1/campaigns/$id/events" >"$WORK/events.sse"
grep -q 'event: generation' "$WORK/events.sse" || fail "SSE stream has no generation events" "$WORK/events.sse"
grep -q 'event: done' "$WORK/events.sse" || fail "SSE stream never reached done" "$WORK/events.sse"

status="$(curl -sSf "$BASE/v1/campaigns/$id")"
case "$status" in
*'"state":"done"'*) ;;
*) fail "campaign not done after SSE close: $status" ;;
esac

curl -sSf "$BASE/v1/campaigns/$id/frontier" >"$WORK/frontier.json"
grep -q '"points"' "$WORK/frontier.json" || fail "frontier has no points" "$WORK/frontier.json"
curl -sSf "$BASE/metrics" | grep -q 'repro_service_campaigns{state="done"} 1' \
    || fail "metrics missing done-campaign gauge"
curl -sSf "$BASE/healthz" >/dev/null

# Graceful drain: on SIGTERM the process must checkpoint and exit 0.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "serve exited non-zero on SIGTERM" "$WORK/serve.log"
SERVE_PID=""
grep -q 'shutdown_done' "$WORK/serve.log" || fail "no shutdown_done in log" "$WORK/serve.log"
[[ -f "$WORK/ckpt/$id.json" ]] || fail "no checkpoint written for $id" "$WORK/serve.log"

# Bounce: a restarted serve restores the campaign from its checkpoint
# and serves the identical frontier document.
"$WORK/serve" -addr "$ADDR" -workers 2 -checkpoint-dir "$WORK/ckpt" >"$WORK/serve2.log" 2>&1 &
SERVE_PID=$!
wait_line "$WORK/serve2.log" "serve listening on"
status2="$(curl -sSf "$BASE/v1/campaigns/$id")"
case "$status2" in
*'"state":"done"'*) ;;
*) fail "campaign lost across bounce: $status2" "$WORK/serve2.log" ;;
esac
curl -sSf "$BASE/v1/campaigns/$id/frontier" >"$WORK/frontier2.json"
cmp -s "$WORK/frontier.json" "$WORK/frontier2.json" \
    || fail "frontier changed across bounce" "$WORK/frontier.json" "$WORK/frontier2.json"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "restarted serve exited non-zero on SIGTERM" "$WORK/serve2.log"
SERVE_PID=""

echo "serve smoke OK (campaign $id survived the bounce)"
