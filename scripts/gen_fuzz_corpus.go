//go:build ignore

// gen_fuzz_corpus regenerates the committed fuzz corpora under
// internal/*/testdata/fuzz/.  Run from the repository root:
//
//	go run scripts/gen_fuzz_corpus.go
//
// The corpora seed each fuzz target with the interesting boundary
// inputs — valid encodings of every supported variant, truncations,
// hostile length/shape claims — so even a short fuzz run starts from
// the format's corners instead of rediscovering them.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/cluster/wire"
	"repro/internal/npy"
)

func writeCorpus(dir, name string, entry string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := "go test fuzz v1\n" + entry + "\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}

func bytesEntry(b []byte) string  { return "[]byte(" + strconv.Quote(string(b)) + ")" }
func stringEntry(s string) string { return "string(" + strconv.Quote(s) + ")" }
func byteEntry(b byte) string     { return fmt.Sprintf("byte('\\x%02x')", b) }
func uint64Entry(v uint64) string { return fmt.Sprintf("uint64(%d)", v) }

// multiEntry joins the per-argument lines of a multi-parameter fuzz
// target's corpus file.
func multiEntry(vals ...string) string { return strings.Join(vals, "\n") }

// wireFrame builds one binary frame, failing loudly on invalid input so
// the generator never commits a broken corpus.
func wireFrame(m *wire.Message) []byte {
	frame, err := wire.AppendFrame(nil, m)
	if err != nil {
		log.Fatal(err)
	}
	return frame
}

func npyBytes(shape []int, data []float64) []byte {
	var buf bytes.Buffer
	if err := npy.Write(&buf, &npy.Array{Shape: shape, Data: data}); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

// rawNpy builds an .npy stream with an arbitrary header dict, valid or
// hostile.
func rawNpy(header string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Write([]byte{0x93, 'N', 'U', 'M', 'P', 'Y', 1, 0})
	h := header + "\n"
	var hlen [2]byte
	binary.LittleEndian.PutUint16(hlen[:], uint16(len(h)))
	buf.Write(hlen[:])
	buf.WriteString(h)
	buf.Write(payload)
	return buf.Bytes()
}

func frame(payload []byte) []byte {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	return buf.Bytes()
}

func main() {
	npyDir := filepath.Join("internal", "npy", "testdata", "fuzz", "FuzzNpyRoundTrip")
	valid := npyBytes([]int{2, 3}, []float64{1, 2, 3, 4, 5, 6})
	writeCorpus(npyDir, "valid_f8_2x3", bytesEntry(valid))
	writeCorpus(npyDir, "scalar_0d",
		bytesEntry(rawNpy("{'descr': '<f8', 'fortran_order': False, 'shape': (), }",
			[]byte{0, 0, 0, 0, 0, 0, 0, 0x40})))
	writeCorpus(npyDir, "f4_vector",
		bytesEntry(rawNpy("{'descr': '<f4', 'fortran_order': False, 'shape': (2,), }",
			[]byte{0, 0, 0x80, 0x3f, 0, 0, 0, 0x40})))
	writeCorpus(npyDir, "i8_vector",
		bytesEntry(rawNpy("{'descr': '<i8', 'fortran_order': False, 'shape': (1,), }",
			[]byte{7, 0, 0, 0, 0, 0, 0, 0})))
	writeCorpus(npyDir, "truncated_payload", bytesEntry(valid[:len(valid)-5]))
	writeCorpus(npyDir, "hostile_shape",
		bytesEntry(rawNpy("{'descr': '<f8', 'fortran_order': False, 'shape': (9999999999, 9999999999), }", nil)))
	writeCorpus(npyDir, "huge_claimed_shape",
		bytesEntry(rawNpy("{'descr': '<f8', 'fortran_order': False, 'shape': (1073741824,), }", nil)))
	writeCorpus(npyDir, "fortran_order",
		bytesEntry(rawNpy("{'descr': '<f8', 'fortran_order': True, 'shape': (1,), }",
			make([]byte, 8))))
	writeCorpus(npyDir, "bad_dtype",
		bytesEntry(rawNpy("{'descr': '>c16', 'fortran_order': False, 'shape': (1,), }", nil)))
	writeCorpus(npyDir, "zero_dim",
		bytesEntry(npyBytes([]int{0, 3}, nil)))

	clusterDir := filepath.Join("internal", "cluster", "testdata", "fuzz", "FuzzProtoDecode")
	writeCorpus(clusterDir, "register",
		bytesEntry(frame([]byte(`{"type":"register","name":"worker-0"}`))))
	writeCorpus(clusterDir, "submit",
		bytesEntry(frame([]byte(`{"type":"submit","task_id":"t1","payload":{"genome":[0.5,-1.5]}}`))))
	writeCorpus(clusterDir, "result_err",
		bytesEntry(frame([]byte(`{"type":"result","task_id":"t1","err":"diverged"}`))))
	writeCorpus(clusterDir, "empty_frame", bytesEntry(frame(nil)))
	writeCorpus(clusterDir, "truncated_frame", bytesEntry(frame([]byte(`{"type":"submit"}`))[:8]))
	var overLimit [4]byte
	binary.BigEndian.PutUint32(overLimit[:], 64<<20+1)
	writeCorpus(clusterDir, "over_limit_claim", bytesEntry(overLimit[:]))
	var hostile [4]byte
	binary.BigEndian.PutUint32(hostile[:], 63<<20)
	writeCorpus(clusterDir, "hostile_length_no_body", bytesEntry(hostile[:]))
	writeCorpus(clusterDir, "bad_json", bytesEntry(frame([]byte(`{"type":`))))

	wireDir := filepath.Join("internal", "cluster", "wire", "testdata", "fuzz", "FuzzWireDecode")
	writeCorpus(wireDir, "register",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeRegister, Name: []byte("worker-0"), Flags: wire.FlagWantSnapshot})))
	writeCorpus(wireDir, "submit",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeSubmit, TaskID: []byte("task-1"), Payload: []byte(`{"genome":[0.5,-1.5]}`)})))
	writeCorpus(wireDir, "assign",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeAssign, TaskID: []byte("task-2"), Payload: []byte(`{"genome":[1]}`)})))
	writeCorpus(wireDir, "result_ok",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeResult, TaskID: []byte("task-3"), Payload: []byte(`{"fitness":[2.5]}`)})))
	writeCorpus(wireDir, "result_err",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeResult, TaskID: []byte("task-4"), Err: []byte("diverged")})))
	writeCorpus(wireDir, "heartbeat",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeHeartbeat, TaskID: []byte("task-5")})))
	writeCorpus(wireDir, "snapshot",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeSnapshot, Epoch: 981, Pending: 12,
			Leases: [][]byte{[]byte("lease-a"), []byte("lease-b")}})))
	badMagic := wireFrame(&wire.Message{Type: wire.TypeHeartbeat, TaskID: []byte("t")})
	badMagic[0] = 0x00
	writeCorpus(wireDir, "bad_magic", bytesEntry(badMagic))
	truncated := wireFrame(&wire.Message{Type: wire.TypeSubmit, TaskID: []byte("t"), Payload: []byte(`{"genome":[1,2,3]}`)})
	writeCorpus(wireDir, "truncated_frame", bytesEntry(truncated[:len(truncated)-4]))
	hostileWire := make([]byte, wire.HeaderSize)
	binary.BigEndian.PutUint16(hostileWire[0:2], wire.Magic)
	hostileWire[2] = wire.Version
	hostileWire[3] = 2 // submit
	binary.BigEndian.PutUint32(hostileWire[6:10], 63<<20)
	writeCorpus(wireDir, "hostile_length_no_body", bytesEntry(hostileWire))
	// Mux session frames: stream ids are 4 big-endian bytes in the id
	// field; data bodies are raw chunks, window bodies a uvarint grant.
	writeCorpus(wireDir, "mux_open",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeMuxOpen, TaskID: []byte{0, 0, 0, 1}})))
	writeCorpus(wireDir, "mux_data_coalesced",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeMuxData, Flags: wire.FlagCoalesced,
			TaskID: []byte{0, 0, 0, 1}, Payload: []byte(`{"type":"heartbeat"}`)})))
	writeCorpus(wireDir, "mux_data_empty",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeMuxData, TaskID: []byte{0, 0, 0, 2}})))
	writeCorpus(wireDir, "mux_close",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeMuxClose, TaskID: []byte{0, 0, 0, 1}})))
	writeCorpus(wireDir, "mux_window",
		bytesEntry(wireFrame(&wire.Message{Type: wire.TypeMuxWindow, TaskID: []byte{0, 0, 0, 2}, Window: 131072})))
	// A close frame that illegally carries a body: patch the body length
	// and append junk — the decoder must reject trailing bytes.
	muxTrailing := wireFrame(&wire.Message{Type: wire.TypeMuxClose, TaskID: []byte{0, 0, 0, 3}})
	muxTrailing = append(muxTrailing, 0xDE, 0xAD)
	binary.BigEndian.PutUint32(muxTrailing[6:10], 2)
	writeCorpus(wireDir, "mux_close_trailing_bytes", bytesEntry(muxTrailing))
	// A window grant whose uvarint never terminates.
	muxBadVarint := wireFrame(&wire.Message{Type: wire.TypeMuxWindow, TaskID: []byte{0, 0, 0, 4}, Window: 1})
	muxBadVarint = muxBadVarint[:len(muxBadVarint)-1]
	muxBadVarint = append(muxBadVarint, 0xFF)
	writeCorpus(wireDir, "mux_window_bad_varint", bytesEntry(muxBadVarint))

	diffDir := filepath.Join("internal", "cluster", "testdata", "fuzz", "FuzzTransportDifferential")
	diff := func(typ, flags byte, taskID, name, errStr string, payload []byte, epoch, pending uint64, lease string) string {
		return multiEntry(byteEntry(typ), byteEntry(flags),
			stringEntry(taskID), stringEntry(name), stringEntry(errStr),
			bytesEntry(payload), uint64Entry(epoch), uint64Entry(pending), stringEntry(lease))
	}
	writeCorpus(diffDir, "register", diff(0, 1, "", "worker-0", "", nil, 0, 0, ""))
	writeCorpus(diffDir, "submit", diff(1, 0, "task-1", "", "", []byte(`{"genome":[0.5,-1.5]}`), 0, 0, ""))
	writeCorpus(diffDir, "assign", diff(2, 0, "task-2", "", "", []byte(`{"genome":[1]}`), 0, 0, ""))
	writeCorpus(diffDir, "result_err", diff(3, 0, "task-3", "", "diverged", []byte(`{"fitness":[2.5]}`), 0, 0, ""))
	writeCorpus(diffDir, "heartbeat", diff(4, 0, "task-4", "", "", nil, 0, 0, ""))
	writeCorpus(diffDir, "snapshot", diff(5, 0, "", "", "", nil, 981, 12, "lease-a"))
	writeCorpus(diffDir, "non_utf8_id", diff(1, 0, "id-\xff\xfe", "", "", []byte{0x80, 0x81}, 0, 0, ""))

	streamDir := filepath.Join("internal", "dataset", "stream", "testdata", "fuzz", "FuzzShardIndex")
	shardOK := npyBytes([]int{2, 6}, []float64{0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5, 9.5, 10.5, 11.5})
	writeCorpus(streamDir, "valid_2x6_shard", bytesEntry(shardOK))
	writeCorpus(streamDir, "truncated_shard", bytesEntry(shardOK[:len(shardOK)-7]))
	writeCorpus(streamDir, "header_no_payload",
		bytesEntry(rawNpy("{'descr': '<f8', 'fortran_order': False, 'shape': (2, 6), }", nil)))
	writeCorpus(streamDir, "hostile_row_claim",
		bytesEntry(rawNpy("{'descr': '<f8', 'fortran_order': False, 'shape': (1000000, 6), }", nil)))
	writeCorpus(streamDir, "wrong_width",
		bytesEntry(npyBytes([]int{2, 4}, []float64{1, 2, 3, 4, 5, 6, 7, 8})))
	writeCorpus(streamDir, "one_dimensional",
		bytesEntry(npyBytes([]int{6}, []float64{1, 2, 3, 4, 5, 6})))

	deepmdDir := filepath.Join("internal", "deepmd", "testdata", "fuzz", "FuzzInputJSON")
	writeCorpus(deepmdDir, "paper_input", stringEntry(`{
  "model": {
    "descriptor": {"rcut": 6.0, "rcut_smth": 1.0, "neuron": [25, 50, 100],
                   "axis_neuron": 16, "activation_function": "tanh"},
    "fitting_net": {"neuron": [240, 240, 240], "activation_function": "tanh"}
  },
  "learning_rate": {"start_lr": 0.001, "stop_lr": 1e-8},
  "training": {"numb_steps": 40000, "batch_size": 1, "disp_freq": 100}
}`))
	writeCorpus(deepmdDir, "empty_object", stringEntry(`{}`))
	writeCorpus(deepmdDir, "unknown_activation",
		stringEntry(`{"model":{"descriptor":{"activation_function":"gelu"}}}`))
	writeCorpus(deepmdDir, "negative_sizes",
		stringEntry(`{"model":{"descriptor":{"rcut":-1,"neuron":[-3]},"fitting_net":{"neuron":[0]}}}`))
	writeCorpus(deepmdDir, "wrong_types",
		stringEntry(`{"model":{"descriptor":{"rcut":"six"}},"training":{"numb_steps":"many"}}`))
	writeCorpus(deepmdDir, "not_json", stringEntry(`not json at all`))

	fmt.Println("fuzz corpora regenerated")
}
