// Package nsga2 implements the NSGA-II multiobjective evolutionary
// algorithm of Deb et al. (2002) as deployed in the paper: fast
// non-dominated sorting, the rank-ordinal sorting speed-up of Burlacu
// (2022) that the authors adopted (§2.1.4), crowding-distance assignment,
// and truncation selection keyed on (rank, crowding distance).  All
// objectives are minimized.
package nsga2

import (
	"math"

	"repro/internal/ea"
)

// nonFinite reports whether the fitness carries any NaN or ±Inf
// objective.  Such fitnesses mark broken evaluations that slipped past
// the MAXINT failure path (§2.2.4); they are ranked like failures — below
// every finite fitness — instead of leaking IEEE comparison accidents
// into the sort.
func nonFinite(f ea.Fitness) bool {
	for _, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Dominates reports whether fitness a Pareto-dominates fitness b under
// minimization: a is no worse on every objective and strictly better on at
// least one.
//
// Non-finite fitnesses (any NaN or ±Inf objective) are treated like the
// MAXINT failures of §2.2.4: a finite fitness dominates every non-finite
// one, a non-finite fitness dominates nothing, and two non-finite
// fitnesses are mutually non-dominating.  This keeps the relation a
// strict partial order even when an evaluator returns garbage.
func Dominates(a, b ea.Fitness) bool {
	if len(a) != len(b) {
		panic("nsga2: fitness dimension mismatch")
	}
	if nonFinite(a) || nonFinite(b) {
		return !nonFinite(a) && nonFinite(b)
	}
	strict := false
	for i := range a {
		switch {
		case a[i] > b[i]:
			return false
		case a[i] < b[i]:
			strict = true
		}
	}
	return strict
}

// Equal reports whether two fitnesses are identical on every objective.
func Equal(a, b ea.Fitness) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:ignore floateq Equal is defined as exact fitness-vector identity; callers rely on it for dedup, not closeness
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NonDominated filters pop down to its Pareto-optimal subset: members not
// dominated by any other member.  This is what the paper computes over the
// aggregated last generations of all runs to obtain the final frontier
// (Fig. 2).  Duplicated fitnesses are all retained.  Non-finite fitnesses
// are dominated by any finite member, so they only survive in a
// population with no finite fitness at all.
func NonDominated(pop ea.Population) ea.Population {
	var front ea.Population
	for i, cand := range pop {
		dominated := false
		for j, other := range pop {
			if i == j {
				continue
			}
			if Dominates(other.Fitness, cand.Fitness) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, cand)
		}
	}
	return front
}
