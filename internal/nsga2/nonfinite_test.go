package nsga2

import (
	"math"
	"testing"

	"repro/internal/ea"
)

// The NaN/Inf fitness semantics: any non-finite objective marks a broken
// evaluation, ranked like a MAXINT failure — dominated by every finite
// fitness, dominating nothing, mutually non-dominating with other broken
// fitnesses.  These tests pin that contract across dominance, all three
// sort implementations, crowding, tournament and hypervolume.

func nan2() ea.Fitness { return ea.Fitness{math.NaN(), 0.5} }
func inf2() ea.Fitness { return ea.Fitness{math.Inf(1), 0.5} }

func TestDominatesNonFinite(t *testing.T) {
	finite := ea.Fitness{1, 2}
	failure := ea.FailureFitness(2)
	cases := []struct {
		name string
		a, b ea.Fitness
		want bool
	}{
		{"finite beats NaN", finite, nan2(), true},
		{"finite beats +Inf", finite, inf2(), true},
		{"finite beats -Inf", finite, ea.Fitness{math.Inf(-1), 0}, true},
		{"NaN loses to finite", nan2(), finite, false},
		{"NaN vs NaN", nan2(), nan2(), false},
		{"NaN vs Inf", nan2(), inf2(), false},
		{"MAXINT failure beats NaN", failure, nan2(), true},
		{"NaN loses to MAXINT failure", nan2(), failure, false},
		{"-Inf never dominates", ea.Fitness{math.Inf(-1), math.Inf(-1)}, finite, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("%s: Dominates(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesNonFiniteIrreflexiveAsymmetric(t *testing.T) {
	vals := []ea.Fitness{
		nan2(), inf2(), {math.Inf(-1), 1}, {1, 1}, ea.FailureFitness(2), {math.NaN(), math.NaN()},
	}
	for _, a := range vals {
		if Dominates(a, a) {
			t.Errorf("Dominates(%v, %v) is reflexive", a, a)
		}
		for _, b := range vals {
			if Dominates(a, b) && Dominates(b, a) {
				t.Errorf("Dominates symmetric on %v, %v", a, b)
			}
		}
	}
}

func TestSortsPlaceNonFiniteInTrailingFront(t *testing.T) {
	mk := func() ea.Population {
		return popFrom(
			ea.Fitness{1, 1},
			nan2(),
			ea.Fitness{2, 2},
			inf2(),
			ea.Fitness{0, 3},
			ea.Fitness{math.Inf(-1), math.NaN()},
		)
	}
	for name, fn := range map[string]SortFunc{
		"fast": FastNonDominatedSort, "rank": RankOrdinalSort, "two": TwoObjectiveSort,
	} {
		pop := mk()
		fronts := fn(pop)
		if len(fronts) != 3 {
			t.Fatalf("%s: got %d fronts, want 3 (2 finite + 1 broken)", name, len(fronts))
		}
		last := fronts[len(fronts)-1]
		if len(last) != 3 {
			t.Fatalf("%s: trailing front has %d members, want the 3 broken ones", name, len(last))
		}
		for _, ind := range last {
			if !nonFinite(ind.Fitness) {
				t.Errorf("%s: finite fitness %v in trailing front", name, ind.Fitness)
			}
			if ind.Rank != len(fronts)-1 {
				t.Errorf("%s: broken member rank %d, want %d", name, ind.Rank, len(fronts)-1)
			}
		}
	}
}

func TestSortsAllNonFinite(t *testing.T) {
	for name, fn := range map[string]SortFunc{
		"fast": FastNonDominatedSort, "rank": RankOrdinalSort, "two": TwoObjectiveSort,
	} {
		pop := popFrom(nan2(), inf2(), nan2())
		fronts := fn(pop)
		if len(fronts) != 1 || len(fronts[0]) != 3 {
			t.Errorf("%s: all-broken population should form one front, got %d", name, len(fronts))
		}
		for _, ind := range pop {
			if ind.Rank != 0 {
				t.Errorf("%s: rank %d, want 0", name, ind.Rank)
			}
		}
	}
}

func TestCrowdingIgnoresNonFinite(t *testing.T) {
	front := popFrom(
		ea.Fitness{0, 4},
		nan2(),
		ea.Fitness{1, 3},
		ea.Fitness{2, 2},
		inf2(),
		ea.Fitness{3, 1},
		ea.Fitness{4, 0},
	)
	CrowdingDistance(front)
	for _, ind := range front {
		if nonFinite(ind.Fitness) {
			if ind.Distance != 0 {
				t.Errorf("broken member distance %v, want 0", ind.Distance)
			}
			continue
		}
		if math.IsNaN(ind.Distance) {
			t.Errorf("finite member %v got NaN distance", ind.Fitness)
		}
	}
	// The finite members must get exactly the distances they would get
	// with the broken members absent.
	clean := popFrom(
		ea.Fitness{0, 4}, ea.Fitness{1, 3}, ea.Fitness{2, 2}, ea.Fitness{3, 1}, ea.Fitness{4, 0},
	)
	CrowdingDistance(clean)
	finite := make(ea.Population, 0, 5)
	for _, ind := range front {
		if !nonFinite(ind.Fitness) {
			finite = append(finite, ind)
		}
	}
	for i := range clean {
		if got, want := finite[i].Distance, clean[i].Distance; got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Errorf("member %d distance %v, want %v", i, got, want)
		}
	}
}

func TestCrowdingAllNonFinite(t *testing.T) {
	front := popFrom(nan2(), inf2(), nan2())
	CrowdingDistance(front)
	for _, ind := range front {
		if ind.Distance != 0 {
			t.Errorf("distance %v, want 0", ind.Distance)
		}
	}
}

func TestTournamentNeverPrefersNonFinite(t *testing.T) {
	pop := popFrom(ea.Fitness{1, 1}, nan2())
	fronts := RankOrdinalSort(pop)
	CrowdingDistanceAll(fronts)
	good, bad := pop[0], pop[1]
	if CrowdedBetter(good, bad) != good || CrowdedBetter(bad, good) != good {
		t.Error("crowded comparison preferred a non-finite fitness")
	}
}

func TestSelectDropsNonFiniteFirst(t *testing.T) {
	pop := popFrom(
		ea.Fitness{1, 1}, nan2(), ea.Fitness{2, 2}, inf2(), ea.Fitness{3, 3},
	)
	sel := Select(pop, 3, nil)
	for _, ind := range sel {
		if nonFinite(ind.Fitness) {
			t.Errorf("selection kept broken fitness %v over finite candidates", ind.Fitness)
		}
	}
}

func TestHypervolumeSkipsNonFinite(t *testing.T) {
	ref := ea.Fitness{3, 3}
	base := popFrom(ea.Fitness{1, 1})
	want := Hypervolume2D(base, ref)
	poisoned := popFrom(
		ea.Fitness{1, 1}, nan2(), ea.Fitness{math.Inf(-1), 0}, ea.Fitness{0, math.Inf(-1)},
	)
	if got := Hypervolume2D(poisoned, ref); got != want {
		t.Errorf("Hypervolume2D with non-finite members = %v, want %v", got, want)
	}
	if got := HypervolumeMC(popFrom(nan2()), ref, 1000, 1); got != 0 {
		t.Errorf("HypervolumeMC of all-NaN population = %v, want 0", got)
	}
	mcClean := HypervolumeMC(base, ref, 1000, 1)
	mcPoisoned := HypervolumeMC(poisoned, ref, 1000, 1)
	if mcClean != mcPoisoned {
		t.Errorf("HypervolumeMC changed under non-finite members: %v vs %v", mcPoisoned, mcClean)
	}
}

func TestNonDominatedWithNonFinite(t *testing.T) {
	pop := popFrom(ea.Fitness{1, 1}, nan2(), inf2())
	nd := NonDominated(pop)
	if len(nd) != 1 || nonFinite(nd[0].Fitness) {
		t.Fatalf("NonDominated kept broken members: %v", nd)
	}
	allBad := popFrom(nan2(), inf2())
	if got := NonDominated(allBad); len(got) != 2 {
		t.Errorf("all-broken population: NonDominated returned %d members, want 2", len(got))
	}
}
