package nsga2

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ea"
)

func popFrom(fits ...ea.Fitness) ea.Population {
	pop := make(ea.Population, len(fits))
	for i, f := range fits {
		pop[i] = &ea.Individual{Fitness: f, Evaluated: true}
	}
	return pop
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b ea.Fitness
		want bool
	}{
		{ea.Fitness{1, 1}, ea.Fitness{2, 2}, true},
		{ea.Fitness{1, 2}, ea.Fitness{2, 1}, false},
		{ea.Fitness{1, 1}, ea.Fitness{1, 1}, false}, // equal: no strict improvement
		{ea.Fitness{1, 1}, ea.Fitness{1, 2}, true},
		{ea.Fitness{2, 2}, ea.Fitness{1, 1}, false},
		{ea.Fitness{0, 5, 3}, ea.Fitness{0, 5, 4}, true},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesIsStrictPartialOrder(t *testing.T) {
	// Irreflexive and asymmetric, via testing/quick.
	irreflexive := func(a, b float64) bool {
		f := ea.Fitness{a, b}
		return !Dominates(f, f)
	}
	if err := quick.Check(irreflexive, nil); err != nil {
		t.Errorf("irreflexivity: %v", err)
	}
	asymmetric := func(a1, a2, b1, b2 float64) bool {
		fa, fb := ea.Fitness{a1, a2}, ea.Fitness{b1, b2}
		return !(Dominates(fa, fb) && Dominates(fb, fa))
	}
	if err := quick.Check(asymmetric, nil); err != nil {
		t.Errorf("asymmetry: %v", err)
	}
}

func TestDominatesTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := ea.Fitness{rng.Float64(), rng.Float64()}
		b := ea.Fitness{rng.Float64(), rng.Float64()}
		c := ea.Fitness{rng.Float64(), rng.Float64()}
		if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
			t.Fatalf("transitivity violated: %v ≺ %v ≺ %v but not %v ≺ %v", a, b, b, c, a)
		}
	}
}

func TestFastNonDominatedSortSimple(t *testing.T) {
	pop := popFrom(
		ea.Fitness{1, 1}, // front 0
		ea.Fitness{2, 2}, // front 1
		ea.Fitness{0, 3}, // front 0
		ea.Fitness{3, 0}, // front 0
		ea.Fitness{3, 3}, // front 2 (dominated by {1,1} and {2,2})
	)
	fronts := FastNonDominatedSort(pop)
	if len(fronts) != 3 {
		t.Fatalf("got %d fronts, want 3", len(fronts))
	}
	if len(fronts[0]) != 3 || len(fronts[1]) != 1 || len(fronts[2]) != 1 {
		t.Errorf("front sizes = %d,%d,%d, want 3,1,1", len(fronts[0]), len(fronts[1]), len(fronts[2]))
	}
	wantRanks := []int{0, 1, 0, 0, 2}
	for i, w := range wantRanks {
		if pop[i].Rank != w {
			t.Errorf("pop[%d].Rank = %d, want %d", i, pop[i].Rank, w)
		}
	}
}

func TestFrontsAreMutuallyNonDominating(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop := make(ea.Population, 200)
	for i := range pop {
		pop[i] = &ea.Individual{Fitness: ea.Fitness{rng.Float64(), rng.Float64(), rng.Float64()}}
	}
	for name, sortFn := range map[string]SortFunc{
		"fast": FastNonDominatedSort, "rank": RankOrdinalSort,
	} {
		fronts := sortFn(pop)
		total := 0
		for fi, front := range fronts {
			total += len(front)
			for i := range front {
				for j := range front {
					if i != j && Dominates(front[i].Fitness, front[j].Fitness) {
						t.Errorf("%s: front %d contains dominated pair", name, fi)
					}
				}
			}
		}
		if total != len(pop) {
			t.Errorf("%s: fronts cover %d of %d individuals", name, total, len(pop))
		}
		// Every member of front k+1 must be dominated by someone in front k.
		for fi := 1; fi < len(fronts); fi++ {
			for _, ind := range fronts[fi] {
				found := false
				for _, d := range fronts[fi-1] {
					if Dominates(d.Fitness, ind.Fitness) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: member of front %d not dominated by front %d", name, fi, fi-1)
				}
			}
		}
	}
}

// ranksBy runs a sort function on a copy and returns fitness->rank pairs
// keyed by individual index.
func ranksBy(pop ea.Population, fn SortFunc) []int {
	fn(pop)
	out := make([]int, len(pop))
	for i, ind := range pop {
		out[i] = ind.Rank
	}
	return out
}

func TestSortImplementationsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(120)
		m := 2 + rng.Intn(3)
		pop := make(ea.Population, n)
		for i := range pop {
			f := make(ea.Fitness, m)
			for k := range f {
				// Coarse grid to force plenty of ties and duplicates.
				f[k] = float64(rng.Intn(6))
			}
			pop[i] = &ea.Individual{Fitness: f}
		}
		want := ranksBy(pop, FastNonDominatedSort)
		got := ranksBy(pop, RankOrdinalSort)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: RankOrdinalSort rank[%d] = %d, FastNonDominatedSort = %d (fitness %v)",
					trial, i, got[i], want[i], pop[i].Fitness)
			}
		}
		if m == 2 {
			got2 := ranksBy(pop, TwoObjectiveSort)
			for i := range want {
				if got2[i] != want[i] {
					t.Fatalf("trial %d: TwoObjectiveSort rank[%d] = %d, want %d (fitness %v)",
						trial, i, got2[i], want[i], pop[i].Fitness)
				}
			}
		}
	}
}

func TestSortHandlesDuplicates(t *testing.T) {
	pop := popFrom(
		ea.Fitness{1, 1}, ea.Fitness{1, 1}, ea.Fitness{1, 1},
		ea.Fitness{2, 2}, ea.Fitness{2, 2},
	)
	for name, fn := range map[string]SortFunc{
		"fast": FastNonDominatedSort, "rank": RankOrdinalSort, "two": TwoObjectiveSort,
	} {
		fronts := fn(pop)
		if len(fronts) != 2 || len(fronts[0]) != 3 || len(fronts[1]) != 2 {
			t.Errorf("%s: fronts sizes wrong for duplicates: %d fronts", name, len(fronts))
		}
	}
}

func TestSortHandlesFailureFitness(t *testing.T) {
	// MAXINT failures must all land in the worst front, never panic.
	pop := popFrom(
		ea.Fitness{0.01, 0.02},
		ea.FailureFitness(2),
		ea.Fitness{0.02, 0.01},
		ea.FailureFitness(2),
	)
	fronts := RankOrdinalSort(pop)
	if len(fronts) != 2 {
		t.Fatalf("got %d fronts, want 2", len(fronts))
	}
	for _, ind := range fronts[1] {
		if !ind.Fitness.IsFailure() {
			t.Error("non-failure individual in worst front")
		}
	}
}

func TestSortEmptyAndSingle(t *testing.T) {
	for name, fn := range map[string]SortFunc{
		"fast": FastNonDominatedSort, "rank": RankOrdinalSort, "two": TwoObjectiveSort,
	} {
		if fronts := fn(nil); fronts != nil {
			t.Errorf("%s(nil) = %v, want nil", name, fronts)
		}
		single := popFrom(ea.Fitness{1, 2})
		fronts := fn(single)
		if len(fronts) != 1 || len(fronts[0]) != 1 || single[0].Rank != 0 {
			t.Errorf("%s(single) wrong", name)
		}
	}
}

func TestQuickSortEquivalence(t *testing.T) {
	f := func(vals []uint8) bool {
		// Build a population of pairs from the byte stream.
		n := len(vals) / 2
		if n == 0 {
			return true
		}
		pop := make(ea.Population, n)
		for i := 0; i < n; i++ {
			pop[i] = &ea.Individual{Fitness: ea.Fitness{float64(vals[2*i] % 8), float64(vals[2*i+1] % 8)}}
		}
		want := ranksBy(pop, FastNonDominatedSort)
		got := ranksBy(pop, RankOrdinalSort)
		got2 := ranksBy(pop, TwoObjectiveSort)
		for i := range want {
			if got[i] != want[i] || got2[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCrowdingBoundariesInfinite(t *testing.T) {
	front := popFrom(
		ea.Fitness{0, 4}, ea.Fitness{1, 3}, ea.Fitness{2, 2}, ea.Fitness{3, 1}, ea.Fitness{4, 0},
	)
	CrowdingDistance(front)
	if !math.IsInf(front[0].Distance, 1) || !math.IsInf(front[4].Distance, 1) {
		t.Error("boundary individuals do not have +Inf distance")
	}
	for _, ind := range front[1:4] {
		if math.IsInf(ind.Distance, 1) || ind.Distance <= 0 {
			t.Errorf("interior distance = %v, want finite positive", ind.Distance)
		}
	}
	// Uniformly spaced points have equal interior distances.
	if math.Abs(front[1].Distance-front[2].Distance) > 1e-12 {
		t.Errorf("uniform spacing gives unequal distances: %v vs %v", front[1].Distance, front[2].Distance)
	}
}

func TestCrowdingPrefersSpreadPoints(t *testing.T) {
	// Middle point crowded between close neighbours must score lower than
	// a point with distant neighbours.
	front := popFrom(
		ea.Fitness{0, 10},
		ea.Fitness{1, 8.9},
		ea.Fitness{1.1, 8.8}, // crowded
		ea.Fitness{1.2, 8.7},
		ea.Fitness{5, 5},
		ea.Fitness{10, 0},
	)
	CrowdingDistance(front)
	if front[2].Distance >= front[4].Distance {
		t.Errorf("crowded point distance %v >= spread point distance %v", front[2].Distance, front[4].Distance)
	}
}

func TestCrowdingSmallFronts(t *testing.T) {
	one := popFrom(ea.Fitness{1, 2})
	CrowdingDistance(one)
	if !math.IsInf(one[0].Distance, 1) {
		t.Error("singleton front distance not +Inf")
	}
	two := popFrom(ea.Fitness{1, 2}, ea.Fitness{2, 1})
	CrowdingDistance(two)
	for _, ind := range two {
		if !math.IsInf(ind.Distance, 1) {
			t.Error("pair front distance not +Inf")
		}
	}
	CrowdingDistance(nil) // must not panic
}

func TestCrowdingDegenerateObjective(t *testing.T) {
	// All f0 equal: span zero on objective 0 must not produce NaN.
	front := popFrom(ea.Fitness{1, 0}, ea.Fitness{1, 1}, ea.Fitness{1, 2})
	CrowdingDistance(front)
	for _, ind := range front {
		if math.IsNaN(ind.Distance) {
			t.Error("NaN crowding distance on degenerate objective")
		}
	}
}

func TestTruncationSelectOrdering(t *testing.T) {
	pop := ea.Population{
		{Rank: 1, Distance: math.Inf(1)},
		{Rank: 0, Distance: 0.5},
		{Rank: 0, Distance: math.Inf(1)},
		{Rank: 2, Distance: math.Inf(1)},
		{Rank: 0, Distance: 1.5},
	}
	sel := TruncationSelect(pop, 3)
	if sel[0] != pop[2] || sel[1] != pop[4] || sel[2] != pop[1] {
		t.Errorf("selection order wrong: got ranks/distances %v/%v, %v/%v, %v/%v",
			sel[0].Rank, sel[0].Distance, sel[1].Rank, sel[1].Distance, sel[2].Rank, sel[2].Distance)
	}
}

func TestTruncationSelectClampsN(t *testing.T) {
	pop := ea.Population{{Rank: 0}}
	sel := TruncationSelect(pop, 10)
	if len(sel) != 1 {
		t.Errorf("len(sel) = %d, want 1", len(sel))
	}
}

func TestSelectKeepsParetoFront(t *testing.T) {
	pop := popFrom(
		ea.Fitness{1, 1}, ea.Fitness{0, 2}, ea.Fitness{2, 0}, // front 0
		ea.Fitness{3, 3}, ea.Fitness{4, 4}, ea.Fitness{5, 5},
	)
	sel := Select(pop, 3, nil)
	for _, ind := range sel {
		if ind.Rank != 0 {
			t.Errorf("selected individual with rank %d, want 0", ind.Rank)
		}
	}
}

func TestNonDominatedMatchesFirstFront(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pop := make(ea.Population, 100)
	for i := range pop {
		pop[i] = &ea.Individual{Fitness: ea.Fitness{rng.Float64(), rng.Float64()}}
	}
	fronts := FastNonDominatedSort(pop)
	nd := NonDominated(pop)
	if len(nd) != len(fronts[0]) {
		t.Errorf("NonDominated size %d != first front size %d", len(nd), len(fronts[0]))
	}
	set := map[*ea.Individual]bool{}
	for _, ind := range fronts[0] {
		set[ind] = true
	}
	for _, ind := range nd {
		if !set[ind] {
			t.Error("NonDominated member missing from first front")
		}
	}
}

func TestEqualFitness(t *testing.T) {
	if !Equal(ea.Fitness{1, 2}, ea.Fitness{1, 2}) {
		t.Error("Equal(same) = false")
	}
	if Equal(ea.Fitness{1, 2}, ea.Fitness{1, 3}) {
		t.Error("Equal(diff) = true")
	}
	if Equal(ea.Fitness{1}, ea.Fitness{1, 2}) {
		t.Error("Equal(length mismatch) = true")
	}
}

func TestSelectNeverDropsFirstFrontWhenItFits(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		pop := make(ea.Population, 60)
		for i := range pop {
			pop[i] = &ea.Individual{Fitness: ea.Fitness{rng.Float64(), rng.Float64()}}
		}
		front := NonDominated(pop)
		n := len(front) + rng.Intn(10)
		if n > len(pop) {
			n = len(pop)
		}
		sel := Select(pop, n, nil)
		inSel := map[*ea.Individual]bool{}
		for _, ind := range sel {
			inSel[ind] = true
		}
		for _, f := range front {
			if !inSel[f] {
				t.Fatalf("trial %d: first-front member dropped with n=%d ≥ front=%d",
					trial, n, len(front))
			}
		}
	}
}
