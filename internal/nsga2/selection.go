package nsga2

import (
	"sort"

	"repro/internal/ea"
)

// TruncationSelect keeps the best n individuals ordered by ascending rank
// and, within a rank, descending crowding distance — the paper's
// ops.truncation_selection(key=lambda x: (-x.rank, x.distance)) expressed
// for minimization of rank.  Rank and Distance must already be assigned
// (via a sort function and CrowdingDistanceAll).  The input is not
// modified; the result is a fresh slice.
func TruncationSelect(pop ea.Population, n int) ea.Population {
	if n > len(pop) {
		n = len(pop)
	}
	sorted := pop.Clone()
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].Rank != sorted[b].Rank {
			return sorted[a].Rank < sorted[b].Rank
		}
		return sorted[a].Distance > sorted[b].Distance
	})
	return sorted[:n]
}

// SortFunc selects which non-dominated sorting implementation the
// generational loop uses; the ablation benchmarks compare them.
type SortFunc func(ea.Population) []ea.Population

// Select runs the full NSGA-II environmental-selection step on a combined
// parent+offspring population: non-dominated sort, crowding distance, then
// truncation to n survivors.
func Select(pop ea.Population, n int, sortFn SortFunc) ea.Population {
	if sortFn == nil {
		sortFn = RankOrdinalSort
	}
	fronts := sortFn(pop)
	CrowdingDistanceAll(fronts)
	return TruncationSelect(pop, n)
}
