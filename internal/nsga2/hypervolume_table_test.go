package nsga2

import (
	"math"
	"testing"

	"repro/internal/ea"
)

// Table-driven Hypervolume2D checks against hand-computed areas,
// concentrating on degenerate fronts: single points, collinear points,
// points exactly on the reference point or its axes, duplicates, and
// fronts mixing dominated and out-of-range members.
func TestHypervolume2DHandComputed(t *testing.T) {
	cases := []struct {
		name string
		pop  []ea.Fitness
		ref  ea.Fitness
		want float64
	}{
		{
			name: "single interior point",
			pop:  []ea.Fitness{{1, 2}},
			ref:  ea.Fitness{4, 5},
			// (4-1)*(5-2)
			want: 9,
		},
		{
			name: "point on the reference point",
			pop:  []ea.Fitness{{4, 4}},
			ref:  ea.Fitness{4, 4},
			// Strict dominance required: zero volume.
			want: 0,
		},
		{
			name: "point on one reference axis",
			pop:  []ea.Fitness{{1, 4}},
			ref:  ea.Fitness{4, 4},
			// f1 == ref1: degenerate box of height 0.
			want: 0,
		},
		{
			name: "horizontally collinear points",
			pop:  []ea.Fitness{{1, 2}, {2, 2}, {3, 2}},
			ref:  ea.Fitness{4, 4},
			// All share f1=2; only (1,2) matters: (4-1)*(4-2).
			want: 6,
		},
		{
			name: "vertically collinear points",
			pop:  []ea.Fitness{{2, 1}, {2, 2}, {2, 3}},
			ref:  ea.Fitness{4, 4},
			// Only (2,1) matters: (4-2)*(4-1).
			want: 6,
		},
		{
			name: "diagonally collinear points",
			pop:  []ea.Fitness{{1, 1}, {2, 2}, {3, 3}},
			ref:  ea.Fitness{4, 4},
			// Nested boxes; the outermost (1,1) covers the rest: 3*3.
			want: 9,
		},
		{
			name: "staircase of three",
			pop:  []ea.Fitness{{1, 3}, {2, 2}, {3, 1}},
			ref:  ea.Fitness{4, 4},
			// Columns: (2-1)(4-3) + (3-2)(4-2) + (4-3)(4-1) = 1+2+3.
			want: 6,
		},
		{
			name: "staircase with duplicates",
			pop:  []ea.Fitness{{1, 3}, {1, 3}, {3, 1}, {3, 1}},
			ref:  ea.Fitness{4, 4},
			// (3-1)(4-3) + (4-3)(4-1) = 2+3.
			want: 5,
		},
		{
			name: "dominated interior point adds nothing",
			pop:  []ea.Fitness{{1, 1}, {2, 3}},
			ref:  ea.Fitness{4, 4},
			want: 9,
		},
		{
			name: "partially overlapping boxes",
			pop:  []ea.Fitness{{0, 2}, {2, 0}},
			ref:  ea.Fitness{3, 3},
			// Boxes of area 3 each, overlap [2,3]x[2,3] counted once: 3+3-1.
			want: 5,
		},
		{
			name: "member outside reference ignored",
			pop:  []ea.Fitness{{1, 1}, {5, 0}},
			ref:  ea.Fitness{3, 3},
			want: 4,
		},
		{
			name: "empty front",
			pop:  nil,
			ref:  ea.Fitness{1, 1},
			want: 0,
		},
		{
			name: "only failures",
			pop:  []ea.Fitness{ea.FailureFitness(2), ea.FailureFitness(2)},
			ref:  ea.Fitness{1, 1},
			want: 0,
		},
		{
			name: "negative objective values",
			pop:  []ea.Fitness{{-2, -1}},
			ref:  ea.Fitness{0, 0},
			// (0-(-2))*(0-(-1)).
			want: 2,
		},
		{
			name: "reference tight on one axis only",
			pop:  []ea.Fitness{{1, 1}, {0, 2}},
			ref:  ea.Fitness{2, 2},
			// (0,2) sits on the f1 axis bound: only (1,1) contributes.
			want: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Hypervolume2D(popFrom(c.pop...), c.ref)
			if math.Abs(got-c.want) > 1e-12 {
				t.Errorf("Hypervolume2D = %v, want %v", got, c.want)
			}
		})
	}
}

func TestHypervolume2DWrongReferenceDimension(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 3-D reference point")
		}
	}()
	Hypervolume2D(popFrom(ea.Fitness{1, 1}), ea.Fitness{1, 1, 1})
}
