package nsga2

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ea"
)

func TestCrowdedBetter(t *testing.T) {
	better := &ea.Individual{Rank: 0, Distance: 0.1}
	worse := &ea.Individual{Rank: 1, Distance: math.Inf(1)}
	if CrowdedBetter(better, worse) != better {
		t.Error("lower rank did not win")
	}
	a := &ea.Individual{Rank: 0, Distance: 2}
	b := &ea.Individual{Rank: 0, Distance: 1}
	if CrowdedBetter(a, b) != a || CrowdedBetter(b, a) != a {
		t.Error("larger crowding distance did not win on tie")
	}
}

func TestTournamentPrefersBetterRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop := ea.Population{
		{Rank: 0, Distance: 1},
		{Rank: 2, Distance: 1},
	}
	sel := TournamentSelection(rng, pop)
	wins := 0
	const n = 4000
	for i := 0; i < n; i++ {
		ind, ok := sel()
		if !ok {
			t.Fatal("stream ended")
		}
		if ind == pop[0] {
			wins++
		}
	}
	// P(best selected) = P(both draws hit worse)ᶜ = 1 − 1/4 = 0.75.
	rate := float64(wins) / n
	if rate < 0.70 || rate > 0.80 {
		t.Errorf("best-individual selection rate %v, want ≈0.75", rate)
	}
}

func TestTournamentEmptyPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sel := TournamentSelection(rng, nil)
	if _, ok := sel(); ok {
		t.Error("empty population yielded an individual")
	}
}
