package nsga2

import (
	"math"
	"sort"

	"repro/internal/ea"
)

// CrowdingDistance assigns Deb's crowding distance to every member of a
// single front, writing Individual.Distance.  Boundary solutions on each
// objective receive +Inf so they are always preferred; interior solutions
// accumulate the normalized side-length of the cuboid spanned by their
// neighbours.  A front of one or two members gets +Inf everywhere.
//
// Members with a non-finite fitness (any NaN or ±Inf objective) keep
// Distance 0 — never preferred in a tie — and are excluded from the
// finite members' spacing computation, so a single broken evaluation
// cannot poison every distance in its front with NaN.  The one/two-member
// +Inf rule counts finite members only.
func CrowdingDistance(front ea.Population) {
	if len(front) == 0 {
		return
	}
	for _, ind := range front {
		ind.Distance = 0
	}
	valid := front
	for _, ind := range front {
		if nonFinite(ind.Fitness) {
			valid = make(ea.Population, 0, len(front))
			for _, v := range front {
				if !nonFinite(v.Fitness) {
					valid = append(valid, v)
				}
			}
			break
		}
	}
	front = valid
	n := len(front)
	if n == 0 {
		return
	}
	if n <= 2 {
		for _, ind := range front {
			ind.Distance = math.Inf(1)
		}
		return
	}
	m := len(front[0].Fitness)
	idx := make([]int, n)
	for obj := 0; obj < m; obj++ {
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return front[idx[a]].Fitness[obj] < front[idx[b]].Fitness[obj]
		})
		lo := front[idx[0]].Fitness[obj]
		hi := front[idx[n-1]].Fitness[obj]
		front[idx[0]].Distance = math.Inf(1)
		front[idx[n-1]].Distance = math.Inf(1)
		span := hi - lo
		if span == 0 {
			continue // degenerate objective: contributes nothing
		}
		for k := 1; k < n-1; k++ {
			ind := front[idx[k]]
			if math.IsInf(ind.Distance, 1) {
				continue
			}
			ind.Distance += (front[idx[k+1]].Fitness[obj] - front[idx[k-1]].Fitness[obj]) / span
		}
	}
}

// CrowdingDistanceAll runs CrowdingDistance over every front.
func CrowdingDistanceAll(fronts []ea.Population) {
	for _, f := range fronts {
		CrowdingDistance(f)
	}
}
