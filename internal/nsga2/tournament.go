package nsga2

import (
	"math/rand"

	"repro/internal/ea"
)

// TournamentSelection yields parents chosen by binary crowded-comparison
// tournaments — the canonical NSGA-II parent selection (lower rank wins;
// ties broken by larger crowding distance).  The paper uses plain random
// selection instead (§2.2.3); this operator enables the ablation.  Rank
// and Distance must be assigned on the population (they are after any
// Select call).
func TournamentSelection(rng *rand.Rand, pop ea.Population) ea.Stream {
	if len(pop) == 0 {
		return func() (*ea.Individual, bool) { return nil, false }
	}
	return func() (*ea.Individual, bool) {
		a := pop[rng.Intn(len(pop))]
		b := pop[rng.Intn(len(pop))]
		return CrowdedBetter(a, b), true
	}
}

// CrowdedBetter returns the winner of the crowded-comparison operator.
func CrowdedBetter(a, b *ea.Individual) *ea.Individual {
	if a.Rank != b.Rank {
		if a.Rank < b.Rank {
			return a
		}
		return b
	}
	if a.Distance >= b.Distance {
		return a
	}
	return b
}
