package nsga2

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/ea"
)

// Config parameterizes a generational NSGA-II run matching the paper's
// setup (§2.2.3, §2.2.5): population size equal to the number of compute
// nodes, random parent selection, cloning, annealed isotropic Gaussian
// mutation with hard bounds, pooled parallel evaluation, then combined
// parent+offspring environmental selection.
type Config struct {
	// PopSize is both the parent and offspring population size (100 in the
	// paper, one individual per Summit node).
	PopSize int
	// Generations is the number of offspring generations after the random
	// initial population (6 in the paper, for 7 evaluation rounds total).
	Generations int
	// Bounds give per-gene initialization ranges and mutation hard bounds
	// (Table 1, column 2).
	Bounds ea.Bounds
	// InitialStd is the starting Gaussian-mutation σ per gene (Table 1,
	// column 3).
	InitialStd []float64
	// AnnealFactor multiplies every σ after each generation; the paper
	// uses 0.85.  Use 1 to disable annealing (ablation).
	AnnealFactor float64
	// Evaluator computes the multiobjective fitness.
	Evaluator ea.Evaluator
	// Pool configures parallel evaluation (parallelism, per-individual
	// timeout, objective count).
	Pool ea.PoolConfig
	// Seed makes the run reproducible.
	Seed int64
	// Sort selects the non-dominated sorting implementation; nil means
	// RankOrdinalSort, the paper's speed-up.
	Sort SortFunc
	// Observer, if non-nil, is invoked after each generation with the
	// individuals evaluated in that generation and the survivors selected
	// as the next parents.  Generation 0 is the random initial population.
	Observer func(gen int, evaluated, survivors ea.Population)
	// Breeder, if non-nil, replaces the paper's reproduction pipeline
	// (random selection → clone → annealed isotropic Gaussian mutation)
	// with a custom offspring stream — used by the operator ablations to
	// compare against canonical tournament+SBX+polynomial variation.
	Breeder func(rng *rand.Rand, eaCtx *ea.Context, parents ea.Population, gen int) ea.Stream
	// Initial, if non-nil, warm-starts the run from an existing
	// population instead of a random one — how a campaign continues after
	// a walltime-limited batch job (the paper's jobs were capped at 12
	// hours, §2.2.5).  Already-evaluated members keep their fitness;
	// unevaluated ones are evaluated in generation 0.  Its length must
	// equal PopSize.
	Initial ea.Population
}

// Validate checks the configuration for structural errors.
func (c *Config) Validate() error {
	if c.PopSize <= 0 {
		return errors.New("nsga2: PopSize must be positive")
	}
	if c.Generations < 0 {
		return errors.New("nsga2: Generations must be non-negative")
	}
	if len(c.Bounds) == 0 {
		return errors.New("nsga2: Bounds must be non-empty")
	}
	if err := c.Bounds.Validate(); err != nil {
		return err
	}
	if len(c.InitialStd) != len(c.Bounds) {
		return fmt.Errorf("nsga2: InitialStd length %d != genome length %d", len(c.InitialStd), len(c.Bounds))
	}
	if c.Evaluator == nil {
		return errors.New("nsga2: Evaluator is required")
	}
	if c.AnnealFactor < 0 {
		return errors.New("nsga2: AnnealFactor must be non-negative")
	}
	return nil
}

// GenerationRecord captures one generation of a run for later analysis
// (the material behind Figs. 1–3 and Tables 2–3).
type GenerationRecord struct {
	Gen       int           // generation index, 0 = initial random population
	Evaluated ea.Population // individuals evaluated in this generation
	Survivors ea.Population // parents selected for the next generation
	Failures  int           // evaluations that received MAXINT fitness
}

// Result is the outcome of a full NSGA-II run.
type Result struct {
	Generations []GenerationRecord
	// Final is the surviving parent population after the last generation —
	// "the last generation" the paper aggregates across runs.
	Final ea.Population
}

// LastEvaluated returns the individuals evaluated in the final generation.
func (r *Result) LastEvaluated() ea.Population {
	if len(r.Generations) == 0 {
		return nil
	}
	return r.Generations[len(r.Generations)-1].Evaluated
}

// TotalEvaluations counts every fitness evaluation performed in the run.
func (r *Result) TotalEvaluations() int {
	n := 0
	for _, g := range r.Generations {
		n += len(g.Evaluated)
	}
	return n
}

// TotalFailures counts evaluations that received failure fitness.
func (r *Result) TotalFailures() int {
	n := 0
	for _, g := range r.Generations {
		n += g.Failures
	}
	return n
}

// Run executes the generational NSGA-II loop described in Listing 1 of the
// paper: for each generation, offspring are produced by random parent
// selection → clone → isotropic Gaussian mutation (annealed σ, hard
// bounds) → pooled evaluation; the combined parent+offspring population is
// rank-sorted with crowding distances and truncated back to PopSize.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.AnnealFactor == 0 {
		cfg.AnnealFactor = 0.85
	}
	sortFn := cfg.Sort
	if sortFn == nil {
		sortFn = RankOrdinalSort
	}
	if cfg.Pool.Objectives <= 0 {
		cfg.Pool.Objectives = 2
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	eaCtx := ea.NewContext(cfg.InitialStd)
	res := &Result{}

	// Generation 0: uniform random initial population, or a warm start.
	var parents ea.Population
	if cfg.Initial != nil {
		if len(cfg.Initial) != cfg.PopSize {
			return nil, fmt.Errorf("nsga2: Initial population has %d members, PopSize is %d",
				len(cfg.Initial), cfg.PopSize)
		}
		parents = cfg.Initial.Clone()
		var pending ea.Population
		for _, ind := range parents {
			if !ind.Evaluated {
				pending = append(pending, ind)
			}
		}
		if len(pending) > 0 {
			ea.EvalPool(ctx, ea.Source(pending), len(pending), cfg.Evaluator, cfg.Pool)
		}
	} else {
		parents = ea.RandomPopulation(rng, cfg.Bounds, cfg.PopSize, 0)
		parents = ea.EvalPool(ctx, ea.Source(parents), cfg.PopSize, cfg.Evaluator, cfg.Pool)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fronts := sortFn(parents)
	CrowdingDistanceAll(fronts)
	rec := GenerationRecord{Gen: 0, Evaluated: parents, Survivors: parents, Failures: parents.Failures()}
	res.Generations = append(res.Generations, rec)
	if cfg.Observer != nil {
		cfg.Observer(0, parents, parents)
	}

	breeder := cfg.Breeder
	if breeder == nil {
		breeder = func(rng *rand.Rand, eaCtx *ea.Context, parents ea.Population, gen int) ea.Stream {
			return ea.Pipe(
				ea.RandomSelection(rng, parents),
				ea.Clone(),
				ea.MutateGaussian(rng, eaCtx, cfg.Bounds),
				ea.SetBirth(gen),
			)
		}
	}

	for gen := 1; gen <= cfg.Generations; gen++ {
		stream := breeder(rng, eaCtx, parents, gen)
		offspring := ea.EvalPool(ctx, stream, cfg.PopSize, cfg.Evaluator, cfg.Pool)
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		combined := append(parents.Clone(), offspring...)
		parents = Select(combined, cfg.PopSize, sortFn)

		// Anneal mutation σ after the offspring return from the pipeline,
		// exactly where the paper multiplies context['std'] by 0.85.
		eaCtx.AnnealStd(cfg.AnnealFactor)
		eaCtx.AdvanceGeneration()

		rec := GenerationRecord{Gen: gen, Evaluated: offspring, Survivors: parents, Failures: offspring.Failures()}
		res.Generations = append(res.Generations, rec)
		if cfg.Observer != nil {
			cfg.Observer(gen, offspring, parents)
		}
	}

	res.Final = parents
	return res, nil
}
