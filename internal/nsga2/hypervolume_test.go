package nsga2

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ea"
)

func TestHypervolume2DSinglePoint(t *testing.T) {
	pop := popFrom(ea.Fitness{1, 1})
	// Box from (1,1) to (3,3): area 4.
	if got := Hypervolume2D(pop, ea.Fitness{3, 3}); math.Abs(got-4) > 1e-12 {
		t.Errorf("HV = %v, want 4", got)
	}
}

func TestHypervolume2DStaircase(t *testing.T) {
	pop := popFrom(
		ea.Fitness{1, 3},
		ea.Fitness{2, 2},
		ea.Fitness{3, 1},
	)
	// ref (4,4): contributions (2-1)(4-3)+(3-2)(4-2)+(4-3)(4-1) = 1+2+3 = 6.
	if got := Hypervolume2D(pop, ea.Fitness{4, 4}); math.Abs(got-6) > 1e-12 {
		t.Errorf("HV = %v, want 6", got)
	}
}

func TestHypervolume2DIgnoresDominatedAndFailures(t *testing.T) {
	pop := popFrom(
		ea.Fitness{1, 1},
		ea.Fitness{2, 2}, // dominated: no extra volume
		ea.FailureFitness(2),
		ea.Fitness{5, 5}, // outside reference
	)
	if got := Hypervolume2D(pop, ea.Fitness{3, 3}); math.Abs(got-4) > 1e-12 {
		t.Errorf("HV = %v, want 4", got)
	}
}

func TestHypervolume2DEmpty(t *testing.T) {
	if got := Hypervolume2D(nil, ea.Fitness{1, 1}); got != 0 {
		t.Errorf("HV(empty) = %v", got)
	}
	pop := popFrom(ea.Fitness{2, 2})
	if got := Hypervolume2D(pop, ea.Fitness{1, 1}); got != 0 {
		t.Errorf("HV with all points outside ref = %v", got)
	}
}

func TestHypervolume2DMonotoneUnderImprovement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := ea.Fitness{1, 1}
	pop := ea.Population{}
	prev := 0.0
	for i := 0; i < 50; i++ {
		pop = append(pop, &ea.Individual{Fitness: ea.Fitness{rng.Float64(), rng.Float64()}})
		hv := Hypervolume2D(pop, ref)
		if hv < prev-1e-12 {
			t.Fatalf("hypervolume decreased when adding a point: %v -> %v", prev, hv)
		}
		prev = hv
	}
}

func TestHypervolume2DDuplicateF0(t *testing.T) {
	pop := popFrom(ea.Fitness{1, 2}, ea.Fitness{1, 1})
	// Only (1,1) matters: area (3-1)*(3-1) = 4.
	if got := Hypervolume2D(pop, ea.Fitness{3, 3}); math.Abs(got-4) > 1e-12 {
		t.Errorf("HV = %v, want 4", got)
	}
}

func TestHypervolumeMCMatchesExact2D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop := make(ea.Population, 30)
	for i := range pop {
		pop[i] = &ea.Individual{Fitness: ea.Fitness{rng.Float64(), rng.Float64()}}
	}
	ref := ea.Fitness{1, 1}
	exact := Hypervolume2D(pop, ref)
	mc := HypervolumeMC(pop, ref, 200000, 3)
	if math.Abs(mc-exact) > 0.02*(exact+0.01) {
		t.Errorf("MC HV %v, exact %v", mc, exact)
	}
}

func TestHypervolumeMCDeterministic(t *testing.T) {
	pop := popFrom(ea.Fitness{0.2, 0.3, 0.4}, ea.Fitness{0.5, 0.1, 0.2})
	ref := ea.Fitness{1, 1, 1}
	a := HypervolumeMC(pop, ref, 10000, 7)
	b := HypervolumeMC(pop, ref, 10000, 7)
	if a != b {
		t.Errorf("same seed gave %v and %v", a, b)
	}
	if a <= 0 {
		t.Errorf("3-objective HV = %v, want positive", a)
	}
}

func TestHypervolumeMCEmpty(t *testing.T) {
	if got := HypervolumeMC(nil, ea.Fitness{1, 1}, 100, 1); got != 0 {
		t.Errorf("HV(empty) = %v", got)
	}
}
