package nsga2

import (
	"math/rand"
	"sort"

	"repro/internal/ea"
)

// Hypervolume2D computes the exact hypervolume indicator of a
// bi-objective population relative to a reference point (both objectives
// minimized; the reference must be weakly worse than every member).
// Dominated members contribute nothing, so passing a whole population is
// fine.  Hypervolume is the standard scalar measure of multiobjective
// convergence+diversity; the per-generation table of Fig. 1 uses it to
// quantify what the level plots show visually.
func Hypervolume2D(pop ea.Population, ref ea.Fitness) float64 {
	if len(ref) != 2 {
		panic("nsga2: Hypervolume2D needs a 2-objective reference")
	}
	// Collect members that dominate the reference region.  Non-finite
	// fitnesses are skipped like MAXINT failures: a stray -Inf objective
	// must not contribute unbounded volume.
	var pts [][2]float64
	for _, ind := range pop {
		f := ind.Fitness
		if len(f) != 2 || f.IsFailure() || nonFinite(f) {
			continue
		}
		if f[0] < ref[0] && f[1] < ref[1] {
			pts = append(pts, [2]float64{f[0], f[1]})
		}
	}
	if len(pts) == 0 {
		return 0
	}
	// Keep only the non-dominated staircase: sort by f0 asc, f1 asc; keep
	// points with strictly decreasing f1.
	sort.Slice(pts, func(i, j int) bool {
		//lint:ignore floateq lexicographic tie-break must distinguish exact bit-equality to keep the staircase deterministic
		if pts[i][0] != pts[j][0] {
			return pts[i][0] < pts[j][0]
		}
		return pts[i][1] < pts[j][1]
	})
	var stair [][2]float64
	bestF1 := ref[1]
	for _, p := range pts {
		if p[1] < bestF1 {
			stair = append(stair, p)
			bestF1 = p[1]
		}
	}
	// Sweep: each step contributes (next_f0 − f0) × (ref1 − f1).
	hv := 0.0
	for i, p := range stair {
		next := ref[0]
		if i+1 < len(stair) {
			next = stair[i+1][0]
		}
		hv += (next - p[0]) * (ref[1] - p[1])
	}
	return hv
}

// HypervolumeMC estimates the hypervolume of an m-objective population by
// Monte Carlo sampling of the box [ideal, ref], where ideal is the
// componentwise minimum of the population.  Deterministic for a given
// seed.  Use Hypervolume2D for the exact bi-objective value.
func HypervolumeMC(pop ea.Population, ref ea.Fitness, samples int, seed int64) float64 {
	m := len(ref)
	ideal := make(ea.Fitness, m)
	copy(ideal, ref)
	var front ea.Population
	for _, ind := range pop {
		f := ind.Fitness
		// Skip failures and non-finite fitnesses: a NaN objective passes
		// every >= test below and would count as dominating all samples.
		if len(f) != m || f.IsFailure() || nonFinite(f) {
			continue
		}
		inside := true
		for k := range f {
			if f[k] >= ref[k] {
				inside = false
				break
			}
		}
		if !inside {
			continue
		}
		front = append(front, ind)
		for k := range f {
			if f[k] < ideal[k] {
				ideal[k] = f[k]
			}
		}
	}
	if len(front) == 0 || samples <= 0 {
		return 0
	}
	front = NonDominated(front)

	rng := rand.New(rand.NewSource(seed))
	hit := 0
	point := make(ea.Fitness, m)
	for s := 0; s < samples; s++ {
		for k := 0; k < m; k++ {
			point[k] = ideal[k] + rng.Float64()*(ref[k]-ideal[k])
		}
		for _, ind := range front {
			dominates := true
			for k := 0; k < m; k++ {
				if ind.Fitness[k] > point[k] {
					dominates = false
					break
				}
			}
			if dominates {
				hit++
				break
			}
		}
	}
	vol := 1.0
	for k := 0; k < m; k++ {
		vol *= ref[k] - ideal[k]
	}
	return vol * float64(hit) / float64(samples)
}
