package nsga2

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/ea"
	"repro/internal/problems"
)

func zdt1Config(seed int64) Config {
	p := problems.ZDT1(8)
	std := make([]float64, len(p.Bounds))
	for i := range std {
		std[i] = 0.2
	}
	return Config{
		PopSize:      40,
		Generations:  60,
		Bounds:       p.Bounds,
		InitialStd:   std,
		AnnealFactor: 0.95,
		Evaluator:    p.Evaluator(),
		Pool:         ea.PoolConfig{Parallelism: 4, Objectives: 2},
		Seed:         seed,
	}
}

func TestRunConvergesOnZDT1(t *testing.T) {
	cfg := zdt1Config(42)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Final) != cfg.PopSize {
		t.Fatalf("final population size %d, want %d", len(res.Final), cfg.PopSize)
	}
	// Mean distance of the final front to the true ZDT1 front must be far
	// smaller than for the random initial population.
	p := problems.ZDT1(8)
	dist := func(pop ea.Population) float64 {
		total := 0.0
		for _, ind := range pop {
			want := p.TrueFront(math.Min(math.Max(ind.Fitness[0], 0), 1))
			total += math.Abs(ind.Fitness[1] - want)
		}
		return total / float64(len(pop))
	}
	d0 := dist(res.Generations[0].Evaluated)
	dN := dist(res.Final)
	if dN > d0/5 {
		t.Errorf("final mean front distance %v not well below initial %v", dN, d0)
	}
	if dN > 0.5 {
		t.Errorf("final mean front distance %v too large", dN)
	}
}

func TestRunIsDeterministicForSeed(t *testing.T) {
	cfgA := zdt1Config(7)
	cfgA.Generations = 5
	resA, err := Run(context.Background(), cfgA)
	if err != nil {
		t.Fatalf("Run A: %v", err)
	}
	cfgB := zdt1Config(7)
	cfgB.Generations = 5
	resB, err := Run(context.Background(), cfgB)
	if err != nil {
		t.Fatalf("Run B: %v", err)
	}
	for i := range resA.Final {
		for k := range resA.Final[i].Fitness {
			if resA.Final[i].Fitness[k] != resB.Final[i].Fitness[k] {
				t.Fatalf("runs with same seed diverge at individual %d", i)
			}
		}
	}
}

func TestRunRecordsHistory(t *testing.T) {
	cfg := zdt1Config(1)
	cfg.Generations = 6
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Generations) != 7 {
		t.Fatalf("got %d generation records, want 7", len(res.Generations))
	}
	if res.TotalEvaluations() != 7*cfg.PopSize {
		t.Errorf("TotalEvaluations = %d, want %d", res.TotalEvaluations(), 7*cfg.PopSize)
	}
	for g, rec := range res.Generations {
		if rec.Gen != g {
			t.Errorf("record %d has Gen %d", g, rec.Gen)
		}
		if len(rec.Evaluated) != cfg.PopSize || len(rec.Survivors) != cfg.PopSize {
			t.Errorf("gen %d sizes: evaluated %d survivors %d", g, len(rec.Evaluated), len(rec.Survivors))
		}
		for _, ind := range rec.Evaluated {
			if ind.Birth != g {
				t.Errorf("gen %d evaluated individual born at %d", g, ind.Birth)
			}
		}
	}
	if got := res.LastEvaluated(); got == nil || got[0].Birth != cfg.Generations {
		t.Error("LastEvaluated wrong")
	}
}

func TestRunObserverCalled(t *testing.T) {
	cfg := zdt1Config(2)
	cfg.Generations = 3
	var gens []int
	cfg.Observer = func(gen int, evaluated, survivors ea.Population) {
		gens = append(gens, gen)
		if len(evaluated) != cfg.PopSize {
			t.Errorf("observer gen %d: %d evaluated", gen, len(evaluated))
		}
	}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(gens) != 4 || gens[0] != 0 || gens[3] != 3 {
		t.Errorf("observer generations = %v", gens)
	}
}

func TestRunWithFailures(t *testing.T) {
	// An evaluator failing 30% of the time: the run must complete and the
	// failure counts must be recorded; survivors should prefer successes.
	p := problems.ZDT1(4)
	calls := 0
	ev := ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
		calls++
		if calls%3 == 0 {
			return nil, errors.New("simulated training crash")
		}
		return p.Eval(g), nil
	})
	std := []float64{0.1, 0.1, 0.1, 0.1}
	cfg := Config{
		PopSize: 20, Generations: 4, Bounds: p.Bounds, InitialStd: std,
		AnnealFactor: 0.85, Evaluator: ev,
		Pool: ea.PoolConfig{Parallelism: 1, Objectives: 2}, Seed: 3,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TotalFailures() == 0 {
		t.Error("no failures recorded despite failing evaluator")
	}
	// With plenty of successes available, no failure should survive
	// selection into the final population.
	for _, ind := range res.Final {
		if ind.Fitness.IsFailure() {
			t.Error("failure individual survived selection")
		}
	}
}

func TestRunValidation(t *testing.T) {
	p := problems.ZDT1(4)
	base := func() Config {
		return Config{
			PopSize: 10, Generations: 1, Bounds: p.Bounds,
			InitialStd: []float64{0.1, 0.1, 0.1, 0.1},
			Evaluator:  p.Evaluator(),
		}
	}
	bad := []func(*Config){
		func(c *Config) { c.PopSize = 0 },
		func(c *Config) { c.Generations = -1 },
		func(c *Config) { c.Bounds = nil },
		func(c *Config) { c.InitialStd = []float64{0.1} },
		func(c *Config) { c.Evaluator = nil },
		func(c *Config) { c.AnnealFactor = -1 },
		func(c *Config) { c.Bounds = ea.Bounds{{Lo: 1, Hi: 0}, {}, {}, {}} },
	}
	for i, mutate := range bad {
		cfg := base()
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	cfg := base()
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := zdt1Config(5)
	if _, err := Run(ctx, cfg); err == nil {
		t.Error("Run with cancelled context succeeded")
	}
}

func TestRunFinalIsSubsetOfBestRanks(t *testing.T) {
	cfg := zdt1Config(11)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Re-sorting the final population alone, most members should be
	// mutually non-dominated by the end of a converged ZDT1 run.
	fronts := FastNonDominatedSort(res.Final)
	if len(fronts[0]) < len(res.Final)/2 {
		t.Errorf("first front has only %d of %d members after convergence", len(fronts[0]), len(res.Final))
	}
}
