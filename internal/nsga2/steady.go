package nsga2

import (
	"context"
	"math/rand"
	"sync"

	"repro/internal/ea"
)

// SteadyConfig configures the asynchronous steady-state NSGA-II variant.
// The paper's deployment is synchronous-generational: all 100 nodes must
// finish before selection runs, so every generation waits for its slowest
// training (§2.2.5).  The steady-state variant — in the spirit of the
// asynchronous EAs the authors cite (Scott et al.) — keeps every worker
// busy: as soon as an evaluation returns, the individual is merged into
// the population, selection truncates, and a fresh offspring is bred and
// dispatched.  Total evaluations match the generational budget, so the
// two schemes are directly comparable (ablation benchmark).
type SteadyConfig struct {
	PopSize     int
	Evaluations int // total evaluation budget (e.g. PopSize × generations)
	Bounds      ea.Bounds
	InitialStd  []float64
	// AnnealFactor is applied every PopSize completions, approximating
	// the generational annealing cadence.
	AnnealFactor float64
	Evaluator    ea.Evaluator
	Parallelism  int
	Seed         int64
	Sort         SortFunc
}

// RunSteadyState executes the asynchronous steady-state loop and returns
// the final population plus every evaluated individual in completion
// order.
func RunSteadyState(ctx context.Context, cfg SteadyConfig) (final, all ea.Population, err error) {
	if cfg.PopSize <= 0 || cfg.Evaluations < cfg.PopSize {
		return nil, nil, errSteadyConfig
	}
	if err := cfg.Bounds.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.AnnealFactor == 0 {
		cfg.AnnealFactor = 0.85
	}
	sortFn := cfg.Sort
	if sortFn == nil {
		sortFn = RankOrdinalSort
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	eaCtx := ea.NewContext(cfg.InitialStd)

	// The breeding loop runs in one goroutine (owning rng and the
	// population); workers evaluate concurrently.
	type job struct{ ind *ea.Individual }
	jobs := make(chan job, cfg.Parallelism)
	done := make(chan *ea.Individual, cfg.Parallelism)

	var wg sync.WaitGroup
	workerCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				ea.EvaluateIndividual(workerCtx, j.ind, cfg.Evaluator, 0, 2)
				select {
				case done <- j.ind:
				case <-workerCtx.Done():
					return
				}
			}
		}()
	}

	pop := ea.RandomPopulation(rng, cfg.Bounds, cfg.PopSize, 0)
	breed := func(parents ea.Population, gen int) *ea.Individual {
		stream := ea.Pipe(
			ea.RandomSelection(rng, parents),
			ea.Clone(),
			ea.MutateGaussian(rng, eaCtx, cfg.Bounds),
			ea.SetBirth(gen),
		)
		ind, _ := stream()
		return ind
	}

	dispatched := 0
	completed := 0
	var current ea.Population // evaluated members only

	// next breeds (or draws from the initial random population) the next
	// individual to evaluate.
	next := func() *ea.Individual {
		if dispatched < cfg.PopSize {
			return pop[dispatched]
		}
		parents := current
		if len(parents) == 0 {
			parents = pop[:1]
		}
		return breed(parents, 1+completed/cfg.PopSize)
	}

	// Prime every worker, then replace each completion with one dispatch:
	// at most Parallelism jobs are ever in flight, so the buffered sends
	// below never block.
	prime := cfg.Parallelism
	if prime > cfg.Evaluations {
		prime = cfg.Evaluations
	}
	for i := 0; i < prime; i++ {
		jobs <- job{next()}
		dispatched++
	}

	for completed < cfg.Evaluations {
		select {
		case ind := <-done:
			if !ind.Evaluated {
				// Cancellation propagated from EvaluateIndividual: the
				// individual carries no fitness, so it must not enter the
				// sorted population; the ctx.Done branch ends the run.
				continue
			}
			completed++
			all = append(all, ind)
			current = merge(current, ind, cfg.PopSize, sortFn)
			if completed%cfg.PopSize == 0 {
				eaCtx.AnnealStd(cfg.AnnealFactor)
			}
			if dispatched < cfg.Evaluations {
				jobs <- job{next()}
				dispatched++
			}
		case <-ctx.Done():
			close(jobs)
			cancel()
			wg.Wait()
			return nil, nil, ctx.Err()
		}
	}
	close(jobs)
	cancel()
	wg.Wait()
	return current, all, nil
}

// merge inserts one evaluated individual and truncates to popSize.
func merge(current ea.Population, ind *ea.Individual, popSize int, sortFn SortFunc) ea.Population {
	current = append(current, ind)
	if len(current) <= popSize {
		return current
	}
	return Select(current, popSize, sortFn)
}

var errSteadyConfig = errConfig("nsga2: steady-state needs PopSize > 0 and Evaluations >= PopSize")

type errConfig string

func (e errConfig) Error() string { return string(e) }
