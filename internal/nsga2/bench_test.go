package nsga2

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ea"
	"repro/internal/problems"
)

func randomPop(rng *rand.Rand, n, m int) ea.Population {
	pop := make(ea.Population, n)
	for i := range pop {
		f := make(ea.Fitness, m)
		for k := range f {
			f[k] = rng.Float64()
		}
		pop[i] = &ea.Individual{Fitness: f}
	}
	return pop
}

// BenchmarkSortAblation compares the naive Deb sort, the rank-ordinal
// sort (the paper's adopted speed-up, §2.1.4) and the bi-objective fast
// path across population sizes — the ablation behind choosing
// RankOrdinalSort as the production path.
func BenchmarkSortAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sorts := []struct {
		name string
		fn   SortFunc
	}{
		{"deb", FastNonDominatedSort},
		{"rank", RankOrdinalSort},
		{"two", TwoObjectiveSort},
	}
	for _, n := range []int{100, 200, 1000, 4000} {
		pop := randomPop(rng, n, 2)
		for _, s := range sorts {
			b.Run(fmt.Sprintf("%s/n=%d", s.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s.fn(pop)
				}
			})
		}
	}
}

func BenchmarkSortThreeObjectives(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pop := randomPop(rng, 1000, 3)
	b.Run("deb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FastNonDominatedSort(pop)
		}
	})
	b.Run("rank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RankOrdinalSort(pop)
		}
	})
}

func BenchmarkCrowdingDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	front := randomPop(rng, 1000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrowdingDistance(front)
	}
}

func BenchmarkSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pop := randomPop(rng, 200, 2) // parents+offspring at paper scale
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(pop, 100, nil)
	}
}

func BenchmarkNonDominated(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pop := randomPop(rng, 500, 2) // pooled last generations
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NonDominated(pop)
	}
}

// BenchmarkAnnealingAblation compares convergence cost with the paper's
// σ-annealing (×0.85 per generation) against no annealing, measuring a
// whole small run per iteration.
func BenchmarkAnnealingAblation(b *testing.B) {
	p := problems.ZDT1(8)
	std := make([]float64, 8)
	for i := range std {
		std[i] = 0.2
	}
	for _, anneal := range []float64{0.85, 1.0} {
		b.Run(fmt.Sprintf("anneal=%v", anneal), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(context.Background(), Config{
					PopSize: 30, Generations: 20, Bounds: p.Bounds,
					InitialStd: std, AnnealFactor: anneal,
					Evaluator: p.Evaluator(), Seed: int64(i),
					Pool: ea.PoolConfig{Parallelism: 1, Objectives: 2},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPopulationSizeSweep measures run cost across population sizes
// (the paper pinned population = node count; this shows the scaling).
func BenchmarkPopulationSizeSweep(b *testing.B) {
	p := problems.ZDT1(8)
	std := make([]float64, 8)
	for i := range std {
		std[i] = 0.2
	}
	for _, pop := range []int{25, 50, 100, 200} {
		b.Run(fmt.Sprintf("pop=%d", pop), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(context.Background(), Config{
					PopSize: pop, Generations: 6, Bounds: p.Bounds,
					InitialStd: std, AnnealFactor: 0.85,
					Evaluator: p.Evaluator(), Seed: int64(i),
					Pool: ea.PoolConfig{Parallelism: 1, Objectives: 2},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
