package nsga2

import (
	"sort"

	"repro/internal/ea"
)

// FastNonDominatedSort partitions the population into Pareto fronts using
// Deb's original O(M·N²) fast non-dominated sort, writing each member's
// front index into Individual.Rank (0 = best).  Fronts are returned best
// first.  It is retained as the reference implementation; RankOrdinalSort
// is the production path.
func FastNonDominatedSort(pop ea.Population) []ea.Population {
	n := len(pop)
	if n == 0 {
		return nil
	}
	dominatedBy := make([][]int, n) // indices each individual dominates
	domCount := make([]int, n)      // how many individuals dominate i

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case Dominates(pop[i].Fitness, pop[j].Fitness):
				dominatedBy[i] = append(dominatedBy[i], j)
				domCount[j]++
			case Dominates(pop[j].Fitness, pop[i].Fitness):
				dominatedBy[j] = append(dominatedBy[j], i)
				domCount[i]++
			}
		}
	}

	var fronts []ea.Population
	var current []int
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			current = append(current, i)
			pop[i].Rank = 0
		}
	}
	for len(current) > 0 {
		front := make(ea.Population, len(current))
		for k, idx := range current {
			front[k] = pop[idx]
		}
		fronts = append(fronts, front)

		var next []int
		rank := len(fronts)
		for _, idx := range current {
			for _, j := range dominatedBy[idx] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].Rank = rank
					next = append(next, j)
				}
			}
		}
		current = next
	}
	return fronts
}

// RankOrdinalSort partitions the population into Pareto fronts using an
// efficient rank-based scheme in the spirit of Burlacu (2022), the
// improved sorting the paper adopted for a significant NSGA-II speed-up
// (§2.1.4).  Individuals are processed in lexicographic fitness order — so
// an individual can only be dominated by individuals placed before it —
// and each is assigned to the earliest compatible front located by binary
// search over the existing fronts.  The expected cost is O(M·N·log N) on
// typical populations versus O(M·N²) for the Deb sort; worst case matches
// the naive bound.  Results are identical to FastNonDominatedSort
// (property-tested).
func RankOrdinalSort(pop ea.Population) []ea.Population {
	n := len(pop)
	if n == 0 {
		return nil
	}
	// Sort indices lexicographically by fitness so that any dominator of x
	// appears before x.  Ties (identical fitness vectors) are mutual
	// non-dominators and land in the same front naturally.  Non-finite
	// fitnesses sort after every finite one (in stable input order among
	// themselves): they are dominated by all finite members and dominate
	// nothing, so placing them last preserves the invariant — NaN must not
	// reach the lexicographic comparison, where it would wreck totality.
	bad := make([]bool, n)
	for i, ind := range pop {
		bad[i] = nonFinite(ind.Fitness)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if bad[ia] != bad[ib] {
			return !bad[ia]
		}
		if bad[ia] {
			return false
		}
		fa, fb := pop[ia].Fitness, pop[ib].Fitness
		for k := range fa {
			//lint:ignore floateq lexicographic tie-break must distinguish exact bit-equality to keep the order total and replayable
			if fa[k] != fb[k] {
				return fa[k] < fb[k]
			}
		}
		return false
	})

	var fronts []ea.Population

	// dominatedByFront reports whether any member of fronts[f] dominates
	// cand.  Members are checked newest-first: recently added members are
	// the most likely dominators of the lexicographically next candidate.
	dominatedByFront := func(f int, cand ea.Fitness) bool {
		fr := fronts[f]
		for i := len(fr) - 1; i >= 0; i-- {
			if Dominates(fr[i].Fitness, cand) {
				return true
			}
		}
		return false
	}

	for _, idx := range order {
		cand := pop[idx]
		// Binary search for the first front whose members do not dominate
		// the candidate.  Front dominance is monotone in f: if front f has
		// no dominator of cand, no later front can have one either (every
		// member of front f+1 is dominated by some member of front f).
		lo, hi := 0, len(fronts)
		for lo < hi {
			mid := (lo + hi) / 2
			if dominatedByFront(mid, cand.Fitness) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(fronts) {
			fronts = append(fronts, ea.Population{})
		}
		cand.Rank = lo
		fronts[lo] = append(fronts[lo], cand)
	}
	return fronts
}

// TwoObjectiveSort is an O(N log N + N·F) fast path for the bi-objective
// case the paper optimizes (energy loss, force loss).  With two minimized
// objectives, after sorting by (f0 asc, f1 asc) an individual is dominated
// exactly by a predecessor with strictly smaller f1 (or equal-f0 handling
// via lexicographic order); fronts can be maintained by tracking each
// front's minimal achievable f1 tail.  Results match FastNonDominatedSort.
func TwoObjectiveSort(pop ea.Population) []ea.Population {
	n := len(pop)
	if n == 0 {
		return nil
	}
	if len(pop[0].Fitness) != 2 {
		return RankOrdinalSort(pop)
	}
	// Non-finite fitnesses are dominated by every finite member and
	// dominate nothing, so they always form one trailing front (matching
	// FastNonDominatedSort under the hardened Dominates); the staircase
	// logic below then only ever sees finite values.
	var invalid ea.Population
	order := make([]int, 0, n)
	for i, ind := range pop {
		if nonFinite(ind.Fitness) {
			invalid = append(invalid, ind)
		} else {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := pop[order[a]].Fitness, pop[order[b]].Fitness
		//lint:ignore floateq lexicographic tie-break must distinguish exact bit-equality to keep the order total and replayable
		if fa[0] != fb[0] {
			return fa[0] < fb[0]
		}
		return fa[1] < fb[1]
	})

	var fronts []ea.Population
	// lastF1[f] is the f1 of the most recently inserted member of front f;
	// within a front, successive members have non-increasing f0 precedence
	// and we only insert candidates whose f1 is >= no member's... The
	// invariant: processing in lex order, cand is dominated by front f iff
	// some member has f1 < cand.f1, or f1 == cand.f1 with strictly smaller
	// f0.  Since members arrive in ascending (f0, f1) order, the minimal
	// f1 seen in front f suffices for the strict case; equal-f1 needs an
	// f0 check against the member that achieved it.
	type tail struct {
		minF1   float64
		f0AtMin float64
	}
	var tails []tail

	for _, idx := range order {
		cand := pop[idx]
		c0, c1 := cand.Fitness[0], cand.Fitness[1]
		lo, hi := 0, len(fronts)
		for lo < hi {
			mid := (lo + hi) / 2
			t := tails[mid]
			//lint:ignore floateq dominance boundary: Deb dominance is defined on exact objective values; an epsilon would merge distinct fronts
			dominated := t.minF1 < c1 || (t.minF1 == c1 && t.f0AtMin < c0)
			if dominated {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(fronts) {
			fronts = append(fronts, ea.Population{})
			tails = append(tails, tail{minF1: c1, f0AtMin: c0})
		} else if c1 < tails[lo].minF1 || (c1 == tails[lo].minF1 && c0 < tails[lo].f0AtMin) { //lint:ignore floateq dominance boundary: exact tie detection keeps the front assignment identical to the Deb sort
			tails[lo] = tail{minF1: c1, f0AtMin: c0}
		}
		cand.Rank = lo
		fronts[lo] = append(fronts[lo], cand)
	}
	if len(invalid) > 0 {
		rank := len(fronts)
		for _, ind := range invalid {
			ind.Rank = rank
		}
		fronts = append(fronts, invalid)
	}
	return fronts
}
