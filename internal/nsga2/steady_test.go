package nsga2

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ea"
	"repro/internal/problems"
)

func steadyConfig(seed int64) SteadyConfig {
	p := problems.ZDT1(8)
	std := make([]float64, 8)
	for i := range std {
		std[i] = 0.2
	}
	return SteadyConfig{
		PopSize:      40,
		Evaluations:  40 * 40,
		Bounds:       p.Bounds,
		InitialStd:   std,
		AnnealFactor: 0.95,
		Evaluator:    p.Evaluator(),
		Parallelism:  4,
		Seed:         seed,
	}
}

func TestSteadyStateConvergesOnZDT1(t *testing.T) {
	cfg := steadyConfig(1)
	final, all, err := RunSteadyState(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunSteadyState: %v", err)
	}
	if len(final) != cfg.PopSize {
		t.Fatalf("final population %d, want %d", len(final), cfg.PopSize)
	}
	if len(all) != cfg.Evaluations {
		t.Fatalf("evaluated %d, want %d", len(all), cfg.Evaluations)
	}
	p := problems.ZDT1(8)
	mean := 0.0
	for _, ind := range final {
		f1 := math.Min(math.Max(ind.Fitness[0], 0), 1)
		mean += math.Abs(ind.Fitness[1] - p.TrueFront(f1))
	}
	mean /= float64(len(final))
	if mean > 0.6 {
		t.Errorf("steady state mean front distance %v, want convergence", mean)
	}
}

func TestSteadyStateBudgetExactAndSaturated(t *testing.T) {
	var inFlight, peak int64
	ev := ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&inFlight, -1)
		return ea.Fitness{g[0], 1 - g[0]}, nil
	})
	cfg := SteadyConfig{
		PopSize: 10, Evaluations: 60,
		Bounds:     ea.Bounds{{Lo: 0, Hi: 1}},
		InitialStd: []float64{0.1},
		Evaluator:  ev, Parallelism: 5, Seed: 2,
	}
	_, all, err := RunSteadyState(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 60 {
		t.Errorf("evaluated %d, want exactly 60", len(all))
	}
	if p := atomic.LoadInt64(&peak); p < 3 {
		t.Errorf("peak concurrency %d, want ≥3 (workers saturated)", p)
	}
	if p := atomic.LoadInt64(&peak); p > 5 {
		t.Errorf("peak concurrency %d exceeds Parallelism 5", p)
	}
}

func TestSteadyStateHandlesFailures(t *testing.T) {
	calls := int64(0)
	ev := ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
		if atomic.AddInt64(&calls, 1)%4 == 0 {
			return nil, errConfig("crash")
		}
		return ea.Fitness{g[0], 1 - g[0]}, nil
	})
	cfg := SteadyConfig{
		PopSize: 8, Evaluations: 80,
		Bounds:     ea.Bounds{{Lo: 0, Hi: 1}},
		InitialStd: []float64{0.1},
		Evaluator:  ev, Parallelism: 3, Seed: 3,
	}
	final, all, err := RunSteadyState(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, ind := range all {
		if ind.Fitness.IsFailure() {
			failures++
		}
	}
	if failures == 0 {
		t.Error("no failures recorded")
	}
	for _, ind := range final {
		if ind.Fitness.IsFailure() {
			t.Error("failure survived in final population")
		}
	}
}

func TestSteadyStateValidation(t *testing.T) {
	cfg := steadyConfig(4)
	cfg.Evaluations = 10 // < PopSize
	if _, _, err := RunSteadyState(context.Background(), cfg); err == nil {
		t.Error("budget below PopSize accepted")
	}
	cfg = steadyConfig(4)
	cfg.Bounds = ea.Bounds{{Lo: 1, Hi: 0}}
	cfg.InitialStd = []float64{0.1}
	if _, _, err := RunSteadyState(context.Background(), cfg); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestSteadyStateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ev := ea.EvaluatorFunc(func(c context.Context, g ea.Genome) (ea.Fitness, error) {
		time.Sleep(2 * time.Millisecond)
		return ea.Fitness{g[0], 1 - g[0]}, nil
	})
	cfg := SteadyConfig{
		PopSize: 10, Evaluations: 100000,
		Bounds:     ea.Bounds{{Lo: 0, Hi: 1}},
		InitialStd: []float64{0.1},
		Evaluator:  ev, Parallelism: 2, Seed: 5,
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, _, err := RunSteadyState(ctx, cfg)
	if err == nil {
		t.Error("cancelled steady-state run returned nil error")
	}
}

// TestSteadyStateComparableToGenerational checks the ablation claim: with
// the same evaluation budget, steady-state reaches a front quality in the
// same ballpark as the generational scheme.
func TestSteadyStateComparableToGenerational(t *testing.T) {
	p := problems.ZDT1(8)
	std := make([]float64, 8)
	for i := range std {
		std[i] = 0.2
	}
	gen, err := Run(context.Background(), Config{
		PopSize: 40, Generations: 39, Bounds: p.Bounds, InitialStd: std,
		AnnealFactor: 0.95, Evaluator: p.Evaluator(), Seed: 6,
		Pool: ea.PoolConfig{Parallelism: 4, Objectives: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	steadyFinal, _, err := RunSteadyState(context.Background(), steadyConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	ref := ea.Fitness{3, 8}
	hvGen := Hypervolume2D(gen.Final, ref)
	hvSteady := Hypervolume2D(steadyFinal, ref)
	if hvSteady < hvGen*0.9 {
		t.Errorf("steady-state HV %v far below generational %v at equal budget", hvSteady, hvGen)
	}
}
