package baselines

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ea"
)

var sphereEval = ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
	// Bi-objective: distance to 0 and to 1 on the first gene.
	return ea.Fitness{g[0] * g[0], (g[0] - 1) * (g[0] - 1)}, nil
})

var unitBounds = ea.Bounds{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}

func TestRandomSearchBudget(t *testing.T) {
	res, err := RandomSearch(context.Background(), sphereEval, unitBounds, 50, 4, 1)
	if err != nil {
		t.Fatalf("RandomSearch: %v", err)
	}
	if len(res.Evaluated) != 50 {
		t.Errorf("evaluated %d, want 50", len(res.Evaluated))
	}
	if len(res.Front) == 0 || len(res.Front) > 50 {
		t.Errorf("front size %d", len(res.Front))
	}
	if _, err := RandomSearch(context.Background(), sphereEval, unitBounds, 0, 1, 1); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestGridSearchFullFactorial(t *testing.T) {
	spec := GridSpec{PointsPerGene: []int{4, 3}}
	if spec.Size() != 12 {
		t.Fatalf("Size = %d", spec.Size())
	}
	res, err := GridSearch(context.Background(), sphereEval, unitBounds, spec, 4)
	if err != nil {
		t.Fatalf("GridSearch: %v", err)
	}
	if len(res.Evaluated) != 12 {
		t.Fatalf("evaluated %d, want 12", len(res.Evaluated))
	}
	// Every genome must sit at a cell center.
	seen := map[[2]float64]bool{}
	for _, ind := range res.Evaluated {
		key := [2]float64{ind.Genome[0], ind.Genome[1]}
		if seen[key] {
			t.Errorf("duplicate grid point %v", key)
		}
		seen[key] = true
	}
	// Gene 0 at 4 points: centers 0.125, 0.375, 0.625, 0.875.
	found := false
	for k := range seen {
		if k[0] == 0.125 {
			found = true
		}
	}
	if !found {
		t.Error("expected cell-center 0.125 missing")
	}
}

func TestGridSearchValidation(t *testing.T) {
	if _, err := GridSearch(context.Background(), sphereEval, unitBounds,
		GridSpec{PointsPerGene: []int{2}}, 1); err == nil {
		t.Error("gene-count mismatch accepted")
	}
	if _, err := GridSearch(context.Background(), sphereEval, unitBounds,
		GridSpec{PointsPerGene: []int{2, 0}}, 1); err == nil {
		t.Error("zero points accepted")
	}
}

func TestFailuresCounted(t *testing.T) {
	flaky := ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
		if g[0] < 0.3 {
			return nil, errors.New("crash")
		}
		return ea.Fitness{g[0], 1 - g[0]}, nil
	})
	res, err := GridSearch(context.Background(), flaky, unitBounds, GridSpec{PointsPerGene: []int{10, 1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 3 { // centers 0.05, 0.15, 0.25 fail
		t.Errorf("failures = %d, want 3", res.Failures)
	}
	for _, ind := range res.Front {
		if ind.Fitness.IsFailure() {
			t.Error("failure on front")
		}
	}
}

func TestUniformGrid(t *testing.T) {
	s := UniformGrid(7, 2)
	if len(s.PointsPerGene) != 7 || s.Size() != 128 {
		t.Errorf("UniformGrid wrong: %v size %d", s.PointsPerGene, s.Size())
	}
}
