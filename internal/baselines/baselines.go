// Package baselines implements the search strategies the paper positions
// NSGA-II against: brute-force grid search — which §1 notes "has been
// shown to be prone to missing optimal values unless a very fine grid is
// used" and §3.1 calls "orders of magnitude" more expensive — and random
// search (Bergstra & Bengio 2012, the paper's [2]).  Running them under
// the same evaluation budget as the EA quantifies the paper's claim that
// the evolutionary approach explores the space more efficiently.
package baselines

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

// Result is the outcome of a baseline search.
type Result struct {
	Name      string
	Evaluated ea.Population // every evaluated point
	Front     ea.Population // non-dominated subset
	Failures  int
}

// score finalizes a result.
func score(name string, pop ea.Population) *Result {
	r := &Result{Name: name, Evaluated: pop}
	var ok ea.Population
	for _, ind := range pop {
		if ind.Fitness.IsFailure() {
			r.Failures++
		} else {
			ok = append(ok, ind)
		}
	}
	r.Front = nsga2.NonDominated(ok)
	return r
}

// RandomSearch evaluates budget uniform samples of the bounds — the
// strongest simple baseline for HPO.
func RandomSearch(ctx context.Context, ev ea.Evaluator, bounds ea.Bounds, budget int,
	parallelism int, seed int64) (*Result, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("baselines: budget must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	pop := ea.RandomPopulation(rng, bounds, budget, 0)
	pop = ea.EvalPool(ctx, ea.Source(pop), budget, ev, ea.PoolConfig{
		Parallelism: parallelism, Objectives: 2,
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return score("random search", pop), nil
}

// GridSpec fixes the number of grid points per gene.  A full 10-point
// grid over the paper's seven genes would need 10⁷ trainings; a budgeted
// grid must be coarse — exactly the weakness the paper cites.
type GridSpec struct {
	PointsPerGene []int
}

// Size returns the full factorial count.
func (s GridSpec) Size() int {
	n := 1
	for _, p := range s.PointsPerGene {
		n *= p
	}
	return n
}

// UniformGrid builds a spec with the same number of points per gene.
func UniformGrid(genes, points int) GridSpec {
	pp := make([]int, genes)
	for i := range pp {
		pp[i] = points
	}
	return GridSpec{PointsPerGene: pp}
}

// GridSearch evaluates the full factorial grid defined by spec over the
// bounds.  Categorical genes should receive as many points as categories
// (placed at bin centers via the offset ½).
func GridSearch(ctx context.Context, ev ea.Evaluator, bounds ea.Bounds, spec GridSpec,
	parallelism int) (*Result, error) {
	if len(spec.PointsPerGene) != len(bounds) {
		return nil, fmt.Errorf("baselines: spec has %d genes, bounds %d", len(spec.PointsPerGene), len(bounds))
	}
	for g, p := range spec.PointsPerGene {
		if p < 1 {
			return nil, fmt.Errorf("baselines: gene %d has %d grid points", g, p)
		}
	}
	var pop ea.Population
	idx := make([]int, len(bounds))
	for {
		genome := make(ea.Genome, len(bounds))
		for g := range bounds {
			p := spec.PointsPerGene[g]
			// Cell centers: covers the range without doubling endpoints,
			// and lands categorical genes mid-bin.
			genome[g] = bounds[g].Lo + bounds[g].Width()*(float64(idx[g])+0.5)/float64(p)
		}
		pop = append(pop, ea.NewIndividual(genome))
		// Odometer increment.
		g := 0
		for ; g < len(idx); g++ {
			idx[g]++
			if idx[g] < spec.PointsPerGene[g] {
				break
			}
			idx[g] = 0
		}
		if g == len(idx) {
			break
		}
	}
	pop = ea.EvalPool(ctx, ea.Source(pop), len(pop), ev, ea.PoolConfig{
		Parallelism: parallelism, Objectives: 2,
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return score(fmt.Sprintf("grid search (%d points)", spec.Size()), pop), nil
}
