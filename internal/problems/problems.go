// Package problems provides standard multiobjective benchmark problems
// (ZDT, DTLZ, Schaffer, Kursawe, Fonseca–Fleming) with known Pareto-front
// geometry.  They validate the NSGA-II implementation independently of the
// hyperparameter-tuning application, exactly the role unit problems play
// for any NSGA-II deployment.
package problems

import (
	"context"
	"math"

	"repro/internal/ea"
)

// Problem is a benchmark multiobjective minimization problem.
type Problem struct {
	// Name identifies the problem (e.g. "ZDT1").
	Name string
	// Bounds are the decision-variable bounds.
	Bounds ea.Bounds
	// Objectives is the number of objectives.
	Objectives int
	// Eval computes the objective vector for a genome.
	Eval func(g ea.Genome) ea.Fitness
	// TrueFront, if non-nil, maps the first objective value f1 on the true
	// Pareto front to the corresponding f2 (bi-objective problems only);
	// used to measure convergence in tests.
	TrueFront func(f1 float64) float64
	// FrontF1Range is the span of f1 along the true front.
	FrontF1Range ea.Interval
}

// Evaluator adapts the problem to the ea.Evaluator interface.
func (p *Problem) Evaluator() ea.Evaluator {
	return ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
		return p.Eval(g), nil
	})
}

func unitBounds(n int) ea.Bounds {
	b := make(ea.Bounds, n)
	for i := range b {
		b[i] = ea.Interval{Lo: 0, Hi: 1}
	}
	return b
}

// ZDT1 is the convex bi-objective ZDT problem with n decision variables.
// True front: f2 = 1 - sqrt(f1), f1 in [0,1], achieved at x2..xn = 0.
func ZDT1(n int) *Problem {
	return &Problem{
		Name:       "ZDT1",
		Bounds:     unitBounds(n),
		Objectives: 2,
		Eval: func(x ea.Genome) ea.Fitness {
			f1 := x[0]
			g := zdtG(x)
			return ea.Fitness{f1, g * (1 - math.Sqrt(f1/g))}
		},
		TrueFront:    func(f1 float64) float64 { return 1 - math.Sqrt(f1) },
		FrontF1Range: ea.Interval{Lo: 0, Hi: 1},
	}
}

// ZDT2 is the non-convex variant: f2 = 1 - f1², f1 in [0,1].
func ZDT2(n int) *Problem {
	return &Problem{
		Name:       "ZDT2",
		Bounds:     unitBounds(n),
		Objectives: 2,
		Eval: func(x ea.Genome) ea.Fitness {
			f1 := x[0]
			g := zdtG(x)
			r := f1 / g
			return ea.Fitness{f1, g * (1 - r*r)}
		},
		TrueFront:    func(f1 float64) float64 { return 1 - f1*f1 },
		FrontF1Range: ea.Interval{Lo: 0, Hi: 1},
	}
}

// ZDT3 has a disconnected front: f2 = 1 - sqrt(f1) - f1·sin(10πf1).
func ZDT3(n int) *Problem {
	return &Problem{
		Name:       "ZDT3",
		Bounds:     unitBounds(n),
		Objectives: 2,
		Eval: func(x ea.Genome) ea.Fitness {
			f1 := x[0]
			g := zdtG(x)
			r := f1 / g
			return ea.Fitness{f1, g * (1 - math.Sqrt(r) - r*math.Sin(10*math.Pi*f1))}
		},
		// The analytic envelope; only segments of it are Pareto-optimal.
		TrueFront:    func(f1 float64) float64 { return 1 - math.Sqrt(f1) - f1*math.Sin(10*math.Pi*f1) },
		FrontF1Range: ea.Interval{Lo: 0, Hi: 0.852},
	}
}

// ZDT4 is the multimodal variant with 21^(n-1) local fronts; x1 in [0,1],
// x2..xn in [-5,5].  True front: f2 = 1 - sqrt(f1).
func ZDT4(n int) *Problem {
	b := make(ea.Bounds, n)
	b[0] = ea.Interval{Lo: 0, Hi: 1}
	for i := 1; i < n; i++ {
		b[i] = ea.Interval{Lo: -5, Hi: 5}
	}
	return &Problem{
		Name:       "ZDT4",
		Bounds:     b,
		Objectives: 2,
		Eval: func(x ea.Genome) ea.Fitness {
			f1 := x[0]
			g := 1 + 10*float64(len(x)-1)
			for _, xi := range x[1:] {
				g += xi*xi - 10*math.Cos(4*math.Pi*xi)
			}
			return ea.Fitness{f1, g * (1 - math.Sqrt(f1/g))}
		},
		TrueFront:    func(f1 float64) float64 { return 1 - math.Sqrt(f1) },
		FrontF1Range: ea.Interval{Lo: 0, Hi: 1},
	}
}

// ZDT6 has a non-uniformly distributed, non-convex front.
func ZDT6(n int) *Problem {
	return &Problem{
		Name:       "ZDT6",
		Bounds:     unitBounds(n),
		Objectives: 2,
		Eval: func(x ea.Genome) ea.Fitness {
			f1 := 1 - math.Exp(-4*x[0])*math.Pow(math.Sin(6*math.Pi*x[0]), 6)
			s := 0.0
			for _, xi := range x[1:] {
				s += xi
			}
			g := 1 + 9*math.Pow(s/float64(len(x)-1), 0.25)
			r := f1 / g
			return ea.Fitness{f1, g * (1 - r*r)}
		},
		TrueFront:    func(f1 float64) float64 { return 1 - f1*f1 },
		FrontF1Range: ea.Interval{Lo: 0.2807753191, Hi: 1},
	}
}

func zdtG(x ea.Genome) float64 {
	s := 0.0
	for _, xi := range x[1:] {
		s += xi
	}
	return 1 + 9*s/float64(len(x)-1)
}

// Schaffer is the classic single-variable bi-objective problem
// f1 = x², f2 = (x-2)²; Pareto set x in [0,2], front f2 = (sqrt(f1)-2)².
func Schaffer() *Problem {
	return &Problem{
		Name:       "Schaffer",
		Bounds:     ea.Bounds{{Lo: -1000, Hi: 1000}},
		Objectives: 2,
		Eval: func(x ea.Genome) ea.Fitness {
			return ea.Fitness{x[0] * x[0], (x[0] - 2) * (x[0] - 2)}
		},
		TrueFront: func(f1 float64) float64 {
			d := math.Sqrt(f1) - 2
			return d * d
		},
		FrontF1Range: ea.Interval{Lo: 0, Hi: 4},
	}
}

// FonsecaFleming is the bi-objective problem with front
// f2 = 1 - exp(-(2 - sqrt(-ln(1-f1)))²) over n variables in [-4,4].
func FonsecaFleming(n int) *Problem {
	b := make(ea.Bounds, n)
	for i := range b {
		b[i] = ea.Interval{Lo: -4, Hi: 4}
	}
	inv := 1 / math.Sqrt(float64(n))
	return &Problem{
		Name:       "FonsecaFleming",
		Bounds:     b,
		Objectives: 2,
		Eval: func(x ea.Genome) ea.Fitness {
			var s1, s2 float64
			for _, xi := range x {
				d1 := xi - inv
				d2 := xi + inv
				s1 += d1 * d1
				s2 += d2 * d2
			}
			return ea.Fitness{1 - math.Exp(-s1), 1 - math.Exp(-s2)}
		},
	}
}

// Kursawe is the non-convex, disconnected 3-variable problem of Kursawe
// (1990); no closed-form front is provided.
func Kursawe() *Problem {
	b := make(ea.Bounds, 3)
	for i := range b {
		b[i] = ea.Interval{Lo: -5, Hi: 5}
	}
	return &Problem{
		Name:       "Kursawe",
		Bounds:     b,
		Objectives: 2,
		Eval: func(x ea.Genome) ea.Fitness {
			var f1, f2 float64
			for i := 0; i < 2; i++ {
				f1 += -10 * math.Exp(-0.2*math.Sqrt(x[i]*x[i]+x[i+1]*x[i+1]))
			}
			for _, xi := range x {
				f2 += math.Pow(math.Abs(xi), 0.8) + 5*math.Sin(xi*xi*xi)
			}
			return ea.Fitness{f1, f2}
		},
	}
}

// DTLZ2 is the M-objective spherical-front problem with n variables.  On
// the true front the squared objectives sum to 1.
func DTLZ2(n, m int) *Problem {
	return &Problem{
		Name:       "DTLZ2",
		Bounds:     unitBounds(n),
		Objectives: m,
		Eval: func(x ea.Genome) ea.Fitness {
			k := len(x) - m + 1
			g := 0.0
			for _, xi := range x[len(x)-k:] {
				d := xi - 0.5
				g += d * d
			}
			f := make(ea.Fitness, m)
			for i := 0; i < m; i++ {
				v := 1 + g
				for j := 0; j < m-1-i; j++ {
					v *= math.Cos(x[j] * math.Pi / 2)
				}
				if i > 0 {
					v *= math.Sin(x[m-1-i] * math.Pi / 2)
				}
				f[i] = v
			}
			return f
		},
	}
}

// DTLZ1 is the M-objective linear-front problem; on the true front the
// objectives sum to 0.5.
func DTLZ1(n, m int) *Problem {
	return &Problem{
		Name:       "DTLZ1",
		Bounds:     unitBounds(n),
		Objectives: m,
		Eval: func(x ea.Genome) ea.Fitness {
			k := len(x) - m + 1
			g := 0.0
			for _, xi := range x[len(x)-k:] {
				d := xi - 0.5
				g += d*d - math.Cos(20*math.Pi*d)
			}
			g = 100 * (float64(k) + g)
			f := make(ea.Fitness, m)
			for i := 0; i < m; i++ {
				v := 0.5 * (1 + g)
				for j := 0; j < m-1-i; j++ {
					v *= x[j]
				}
				if i > 0 {
					v *= 1 - x[m-1-i]
				}
				f[i] = v
			}
			return f
		},
	}
}
