package problems

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ea"
)

// optimalGenome builds a genome on the true Pareto set for the ZDT family:
// x1 = t, all other variables at their front-optimal value.
func optimalZDT(p *Problem, t, rest float64) ea.Genome {
	g := make(ea.Genome, len(p.Bounds))
	g[0] = t
	for i := 1; i < len(g); i++ {
		g[i] = rest
	}
	return g
}

func TestZDT1FrontConsistency(t *testing.T) {
	p := ZDT1(30)
	for _, x1 := range []float64{0, 0.25, 0.5, 1} {
		f := p.Eval(optimalZDT(p, x1, 0))
		want := p.TrueFront(f[0])
		if math.Abs(f[1]-want) > 1e-12 {
			t.Errorf("ZDT1(x1=%v): f2 = %v, want %v", x1, f[1], want)
		}
	}
}

func TestZDT2FrontConsistency(t *testing.T) {
	p := ZDT2(30)
	for _, x1 := range []float64{0, 0.3, 0.9} {
		f := p.Eval(optimalZDT(p, x1, 0))
		want := p.TrueFront(f[0])
		if math.Abs(f[1]-want) > 1e-12 {
			t.Errorf("ZDT2(x1=%v): f2 = %v, want %v", x1, f[1], want)
		}
	}
}

func TestZDT3FrontConsistency(t *testing.T) {
	p := ZDT3(30)
	for _, x1 := range []float64{0, 0.1, 0.4} {
		f := p.Eval(optimalZDT(p, x1, 0))
		want := p.TrueFront(f[0])
		if math.Abs(f[1]-want) > 1e-12 {
			t.Errorf("ZDT3(x1=%v): f2 = %v, want %v", x1, f[1], want)
		}
	}
}

func TestZDT4FrontConsistency(t *testing.T) {
	p := ZDT4(10)
	for _, x1 := range []float64{0, 0.5, 1} {
		f := p.Eval(optimalZDT(p, x1, 0))
		want := p.TrueFront(f[0])
		if math.Abs(f[1]-want) > 1e-9 {
			t.Errorf("ZDT4(x1=%v): f2 = %v, want %v", x1, f[1], want)
		}
	}
}

func TestZDT6FrontConsistency(t *testing.T) {
	p := ZDT6(10)
	// x1 maximizing the sin^6 term sits on the front with rest = 0.
	f := p.Eval(optimalZDT(p, 0.0833, 0))
	want := p.TrueFront(f[0])
	if math.Abs(f[1]-want) > 1e-9 {
		t.Errorf("ZDT6: f2 = %v, want %v", f[1], want)
	}
}

func TestSchafferKnownPoints(t *testing.T) {
	p := Schaffer()
	f := p.Eval(ea.Genome{0})
	if f[0] != 0 || f[1] != 4 {
		t.Errorf("Schaffer(0) = %v, want [0 4]", f)
	}
	f = p.Eval(ea.Genome{2})
	if f[0] != 4 || f[1] != 0 {
		t.Errorf("Schaffer(2) = %v, want [4 0]", f)
	}
	f = p.Eval(ea.Genome{1})
	if math.Abs(p.TrueFront(f[0])-f[1]) > 1e-12 {
		t.Errorf("Schaffer front mismatch at x=1: %v vs %v", f[1], p.TrueFront(f[0]))
	}
}

func TestFonsecaFlemingSymmetricPoint(t *testing.T) {
	p := FonsecaFleming(3)
	f := p.Eval(ea.Genome{0, 0, 0})
	if math.Abs(f[0]-f[1]) > 1e-12 {
		t.Errorf("FonsecaFleming at origin not symmetric: %v", f)
	}
}

func TestDTLZ2FrontOnSphere(t *testing.T) {
	p := DTLZ2(12, 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		g := make(ea.Genome, 12)
		// Position variables free, distance variables at 0.5 (front).
		for j := 0; j < 2; j++ {
			g[j] = rng.Float64()
		}
		for j := 2; j < 12; j++ {
			g[j] = 0.5
		}
		f := p.Eval(g)
		sum := 0.0
		for _, v := range f {
			sum += v * v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("DTLZ2 front point has |f|² = %v, want 1", sum)
		}
	}
}

func TestDTLZ1FrontOnPlane(t *testing.T) {
	p := DTLZ1(7, 3)
	g := ea.Genome{0.3, 0.7, 0.5, 0.5, 0.5, 0.5, 0.5}
	f := p.Eval(g)
	sum := 0.0
	for _, v := range f {
		sum += v
	}
	if math.Abs(sum-0.5) > 1e-9 {
		t.Errorf("DTLZ1 front point sums to %v, want 0.5", sum)
	}
}

func TestKursaweFinite(t *testing.T) {
	p := Kursawe()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		g := p.Bounds.Sample(rng)
		f := p.Eval(g)
		for k, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("Kursawe(%v) objective %d = %v", g, k, v)
			}
		}
	}
}

func TestEvaluatorAdapter(t *testing.T) {
	p := Schaffer()
	ev := p.Evaluator()
	f, err := ev.Evaluate(nil, ea.Genome{2}) //nolint:staticcheck // context unused by adapter
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if f[1] != 0 {
		t.Errorf("Evaluate(2)[1] = %v, want 0", f[1])
	}
}

func TestObjectiveCounts(t *testing.T) {
	cases := []struct {
		p    *Problem
		n, m int
	}{
		{ZDT1(30), 30, 2},
		{ZDT4(10), 10, 2},
		{DTLZ2(12, 3), 12, 3},
		{DTLZ1(7, 3), 7, 3},
		{Kursawe(), 3, 2},
	}
	rng := rand.New(rand.NewSource(3))
	for _, c := range cases {
		if len(c.p.Bounds) != c.n {
			t.Errorf("%s: %d variables, want %d", c.p.Name, len(c.p.Bounds), c.n)
		}
		f := c.p.Eval(c.p.Bounds.Sample(rng))
		if len(f) != c.m {
			t.Errorf("%s: %d objectives, want %d", c.p.Name, len(f), c.m)
		}
		if c.p.Objectives != c.m {
			t.Errorf("%s: Objectives field %d, want %d", c.p.Name, c.p.Objectives, c.m)
		}
	}
}

func TestReferenceFrontAndIGD(t *testing.T) {
	p := ZDT1(5)
	ref := p.ReferenceFront(50)
	if len(ref) != 50 {
		t.Fatalf("reference front has %d points", len(ref))
	}
	if ref[0][0] != 0 || ref[49][0] != 1 {
		t.Errorf("front endpoints wrong: %v %v", ref[0], ref[49])
	}
	// A population exactly on the front has IGD ≈ spacing error only.
	var onFront ea.Population
	for _, r := range ref {
		onFront = append(onFront, &ea.Individual{Fitness: ea.Fitness{r[0], r[1]}, Evaluated: true})
	}
	if d := IGD(onFront, ref); d > 1e-12 {
		t.Errorf("IGD of exact front = %v, want 0", d)
	}
	// A shifted population must have IGD of the order of the shift (it can
	// undercut 0.5 where the curve is steep: the nearest shifted point is
	// then a diagonal neighbour).
	var shifted ea.Population
	for _, r := range ref {
		shifted = append(shifted, &ea.Individual{Fitness: ea.Fitness{r[0], r[1] + 0.5}, Evaluated: true})
	}
	if d := IGD(shifted, ref); d < 0.3 || d > 0.5+1e-9 {
		t.Errorf("IGD of shifted front = %v, want in (0.3, 0.5]", d)
	}
	if !math.IsNaN(IGD(nil, ref)) {
		t.Error("IGD of empty population should be NaN")
	}
	if Kursawe().ReferenceFront(10) != nil {
		t.Error("problems without TrueFront should return nil reference")
	}
}
