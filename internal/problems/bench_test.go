package problems

import (
	"math/rand"
	"testing"
)

func BenchmarkZDT1Eval(b *testing.B) {
	p := ZDT1(30)
	rng := rand.New(rand.NewSource(1))
	g := p.Bounds.Sample(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval(g)
	}
}

func BenchmarkDTLZ2Eval(b *testing.B) {
	p := DTLZ2(12, 3)
	rng := rand.New(rand.NewSource(2))
	g := p.Bounds.Sample(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval(g)
	}
}
