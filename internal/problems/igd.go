package problems

import (
	"math"

	"repro/internal/ea"
)

// ReferenceFront samples n points on a problem's analytic Pareto front
// (bi-objective problems with a TrueFront only).
func (p *Problem) ReferenceFront(n int) [][2]float64 {
	if p.TrueFront == nil || n < 2 {
		return nil
	}
	out := make([][2]float64, n)
	lo, hi := p.FrontF1Range.Lo, p.FrontF1Range.Hi
	for i := 0; i < n; i++ {
		f1 := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = [2]float64{f1, p.TrueFront(f1)}
	}
	return out
}

// IGD computes the inverted generational distance of a population against
// a reference front: the mean Euclidean distance from each reference
// point to its nearest population member.  Lower is better; it penalizes
// both poor convergence and poor coverage, complementing hypervolume in
// the NSGA-II validation suite.
func IGD(pop ea.Population, ref [][2]float64) float64 {
	if len(ref) == 0 || len(pop) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, r := range ref {
		best := math.Inf(1)
		for _, ind := range pop {
			f := ind.Fitness
			if len(f) != 2 || f.IsFailure() {
				continue
			}
			d0 := f[0] - r[0]
			d1 := f[1] - r[1]
			d := d0*d0 + d1*d1
			if d < best {
				best = d
			}
		}
		total += math.Sqrt(best)
	}
	return total / float64(len(ref))
}
