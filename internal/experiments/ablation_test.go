package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestPipelineAblation(t *testing.T) {
	res, err := PipelineAblation(context.Background(), Options{
		Runs: 2, PopSize: 40, Generations: 4, Seed: 13, Parallelism: 8,
	})
	if err != nil {
		t.Fatalf("PipelineAblation: %v", err)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("got %d variants, want 4", len(res.Variants))
	}
	byName := map[string]AblationVariant{}
	for _, v := range res.Variants {
		if v.Hypervolume <= 0 {
			t.Errorf("variant %q has non-positive hypervolume", v.Name)
		}
		if v.FrontSize == 0 {
			t.Errorf("variant %q has empty front", v.Name)
		}
		byName[v.Name] = v
	}
	// Every variant optimizes the same landscape with the same budget;
	// all should land within a reasonable band of the paper pipeline.
	paper := res.Variants[0].Hypervolume
	for _, v := range res.Variants[1:] {
		if v.Hypervolume < paper*0.8 {
			t.Errorf("variant %q hypervolume %v far below paper %v", v.Name, v.Hypervolume, paper)
		}
	}
	text := res.Render()
	for _, want := range []string{"paper", "canonical", "steady-state", "no-annealing", "hypervolume"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestCompareBaselines(t *testing.T) {
	res, err := CompareBaselines(context.Background(), Options{
		Runs: 1, PopSize: 60, Generations: 5, Seed: 17, Parallelism: 8,
	})
	if err != nil {
		t.Fatalf("CompareBaselines: %v", err)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("got %d entries", len(res.Entries))
	}
	ea2 := res.Entries[0]
	random := res.Entries[1]
	grid := res.Entries[2]
	// The EA must dominate on chemically accurate discoveries: it spends
	// its budget inside the good region while random/grid sample blindly.
	if ea2.Accurate <= random.Accurate {
		t.Errorf("EA accurate %d not above random search %d", ea2.Accurate, random.Accurate)
	}
	if ea2.Accurate <= grid.Accurate {
		t.Errorf("EA accurate %d not above grid search %d", ea2.Accurate, grid.Accurate)
	}
	// And find a better best-force solution than the coarse grid.
	if ea2.BestForce >= grid.BestForce {
		t.Errorf("EA best force %v not below grid %v (grid too coarse to hit the optimum)",
			ea2.BestForce, grid.BestForce)
	}
	text := res.Render()
	if !strings.Contains(text, "NSGA-II") || !strings.Contains(text, "grid search") {
		t.Errorf("render incomplete:\n%s", text)
	}
}
