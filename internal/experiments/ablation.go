package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/nsga2"
	"repro/internal/surrogate"
)

// AblationVariant is one design-choice variant of the paper's EA, scored
// on the HPO problem under an identical evaluation budget and seed.
type AblationVariant struct {
	Name        string
	Hypervolume float64 // pooled-final-population HV vs. RefPoint
	FrontSize   int
	Failures    int
	Accurate    int
}

// AblationResult collects all variants.
type AblationResult struct {
	Variants []AblationVariant
	Budget   int // evaluations per variant
}

// PipelineAblation compares the paper's design choices against
// alternatives on the actual tuning problem:
//
//   - "paper": random parent selection + clone + annealed isotropic
//     Gaussian mutation, σ×0.85 per generation (§2.2.3, Listing 1).
//   - "no-annealing": the same pipeline with fixed σ.
//   - "canonical": binary crowded-tournament selection + SBX crossover +
//     polynomial mutation — the textbook NSGA-II variation the paper
//     replaced.
//   - "steady-state": asynchronous steady-state selection at the same
//     budget (the idle-node remedy of §2.2.5's synchronous scheme).
func PipelineAblation(ctx context.Context, opts Options) (*AblationResult, error) {
	if opts.Runs <= 0 {
		opts = Options{Runs: 2, PopSize: 60, Generations: 5, Seed: 11, Parallelism: 8}
	}
	rep := hpo.PaperRepresentation()
	budget := opts.PopSize * (opts.Generations + 1)
	out := &AblationResult{Budget: budget * opts.Runs}

	newEval := func() ea.Evaluator {
		return surrogate.NewEvaluator(surrogate.Config{Seed: opts.Seed})
	}

	runGenerational := func(name string, anneal float64, breeder func(*rand.Rand, *ea.Context, ea.Population, int) ea.Stream) error {
		var pool ea.Population
		failures := 0
		for r := 0; r < opts.Runs; r++ {
			res, err := nsga2.Run(ctx, nsga2.Config{
				PopSize: opts.PopSize, Generations: opts.Generations,
				Bounds: rep.Bounds, InitialStd: rep.Std,
				AnnealFactor: anneal, Evaluator: newEval(),
				Pool:    ea.PoolConfig{Parallelism: opts.Parallelism, Objectives: 2},
				Seed:    opts.Seed + int64(r),
				Breeder: breeder,
			})
			if err != nil {
				return fmt.Errorf("experiments: ablation %s run %d: %w", name, r, err)
			}
			pool = append(pool, res.Final...)
			failures += res.TotalFailures()
		}
		out.Variants = append(out.Variants, scoreVariant(name, pool, failures))
		return nil
	}

	// 1. The paper's pipeline.
	if err := runGenerational("paper (random+gaussian, anneal 0.85)", 0.85, nil); err != nil {
		return nil, err
	}
	// 2. No annealing.
	if err := runGenerational("no-annealing (random+gaussian, fixed sigma)", 1.0, nil); err != nil {
		return nil, err
	}
	// 3. Canonical NSGA-II variation.
	bounds := rep.Bounds
	canonical := func(rng *rand.Rand, _ *ea.Context, parents ea.Population, gen int) ea.Stream {
		pm := 1.0 / float64(len(bounds))
		return ea.Pipe(
			nsga2.TournamentSelection(rng, parents),
			ea.Clone(),
			ea.SBX(rng, bounds, 15, 0.9),
			ea.MutatePolynomial(rng, bounds, 20, pm),
			ea.SetBirth(gen),
		)
	}
	if err := runGenerational("canonical (tournament+SBX+polynomial)", 0.85, canonical); err != nil {
		return nil, err
	}
	// 4. Asynchronous steady-state at the same budget.
	{
		var pool ea.Population
		failures := 0
		for r := 0; r < opts.Runs; r++ {
			final, all, err := nsga2.RunSteadyState(ctx, nsga2.SteadyConfig{
				PopSize: opts.PopSize, Evaluations: budget,
				Bounds: rep.Bounds, InitialStd: rep.Std,
				AnnealFactor: 0.85, Evaluator: newEval(),
				Parallelism: opts.Parallelism, Seed: opts.Seed + int64(r),
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: steady-state ablation run %d: %w", r, err)
			}
			pool = append(pool, final...)
			for _, ind := range all {
				if ind.Fitness.IsFailure() {
					failures++
				}
			}
		}
		out.Variants = append(out.Variants, scoreVariant("steady-state (async, anneal 0.85)", pool, failures))
	}
	return out, nil
}

func scoreVariant(name string, pool ea.Population, failures int) AblationVariant {
	front := nsga2.NonDominated(pool)
	acc := 0
	for _, ind := range pool {
		if hpo.ChemicallyAccurate(ind.Fitness) {
			acc++
		}
	}
	return AblationVariant{
		Name:        name,
		Hypervolume: nsga2.Hypervolume2D(pool, RefPoint),
		FrontSize:   len(front),
		Failures:    failures,
		Accurate:    acc,
	}
}

// Render formats the ablation table.
func (a *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EA design-choice ablation on the HPO problem (%d evaluations per variant)\n\n", a.Budget)
	fmt.Fprintf(&b, "%-46s %12s %7s %9s %9s\n", "variant", "hypervolume", "front", "failures", "accurate")
	for _, v := range a.Variants {
		fmt.Fprintf(&b, "%-46s %12.6f %7d %9d %9d\n", v.Name, v.Hypervolume, v.FrontSize, v.Failures, v.Accurate)
	}
	return b.String()
}
