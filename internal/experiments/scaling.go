package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/surrogate"
)

// ScalingEntry measures one worker count.
type ScalingEntry struct {
	Workers    int
	WallTime   time.Duration
	Speedup    float64
	Efficiency float64
}

// ScalingResult is the strong-scaling table.
type ScalingResult struct {
	Entries   []ScalingEntry
	EvalDelay time.Duration
	PerRun    int
}

// ParallelScaling measures the wall-clock time of one fixed-size
// generation sweep as the evaluation parallelism grows — the property
// that makes EAs "inherently parallelizable … scalable and suitable for
// HPC platforms" (§1).  Each surrogate evaluation is padded with a fixed
// delay standing in for a training's wall time, so the measurement
// reflects scheduling rather than surrogate arithmetic.
func ParallelScaling(ctx context.Context, workerCounts []int, popSize, generations int,
	evalDelay time.Duration, seed int64) (*ScalingResult, error) {

	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	base := surrogate.NewEvaluator(surrogate.Config{Seed: seed})
	delayed := ea.EvaluatorFunc(func(c context.Context, g ea.Genome) (ea.Fitness, error) {
		select {
		case <-time.After(evalDelay):
		case <-c.Done():
			return nil, c.Err()
		}
		return base.Evaluate(c, g)
	})

	out := &ScalingResult{EvalDelay: evalDelay, PerRun: popSize * (generations + 1)}
	var serial time.Duration
	for _, w := range workerCounts {
		start := time.Now()
		_, err := hpo.RunCampaign(ctx, hpo.CampaignConfig{
			Runs: 1, PopSize: popSize, Generations: generations,
			Evaluator: delayed, Parallelism: w,
			AnnealFactor: 0.85, BaseSeed: seed,
		})
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		e := ScalingEntry{Workers: w, WallTime: wall}
		if serial == 0 {
			serial = wall
		}
		e.Speedup = float64(serial) / float64(wall)
		e.Efficiency = e.Speedup / float64(w) * float64(workerCounts[0])
		out.Entries = append(out.Entries, e)
	}
	return out, nil
}

// Render formats the scaling table.
func (s *ScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Strong scaling of parallel fitness evaluation (%d evaluations/run, %v per evaluation)\n",
		s.PerRun, s.EvalDelay)
	fmt.Fprintf(&b, "%8s %12s %9s %11s\n", "workers", "wall time", "speedup", "efficiency")
	for _, e := range s.Entries {
		fmt.Fprintf(&b, "%8d %12v %9.2f %10.0f%%\n",
			e.Workers, e.WallTime.Round(time.Millisecond), e.Speedup, e.Efficiency*100)
	}
	b.WriteString("(the paper runs one evaluation per Summit node: population 100 on 100 nodes)\n")
	return b.String()
}
