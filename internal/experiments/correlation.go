package experiments

import (
	"fmt"

	"repro/internal/hpo"
	"repro/internal/stats"
)

// HyperparameterCorrelations computes Spearman rank correlations between
// each tuned hyperparameter and the two objectives over the pooled final
// solutions — quantifying the relationships §3.2 reads qualitatively off
// the parallel-coordinates plot (larger rcut → lower errors, start_lr
// sweet spot, etc.).  Failed individuals are excluded.
func HyperparameterCorrelations(c *Campaign) (*stats.CorrelationMatrix, error) {
	pool := c.Result.LastGenerations()
	cols := make([][]float64, hpo.NumGenes)
	var energy, force, runtime []float64
	for _, ind := range pool {
		if !ind.Evaluated || ind.Fitness.IsFailure() {
			continue
		}
		h, err := hpo.Decode(ind.Genome)
		if err != nil {
			continue
		}
		vals := []float64{
			h.StartLR, h.StopLR, h.RCut, h.RCutSmth,
			float64(hpo.DecodeCategorical(ind.Genome[hpo.GeneScaleByWorker], 3)),
			float64(hpo.DecodeCategorical(ind.Genome[hpo.GeneDescActivFunc], 5)),
			float64(hpo.DecodeCategorical(ind.Genome[hpo.GeneFittingActivFunc], 5)),
		}
		for g := range cols {
			cols[g] = append(cols[g], vals[g])
		}
		energy = append(energy, ind.Fitness[0])
		force = append(force, ind.Fitness[1])
		runtime = append(runtime, c.runtimeOf(ind).Minutes())
	}
	if len(energy) < 3 {
		return nil, fmt.Errorf("experiments: too few solutions for correlations (%d)", len(energy))
	}
	return stats.NewCorrelationMatrix(
		hpo.GeneNames[:], cols,
		[]string{"energy_loss", "force_loss", "runtime_min"},
		[][]float64{energy, force, runtime},
	)
}

// RenderCorrelations formats the matrix with a short interpretation.
func RenderCorrelations(c *Campaign) (string, error) {
	m, err := HyperparameterCorrelations(c)
	if err != nil {
		return "", err
	}
	return "Spearman correlations, hyperparameters vs objectives (pooled final solutions)\n" +
		m.Render() +
		"(categorical genes use their decoded index; treat their rows as rough association)\n", nil
}
