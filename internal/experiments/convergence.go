package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

// ConvergenceRow quantifies one generation of the campaign — the numeric
// companion to Fig. 1's level plots.
type ConvergenceRow struct {
	Gen         int
	Hypervolume float64 // exact 2-D HV of the pooled survivors vs. RefPoint
	MinForce    float64 // best force loss among evaluations this generation
	MinEnergy   float64 // best energy loss among evaluations this generation
	MedianForce float64
	Failures    int
	Accurate    int // chemically accurate evaluations this generation
}

// RefPoint is the hypervolume reference: the corner of Fig. 1's plot
// window (force 0.6 eV/Å, energy 0.03 eV/atom), so cropped outliers
// contribute nothing.
var RefPoint = ea.Fitness{0.03, 0.6} // (energy, force) fitness order

// Convergence builds the per-generation table pooled across runs.
func Convergence(c *Campaign) []ConvergenceRow {
	gens := c.Config.Generations + 1
	rows := make([]ConvergenceRow, gens)
	for g := 0; g < gens; g++ {
		row := &rows[g]
		row.Gen = g
		row.MinForce = math.Inf(1)
		row.MinEnergy = math.Inf(1)
		var pooledSurvivors ea.Population
		var forces []float64
		for _, run := range c.Result.Runs {
			if g >= len(run.Generations) {
				continue
			}
			rec := run.Generations[g]
			row.Failures += rec.Failures
			pooledSurvivors = append(pooledSurvivors, rec.Survivors...)
			for _, ind := range rec.Evaluated {
				if ind.Fitness.IsFailure() {
					continue
				}
				if ind.Fitness[1] < row.MinForce {
					row.MinForce = ind.Fitness[1]
				}
				if ind.Fitness[0] < row.MinEnergy {
					row.MinEnergy = ind.Fitness[0]
				}
				forces = append(forces, ind.Fitness[1])
				if ind.Fitness[0] < 0.004 && ind.Fitness[1] < 0.04 {
					row.Accurate++
				}
			}
		}
		row.Hypervolume = nsga2.Hypervolume2D(pooledSurvivors, RefPoint)
		if len(forces) > 0 {
			// median via partial sort
			insertionSort(forces)
			row.MedianForce = forces[len(forces)/2]
		}
	}
	return rows
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// RenderConvergence formats the table.
func RenderConvergence(c *Campaign) string {
	var b strings.Builder
	b.WriteString("Per-generation convergence (pooled over runs; HV ref = Fig. 1 window corner)\n")
	fmt.Fprintf(&b, "%4s %14s %10s %10s %12s %9s %9s\n",
		"gen", "hypervolume", "min force", "min energy", "median force", "failures", "accurate")
	for _, r := range Convergence(c) {
		fmt.Fprintf(&b, "%4d %14.6f %10.4f %10.4f %12.4f %9d %9d\n",
			r.Gen, r.Hypervolume, r.MinForce, r.MinEnergy, r.MedianForce, r.Failures, r.Accurate)
	}
	return b.String()
}
