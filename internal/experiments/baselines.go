package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/nsga2"
	"repro/internal/surrogate"
)

// BaselineEntry scores one search strategy at a common budget.
type BaselineEntry struct {
	Name        string
	Budget      int
	Hypervolume float64
	FrontSize   int
	BestForce   float64
	BestEnergy  float64
	Accurate    int
	Failures    int
}

// BaselineComparison holds the strategy table.
type BaselineComparison struct {
	Entries []BaselineEntry
}

// CompareBaselines pits NSGA-II against random search and a budget-
// matched coarse grid on the same surrogate landscape — the quantitative
// backing for §1's claim that grid search misses optima unless the grid
// is prohibitively fine, and §3.1's note that the EA needed orders of
// magnitude fewer trainings than a 10-point grid (10⁷).
func CompareBaselines(ctx context.Context, opts Options) (*BaselineComparison, error) {
	if opts.Runs <= 0 {
		opts = Options{Runs: 1, PopSize: 100, Generations: 6, Seed: 2023, Parallelism: 8}
	}
	budget := opts.Runs * opts.PopSize * (opts.Generations + 1)
	out := &BaselineComparison{}
	rep := hpo.PaperRepresentation()
	newEval := func() ea.Evaluator {
		return surrogate.NewEvaluator(surrogate.Config{Seed: opts.Seed})
	}

	// NSGA-II at the paper's configuration.
	camp, err := hpo.RunCampaign(ctx, hpo.CampaignConfig{
		Runs: opts.Runs, PopSize: opts.PopSize, Generations: opts.Generations,
		Evaluator: newEval(), Parallelism: opts.Parallelism,
		AnnealFactor: 0.85, BaseSeed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	var allEA ea.Population
	for _, run := range camp.Runs {
		for _, gen := range run.Generations {
			allEA = append(allEA, gen.Evaluated...)
		}
	}
	out.Entries = append(out.Entries, scoreBaseline("NSGA-II (paper)", budget, allEA))

	// Random search with the identical budget.
	rs, err := baselines.RandomSearch(ctx, newEval(), rep.Bounds, budget, opts.Parallelism, opts.Seed)
	if err != nil {
		return nil, err
	}
	out.Entries = append(out.Entries, scoreBaseline(rs.Name, budget, rs.Evaluated))

	// The largest uniform grid fitting the budget: points^7 ≤ budget.
	points := 1
	for p := 2; p < 10; p++ {
		if pow(p, hpo.NumGenes) <= budget {
			points = p
		}
	}
	spec := baselines.UniformGrid(hpo.NumGenes, points)
	gs, err := baselines.GridSearch(ctx, newEval(), rep.Bounds, spec, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	out.Entries = append(out.Entries, scoreBaseline(gs.Name, spec.Size(), gs.Evaluated))
	return out, nil
}

func pow(b, e int) int {
	n := 1
	for i := 0; i < e; i++ {
		n *= b
	}
	return n
}

func scoreBaseline(name string, budget int, pop ea.Population) BaselineEntry {
	e := BaselineEntry{Name: name, Budget: budget, BestForce: 1e9, BestEnergy: 1e9}
	for _, ind := range pop {
		if !ind.Evaluated {
			continue
		}
		if ind.Fitness.IsFailure() {
			e.Failures++
			continue
		}
		if ind.Fitness[1] < e.BestForce {
			e.BestForce = ind.Fitness[1]
		}
		if ind.Fitness[0] < e.BestEnergy {
			e.BestEnergy = ind.Fitness[0]
		}
		if hpo.ChemicallyAccurate(ind.Fitness) {
			e.Accurate++
		}
	}
	e.Hypervolume = nsga2.Hypervolume2D(pop, RefPoint)
	e.FrontSize = len(nsga2.NonDominated(dropFailures(pop)))
	return e
}

func dropFailures(pop ea.Population) ea.Population {
	var out ea.Population
	for _, ind := range pop {
		if ind.Evaluated && !ind.Fitness.IsFailure() {
			out = append(out, ind)
		}
	}
	return out
}

// Render formats the comparison.
func (b *BaselineComparison) Render() string {
	var s strings.Builder
	s.WriteString("Search-strategy comparison at matched evaluation budget\n")
	s.WriteString("(the paper's 10-points-per-gene grid would need 10^7 trainings; the grid row\n")
	s.WriteString(" shows the best full factorial that fits the EA's budget — its coarseness is the point)\n\n")
	fmt.Fprintf(&s, "%-28s %8s %12s %7s %11s %12s %9s\n",
		"strategy", "budget", "hypervolume", "front", "best force", "best energy", "accurate")
	for _, e := range b.Entries {
		fmt.Fprintf(&s, "%-28s %8d %12.6f %7d %11.4f %12.4f %9d\n",
			e.Name, e.Budget, e.Hypervolume, e.FrontSize, e.BestForce, e.BestEnergy, e.Accurate)
	}
	return s.String()
}
