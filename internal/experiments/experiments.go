// Package experiments regenerates every table and figure of the paper's
// evaluation section from a campaign run: Fig. 1 (per-generation loss
// level plots), Fig. 2 (final Pareto frontier), Table 2 (frontier values),
// Fig. 3 (parallel-coordinates view of the final solutions), Table 3
// (selected chemically accurate solutions), plus the §3.2 failure
// accounting.  Each experiment returns structured data and a text
// rendering, so the same code backs the CLI, the benchmarks and
// EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/stats"
	"repro/internal/surrogate"
)

// Campaign bundles a finished campaign with the surrogate that evaluated
// it, so per-individual simulated runtimes can be recovered
// deterministically.
type Campaign struct {
	Result    *hpo.CampaignResult
	Surrogate *surrogate.Evaluator
	Config    hpo.CampaignConfig
}

// Options scales the paper campaign.
type Options struct {
	Runs        int   // paper: 5
	PopSize     int   // paper: 100
	Generations int   // paper: 6 (7 evaluation rounds)
	Seed        int64 // campaign base seed
	Parallelism int
}

// PaperOptions returns the full paper-scale configuration.
func PaperOptions() Options {
	return Options{Runs: 5, PopSize: 100, Generations: 6, Seed: 2023, Parallelism: 8}
}

// RunPaperCampaign executes the paper's experiment against the Summit
// surrogate.
func RunPaperCampaign(ctx context.Context, opts Options) (*Campaign, error) {
	if opts.Runs <= 0 {
		opts = PaperOptions()
	}
	ev := surrogate.NewEvaluator(surrogate.Config{Seed: opts.Seed})
	cfg := hpo.CampaignConfig{
		Runs:        opts.Runs,
		PopSize:     opts.PopSize,
		Generations: opts.Generations,
		Evaluator:   ev,
		Parallelism: opts.Parallelism,
		// Two (simulated) hours; surrogate evaluations return instantly,
		// so this never fires — it is configuration fidelity only.
		EvalTimeout:  2 * time.Hour,
		AnnealFactor: 0.85,
		BaseSeed:     opts.Seed,
	}
	res, err := hpo.RunCampaign(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &Campaign{Result: res, Surrogate: ev, Config: cfg}, nil
}

// runtimeOf recomputes an individual's simulated training runtime.
func (c *Campaign) runtimeOf(ind *ea.Individual) time.Duration {
	r, err := c.Surrogate.EvaluateGenome(ind.Genome)
	if err != nil {
		return 0
	}
	return r.Runtime
}

// ---------------------------------------------------------------------------
// Table 1 — initialization ranges and mutation standard deviations.

// Table1Row is one hyperparameter's configuration.
type Table1Row struct {
	Name     string
	Lo, Hi   float64
	Std      float64
	IsStatic bool
}

// Table1 reproduces Table 1 from the representation in code.
func Table1() []Table1Row {
	rep := hpo.PaperRepresentation()
	rows := make([]Table1Row, hpo.NumGenes)
	for g := 0; g < hpo.NumGenes; g++ {
		rows[g] = Table1Row{
			Name: hpo.GeneNames[g],
			Lo:   rep.Bounds[g].Lo, Hi: rep.Bounds[g].Hi,
			Std: rep.Std[g],
		}
	}
	return rows
}

// RenderTable1 formats Table 1 as text.
func RenderTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: initialization ranges and mutation standard deviations\n")
	fmt.Fprintf(&b, "%-20s %-22s %s\n", "hyperparameter", "initialization range", "mutation std")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%-20s (%.3g, %.3g)%*s %g\n", r.Name, r.Lo, r.Hi, 22-len(fmt.Sprintf("(%.3g, %.3g)", r.Lo, r.Hi)), "", r.Std)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 1 — energy vs force loss level plots per generation, runs pooled.

// Fig1Result holds one histogram per generation.
type Fig1Result struct {
	Hists []*stats.Hist2D // index = generation
}

// Fig1 pools each generation's evaluated individuals across runs and bins
// (force, energy) into the paper's plot window: force up to 0.6 eV/Å,
// energy up to 0.03 eV/atom — the same cropping §3.1 applies to outliers.
func Fig1(c *Campaign) *Fig1Result {
	gens := c.Config.Generations + 1
	out := &Fig1Result{}
	for g := 0; g < gens; g++ {
		h := stats.NewHist2D(0, 0.6, 60, 0, 0.03, 20)
		for _, run := range c.Result.Runs {
			if g >= len(run.Generations) {
				continue
			}
			for _, ind := range run.Generations[g].Evaluated {
				if ind.Fitness.IsFailure() {
					h.Add(-1, -1) // count as cropped, like MAXINT points
					continue
				}
				h.Add(ind.Fitness[1], ind.Fitness[0]) // x=force, y=energy
			}
		}
		out.Hists = append(out.Hists, h)
	}
	return out
}

// Render formats the level plots generation by generation.
func (f *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 1: energy vs. force loss level plots per generation (runs pooled)\n")
	b.WriteString("x: force loss (eV/Å), y: energy loss (eV/atom)\n\n")
	for g, h := range f.Hists {
		fmt.Fprintf(&b, "generation %d:\n%s\n", g, h.Render())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 2 / Table 2 — final Pareto frontier.

// FrontierPoint is one non-dominated solution.
type FrontierPoint struct {
	ForceError  float64 // eV/Å
	EnergyError float64 // eV/atom
	Params      hpo.HParams
	Runtime     time.Duration
}

// Fig2 computes the Pareto frontier of the pooled last generations,
// sorted by ascending force error like Table 2.
func Fig2(c *Campaign) []FrontierPoint {
	front := c.Result.ParetoFront()
	points := make([]FrontierPoint, 0, len(front))
	for _, ind := range front {
		if ind.Fitness.IsFailure() {
			continue
		}
		h, err := hpo.Decode(ind.Genome)
		if err != nil {
			continue
		}
		points = append(points, FrontierPoint{
			ForceError:  ind.Fitness[1],
			EnergyError: ind.Fitness[0],
			Params:      h,
			Runtime:     c.runtimeOf(ind),
		})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].ForceError < points[j].ForceError })
	return points
}

// Fig2Hist bins the pooled last generations into the Fig. 2 window
// (force 0.03–0.08 eV/Å, energy 0–0.005 eV/atom).
func Fig2Hist(c *Campaign) *stats.Hist2D {
	h := stats.NewHist2D(0.03, 0.08, 50, 0, 0.005, 20)
	for _, ind := range c.Result.LastGenerations() {
		if !ind.Fitness.IsFailure() {
			h.Add(ind.Fitness[1], ind.Fitness[0])
		}
	}
	return h
}

// RenderFig2 renders the frontier as a scatter summary plus the pooled
// last-generation cloud it is drawn from.
func RenderFig2(c *Campaign) string {
	points := Fig2(c)
	pool := c.Result.LastGenerations()
	h := Fig2Hist(c)
	var b strings.Builder
	b.WriteString("Fig. 2: Pareto frontier of the aggregated last generations\n")
	fmt.Fprintf(&b, "pooled solutions: %d, frontier points: %d\n\n", len(pool), len(points))
	b.WriteString(h.Render())
	b.WriteString("\nfrontier (force asc):\n")
	for i, p := range points {
		fmt.Fprintf(&b, "  %2d  force=%.4f eV/Å  energy=%.4f eV/atom\n", i+1, p.ForceError, p.EnergyError)
	}
	return b.String()
}

// RenderTable2 renders Table 2: force and energy for every frontier
// solution.
func RenderTable2(c *Campaign) string {
	points := Fig2(c)
	var b strings.Builder
	b.WriteString("Table 2: force and energy values for all solutions on the Pareto frontier\n")
	fmt.Fprintf(&b, "%-9s %-20s %s\n", "solution", "force error (eV/Å)", "energy error (eV/atom)")
	for i, p := range points {
		fmt.Fprintf(&b, "%-9d %-20.4f %.4f\n", i+1, p.ForceError, p.EnergyError)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 3 — parallel coordinates of the final solution set.

// Fig3Axes lists the parallel-coordinates axes: the seven tuned
// hyperparameters plus runtime, both losses, and frontier membership, as
// in the paper's plot.
var Fig3Axes = []string{
	"start_lr", "stop_lr", "rcut", "rcut_smth",
	"scale_by_worker", "desc_activ_func", "fitting_activ_func",
	"runtime_min", "energy_loss", "force_loss", "on_frontier",
}

// Fig3 builds the parallel-coordinates dataset from the pooled last
// generations; rows are tagged when chemically accurate (the blue lines).
func Fig3(c *Campaign) *stats.ParallelCoordinates {
	pool := c.Result.LastGenerations()
	frontSet := map[*ea.Individual]bool{}
	for _, ind := range c.Result.ParetoFront() {
		frontSet[ind] = true
	}
	p := &stats.ParallelCoordinates{Axes: Fig3Axes}
	for _, ind := range pool {
		if ind.Fitness.IsFailure() {
			continue
		}
		h, err := hpo.Decode(ind.Genome)
		if err != nil {
			continue
		}
		onFront := 0.0
		if frontSet[ind] {
			onFront = 1
		}
		row := []float64{
			h.StartLR, h.StopLR, h.RCut, h.RCutSmth,
			float64(hpo.DecodeCategorical(ind.Genome[hpo.GeneScaleByWorker], 3)),
			float64(hpo.DecodeCategorical(ind.Genome[hpo.GeneDescActivFunc], 5)),
			float64(hpo.DecodeCategorical(ind.Genome[hpo.GeneFittingActivFunc], 5)),
			c.runtimeOf(ind).Minutes(),
			ind.Fitness[0], ind.Fitness[1], onFront,
		}
		p.AddRow(row, hpo.ChemicallyAccurate(ind.Fitness))
	}
	return p
}

// Fig3Insights summarizes the qualitative observations §3.2 draws from
// the plot.
type Fig3Insights struct {
	Accurate, Total     int
	MinAccurateRCut     float64
	AccurateScaleCounts map[string]int
	AccurateDescCounts  map[string]int
	AccurateFitCounts   map[string]int
	MaxRuntimeMinutes   float64
}

// AnalyzeFig3 extracts the §3.2 observations from the dataset.
func AnalyzeFig3(c *Campaign) Fig3Insights {
	pool := c.Result.LastGenerations()
	ins := Fig3Insights{
		MinAccurateRCut:     99,
		AccurateScaleCounts: map[string]int{},
		AccurateDescCounts:  map[string]int{},
		AccurateFitCounts:   map[string]int{},
	}
	for _, ind := range pool {
		if ind.Fitness.IsFailure() {
			continue
		}
		ins.Total++
		h, err := hpo.Decode(ind.Genome)
		if err != nil {
			continue
		}
		if rt := c.runtimeOf(ind).Minutes(); rt > ins.MaxRuntimeMinutes {
			ins.MaxRuntimeMinutes = rt
		}
		if !hpo.ChemicallyAccurate(ind.Fitness) {
			continue
		}
		ins.Accurate++
		if h.RCut < ins.MinAccurateRCut {
			ins.MinAccurateRCut = h.RCut
		}
		ins.AccurateScaleCounts[h.ScaleByWorker]++
		ins.AccurateDescCounts[h.DescActiv]++
		ins.AccurateFitCounts[h.FittingActiv]++
	}
	return ins
}

// RenderFig3 renders the parallel-coordinates table and the insight
// summary.
func RenderFig3(c *Campaign) string {
	p := Fig3(c)
	ins := AnalyzeFig3(c)
	var b strings.Builder
	b.WriteString("Fig. 3: parallel coordinates of final solutions (* = chemically accurate)\n\n")
	b.WriteString(p.RenderTable(40))
	fmt.Fprintf(&b, "\nchemically accurate: %d of %d\n", ins.Accurate, ins.Total)
	fmt.Fprintf(&b, "min rcut among accurate: %.2f Å (paper: none below 8.5)\n", ins.MinAccurateRCut)
	fmt.Fprintf(&b, "max runtime: %.1f min (paper: all below 80)\n", ins.MaxRuntimeMinutes)
	fmt.Fprintf(&b, "accurate scale_by_worker counts: %v\n", ins.AccurateScaleCounts)
	fmt.Fprintf(&b, "accurate desc activation counts: %v\n", ins.AccurateDescCounts)
	fmt.Fprintf(&b, "accurate fitting activation counts: %v\n", ins.AccurateFitCounts)
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 3 — selected chemically accurate solutions.

// Table3Result holds the three selected solutions.
type Table3Result struct {
	LowestForce   FrontierPoint
	LowestEnergy  FrontierPoint
	LowestRuntime FrontierPoint
}

// Table3 selects, among the chemically accurate solutions of the pooled
// last generations, the ones with lowest force loss, lowest energy loss
// and lowest training runtime (§3.2, Table 3).
func Table3(c *Campaign) (Table3Result, error) {
	acc := hpo.FilterChemicallyAccurate(c.Result.LastGenerations())
	if len(acc) == 0 {
		return Table3Result{}, fmt.Errorf("experiments: no chemically accurate solutions")
	}
	point := func(ind *ea.Individual) FrontierPoint {
		h, _ := hpo.Decode(ind.Genome)
		return FrontierPoint{
			ForceError: ind.Fitness[1], EnergyError: ind.Fitness[0],
			Params: h, Runtime: c.runtimeOf(ind),
		}
	}
	best := func(key func(*ea.Individual) float64) *ea.Individual {
		bestInd := acc[0]
		for _, ind := range acc[1:] {
			if key(ind) < key(bestInd) {
				bestInd = ind
			}
		}
		return bestInd
	}
	return Table3Result{
		LowestForce:   point(best(func(i *ea.Individual) float64 { return i.Fitness[1] })),
		LowestEnergy:  point(best(func(i *ea.Individual) float64 { return i.Fitness[0] })),
		LowestRuntime: point(best(func(i *ea.Individual) float64 { return c.runtimeOf(i).Minutes() })),
	}, nil
}

// RenderTable3 formats Table 3 in the paper's row order.
func RenderTable3(c *Campaign) (string, error) {
	t3, err := Table3(c)
	if err != nil {
		return "", err
	}
	cols := []FrontierPoint{t3.LowestForce, t3.LowestEnergy, t3.LowestRuntime}
	var b strings.Builder
	b.WriteString("Table 3: selected chemically accurate solutions\n")
	b.WriteString("(solution 1 = lowest force loss, 2 = lowest energy loss, 3 = lowest runtime)\n")
	row := func(name string, f func(FrontierPoint) string) {
		fmt.Fprintf(&b, "%-20s", name)
		for _, p := range cols {
			fmt.Fprintf(&b, " %-12s", f(p))
		}
		b.WriteByte('\n')
	}
	row("hyperparameter", func(FrontierPoint) string { return "" })
	row("start_lr", func(p FrontierPoint) string { return fmt.Sprintf("%.4g", p.Params.StartLR) })
	row("stop_lr", func(p FrontierPoint) string { return fmt.Sprintf("%.4g", p.Params.StopLR) })
	row("rcut", func(p FrontierPoint) string { return fmt.Sprintf("%.2f", p.Params.RCut) })
	row("rcut_smth", func(p FrontierPoint) string { return fmt.Sprintf("%.2f", p.Params.RCutSmth) })
	row("scale_by_worker", func(p FrontierPoint) string { return p.Params.ScaleByWorker })
	row("desc_activ_func", func(p FrontierPoint) string { return p.Params.DescActiv })
	row("fitting_activ_func", func(p FrontierPoint) string { return p.Params.FittingActiv })
	row("runtime (min.)", func(p FrontierPoint) string { return fmt.Sprintf("%.1f", p.Runtime.Minutes()) })
	row("energy loss (eV)", func(p FrontierPoint) string { return fmt.Sprintf("%.4f", p.EnergyError) })
	row("force loss (eV/Å)", func(p FrontierPoint) string { return fmt.Sprintf("%.4f", p.ForceError) })
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// §3.2 failure accounting.

// FailureReport counts failed trainings, paper: 25 total across the five
// jobs, none in any job's last generation.
type FailureReport struct {
	Total            int
	LastGen          int
	TotalEvaluations int
	PerGeneration    []int
}

// Failures builds the report.
func Failures(c *Campaign) FailureReport {
	rep := FailureReport{TotalEvaluations: c.Result.TotalEvaluations()}
	gens := c.Config.Generations + 1
	rep.PerGeneration = make([]int, gens)
	for _, run := range c.Result.Runs {
		for g, rec := range run.Generations {
			if g < gens {
				rep.PerGeneration[g] += rec.Failures
			}
		}
	}
	rep.Total = c.Result.TotalFailures()
	rep.LastGen = c.Result.LastGenFailures()
	return rep
}

// RenderFailures formats the report.
func RenderFailures(c *Campaign) string {
	r := Failures(c)
	var b strings.Builder
	b.WriteString("Failed trainings (§3.2)\n")
	fmt.Fprintf(&b, "total evaluations: %d (paper: 3500)\n", r.TotalEvaluations)
	fmt.Fprintf(&b, "total failures:    %d (paper: 25)\n", r.Total)
	fmt.Fprintf(&b, "last generation:   %d (paper: 0)\n", r.LastGen)
	for g, n := range r.PerGeneration {
		fmt.Fprintf(&b, "  generation %d: %d\n", g, n)
	}
	return b.String()
}
