package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// sharedCampaign runs the full paper-scale campaign once per test binary;
// it takes a couple of seconds against the surrogate.
var (
	campaignOnce sync.Once
	campaign     *Campaign
	campaignErr  error
)

func paperCampaign(t *testing.T) *Campaign {
	t.Helper()
	campaignOnce.Do(func() {
		campaign, campaignErr = RunPaperCampaign(context.Background(), PaperOptions())
	})
	if campaignErr != nil {
		t.Fatalf("RunPaperCampaign: %v", campaignErr)
	}
	return campaign
}

func TestCampaignScaleMatchesPaper(t *testing.T) {
	c := paperCampaign(t)
	if got := c.Result.TotalEvaluations(); got != 3500 {
		t.Errorf("total evaluations = %d, want 3500 (5 runs × 7 gens × 100)", got)
	}
	if got := len(c.Result.LastGenerations()); got != 500 {
		t.Errorf("pooled last generations = %d, want 500", got)
	}
}

func TestTable1MatchesRepresentation(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("Table 1 has %d rows, want 7", len(rows))
	}
	if rows[0].Name != "start_lr" || rows[0].Hi != 0.01 || rows[0].Std != 0.001 {
		t.Errorf("start_lr row wrong: %+v", rows[0])
	}
	if rows[2].Name != "rcut" || rows[2].Lo != 6 || rows[2].Hi != 12 || rows[2].Std != 0.0625 {
		t.Errorf("rcut row wrong: %+v", rows[2])
	}
	text := RenderTable1()
	for _, want := range []string{"start_lr", "rcut_smth", "0.0625", "scale_by_worker"} {
		if !strings.Contains(text, want) {
			t.Errorf("RenderTable1 missing %q", want)
		}
	}
}

func TestFig1ShowsConvergence(t *testing.T) {
	c := paperCampaign(t)
	f := Fig1(c)
	if len(f.Hists) != 7 {
		t.Fatalf("Fig 1 has %d generations, want 7", len(f.Hists))
	}
	// Each generation pools 500 evaluations.
	for g, h := range f.Hists {
		if h.Total != 500 {
			t.Errorf("generation %d pooled %d points, want 500", g, h.Total)
		}
	}
	// Convergence: the fraction of points inside the near-origin region
	// must grow from generation 0 to the last generation.
	origin := func(h2 int) float64 {
		h := f.Hists[h2]
		in := 0
		// force < 0.05 (first 5 of 60 bins), energy < 0.003 (first 2 of 20)
		for iy := 0; iy < 2; iy++ {
			for ix := 0; ix < 5; ix++ {
				in += h.Counts[iy][ix]
			}
		}
		return float64(in) / float64(h.Total)
	}
	if origin(6) < origin(0)+0.2 {
		t.Errorf("no convergence: origin fraction gen0=%.2f gen6=%.2f", origin(0), origin(6))
	}
	if !strings.Contains(f.Render(), "generation 6") {
		t.Error("Render missing generations")
	}
}

func TestFig2FrontierShape(t *testing.T) {
	c := paperCampaign(t)
	points := Fig2(c)
	if len(points) < 3 || len(points) > 20 {
		t.Fatalf("frontier has %d points; paper found 8", len(points))
	}
	// Sorted by force ascending, energy must be descending (Pareto).
	for i := 1; i < len(points); i++ {
		if points[i].ForceError < points[i-1].ForceError {
			t.Error("frontier not sorted by force")
		}
		if points[i].EnergyError > points[i-1].EnergyError {
			t.Errorf("frontier not Pareto: energy rises with force at %d", i)
		}
	}
	// Band check (shape, not absolute): the paper's frontier spans force
	// ≈[0.0357, 0.0409] and energy ≈[0.0004, 0.0016].
	first, last := points[0], points[len(points)-1]
	if first.ForceError < 0.03 || first.ForceError > 0.045 {
		t.Errorf("best force %.4f outside plausible band", first.ForceError)
	}
	if last.EnergyError < 0.0002 || last.EnergyError > 0.001 {
		t.Errorf("best energy %.4f outside plausible band", last.EnergyError)
	}
	if first.EnergyError < 2*last.EnergyError {
		t.Errorf("no energy spread across frontier: %.4f vs %.4f", first.EnergyError, last.EnergyError)
	}
	if !strings.Contains(RenderFig2(c), "frontier") {
		t.Error("RenderFig2 missing content")
	}
}

func TestTable2Rendering(t *testing.T) {
	c := paperCampaign(t)
	text := RenderTable2(c)
	if !strings.Contains(text, "force error (eV/Å)") {
		t.Errorf("Table 2 header missing:\n%s", text)
	}
	if len(strings.Split(strings.TrimSpace(text), "\n")) < 4 {
		t.Errorf("Table 2 too short:\n%s", text)
	}
}

func TestFig3InsightsMatchPaperFindings(t *testing.T) {
	c := paperCampaign(t)
	ins := AnalyzeFig3(c)
	if ins.Accurate == 0 || ins.Total == 0 {
		t.Fatal("no solutions analyzed")
	}
	// §3.2: no accurate solution with rcut below 8.5 Å (allow a small
	// numerical skirt).
	if ins.MinAccurateRCut < 8.3 {
		t.Errorf("accurate solution with rcut %.2f; paper observed none below 8.5", ins.MinAccurateRCut)
	}
	// §3.2: all runtimes below 80 minutes.
	if ins.MaxRuntimeMinutes >= 80 {
		t.Errorf("max runtime %.1f min; paper observed all below 80", ins.MaxRuntimeMinutes)
	}
	// §3.2: relu/relu6 fitting activations dropped out completely.
	if ins.AccurateFitCounts["relu"] != 0 || ins.AccurateFitCounts["relu6"] != 0 {
		t.Errorf("relu fitting activations in accurate set: %v", ins.AccurateFitCounts)
	}
	// §3.2: sigmoid descriptor activation not in any accurate solution.
	if ins.AccurateDescCounts["sigmoid"] != 0 {
		t.Errorf("sigmoid descriptor in accurate set: %v", ins.AccurateDescCounts)
	}
	// §3.2: sqrt/none provide more accurate solutions than linear.
	if ins.AccurateScaleCounts["linear"] >= ins.AccurateScaleCounts["none"]+ins.AccurateScaleCounts["sqrt"] {
		t.Errorf("linear scaling dominates accurate set: %v", ins.AccurateScaleCounts)
	}
	text := RenderFig3(c)
	if !strings.Contains(text, "chemically accurate") {
		t.Error("RenderFig3 missing summary")
	}
}

func TestFig3RowShape(t *testing.T) {
	c := paperCampaign(t)
	p := Fig3(c)
	if len(p.Axes) != len(Fig3Axes) {
		t.Fatal("axes mismatch")
	}
	if len(p.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range p.Rows[:10] {
		if row[2] < 6 || row[2] > 12 {
			t.Errorf("rcut axis value %v out of bounds", row[2])
		}
		if row[10] != 0 && row[10] != 1 {
			t.Errorf("on_frontier axis value %v not boolean", row[10])
		}
	}
}

func TestTable3Selection(t *testing.T) {
	c := paperCampaign(t)
	t3, err := Table3(c)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	// All three selections must be chemically accurate.
	for name, p := range map[string]FrontierPoint{
		"lowest force": t3.LowestForce, "lowest energy": t3.LowestEnergy, "lowest runtime": t3.LowestRuntime,
	} {
		if p.ForceError >= 0.04 || p.EnergyError >= 0.004 {
			t.Errorf("%s solution not chemically accurate: %+v", name, p)
		}
	}
	// Selection keys must actually be minimal among the three.
	if t3.LowestForce.ForceError > t3.LowestEnergy.ForceError ||
		t3.LowestForce.ForceError > t3.LowestRuntime.ForceError {
		t.Error("lowest-force selection not lowest")
	}
	if t3.LowestEnergy.EnergyError > t3.LowestForce.EnergyError ||
		t3.LowestEnergy.EnergyError > t3.LowestRuntime.EnergyError {
		t.Error("lowest-energy selection not lowest")
	}
	if t3.LowestRuntime.Runtime > t3.LowestForce.Runtime ||
		t3.LowestRuntime.Runtime > t3.LowestEnergy.Runtime {
		t.Error("lowest-runtime selection not lowest")
	}
	text, err := RenderTable3(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"start_lr", "runtime (min.)", "force loss"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestFailureAccounting(t *testing.T) {
	c := paperCampaign(t)
	r := Failures(c)
	if r.TotalEvaluations != 3500 {
		t.Errorf("evaluations = %d", r.TotalEvaluations)
	}
	// Paper: 25 failures; accept the same order of magnitude.
	if r.Total < 5 || r.Total > 80 {
		t.Errorf("failures = %d; paper observed 25", r.Total)
	}
	// Paper: none in the last generation (tolerate ≤1 across 5 runs).
	if r.LastGen > 1 {
		t.Errorf("last-generation failures = %d; paper observed 0", r.LastGen)
	}
	sum := 0
	for _, n := range r.PerGeneration {
		sum += n
	}
	if sum != r.Total {
		t.Errorf("per-generation sum %d != total %d", sum, r.Total)
	}
	if !strings.Contains(RenderFailures(c), "paper: 25") {
		t.Error("RenderFailures missing comparison")
	}
}

func TestSmallCampaignOptions(t *testing.T) {
	c, err := RunPaperCampaign(context.Background(), Options{
		Runs: 2, PopSize: 20, Generations: 2, Seed: 9, Parallelism: 4,
	})
	if err != nil {
		t.Fatalf("RunPaperCampaign(small): %v", err)
	}
	if c.Result.TotalEvaluations() != 2*3*20 {
		t.Errorf("small campaign evaluations = %d", c.Result.TotalEvaluations())
	}
	if len(Fig1(c).Hists) != 3 {
		t.Error("Fig1 generation count wrong for small campaign")
	}
}
