package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestConvergenceTable(t *testing.T) {
	c := paperCampaign(t)
	rows := Convergence(c)
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	// Hypervolume of the survivors must be non-decreasing up to noise:
	// NSGA-II with combined parent+offspring selection is elitist.
	for g := 1; g < len(rows); g++ {
		if rows[g].Hypervolume < rows[g-1].Hypervolume*0.999 {
			t.Errorf("hypervolume decreased at generation %d: %v -> %v",
				g, rows[g-1].Hypervolume, rows[g].Hypervolume)
		}
	}
	// Final generation substantially better than the random initial one.
	if rows[6].Hypervolume <= rows[0].Hypervolume {
		t.Errorf("no hypervolume improvement: %v -> %v", rows[0].Hypervolume, rows[6].Hypervolume)
	}
	// Median force should drop strongly; chemically accurate count rises.
	if rows[6].MedianForce >= rows[0].MedianForce {
		t.Errorf("median force did not improve: %v -> %v", rows[0].MedianForce, rows[6].MedianForce)
	}
	if rows[6].Accurate <= rows[0].Accurate {
		t.Errorf("accurate count did not grow: %d -> %d", rows[0].Accurate, rows[6].Accurate)
	}
	text := RenderConvergence(c)
	if !strings.Contains(text, "hypervolume") || len(strings.Split(text, "\n")) < 9 {
		t.Errorf("render too short:\n%s", text)
	}
}

func TestHyperparameterCorrelations(t *testing.T) {
	c := paperCampaign(t)
	m, err := HyperparameterCorrelations(c)
	if err != nil {
		t.Fatalf("HyperparameterCorrelations: %v", err)
	}
	if len(m.Rho) != 7 || len(m.Rho[0]) != 3 {
		t.Fatalf("matrix shape %dx%d", len(m.Rho), len(m.Rho[0]))
	}
	byName := map[string][]float64{}
	for i, n := range m.ColumnNames {
		byName[n] = m.Rho[i]
	}
	// rcut grows runtime (positive correlation) and helps both losses
	// (negative correlations) in the pooled final set.
	if byName["rcut"][2] <= 0 {
		t.Errorf("rcut-runtime correlation %v, want positive", byName["rcut"][2])
	}
	// stop_lr drives the frontier trade-off: positive with energy loss,
	// negative with force loss.
	if byName["stop_lr"][0] <= 0 || byName["stop_lr"][1] >= 0 {
		t.Errorf("stop_lr correlations = %v, want (+, -) on (energy, force)", byName["stop_lr"][:2])
	}
	text, err := RenderCorrelations(c)
	if err != nil || !strings.Contains(text, "Spearman") {
		t.Errorf("render: %v\n%s", err, text)
	}
}

func TestParallelScaling(t *testing.T) {
	res, err := ParallelScaling(context.Background(), []int{1, 4}, 12, 1, 2*time.Millisecond, 3)
	if err != nil {
		t.Fatalf("ParallelScaling: %v", err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("got %d entries", len(res.Entries))
	}
	if res.Entries[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v", res.Entries[0].Speedup)
	}
	// 4 workers on 12-wide generations of 2ms evaluations: comfortably
	// above 1.5× even on a loaded machine.
	if res.Entries[1].Speedup < 1.5 {
		t.Errorf("4-worker speedup = %v, want > 1.5", res.Entries[1].Speedup)
	}
	if !strings.Contains(res.Render(), "Strong scaling") {
		t.Error("render missing header")
	}
}
