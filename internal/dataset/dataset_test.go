package dataset

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/md"
)

func tinyDataset(t *testing.T, nFrames int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	species := []md.Species{md.Al, md.Cl, md.Cl, md.Cl, md.K, md.Cl}
	pot := md.NewPaperBMH(4.0)
	return Generate(rng, species, 8.0, 498, pot, 0.5, 50, 5, nFrames)
}

func TestGenerateShapes(t *testing.T) {
	d := tinyDataset(t, 8)
	if d.Len() != 8 {
		t.Fatalf("Len = %d, want 8", d.Len())
	}
	if d.NAtoms() != 6 {
		t.Fatalf("NAtoms = %d, want 6", d.NAtoms())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i, f := range d.Frames {
		if f.Box != 8.0 {
			t.Errorf("frame %d box = %v", i, f.Box)
		}
		if f.Energy == 0 {
			t.Errorf("frame %d has zero energy", i)
		}
	}
}

func TestFramesDiffer(t *testing.T) {
	d := tinyDataset(t, 3)
	if d.Frames[0].Coord[0] == d.Frames[1].Coord[0] && d.Frames[0].Coord[1] == d.Frames[1].Coord[1] {
		t.Error("consecutive frames identical: trajectory not advancing")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	d1 := tinyDataset(t, 10)
	d2 := tinyDataset(t, 10)
	d1.Shuffle(rand.New(rand.NewSource(42)))
	d2.Shuffle(rand.New(rand.NewSource(42)))
	for i := range d1.Frames {
		if d1.Frames[i].Energy != d2.Frames[i].Energy {
			t.Fatal("shuffle with same seed not deterministic")
		}
	}
}

func TestSplitFractions(t *testing.T) {
	d := tinyDataset(t, 20)
	train, val := d.Split(0.25)
	if train.Len() != 15 || val.Len() != 5 {
		t.Errorf("split sizes = %d/%d, want 15/5", train.Len(), val.Len())
	}
	if d.Len() != 20 {
		t.Error("Split modified the receiver")
	}
	// Edge cases.
	tr, v := d.Split(0)
	if tr.Len() != 20 || v.Len() != 0 {
		t.Error("Split(0) wrong")
	}
	tr, v = d.Split(1)
	if tr.Len() != 0 || v.Len() != 20 {
		t.Error("Split(1) wrong")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := tinyDataset(t, 6)
	dir := filepath.Join(t.TempDir(), "alkcl")
	if err := d.Save(dir, 0); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != d.Len() || got.NAtoms() != d.NAtoms() {
		t.Fatalf("round trip sizes: %d/%d atoms %d/%d", got.Len(), d.Len(), got.NAtoms(), d.NAtoms())
	}
	for i := range d.Types {
		if got.Types[i] != d.Types[i] {
			t.Errorf("Types[%d] = %d, want %d", i, got.Types[i], d.Types[i])
		}
	}
	for i, f := range d.Frames {
		g := got.Frames[i]
		if g.Energy != f.Energy || g.Box != f.Box {
			t.Errorf("frame %d scalar mismatch", i)
		}
		for k := range f.Coord {
			if g.Coord[k] != f.Coord[k] || g.Force[k] != f.Force[k] {
				t.Fatalf("frame %d array mismatch at %d", i, k)
			}
		}
	}
}

func TestSaveMultipleSets(t *testing.T) {
	d := tinyDataset(t, 10)
	dir := filepath.Join(t.TempDir(), "multiset")
	if err := d.Save(dir, 4); err != nil {
		t.Fatalf("Save: %v", err)
	}
	for _, set := range []string{"set.000", "set.001", "set.002"} {
		if _, err := os.Stat(filepath.Join(dir, set, "coord.npy")); err != nil {
			t.Errorf("missing %s: %v", set, err)
		}
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != 10 {
		t.Errorf("loaded %d frames, want 10", got.Len())
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("Load of missing dir succeeded")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := tinyDataset(t, 2)
	d.Frames[1].Coord = d.Frames[1].Coord[:3]
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted truncated coords")
	}
	d = tinyDataset(t, 2)
	d.Frames[0].Box = -1
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted negative box")
	}
	empty := &Dataset{}
	if err := empty.Validate(); err == nil {
		t.Error("Validate accepted empty types")
	}
}

func TestFrameFromSystemConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sys := md.NewSystem(rng, []md.Species{md.K, md.Cl}, 6.0, 300)
	pot := md.NewPaperBMH(3.0)
	pot.Compute(sys)
	f := FrameFromSystem(sys)
	if math.Abs(f.Energy-sys.PotEng) > 1e-15 {
		t.Error("energy not copied")
	}
	if f.Coord[3] != sys.Pos[1][0] || f.Force[5] != sys.Frc[1][2] {
		t.Error("layout not atom-major xyz")
	}
}

func TestSplitAfterShuffleDisjointCoverage(t *testing.T) {
	d := tinyDataset(t, 12)
	// Tag frames by energy (unique with overwhelming probability).
	seen := map[float64]int{}
	for _, f := range d.Frames {
		seen[f.Energy]++
	}
	d.Shuffle(rand.New(rand.NewSource(9)))
	train, val := d.Split(0.25)
	got := map[float64]int{}
	for _, f := range train.Frames {
		got[f.Energy]++
	}
	for _, f := range val.Frames {
		got[f.Energy]++
	}
	if len(got) != len(seen) {
		t.Error("shuffle+split lost or duplicated frames")
	}
}
