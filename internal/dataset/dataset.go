// Package dataset converts MD trajectories into DeePMD-style training
// datasets and back.  The paper converted CP2K FPMD output to "energy,
// force, box values in Numpy arrays using in-house scripts", shuffled the
// frames, and withheld 25 % for validation (§2.1.3); this package is the
// Go version of those in-house scripts, writing the exact DeePMD on-disk
// layout: a system directory with `type.raw` plus `set.NNN` subdirectories
// containing coord.npy, energy.npy, force.npy and box.npy.
package dataset

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/md"
	"repro/internal/npy"
)

// Frame is one labeled configuration: coordinates with their reference
// energy and forces, plus the (cubic) box.
type Frame struct {
	Coord  []float64 // 3N coordinates, Å, atom-major [x0 y0 z0 x1 …]
	Force  []float64 // 3N forces, eV/Å
	Energy float64   // total potential energy, eV
	Box    float64   // cubic box side, Å
}

// Dataset is a collection of frames over a fixed atom typing.
type Dataset struct {
	Types  []int // per-atom species index, constant across frames
	Frames []Frame
}

// NAtoms returns the number of atoms per frame.
func (d *Dataset) NAtoms() int { return len(d.Types) }

// Len returns the number of frames.
func (d *Dataset) Len() int { return len(d.Frames) }

// Frame returns frame i.  Together with AtomTypes and MeanEnergy this
// makes *Dataset the in-memory implementation of the deepmd training
// FrameSource; the error is always nil here and exists for out-of-core
// sources whose reads can fail.
func (d *Dataset) Frame(i int) (*Frame, error) { return &d.Frames[i], nil }

// AtomTypes returns the per-atom species indices (method form of the
// Types field, for the FrameSource contract).
func (d *Dataset) AtomTypes() []int { return d.Types }

// MeanEnergy returns the mean frame energy, accumulated in frame order.
func (d *Dataset) MeanEnergy() float64 {
	if len(d.Frames) == 0 {
		return 0
	}
	mean := 0.0
	for _, f := range d.Frames {
		mean += f.Energy
	}
	return mean / float64(len(d.Frames))
}

// FrameFromSystem snapshots an MD system (forces and energy must be
// current) into a Frame.
func FrameFromSystem(sys *md.System) Frame {
	n := sys.N()
	f := Frame{
		Coord:  make([]float64, 3*n),
		Force:  make([]float64, 3*n),
		Energy: sys.PotEng,
		Box:    sys.Box,
	}
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			f.Coord[3*i+k] = sys.Pos[i][k]
			f.Force[3*i+k] = sys.Frc[i][k]
		}
	}
	return f
}

// TypesFromSystem extracts the per-atom species indices.
func TypesFromSystem(sys *md.System) []int {
	out := make([]int, sys.N())
	for i, s := range sys.Species {
		out[i] = int(s)
	}
	return out
}

// Shuffle permutes the frames in place with the given source of
// randomness.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Frames), func(i, j int) {
		d.Frames[i], d.Frames[j] = d.Frames[j], d.Frames[i]
	})
}

// Split divides the dataset into training and validation subsets, with
// valFraction (0.25 in the paper) of the frames withheld for validation.
// The receiver is unchanged; subsets share frame storage.
func (d *Dataset) Split(valFraction float64) (train, val *Dataset) {
	nVal := int(float64(len(d.Frames)) * valFraction)
	if nVal < 0 {
		nVal = 0
	}
	if nVal > len(d.Frames) {
		nVal = len(d.Frames)
	}
	nTrain := len(d.Frames) - nVal
	train = &Dataset{Types: d.Types, Frames: d.Frames[:nTrain]}
	val = &Dataset{Types: d.Types, Frames: d.Frames[nTrain:]}
	return train, val
}

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	n := d.NAtoms()
	if n == 0 {
		return fmt.Errorf("dataset: no atom types")
	}
	for i, f := range d.Frames {
		if len(f.Coord) != 3*n {
			return fmt.Errorf("dataset: frame %d has %d coords, want %d", i, len(f.Coord), 3*n)
		}
		if len(f.Force) != 3*n {
			return fmt.Errorf("dataset: frame %d has %d forces, want %d", i, len(f.Force), 3*n)
		}
		if f.Box <= 0 {
			return fmt.Errorf("dataset: frame %d has non-positive box %v", i, f.Box)
		}
	}
	return nil
}

// Save writes the dataset as a DeePMD system directory:
//
//	dir/type.raw        one species index per line
//	dir/set.000/coord.npy   (nframes, 3N) float64
//	dir/set.000/energy.npy  (nframes,)    float64
//	dir/set.000/force.npy   (nframes, 3N) float64
//	dir/set.000/box.npy     (nframes, 9)  float64 (diagonal cubic cells)
//
// Frames are divided into sets of at most framesPerSet (DeePMD
// convention); pass 0 to put everything in set.000.
func (d *Dataset) Save(dir string, framesPerSet int) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var sb strings.Builder
	for _, t := range d.Types {
		fmt.Fprintln(&sb, t)
	}
	if err := os.WriteFile(filepath.Join(dir, "type.raw"), []byte(sb.String()), 0o644); err != nil {
		return err
	}
	if framesPerSet <= 0 {
		framesPerSet = len(d.Frames)
		if framesPerSet == 0 {
			framesPerSet = 1
		}
	}
	for set, start := 0, 0; start < len(d.Frames); set, start = set+1, start+framesPerSet {
		end := start + framesPerSet
		if end > len(d.Frames) {
			end = len(d.Frames)
		}
		if err := d.saveSet(filepath.Join(dir, fmt.Sprintf("set.%03d", set)), d.Frames[start:end]); err != nil {
			return err
		}
	}
	return nil
}

func (d *Dataset) saveSet(dir string, frames []Frame) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := d.NAtoms()
	nf := len(frames)
	coord := npy.NewArray(nf, 3*n)
	force := npy.NewArray(nf, 3*n)
	energy := npy.NewArray(nf)
	box := npy.NewArray(nf, 9)
	for i, f := range frames {
		copy(coord.Data[i*3*n:(i+1)*3*n], f.Coord)
		copy(force.Data[i*3*n:(i+1)*3*n], f.Force)
		energy.Data[i] = f.Energy
		box.Data[i*9+0] = f.Box
		box.Data[i*9+4] = f.Box
		box.Data[i*9+8] = f.Box
	}
	files := map[string]*npy.Array{
		"coord.npy": coord, "force.npy": force, "energy.npy": energy, "box.npy": box,
	}
	for name, arr := range files {
		if err := npy.WriteFile(filepath.Join(dir, name), arr); err != nil {
			return fmt.Errorf("dataset: writing %s: %w", name, err)
		}
	}
	return nil
}

// Load reads a DeePMD system directory written by Save (or by DeePMD's own
// tooling, for the supported dtypes).
func Load(dir string) (*Dataset, error) {
	types, err := loadTypes(filepath.Join(dir, "type.raw"))
	if err != nil {
		return nil, err
	}
	d := &Dataset{Types: types}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "set.") {
			continue
		}
		if err := d.loadSet(filepath.Join(dir, e.Name())); err != nil {
			return nil, err
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// ReadTypes reads a type.raw file — the per-atom species indices of a
// system directory.  Shared by Load and the out-of-core stream reader so
// both agree on what a valid typing is.
func ReadTypes(path string) ([]int, error) { return loadTypes(path) }

func loadTypes(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var types []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		t, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("dataset: bad type.raw line %q: %w", line, err)
		}
		types = append(types, t)
	}
	return types, sc.Err()
}

func (d *Dataset) loadSet(dir string) error {
	coord, err := npy.ReadFile(filepath.Join(dir, "coord.npy"))
	if err != nil {
		return err
	}
	force, err := npy.ReadFile(filepath.Join(dir, "force.npy"))
	if err != nil {
		return err
	}
	energy, err := npy.ReadFile(filepath.Join(dir, "energy.npy"))
	if err != nil {
		return err
	}
	box, err := npy.ReadFile(filepath.Join(dir, "box.npy"))
	if err != nil {
		return err
	}
	if len(coord.Shape) != 2 || len(force.Shape) != 2 {
		return fmt.Errorf("dataset: coord/force must be 2-D in %s", dir)
	}
	nf := coord.Shape[0]
	width := coord.Shape[1]
	if force.Shape[0] != nf || force.Shape[1] != width || energy.Shape[0] != nf || box.Shape[0] != nf {
		return fmt.Errorf("dataset: inconsistent set shapes in %s", dir)
	}
	for i := 0; i < nf; i++ {
		f := Frame{
			Coord:  append([]float64(nil), coord.Data[i*width:(i+1)*width]...),
			Force:  append([]float64(nil), force.Data[i*width:(i+1)*width]...),
			Energy: energy.Data[i],
			Box:    box.Data[i*9],
		}
		d.Frames = append(d.Frames, f)
	}
	return nil
}

// Generate runs an MD trajectory under a thermostat and collects frames:
// the end-to-end substitute for the paper's CP2K FPMD data generation.
// equilSteps are discarded, then nFrames snapshots are taken every
// sampleEvery steps.
func Generate(rng *rand.Rand, species []md.Species, box, temperature float64, pot md.Potential,
	dt float64, equilSteps, sampleEvery, nFrames int) *Dataset {

	sys := md.NewSystem(rng, species, box, temperature)
	thermo := md.Langevin{T: temperature, Gamma: 0.02, Rng: rng}
	it := md.NewIntegrator(pot, thermo, dt)
	it.Run(sys, equilSteps, 0, nil)

	d := &Dataset{Types: TypesFromSystem(sys)}
	it.Run(sys, sampleEvery*nFrames, sampleEvery, func(step int) {
		d.Frames = append(d.Frames, FrameFromSystem(sys))
	})
	return d
}
