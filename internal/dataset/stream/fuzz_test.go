package stream

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/npy"
)

// FuzzShardIndex feeds arbitrary bytes to the shard opener as the
// coord.npy of a set directory — twice per input: once with the other
// three arrays equally hostile, once alongside a well-formed 2-frame
// shard so a valid fuzzed coord reaches the positioned frame reads.
// Open must reject or serve, never panic, and anything it accepts must
// produce frames of the advertised width.
func FuzzShardIndex(f *testing.F) {
	valid := func(shape []int, fill float64) []byte {
		a := npy.NewArray(shape...)
		for i := range a.Data {
			a.Data[i] = fill + float64(i)
		}
		var buf bytes.Buffer
		if err := npy.Write(&buf, a); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	coordOK := valid([]int{2, 6}, 0.5)
	f.Add(coordOK)
	f.Add(coordOK[:len(coordOK)-7]) // truncated payload
	f.Add([]byte{})
	f.Add([]byte{0x93, 'N', 'U', 'M', 'P', 'Y', 1, 0})
	// Header whose shape claims more rows than the payload holds.
	hostile := func(header string) []byte {
		var buf bytes.Buffer
		buf.Write([]byte{0x93, 'N', 'U', 'M', 'P', 'Y', 1, 0})
		h := header + "\n"
		var hlen [2]byte
		binary.LittleEndian.PutUint16(hlen[:], uint16(len(h)))
		buf.Write(hlen[:])
		buf.WriteString(h)
		return buf.Bytes()
	}
	f.Add(hostile("{'descr': '<f8', 'fortran_order': False, 'shape': (1000000, 6), }"))
	f.Add(hostile("{'descr': '<f8', 'fortran_order': False, 'shape': (2, 6), }"))

	forceOK := valid([]int{2, 6}, -3)
	energyOK := valid([]int{2}, -100)
	boxOK := valid([]int{2, 9}, 8)

	f.Fuzz(func(t *testing.T, in []byte) {
		for _, scenario := range []struct {
			name                    string
			coord, force, eng, bbox []byte
		}{
			{"all_fuzzed", in, in, in, in},
			{"coord_fuzzed", in, forceOK, energyOK, boxOK},
		} {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "type.raw"), []byte("0\n0\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			set := filepath.Join(dir, "set.000")
			if err := os.MkdirAll(set, 0o755); err != nil {
				t.Fatal(err)
			}
			for name, b := range map[string][]byte{
				"coord.npy": scenario.coord, "force.npy": scenario.force,
				"energy.npy": scenario.eng, "box.npy": scenario.bbox,
			} {
				if err := os.WriteFile(filepath.Join(set, name), b, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			s, err := Open(dir, Options{CacheBytes: 1})
			if err != nil {
				continue
			}
			for i := 0; i < s.Len(); i++ {
				fr, err := s.Frame(i)
				if err != nil {
					continue
				}
				if len(fr.Coord) != 6 || len(fr.Force) != 6 {
					t.Fatalf("%s: accepted frame %d with %d coords / %d forces, want 6",
						scenario.name, i, len(fr.Coord), len(fr.Force))
				}
			}
			if err := s.Close(); err != nil {
				t.Fatalf("%s: Close: %v", scenario.name, err)
			}
		}
	})
}
