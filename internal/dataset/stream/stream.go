// Package stream provides an out-of-core view of a DeePMD system
// directory (type.raw + set.NNN/*.npy shards): frames are read on demand
// through positioned npy row reads, held in a byte-budgeted LRU cache,
// and optionally prefetched by a background worker that overlaps shard
// I/O with training compute.  A Store implements the deepmd training
// FrameSource, and its frame ordering matches dataset.Load exactly —
// sets in sorted name order, rows in file order — so a streamed training
// run is bit-identical to an in-memory one on the same directory.
package stream

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/npy"
)

// DefaultCacheBytes is the frame-cache budget when Options.CacheBytes is
// unset: enough for small campaign datasets to stay fully resident while
// bounding memory on the paper's ~250k-frame workloads.
const DefaultCacheBytes = 256 << 20

// Options tunes a Store.
type Options struct {
	// CacheBytes is the LRU frame-cache budget; <= 0 means
	// DefaultCacheBytes.  A budget below the dataset size makes training
	// out-of-core: evicted frames are re-read from their shards on the
	// next sample.
	CacheBytes int64
	// Prefetch is the background prefetch queue depth; 0 disables the
	// prefetch worker (loads then happen synchronously on Frame).
	Prefetch int
}

// Stats is a snapshot of a Store's cache and I/O counters.
type Stats struct {
	Frames, Sets, NAtoms                                int
	CacheBudget, CachedBytes                            int64
	Hits, Misses, Evictions, Prefetched, PrefetchErrors int64
}

// Store is an open system directory serving frames on demand.  All
// methods are safe for concurrent use.
type Store struct {
	dir    string
	types  []int
	shards []*shard
	starts []int // starts[k] = global index of shard k's first frame
	frames int
	width  int

	energies   []float64 // all frame energies, global order
	meanEnergy float64

	mu       sync.Mutex
	cache    lruCache
	inflight map[int]*inflightLoad
	stats    Stats
	closed   bool

	bufs sync.Pool // *[]byte read scratch

	pfCh   chan int
	pfStop chan struct{}
	pfWG   sync.WaitGroup
}

// inflightLoad deduplicates concurrent loads of one frame: the first
// caller reads the shard, everyone else waits on done.
type inflightLoad struct {
	done chan struct{}
	fr   *dataset.Frame
	err  error
}

// Open opens a system directory for streaming.  The frame index (set
// layout, npy headers) and the per-frame energies are loaded eagerly;
// coordinates and forces stay on disk until requested.
func Open(dir string, opts Options) (*Store, error) {
	types, err := dataset.ReadTypes(filepath.Join(dir, "type.raw"))
	if err != nil {
		return nil, err
	}
	if len(types) == 0 {
		return nil, fmt.Errorf("stream: %s: empty type.raw", dir)
	}
	setDirs, err := discoverSets(dir)
	if err != nil {
		return nil, err
	}
	if len(setDirs) == 0 {
		return nil, fmt.Errorf("stream: no set.* directories in %s", dir)
	}
	s := &Store{
		dir:      dir,
		types:    types,
		width:    3 * len(types),
		inflight: make(map[int]*inflightLoad),
	}
	for _, sd := range setDirs {
		sh, err := openShard(sd, s.width)
		if err != nil {
			if cerr := s.closeShards(); cerr != nil && err == nil {
				err = cerr
			}
			return nil, err
		}
		s.starts = append(s.starts, s.frames)
		s.shards = append(s.shards, sh)
		s.frames += sh.frames
		s.energies = append(s.energies, sh.energies...)
	}
	// Mean in global frame order — the same accumulation order the
	// in-memory Dataset.MeanEnergy uses, so the training bias (and with
	// it every downstream byte) agrees between the two sources.
	if s.frames > 0 {
		mean := 0.0
		for _, e := range s.energies {
			mean += e
		}
		s.meanEnergy = mean / float64(s.frames)
	}

	budget := opts.CacheBytes
	if budget <= 0 {
		budget = DefaultCacheBytes
	}
	s.cache.init(budget)
	s.stats.CacheBudget = budget
	s.bufs.New = func() any { b := make([]byte, 8*s.width); return &b }

	if opts.Prefetch > 0 {
		s.pfCh = make(chan int, opts.Prefetch)
		s.pfStop = make(chan struct{})
		s.pfWG.Add(1)
		go s.prefetchLoop()
	}
	return s, nil
}

// Len returns the total frame count across all sets.
func (s *Store) Len() int { return s.frames }

// AtomTypes returns the per-atom species indices.
func (s *Store) AtomTypes() []int { return s.types }

// MeanEnergy returns the mean frame energy (accumulated in frame order).
func (s *Store) MeanEnergy() float64 { return s.meanEnergy }

// FrameBytes returns the in-memory size of the full frame set — what an
// equivalent dataset.Load would hold resident.  Comparing it against the
// cache budget shows whether a run is out-of-core.
func (s *Store) FrameBytes() int64 {
	return int64(s.frames) * frameBytes(s.width)
}

// frameBytes is the accounted cache cost of one frame: coordinate and
// force payloads plus slice/struct overhead.
func frameBytes(width int) int64 { return int64(16*width) + 64 }

// Frame returns frame i, serving it from the cache when resident and
// reading it from its shard otherwise.  The returned frame is shared and
// immutable: callers must not modify it, and it stays valid after
// eviction (eviction only drops the cache's reference).
func (s *Store) Frame(i int) (*dataset.Frame, error) {
	if i < 0 || i >= s.frames {
		return nil, fmt.Errorf("stream: frame %d out of range [0, %d)", i, s.frames)
	}
	return s.frame(i, false)
}

func (s *Store) frame(i int, prefetch bool) (*dataset.Frame, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("stream: store is closed")
	}
	if fr, ok := s.cache.get(i); ok {
		if !prefetch {
			s.stats.Hits++
		}
		s.mu.Unlock()
		return fr, nil
	}
	if c, ok := s.inflight[i]; ok {
		if !prefetch {
			s.stats.Misses++
		}
		s.mu.Unlock()
		<-c.done
		return c.fr, c.err
	}
	c := &inflightLoad{done: make(chan struct{})}
	s.inflight[i] = c
	if prefetch {
		s.stats.Prefetched++
	} else {
		s.stats.Misses++
	}
	s.mu.Unlock()

	c.fr, c.err = s.load(i)

	s.mu.Lock()
	delete(s.inflight, i)
	if c.err == nil {
		s.stats.Evictions += int64(s.cache.add(i, c.fr, frameBytes(s.width)))
		s.stats.CachedBytes = s.cache.bytes
	}
	s.mu.Unlock()
	close(c.done)
	return c.fr, c.err
}

// load reads frame i from its shard.  It runs outside the store mutex;
// the npy row reads are positioned, so concurrent loads share the file
// handles safely.
func (s *Store) load(i int) (*dataset.Frame, error) {
	k := sort.Search(len(s.starts), func(k int) bool { return s.starts[k] > i }) - 1
	sh := s.shards[k]
	row := i - s.starts[k]

	fr := &dataset.Frame{
		Coord:  make([]float64, s.width),
		Force:  make([]float64, s.width),
		Energy: s.energies[i],
	}
	bufp := s.bufs.Get().(*[]byte)
	buf := *bufp
	var err error
	if buf, err = npy.ReadRowsAt(sh.coordF, sh.coordH, row, 1, fr.Coord, buf); err == nil {
		if buf, err = npy.ReadRowsAt(sh.forceF, sh.forceH, row, 1, fr.Force, buf); err == nil {
			var box [9]float64
			if buf, err = npy.ReadRowsAt(sh.boxF, sh.boxH, row, 1, box[:], buf); err == nil {
				fr.Box = box[0]
			}
		}
	}
	*bufp = buf
	s.bufs.Put(bufp)
	if err != nil {
		return nil, fmt.Errorf("stream: frame %d (%s row %d): %w", i, sh.dir, row, err)
	}
	return fr, nil
}

// Prefetch queues frames for background loading.  It never blocks: when
// the queue is full the remaining indices are dropped (they will load
// synchronously when sampled).  No-op without a prefetch worker.
func (s *Store) Prefetch(indices []int) {
	if s.pfCh == nil {
		return
	}
	for _, i := range indices {
		if i < 0 || i >= s.frames {
			continue
		}
		select {
		case s.pfCh <- i:
		default:
			return
		}
	}
}

func (s *Store) prefetchLoop() {
	defer s.pfWG.Done()
	for {
		select {
		case <-s.pfStop:
			return
		case i := <-s.pfCh:
			if _, err := s.frame(i, true); err != nil {
				// The error will resurface on the synchronous read;
				// here it is only counted.
				s.mu.Lock()
				s.stats.PrefetchErrors++
				s.mu.Unlock()
			}
		}
	}
}

// Stats returns a snapshot of the cache and I/O counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Frames, st.Sets, st.NAtoms = s.frames, len(s.shards), len(s.types)
	st.CachedBytes = s.cache.bytes
	return st
}

// Close stops the prefetch worker and closes every shard handle.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.pfStop != nil {
		close(s.pfStop)
		s.pfWG.Wait()
	}
	return s.closeShards()
}

func (s *Store) closeShards() error {
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
