package stream

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/dataset"
)

func benchStore(b *testing.B, natoms, nframes int, budgetFrames int64) *Store {
	b.Helper()
	d := &dataset.Dataset{Types: make([]int, natoms)}
	rng := rand.New(rand.NewSource(1))
	for i := range d.Types {
		d.Types[i] = i % 3
	}
	for f := 0; f < nframes; f++ {
		fr := dataset.Frame{
			Coord: make([]float64, 3*natoms), Force: make([]float64, 3*natoms),
			Energy: rng.NormFloat64(), Box: 10,
		}
		for k := range fr.Coord {
			fr.Coord[k], fr.Force[k] = rng.Float64(), rng.Float64()
		}
		d.Frames = append(d.Frames, fr)
	}
	dir, err := os.MkdirTemp("", "streambench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	if err := d.Save(dir, 8); err != nil {
		b.Fatal(err)
	}
	s, err := Open(dir, Options{CacheBytes: budgetFrames * frameBytes(3*natoms)})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// BenchmarkFrameHit is the resident path: every read served from the LRU
// cache — the cost training pays per sample when the working set fits.
func BenchmarkFrameHit(b *testing.B) {
	s := benchStore(b, 160, 16, 32)
	for i := 0; i < s.Len(); i++ {
		if _, err := s.Frame(i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Frame(i % s.Len()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameMiss is the out-of-core path: a one-frame budget makes
// every alternating read a shard re-read — positioned npy row I/O plus
// frame allocation, the latency the prefetcher exists to hide.
func BenchmarkFrameMiss(b *testing.B) {
	s := benchStore(b, 160, 16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Frame(i % 2); err != nil {
			b.Fatal(err)
		}
	}
}
