package stream

import "repro/internal/dataset"

// lruEntry is one resident frame in the cache's intrusive doubly linked
// recency list.
type lruEntry struct {
	key        int
	fr         *dataset.Frame
	bytes      int64
	prev, next *lruEntry
}

// lruCache is a byte-budgeted least-recently-used frame cache.  It is
// not goroutine-safe; the Store serializes access under its mutex.
type lruCache struct {
	budget  int64
	bytes   int64
	entries map[int]*lruEntry
	head    *lruEntry // most recently used
	tail    *lruEntry // least recently used
}

func (c *lruCache) init(budget int64) {
	c.budget = budget
	c.entries = make(map[int]*lruEntry)
}

func (c *lruCache) len() int { return len(c.entries) }

// get returns the cached frame and refreshes its recency.
func (c *lruCache) get(key int) (*dataset.Frame, bool) {
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.moveToFront(e)
	return e.fr, true
}

// add inserts (or refreshes) a frame and evicts from the cold end until
// the budget holds again, always keeping at least the entry just added —
// a frame larger than the whole budget must still be servable.  It
// returns how many entries were evicted.
func (c *lruCache) add(key int, fr *dataset.Frame, bytes int64) (evicted int) {
	if e, ok := c.entries[key]; ok {
		c.bytes += bytes - e.bytes
		e.fr, e.bytes = fr, bytes
		c.moveToFront(e)
	} else {
		e = &lruEntry{key: key, fr: fr, bytes: bytes}
		c.entries[key] = e
		c.pushFront(e)
		c.bytes += bytes
	}
	for c.bytes > c.budget && len(c.entries) > 1 {
		c.removeEntry(c.tail)
		evicted++
	}
	return evicted
}

func (c *lruCache) removeEntry(e *lruEntry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

func (c *lruCache) pushFront(e *lruEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *lruCache) moveToFront(e *lruEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// keysMRU returns the resident keys from most to least recently used
// (test hook for eviction-order properties).
func (c *lruCache) keysMRU() []int {
	keys := make([]int, 0, len(c.entries))
	for e := c.head; e != nil; e = e.next {
		keys = append(keys, e.key)
	}
	return keys
}
