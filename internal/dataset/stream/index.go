package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/npy"
)

// shard is one open set.NNN directory: positioned-read handles plus the
// parsed npy headers for the per-frame arrays, and the set's eagerly
// loaded energies (one float per frame — cheap, and needed whole for the
// training-set mean-energy bias).
type shard struct {
	dir    string
	frames int
	width  int // coordinates per frame (3N)

	coordF, forceF, boxF *os.File
	coordH, forceH, boxH *npy.Header
	energies             []float64
}

func (sh *shard) close() error {
	var firstErr error
	for _, f := range []*os.File{sh.coordF, sh.forceF, sh.boxF} {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// openShard opens one set directory and validates its shape contract:
// coord and force are (nframes, 3N) with matching widths, energy holds
// nframes values, box is (nframes, 9).  This mirrors (and tightens) the
// checks dataset.Load applies to fully materialized sets.
func openShard(dir string, width int) (*shard, error) {
	sh := &shard{dir: dir}
	var err error
	if sh.coordF, sh.coordH, err = openArray(filepath.Join(dir, "coord.npy")); err != nil {
		return nil, sh.closeOnErr(err)
	}
	if sh.forceF, sh.forceH, err = openArray(filepath.Join(dir, "force.npy")); err != nil {
		return nil, sh.closeOnErr(err)
	}
	if sh.boxF, sh.boxH, err = openArray(filepath.Join(dir, "box.npy")); err != nil {
		return nil, sh.closeOnErr(err)
	}
	energy, err := npy.ReadFile(filepath.Join(dir, "energy.npy"))
	if err != nil {
		return nil, sh.closeOnErr(err)
	}

	ch, fh, bh := sh.coordH, sh.forceH, sh.boxH
	if len(ch.Shape) != 2 || len(fh.Shape) != 2 {
		return nil, sh.closeOnErr(fmt.Errorf("stream: coord/force must be 2-D in %s", dir))
	}
	sh.frames, sh.width = ch.Shape[0], ch.Shape[1]
	if width > 0 && sh.width != width {
		return nil, sh.closeOnErr(fmt.Errorf("stream: %s has frame width %d, want %d", dir, sh.width, width))
	}
	if fh.Shape[0] != sh.frames || fh.Shape[1] != sh.width {
		return nil, sh.closeOnErr(fmt.Errorf("stream: force shape %v inconsistent with coord %v in %s", fh.Shape, ch.Shape, dir))
	}
	if len(energy.Shape) < 1 || energy.Shape[0] != sh.frames || len(energy.Data) < sh.frames {
		return nil, sh.closeOnErr(fmt.Errorf("stream: energy shape %v inconsistent with %d frames in %s", energy.Shape, sh.frames, dir))
	}
	if len(bh.Shape) != 2 || bh.Shape[0] != sh.frames || bh.Shape[1] != 9 {
		return nil, sh.closeOnErr(fmt.Errorf("stream: box shape %v, want (%d, 9) in %s", bh.Shape, sh.frames, dir))
	}
	sh.energies = energy.Data[:sh.frames]
	return sh, nil
}

// closeOnErr closes whatever handles are open and returns the original
// error — the open/validation failure is the actionable one.
func (sh *shard) closeOnErr(err error) error {
	if cerr := sh.close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// openArray opens an .npy file for positioned reads and parses its
// header.  The returned file's read offset sits past the header, which
// is irrelevant: all payload access goes through ReadAt.
func openArray(path string) (*os.File, *npy.Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	h, err := npy.ReadHeader(f)
	if err != nil {
		//lint:ignore errdiscard error-path close: the header error being returned is the actionable one
		f.Close()
		return nil, nil, fmt.Errorf("stream: %s: %w", path, err)
	}
	return f, h, nil
}

// discoverSets lists the set.NNN subdirectories of a system directory in
// the sorted order dataset.Load visits them, so global frame indices
// agree between the streamed and materialized views of the same data.
func discoverSets(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var sets []string
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "set.") {
			continue
		}
		sets = append(sets, filepath.Join(dir, e.Name()))
	}
	sort.Strings(sets)
	return sets, nil
}
