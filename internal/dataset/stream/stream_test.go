package stream

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/npy"
)

// synthDataset builds a deterministic dataset whose every value encodes
// its own position, so a misrouted row or column is caught bit-exactly.
func synthDataset(natoms, nframes int) *dataset.Dataset {
	d := &dataset.Dataset{Types: make([]int, natoms)}
	for i := range d.Types {
		d.Types[i] = i % 3
	}
	for f := 0; f < nframes; f++ {
		fr := dataset.Frame{
			Coord:  make([]float64, 3*natoms),
			Force:  make([]float64, 3*natoms),
			Energy: -100.0 - float64(f),
			Box:    10.0 + float64(f)/16,
		}
		for k := range fr.Coord {
			fr.Coord[k] = float64(f) + float64(k)/1000
			fr.Force[k] = -float64(f) - float64(k)/1000
		}
		d.Frames = append(d.Frames, fr)
	}
	return d
}

func saveSynth(t *testing.T, natoms, nframes, framesPerSet int) (string, *dataset.Dataset) {
	t.Helper()
	d := synthDataset(natoms, nframes)
	dir := t.TempDir()
	if err := d.Save(dir, framesPerSet); err != nil {
		t.Fatal(err)
	}
	return dir, d
}

func sameFrame(t *testing.T, i int, got, want *dataset.Frame) {
	t.Helper()
	if math.Float64bits(got.Energy) != math.Float64bits(want.Energy) {
		t.Fatalf("frame %d: energy %v, want %v", i, got.Energy, want.Energy)
	}
	if math.Float64bits(got.Box) != math.Float64bits(want.Box) {
		t.Fatalf("frame %d: box %v, want %v", i, got.Box, want.Box)
	}
	if len(got.Coord) != len(want.Coord) || len(got.Force) != len(want.Force) {
		t.Fatalf("frame %d: size mismatch", i)
	}
	for k := range want.Coord {
		if math.Float64bits(got.Coord[k]) != math.Float64bits(want.Coord[k]) {
			t.Fatalf("frame %d: coord[%d] = %v, want %v", i, k, got.Coord[k], want.Coord[k])
		}
		if math.Float64bits(got.Force[k]) != math.Float64bits(want.Force[k]) {
			t.Fatalf("frame %d: force[%d] = %v, want %v", i, k, got.Force[k], want.Force[k])
		}
	}
}

// TestStreamMatchesLoad proves the streamed view of a multi-set system
// directory is bit-identical to dataset.Load's materialized view: same
// frame order across set boundaries, same values, same mean energy.
func TestStreamMatchesLoad(t *testing.T) {
	dir, _ := saveSynth(t, 5, 11, 3) // 4 sets: 3+3+3+2 frames
	loaded, err := dataset.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.Len() != loaded.Len() {
		t.Fatalf("Len = %d, want %d", s.Len(), loaded.Len())
	}
	if got, want := s.AtomTypes(), loaded.AtomTypes(); len(got) != len(want) {
		t.Fatalf("AtomTypes len = %d, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("AtomTypes[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
	if math.Float64bits(s.MeanEnergy()) != math.Float64bits(loaded.MeanEnergy()) {
		t.Fatalf("MeanEnergy = %v, want %v", s.MeanEnergy(), loaded.MeanEnergy())
	}
	if st := s.Stats(); st.Sets != 4 {
		t.Fatalf("Sets = %d, want 4", st.Sets)
	}
	for i := 0; i < s.Len(); i++ {
		got, err := s.Frame(i)
		if err != nil {
			t.Fatalf("Frame(%d): %v", i, err)
		}
		want, _ := loaded.Frame(i)
		sameFrame(t, i, got, want)
	}
}

// TestOutOfCoreEviction drives a store whose budget holds only two of
// eight frames through repeated full sweeps: the cache must evict, stay
// within budget, and keep serving bit-correct frames after re-reads.
func TestOutOfCoreEviction(t *testing.T) {
	const natoms, nframes = 4, 8
	dir, want := saveSynth(t, natoms, nframes, 4)
	budget := 2 * frameBytes(3*natoms)
	s, err := Open(dir, Options{CacheBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.FrameBytes() <= budget {
		t.Fatalf("dataset %d B fits the %d B budget; test would not be out-of-core", s.FrameBytes(), budget)
	}
	for sweep := 0; sweep < 3; sweep++ {
		for i := 0; i < nframes; i++ {
			got, err := s.Frame(i)
			if err != nil {
				t.Fatalf("sweep %d frame %d: %v", sweep, i, err)
			}
			sameFrame(t, i, got, &want.Frames[i])
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite budget below dataset size")
	}
	if st.CachedBytes > budget {
		t.Fatalf("CachedBytes %d exceeds budget %d", st.CachedBytes, budget)
	}
	if st.Misses == 0 || st.Misses <= int64(nframes) {
		t.Fatalf("Misses = %d, want re-reads beyond the first sweep's %d", st.Misses, nframes)
	}

	// A frame just loaded must be a cache hit immediately after.
	before := s.Stats().Hits
	if _, err := s.Frame(nframes - 1); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Hits != before+1 {
		t.Fatalf("expected a cache hit on the most recently loaded frame")
	}
}

// TestLRUEvictionOrder checks the recency discipline directly: eviction
// removes the coldest key, get refreshes recency, and add reports how
// many entries it displaced.
func TestLRUEvictionOrder(t *testing.T) {
	var c lruCache
	c.init(30) // room for three 10-byte entries
	fr := &dataset.Frame{}
	for _, k := range []int{1, 2, 3} {
		if ev := c.add(k, fr, 10); ev != 0 {
			t.Fatalf("add(%d) evicted %d entries under budget", k, ev)
		}
	}
	wantMRU(t, &c, []int{3, 2, 1})

	if _, ok := c.get(1); !ok {
		t.Fatal("get(1) missed a resident key")
	}
	wantMRU(t, &c, []int{1, 3, 2})

	// 2 is now coldest; adding 4 must evict exactly it.
	if ev := c.add(4, fr, 10); ev != 1 {
		t.Fatalf("add(4) evicted %d entries, want 1", ev)
	}
	wantMRU(t, &c, []int{4, 1, 3})
	if _, ok := c.get(2); ok {
		t.Fatal("evicted key 2 still resident")
	}

	// An oversized entry displaces everything else but stays resident
	// itself: a frame larger than the whole budget must still be servable.
	if ev := c.add(9, fr, 100); ev != 3 {
		t.Fatalf("oversized add evicted %d entries, want 3", ev)
	}
	wantMRU(t, &c, []int{9})
	if c.bytes != 100 {
		t.Fatalf("bytes = %d, want 100", c.bytes)
	}

	// Re-adding a resident key refreshes size and recency without growth.
	c.init(30)
	c.add(1, fr, 10)
	c.add(2, fr, 10)
	c.add(1, fr, 15)
	wantMRU(t, &c, []int{1, 2})
	if c.bytes != 25 {
		t.Fatalf("bytes after resize = %d, want 25", c.bytes)
	}
}

func wantMRU(t *testing.T, c *lruCache, want []int) {
	t.Helper()
	got := c.keysMRU()
	if len(got) != len(want) {
		t.Fatalf("keysMRU = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keysMRU = %v, want %v", got, want)
		}
	}
	if c.len() != len(want) {
		t.Fatalf("len = %d, want %d", c.len(), len(want))
	}
}

// TestLRUProperties runs randomized add/get traffic against a naive
// reference model and checks after every operation that the cache agrees
// with the model on residency, recency order, byte accounting, and the
// budget invariant (bytes ≤ budget unless a single oversized entry).
func TestLRUProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		budget := int64(rng.Intn(200) + 20)
		var c lruCache
		c.init(budget)
		ref := refLRU{budget: budget, sizes: map[int]int64{}}
		fr := &dataset.Frame{}

		for op := 0; op < 400; op++ {
			key := rng.Intn(12)
			if rng.Intn(3) == 0 {
				_, gotOK := c.get(key)
				if wantOK := ref.get(key); gotOK != wantOK {
					t.Fatalf("trial %d op %d: get(%d) = %v, model says %v", trial, op, key, gotOK, wantOK)
				}
			} else {
				size := int64(rng.Intn(60) + 1)
				ev := c.add(key, fr, size)
				if wantEv := ref.add(key, size); ev != wantEv {
					t.Fatalf("trial %d op %d: add(%d,%d) evicted %d, model says %d", trial, op, key, size, ev, wantEv)
				}
			}
			var sum int64
			for _, sz := range ref.sizes {
				sum += sz
			}
			if c.bytes != sum {
				t.Fatalf("trial %d op %d: bytes = %d, model sum %d", trial, op, c.bytes, sum)
			}
			if c.bytes > budget && c.len() != 1 {
				t.Fatalf("trial %d op %d: %d bytes over budget %d with %d entries", trial, op, c.bytes, budget, c.len())
			}
			got := c.keysMRU()
			if len(got) != len(ref.keys) {
				t.Fatalf("trial %d op %d: keysMRU = %v, model %v", trial, op, got, ref.keys)
			}
			for i := range got {
				if got[i] != ref.keys[i] {
					t.Fatalf("trial %d op %d: keysMRU = %v, model %v", trial, op, got, ref.keys)
				}
			}
		}
	}
}

// refLRU is the obviously-correct slice-based model the cache is checked
// against: keys held MRU-first, evicting from the back over budget.
type refLRU struct {
	budget int64
	keys   []int
	sizes  map[int]int64
}

func (r *refLRU) get(key int) bool {
	for i, k := range r.keys {
		if k == key {
			r.keys = append([]int{key}, append(r.keys[:i:i], r.keys[i+1:]...)...)
			return true
		}
	}
	return false
}

func (r *refLRU) add(key int, size int64) (evicted int) {
	r.get(key)
	if _, ok := r.sizes[key]; !ok {
		r.keys = append([]int{key}, r.keys...)
	}
	r.sizes[key] = size
	var sum int64
	for _, sz := range r.sizes {
		sum += sz
	}
	for sum > r.budget && len(r.keys) > 1 {
		last := r.keys[len(r.keys)-1]
		r.keys = r.keys[:len(r.keys)-1]
		sum -= r.sizes[last]
		delete(r.sizes, last)
		evicted++
	}
	return evicted
}

// TestConcurrentReaders hammers one out-of-core store from many reader
// goroutines while the prefetcher races them on the same indices — the
// -race exercise for the singleflight map, the LRU, and the shared
// positioned file handles.
func TestConcurrentReaders(t *testing.T) {
	const natoms, nframes = 4, 10
	dir, want := saveSynth(t, natoms, nframes, 3)
	s, err := Open(dir, Options{CacheBytes: 3 * frameBytes(3*natoms), Prefetch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			idx := make([]int, 4)
			for it := 0; it < 200; it++ {
				for j := range idx {
					idx[j] = rng.Intn(nframes)
				}
				s.Prefetch(idx)
				i := idx[0]
				fr, err := s.Frame(i)
				if err != nil {
					errs <- err
					return
				}
				// Spot-check one value per read; sameFrame would serialize
				// the goroutines on t's mutex in the failure path only.
				if fr.Energy != want.Frames[i].Energy || fr.Coord[0] != want.Frames[i].Coord[0] {
					t.Errorf("frame %d corrupted under concurrency", i)
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CachedBytes > st.CacheBudget {
		t.Fatalf("CachedBytes %d exceeds budget %d", st.CachedBytes, st.CacheBudget)
	}
}

// TestOpenErrors covers the validation failures Open must reject instead
// of serving garbage frames later.
func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Fatal("Open of a missing directory succeeded")
	}

	// type.raw present but no set directories.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "type.raw"), []byte("0\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open without set.* directories succeeded")
	}

	// Shard width disagreeing with type.raw.
	dir, _ = saveSynth(t, 4, 6, 0)
	if err := os.WriteFile(filepath.Join(dir, "type.raw"), []byte("0\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open with mismatched type.raw width succeeded")
	}

	// Force shape inconsistent with coord.
	dir, _ = saveSynth(t, 4, 6, 0)
	bad := npy.NewArray(6, 9)
	if err := npy.WriteFile(filepath.Join(dir, "set.000", "force.npy"), bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open with inconsistent force shape succeeded")
	}

	// Energy count inconsistent with the frame count.
	dir, _ = saveSynth(t, 4, 6, 0)
	if err := npy.WriteFile(filepath.Join(dir, "set.000", "energy.npy"), npy.NewArray(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open with short energy array succeeded")
	}

	// Box not (nframes, 9).
	dir, _ = saveSynth(t, 4, 6, 0)
	if err := npy.WriteFile(filepath.Join(dir, "set.000", "box.npy"), npy.NewArray(6, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open with malformed box shape succeeded")
	}

	// Missing array file.
	dir, _ = saveSynth(t, 4, 6, 0)
	if err := os.Remove(filepath.Join(dir, "set.000", "coord.npy")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open with a missing coord.npy succeeded")
	}
}

// TestCloseSemantics: reads after Close fail cleanly, Close is
// idempotent, and Prefetch after Close is a harmless no-op.
func TestCloseSemantics(t *testing.T) {
	dir, _ := saveSynth(t, 3, 4, 0)
	s, err := Open(dir, Options{Prefetch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Frame(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Frame(1); err == nil {
		t.Fatal("Frame succeeded on a closed store")
	}
	s.Prefetch([]int{0, 1, 2})
	if err := s.Close(); err != nil {
		t.Fatal("second Close returned an error")
	}

	if _, err := s.Frame(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := s.Frame(99); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}
