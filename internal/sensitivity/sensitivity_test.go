package sensitivity

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/surrogate"
)

// quadEval is an analytic evaluator with known sensitivities: objective 0
// depends strongly on gene 0, weakly on gene 1, not at all on gene 2.
var quadEval = ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
	return ea.Fitness{
		10*g[0]*g[0] + 0.1*g[1],
		g[1] + 0.01*g[0],
	}, nil
})

var quadBounds = ea.Bounds{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}

func TestOATSpreadsMatchAnalyticStructure(t *testing.T) {
	baseline := ea.Genome{0.5, 0.5, 0.5}
	res, err := OAT(context.Background(), quadEval, quadBounds,
		[]string{"a", "b", "c"}, baseline, 9, 2)
	if err != nil {
		t.Fatalf("OAT: %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	// Objective 0: 10x² has spread 10 over [0,1]; 0.1·b has 0.1; c: 0.
	if math.Abs(res[0].Spread[0]-10) > 1e-9 {
		t.Errorf("gene a spread = %v, want 10", res[0].Spread[0])
	}
	if math.Abs(res[1].Spread[0]-0.1) > 1e-9 {
		t.Errorf("gene b spread = %v, want 0.1", res[1].Spread[0])
	}
	if res[2].Spread[0] != 0 || res[2].Spread[1] != 0 {
		t.Errorf("inert gene c has spread %v", res[2].Spread)
	}
	if res[0].Name != "a" || len(res[0].Points) != 9 {
		t.Error("metadata wrong")
	}
}

func TestOATCountsFailures(t *testing.T) {
	ev := ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
		if g[0] > 0.8 {
			return nil, errors.New("diverged")
		}
		return ea.Fitness{g[0], 1 - g[0]}, nil
	})
	res, err := OAT(context.Background(), ev, quadBounds[:1], nil, ea.Genome{0}, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Failures != 2 { // values 0.9 and 1.0 fail
		t.Errorf("failures = %d, want 2", res[0].Failures)
	}
	if res[0].Spread[0] <= 0 {
		t.Error("spread not computed over successes")
	}
}

func TestMorrisRanksAnalyticStructure(t *testing.T) {
	res, err := Morris(context.Background(), quadEval, quadBounds,
		[]string{"a", "b", "c"}, 20, 8, 2, 1)
	if err != nil {
		t.Fatalf("Morris: %v", err)
	}
	// Objective 0: a ≫ b ≫ c.
	rank := RankByMuStar(res, 0)
	if rank[0] != 0 || rank[2] != 2 {
		t.Errorf("objective-0 ranking = %v, want a first, c last (mu* %v %v %v)",
			rank, res[0].MuStar[0], res[1].MuStar[0], res[2].MuStar[0])
	}
	// Objective 1 is dominated by b.
	rank = RankByMuStar(res, 1)
	if rank[0] != 1 {
		t.Errorf("objective-1 ranking = %v, want b first", rank)
	}
	if res[2].MuStar[0] > 1e-9 {
		t.Errorf("inert gene mu* = %v, want 0", res[2].MuStar[0])
	}
	// The nonlinear gene a should show larger sigma than the linear b on
	// objective 0.
	if res[0].Sigma[0] <= res[1].Sigma[0] {
		t.Errorf("nonlinear gene sigma %v not above linear gene %v", res[0].Sigma[0], res[1].Sigma[0])
	}
}

func TestMorrisOnSurrogateFindsPaperStructure(t *testing.T) {
	// Screening the actual HPO landscape must rank rcut and start_lr as
	// influential and rcut_smth as weak — the structure that §2.2.1's
	// "initial sensitivity testing" identified.
	ev := surrogate.NewEvaluator(surrogate.Config{Seed: 2, NoiseScale: -1, DisableFailures: true})
	rep := hpo.PaperRepresentation()
	res, err := Morris(context.Background(), ev, rep.Bounds, hpo.GeneNames[:], 30, 8, 2, 3)
	if err != nil {
		t.Fatalf("Morris: %v", err)
	}
	byName := map[string]MorrisResult{}
	for _, r := range res {
		byName[r.Name] = r
	}
	// Force objective (k=1): rcut must beat rcut_smth decisively.
	if byName["rcut"].MuStar[1] <= 2*byName["rcut_smth"].MuStar[1] {
		t.Errorf("rcut mu* %v not well above rcut_smth %v on force",
			byName["rcut"].MuStar[1], byName["rcut_smth"].MuStar[1])
	}
	// start_lr influences both objectives.
	if byName["start_lr"].MuStar[0] <= 0 || byName["start_lr"].MuStar[1] <= 0 {
		t.Error("start_lr shows no influence")
	}
}

func TestMorrisBaselineLengthValidation(t *testing.T) {
	_, err := OAT(context.Background(), quadEval, quadBounds, nil, ea.Genome{0.5}, 5, 2)
	if err == nil {
		t.Error("short baseline accepted")
	}
}

func TestMorrisCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Morris(ctx, quadEval, quadBounds, nil, 4, 8, 2, 1); err == nil {
		t.Error("cancelled Morris returned nil error")
	}
	if _, err := OAT(ctx, quadEval, quadBounds, nil, ea.Genome{0, 0, 0}, 5, 2); err == nil {
		t.Error("cancelled OAT returned nil error")
	}
}

func TestRenderers(t *testing.T) {
	oat, err := OAT(context.Background(), quadEval, quadBounds, []string{"a", "b", "c"},
		ea.Genome{0.5, 0.5, 0.5}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	txt := RenderOAT(oat, []string{"energy", "force"})
	if !strings.Contains(txt, "spread(energy)") || !strings.Contains(txt, "a") {
		t.Errorf("OAT render:\n%s", txt)
	}
	mor, err := Morris(context.Background(), quadEval, quadBounds, nil, 4, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	txt = RenderMorris(mor, []string{"energy", "force"})
	if !strings.Contains(txt, "mu*(energy)") || !strings.Contains(txt, "gene0") {
		t.Errorf("Morris render:\n%s", txt)
	}
}
