// Package sensitivity implements the hyperparameter screening the paper
// describes running before its formal experiments: the seven tuned
// parameters "were indicated as worthy of exploration based on initial
// sensitivity testing" (§2.2.1), and the 40 000-step training length came
// from "sensitivity runs" (§2.2.5).  Two standard global methods are
// provided over any evaluator:
//
//   - One-at-a-time (OAT) sweeps: vary each gene across its range with
//     all others pinned at a baseline, recording each objective's
//     response curve and spread.
//   - Morris elementary-effects screening: r randomized trajectories on a
//     p-level grid, yielding μ* (mean absolute elementary effect ≈ main
//     influence) and σ (interaction/nonlinearity) per gene and objective.
package sensitivity

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/ea"
)

// OATPoint is one sample of a one-at-a-time sweep.
type OATPoint struct {
	Value   float64    // gene value
	Fitness ea.Fitness // objectives, nil if the evaluation failed
}

// OATResult is the sweep of one gene.
type OATResult struct {
	Gene     int
	Name     string
	Points   []OATPoint
	Failures int
	// Spread[k] is max−min of objective k over successful points.
	Spread []float64
}

// OAT sweeps every gene across its bounds with steps samples each, others
// pinned to baseline.  Failed evaluations are recorded and excluded from
// spreads.
func OAT(ctx context.Context, ev ea.Evaluator, bounds ea.Bounds, names []string,
	baseline ea.Genome, steps, objectives int) ([]OATResult, error) {

	if len(baseline) != len(bounds) {
		return nil, fmt.Errorf("sensitivity: baseline length %d != bounds %d", len(baseline), len(bounds))
	}
	if steps < 2 {
		steps = 2
	}
	out := make([]OATResult, len(bounds))
	for g := range bounds {
		res := OATResult{Gene: g, Spread: make([]float64, objectives)}
		if names != nil && g < len(names) {
			res.Name = names[g]
		}
		mins := make([]float64, objectives)
		maxs := make([]float64, objectives)
		for k := range mins {
			mins[k] = math.Inf(1)
			maxs[k] = math.Inf(-1)
		}
		for s := 0; s < steps; s++ {
			genome := baseline.Clone()
			v := bounds[g].Lo + bounds[g].Width()*float64(s)/float64(steps-1)
			genome[g] = v
			fit, err := ev.Evaluate(ctx, genome)
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			pt := OATPoint{Value: v}
			if err != nil {
				res.Failures++
			} else {
				pt.Fitness = fit
				for k := 0; k < objectives && k < len(fit); k++ {
					if fit[k] < mins[k] {
						mins[k] = fit[k]
					}
					if fit[k] > maxs[k] {
						maxs[k] = fit[k]
					}
				}
			}
			res.Points = append(res.Points, pt)
		}
		for k := range res.Spread {
			if maxs[k] >= mins[k] {
				res.Spread[k] = maxs[k] - mins[k]
			}
		}
		out[g] = res
	}
	return out, nil
}

// MorrisResult holds the elementary-effects statistics of one gene.
type MorrisResult struct {
	Gene int
	Name string
	// MuStar[k] is the mean absolute elementary effect on objective k;
	// Sigma[k] its standard deviation (nonlinearity/interactions).
	MuStar []float64
	Sigma  []float64
	// Effects counts usable elementary effects (failures excluded).
	Effects int
}

// Morris runs elementary-effects screening with r trajectories on a
// levels-point grid.  Effects are normalized by each gene's range, so
// MuStar is comparable across genes with different units.
func Morris(ctx context.Context, ev ea.Evaluator, bounds ea.Bounds, names []string,
	r, levels, objectives int, seed int64) ([]MorrisResult, error) {

	if r < 2 {
		r = 2
	}
	if levels < 4 {
		levels = 4
	}
	n := len(bounds)
	rng := rand.New(rand.NewSource(seed))
	delta := float64(levels) / (2 * float64(levels-1)) // standard Morris Δ

	effects := make([][][]float64, n) // effects[g][k] = samples
	for g := range effects {
		effects[g] = make([][]float64, objectives)
	}

	for traj := 0; traj < r; traj++ {
		// Random grid base point with room for +Δ moves (unit space).
		unit := make([]float64, n)
		for g := range unit {
			maxLevel := int(float64(levels-1) * (1 - delta))
			unit[g] = float64(rng.Intn(maxLevel+1)) / float64(levels-1)
		}
		order := rng.Perm(n)
		cur := fromUnit(unit, bounds)
		curFit, curErr := ev.Evaluate(ctx, cur)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		for _, g := range order {
			unit[g] += delta
			next := fromUnit(unit, bounds)
			nextFit, nextErr := ev.Evaluate(ctx, next)
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			if curErr == nil && nextErr == nil {
				for k := 0; k < objectives; k++ {
					ee := (nextFit[k] - curFit[k]) / delta
					effects[g][k] = append(effects[g][k], ee)
				}
			}
			curFit, curErr = nextFit, nextErr
		}
	}

	out := make([]MorrisResult, n)
	for g := 0; g < n; g++ {
		res := MorrisResult{Gene: g, MuStar: make([]float64, objectives), Sigma: make([]float64, objectives)}
		if names != nil && g < len(names) {
			res.Name = names[g]
		}
		for k := 0; k < objectives; k++ {
			samples := effects[g][k]
			res.Effects = len(samples)
			if len(samples) == 0 {
				continue
			}
			mu := 0.0
			for _, e := range samples {
				mu += math.Abs(e)
			}
			mu /= float64(len(samples))
			res.MuStar[k] = mu
			if len(samples) > 1 {
				mean := 0.0
				for _, e := range samples {
					mean += e
				}
				mean /= float64(len(samples))
				varSum := 0.0
				for _, e := range samples {
					d := e - mean
					varSum += d * d
				}
				res.Sigma[k] = math.Sqrt(varSum / float64(len(samples)-1))
			}
		}
		out[g] = res
	}
	return out, nil
}

func fromUnit(unit []float64, bounds ea.Bounds) ea.Genome {
	g := make(ea.Genome, len(unit))
	for i, u := range unit {
		g[i] = bounds[i].Lo + u*bounds[i].Width()
	}
	return g
}

// RankByMuStar returns gene indices sorted by descending μ* on objective
// k — the screening order that justified the paper's parameter choice.
func RankByMuStar(results []MorrisResult, k int) []int {
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return results[order[a]].MuStar[k] > results[order[b]].MuStar[k]
	})
	return order
}

// RenderMorris formats the screening table, objectives side by side.
func RenderMorris(results []MorrisResult, objectiveNames []string) string {
	var b strings.Builder
	b.WriteString("Morris elementary-effects screening (μ* = influence, σ = interactions)\n")
	fmt.Fprintf(&b, "%-20s", "gene")
	for _, on := range objectiveNames {
		fmt.Fprintf(&b, " %12s %12s", "mu*("+on+")", "sigma("+on+")")
	}
	fmt.Fprintf(&b, " %8s\n", "effects")
	for _, r := range results {
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("gene%d", r.Gene)
		}
		fmt.Fprintf(&b, "%-20s", name)
		for k := range objectiveNames {
			fmt.Fprintf(&b, " %12.4g %12.4g", r.MuStar[k], r.Sigma[k])
		}
		fmt.Fprintf(&b, " %8d\n", r.Effects)
	}
	return b.String()
}

// RenderOAT formats the sweep spreads.
func RenderOAT(results []OATResult, objectiveNames []string) string {
	var b strings.Builder
	b.WriteString("One-at-a-time sweeps (objective spread over each gene's range)\n")
	fmt.Fprintf(&b, "%-20s", "gene")
	for _, on := range objectiveNames {
		fmt.Fprintf(&b, " %14s", "spread("+on+")")
	}
	fmt.Fprintf(&b, " %9s\n", "failures")
	for _, r := range results {
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("gene%d", r.Gene)
		}
		fmt.Fprintf(&b, "%-20s", name)
		for k := range objectiveNames {
			fmt.Fprintf(&b, " %14.4g", r.Spread[k])
		}
		fmt.Fprintf(&b, " %9d\n", r.Failures)
	}
	return b.String()
}
