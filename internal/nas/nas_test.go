package nas

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/surrogate"
)

func paperHParams() hpo.HParams {
	return hpo.HParams{
		StartLR: 0.0047, StopLR: 0.0001, RCut: 11.32, RCutSmth: 2.42,
		ScaleByWorker: "none", DescActiv: "tanh", FittingActiv: "tanh",
	}
}

func TestPaperArchitectureSizes(t *testing.T) {
	p := PaperArchitecture()
	emb := p.EmbeddingSizes()
	if len(emb) != 3 || emb[0] != 25 || emb[1] != 50 || emb[2] != 100 {
		t.Errorf("EmbeddingSizes = %v, want [25 50 100]", emb)
	}
	fit := p.FittingSizes()
	if len(fit) != 3 || fit[0] != 240 || fit[2] != 240 {
		t.Errorf("FittingSizes = %v, want [240 240 240]", fit)
	}
	if p.ParamCountEstimate() < 100000 {
		t.Errorf("paper architecture param estimate %d suspiciously small", p.ParamCountEstimate())
	}
}

func TestRepresentationShape(t *testing.T) {
	bounds, std := Representation()
	if len(bounds) != NumGenes || len(std) != NumGenes || NumGenes != 11 {
		t.Fatalf("representation arity %d/%d, want 11", len(bounds), len(std))
	}
	// First seven genes must equal Table 1.
	rep := hpo.PaperRepresentation()
	for g := 0; g < hpo.NumGenes; g++ {
		if bounds[g] != rep.Bounds[g] || std[g] != rep.Std[g] {
			t.Errorf("gene %d diverges from Table 1", g)
		}
	}
	if GeneNames[GeneEmbWidth] != "emb_width" || GeneNames[GeneFitDepth] != "fit_depth" {
		t.Error("gene names wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Params{
		{HParams: paperHParams(), EmbWidth: 100, EmbDepth: 3, FitWidth: 240, FitDepth: 3},
		{HParams: paperHParams(), EmbWidth: 16, EmbDepth: 1, FitWidth: 32, FitDepth: 2},
		{HParams: paperHParams(), EmbWidth: 256, EmbDepth: 2, FitWidth: 512, FitDepth: 1},
	}
	for _, p := range cases {
		g, err := Encode(p)
		if err != nil {
			t.Fatalf("Encode(%v): %v", p, err)
		}
		got, err := Decode(g)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got != p {
			t.Errorf("round trip: got %+v, want %+v", got, p)
		}
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	if _, err := Decode(make(ea.Genome, 7)); err == nil {
		t.Error("7-gene genome accepted by NAS decoder")
	}
}

func TestDecodeRandomGenomesValid(t *testing.T) {
	bounds, _ := Representation()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		p, err := Decode(bounds.Sample(rng))
		if err != nil {
			t.Fatalf("Decode random: %v", err)
		}
		if p.EmbDepth < 1 || p.EmbDepth > 3 || p.FitDepth < 1 || p.FitDepth > 3 {
			t.Errorf("depths out of range: %+v", p)
		}
		if p.EmbWidth < 4 || p.FitWidth < 4 {
			t.Errorf("widths below floor: %+v", p)
		}
		if len(p.EmbeddingSizes()) != p.EmbDepth || len(p.FittingSizes()) != p.FitDepth {
			t.Error("size expansion arity wrong")
		}
	}
}

func evalParams(t *testing.T, e *Evaluator, p Params) surrogate.Result {
	t.Helper()
	g, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.EvaluateGenome(g)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCapacityUnderfitPenalty(t *testing.T) {
	e := NewEvaluator(surrogate.Config{Seed: 1, NoiseScale: -1, DisableFailures: true})
	full := evalParams(t, e, Params{HParams: paperHParams(), EmbWidth: 100, EmbDepth: 3, FitWidth: 240, FitDepth: 3})
	tiny := evalParams(t, e, Params{HParams: paperHParams(), EmbWidth: 8, EmbDepth: 1, FitWidth: 16, FitDepth: 1})
	if tiny.ForceLoss <= full.ForceLoss*1.2 {
		t.Errorf("tiny architecture force %v not clearly worse than full %v", tiny.ForceLoss, full.ForceLoss)
	}
	if tiny.EnergyLoss <= full.EnergyLoss {
		t.Errorf("tiny architecture energy %v not worse than full %v", tiny.EnergyLoss, full.EnergyLoss)
	}
}

func TestCapacityDiminishingReturns(t *testing.T) {
	e := NewEvaluator(surrogate.Config{Seed: 1, NoiseScale: -1, DisableFailures: true})
	full := evalParams(t, e, PaperArchitectureWith(paperHParams()))
	big := evalParams(t, e, Params{HParams: paperHParams(), EmbWidth: 200, EmbDepth: 3, FitWidth: 480, FitDepth: 3})
	// Bigger may be slightly better, but not dramatically.
	if big.ForceLoss > full.ForceLoss {
		t.Errorf("2× architecture force %v worse than paper %v", big.ForceLoss, full.ForceLoss)
	}
	if big.ForceLoss < full.ForceLoss*0.85 {
		t.Errorf("2× architecture improves force by >15%%: %v vs %v (no free lunch expected)",
			big.ForceLoss, full.ForceLoss)
	}
	if big.Runtime <= full.Runtime {
		t.Errorf("2× architecture runtime %v not above paper %v", big.Runtime, full.Runtime)
	}
}

func TestPaperArchitectureMatchesBaseSurrogate(t *testing.T) {
	// With the paper's architecture the NAS evaluator must reduce to the
	// base surrogate (capacity ratio 1 ⇒ no adjustment).
	cfg := surrogate.Config{Seed: 1, NoiseScale: -1, DisableFailures: true}
	e := NewEvaluator(cfg)
	base := surrogate.NewEvaluator(cfg)
	p := PaperArchitectureWith(paperHParams())
	g, _ := Encode(p)
	nasRes, err := e.EvaluateGenome(g)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.EvaluateGenome(g[:hpo7])
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(nasRes.ForceLoss, baseRes.ForceLoss) > 0.02 {
		t.Errorf("NAS at paper architecture force %v != base %v", nasRes.ForceLoss, baseRes.ForceLoss)
	}
	if relDiff(nasRes.EnergyLoss, baseRes.EnergyLoss) > 0.02 {
		t.Errorf("NAS at paper architecture energy %v != base %v", nasRes.EnergyLoss, baseRes.EnergyLoss)
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// PaperArchitectureWith combines the paper's architecture with training
// hyperparameters.
func PaperArchitectureWith(h hpo.HParams) Params {
	p := PaperArchitecture()
	p.HParams = h
	return p
}

func TestCompareCampaigns(t *testing.T) {
	res, err := Compare(context.Background(), CompareConfig{
		Runs: 2, PopSize: 40, Generations: 5, Seed: 9, Parallelism: 8,
	})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if res.FixedHV <= 0 || res.NASHV <= 0 {
		t.Fatalf("hypervolumes %v / %v", res.FixedHV, res.NASHV)
	}
	// The search space strictly contains the fixed one, and the capacity
	// model offers real gains, so NAS should match or beat the baseline.
	if res.NASHV < res.FixedHV*0.98 {
		t.Errorf("NAS hypervolume %v well below fixed %v", res.NASHV, res.FixedHV)
	}
	if len(res.BestNASParams) == 0 {
		t.Error("no decoded NAS frontier architectures")
	}
	text := res.Render()
	if !strings.Contains(text, "hypervolume") || !strings.Contains(text, "emb=") {
		t.Errorf("render incomplete:\n%s", text)
	}
}

func TestNASEvaluatorFailuresPropagate(t *testing.T) {
	e := NewEvaluator(surrogate.Config{Seed: 3})
	h := paperHParams()
	h.StartLR = 0.01
	h.ScaleByWorker = "linear"
	p := PaperArchitectureWith(h)
	sawError := false
	for i := 0; i < 400 && !sawError; i++ {
		g, _ := Encode(p)
		g[hpo.GeneRCut] = 6 + 6*rand.New(rand.NewSource(int64(i))).Float64()
		if _, err := e.Evaluate(context.Background(), g); err != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Error("no failure surfaced through the NAS evaluator")
	}
}
