package nas

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/ea"
	"repro/internal/surrogate"
)

// Evaluator scores 11-gene NAS genomes: the base Summit surrogate handles
// the seven training hyperparameters, and a capacity model adjusts the
// losses and runtime for the searched architecture.
//
// Capacity model (relative to the paper's fixed architecture):
//
//   - Under-capacity: networks much smaller than the paper's cannot fit
//     the potential — losses grow with the log of the parameter deficit.
//   - Over-capacity: mild accuracy gains with strong diminishing returns,
//     and a small overfitting penalty on the energy objective beyond ~4×
//     (the training set is fixed at 40k steps).
//   - Runtime: scales with the architecture's parameter count, so NAS
//     trades accuracy against time — exactly the implicit runtime
//     objective of §2.2.
type Evaluator struct {
	Base *surrogate.Evaluator
	// refParams is the paper architecture's parameter estimate.
	refParams float64
}

// NewEvaluator builds the NAS surrogate.
func NewEvaluator(cfg surrogate.Config) *Evaluator {
	return &Evaluator{
		Base:      surrogate.NewEvaluator(cfg),
		refParams: float64(PaperArchitecture().ParamCountEstimate()),
	}
}

// Evaluate implements ea.Evaluator for 11-gene genomes.
func (e *Evaluator) Evaluate(_ context.Context, g ea.Genome) (ea.Fitness, error) {
	res, err := e.EvaluateGenome(g)
	if err != nil {
		return nil, err
	}
	if res.Failed {
		return nil, fmt.Errorf("nas: training failed after %v", res.Runtime)
	}
	return ea.Fitness{res.EnergyLoss, res.ForceLoss}, nil
}

// EvaluateGenome decodes and scores an 11-gene genome deterministically.
func (e *Evaluator) EvaluateGenome(g ea.Genome) (surrogate.Result, error) {
	p, err := Decode(g)
	if err != nil {
		return surrogate.Result{}, err
	}
	return e.adjust(p, g)
}

// hpo7 is the prefix length holding the paper's original seven genes.
const hpo7 = 7

// adjust applies the capacity model on top of the base surrogate.
func (e *Evaluator) adjust(p Params, g ea.Genome) (surrogate.Result, error) {
	base, err := e.Base.EvaluateGenome(g[:hpo7])
	if err != nil {
		return surrogate.Result{}, err
	}
	if base.Failed {
		return base, nil
	}
	ratio := float64(p.ParamCountEstimate()) / e.refParams

	forceF, energyF := 1.0, 1.0
	if ratio < 1 {
		// Deficit: log-quadratic penalty.  A 10× smaller net roughly
		// doubles the force error and triples the energy error.
		d := math.Log10(1 / ratio)
		forceF += 0.45*d*d + 0.15*d
		energyF += 1.1*d*d + 0.3*d
	} else {
		// Surplus: diminishing-return gains saturating at ≈7 % (force)
		// and ≈12 % (energy), then an overfit penalty past ~4×.
		s := math.Log10(ratio)
		forceF -= 0.07 * (1 - math.Exp(-2.2*s))
		energyF -= 0.12 * (1 - math.Exp(-2.2*s))
		if ratio > 4 {
			energyF += 0.08 * (math.Log10(ratio / 4)) * 4
		}
	}
	base.ForceLoss = math.Max(base.ForceLoss*forceF, 0.031)
	base.EnergyLoss = math.Max(base.EnergyLoss*energyF, 0.0003)

	// Runtime: roughly 45 % of the training time is network compute that
	// scales with parameter count; the rest is descriptor/neighbour work.
	rtScale := 0.55 + 0.45*ratio
	base.Runtime = time.Duration(float64(base.Runtime) * rtScale)
	return base, nil
}
