// Package nas implements the paper's stated future work (§4): extending
// the hyperparameter search with neural-architecture search over the two
// DeePMD networks.  The genome grows from seven to eleven genes — the
// original Table 1 hyperparameters plus embedding width/depth and
// fitting-network width/depth — decoded with the same floor-modulus rule
// for the discrete architecture genes.  A capacity-aware extension of the
// Summit surrogate scores architectures (under-capacity hurts accuracy,
// over-capacity pays runtime with diminishing returns), and the campaign
// driver compares the NAS frontier against the fixed-architecture
// baseline by hypervolume.
package nas

import (
	"fmt"
	"math"

	"repro/internal/ea"
	"repro/internal/hpo"
)

// Gene indices: the first seven match package hpo exactly, then the
// architecture genes.
const (
	GeneEmbWidth = hpo.NumGenes + iota // final embedding layer width
	GeneEmbDepth                       // embedding stack depth (1-3)
	GeneFitWidth                       // fitting layer width
	GeneFitDepth                       // fitting stack depth (1-3)
	NumGenes
)

// GeneNames lists all eleven genes in genome order.
var GeneNames = func() [NumGenes]string {
	var names [NumGenes]string
	copy(names[:], hpo.GeneNames[:])
	names[GeneEmbWidth] = "emb_width"
	names[GeneEmbDepth] = "emb_depth"
	names[GeneFitWidth] = "fit_width"
	names[GeneFitDepth] = "fit_depth"
	return names
}()

// Params is a decoded NAS candidate: the paper's hyperparameters plus an
// architecture.
type Params struct {
	hpo.HParams
	EmbWidth int // final embedding layer width (paper default: 100)
	EmbDepth int // embedding layers, halving widths upward (paper: 3)
	FitWidth int // fitting layer width (paper default: 240)
	FitDepth int // fitting layers (paper: 3)
}

// PaperArchitecture returns the fixed architecture of §2.1.2:
// embedding {25, 50, 100}, fitting {240, 240, 240}.
func PaperArchitecture() Params {
	return Params{EmbWidth: 100, EmbDepth: 3, FitWidth: 240, FitDepth: 3}
}

// EmbeddingSizes expands (width, depth) into the DeePMD-style pyramid:
// depth 3 with width 100 gives {25, 50, 100}, matching the paper.
func (p Params) EmbeddingSizes() []int {
	sizes := make([]int, p.EmbDepth)
	w := p.EmbWidth
	for i := p.EmbDepth - 1; i >= 0; i-- {
		sizes[i] = max(w, 2)
		w /= 2
	}
	return sizes
}

// FittingSizes expands (width, depth) into the constant-width fitting
// stack: depth 3 with width 240 gives {240, 240, 240}.
func (p Params) FittingSizes() []int {
	sizes := make([]int, p.FitDepth)
	for i := range sizes {
		sizes[i] = max(p.FitWidth, 2)
	}
	return sizes
}

// ParamCountEstimate approximates trainable parameters per species pair:
// the embedding pyramid from a scalar input plus the fitting stack from a
// width·axis descriptor.  Used for capacity and runtime modeling.
func (p Params) ParamCountEstimate() int {
	const axis = 4
	total := 0
	prev := 1
	for _, w := range p.EmbeddingSizes() {
		total += prev*w + w
		prev = w
	}
	descDim := p.EmbWidth * axis
	prev = descDim
	for _, w := range p.FittingSizes() {
		total += prev*w + w
		prev = w
	}
	total += prev + 1 // output layer
	return total
}

// String renders the candidate compactly.
func (p Params) String() string {
	return fmt.Sprintf("%s emb=%v fit=%v", p.HParams, p.EmbeddingSizes(), p.FittingSizes())
}

// Representation returns the 11-gene bounds and mutation σ: Table 1 for
// the first seven genes, plus architecture ranges.  Width genes use a
// coarse σ so mutation explores architectures at a sensible granularity.
func Representation() (ea.Bounds, []float64) {
	rep := hpo.PaperRepresentation()
	bounds := append(ea.Bounds{}, rep.Bounds...)
	std := append([]float64{}, rep.Std...)
	bounds = append(bounds,
		ea.Interval{Lo: 8, Hi: 256},  // emb_width
		ea.Interval{Lo: 0, Hi: 3},    // emb_depth → {1,2,3}
		ea.Interval{Lo: 16, Hi: 512}, // fit_width
		ea.Interval{Lo: 0, Hi: 3},    // fit_depth → {1,2,3}
	)
	std = append(std, 12.0, 0.0625, 24.0, 0.0625)
	return bounds, std
}

// Decode converts an 11-gene genome into NAS parameters.
func Decode(g ea.Genome) (Params, error) {
	if len(g) != NumGenes {
		return Params{}, fmt.Errorf("nas: genome has %d genes, want %d", len(g), NumGenes)
	}
	base, err := hpo.Decode(g[:hpo.NumGenes])
	if err != nil {
		return Params{}, err
	}
	return Params{
		HParams:  base,
		EmbWidth: max(int(math.Round(g[GeneEmbWidth])), 4),
		EmbDepth: hpo.DecodeCategorical(g[GeneEmbDepth], 3) + 1,
		FitWidth: max(int(math.Round(g[GeneFitWidth])), 4),
		FitDepth: hpo.DecodeCategorical(g[GeneFitDepth], 3) + 1,
	}, nil
}

// Encode builds a genome decoding to the given parameters.
func Encode(p Params) (ea.Genome, error) {
	base, err := hpo.Encode(p.HParams)
	if err != nil {
		return nil, err
	}
	g := append(ea.Genome{}, base...)
	g = append(g,
		float64(p.EmbWidth),
		float64(p.EmbDepth-1)+0.5,
		float64(p.FitWidth),
		float64(p.FitDepth-1)+0.5,
	)
	return g, nil
}

