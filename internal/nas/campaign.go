package nas

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/nsga2"
	"repro/internal/surrogate"
)

// CompareConfig scales the NAS-vs-fixed-architecture comparison.
type CompareConfig struct {
	Runs        int
	PopSize     int
	Generations int
	Seed        int64
	Parallelism int
}

// CompareResult holds both campaigns and their frontier quality.
type CompareResult struct {
	Fixed, NAS               *hpo.CampaignResult
	FixedHV, NASHV           float64 // exact 2-D hypervolume vs the Fig. 1 window corner
	FixedFront, NASFront     ea.Population
	BestNASParams            []Params // decoded frontier architectures
	FrontierParamCountsRatio []float64
}

// hvRef is the hypervolume reference (energy, force), matching the Fig. 1
// plot window corner.
var hvRef = ea.Fitness{0.03, 0.6}

// Compare runs the fixed-architecture campaign (the paper's) and the
// 11-gene NAS campaign under identical budgets and seeds, then compares
// frontier hypervolumes — answering §4's "model fidelity may also be
// further improved by incorporating neural architecture searching".
func Compare(ctx context.Context, cfg CompareConfig) (*CompareResult, error) {
	if cfg.Runs <= 0 {
		cfg = CompareConfig{Runs: 2, PopSize: 60, Generations: 5, Seed: 7, Parallelism: 8}
	}
	out := &CompareResult{}

	fixed, err := hpo.RunCampaign(ctx, hpo.CampaignConfig{
		Runs: cfg.Runs, PopSize: cfg.PopSize, Generations: cfg.Generations,
		Evaluator:   surrogate.NewEvaluator(surrogate.Config{Seed: cfg.Seed}),
		Parallelism: cfg.Parallelism, AnnealFactor: 0.85, BaseSeed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("nas: fixed campaign: %w", err)
	}
	out.Fixed = fixed

	bounds, std := Representation()
	nasRes, err := hpo.RunCampaign(ctx, hpo.CampaignConfig{
		Runs: cfg.Runs, PopSize: cfg.PopSize, Generations: cfg.Generations,
		Evaluator:      NewEvaluator(surrogate.Config{Seed: cfg.Seed}),
		Parallelism:    cfg.Parallelism,
		AnnealFactor:   0.85,
		BaseSeed:       cfg.Seed,
		Representation: hpo.Representation{Bounds: bounds, Std: std},
	})
	if err != nil {
		return nil, fmt.Errorf("nas: NAS campaign: %w", err)
	}
	out.NAS = nasRes

	out.FixedFront = fixed.ParetoFront()
	out.NASFront = nasRes.ParetoFront()
	out.FixedHV = nsga2.Hypervolume2D(out.FixedFront, hvRef)
	out.NASHV = nsga2.Hypervolume2D(out.NASFront, hvRef)

	ref := float64(PaperArchitecture().ParamCountEstimate())
	for _, ind := range out.NASFront {
		p, err := Decode(ind.Genome)
		if err != nil {
			continue
		}
		out.BestNASParams = append(out.BestNASParams, p)
		out.FrontierParamCountsRatio = append(out.FrontierParamCountsRatio,
			float64(p.ParamCountEstimate())/ref)
	}
	return out, nil
}

// Render formats the comparison.
func (r *CompareResult) Render() string {
	var b strings.Builder
	b.WriteString("NAS extension (§4 future work): architecture search vs. fixed {25,50,100}/{240,240,240}\n\n")
	fmt.Fprintf(&b, "fixed-architecture frontier: %d points, hypervolume %.6f\n", len(r.FixedFront), r.FixedHV)
	fmt.Fprintf(&b, "NAS (11-gene) frontier:      %d points, hypervolume %.6f\n", len(r.NASFront), r.NASHV)
	if r.NASHV > r.FixedHV {
		fmt.Fprintf(&b, "NAS improves frontier hypervolume by %.2f%%\n", 100*(r.NASHV/r.FixedHV-1))
	} else {
		fmt.Fprintf(&b, "NAS does not improve the frontier (%.2f%%)\n", 100*(r.NASHV/r.FixedHV-1))
	}
	b.WriteString("\nNAS frontier architectures:\n")
	for i, p := range r.BestNASParams {
		fmt.Fprintf(&b, "  %2d  %.2fx params  emb=%v fit=%v  (%s)\n",
			i+1, r.FrontierParamCountsRatio[i], p.EmbeddingSizes(), p.FittingSizes(), p.HParams)
	}
	return b.String()
}
