// Package npy reads and writes NumPy .npy files (format version 1.0).
//
// The paper's training data was converted to "energy, force, box values in
// Numpy arrays" for DeePMD consumption (§2.1.3).  This package provides the
// same interchange format so that datasets written by the Go MD engine have
// the exact on-disk layout DeePMD-style trainers expect.
//
// Supported dtypes: float64 ("<f8"), float32 ("<f4") and int64 ("<i8"),
// C-contiguous only, which covers every array the DeePMD data pipeline uses.
package npy

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// magic is the 6-byte .npy magic string followed by version 1.0.
var magic = []byte{0x93, 'N', 'U', 'M', 'P', 'Y', 0x01, 0x00}

// Array is an n-dimensional array in C (row-major) order.
type Array struct {
	Shape []int     // dimension sizes, outermost first
	Data  []float64 // flattened values, len == product(Shape)
}

// NewArray allocates a zero-filled array with the given shape.
func NewArray(shape ...int) *Array {
	n := 1
	for _, s := range shape {
		n *= s
	}
	return &Array{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// Len returns the total number of elements.
func (a *Array) Len() int {
	n := 1
	for _, s := range a.Shape {
		n *= s
	}
	return n
}

// At returns the element at the given multi-index.
func (a *Array) At(idx ...int) float64 {
	return a.Data[a.offset(idx)]
}

// Set stores v at the given multi-index.
func (a *Array) Set(v float64, idx ...int) {
	a.Data[a.offset(idx)] = v
}

func (a *Array) offset(idx []int) int {
	if len(idx) != len(a.Shape) {
		panic(fmt.Sprintf("npy: index rank %d != array rank %d", len(idx), len(a.Shape)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= a.Shape[d] {
			panic(fmt.Sprintf("npy: index %d out of range for dim %d (size %d)", i, d, a.Shape[d]))
		}
		off = off*a.Shape[d] + i
	}
	return off
}

// Write serializes the array as float64 ("<f8") .npy data.
func Write(w io.Writer, a *Array) error {
	if a.Len() != len(a.Data) {
		return fmt.Errorf("npy: shape %v implies %d elements, have %d", a.Shape, a.Len(), len(a.Data))
	}
	if err := writeHeader(w, "<f8", a.Shape); err != nil {
		return err
	}
	buf := make([]byte, 8*len(a.Data))
	for i, v := range a.Data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func writeHeader(w io.Writer, descr string, shape []int) error {
	dims := make([]string, len(shape))
	for i, s := range shape {
		dims[i] = strconv.Itoa(s)
	}
	shapeStr := strings.Join(dims, ", ")
	if len(shape) == 1 {
		shapeStr += ","
	}
	header := fmt.Sprintf("{'descr': '%s', 'fortran_order': False, 'shape': (%s), }", descr, shapeStr)
	// Pad so that magic+2-byte length+header is a multiple of 64, ending in \n.
	total := len(magic) + 2 + len(header) + 1
	pad := (64 - total%64) % 64
	header += strings.Repeat(" ", pad) + "\n"
	if len(header) > 65535 {
		return errors.New("npy: header too long for format 1.0")
	}
	if _, err := w.Write(magic); err != nil {
		return err
	}
	var hlen [2]byte
	binary.LittleEndian.PutUint16(hlen[:], uint16(len(header)))
	if _, err := w.Write(hlen[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, header)
	return err
}

// Read parses a .npy stream holding a float64, float32 or int64 array.
// Non-float64 data is converted to float64.
func Read(r io.Reader) (*Array, error) {
	br := bufio.NewReader(r)
	h, err := ReadHeader(br)
	if err != nil {
		return nil, err
	}
	if h.Fortran {
		return nil, errors.New("npy: fortran_order arrays are not supported")
	}
	n, err := h.elems()
	if err != nil {
		return nil, err
	}
	elemSize, conv, err := dtypeInfo(h.Descr)
	if err != nil {
		return nil, err
	}
	data, err := readPayload(br, n, elemSize, conv)
	if err != nil {
		return nil, err
	}
	return &Array{Shape: h.Shape, Data: data}, nil
}

// dtypeInfo resolves a supported dtype descr to its element size and
// little-endian float64 conversion.
func dtypeInfo(descr string) (elemSize int, conv func([]byte) float64, err error) {
	switch descr {
	case "<f8":
		return 8, func(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }, nil
	case "<f4":
		return 4, func(b []byte) float64 { return float64(math.Float32frombits(binary.LittleEndian.Uint32(b))) }, nil
	case "<i8":
		return 8, func(b []byte) float64 { return float64(int64(binary.LittleEndian.Uint64(b))) }, nil
	}
	return 0, nil, fmt.Errorf("npy: unsupported dtype %q", descr)
}

// payloadChunkElems bounds the elements decoded per read, so a hostile
// header claiming a huge shape cannot force a huge upfront allocation —
// memory grows only as payload bytes actually arrive.
const payloadChunkElems = 64 * 1024

func readPayload(r io.Reader, n, elemSize int, conv func([]byte) float64) ([]float64, error) {
	data := make([]float64, 0, min(n, payloadChunkElems))
	buf := make([]byte, elemSize*min(n, payloadChunkElems))
	for remaining := n; remaining > 0; {
		c := min(remaining, payloadChunkElems)
		b := buf[:elemSize*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("npy: reading payload: %w", err)
		}
		for i := 0; i < c; i++ {
			data = append(data, conv(b[i*elemSize:]))
		}
		remaining -= c
	}
	return data, nil
}

// parseHeader extracts descr, fortran_order and shape from the Python-dict
// literal header of a v1.0 .npy file.
func parseHeader(h string) (descr string, fortran bool, shape []int, err error) {
	h = strings.TrimSpace(h)
	get := func(key string) (string, error) {
		i := strings.Index(h, "'"+key+"'")
		if i < 0 {
			return "", fmt.Errorf("npy: header missing key %q", key)
		}
		rest := h[i+len(key)+2:]
		j := strings.Index(rest, ":")
		if j < 0 {
			return "", fmt.Errorf("npy: malformed header near %q", key)
		}
		rest = strings.TrimSpace(rest[j+1:])
		return rest, nil
	}

	dv, err := get("descr")
	if err != nil {
		return "", false, nil, err
	}
	if len(dv) < 2 || dv[0] != '\'' {
		return "", false, nil, errors.New("npy: malformed descr")
	}
	end := strings.IndexByte(dv[1:], '\'')
	if end < 0 {
		return "", false, nil, errors.New("npy: malformed descr")
	}
	descr = dv[1 : 1+end]

	fv, err := get("fortran_order")
	if err != nil {
		return "", false, nil, err
	}
	fortran = strings.HasPrefix(fv, "True")

	sv, err := get("shape")
	if err != nil {
		return "", false, nil, err
	}
	open := strings.IndexByte(sv, '(')
	closeIdx := strings.IndexByte(sv, ')')
	if open < 0 || closeIdx < open {
		return "", false, nil, errors.New("npy: malformed shape")
	}
	inner := sv[open+1 : closeIdx]
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, convErr := strconv.Atoi(part)
		if convErr != nil {
			return "", false, nil, fmt.Errorf("npy: bad shape entry %q", part)
		}
		if d < 0 {
			return "", false, nil, fmt.Errorf("npy: negative dimension %d", d)
		}
		shape = append(shape, d)
	}
	if shape == nil {
		shape = []int{} // 0-d scalar array
	}
	return descr, fortran, shape, nil
}

// WriteFile writes the array to path, creating or truncating it.
func WriteFile(path string, a *Array) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := Write(bw, a); err != nil {
		//lint:ignore errdiscard error-path close: the write error being returned is the actionable one
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		//lint:ignore errdiscard error-path close: the flush error being returned is the actionable one
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a .npy file from path.
func ReadFile(path string) (*Array, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
