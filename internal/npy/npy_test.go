package npy

import (
	"bytes"
	"encoding/binary"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestRoundTrip1D(t *testing.T) {
	a := &Array{Shape: []int{5}, Data: []float64{1, 2, 3, -4.5, 1e-9}}
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got.Shape) != 1 || got.Shape[0] != 5 {
		t.Fatalf("shape = %v, want [5]", got.Shape)
	}
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Errorf("Data[%d] = %v, want %v", i, got.Data[i], a.Data[i])
		}
	}
}

func TestRoundTrip2D(t *testing.T) {
	a := NewArray(3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			a.Set(float64(i*10+j), i, j)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Shape[0] != 3 || got.Shape[1] != 4 {
		t.Fatalf("shape = %v, want [3 4]", got.Shape)
	}
	if got.At(2, 3) != 23 {
		t.Errorf("At(2,3) = %v, want 23", got.At(2, 3))
	}
}

func TestHeaderPaddingAligned(t *testing.T) {
	a := NewArray(7)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatalf("Write: %v", err)
	}
	raw := buf.Bytes()
	hlen := int(binary.LittleEndian.Uint16(raw[8:10]))
	if (10+hlen)%64 != 0 {
		t.Errorf("header block size %d not a multiple of 64", 10+hlen)
	}
	if raw[10+hlen-1] != '\n' {
		t.Errorf("header does not end in newline")
	}
}

func TestReadFloat32(t *testing.T) {
	// Hand-construct a little <f4 file.
	var buf bytes.Buffer
	if err := writeHeader(&buf, "<f4", []int{2}); err != nil {
		t.Fatalf("writeHeader: %v", err)
	}
	var payload [8]byte
	binary.LittleEndian.PutUint32(payload[0:], math.Float32bits(1.5))
	binary.LittleEndian.PutUint32(payload[4:], math.Float32bits(-2.25))
	buf.Write(payload[:])
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Data[0] != 1.5 || got.Data[1] != -2.25 {
		t.Errorf("Data = %v, want [1.5 -2.25]", got.Data)
	}
}

func TestReadInt64(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHeader(&buf, "<i8", []int{3}); err != nil {
		t.Fatalf("writeHeader: %v", err)
	}
	var payload [24]byte
	binary.LittleEndian.PutUint64(payload[0:], uint64(7))
	binary.LittleEndian.PutUint64(payload[8:], ^uint64(0)) // -1
	binary.LittleEndian.PutUint64(payload[16:], uint64(42))
	buf.Write(payload[:])
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	want := []float64{7, -1, 42}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Errorf("Data[%d] = %v, want %v", i, got.Data[i], want[i])
		}
	}
}

func TestRejectBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a npy file at all..."))); err == nil {
		t.Error("Read of garbage succeeded, want error")
	}
}

func TestRejectFortranOrder(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic)
	header := "{'descr': '<f8', 'fortran_order': True, 'shape': (2,), }\n"
	var hlen [2]byte
	binary.LittleEndian.PutUint16(hlen[:], uint16(len(header)))
	buf.Write(hlen[:])
	buf.WriteString(header)
	buf.Write(make([]byte, 16))
	if _, err := Read(&buf); err == nil {
		t.Error("Read of fortran-order file succeeded, want error")
	}
}

func TestRejectUnknownDtype(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHeader(&buf, "<c16", []int{1}); err != nil {
		t.Fatalf("writeHeader: %v", err)
	}
	buf.Write(make([]byte, 16))
	if _, err := Read(&buf); err == nil {
		t.Error("Read of complex dtype succeeded, want error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "energy.npy")
	a := &Array{Shape: []int{2, 2}, Data: []float64{1, 2, 3, 4}}
	if err := WriteFile(path, a); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", got.At(1, 0))
	}
}

func TestWriteShapeMismatch(t *testing.T) {
	a := &Array{Shape: []int{10}, Data: []float64{1, 2}}
	var buf bytes.Buffer
	if err := Write(&buf, a); err == nil {
		t.Error("Write with mismatched shape succeeded, want error")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []float64) bool {
		// Replace NaN with 0 since NaN != NaN would fail equality below;
		// bit-exactness for NaN is checked separately.
		a := &Array{Shape: []int{len(data)}, Data: data}
		var buf bytes.Buffer
		if err := Write(&buf, a); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		for i := range data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNaNBitExact(t *testing.T) {
	a := &Array{Shape: []int{1}, Data: []float64{math.NaN()}}
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !math.IsNaN(got.Data[0]) {
		t.Errorf("NaN did not survive round trip: %v", got.Data[0])
	}
}

func TestZeroLengthArray(t *testing.T) {
	a := NewArray(0)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("Len() = %d, want 0", got.Len())
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	a := NewArray(2, 2)
	a.At(2, 0)
}
