package npy

import (
	"bytes"
	"math"
	"testing"
)

// FuzzNpyRoundTrip feeds arbitrary bytes to Read.  Read must never
// panic, and whatever it accepts must survive a Write → Read round trip
// with an identical shape and bit-identical data — the property the
// dataset cache depends on.
func FuzzNpyRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	a := NewArray(2, 3)
	for i := range a.Data {
		a.Data[i] = float64(i) * 0.5
	}
	if err := Write(&buf, a); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x93, 'N', 'U', 'M', 'P', 'Y', 1, 0})

	f.Fuzz(func(t *testing.T, in []byte) {
		a, err := Read(bytes.NewReader(in))
		if err != nil {
			return
		}
		if a.Len() != len(a.Data) {
			t.Fatalf("accepted array with shape %v (%d elements) but %d data values",
				a.Shape, a.Len(), len(a.Data))
		}
		var out bytes.Buffer
		if err := Write(&out, a); err != nil {
			t.Fatalf("re-encoding accepted array: %v", err)
		}
		b, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading re-encoded array: %v", err)
		}
		if len(b.Shape) != len(a.Shape) {
			t.Fatalf("round trip changed rank: %v vs %v", a.Shape, b.Shape)
		}
		for d := range a.Shape {
			if b.Shape[d] != a.Shape[d] {
				t.Fatalf("round trip changed shape: %v vs %v", a.Shape, b.Shape)
			}
		}
		for i := range a.Data {
			if math.Float64bits(b.Data[i]) != math.Float64bits(a.Data[i]) {
				t.Fatalf("round trip changed data[%d]: %x vs %x",
					i, math.Float64bits(a.Data[i]), math.Float64bits(b.Data[i]))
			}
		}
	})
}
