package npy

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// write23 returns the bytes of a 2x3 <f8 array with Data[i] = i*10.
func write23(t *testing.T) []byte {
	t.Helper()
	a := NewArray(2, 3)
	for i := range a.Data {
		a.Data[i] = float64(i * 10)
	}
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestReadHeaderMatchesWrite(t *testing.T) {
	raw := write23(t)
	h, err := ReadHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	if h.Descr != "<f8" || h.Fortran {
		t.Errorf("header = %q fortran=%v, want \"<f8\" false", h.Descr, h.Fortran)
	}
	if len(h.Shape) != 2 || h.Shape[0] != 2 || h.Shape[1] != 3 {
		t.Errorf("shape = %v, want [2 3]", h.Shape)
	}
	if h.Rows() != 2 || h.RowLen() != 3 {
		t.Errorf("Rows/RowLen = %d/%d, want 2/3", h.Rows(), h.RowLen())
	}
	wantOff := int64(len(raw) - 2*3*8)
	if h.PayloadOffset != wantOff {
		t.Errorf("PayloadOffset = %d, want %d", h.PayloadOffset, wantOff)
	}
}

func TestReadHeaderScalarAnd1D(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHeader(&buf, "<f8", nil); err != nil {
		t.Fatalf("writeHeader: %v", err)
	}
	h, err := ReadHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadHeader(0-d): %v", err)
	}
	if h.Rows() != 1 || h.RowLen() != 1 {
		t.Errorf("0-d Rows/RowLen = %d/%d, want 1/1", h.Rows(), h.RowLen())
	}

	buf.Reset()
	if err := writeHeader(&buf, "<f8", []int{5}); err != nil {
		t.Fatalf("writeHeader: %v", err)
	}
	h, err = ReadHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadHeader(1-d): %v", err)
	}
	if h.Rows() != 5 || h.RowLen() != 1 {
		t.Errorf("1-d Rows/RowLen = %d/%d, want 5/1", h.Rows(), h.RowLen())
	}
}

func TestReadHeaderErrors(t *testing.T) {
	valid := write23(t)
	cases := map[string][]byte{
		"empty":        nil,
		"bad magic":    []byte("\x93NUMPZ\x01\x00"),
		"version 2":    append([]byte("\x93NUMPY\x02\x00"), valid[8:]...),
		"short hlen":   valid[:9],
		"short header": valid[:12],
	}
	for name, raw := range cases {
		if _, err := ReadHeader(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: ReadHeader accepted malformed input", name)
		}
	}
}

func TestReadRowsAt(t *testing.T) {
	raw := write23(t)
	ra := bytes.NewReader(raw)
	h, err := ReadHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	dst := make([]float64, 3)
	var buf []byte
	for row := 0; row < 2; row++ {
		buf, err = ReadRowsAt(ra, h, row, 1, dst, buf)
		if err != nil {
			t.Fatalf("ReadRowsAt(row %d): %v", row, err)
		}
		for j := 0; j < 3; j++ {
			if want := float64((row*3 + j) * 10); dst[j] != want {
				t.Errorf("row %d col %d = %v, want %v", row, j, dst[j], want)
			}
		}
	}
	// Multi-row read reuses the returned scratch without growing.
	all := make([]float64, 6)
	buf2, err := ReadRowsAt(ra, h, 0, 2, all, buf)
	if err != nil {
		t.Fatalf("ReadRowsAt(all): %v", err)
	}
	if cap(buf) >= 6*8 && &buf2[0] != &buf[0] {
		t.Error("scratch reallocated despite sufficient capacity")
	}
	for i := range all {
		if all[i] != float64(i*10) {
			t.Errorf("all[%d] = %v, want %v", i, all[i], float64(i*10))
		}
	}
}

func TestReadRowsAtFloat32(t *testing.T) {
	var w bytes.Buffer
	if err := writeHeader(&w, "<f4", []int{2, 2}); err != nil {
		t.Fatalf("writeHeader: %v", err)
	}
	for _, v := range []float32{1.5, -2.25, 3, -4} {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		w.Write(b[:])
	}
	raw := w.Bytes()
	h, err := ReadHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	dst := make([]float64, 2)
	if _, err := ReadRowsAt(bytes.NewReader(raw), h, 1, 1, dst, nil); err != nil {
		t.Fatalf("ReadRowsAt: %v", err)
	}
	if dst[0] != 3 || dst[1] != -4 {
		t.Errorf("row 1 = %v, want [3 -4]", dst)
	}
}

func TestReadRowsAtErrors(t *testing.T) {
	raw := write23(t)
	ra := bytes.NewReader(raw)
	h, err := ReadHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	dst := make([]float64, 6)

	check := func(name string, h *Header, row, nrows int, dst []float64, want string) {
		t.Helper()
		if _, err := ReadRowsAt(ra, h, row, nrows, dst, nil); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%s: err = %v, want containing %q", name, err, want)
		}
	}
	check("negative row", h, -1, 1, dst, "out of range")
	check("negative count", h, 0, -1, dst, "out of range")
	check("past end", h, 1, 2, dst, "out of range")
	check("short dst", h, 0, 2, dst[:3], "dst holds")

	fh := *h
	fh.Fortran = true
	check("fortran", &fh, 0, 1, dst, "fortran_order")

	bh := *h
	bh.Descr = ">f8"
	check("bad dtype", &bh, 0, 1, dst, "dtype")

	oh := *h
	oh.Shape = []int{math.MaxInt / 8, 2}
	check("overflow", &oh, 0, 1, dst, "overflows")

	th := *h
	th.Shape = []int{4, 3} // claims more rows than the payload holds
	check("truncated payload", &th, 3, 1, dst, "reading rows")
}
