package npy

import (
	"bytes"
	"testing"
)

func BenchmarkWrite(b *testing.B) {
	a := NewArray(1000, 480) // one set of 1000 frames × 3N coords
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	b.SetBytes(int64(8 * len(a.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	a := NewArray(1000, 480)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(8 * len(a.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
