package npy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Header is the parsed metadata of a .npy stream: everything needed to
// locate and decode any row of the payload without reading the rest.
// It is the random-access counterpart to Read, used by the out-of-core
// dataset layer to pull single frames out of multi-gigabyte shards.
type Header struct {
	// Descr is the dtype string, e.g. "<f8".
	Descr string
	// Fortran reports fortran_order; row access requires C order.
	Fortran bool
	// Shape holds the dimension sizes, outermost first.
	Shape []int
	// PayloadOffset is the byte offset of the first element from the
	// start of the stream.
	PayloadOffset int64
}

// Rows returns the size of the outermost dimension (1 for a 0-d array):
// the number of independently addressable rows.
func (h *Header) Rows() int {
	if len(h.Shape) == 0 {
		return 1
	}
	return h.Shape[0]
}

// RowLen returns the number of elements per row — the product of the
// inner dimensions.
func (h *Header) RowLen() int {
	n := 1
	for _, s := range h.Shape[min(1, len(h.Shape)):] {
		n *= s
	}
	return n
}

// elems returns the total element count, guarding against shapes whose
// byte size overflows int.
func (h *Header) elems() (int, error) {
	n := 1
	for _, s := range h.Shape {
		if s != 0 && n > math.MaxInt/8/s {
			return 0, fmt.Errorf("npy: shape %v overflows element count", h.Shape)
		}
		n *= s
	}
	return n, nil
}

// ReadHeader parses the magic, version and dict header of a .npy stream
// positioned at its start, consuming exactly the bytes before the
// payload (PayloadOffset of them).  The dtype is not validated here —
// callers that decode data get the error from dtypeInfo.
func ReadHeader(r io.Reader) (*Header, error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("npy: reading magic: %w", err)
	}
	for i := 0; i < 6; i++ {
		if head[i] != magic[i] {
			return nil, errors.New("npy: bad magic string")
		}
	}
	if head[6] != 1 {
		return nil, fmt.Errorf("npy: unsupported format version %d.%d", head[6], head[7])
	}
	var hlen [2]byte
	if _, err := io.ReadFull(r, hlen[:]); err != nil {
		return nil, fmt.Errorf("npy: reading header length: %w", err)
	}
	header := make([]byte, binary.LittleEndian.Uint16(hlen[:]))
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("npy: reading header: %w", err)
	}
	descr, fortran, shape, err := parseHeader(string(header))
	if err != nil {
		return nil, err
	}
	return &Header{
		Descr:         descr,
		Fortran:       fortran,
		Shape:         shape,
		PayloadOffset: int64(len(magic) + 2 + len(header)),
	}, nil
}

// ReadRowsAt decodes rows [row, row+nrows) of the array described by h
// into dst (which must hold nrows·RowLen elements) using positioned
// reads, so concurrent callers can share one ReaderAt.  buf is optional
// reusable byte scratch; the (possibly grown) scratch is returned for
// the next call, making steady-state row reads allocation-free.
func ReadRowsAt(ra io.ReaderAt, h *Header, row, nrows int, dst []float64, buf []byte) ([]byte, error) {
	if h.Fortran {
		return buf, errors.New("npy: fortran_order arrays are not supported")
	}
	elemSize, conv, err := dtypeInfo(h.Descr)
	if err != nil {
		return buf, err
	}
	if _, err := h.elems(); err != nil {
		return buf, err
	}
	rowLen := h.RowLen()
	if row < 0 || nrows < 0 || row+nrows > h.Rows() {
		return buf, fmt.Errorf("npy: rows [%d, %d) out of range [0, %d)", row, row+nrows, h.Rows())
	}
	n := nrows * rowLen
	if len(dst) < n {
		return buf, fmt.Errorf("npy: dst holds %d elements, need %d", len(dst), n)
	}
	nbytes := n * elemSize
	if cap(buf) < nbytes {
		buf = make([]byte, nbytes)
	}
	buf = buf[:cap(buf)]
	off := h.PayloadOffset + int64(row)*int64(rowLen)*int64(elemSize)
	if _, err := ra.ReadAt(buf[:nbytes], off); err != nil {
		return buf, fmt.Errorf("npy: reading rows [%d, %d): %w", row, row+nrows, err)
	}
	for i := 0; i < n; i++ {
		dst[i] = conv(buf[i*elemSize:])
	}
	return buf, nil
}
