package ea

import (
	"context"
	"encoding/binary"
	"math"
	"sync"
)

// GenomeKey returns a byte-exact cache key for a genome: the IEEE-754
// bits of every gene, little-endian concatenated.  Two genomes map to the
// same key iff they are bitwise identical, so memoization never conflates
// merely-close genomes (and distinguishes +0 from −0 and NaN payloads,
// conservatively).
func GenomeKey(g Genome) string {
	buf := make([]byte, 8*len(g))
	for i, v := range g {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return string(buf)
}

// MemoStats is a snapshot of a MemoEvaluator's counters.
type MemoStats struct {
	// Hits counts evaluations answered from the cache (including waiters
	// that piggybacked on an in-flight leader evaluation).
	Hits int
	// Misses counts evaluations that ran the inner evaluator.
	Misses int
	// Entries is the number of cached fitnesses.
	Entries int
}

// memoEntry is one in-flight or completed evaluation.  done is closed
// when fit/ok are final.
type memoEntry struct {
	done chan struct{}
	fit  Fitness
	ok   bool
}

// MemoEvaluator wraps an Evaluator with genome-keyed fitness
// memoization.  NSGA-II's clone-and-mutate pipeline routinely emits
// exact-duplicate genomes (unmutated clones, converged populations);
// since evaluation is deterministic for a fixed genome, re-training such
// duplicates is pure waste — in the paper's terms, hours of DeePMD
// training per duplicate.  The cache is keyed on the genome's exact bits
// (GenomeKey) and stores only successful results: failures are never
// cached, so a flaky evaluation gets retried if the genome reappears.
//
// Concurrent lookups of the same genome coalesce, singleflight-style:
// the first caller (the leader) runs the inner evaluator while the rest
// wait on its result.  If the leader fails — including by panicking
// inside the inner evaluator — waiting callers re-compete to lead
// rather than inheriting the failure or blocking on an entry that will
// never resolve.
type MemoEvaluator struct {
	// Inner is the wrapped evaluator.
	Inner Evaluator

	mu      sync.Mutex
	entries map[string]*memoEntry
	hits    int
	misses  int
}

// NewMemoEvaluator wraps inner with an empty cache.
func NewMemoEvaluator(inner Evaluator) *MemoEvaluator {
	return &MemoEvaluator{Inner: inner, entries: make(map[string]*memoEntry)}
}

// Evaluate implements Evaluator.  Duplicate genomes return the cached
// fitness (a defensive copy) without touching the inner evaluator.
func (m *MemoEvaluator) Evaluate(ctx context.Context, g Genome) (Fitness, error) {
	key := GenomeKey(g)
	for {
		m.mu.Lock()
		if m.entries == nil {
			m.entries = make(map[string]*memoEntry)
		}
		e, found := m.entries[key]
		if !found {
			// Leader: publish the in-flight entry, then evaluate.
			e = &memoEntry{done: make(chan struct{})}
			m.entries[key] = e
			m.misses++
			m.mu.Unlock()
			return m.lead(ctx, key, e, g)
		}
		m.hits++
		m.mu.Unlock()

		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.ok {
			return e.fit.Clone(), nil
		}
		// The leader failed and removed the entry; re-compete.  The hit
		// already counted converts into a miss if this caller leads.
		m.mu.Lock()
		m.hits--
		m.mu.Unlock()
	}
}

// lead runs the inner evaluator as the singleflight leader for key,
// publishes the result (or unpublishes the entry on failure) and
// releases the waiters.  The deferred cleanup guards the gap between
// publishing the in-flight entry and closing done: if the inner
// evaluator panics, the entry is unpublished and done is closed anyway,
// so waiters re-compete for leadership instead of blocking forever on a
// channel nobody will ever close.  The panic itself propagates — the
// evaluation pool's safeEvaluate converts it to a MAXINT failure — so
// the caller's failure semantics are unchanged.
func (m *MemoEvaluator) lead(ctx context.Context, key string, e *memoEntry, g Genome) (fit Fitness, err error) {
	settled := false
	defer func() {
		if settled {
			return
		}
		m.mu.Lock()
		delete(m.entries, key)
		m.mu.Unlock()
		close(e.done)
	}()

	fit, err = m.Inner.Evaluate(ctx, g)
	m.mu.Lock()
	if err != nil {
		// Don't cache failures: remove the entry before releasing the
		// waiters so a later occurrence retries.
		delete(m.entries, key)
	} else {
		e.fit, e.ok = fit.Clone(), true
	}
	m.mu.Unlock()
	settled = true
	close(e.done)
	if err != nil {
		return nil, err
	}
	return fit, nil
}

// Stats returns a snapshot of the cache counters.
func (m *MemoEvaluator) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.entries {
		select {
		case <-e.done:
			if e.ok {
				n++
			}
		default:
		}
	}
	return MemoStats{Hits: m.hits, Misses: m.misses, Entries: n}
}
