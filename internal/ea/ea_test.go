package ea

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func testBounds() Bounds {
	return Bounds{{0, 1}, {-5, 5}, {2, 6}}
}

func TestBoundsSampleWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := testBounds()
	for i := 0; i < 200; i++ {
		g := b.Sample(rng)
		if !b.Contains(g) {
			t.Fatalf("sampled genome %v outside bounds", g)
		}
	}
}

func TestBoundsClamp(t *testing.T) {
	b := testBounds()
	g := Genome{-1, 10, 4}
	b.Clamp(g)
	want := Genome{0, 5, 4}
	for i := range want {
		if g[i] != want[i] {
			t.Errorf("clamped[%d] = %v, want %v", i, g[i], want[i])
		}
	}
}

func TestBoundsValidate(t *testing.T) {
	good := Bounds{{0, 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	bad := Bounds{{1, 0}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate(inverted) = nil, want error")
	}
}

func TestCloneGetsNewIDAndClearsFitness(t *testing.T) {
	ind := NewIndividual(Genome{1, 2, 3})
	ind.Fitness = Fitness{0.5, 0.5}
	ind.Evaluated = true
	c := ind.Clone()
	if c.ID == ind.ID {
		t.Error("Clone kept the same UUID")
	}
	if c.Evaluated || c.Fitness != nil {
		t.Error("Clone kept evaluation state")
	}
	c.Genome[0] = 99
	if ind.Genome[0] == 99 {
		t.Error("Clone aliases parent genome")
	}
}

func TestFailureFitness(t *testing.T) {
	f := FailureFitness(2)
	if !f.IsFailure() {
		t.Error("FailureFitness(2).IsFailure() = false")
	}
	if f[0] != MaxFitness || f[1] != MaxFitness {
		t.Errorf("FailureFitness = %v", f)
	}
	ok := Fitness{0.1, MaxFitness}
	if ok.IsFailure() {
		t.Error("partial failure fitness reported IsFailure")
	}
	var empty Fitness
	if empty.IsFailure() {
		t.Error("empty fitness reported IsFailure")
	}
}

func TestRandomSelectionCoversPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop := RandomPopulation(rng, testBounds(), 10, 0)
	sel := RandomSelection(rng, pop)
	seen := map[*Individual]bool{}
	for i := 0; i < 1000; i++ {
		ind, ok := sel()
		if !ok {
			t.Fatal("RandomSelection ended")
		}
		seen[ind] = true
	}
	if len(seen) != len(pop) {
		t.Errorf("selection covered %d of %d members", len(seen), len(pop))
	}
}

func TestRandomSelectionEmptyPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sel := RandomSelection(rng, nil)
	if _, ok := sel(); ok {
		t.Error("RandomSelection of empty population yielded an individual")
	}
}

func TestMutateGaussianRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := testBounds()
	ctx := NewContext([]float64{10, 10, 10}) // huge σ to force clipping
	pop := RandomPopulation(rng, b, 5, 0)
	stream := Pipe(Source(pop), Clone(), MutateGaussian(rng, ctx, b))
	out := Take(stream, 5)
	for _, ind := range out {
		if !b.Contains(ind.Genome) {
			t.Errorf("mutated genome %v escapes bounds", ind.Genome)
		}
	}
}

func TestMutateGaussianIsIsotropic(t *testing.T) {
	// With σ > 0 on all genes, all genes should change (prob. of a zero
	// normal draw is 0).
	rng := rand.New(rand.NewSource(4))
	b := Bounds{{-1e9, 1e9}, {-1e9, 1e9}}
	ctx := NewContext([]float64{1, 1})
	orig := Genome{0, 0}
	ind := NewIndividual(orig.Clone())
	stream := Pipe(Source(Population{ind}), MutateGaussian(rng, ctx, b))
	out := Take(stream, 1)
	for i, v := range out[0].Genome {
		if v == orig[i] {
			t.Errorf("gene %d unchanged by isotropic mutation", i)
		}
	}
}

func TestMutateGaussianSeesAnnealedStd(t *testing.T) {
	// After annealing σ to 0 the mutation must be a no-op.
	rng := rand.New(rand.NewSource(5))
	b := Bounds{{-10, 10}}
	ctx := NewContext([]float64{1})
	ctx.SetStd([]float64{0})
	ind := NewIndividual(Genome{3})
	out := Take(Pipe(Source(Population{ind}), MutateGaussian(rng, ctx, b)), 1)
	if out[0].Genome[0] != 3 {
		t.Errorf("mutation with σ=0 changed gene: %v", out[0].Genome[0])
	}
}

func TestContextAnneal(t *testing.T) {
	ctx := NewContext([]float64{1.0, 0.5})
	ctx.AnnealStd(0.85)
	std := ctx.Std()
	if math.Abs(std[0]-0.85) > 1e-12 || math.Abs(std[1]-0.425) > 1e-12 {
		t.Errorf("annealed std = %v, want [0.85 0.425]", std)
	}
}

func TestContextGenerationCounter(t *testing.T) {
	ctx := NewContext(nil)
	if ctx.Generation() != 0 {
		t.Errorf("initial generation = %d", ctx.Generation())
	}
	if g := ctx.AdvanceGeneration(); g != 1 {
		t.Errorf("AdvanceGeneration = %d, want 1", g)
	}
}

func TestContextValues(t *testing.T) {
	ctx := NewContext(nil)
	ctx.Set("runs", 5)
	v, ok := ctx.Get("runs")
	if !ok || v.(int) != 5 {
		t.Errorf("Get(runs) = %v, %v", v, ok)
	}
	if _, ok := ctx.Get("missing"); ok {
		t.Error("Get(missing) reported present")
	}
}

func TestTakePanicsOnShortStream(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Take on short stream did not panic")
		}
	}()
	Take(Source(Population{}), 1)
}

func TestUniformCrossoverPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewIndividual(Genome{1, 1, 1, 1})
	b := NewIndividual(Genome{2, 2, 2, 2})
	out := Take(Pipe(Source(Population{a, b}), UniformCrossover(rng, 0.5)), 2)
	for i := 0; i < 4; i++ {
		sum := out[0].Genome[i] + out[1].Genome[i]
		if sum != 3 {
			t.Errorf("gene %d sum = %v, want 3 (values swapped, not lost)", i, sum)
		}
	}
}

func TestEvalPoolEvaluatesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := testBounds()
	pop := RandomPopulation(rng, b, 20, 0)
	ev := EvaluatorFunc(func(_ context.Context, g Genome) (Fitness, error) {
		return Fitness{g[0], g[1] * g[1]}, nil
	})
	out := EvalPool(context.Background(), Source(pop), 20, ev, PoolConfig{Parallelism: 4, Objectives: 2})
	if len(out) != 20 {
		t.Fatalf("EvalPool returned %d individuals, want 20", len(out))
	}
	for _, ind := range out {
		if !ind.Evaluated {
			t.Error("individual not evaluated")
		}
		if ind.Fitness[0] != ind.Genome[0] {
			t.Errorf("fitness[0] = %v, want %v", ind.Fitness[0], ind.Genome[0])
		}
	}
}

func TestEvalPoolErrorGivesMaxFitness(t *testing.T) {
	pop := Population{NewIndividual(Genome{1})}
	ev := EvaluatorFunc(func(_ context.Context, _ Genome) (Fitness, error) {
		return nil, errors.New("training crashed")
	})
	out := EvalPool(context.Background(), Source(pop), 1, ev, PoolConfig{Objectives: 2})
	if !out[0].Fitness.IsFailure() {
		t.Errorf("failed evaluation fitness = %v, want MAXINT pair", out[0].Fitness)
	}
	if out[0].Err == nil {
		t.Error("error not recorded on individual")
	}
}

func TestEvalPoolPanicGivesMaxFitness(t *testing.T) {
	pop := Population{NewIndividual(Genome{1})}
	ev := EvaluatorFunc(func(_ context.Context, _ Genome) (Fitness, error) {
		panic("bad hyperparameters")
	})
	out := EvalPool(context.Background(), Source(pop), 1, ev, PoolConfig{Objectives: 2})
	if !out[0].Fitness.IsFailure() {
		t.Errorf("panicked evaluation fitness = %v, want MAXINT pair", out[0].Fitness)
	}
}

func TestEvalPoolTimeout(t *testing.T) {
	pop := Population{NewIndividual(Genome{1})}
	ev := EvaluatorFunc(func(ctx context.Context, _ Genome) (Fitness, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return Fitness{0, 0}, nil
		}
	})
	out := EvalPool(context.Background(), Source(pop), 1, ev, PoolConfig{
		Objectives: 2, Timeout: 10 * time.Millisecond,
	})
	if !out[0].Fitness.IsFailure() {
		t.Errorf("timed-out evaluation fitness = %v, want MAXINT pair", out[0].Fitness)
	}
	if !errors.Is(out[0].Err, ErrEvalTimeout) && out[0].Err == nil {
		t.Errorf("timeout error not recorded: %v", out[0].Err)
	}
}

func TestEvaluateIndividualDistinguishesCancelFromTimeout(t *testing.T) {
	blocker := EvaluatorFunc(func(ctx context.Context, _ Genome) (Fitness, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})

	// Parent cancellation (Ctrl-C / campaign abort): NOT a failure — the
	// individual stays unevaluated and carries the cancellation.
	ind := NewIndividual(Genome{1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	EvaluateIndividual(ctx, ind, blocker, time.Hour, 2)
	if ind.Evaluated {
		t.Error("cancelled individual marked evaluated")
	}
	if ind.Fitness.IsFailure() {
		t.Errorf("cancelled individual branded MAXINT failure: %v", ind.Fitness)
	}
	if !errors.Is(ind.Err, context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", ind.Err)
	}

	// Per-individual timeout with a live parent: a genuine MAXINT failure
	// tagged ErrEvalTimeout (the paper's two-hour TimeoutError, §2.2.4).
	ind2 := NewIndividual(Genome{1})
	EvaluateIndividual(context.Background(), ind2, blocker, 10*time.Millisecond, 2)
	if !ind2.Evaluated || !ind2.Fitness.IsFailure() {
		t.Errorf("timed-out individual not failed: evaluated=%v fitness=%v", ind2.Evaluated, ind2.Fitness)
	}
	if !errors.Is(ind2.Err, ErrEvalTimeout) {
		t.Errorf("Err = %v, want ErrEvalTimeout", ind2.Err)
	}
}

func TestEvalPoolCancelledCampaignNoSpuriousFailures(t *testing.T) {
	started := make(chan struct{}, 16)
	blocker := EvaluatorFunc(func(ctx context.Context, _ Genome) (Fitness, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	rng := rand.New(rand.NewSource(4))
	pop := RandomPopulation(rng, testBounds(), 8, 0)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started // at least one evaluation is in flight
		cancel()
	}()
	out := EvalPool(ctx, Source(pop), 8, blocker, PoolConfig{Parallelism: 2, Objectives: 2})
	if len(out) != 8 {
		t.Fatalf("EvalPool returned %d individuals, want 8", len(out))
	}
	for i, ind := range out {
		if ind.Fitness.IsFailure() {
			t.Errorf("individual %d branded MAXINT failure on abort (err=%v)", i, ind.Err)
		}
		if ind.Evaluated {
			t.Errorf("individual %d marked evaluated after abort", i)
		}
		if !errors.Is(ind.Err, context.Canceled) {
			t.Errorf("individual %d Err = %v, want context.Canceled", i, ind.Err)
		}
	}
}

func TestEvalPoolStopsLaunchingAfterCancel(t *testing.T) {
	var launched int64
	blocker := EvaluatorFunc(func(ctx context.Context, _ Genome) (Fitness, error) {
		atomic.AddInt64(&launched, 1)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	rng := rand.New(rand.NewSource(5))
	pop := RandomPopulation(rng, testBounds(), 20, 0)

	// Parallelism 2 and a context that is cancelled before the pool runs:
	// with the old semaphore (blind sem <- struct{}{}), the pool would
	// still drain the whole generation; now it must not launch anything.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	EvalPool(ctx, Source(pop), 20, blocker, PoolConfig{Parallelism: 2, Objectives: 2})
	if n := atomic.LoadInt64(&launched); n != 0 {
		t.Errorf("cancelled pool launched %d evaluations, want 0", n)
	}
}

func TestEvalPoolRecordsRuntime(t *testing.T) {
	pop := Population{NewIndividual(Genome{1})}
	ev := EvaluatorFunc(func(_ context.Context, _ Genome) (Fitness, error) {
		time.Sleep(5 * time.Millisecond)
		return Fitness{0, 0}, nil
	})
	out := EvalPool(context.Background(), Source(pop), 1, ev, PoolConfig{Objectives: 2})
	if out[0].Runtime < 5*time.Millisecond {
		t.Errorf("Runtime = %v, want >= 5ms", out[0].Runtime)
	}
}

func TestPopulationFailures(t *testing.T) {
	pop := Population{
		{Evaluated: true, Fitness: Fitness{1, 2}},
		{Evaluated: true, Fitness: FailureFitness(2)},
		{Evaluated: false},
	}
	if got := pop.Failures(); got != 1 {
		t.Errorf("Failures() = %d, want 1", got)
	}
	if pop.Evaluated() {
		t.Error("Evaluated() = true with unevaluated member")
	}
}

func TestQuickClampIdempotentAndInBounds(t *testing.T) {
	b := Bounds{{-3, 7}}
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		g := Genome{v}
		b.Clamp(g)
		once := g[0]
		b.Clamp(g)
		//lint:ignore floateq Clamp idempotence is a bitwise property: clamping twice must change nothing
		return g[0] == once && b.Contains(g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetBirthStampsGeneration(t *testing.T) {
	pop := Population{NewIndividual(Genome{1})}
	out := Take(Pipe(Source(pop), SetBirth(3)), 1)
	if out[0].Birth != 3 {
		t.Errorf("Birth = %d, want 3", out[0].Birth)
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	b := Bounds{{Lo: 0, Hi: 10}, {Lo: -1, Hi: 1}}
	const n = 20
	genomes := LatinHypercube(rng, b, n)
	if len(genomes) != n {
		t.Fatalf("got %d genomes", len(genomes))
	}
	// Every stratum of every gene must be hit exactly once.
	for g, iv := range b {
		seen := make([]bool, n)
		for _, genome := range genomes {
			u := (genome[g] - iv.Lo) / iv.Width()
			s := int(u * n)
			if s == n {
				s = n - 1
			}
			if s < 0 || s >= n {
				t.Fatalf("gene %d value %v outside bounds", g, genome[g])
			}
			if seen[s] {
				t.Errorf("gene %d stratum %d hit twice", g, s)
			}
			seen[s] = true
		}
	}
}

func TestLatinHypercubePopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	b := Bounds{{Lo: 0, Hi: 1}}
	pop := LatinHypercubePopulation(rng, b, 5, 3)
	if len(pop) != 5 {
		t.Fatalf("got %d individuals", len(pop))
	}
	for _, ind := range pop {
		if ind.Birth != 3 || ind.Evaluated {
			t.Error("individual metadata wrong")
		}
	}
	if LatinHypercube(rng, b, 0) != nil {
		t.Error("n=0 should return nil")
	}
}
