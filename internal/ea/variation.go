package ea

import (
	"math"
	"math/rand"
)

// This file provides the canonical real-coded NSGA-II variation operators
// — simulated binary crossover (SBX) and polynomial mutation (Deb &
// Agrawal) — which the paper *replaced* with clone + annealed isotropic
// Gaussian mutation (§2.2.3, Listing 1).  Having both allows ablation
// benchmarks comparing the paper's pipeline against the textbook one.

// SBX implements simulated binary crossover with distribution index eta.
// It pulls parents pairwise and yields both children, clipped to bounds.
func SBX(rng *rand.Rand, bounds Bounds, eta, pCross float64) Operator {
	return func(src Stream) Stream {
		var pending *Individual
		return func() (*Individual, bool) {
			if pending != nil {
				out := pending
				pending = nil
				return out, true
			}
			a, ok := src()
			if !ok {
				return nil, false
			}
			b, ok := src()
			if !ok {
				return a, true
			}
			if rng.Float64() < pCross {
				for i := range a.Genome {
					if i >= len(b.Genome) || rng.Float64() > 0.5 {
						continue
					}
					x1, x2 := a.Genome[i], b.Genome[i]
					if math.Abs(x1-x2) < 1e-14 {
						continue
					}
					u := rng.Float64()
					var beta float64
					if u <= 0.5 {
						beta = math.Pow(2*u, 1/(eta+1))
					} else {
						beta = math.Pow(1/(2*(1-u)), 1/(eta+1))
					}
					c1 := 0.5 * ((1+beta)*x1 + (1-beta)*x2)
					c2 := 0.5 * ((1-beta)*x1 + (1+beta)*x2)
					a.Genome[i] = bounds[i].Clamp(c1)
					b.Genome[i] = bounds[i].Clamp(c2)
				}
			}
			pending = b
			return a, true
		}
	}
}

// MutatePolynomial implements polynomial mutation with distribution index
// eta; each gene mutates with probability pm (commonly 1/n).
func MutatePolynomial(rng *rand.Rand, bounds Bounds, eta, pm float64) Operator {
	return func(src Stream) Stream {
		return func() (*Individual, bool) {
			ind, ok := src()
			if !ok {
				return nil, false
			}
			for i := range ind.Genome {
				if rng.Float64() >= pm {
					continue
				}
				lo, hi := bounds[i].Lo, bounds[i].Hi
				span := hi - lo
				if span <= 0 {
					continue
				}
				x := ind.Genome[i]
				d1 := (x - lo) / span
				d2 := (hi - x) / span
				u := rng.Float64()
				var dq float64
				if u < 0.5 {
					bl := 2*u + (1-2*u)*math.Pow(1-d1, eta+1)
					dq = math.Pow(bl, 1/(eta+1)) - 1
				} else {
					bl := 2*(1-u) + 2*(u-0.5)*math.Pow(1-d2, eta+1)
					dq = 1 - math.Pow(bl, 1/(eta+1))
				}
				ind.Genome[i] = bounds[i].Clamp(x + dq*span)
			}
			return ind, true
		}
	}
}
