package ea

import "sync"

// Context is run-time state shared by pipeline operators across
// generations, the analogue of LEAP's global context dictionary.  The
// paper stores the vector of Gaussian-mutation standard deviations in
// context['std'] and multiplies it by the annealing factor after each
// generation (§2.2.3).
type Context struct {
	mu         sync.Mutex
	std        []float64
	generation int
	values     map[string]interface{}
}

// NewContext creates a context with an initial mutation-σ vector.
func NewContext(std []float64) *Context {
	s := make([]float64, len(std))
	copy(s, std)
	return &Context{std: s, values: make(map[string]interface{})}
}

// Std returns a copy of the current mutation standard deviations.
func (c *Context) Std() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]float64, len(c.std))
	copy(out, c.std)
	return out
}

// SetStd replaces the mutation standard deviations.
func (c *Context) SetStd(std []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.std = make([]float64, len(std))
	copy(c.std, std)
}

// AnnealStd multiplies every standard deviation by factor, the per-
// generation annealing the paper applies with factor 0.85.
func (c *Context) AnnealStd(factor float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.std {
		c.std[i] *= factor
	}
}

// Generation returns the current generation counter.
func (c *Context) Generation() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.generation
}

// AdvanceGeneration increments the generation counter and returns the new
// value.
func (c *Context) AdvanceGeneration() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.generation++
	return c.generation
}

// Set stores an arbitrary named value, like LEAP's context dict entries.
func (c *Context) Set(key string, v interface{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.values[key] = v
}

// Get retrieves a named value and whether it was present.
func (c *Context) Get(key string) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.values[key]
	return v, ok
}
