package ea

import (
	"context"
	"testing"

	"math/rand"
)

// BenchmarkReproductionPipeline measures the paper's Listing 1 operator
// chain (random selection → clone → isotropic Gaussian mutation) at the
// 7-gene, 100-parent paper scale.
func BenchmarkReproductionPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bounds := make(Bounds, 7)
	std := make([]float64, 7)
	for i := range bounds {
		bounds[i] = Interval{Lo: 0, Hi: 1}
		std[i] = 0.0625
	}
	parents := RandomPopulation(rng, bounds, 100, 0)
	ctx := NewContext(std)
	stream := Pipe(RandomSelection(rng, parents), Clone(), MutateGaussian(rng, ctx, bounds))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := stream(); !ok {
			b.Fatal("stream ended")
		}
	}
}

func BenchmarkEvalPoolParallel(b *testing.B) {
	bounds := Bounds{{Lo: 0, Hi: 1}}
	ev := EvaluatorFunc(func(_ context.Context, g Genome) (Fitness, error) {
		return Fitness{g[0], 1 - g[0]}, nil
	})
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop := RandomPopulation(rng, bounds, 100, 0)
		EvalPool(context.Background(), Source(pop), 100, ev, PoolConfig{Parallelism: 8, Objectives: 2})
	}
}
