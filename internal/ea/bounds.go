package ea

import (
	"fmt"
	"math/rand"
)

// Interval is a closed real interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Clamp returns v clipped into the interval.
func (iv Interval) Clamp(v float64) float64 {
	if v < iv.Lo {
		return iv.Lo
	}
	if v > iv.Hi {
		return iv.Hi
	}
	return v
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Bounds holds per-gene hard bounds, used both for random initialization
// and to clip Gaussian mutation, as in LEAP's mutate_gaussian(hard_bounds=…).
type Bounds []Interval

// Validate returns an error if any interval is inverted.
func (b Bounds) Validate() error {
	for i, iv := range b {
		if iv.Lo > iv.Hi {
			return fmt.Errorf("ea: bounds[%d] inverted: [%g, %g]", i, iv.Lo, iv.Hi)
		}
	}
	return nil
}

// Sample draws a uniform random genome inside the bounds.
func (b Bounds) Sample(rng *rand.Rand) Genome {
	g := make(Genome, len(b))
	for i, iv := range b {
		g[i] = iv.Lo + rng.Float64()*iv.Width()
	}
	return g
}

// Clamp clips every gene of g into its interval, in place.
func (b Bounds) Clamp(g Genome) {
	if len(g) != len(b) {
		panic(fmt.Sprintf("ea: genome length %d != bounds length %d", len(g), len(b)))
	}
	for i := range g {
		g[i] = b[i].Clamp(g[i])
	}
}

// Contains reports whether every gene is within its interval.
func (b Bounds) Contains(g Genome) bool {
	if len(g) != len(b) {
		return false
	}
	for i := range g {
		if !b[i].Contains(g[i]) {
			return false
		}
	}
	return true
}

// RandomPopulation creates n unevaluated individuals with uniform random
// genomes, marking them as born in generation gen.
func RandomPopulation(rng *rand.Rand, b Bounds, n, gen int) Population {
	pop := make(Population, n)
	for i := range pop {
		ind := NewIndividual(b.Sample(rng))
		ind.Birth = gen
		pop[i] = ind
	}
	return pop
}
