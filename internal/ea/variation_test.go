package ea

import (
	"math"
	"math/rand"
	"testing"
)

func TestSBXChildrenWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := Bounds{{Lo: 0, Hi: 1}, {Lo: -5, Hi: 5}}
	pop := RandomPopulation(rng, b, 20, 0)
	out := Take(Pipe(Source(pop), Clone(), SBX(rng, b, 15, 0.9)), 20)
	for _, ind := range out {
		if !b.Contains(ind.Genome) {
			t.Errorf("SBX child %v escapes bounds", ind.Genome)
		}
	}
}

func TestSBXPreservesMean(t *testing.T) {
	// SBX children are symmetric around the parent mean per gene.
	rng := rand.New(rand.NewSource(2))
	b := Bounds{{Lo: -100, Hi: 100}}
	a := NewIndividual(Genome{2})
	c := NewIndividual(Genome{8})
	out := Take(Pipe(Source(Population{a, c}), SBX(rng, b, 10, 1.0)), 2)
	sum := out[0].Genome[0] + out[1].Genome[0]
	if math.Abs(sum-10) > 1e-9 {
		t.Errorf("children sum %v, want 10 (mean-preserving, unclipped)", sum)
	}
}

func TestSBXOddStreamPassesThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := Bounds{{Lo: 0, Hi: 1}}
	single := NewIndividual(Genome{0.5})
	stream := Pipe(Source(Population{single}), SBX(rng, b, 15, 1.0))
	ind, ok := stream()
	if !ok || ind.Genome[0] != 0.5 {
		t.Error("trailing individual not passed through")
	}
	if _, ok := stream(); ok {
		t.Error("stream did not end")
	}
}

func TestMutatePolynomialWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := Bounds{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 6}}
	pop := RandomPopulation(rng, b, 50, 0)
	out := Take(Pipe(Source(pop), Clone(), MutatePolynomial(rng, b, 20, 1.0)), 50)
	for _, ind := range out {
		if !b.Contains(ind.Genome) {
			t.Errorf("polynomial mutant %v escapes bounds", ind.Genome)
		}
	}
}

func TestMutatePolynomialRespectRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := Bounds{{Lo: 0, Hi: 1}}
	changed := 0
	const n = 2000
	for i := 0; i < n; i++ {
		ind := NewIndividual(Genome{0.5})
		out := Take(Pipe(Source(Population{ind}), MutatePolynomial(rng, b, 20, 0.3)), 1)
		if out[0].Genome[0] != 0.5 {
			changed++
		}
	}
	rate := float64(changed) / n
	if rate < 0.2 || rate > 0.4 {
		t.Errorf("mutation rate %v, want ≈0.3", rate)
	}
}

func TestMutatePolynomialDegenerateInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := Bounds{{Lo: 1, Hi: 1}}
	ind := NewIndividual(Genome{1})
	out := Take(Pipe(Source(Population{ind}), MutatePolynomial(rng, b, 20, 1.0)), 1)
	if out[0].Genome[0] != 1 {
		t.Errorf("degenerate interval mutated: %v", out[0].Genome[0])
	}
}
