// Package ea is a small evolutionary-computation framework modeled on the
// LEAP library the paper built its experiments with (§2.1.4, §2.2.3).
//
// It provides real-valued genomes, individuals with multiobjective
// fitnesses, a pull-based reproduction-operator pipeline (random parent
// selection, cloning, isotropic Gaussian mutation with hard bounds), and a
// parallel evaluation pool with the paper's failure semantics: any
// evaluation that errors or times out receives MAXINT on every objective so
// that non-dominated sorting remains well defined (§2.2.4).
package ea

import (
	"fmt"
	"math"
	"time"

	"repro/internal/uuid"
)

// MaxFitness is the fitness assigned to every objective of a failed
// evaluation.  The paper uses MAXINT rather than NaN because sorting NaNs
// is undefined behaviour in NSGA-II's rank ordering (§2.2.4); float64 can
// represent 2^63 exactly, so comparisons behave exactly like the integer.
const MaxFitness = float64(math.MaxInt64)

// Genome is a real-valued genome vector.  Categorical genes are encoded as
// floats and decoded with floor-modulus lookup at evaluation time, exactly
// as the paper's LEAP decoder does (§2.2.2).
type Genome []float64

// Clone returns an independent copy of the genome.
func (g Genome) Clone() Genome {
	out := make(Genome, len(g))
	copy(out, g)
	return out
}

// Fitness is a vector of objective values, all minimized.
type Fitness []float64

// Clone returns an independent copy of the fitness vector.
func (f Fitness) Clone() Fitness {
	out := make(Fitness, len(f))
	copy(out, f)
	return out
}

// IsFailure reports whether the fitness marks a failed evaluation (every
// objective at MaxFitness).
func (f Fitness) IsFailure() bool {
	if len(f) == 0 {
		return false
	}
	for _, v := range f {
		if v != MaxFitness {
			return false
		}
	}
	return true
}

// FailureFitness builds a fitness of n objectives all set to MaxFitness.
func FailureFitness(n int) Fitness {
	f := make(Fitness, n)
	for i := range f {
		f[i] = MaxFitness
	}
	return f
}

// Individual is one member of a population.  Rank and Distance are filled
// in by NSGA-II's non-dominated sorting and crowding-distance operators.
type Individual struct {
	ID        uuid.UUID     // assigned at creation, names the training sandbox dir
	Genome    Genome        // real-valued genotype
	Fitness   Fitness       // objective values; valid only if Evaluated
	Evaluated bool          // whether Fitness has been assigned
	Err       error         // evaluation error, if the evaluation failed
	Runtime   time.Duration // wall-clock duration of the evaluation
	Rank      int           // Pareto front index, 0 is the best front
	Distance  float64       // crowding distance within its front
	Birth     int           // generation at which this individual was created
}

// NewIndividual wraps a genome in a fresh, unevaluated individual with a
// newly assigned UUID.
func NewIndividual(g Genome) *Individual {
	return &Individual{ID: uuid.New(), Genome: g}
}

// Clone copies the individual, assigning a new UUID and clearing the
// evaluation state, mirroring LEAP's clone operator: offspring must be
// re-evaluated even when the genome is identical.
func (ind *Individual) Clone() *Individual {
	return &Individual{
		ID:     uuid.New(),
		Genome: ind.Genome.Clone(),
		Birth:  ind.Birth,
	}
}

// String renders a compact human-readable description.
func (ind *Individual) String() string {
	return fmt.Sprintf("Individual{%s gen=%d fitness=%v rank=%d}", ind.ID, ind.Birth, ind.Fitness, ind.Rank)
}

// Population is an ordered collection of individuals.
type Population []*Individual

// Clone deep-copies the population structure (individuals are shared).
func (p Population) Clone() Population {
	out := make(Population, len(p))
	copy(out, p)
	return out
}

// Evaluated reports whether every member has a fitness.
func (p Population) Evaluated() bool {
	for _, ind := range p {
		if !ind.Evaluated {
			return false
		}
	}
	return true
}

// Failures counts members whose evaluation failed.
func (p Population) Failures() int {
	n := 0
	for _, ind := range p {
		if ind.Evaluated && ind.Fitness.IsFailure() {
			n++
		}
	}
	return n
}
