package ea

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGenomeKeyExactBits(t *testing.T) {
	a := Genome{1.0, 2.0}
	b := Genome{1.0, 2.0}
	if GenomeKey(a) != GenomeKey(b) {
		t.Fatal("identical genomes must share a key")
	}
	c := Genome{1.0, 2.0000000000000004}
	if GenomeKey(a) == GenomeKey(c) {
		t.Fatal("nearby genomes must not collide")
	}
	if GenomeKey(Genome{0.0}) == GenomeKey(Genome{math.Copysign(0, -1)}) {
		t.Fatal("+0 and -0 differ in bits and must differ in key")
	}
}

func TestMemoEvaluatorCachesDuplicates(t *testing.T) {
	var calls int32
	inner := EvaluatorFunc(func(ctx context.Context, g Genome) (Fitness, error) {
		atomic.AddInt32(&calls, 1)
		return Fitness{g[0] * 2, g[0] * 3}, nil
	})
	m := NewMemoEvaluator(inner)
	ctx := context.Background()

	f1, err := m.Evaluate(ctx, Genome{1.5})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.Evaluate(ctx, Genome{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if f1[0] != f2[0] || f1[1] != f2[1] {
		t.Fatalf("cached fitness mismatch: %v vs %v", f1, f2)
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("inner evaluator ran %d times, want 1", n)
	}
	// The cached copy must be defensive: mutating one result must not
	// corrupt the cache.
	f2[0] = -1
	f3, _ := m.Evaluate(ctx, Genome{1.5})
	if f3[0] != 3.0 {
		t.Fatalf("cache corrupted by caller mutation: %v", f3)
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 2 hits, 1 entry", st)
	}
}

func TestMemoEvaluatorDoesNotCacheFailures(t *testing.T) {
	var calls int32
	boom := errors.New("boom")
	inner := EvaluatorFunc(func(ctx context.Context, g Genome) (Fitness, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			return nil, boom
		}
		return Fitness{42}, nil
	})
	m := NewMemoEvaluator(inner)
	ctx := context.Background()

	if _, err := m.Evaluate(ctx, Genome{7}); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	fit, err := m.Evaluate(ctx, Genome{7})
	if err != nil || fit[0] != 42 {
		t.Fatalf("retry after failure: fit=%v err=%v", fit, err)
	}
	if n := atomic.LoadInt32(&calls); n != 2 {
		t.Fatalf("inner ran %d times, want 2 (failure not cached)", n)
	}
}

func TestMemoEvaluatorCoalescesConcurrentDuplicates(t *testing.T) {
	var calls int32
	release := make(chan struct{})
	inner := EvaluatorFunc(func(ctx context.Context, g Genome) (Fitness, error) {
		atomic.AddInt32(&calls, 1)
		<-release
		return Fitness{g[0]}, nil
	})
	m := NewMemoEvaluator(inner)
	ctx := context.Background()

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	fits := make([]Fitness, workers)
	started := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			started <- struct{}{}
			fits[w], errs[w] = m.Evaluate(ctx, Genome{9})
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-started
	}
	close(release)
	wg.Wait()

	for w := 0; w < workers; w++ {
		if errs[w] != nil || fits[w][0] != 9 {
			t.Fatalf("worker %d: fit=%v err=%v", w, fits[w], errs[w])
		}
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("inner ran %d times under contention, want 1", n)
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits != workers-1 {
		t.Fatalf("stats = %+v, want 1 miss, %d hits", st, workers-1)
	}
}

func TestMemoEvaluatorWaiterHonorsCancellation(t *testing.T) {
	release := make(chan struct{})
	inner := EvaluatorFunc(func(ctx context.Context, g Genome) (Fitness, error) {
		<-release
		return Fitness{1}, nil
	})
	m := NewMemoEvaluator(inner)

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if _, err := m.Evaluate(context.Background(), Genome{3}); err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	// Wait until the leader has published its in-flight entry.
	for {
		if m.Stats().Misses == 1 {
			break
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Evaluate(ctx, Genome{3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter: want context.Canceled, got %v", err)
	}
	close(release)
	<-leaderDone
}

// TestMemoEvaluatorLeaderPanicReleasesWaiters is the regression test for
// the leaked-waiter bug: a leader that panicked between publishing its
// in-flight entry and closing done left the entry in the map forever, so
// every later Evaluate of that genome blocked on a channel nobody would
// close.  The leader must unpublish on panic so waiters re-compete.
func TestMemoEvaluatorLeaderPanicReleasesWaiters(t *testing.T) {
	var calls int32
	var m *MemoEvaluator
	inner := EvaluatorFunc(func(ctx context.Context, g Genome) (Fitness, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			// First leader: wait until a waiter has piggybacked on the
			// in-flight entry, then die in the publish→close(done) gap.
			for m.Stats().Hits == 0 {
				runtime.Gosched()
			}
			panic("simulated evaluator crash")
		}
		return Fitness{g[0] * 2}, nil
	})
	m = NewMemoEvaluator(inner)

	leaderPanic := make(chan interface{}, 1)
	go func() {
		defer func() { leaderPanic <- recover() }()
		_, _ = m.Evaluate(context.Background(), Genome{7})
	}()
	// Wait until the leader has published its in-flight entry, so the
	// next Evaluate is deterministically a waiter, not a second leader.
	for m.Stats().Misses == 0 {
		runtime.Gosched()
	}

	type res struct {
		fit Fitness
		err error
	}
	// Waiter with no deadline: pre-fix it blocks forever on the leaked
	// entry; post-fix it re-competes, leads, and succeeds.
	waiter := make(chan res, 1)
	go func() {
		fit, err := m.Evaluate(context.Background(), Genome{7})
		waiter <- res{fit, err}
	}()

	select {
	case r := <-waiter:
		if r.err != nil {
			t.Fatalf("waiter after leader panic: %v", r.err)
		}
		if len(r.fit) != 1 || r.fit[0] != 14 {
			t.Fatalf("waiter fitness = %v, want [14]", r.fit)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter still blocked after leader panic: in-flight entry leaked")
	}
	if p := <-leaderPanic; p == nil {
		t.Fatal("leader did not panic (test harness broken)")
	}
	// The re-competed leader's success must be cached and servable.
	fit, err := m.Evaluate(context.Background(), Genome{7})
	if err != nil || fit[0] != 14 {
		t.Fatalf("post-recovery lookup: %v, %v", fit, err)
	}
	if st := m.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (no leaked in-flight entry)", st.Entries)
	}
}

func TestMemoEvaluatorDistinctGenomesMiss(t *testing.T) {
	var calls int32
	inner := EvaluatorFunc(func(ctx context.Context, g Genome) (Fitness, error) {
		atomic.AddInt32(&calls, 1)
		return Fitness{g[0]}, nil
	})
	m := NewMemoEvaluator(inner)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := m.Evaluate(ctx, Genome{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := atomic.LoadInt32(&calls); n != 5 {
		t.Fatalf("inner ran %d times, want 5", n)
	}
	st := m.Stats()
	if st.Hits != 0 || st.Misses != 5 || st.Entries != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func ExampleMemoEvaluator() {
	inner := EvaluatorFunc(func(ctx context.Context, g Genome) (Fitness, error) {
		return Fitness{g[0] * g[0]}, nil
	})
	m := NewMemoEvaluator(inner)
	ctx := context.Background()
	m.Evaluate(ctx, Genome{2})
	m.Evaluate(ctx, Genome{2}) // served from cache
	st := m.Stats()
	fmt.Println(st.Hits, st.Misses, st.Entries)
	// Output: 1 1 1
}
