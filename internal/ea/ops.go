package ea

import (
	"math/rand"
)

// Stream is a pull-based, possibly infinite sequence of individuals: the Go
// rendering of LEAP's generator-function operator pipeline (§2.2.3,
// Listing 1).  Each call yields the next individual; ok=false means the
// stream is exhausted (finite sources only).
type Stream func() (ind *Individual, ok bool)

// Operator transforms a stream into another stream, so reproduction
// pipelines compose exactly like LEAP's toolz.pipe chain.
type Operator func(Stream) Stream

// Pipe threads a source stream through a sequence of operators.
func Pipe(src Stream, ops ...Operator) Stream {
	for _, op := range ops {
		src = op(src)
	}
	return src
}

// Source yields the population's members in order, then ends.
func Source(pop Population) Stream {
	i := 0
	return func() (*Individual, bool) {
		if i >= len(pop) {
			return nil, false
		}
		ind := pop[i]
		i++
		return ind, true
	}
}

// RandomSelection yields uniformly random members of pop forever, the
// parent-selection scheme in the paper's pipeline (ops.random_selection).
func RandomSelection(rng *rand.Rand, pop Population) Stream {
	if len(pop) == 0 {
		return func() (*Individual, bool) { return nil, false }
	}
	return func() (*Individual, bool) {
		return pop[rng.Intn(len(pop))], true
	}
}

// Clone is the ops.clone operator: every pulled individual is copied with a
// fresh UUID and cleared fitness, so mutation never aliases a parent.
func Clone() Operator {
	return func(src Stream) Stream {
		return func() (*Individual, bool) {
			ind, ok := src()
			if !ok {
				return nil, false
			}
			return ind.Clone(), true
		}
	}
}

// MutateGaussian applies isotropic Gaussian mutation — every gene is
// perturbed, matching expected_num_mutations='isotropic' in Listing 1 —
// with per-gene standard deviation read from the context at pull time (so
// annealing between generations is observed) and results clipped to hard
// bounds.
func MutateGaussian(rng *rand.Rand, ctx *Context, bounds Bounds) Operator {
	return func(src Stream) Stream {
		return func() (*Individual, bool) {
			ind, ok := src()
			if !ok {
				return nil, false
			}
			std := ctx.Std()
			for i := range ind.Genome {
				ind.Genome[i] += rng.NormFloat64() * std[i]
				ind.Genome[i] = bounds[i].Clamp(ind.Genome[i])
			}
			return ind, true
		}
	}
}

// MutatePerGene mutates each gene independently with probability p, the
// non-isotropic alternative kept for ablation studies.
func MutatePerGene(rng *rand.Rand, ctx *Context, bounds Bounds, p float64) Operator {
	return func(src Stream) Stream {
		return func() (*Individual, bool) {
			ind, ok := src()
			if !ok {
				return nil, false
			}
			std := ctx.Std()
			for i := range ind.Genome {
				if rng.Float64() < p {
					ind.Genome[i] += rng.NormFloat64() * std[i]
					ind.Genome[i] = bounds[i].Clamp(ind.Genome[i])
				}
			}
			return ind, true
		}
	}
}

// UniformCrossover pairs consecutive pulls and swaps each gene with
// probability pSwap, yielding both children.  Not used in the paper's
// mutation-only pipeline but provided for ablation benchmarks.
func UniformCrossover(rng *rand.Rand, pSwap float64) Operator {
	return func(src Stream) Stream {
		var pending *Individual
		return func() (*Individual, bool) {
			if pending != nil {
				out := pending
				pending = nil
				return out, true
			}
			a, ok := src()
			if !ok {
				return nil, false
			}
			b, ok := src()
			if !ok {
				return a, true // odd trailing individual passes through
			}
			for i := range a.Genome {
				if i < len(b.Genome) && rng.Float64() < pSwap {
					a.Genome[i], b.Genome[i] = b.Genome[i], a.Genome[i]
				}
			}
			pending = b
			return a, true
		}
	}
}

// Take pulls exactly n individuals from the stream.  It panics if the
// stream ends early, which indicates a misconfigured pipeline.
func Take(src Stream, n int) Population {
	out := make(Population, 0, n)
	for len(out) < n {
		ind, ok := src()
		if !ok {
			panic("ea: stream exhausted before yielding requested count")
		}
		out = append(out, ind)
	}
	return out
}

// SetBirth stamps each pulled individual with the given birth generation.
func SetBirth(gen int) Operator {
	return func(src Stream) Stream {
		return func() (*Individual, bool) {
			ind, ok := src()
			if !ok {
				return nil, false
			}
			ind.Birth = gen
			return ind, true
		}
	}
}
