package ea

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Evaluator computes the multiobjective fitness of a genome.  Evaluations
// may be expensive (the paper's were two-hour DeePMD trainings), so the
// context carries cancellation and deadlines.
type Evaluator interface {
	Evaluate(ctx context.Context, g Genome) (Fitness, error)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(ctx context.Context, g Genome) (Fitness, error)

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(ctx context.Context, g Genome) (Fitness, error) {
	return f(ctx, g)
}

// ErrEvalTimeout marks an evaluation killed by the per-individual time
// limit, the analogue of the paper's two-hour subprocess TimeoutError.
var ErrEvalTimeout = errors.New("ea: evaluation timed out")

// clock is the package's single sanctioned wall-clock source, feeding
// only the Runtime telemetry field — which is display/persist metadata
// and never flows into fitness, selection or any campaign artifact.
// Keeping it behind a variable lets tests freeze time.
//
//lint:ignore determinism Runtime is wall-clock telemetry only; it never feeds fitness or selection
var clock = time.Now

// PoolConfig configures the parallel evaluation pool.
type PoolConfig struct {
	// Parallelism is the number of concurrent evaluations, the analogue of
	// the number of Summit nodes running Dask workers (100 in the paper).
	Parallelism int
	// Timeout, if positive, is the per-evaluation wall-clock limit (the
	// paper's limit was two hours).  Evaluations that exceed it are failed.
	Timeout time.Duration
	// Objectives is the fitness dimension, needed to build MAXINT failure
	// fitnesses (2 in the paper: energy and force loss).
	Objectives int
}

// EvalPool pulls n individuals from the stream and evaluates them
// concurrently, the analogue of LEAP's eval_pool(client=…, size=…).
// Failed or timed-out individuals receive MaxFitness on every objective
// rather than an error fitness, per §2.2.4, so that downstream
// non-dominated sorting remains total.  The returned slice preserves pull
// order.
//
// Cancelling ctx aborts the campaign, not the individuals: evaluations
// not yet launched stay unevaluated (Evaluated == false, Err records the
// cancellation) instead of being branded MAXINT failures, and no new
// evaluations are started once ctx is done.  Callers observe the abort
// via ctx.Err(), mirroring how nsga2.Run discards the partial generation.
func EvalPool(ctx context.Context, src Stream, n int, ev Evaluator, cfg PoolConfig) Population {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.Objectives <= 0 {
		cfg.Objectives = 2
	}
	inds := Take(src, n)

	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup
	for _, ind := range inds {
		if ctx.Err() != nil {
			// Campaign aborted: stop launching, leave the rest unevaluated.
			ind.Err = ctx.Err()
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			ind.Err = ctx.Err()
			continue
		}
		wg.Add(1)
		go func(ind *Individual) {
			defer wg.Done()
			defer func() { <-sem }()
			EvaluateIndividual(ctx, ind, ev, cfg.Timeout, cfg.Objectives)
		}(ind)
	}
	wg.Wait()
	return inds
}

// EvaluateIndividual runs one evaluation with timeout and panic recovery,
// recording fitness, runtime and error on the individual.  Any failure —
// error return, per-individual timeout, or panic inside the evaluator
// (the paper saw hyperparameter combinations that crashed training
// outright) — yields the MAXINT failure fitness.
//
// Cancellation of the parent ctx (Ctrl-C, campaign abort) is NOT a
// failure of the individual: the individual is left unevaluated with the
// cancellation recorded in Err, so an aborted campaign never fabricates
// MAXINT "timed out" results for work it chose not to finish.
func EvaluateIndividual(ctx context.Context, ind *Individual, ev Evaluator, timeout time.Duration, objectives int) {
	evalCtx := ctx
	var cancel context.CancelFunc
	if timeout > 0 {
		evalCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := clock()
	fit, err := safeEvaluate(evalCtx, ind.Genome, ev)
	ind.Runtime = clock().Sub(start)

	if err == nil && evalCtx.Err() != nil {
		// The evaluator returned success after its context ended; classify
		// by cause instead of calling every cancellation a timeout.
		err = evalCtx.Err()
	}
	if err != nil {
		if ctx.Err() != nil {
			// Campaign-level abort: propagate, don't record a failure.
			ind.Err = ctx.Err()
			return
		}
		if errors.Is(err, context.DeadlineExceeded) {
			// evalCtx's own deadline: the per-individual limit (the
			// paper's two-hour cap) — a genuine MAXINT failure.
			err = fmt.Errorf("%w: %v", ErrEvalTimeout, err)
		}
		ind.Fitness = FailureFitness(objectives)
		ind.Err = err
	} else {
		ind.Fitness = fit
		ind.Err = nil
	}
	ind.Evaluated = true
}

// safeEvaluate converts evaluator panics into errors so one pathological
// hyperparameter combination cannot take down the whole campaign.
func safeEvaluate(ctx context.Context, g Genome, ev Evaluator) (fit Fitness, err error) {
	defer func() {
		if r := recover(); r != nil {
			fit = nil
			err = fmt.Errorf("ea: evaluation panic: %v", r)
		}
	}()
	return ev.Evaluate(ctx, g)
}
