package ea

import "math/rand"

// LatinHypercube draws n genomes with Latin-hypercube sampling: each
// gene's range is divided into n equal strata and every stratum is hit
// exactly once, giving far more even marginal coverage than uniform
// sampling.  HPO campaigns commonly seed generation 0 this way; an
// ablation can compare it against the paper's uniform initialization
// (Table 1).
func LatinHypercube(rng *rand.Rand, b Bounds, n int) []Genome {
	if n <= 0 {
		return nil
	}
	genomes := make([]Genome, n)
	for i := range genomes {
		genomes[i] = make(Genome, len(b))
	}
	for g, iv := range b {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			stratum := float64(perm[i])
			u := (stratum + rng.Float64()) / float64(n)
			genomes[i][g] = iv.Lo + u*iv.Width()
		}
	}
	return genomes
}

// LatinHypercubePopulation wraps LatinHypercube into unevaluated
// individuals born at generation gen.
func LatinHypercubePopulation(rng *rand.Rand, b Bounds, n, gen int) Population {
	genomes := LatinHypercube(rng, b, n)
	pop := make(Population, n)
	for i, g := range genomes {
		ind := NewIndividual(g)
		ind.Birth = gen
		pop[i] = ind
	}
	return pop
}
