package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// backoff produces exponentially growing delays with jitter, used by
// workers and clients to re-dial the scheduler after a connection loss.
// Jitter keeps a hundred workers that lost the same scheduler from
// re-dialing in lockstep when it comes back — the reconnect stampede is
// the distributed analogue of the paper's "let workers fail, reassign
// work" stance (§2.2.5): failure is routine, so recovery must be cheap.
type backoff struct {
	initial time.Duration // first delay (default 50ms)
	max     time.Duration // delay ceiling (default 5s)
	factor  float64       // growth per attempt (default 2)

	mu   sync.Mutex
	cur  time.Duration
	rng  *rand.Rand
	seed int64
}

func newBackoff(initial, max time.Duration) *backoff {
	if initial <= 0 {
		initial = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if max < initial {
		max = initial
	}
	return &backoff{initial: initial, max: max, factor: 2}
}

// next returns the delay to sleep before the upcoming attempt and
// advances the schedule.  The returned delay is the current base plus up
// to 50% jitter, capped at max.
func (b *backoff) next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rng == nil {
		seed := b.seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		b.rng = rand.New(rand.NewSource(seed))
	}
	if b.cur == 0 {
		b.cur = b.initial
	}
	d := b.cur
	jitter := time.Duration(b.rng.Int63n(int64(d)/2 + 1))
	b.cur = time.Duration(float64(b.cur) * b.factor)
	if b.cur > b.max {
		b.cur = b.max
	}
	if d+jitter > b.max {
		return b.max
	}
	return d + jitter
}

// reset returns the schedule to the initial delay after a successful
// connection.
func (b *backoff) reset() {
	b.mu.Lock()
	b.cur = 0
	b.mu.Unlock()
}
