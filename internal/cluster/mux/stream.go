package mux

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/cluster/wire"
)

// Stream is one logical connection inside a Session.  It implements
// net.Conn, so the cluster layers treat it exactly like a dialed or
// accepted TCP connection.  Deadlines are no-ops: the cluster protocol
// never sets them (liveness is heartbeat-driven), and a per-stream
// deadline has no faithful mapping onto a shared physical socket.
type Stream struct {
	sess *Session
	id   uint32
	idb  [4]byte // wire-format id, staged by reference on every frame

	mu    sync.Mutex
	rcond sync.Cond // readers wait for data / close / failure
	wcond sync.Cond // writers wait for send credit
	// rbuf[roff:] is the undelivered receive data; occupancy is bounded
	// by Window as long as the peer honors flow control.
	rbuf []byte
	roff int
	// consumed accumulates drained bytes until a window grant is owed.
	consumed int
	// sendWin is the remaining send credit in bytes.
	sendWin      int
	localClosed  bool
	remoteClosed bool
	dead         error
}

func newStream(s *Session, id uint32) *Stream {
	st := &Stream{sess: s, id: id, sendWin: Window}
	putStreamID(&st.idb, id)
	st.rcond.L = &st.mu
	st.wcond.L = &st.mu
	return st
}

// ID returns the stream's id within its session.
func (st *Stream) ID() uint32 { return st.id }

// deliver appends one data chunk from the session read loop.  A chunk
// that would overrun the flow-control window is a protocol violation
// and fails the session.
//
//lint:hot
func (st *Stream) deliver(p []byte) error {
	st.mu.Lock()
	if st.localClosed {
		// Data raced our close; the peer will see the MuxClose shortly.
		st.mu.Unlock()
		return nil
	}
	if len(st.rbuf)-st.roff+len(p) > Window {
		st.mu.Unlock()
		return fmt.Errorf("%w: stream %d receive window overrun", ErrProtocol, st.id)
	}
	if st.roff > 0 && len(st.rbuf)+len(p) > cap(st.rbuf) {
		// Compact before the append would grow the buffer, so capacity
		// converges to ~Window and stays there.
		n := copy(st.rbuf, st.rbuf[st.roff:])
		st.rbuf = st.rbuf[:n]
		st.roff = 0
	}
	st.rbuf = append(st.rbuf, p...)
	st.mu.Unlock()
	st.rcond.Signal()
	return nil
}

// grant adds send credit from a peer MuxWindow frame.
func (st *Stream) grant(n uint64) {
	st.mu.Lock()
	st.sendWin += int(n)
	st.mu.Unlock()
	st.wcond.Broadcast()
}

// closeRemote marks the peer's end closed: reads drain the buffer then
// return io.EOF; blocked writers wake and fail.
func (st *Stream) closeRemote() {
	st.mu.Lock()
	st.remoteClosed = true
	st.mu.Unlock()
	st.rcond.Broadcast()
	st.wcond.Broadcast()
}

// fail marks the stream dead with the session's error.
func (st *Stream) fail(err error) {
	st.mu.Lock()
	if st.dead == nil {
		st.dead = err
	}
	st.mu.Unlock()
	st.rcond.Broadcast()
	st.wcond.Broadcast()
}

// Read implements net.Conn.
//
//lint:hot
func (st *Stream) Read(p []byte) (int, error) {
	st.mu.Lock()
	for st.roff == len(st.rbuf) && st.dead == nil && !st.remoteClosed && !st.localClosed {
		st.rcond.Wait()
	}
	if st.roff < len(st.rbuf) {
		n := copy(p, st.rbuf[st.roff:])
		st.roff += n
		st.consumed += n
		grant := 0
		if st.consumed >= Window/2 {
			grant = st.consumed
			st.consumed = 0
		}
		st.mu.Unlock()
		if grant > 0 {
			// Best-effort: if staging fails the session is failing and
			// the next Read reports it.
			//lint:ignore errdiscard best-effort credit return; a staging failure means the session is already dead and the next Read reports it
			st.sess.stage(wire.TypeMuxWindow, &st.idb, nil, uint64(grant))
		}
		return n, nil
	}
	err := st.dead
	if st.localClosed {
		err = ErrStreamClosed
	} else if err == nil {
		err = io.EOF
	}
	st.mu.Unlock()
	return 0, err
}

// Write implements net.Conn.  Large writes are chunked so many streams
// interleave fairly on the shared session, and each chunk spends send
// credit; at zero credit the writer blocks until the peer grants more.
//
//lint:hot
func (st *Stream) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		st.mu.Lock()
		for st.sendWin <= 0 && st.dead == nil && !st.localClosed && !st.remoteClosed {
			st.wcond.Wait()
		}
		if st.dead != nil || st.localClosed || st.remoteClosed {
			err := st.dead
			if err == nil {
				err = ErrStreamClosed
			}
			st.mu.Unlock()
			return total, err
		}
		chunk := min(min(len(p), maxChunk), st.sendWin)
		st.sendWin -= chunk
		st.mu.Unlock()
		if err := st.sess.stage(wire.TypeMuxData, &st.idb, p[:chunk], 0); err != nil {
			return total, err
		}
		total += chunk
		p = p[chunk:]
	}
	return total, nil
}

// Close implements net.Conn: it closes the stream in both directions
// (the cluster protocol ends conversations by teardown, so there is no
// half-close).  Idempotent.
func (st *Stream) Close() error {
	st.mu.Lock()
	if st.localClosed {
		st.mu.Unlock()
		return nil
	}
	st.localClosed = true
	st.mu.Unlock()
	st.rcond.Broadcast()
	st.wcond.Broadcast()
	if st.sess.drop(st.id) != nil {
		//lint:ignore errdiscard best-effort close notification; if staging fails the session teardown already reaches the peer
		st.sess.stage(wire.TypeMuxClose, &st.idb, nil, 0)
	}
	return nil
}

// LocalAddr implements net.Conn with the physical connection's address.
func (st *Stream) LocalAddr() net.Addr { return st.sess.conn.LocalAddr() }

// RemoteAddr implements net.Conn with the physical connection's address.
func (st *Stream) RemoteAddr() net.Addr { return st.sess.conn.RemoteAddr() }

// SetDeadline implements net.Conn as a no-op (see type doc).
func (st *Stream) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn as a no-op.
func (st *Stream) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn as a no-op.
func (st *Stream) SetWriteDeadline(time.Time) error { return nil }
