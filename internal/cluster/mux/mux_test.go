package mux

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster/wire"
)

// pipePair builds a client/server session pair over an in-memory duplex.
func pipePair(t *testing.T, opt Options) (*Session, *Session) {
	t.Helper()
	cc, sc := net.Pipe()
	client := Client(cc, opt)
	server := Server(sc, sc, opt)
	t.Cleanup(func() {
		client.Close()
		server.Close()
	})
	return client, server
}

// accept pulls one stream with a timeout so a broken test fails instead
// of hanging.
func accept(t *testing.T, s *Session) *Stream {
	t.Helper()
	type res struct {
		st  *Stream
		err error
	}
	ch := make(chan res, 1)
	go func() {
		st, err := s.Accept()
		ch <- res{st, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("accept: %v", r.err)
		}
		return r.st
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	return nil
}

// TestStreamRoundTrip opens a stream, sends data both ways and verifies
// close semantics: the peer drains buffered data and then sees io.EOF.
func TestStreamRoundTrip(t *testing.T) {
	client, server := pipePair(t, Options{})
	cs, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	ss := accept(t, server)

	if _, err := cs.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := ss.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("server read = %q, %v", buf[:n], err)
	}
	if _, err := ss.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	n, err = cs.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("client read = %q, %v", buf[:n], err)
	}

	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("read after peer close = %v, want io.EOF", err)
	}
	if _, err := cs.Write([]byte("x")); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("write after local close = %v, want ErrStreamClosed", err)
	}
}

// TestManyStreamsInterleaved runs many concurrent echo streams over one
// session and checks every stream gets exactly its own bytes back.
func TestManyStreamsInterleaved(t *testing.T) {
	client, server := pipePair(t, Options{Coalesce: 200 * time.Microsecond})
	go func() {
		for {
			st, err := server.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 8<<10)
				for {
					n, err := st.Read(buf)
					if n > 0 {
						if _, werr := st.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()

	const streams = 16
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			st, err := client.Open()
			if err != nil {
				errs <- err
				return
			}
			defer st.Close()
			msg := bytes.Repeat([]byte{seed}, 40<<10) // > Window: exercises credit refill
			go func() {
				if _, err := st.Write(msg); err != nil {
					errs <- err
				}
			}()
			got := make([]byte, 0, len(msg))
			buf := make([]byte, 4<<10)
			for len(got) < len(msg) {
				n, err := st.Read(buf)
				got = append(got, buf[:n]...)
				if err != nil {
					errs <- err
					return
				}
			}
			if !bytes.Equal(got, msg) {
				errs <- errors.New("echo corrupted stream payload")
			}
		}(byte(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := client.ctrs.Stats(); st.Streams != streams {
		t.Errorf("client counted %d streams, want %d", st.Streams, streams)
	}
}

// TestSlowStreamDoesNotBlockPeers pins the head-of-line property the
// flow-control windows exist for: a stream whose reader never drains
// stalls its own writer at the window, while a sibling stream on the
// same session keeps flowing.
func TestSlowStreamDoesNotBlockPeers(t *testing.T) {
	client, server := pipePair(t, Options{})
	slow, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	serverSlow := accept(t, server)
	_ = serverSlow // never read: its window fills and stays full
	fast, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	serverFast := accept(t, server)

	// Saturate the slow stream from a goroutine; it must block at the
	// window, not error.
	slowDone := make(chan error, 1)
	go func() {
		_, err := slow.Write(bytes.Repeat([]byte{0xAA}, Window+1))
		slowDone <- err
	}()

	// The fast stream still round-trips while the slow one is wedged.
	go func() {
		buf := make([]byte, 1<<10)
		for {
			n, err := serverFast.Read(buf)
			if n > 0 {
				if _, werr := serverFast.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := fast.Write([]byte("still moving")); err != nil {
			t.Fatalf("fast write %d: %v", i, err)
		}
		buf := make([]byte, 64)
		if _, err := fast.Read(buf); err != nil {
			t.Fatalf("fast read %d: %v", i, err)
		}
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow write finished (%v); it should still be blocked on the window", err)
	default:
	}
	// Drain the slow stream; its writer must now complete.
	go func() {
		buf := make([]byte, 8<<10)
		for {
			if _, err := serverSlow.Read(buf); err != nil {
				return
			}
		}
	}()
	select {
	case err := <-slowDone:
		if err != nil {
			t.Fatalf("slow write after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow write never completed after the peer drained")
	}
}

// TestSessionCloseFailsAllStreams checks the blast radius of losing the
// physical connection: every stream on it dies, with the session error.
func TestSessionCloseFailsAllStreams(t *testing.T) {
	client, server := pipePair(t, Options{})
	var streams []*Stream
	for i := 0; i < 3; i++ {
		st, err := client.Open()
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, st)
		accept(t, server)
	}
	client.Close()
	for i, st := range streams {
		if _, err := st.Write([]byte("x")); err == nil {
			t.Errorf("stream %d write after session close succeeded", i)
		}
		if _, err := st.Read(make([]byte, 1)); err == nil || errors.Is(err, io.EOF) {
			t.Errorf("stream %d read after session close = %v, want session error", i, err)
		}
	}
	if _, err := client.Open(); err == nil {
		t.Error("open on a closed session succeeded")
	}
	if err := client.Err(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("session err = %v, want ErrSessionClosed", err)
	}
}

// TestWindowOverrunFailsSession feeds a hand-built frame stream that
// opens a stream and then ships more than Window bytes without waiting
// for credit; the receiving session must fail with ErrProtocol.
func TestWindowOverrunFailsSession(t *testing.T) {
	raw, sc := net.Pipe()
	server := Server(sc, sc, Options{})
	defer server.Close()
	go func() {
		// Keep the raw side's read half drained so writes never block.
		_, _ = io.Copy(io.Discard, raw)
	}()

	enc := wire.NewEncoder(raw)
	id := []byte{0, 0, 0, 1}
	if _, err := enc.Encode(&wire.Message{Type: wire.TypeMuxOpen, TaskID: id}); err != nil {
		t.Fatal(err)
	}
	st := accept(t, server) // nobody reads it, so no credit is returned
	chunk := bytes.Repeat([]byte{0xCC}, 32<<10)
	for sent := 0; sent <= Window; sent += len(chunk) {
		if _, err := enc.Encode(&wire.Message{Type: wire.TypeMuxData, TaskID: id, Payload: chunk}); err != nil {
			t.Fatalf("raw write after %d bytes: %v", sent, err)
		}
	}
	select {
	case <-server.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("session survived a window overrun")
	}
	if err := server.Err(); !errors.Is(err, ErrProtocol) {
		t.Errorf("session err = %v, want ErrProtocol", err)
	}
	if _, err := st.Read(make([]byte, 1)); errors.Is(err, io.EOF) || err == nil {
		// The stream must fail with the session, not report a clean EOF
		// (reads may first drain buffered bytes, so loop once more).
		buf := make([]byte, Window)
		for err == nil {
			_, err = st.Read(buf)
		}
		if errors.Is(err, io.EOF) {
			t.Error("stream reported clean EOF after a protocol failure")
		}
	}
}

// TestCoalescingBatchesUnderLoad pins the adaptive coalescing contract:
// a burst of frames staged while the connection is busy leaves in fewer
// flushes than frames, and the surplus frames are counted (and flagged)
// as coalesced.
func TestCoalescingBatchesUnderLoad(t *testing.T) {
	var ctrs Counters
	client, server := pipePair(t, Options{Coalesce: 500 * time.Microsecond, Counters: &ctrs})
	_ = server
	go func() {
		for {
			st, err := server.Accept()
			if err != nil {
				return
			}
			go func() {
				_, _ = io.Copy(io.Discard, st)
			}()
		}
	}()
	const writers = 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		st, err := client.Open()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 512)
			for j := 0; j < 200; j++ {
				if _, err := st.Write(payload); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	// Writers finish as soon as frames are staged (each sends less than
	// one window), so poll until the flusher has demonstrably batched:
	// every frame flushed, in strictly fewer flushes than frames.
	const totalFrames = writers * 201 // 200 data frames + 1 open each
	deadline := time.Now().Add(5 * time.Second)
	var st Stats
	for {
		st = ctrs.Stats()
		if st.FramesOut >= totalFrames && st.Flushes > 0 && st.Flushes < st.FramesOut {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no batching observed: %d frames out in %d flushes", st.FramesOut, st.Flushes)
		}
		time.Sleep(time.Millisecond)
	}
	if st.CoalescedFrames == 0 || st.BatchedFlushes == 0 {
		t.Errorf("coalescing counters flat: %+v", st)
	}
}

// TestMuxSteadyStateAllocs pins the full echo path — stage, flush,
// decode, deliver, read, credit return — at zero allocations per
// round trip once buffers and goroutines are warm, the same guarantee
// the raw wire codec gives (TestWireSteadyStateAllocs).
func TestMuxSteadyStateAllocs(t *testing.T) {
	client, server := pipePair(t, Options{})
	go func() {
		st, err := server.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 16<<10)
		for {
			n, err := st.Read(buf)
			if n > 0 {
				if _, werr := st.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	st, err := client.Open()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4<<10)
	buf := make([]byte, 16<<10)
	echo := func() {
		if _, err := st.Write(payload); err != nil {
			t.Fatal(err)
		}
		for got := 0; got < len(payload); {
			n, err := st.Read(buf)
			if err != nil {
				t.Fatal(err)
			}
			got += n
		}
	}
	for i := 0; i < 64; i++ { // warm buffers, conds and the runtime's goroutine parking
		echo()
	}
	if got := testing.AllocsPerRun(100, echo); got != 0 {
		t.Errorf("mux echo allocated %v/op in steady state, want 0", got)
	}
}
