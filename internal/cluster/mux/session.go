package mux

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/cluster/wire"
)

// Session is one multiplexed connection.  Both endpoints run the same
// state machine; only stream-id parity differs (the dialer opens odd
// ids, the acceptor even), so either side may open streams.  All
// methods are safe for concurrent use.
type Session struct {
	conn net.Conn
	opt  Options
	ctrs *Counters

	// Write side: stream writers stage frames into wbuf under wmu; the
	// flusher goroutine swaps the buffer out and writes it with one
	// syscall.  wcond backs writers off while more than maxStage bytes
	// are staged.  wmsg is the staging scratch message, reused so the
	// hot path builds frames without allocating.
	wmu     sync.Mutex
	wcond   sync.Cond
	wbuf    []byte
	wframes int
	werr    error
	wmsg    wire.Message
	kick    chan struct{}

	dec *wire.Decoder

	mu       sync.Mutex
	streams  map[uint32]*Stream
	nextID   uint32
	err      error
	acceptCh chan *Stream
	done     chan struct{}
	once     sync.Once
}

// Client wraps the dial side of conn in a Session.  The caller has
// already sent whatever hello the application protocol requires; from
// here on the connection carries only mux frames.
func Client(conn net.Conn, opt Options) *Session {
	return newSession(conn, conn, opt, 1)
}

// Server wraps the accept side of conn in a Session.  r is the reader
// the hello was parsed from (typically a bufio.Reader that may hold
// buffered bytes beyond the hello), so no byte is lost in the takeover.
func Server(conn net.Conn, r io.Reader, opt Options) *Session {
	return newSession(conn, r, opt, 2)
}

func newSession(conn net.Conn, r io.Reader, opt Options, firstID uint32) *Session {
	s := &Session{
		conn:     conn,
		opt:      opt,
		ctrs:     opt.Counters,
		dec:      wire.NewDecoder(r),
		kick:     make(chan struct{}, 1),
		streams:  make(map[uint32]*Stream),
		nextID:   firstID,
		acceptCh: make(chan *Stream, 16),
		done:     make(chan struct{}),
	}
	if s.ctrs == nil {
		s.ctrs = &Counters{}
	}
	s.wcond.L = &s.wmu
	s.ctrs.sessions.Add(1)
	go s.flushLoop()
	go s.readLoop()
	return s
}

// Open creates a new outbound stream.
func (s *Session) Open() (*Stream, error) {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return nil, err
	}
	id := s.nextID
	s.nextID += 2
	st := newStream(s, id)
	s.streams[id] = st
	s.mu.Unlock()
	if err := s.stage(wire.TypeMuxOpen, &st.idb, nil, 0); err != nil {
		s.drop(id)
		return nil, err
	}
	s.ctrs.streams.Add(1)
	return st, nil
}

// Accept returns the next stream the peer opened.
func (s *Session) Accept() (*Stream, error) {
	select {
	case st := <-s.acceptCh:
		return st, nil
	case <-s.done:
		return nil, s.Err()
	}
}

// Err returns the error the session failed with, or nil while it is
// healthy.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Done is closed when the session has failed or been closed.
func (s *Session) Done() <-chan struct{} { return s.done }

// Close tears the session down: the physical connection is closed and
// every stream fails.  Safe to call repeatedly.
func (s *Session) Close() error {
	s.fail(ErrSessionClosed)
	return nil
}

// fail moves the session to its terminal state exactly once: records
// err, fails every stream, wakes every waiter and closes the physical
// connection.
func (s *Session) fail(err error) {
	s.once.Do(func() {
		s.wmu.Lock()
		s.werr = err
		s.wmu.Unlock()
		s.wcond.Broadcast()
		s.mu.Lock()
		s.err = err
		streams := make([]*Stream, 0, len(s.streams))
		for _, st := range s.streams {
			streams = append(streams, st)
		}
		s.streams = nil
		s.mu.Unlock()
		for _, st := range streams {
			st.fail(err)
		}
		close(s.done)
		//lint:ignore errdiscard force-close by design: the session is already failing with err; the conn close error adds nothing
		s.conn.Close()
	})
}

// lookup returns the live stream with the given id, or nil.
func (s *Session) lookup(id uint32) *Stream {
	s.mu.Lock()
	st := s.streams[id]
	s.mu.Unlock()
	return st
}

// drop removes id from the stream table (close or failed open).
func (s *Session) drop(id uint32) *Stream {
	s.mu.Lock()
	st := s.streams[id]
	delete(s.streams, id)
	s.mu.Unlock()
	return st
}

// stage validates and appends one frame to the staging buffer and kicks
// the flusher.  Frames staged behind an earlier unflushed frame carry
// wire.FlagCoalesced.  Blocks while more than maxStage bytes are
// already staged (connection backpressure).
//
//lint:hot
func (s *Session) stage(t wire.Type, id *[4]byte, payload []byte, window uint64) error {
	s.wmu.Lock()
	for len(s.wbuf) > maxStage && s.werr == nil {
		s.wcond.Wait()
	}
	if s.werr != nil {
		err := s.werr
		s.wmu.Unlock()
		return err
	}
	s.wmsg.Type = t
	s.wmsg.Flags = 0
	if s.wframes > 0 {
		s.wmsg.Flags = wire.FlagCoalesced
	}
	s.wmsg.TaskID = id[:]
	s.wmsg.Payload = payload
	s.wmsg.Window = window
	buf, err := wire.AppendFrame(s.wbuf, &s.wmsg)
	if err != nil {
		s.wmu.Unlock()
		return err
	}
	s.wbuf = buf
	s.wframes++
	s.wmu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
	s.ctrs.framesOut.Add(1)
	return nil
}

// flushLoop drains the staging buffer with one conn.Write per flush.
// Opportunistic batching is free: frames staged while a Write is in
// flight leave together in the next one.  When the previous flush was
// already a batch (the session is under load) and a Coalesce budget is
// configured, the loop waits up to that budget before the next write to
// deepen the batch; an idle session never waits.
func (s *Session) flushLoop() {
	var (
		out     []byte
		batched bool
		timer   *time.Timer
	)
	if s.opt.Coalesce > 0 {
		timer = time.NewTimer(time.Hour)
		if !timer.Stop() {
			<-timer.C
		}
	}
	for {
		select {
		case <-s.kick:
		case <-s.done:
			return
		}
		for {
			if batched && timer != nil {
				timer.Reset(s.opt.Coalesce)
				select {
				case <-timer.C:
				case <-s.done:
					return
				}
			}
			s.wmu.Lock()
			if len(s.wbuf) == 0 || s.werr != nil {
				s.wmu.Unlock()
				break
			}
			out, s.wbuf = s.wbuf, out[:0]
			frames := s.wframes
			s.wframes = 0
			s.wmu.Unlock()
			s.wcond.Broadcast()
			_, err := s.conn.Write(out)
			s.ctrs.flushes.Add(1)
			if frames > 1 {
				s.ctrs.batched.Add(1)
				s.ctrs.coalesced.Add(int64(frames - 1))
			}
			batched = frames > 1
			if err != nil {
				s.fail(err)
				return
			}
		}
	}
}

// readLoop decodes mux frames off the connection and dispatches them to
// streams.  Any decode or protocol error fails the whole session — the
// frame stream is unrecoverable once framing is in doubt.
func (s *Session) readLoop() {
	var m wire.Message
	for {
		if err := s.dec.Decode(&m); err != nil {
			s.fail(err)
			return
		}
		s.ctrs.framesIn.Add(1)
		if err := s.dispatch(&m); err != nil {
			s.fail(err)
			return
		}
	}
}

// dispatch routes one decoded frame.  Data and window frames for
// unknown streams are dropped silently: they are the legal race of a
// frame in flight while the local side closed the stream.
func (s *Session) dispatch(m *wire.Message) error {
	id, ok := streamID(m.TaskID)
	if !ok {
		return fmt.Errorf("%w: %v frame with %d-byte stream id", ErrProtocol, m.Type, len(m.TaskID))
	}
	switch m.Type {
	case wire.TypeMuxOpen:
		st := newStream(s, id)
		s.mu.Lock()
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return err
		}
		if _, dup := s.streams[id]; dup {
			s.mu.Unlock()
			return fmt.Errorf("%w: duplicate open of stream %d", ErrProtocol, id)
		}
		s.streams[id] = st
		s.mu.Unlock()
		s.ctrs.streams.Add(1)
		select {
		case s.acceptCh <- st:
		case <-s.done:
		}
		return nil
	case wire.TypeMuxData:
		if st := s.lookup(id); st != nil {
			return st.deliver(m.Payload)
		}
		return nil
	case wire.TypeMuxClose:
		if st := s.drop(id); st != nil {
			st.closeRemote()
		}
		return nil
	case wire.TypeMuxWindow:
		if st := s.lookup(id); st != nil {
			st.grant(m.Window)
		}
		return nil
	default:
		return fmt.Errorf("%w: %v frame inside a mux session", ErrProtocol, m.Type)
	}
}
