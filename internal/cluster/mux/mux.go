// Package mux multiplexes many logical cluster connections over one
// physical TCP connection — the P.B.NET xnet/virtualconn idiom adapted
// to the repro wire format.  The paper's campaigns fan hundreds of
// fitness evaluations per generation out to a worker fleet; at that
// scale one TCP connection (and one read goroutine, one send buffer,
// one slow-start) per logical worker is the bottleneck long before the
// codec is.  A Session carries any number of Streams, each of which is
// an ordinary net.Conn speaking the ordinary cluster protocol, so the
// scheduler, worker and client layers above are unchanged.
//
// Three mechanisms do the work:
//
//   - Stream framing.  Every mux frame is a standard wire frame
//     (TypeMuxOpen/MuxData/MuxClose/MuxWindow) whose 4-byte big-endian
//     stream id rides in the header's task-id field, so the framing
//     layer needed no new envelope — only new types.
//
//   - Per-stream flow control.  Each stream starts with Window bytes of
//     send credit; data consumes it, and the receiver grants credit
//     back (MuxWindow) as the application drains its buffer.  A slow
//     logical worker therefore stalls only its own stream: the session
//     keeps moving frames for its peers, and the receive buffer per
//     stream is bounded by Window.
//
//   - Adaptive frame coalescing.  Writers stage frames into a shared
//     buffer; a flusher goroutine writes the whole buffer with one
//     syscall.  While a write is in flight new frames pile up behind it
//     and leave in the next flush (classic writev batching), and under
//     sustained load an optional latency budget (Options.Coalesce)
//     holds the flusher briefly to deepen batches.  An idle session
//     skips the budget entirely, so a lone heartbeat still leaves at
//     single-frame latency.  Frames that left behind at least one other
//     frame carry wire.FlagCoalesced, making the batching observable on
//     the wire and in Counters.
//
// Both endpoints use the same fixed Window, so no negotiation happens;
// a peer that overruns the window is protocol-broken and the session is
// torn down.  Closing the physical connection fails every stream on it
// and nothing else — the blast radius the chaos tests pin.
package mux

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Window is the per-stream flow-control window in bytes: the initial
// send credit each side holds for a new stream, and the bound on a
// stream's receive buffer.  It is a protocol constant (both endpoints
// must agree), sized so a stream can hold ~40 typical 6 KiB task
// payloads before backpressure engages.
const Window = 256 << 10

// maxChunk bounds one MuxData frame body so a large stream write cannot
// monopolize the shared session pipe; interleaving chunks from many
// streams is what keeps head-of-line latency flat.
const maxChunk = 32 << 10

// maxStage bounds the staged-but-unflushed bytes in a session before
// stream writers block; it caps session memory when the physical
// connection stalls while still letting deep batches form.
const maxStage = 1 << 20

// Session-failure sentinels.
var (
	// ErrSessionClosed reports a stream or session operation after a
	// local Close.
	ErrSessionClosed = errors.New("mux: session closed")
	// ErrStreamClosed reports I/O on a locally closed stream.
	ErrStreamClosed = errors.New("mux: stream closed")
	// ErrProtocol reports a peer that broke the mux protocol (bad stream
	// id, duplicate open, window overrun); the session is torn down.
	ErrProtocol = errors.New("mux: protocol violation")
)

// Options configure a Session.
type Options struct {
	// Coalesce is the latency budget for adaptive batching: after a
	// flush that carried more than one frame (i.e. under load) the
	// flusher waits up to this long for more frames before the next
	// write.  Zero keeps only the opportunistic batching that falls out
	// of frames arriving while a write is in flight.
	Coalesce time.Duration
	// Counters, when non-nil, aggregates this session's activity into a
	// shared counter set (the scheduler uses one set across all
	// sessions, the dialer another).
	Counters *Counters
}

// Counters aggregates mux activity across sessions.  All fields are
// atomic; a zero Counters is ready to use.
type Counters struct {
	sessions, streams   atomic.Int64
	framesIn, framesOut atomic.Int64
	flushes, batched    atomic.Int64
	coalesced           atomic.Int64
}

// Stats is a point-in-time copy of Counters.
type Stats struct {
	// Sessions and Streams count sessions and streams ever created.
	Sessions, Streams int64
	// FramesIn and FramesOut count mux frames decoded and staged.
	FramesIn, FramesOut int64
	// Flushes counts physical writes; BatchedFlushes the subset that
	// carried more than one frame; CoalescedFrames the frames beyond
	// the first in those batches (so CoalescedFrames/FramesOut is the
	// fraction of frames that rode a shared syscall).
	Flushes, BatchedFlushes, CoalescedFrames int64
}

// String renders a one-line summary for stats dumps.
func (s Stats) String() string {
	return fmt.Sprintf("mux: sessions=%d streams=%d frames_in=%d frames_out=%d flushes=%d batched_flushes=%d coalesced_frames=%d",
		s.Sessions, s.Streams, s.FramesIn, s.FramesOut, s.Flushes, s.BatchedFlushes, s.CoalescedFrames)
}

// Stats snapshots the counters.
func (c *Counters) Stats() Stats {
	return Stats{
		Sessions:        c.sessions.Load(),
		Streams:         c.streams.Load(),
		FramesIn:        c.framesIn.Load(),
		FramesOut:       c.framesOut.Load(),
		Flushes:         c.flushes.Load(),
		BatchedFlushes:  c.batched.Load(),
		CoalescedFrames: c.coalesced.Load(),
	}
}

// putStreamID writes id into the 4-byte task-id form used on the wire.
func putStreamID(b *[4]byte, id uint32) {
	binary.BigEndian.PutUint32(b[:], id)
}

// streamID parses a wire task-id field as a stream id.
func streamID(b []byte) (uint32, bool) {
	if len(b) != 4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(b), true
}
