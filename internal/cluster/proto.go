// Package cluster is a small distributed task system in the style of the
// Dask scheduler/worker/client deployment the paper used on Summit
// (§2.2.5): a client submits fitness-evaluation tasks to a scheduler,
// which fans them out to workers (one per compute node in the paper);
// results flow back to the client.  Matching the paper's operational
// choices, there are no "nannies" — a worker that dies stays dead, and the
// scheduler reassigns its in-flight tasks to surviving workers.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// msgType enumerates protocol messages.
type msgType string

const (
	msgRegister  msgType = "register"  // worker → scheduler
	msgSubmit    msgType = "submit"    // client → scheduler
	msgAssign    msgType = "assign"    // scheduler → worker
	msgResult    msgType = "result"    // worker → scheduler → client
	msgHeartbeat msgType = "heartbeat" // worker → scheduler: still working on TaskID, renew its lease
	msgSnapshot  msgType = "snapshot"  // scheduler → worker: catch-up state at register time
)

// message is the transport-independent protocol message.  The JSON
// transport frames it as length-prefixed JSON; the binary transport
// (internal/cluster/wire) maps the same fields onto fixed-header frames.
type message struct {
	Type    msgType         `json:"type"`
	Flags   byte            `json:"flags,omitempty"` // register: flagWantSnapshot
	TaskID  string          `json:"task_id,omitempty"`
	Name    string          `json:"name,omitempty"` // worker name on register
	Payload json.RawMessage `json:"payload,omitempty"`
	Err     string          `json:"err,omitempty"`
	Snap    *snapshotData   `json:"snapshot,omitempty"`
}

// flagWantSnapshot, set on a register message, asks the scheduler for a
// snapshot reply before the first assignment.  Raw peers that register
// without it (older code, hand-rolled test workers) see the exact
// pre-snapshot protocol.
const flagWantSnapshot byte = 1 << 0

// flagMux, set on the first register message of a binary connection,
// declares that every byte after that hello is a mux session (see
// internal/cluster/mux): the scheduler hands the connection to the
// session layer and each accepted stream is then served exactly like a
// fresh connection.  The value mirrors wire.FlagMux.
const flagMux byte = 1 << 1

// snapshotData is the compact scheduler state a late-joining worker
// receives instead of any history replay: where the campaign stands
// (Epoch counts tasks submitted so far), how deep the queue is, and
// which leases are outstanding right now.  Its size is O(in-flight
// tasks), independent of how long the campaign has been running.
type snapshotData struct {
	Epoch   uint64   `json:"epoch"`
	Pending int      `json:"pending"`
	Leases  []string `json:"leases,omitempty"`
}

// errBadFrame marks a JSON-transport decode failure (oversized or
// unparseable frame), as opposed to ordinary connection teardown, so the
// codec layer can count decode errors.
var errBadFrame = errors.New("cluster: bad frame")

// maxFrame bounds a frame to keep a corrupt peer from forcing a huge
// allocation.
const maxFrame = 64 << 20

// writeMessage frames and writes one message.
func writeMessage(w io.Writer, m *message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("cluster: encoding message: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// readMessage reads one framed message.
func readMessage(r io.Reader) (*message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", errBadFrame, n)
	}
	data, err := readFrame(r, int(n))
	if err != nil {
		return nil, err
	}
	var m message
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: decoding message: %v", errBadFrame, err)
	}
	return &m, nil
}

// frameChunk bounds the bytes read (and allocated) per step, so a
// hostile header claiming a near-maxFrame length on a short connection
// cannot force a 64 MiB upfront allocation — memory grows only as bytes
// actually arrive.
const frameChunk = 64 << 10

// readFrame reads exactly n bytes in bounded chunks.
func readFrame(r io.Reader, n int) ([]byte, error) {
	data := make([]byte, 0, min(n, frameChunk))
	for remaining := n; remaining > 0; {
		c := min(remaining, frameChunk)
		start := len(data)
		data = append(data, make([]byte, c)...)
		if _, err := io.ReadFull(r, data[start:]); err != nil {
			return nil, err
		}
		remaining -= c
	}
	return data, nil
}
