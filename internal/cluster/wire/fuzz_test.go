package wire

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
)

// FuzzWireDecode feeds arbitrary bytes to the binary frame decoder.
// Decode must never panic, a hostile body-length claim on a short
// stream must not allocate anywhere near the claimed size, and every
// accepted message must survive a re-encode → re-decode round trip
// unchanged.
func FuzzWireDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		frame, err := AppendFrame(nil, &m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{MagicByte0})
	// A near-MaxFrame claim with no body: must fail fast, no allocation.
	hostile := make([]byte, HeaderSize)
	binary.BigEndian.PutUint16(hostile[0:2], Magic)
	hostile[2] = Version
	hostile[3] = byte(TypeSubmit)
	binary.BigEndian.PutUint32(hostile[6:10], 63<<20)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, in []byte) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		var m Message
		err := NewDecoder(bytes.NewReader(in)).Decode(&m)
		runtime.ReadMemStats(&after)
		if grown := after.TotalAlloc - before.TotalAlloc; grown > uint64(len(in))+1<<20 {
			t.Fatalf("decoding %d input bytes allocated %d bytes", len(in), grown)
		}
		if err != nil {
			return
		}
		frame, err := AppendFrame(nil, &m)
		if err != nil {
			t.Fatalf("re-encoding accepted message %+v: %v", m, err)
		}
		var m2 Message
		if err := NewDecoder(bytes.NewReader(frame)).Decode(&m2); err != nil {
			t.Fatalf("re-decoding re-encoded message: %v", err)
		}
		if !equalMessages(&m, &m2) {
			t.Fatalf("round trip changed message:\n first  %+v\n second %+v", m, m2)
		}
	})
}
