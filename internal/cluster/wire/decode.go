package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// frameChunk bounds the bytes read (and the buffer growth) per step
// while a frame's body arrives, so a hostile header claiming a
// near-MaxFrame length on a short connection cannot force a 64 MiB
// upfront allocation — memory grows only as bytes actually arrive.
const frameChunk = 64 << 10

// Decoder reads frames from one reader into a reusable buffer.  The
// Message it fills on Decode aliases that buffer: fields are valid only
// until the next Decode call, which is exactly the lifetime the cluster
// transport needs (it converts retained fields at the protocol
// boundary).  In steady state Decode allocates nothing.  Decoder is not
// safe for concurrent use.
type Decoder struct {
	r      io.Reader
	hdr    [HeaderSize]byte
	buf    []byte
	leases [][]byte
}

// NewDecoder returns a Decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r}
}

// Decode reads and parses one frame into m.  A clean end of stream at a
// frame boundary returns io.EOF; a stream that dies mid-frame returns
// io.ErrUnexpectedEOF; malformed frames return errors wrapping the
// package sentinels (see IsDecodeError).
//lint:hot
func (d *Decoder) Decode(m *Message) error {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		// io.EOF here means zero header bytes arrived: the peer closed
		// between frames, which is not a decode failure.
		return err
	}
	if got := binary.BigEndian.Uint16(d.hdr[0:2]); got != Magic {
		return fmt.Errorf("%w: 0x%04X", ErrBadMagic, got)
	}
	if d.hdr[2] != Version {
		return fmt.Errorf("%w: %d", ErrVersion, d.hdr[2])
	}
	typ := Type(d.hdr[3])
	if typ < TypeRegister || typ > typeMax {
		return fmt.Errorf("%w: %d", ErrBadType, d.hdr[3])
	}
	idLen := int(d.hdr[5])
	bodyLen := binary.BigEndian.Uint32(d.hdr[6:10])
	if bodyLen > MaxFrame {
		return fmt.Errorf("%w: body claims %d bytes", ErrFrameTooLarge, bodyLen)
	}
	buf, err := d.readFrame(idLen + int(bodyLen))
	if err != nil {
		return err
	}

	*m = Message{Type: typ, Flags: d.hdr[4], TaskID: buf[:idLen:idLen]}
	body := buf[idLen:]
	switch typ {
	case TypeRegister:
		if m.Name, body, err = cutBytes(body); err != nil {
			return err
		}
		if len(body) != 0 {
			return fmt.Errorf("%w: %d trailing bytes after register body", ErrMalformed, len(body))
		}
	case TypeSubmit, TypeAssign:
		m.Payload = body
	case TypeResult:
		if m.Err, body, err = cutBytes(body); err != nil {
			return err
		}
		m.Payload = body
	case TypeHeartbeat:
		if len(body) != 0 {
			return fmt.Errorf("%w: %d trailing bytes after heartbeat", ErrMalformed, len(body))
		}
	case TypeSnapshot:
		if m.Epoch, body, err = cutUvarint(body); err != nil {
			return err
		}
		if m.Pending, body, err = cutUvarint(body); err != nil {
			return err
		}
		var n uint64
		if n, body, err = cutUvarint(body); err != nil {
			return err
		}
		// Each encoded lease costs at least one byte, so n is implicitly
		// bounded by the body length — no preallocation from the claim.
		if n > uint64(len(body))+1 {
			return fmt.Errorf("%w: %d leases claimed in %d body bytes", ErrMalformed, n, len(body))
		}
		leases := d.leases[:0]
		for i := uint64(0); i < n; i++ {
			var id []byte
			if id, body, err = cutBytes(body); err != nil {
				return err
			}
			leases = append(leases, id)
		}
		if len(body) != 0 {
			return fmt.Errorf("%w: %d trailing bytes after snapshot", ErrMalformed, len(body))
		}
		d.leases = leases
		m.Leases = leases
	case TypeMuxOpen, TypeMuxClose:
		if len(body) != 0 {
			return fmt.Errorf("%w: %d trailing bytes after %v", ErrMalformed, len(body), typ)
		}
	case TypeMuxData:
		m.Payload = body
	case TypeMuxWindow:
		if m.Window, body, err = cutUvarint(body); err != nil {
			return err
		}
		if len(body) != 0 {
			return fmt.Errorf("%w: %d trailing bytes after mux-window", ErrMalformed, len(body))
		}
	}
	return nil
}

// readFrame fills the reusable buffer with exactly n frame bytes,
// growing it in bounded chunks while data actually arrives.
func (d *Decoder) readFrame(n int) ([]byte, error) {
	if cap(d.buf) >= n {
		d.buf = d.buf[:n]
		if _, err := io.ReadFull(d.r, d.buf); err != nil {
			return nil, midFrame(err)
		}
		return d.buf, nil
	}
	buf := d.buf[:0]
	for remaining := n; remaining > 0; {
		c := min(remaining, frameChunk)
		start := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(d.r, buf[start:]); err != nil {
			return nil, midFrame(err)
		}
		remaining -= c
	}
	d.buf = buf
	return buf, nil
}

// midFrame upgrades io.EOF to io.ErrUnexpectedEOF: once a header has
// been consumed, any end of stream is a truncated frame.
func midFrame(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// cutUvarint decodes one uvarint off the front of b.
func cutUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrMalformed)
	}
	return v, b[n:], nil
}

// cutBytes decodes one uvarint-prefixed byte field off the front of b.
func cutBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := cutUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: field of %d bytes overruns body", ErrMalformed, n)
	}
	return rest[:n:n], rest[n:], nil
}

// IsDecodeError reports whether err is a malformed- or truncated-frame
// failure (as opposed to ordinary connection teardown such as io.EOF or
// a reset).  Transports use it to drive their decode-error counters:
// corruption drops the one connection it arrived on and is counted;
// clean closes are not.
func IsDecodeError(err error) bool {
	return errors.Is(err, ErrBadMagic) ||
		errors.Is(err, ErrVersion) ||
		errors.Is(err, ErrBadType) ||
		errors.Is(err, ErrFrameTooLarge) ||
		errors.Is(err, ErrMalformed) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}
