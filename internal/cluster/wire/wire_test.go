package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"testing"
)

// sampleMessages covers every frame type with representative field
// shapes, including empty edge cases.
func sampleMessages() []Message {
	return []Message{
		{Type: TypeRegister, Name: []byte("worker-0"), Flags: FlagWantSnapshot},
		{Type: TypeRegister, Name: nil},
		{Type: TypeSubmit, TaskID: []byte("task-1"), Payload: []byte(`{"genome":[0.1,0.2]}`)},
		{Type: TypeSubmit, TaskID: []byte("t"), Payload: nil},
		{Type: TypeAssign, TaskID: []byte("task-2"), Payload: []byte(`{"genome":[1,2,3]}`)},
		{Type: TypeResult, TaskID: []byte("task-3"), Payload: []byte(`{"fitness":[0.5]}`)},
		{Type: TypeResult, TaskID: []byte("task-4"), Err: []byte("cluster: task timed out")},
		{Type: TypeHeartbeat, TaskID: []byte("task-5")},
		{Type: TypeSnapshot, Epoch: 12345, Pending: 7, Leases: [][]byte{[]byte("a"), []byte("lease-b")}},
		{Type: TypeSnapshot},
		{Type: TypeMuxOpen, TaskID: []byte{0, 0, 0, 1}},
		{Type: TypeMuxData, TaskID: []byte{0, 0, 0, 1}, Payload: []byte("stream bytes"), Flags: FlagCoalesced},
		{Type: TypeMuxData, TaskID: []byte{0, 0, 0, 2}},
		{Type: TypeMuxClose, TaskID: []byte{0, 0, 0, 2}},
		{Type: TypeMuxWindow, TaskID: []byte{0, 0, 0, 1}, Window: 131072},
	}
}

func equalMessages(a, b *Message) bool {
	if a.Type != b.Type || a.Flags != b.Flags || a.Epoch != b.Epoch ||
		a.Pending != b.Pending || a.Window != b.Window {
		return false
	}
	if !bytes.Equal(a.TaskID, b.TaskID) || !bytes.Equal(a.Name, b.Name) ||
		!bytes.Equal(a.Err, b.Err) || !bytes.Equal(a.Payload, b.Payload) {
		return false
	}
	if len(a.Leases) != len(b.Leases) {
		return false
	}
	for i := range a.Leases {
		if !bytes.Equal(a.Leases[i], b.Leases[i]) {
			return false
		}
	}
	return true
}

// TestRoundTrip encodes and decodes every message type and expects the
// fields back unchanged, both one frame at a time and as a pipelined
// stream through a single Encoder/Decoder pair.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	msgs := sampleMessages()
	for i := range msgs {
		if _, err := enc.Encode(&msgs[i]); err != nil {
			t.Fatalf("encode %v: %v", msgs[i].Type, err)
		}
	}
	dec := NewDecoder(&buf)
	var got Message
	for i := range msgs {
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode %v: %v", msgs[i].Type, err)
		}
		// Normalize nil-vs-empty before comparing: the decoder hands back
		// empty (not nil) slices for zero-length fields it sliced out.
		if !equalMessages(&msgs[i], &got) {
			t.Errorf("round trip %v:\n sent %+v\n got  %+v", msgs[i].Type, msgs[i], got)
		}
	}
	if err := dec.Decode(&got); !errors.Is(err, io.EOF) {
		t.Errorf("decode at end of stream = %v, want io.EOF", err)
	}
}

// TestDecodeZeroCopy verifies the documented aliasing contract: fields
// of a decoded Message point into the Decoder's buffer and are rewritten
// by the next Decode.
func TestDecodeZeroCopy(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	m1 := Message{Type: TypeSubmit, TaskID: []byte("id-aaaa"), Payload: []byte("payload-one")}
	m2 := Message{Type: TypeSubmit, TaskID: []byte("id-bbbb"), Payload: []byte("payload-two")}
	for _, m := range []*Message{&m1, &m2} {
		if _, err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	var got Message
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	first := got.Payload
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if string(first) == "payload-one" {
		t.Error("first payload survived the second Decode; expected it to alias the reused buffer")
	}
}

// TestEncodeValidation exercises the encoder's reject paths.
func TestEncodeValidation(t *testing.T) {
	if _, err := AppendFrame(nil, &Message{Type: 0}); !errors.Is(err, ErrBadType) {
		t.Errorf("type 0: %v, want ErrBadType", err)
	}
	if _, err := AppendFrame(nil, &Message{Type: typeMax + 1}); !errors.Is(err, ErrBadType) {
		t.Errorf("type %d: %v, want ErrBadType", typeMax+1, err)
	}
	long := make([]byte, MaxTaskID+1)
	if _, err := AppendFrame(nil, &Message{Type: TypeHeartbeat, TaskID: long}); err == nil {
		t.Error("oversized task id encoded without error")
	}
	big := make([]byte, MaxFrame+1)
	if _, err := AppendFrame(nil, &Message{Type: TypeSubmit, Payload: big}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized payload: %v, want ErrFrameTooLarge", err)
	}
}

// frameFor builds a valid frame for tests that then corrupt it.
func frameFor(t *testing.T, m *Message) []byte {
	t.Helper()
	frame, err := AppendFrame(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestDecodeRejections corrupts frames field by field and checks each
// failure maps to its sentinel and satisfies IsDecodeError.
func TestDecodeRejections(t *testing.T) {
	base := &Message{Type: TypeResult, TaskID: []byte("task"), Payload: []byte("p"), Err: nil}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"bad magic", func(f []byte) []byte { f[0] = 0x00; return f }, ErrBadMagic},
		{"bad version", func(f []byte) []byte { f[2] = Version + 1; return f }, ErrVersion},
		{"bad type", func(f []byte) []byte { f[3] = 99; return f }, ErrBadType},
		{"oversized body claim", func(f []byte) []byte {
			binary.BigEndian.PutUint32(f[6:10], MaxFrame+1)
			return f
		}, ErrFrameTooLarge},
		{"truncated mid-frame", func(f []byte) []byte { return f[:len(f)-1] }, io.ErrUnexpectedEOF},
		{"truncated header", func(f []byte) []byte { return f[:HeaderSize-2] }, io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := tc.mutate(frameFor(t, base))
			var m Message
			err := NewDecoder(bytes.NewReader(frame)).Decode(&m)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if !IsDecodeError(err) {
				t.Errorf("IsDecodeError(%v) = false, want true", err)
			}
		})
	}

	// Trailing bytes after a fully-parsed body (heartbeats have none, so
	// any body byte is trailing; a Result would have absorbed extras into
	// its payload).
	hb := frameFor(t, &Message{Type: TypeHeartbeat, TaskID: []byte("task")})
	hb = append(hb, 0xFF)
	binary.BigEndian.PutUint32(hb[6:10], 1)
	var m Message
	if err := NewDecoder(bytes.NewReader(hb)).Decode(&m); !errors.Is(err, ErrMalformed) {
		t.Errorf("trailing bytes: %v, want ErrMalformed", err)
	}

	// Truncated register body: the name length claims more bytes than the
	// body holds.
	reg := frameFor(t, &Message{Type: TypeRegister, Name: []byte("worker")})
	reg[HeaderSize] = 200 // name-length uvarint now overruns the body
	if err := NewDecoder(bytes.NewReader(reg)).Decode(&m); !errors.Is(err, ErrMalformed) {
		t.Errorf("overrunning name field: %v, want ErrMalformed", err)
	}

	// Snapshot claiming more leases than the body could hold.
	snap := frameFor(t, &Message{Type: TypeSnapshot, Epoch: 1, Pending: 1})
	snap[len(snap)-1] = 250 // lease count with an empty remainder
	if err := NewDecoder(bytes.NewReader(snap)).Decode(&m); !errors.Is(err, ErrMalformed) {
		t.Errorf("lease-count overclaim: %v, want ErrMalformed", err)
	}
}

// TestCleanEOFIsNotADecodeError pins the classification the transports
// rely on: a peer closing between frames is ordinary teardown.
func TestCleanEOFIsNotADecodeError(t *testing.T) {
	var m Message
	err := NewDecoder(bytes.NewReader(nil)).Decode(&m)
	if !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	if IsDecodeError(err) {
		t.Error("IsDecodeError(io.EOF) = true; clean closes must not count as decode errors")
	}
}

// TestAdversarialLengthClaim sends a header whose body length claims
// nearly MaxFrame on a connection that then dies.  The decoder must fail
// with a truncation error without having allocated anywhere near the
// claimed size — memory may grow only as bytes actually arrive.
func TestAdversarialLengthClaim(t *testing.T) {
	hdr := make([]byte, HeaderSize)
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = byte(TypeSubmit)
	binary.BigEndian.PutUint32(hdr[6:10], MaxFrame) // claims 64 MiB
	stream := append(hdr, []byte("only a few body bytes")...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var m Message
	err := NewDecoder(bytes.NewReader(stream)).Decode(&m)
	runtime.ReadMemStats(&after)

	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
	if grown := after.TotalAlloc - before.TotalAlloc; grown > 1<<20 {
		t.Errorf("decoder allocated %d bytes against a hostile %d-byte claim; want < 1 MiB", grown, MaxFrame)
	}
}

// loopReader replays one frame forever without allocating, for
// steady-state decode measurements.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

// TestWireSteadyStateAllocs pins encode and decode of every message
// type at zero allocations per frame once buffers are warm — the
// property the whole binary transport exists to provide (mirroring
// nn's TestSteadyStateAllocs).
func TestWireSteadyStateAllocs(t *testing.T) {
	msgs := sampleMessages()
	for i := range msgs {
		m := &msgs[i]
		enc := NewEncoder(io.Discard)
		if _, err := enc.Encode(m); err != nil { // warm the encode buffer
			t.Fatal(err)
		}
		if got := testing.AllocsPerRun(20, func() {
			if _, err := enc.Encode(m); err != nil {
				t.Fatal(err)
			}
		}); got != 0 {
			t.Errorf("encode %v: %v allocs/op in steady state, want 0", m.Type, got)
		}

		frame := frameFor(t, m)
		dec := NewDecoder(&loopReader{data: frame})
		var out Message
		if err := dec.Decode(&out); err != nil { // warm the decode buffer
			t.Fatal(err)
		}
		if got := testing.AllocsPerRun(20, func() {
			if err := dec.Decode(&out); err != nil {
				t.Fatal(err)
			}
		}); got != 0 {
			t.Errorf("decode %v: %v allocs/op in steady state, want 0", m.Type, got)
		}
	}
}
