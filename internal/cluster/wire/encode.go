package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Encoder frames messages onto one writer.  The frame is staged in a
// reusable buffer and written with a single Write call, so steady-state
// encoding allocates nothing and costs one syscall per message (the JSON
// transport pays two: header, then body).  Encoder is not safe for
// concurrent use; callers serialize writes per connection exactly as
// they must for the underlying net.Conn.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an Encoder writing frames to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w}
}

// Encode validates, frames and writes one message.  It reports the
// number of bytes written so transports can keep byte counters without
// wrapping the writer.
//lint:hot
func (e *Encoder) Encode(m *Message) (int, error) {
	frame, err := AppendFrame(e.buf[:0], m)
	if err != nil {
		return 0, err
	}
	e.buf = frame[:0] // retain grown capacity for the next Encode
	return e.w.Write(frame)
}

// AppendFrame appends the binary frame for m to dst and returns the
// extended slice.  It is the allocation-free core of Encode, exported so
// tests and corpus generators can build frames without a writer.
func AppendFrame(dst []byte, m *Message) ([]byte, error) {
	if m.Type < TypeRegister || m.Type > typeMax {
		return nil, fmt.Errorf("%w: %d", ErrBadType, byte(m.Type))
	}
	if len(m.TaskID) > MaxTaskID {
		return nil, fmt.Errorf("wire: task id of %d bytes exceeds %d", len(m.TaskID), MaxTaskID)
	}
	start := len(dst)
	dst = append(dst,
		byte(Magic>>8), byte(Magic&0xFF),
		Version,
		byte(m.Type),
		m.Flags,
		byte(len(m.TaskID)),
		0, 0, 0, 0, // body length, patched below
	)
	dst = append(dst, m.TaskID...)
	bodyStart := len(dst)
	switch m.Type {
	case TypeRegister:
		dst = binary.AppendUvarint(dst, uint64(len(m.Name)))
		dst = append(dst, m.Name...)
	case TypeSubmit, TypeAssign:
		dst = append(dst, m.Payload...)
	case TypeResult:
		dst = binary.AppendUvarint(dst, uint64(len(m.Err)))
		dst = append(dst, m.Err...)
		dst = append(dst, m.Payload...)
	case TypeHeartbeat:
		// no body
	case TypeSnapshot:
		dst = binary.AppendUvarint(dst, m.Epoch)
		dst = binary.AppendUvarint(dst, m.Pending)
		dst = binary.AppendUvarint(dst, uint64(len(m.Leases)))
		for _, id := range m.Leases {
			dst = binary.AppendUvarint(dst, uint64(len(id)))
			dst = append(dst, id...)
		}
	case TypeMuxOpen, TypeMuxClose:
		// no body; the stream id rides in the task-id field
	case TypeMuxData:
		dst = append(dst, m.Payload...)
	case TypeMuxWindow:
		dst = binary.AppendUvarint(dst, m.Window)
	}
	bodyLen := len(dst) - bodyStart
	if bodyLen > MaxFrame {
		return nil, fmt.Errorf("%w: body of %d bytes", ErrFrameTooLarge, bodyLen)
	}
	binary.BigEndian.PutUint32(dst[start+6:start+10], uint32(bodyLen))
	return dst, nil
}
