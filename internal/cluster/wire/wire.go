// Package wire is the binary framing for the cluster plane: a hand-rolled
// length-prefixed codec that replaces the JSON transport on the hot path
// (submit → assign → result → heartbeat) with fixed-width headers and
// varint-delimited fields.  The paper's deployment moved hundreds of
// fitness tasks per generation between the Dask client, scheduler and
// workers (§2.2.5); at that rate the envelope cost — reflection-driven
// JSON marshal/unmarshal plus an allocation per message — dominates the
// scheduler's CPU, so the codec here is built around two properties:
//
//   - Zero-copy decode: Decode parses a frame into a Message whose byte
//     fields alias the Decoder's internal buffer.  Nothing is copied and
//     nothing is allocated in steady state; callers that retain a field
//     past the next Decode must copy it themselves.
//   - Zero-allocation encode: Encode appends the frame into a reusable
//     buffer and issues exactly one Write, so a megabyte-per-second
//     heartbeat stream costs no garbage and no extra syscalls.
//
// Frame layout (all multi-byte integers big-endian):
//
//	offset size field
//	0      2    magic     0xD5A7 — never a legal JSON length prefix,
//	                      so one peeked byte selects the transport
//	2      1    version   format version (currently 1)
//	3      1    type      message type (Register … Snapshot)
//	4      1    flags     per-type bits (e.g. FlagWantSnapshot)
//	5      1    id len    task-id length in bytes (0–255)
//	6      4    body len  length of the body after the task id
//	10     …    task id   raw task-id bytes
//	…      …    body      type-specific fields (see below)
//
// Body encodings, all uvarint-delimited:
//
//	Register:  len(name) name
//	Submit:    payload (the remaining body bytes, verbatim)
//	Assign:    payload
//	Result:    len(err) err payload
//	Heartbeat: (empty)
//	Snapshot:  epoch pending nleases { len(id) id }*
//	MuxOpen:   (empty; stream id in the task-id field)
//	MuxData:   chunk (the remaining body bytes, verbatim)
//	MuxClose:  (empty)
//	MuxWindow: window (bytes of send credit granted)
//
// The JSON transport frames messages as a 4-byte big-endian length
// followed by a JSON object; its first byte is always ≤ 0x04 (lengths
// are capped at 64 MiB), while a binary frame always begins 0xD5.  The
// scheduler peeks that one byte per accepted connection and speaks
// whichever protocol the peer chose — binary is the default, JSON the
// compatibility fallback.
package wire

import (
	"errors"
	"fmt"
)

// Magic identifies a binary frame.  The first byte (0xD5) can never
// begin a JSON-transport frame, whose leading length byte is ≤ 0x04.
const Magic uint16 = 0xD5A7

// MagicByte0 is the first on-the-wire byte of every binary frame — the
// single byte transport negotiation peeks at.
const MagicByte0 byte = byte(Magic >> 8)

// Version is the wire-format version encoded in every frame.  A
// scheduler that sees a newer version drops the connection; the peer
// falls back to reconnecting with JSON framing.
const Version byte = 1

// HeaderSize is the fixed frame-header length in bytes.
const HeaderSize = 10

// MaxFrame bounds the body of one frame, mirroring the JSON transport's
// cap, so a corrupt or hostile length prefix cannot force a huge
// allocation.
const MaxFrame = 64 << 20

// MaxTaskID bounds the task-id field (it has a 1-byte length).
const MaxTaskID = 255

// Type enumerates the protocol messages.
type Type byte

const (
	// TypeRegister is worker → scheduler: join the pool.
	TypeRegister Type = 1
	// TypeSubmit is client → scheduler: run this task.
	TypeSubmit Type = 2
	// TypeAssign is scheduler → worker: lease of one task.
	TypeAssign Type = 3
	// TypeResult is worker → scheduler → client: task outcome.
	TypeResult Type = 4
	// TypeHeartbeat is worker → scheduler: renew the task's lease.
	TypeHeartbeat Type = 5
	// TypeSnapshot is scheduler → worker: compact catch-up state sent at
	// register time (campaign epoch, queue depth, outstanding leases) so
	// a late-joining worker learns where the campaign stands without any
	// history replay.
	TypeSnapshot Type = 6
	// TypeMuxOpen opens one logical stream inside a multiplexed session.
	// The stream id travels in the task-id header field as 4 big-endian
	// bytes (see package mux).
	TypeMuxOpen Type = 7
	// TypeMuxData carries one chunk of stream bytes; the body is the
	// chunk, verbatim.
	TypeMuxData Type = 8
	// TypeMuxClose tears down one logical stream in both directions.
	TypeMuxClose Type = 9
	// TypeMuxWindow grants the peer Window more bytes of send credit on
	// one stream (flow control; see package mux).
	TypeMuxWindow Type = 10

	typeMax = TypeMuxWindow
)

// String names the type for diagnostics.
func (t Type) String() string {
	switch t {
	case TypeRegister:
		return "register"
	case TypeSubmit:
		return "submit"
	case TypeAssign:
		return "assign"
	case TypeResult:
		return "result"
	case TypeHeartbeat:
		return "heartbeat"
	case TypeSnapshot:
		return "snapshot"
	case TypeMuxOpen:
		return "mux-open"
	case TypeMuxData:
		return "mux-data"
	case TypeMuxClose:
		return "mux-close"
	case TypeMuxWindow:
		return "mux-window"
	}
	return fmt.Sprintf("type(%d)", byte(t))
}

// FlagWantSnapshot, set on a Register frame, asks the scheduler for a
// Snapshot reply before the first assignment.
const FlagWantSnapshot byte = 1 << 0

// FlagMux, set on the first Register frame of a connection, declares the
// connection a multiplexed session: every following frame belongs to the
// mux layer (MuxOpen/MuxData/MuxClose/MuxWindow), and logical workers
// and clients speak the ordinary protocol inside individual streams.
const FlagMux byte = 1 << 1

// FlagCoalesced marks a frame that was staged behind at least one other
// frame and left the sender in a single batched write.  It is purely
// observational — decoders ignore it — but it makes the coalescing
// behaviour visible on the wire and in counters.
const FlagCoalesced byte = 1 << 2

// Message is one protocol message.  Byte fields produced by Decode
// alias the Decoder's internal buffer and are valid only until the next
// Decode call; Encode never retains them.
type Message struct {
	Type  Type
	Flags byte
	// TaskID identifies the task for Submit/Assign/Result/Heartbeat.
	TaskID []byte
	// Name is the worker name (Register only).
	Name []byte
	// Err is the application error (Result only; empty = success).
	Err []byte
	// Payload is the opaque task/result body (Submit/Assign/Result).
	Payload []byte
	// Epoch, Pending and Leases are the Snapshot fields: the scheduler's
	// campaign epoch (tasks submitted so far), the queued-task count, and
	// the ids of every lease outstanding at snapshot time.
	Epoch   uint64
	Pending uint64
	Leases  [][]byte
	// Window is the MuxWindow field: bytes of send credit granted to the
	// peer on the stream named by TaskID.
	Window uint64
}

// Decode-failure sentinels.  Every malformed-frame error returned by
// Decoder.Decode wraps one of these (or io.ErrUnexpectedEOF for a frame
// cut mid-flight), so transports can count decode errors separately from
// ordinary connection teardown; see IsDecodeError.
var (
	// ErrBadMagic reports a frame that does not start with Magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrVersion reports an unsupported format version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrBadType reports an unknown message type.
	ErrBadType = errors.New("wire: unknown message type")
	// ErrFrameTooLarge reports a body-length claim beyond MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds limit")
	// ErrMalformed reports a syntactically invalid body (bad varint,
	// field overrun, trailing bytes).
	ErrMalformed = errors.New("wire: malformed frame")
)
