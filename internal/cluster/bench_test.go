package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// BenchmarkTaskRoundTrip measures one submit→assign→result cycle through
// the scheduler over loopback TCP.
func BenchmarkTaskRoundTrip(b *testing.B) {
	lc, err := NewLocalCluster(1, echoHandler, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	payload := json.RawMessage(`{"genome":[1,2,3,4,5,6,7]}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lc.Client.Submit(context.Background(), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThroughputByWorkers measures the sustained task rate as the
// worker pool grows, with concurrent submission.
func BenchmarkThroughputByWorkers(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			lc, err := NewLocalCluster(workers, echoHandler, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer lc.Close()
			payload := json.RawMessage(`{"x":1}`)
			b.ResetTimer()
			var wg sync.WaitGroup
			sem := make(chan struct{}, 2*workers)
			for i := 0; i < b.N; i++ {
				wg.Add(1)
				sem <- struct{}{}
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					if _, err := lc.Client.Submit(context.Background(), payload); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		})
	}
}

func BenchmarkMessageFraming(b *testing.B) {
	m := &message{Type: msgSubmit, TaskID: "0123456789abcdef", Payload: json.RawMessage(`{"genome":[0.1,0.2,0.3,0.4,0.5,0.6,0.7]}`)}
	var buf discardBuffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writeMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
	}
}

type discardBuffer struct{}

func (discardBuffer) Write(p []byte) (int, error) { return len(p), nil }
