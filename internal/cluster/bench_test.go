package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// BenchmarkTaskRoundTrip measures one submit→assign→result cycle through
// the scheduler over loopback TCP.
func BenchmarkTaskRoundTrip(b *testing.B) {
	lc, err := NewLocalCluster(1, echoHandler, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	payload := json.RawMessage(`{"genome":[1,2,3,4,5,6,7]}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lc.Client.Submit(context.Background(), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThroughputByWorkers measures the sustained task rate as the
// worker pool grows, with concurrent submission.
func BenchmarkThroughputByWorkers(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			lc, err := NewLocalCluster(workers, echoHandler, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer lc.Close()
			payload := json.RawMessage(`{"x":1}`)
			b.ResetTimer()
			var wg sync.WaitGroup
			sem := make(chan struct{}, 2*workers)
			for i := 0; i < b.N; i++ {
				wg.Add(1)
				sem <- struct{}{}
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					if _, err := lc.Client.Submit(context.Background(), payload); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		})
	}
}

func BenchmarkMessageFraming(b *testing.B) {
	m := &message{Type: msgSubmit, TaskID: "0123456789abcdef", Payload: json.RawMessage(`{"genome":[0.1,0.2,0.3,0.4,0.5,0.6,0.7]}`)}
	var buf discardBuffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writeMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
	}
}

type discardBuffer struct{}

func (discardBuffer) Write(p []byte) (int, error) { return len(p), nil }

// benchPayload is a campaign-realistic task body: a 512-gene genome,
// the size class a wide hyperparameter search with per-layer knobs and
// an inlined training config ships per evaluation (~6 KiB of JSON).
// Framing cost scales with payload size — the JSON codec must scan
// every byte of the embedded RawMessage to find its end, the binary
// codec just copies a length-prefixed region — so the payload size
// class is the main lever on the cross-transport ratio.
func benchPayload() json.RawMessage {
	var sb bytes.Buffer
	sb.WriteString(`{"genome":[`)
	for i := 0; i < 512; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%.6f", float64(i)*0.125-4)
	}
	sb.WriteString(`]}`)
	return sb.Bytes()
}

// BenchmarkCodecRoundTrip pins the per-frame cost of each codec in
// isolation: one submit message encoded and decoded through an in-memory
// stream, no scheduler and no sockets.
func BenchmarkCodecRoundTrip(b *testing.B) {
	m := &message{Type: msgSubmit, TaskID: "0123456789abcdef", Payload: benchPayload()}
	for _, tr := range []Transport{TransportBinary, TransportJSON} {
		b.Run("transport="+tr.String(), func(b *testing.B) {
			var buf bytes.Buffer
			var wc wireCounters
			cd := newCodec(tr, &buf, &buf, &wc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := cd.write(m); err != nil {
					b.Fatal(err)
				}
				if _, err := cd.read(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchScheduler measures sustained submit→assign→result throughput with
// a pool of echo workers, over loopback TCP or through the chaos proxy's
// extra hop, on either framing.  ns/op is the wall cost of one task at
// saturation; bench.sh divides the JSON and binary numbers per
// configuration into the sched_throughput_speedup_vs_json section of
// BENCH_7.json.
func benchScheduler(b *testing.B, workers int, tr Transport, viaProxy bool) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer sched.Close()
	addr := sched.Addr()
	if viaProxy {
		addr = newChaosProxy(b, addr).Addr()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool := make([]*Worker, 0, workers)
	for i := 0; i < workers; i++ {
		w, err := NewWorkerTransport(addr, fmt.Sprintf("w%d", i), echoHandler, tr)
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		pool = append(pool, w)
		go func() { _ = w.Run(ctx) }()
	}
	for sched.Stats().Workers < int64(workers) {
		time.Sleep(time.Millisecond)
	}
	client, err := NewClientTransport(addr, tr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	payload := benchPayload()
	inflight := 2 * workers
	if inflight > 256 {
		inflight = 256
	}
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := client.Submit(ctx, payload); err != nil {
				b.Error(err)
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	_ = pool
}

// BenchmarkSchedulerThroughput is the headline grid: task throughput by
// worker-pool size and framing over plain loopback.
func BenchmarkSchedulerThroughput(b *testing.B) {
	for _, workers := range []int{1, 10, 100, 500} {
		for _, tr := range []Transport{TransportBinary, TransportJSON} {
			b.Run(fmt.Sprintf("workers=%d/transport=%v", workers, tr), func(b *testing.B) {
				benchScheduler(b, workers, tr, false)
			})
		}
	}
}

// benchSchedulerScaleOut is the scale-out twin of benchScheduler: the
// same sustained submit→assign→result load, but the whole fleet — every
// worker plus the client — either multiplexes over a small shared TCP
// pool (mode=mux, 2 physical connections) or keeps one TCP connection
// per peer (mode=perconn, the BENCH_7 configuration).  The coalescing
// budget stays 0 — on the single-core bench box, batching purely
// opportunistically (frames staged while a flush is in flight leave
// together) wins over paying the timer latency.  bench.sh divides each
// point by the BENCH_7 binary baseline into
// sched_throughput_speedup_vs_bench7 in BENCH_8.json.
func benchSchedulerScaleOut(b *testing.B, workers int, muxed bool) {
	const (
		muxConns = 2
		coalesce = 0
	)
	cfg := SchedulerConfig{}
	if muxed {
		cfg.Coalesce = coalesce
	}
	sched, err := NewSchedulerWithConfig("127.0.0.1:0", cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sched.Close()

	var dialer *MuxDialer
	if muxed {
		dialer = &MuxDialer{Addr: sched.Addr(), Conns: muxConns, Coalesce: coalesce}
		defer dialer.Close()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < workers; i++ {
		var w *Worker
		if muxed {
			w, err = NewWorkerMux(dialer, fmt.Sprintf("w%d", i), echoHandler)
		} else {
			w, err = NewWorker(sched.Addr(), fmt.Sprintf("w%d", i), echoHandler)
		}
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		go func() { _ = w.Run(ctx) }()
	}
	for sched.Stats().Workers < int64(workers) {
		time.Sleep(time.Millisecond)
	}
	var client *Client
	if muxed {
		client, err = NewClientMux(dialer)
	} else {
		client, err = NewClient(sched.Addr())
	}
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	payload := benchPayload()
	inflight := 2 * workers
	if inflight > 256 {
		inflight = 256
	}
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := client.Submit(ctx, payload); err != nil {
				b.Error(err)
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
}

// BenchmarkSchedulerThroughputScaleOut is the fleet-size grid for the
// mux PR: throughput by worker count, multiplexed over 4 shared TCP
// connections vs one connection per peer.  The workers=1000 points
// exist to demonstrate the fleet completes at a size the per-connection
// path only barely sustains.
func BenchmarkSchedulerThroughputScaleOut(b *testing.B) {
	for _, workers := range []int{1, 10, 100, 500, 1000} {
		for _, mode := range []string{"mux", "perconn"} {
			b.Run(fmt.Sprintf("workers=%d/mode=%s", workers, mode), func(b *testing.B) {
				benchSchedulerScaleOut(b, workers, mode == "mux")
			})
		}
	}
}

// BenchmarkSchedulerThroughputChaos repeats the mid-size grid points
// through the chaos proxy (no faults armed), paying one extra TCP hop
// per direction — closer to a real network path than bare loopback.
func BenchmarkSchedulerThroughputChaos(b *testing.B) {
	for _, workers := range []int{10, 100} {
		for _, tr := range []Transport{TransportBinary, TransportJSON} {
			b.Run(fmt.Sprintf("workers=%d/transport=%v", workers, tr), func(b *testing.B) {
				benchScheduler(b, workers, tr, true)
			})
		}
	}
}
