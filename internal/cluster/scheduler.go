package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/mux"
)

// task is one unit of work tracked by the scheduler.
type task struct {
	id       string
	payload  json.RawMessage
	attempts int
	reply    chan *message // delivers the final result to the client proxy
	mu       sync.Mutex
	done     bool
}

// complete delivers a result exactly once; late duplicates (e.g. from a
// worker that answered after its lease was given away) are dropped.  It
// reports whether THIS call delivered the result, so callers can count
// Completed/Failed only for the delivery that actually happened.
func (t *task) complete(m *message) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return false
	}
	t.done = true
	t.reply <- m
	return true
}

func (t *task) isDone() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// Stats reports scheduler activity counters.  The books balance:
// every submitted task is eventually counted exactly once as Completed or
// Failed, regardless of how many times it was reassigned or how many
// duplicate results arrived.
type Stats struct {
	Submitted  int64 // tasks received from clients
	Completed  int64 // tasks finished successfully
	Failed     int64 // tasks finished with an application error (or abandoned)
	Reassigned int64 // tasks requeued after a worker death or lease expiry
	Expired    int64 // leases that ran out (subset of Reassigned causes)
	Stale      int64 // late/duplicate results discarded
	Workers    int64 // workers currently connected
	QueueWaits int64 // enqueues that blocked on a full pending queue (backpressure)
}

// lease tracks one in-flight assignment: which task a worker is holding
// and until when the scheduler believes it.  Heartbeats renew the
// deadline; a lease that runs out hands the task back to the queue while
// the worker connection stays up — one slow round-trip no longer costs a
// healthy node (the bug this type exists to fix).
type lease struct {
	t        *task
	deadline time.Time
	started  time.Time
	resolved chan struct{} // closed when the reader delivers the result
}

// Scheduler accepts worker and client connections and routes tasks.
type Scheduler struct {
	// MaxAttempts bounds how many times a task is reassigned after worker
	// deaths or lease expiries before being failed outright (default 3).
	MaxAttempts int
	// TaskTimeout, if positive, is the lease duration for one assignment:
	// how long a worker may hold a task without completing it or
	// heartbeating before the scheduler hands the task to someone else.
	// It guards against nodes that hang without dropping their connection
	// — a hardware failure mode the paper's §2.2.4 lists.  Workers
	// normally enforce their own (shorter) execution limit; the lease is
	// the liveness backstop, not the execution cap.
	TaskTimeout time.Duration
	// Logf, if non-nil, receives diagnostic output.
	Logf func(format string, args ...interface{})
	// OnEvent, if non-nil, receives scheduler lifecycle events
	// synchronously.  Handlers must be fast and must not call back into
	// the scheduler.  Set it before the first connection arrives.
	OnEvent func(Event)

	ln       net.Listener
	coalesce time.Duration
	queue    *dispatchQueue
	stats    Stats
	wire     wireCounters
	mux      mux.Counters
	wg       sync.WaitGroup
	closed   chan struct{}
	once     sync.Once
	nextHome atomic.Uint32

	workersMu sync.Mutex
	workers   map[*workerProxy]struct{}

	connsMu sync.Mutex
	conns   map[net.Conn]struct{}
}

// SchedulerConfig tunes the scheduler's dispatch queue.  The zero value
// selects the defaults, which match the previous hard-coded behaviour
// (a 4096-task queue) plus sharding.
type SchedulerConfig struct {
	// QueueDepth bounds the tasks queued across all shards; submitters
	// block (and Stats.QueueWaits counts) when it is full.  Default 4096.
	QueueDepth int
	// QueueShards is the number of pending-queue shards (rounded up to a
	// power of two, capped at 256).  Default 8.
	QueueShards int
	// Coalesce is the frame-coalescing latency budget for accepted mux
	// sessions: once a flush batches, the next flush may wait up to this
	// long to deepen the batch.  0 disables the wait (opportunistic
	// batching still happens); idle sessions never wait either way.
	Coalesce time.Duration
}

func (c *SchedulerConfig) applyDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.QueueShards <= 0 {
		c.QueueShards = 8
	}
	if c.QueueShards > 256 {
		c.QueueShards = 256
	}
}

// NewScheduler creates a scheduler listening on addr (e.g. "127.0.0.1:0")
// with default queue settings.
func NewScheduler(addr string) (*Scheduler, error) {
	return NewSchedulerWithConfig(addr, SchedulerConfig{})
}

// NewSchedulerWithConfig creates a scheduler with an explicit queue
// configuration.
func NewSchedulerWithConfig(addr string, cfg SchedulerConfig) (*Scheduler, error) {
	cfg.applyDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		MaxAttempts: 3,
		ln:          ln,
		coalesce:    cfg.Coalesce,
		closed:      make(chan struct{}),
		workers:     make(map[*workerProxy]struct{}),
		conns:       make(map[net.Conn]struct{}),
	}
	s.queue = newDispatchQueue(cfg.QueueDepth, cfg.QueueShards, s.closed)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address for clients and workers.
func (s *Scheduler) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of activity counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Submitted:  atomic.LoadInt64(&s.stats.Submitted),
		Completed:  atomic.LoadInt64(&s.stats.Completed),
		Failed:     atomic.LoadInt64(&s.stats.Failed),
		Reassigned: atomic.LoadInt64(&s.stats.Reassigned),
		Expired:    atomic.LoadInt64(&s.stats.Expired),
		Stale:      atomic.LoadInt64(&s.stats.Stale),
		Workers:    atomic.LoadInt64(&s.stats.Workers),
		QueueWaits: s.queue.waits.Load(),
	}
}

// QueueDepths returns the per-shard pending-queue depths under a
// consistent view (all shard locks held at once), for stats dumps and
// metrics.
func (s *Scheduler) QueueDepths() []int {
	return s.queue.depths(make([]int, 0, len(s.queue.shards)))
}

// Mux returns a snapshot of the scheduler's multiplexing counters,
// aggregated across every mux session it has accepted.
func (s *Scheduler) Mux() mux.Stats { return s.mux.Stats() }

// Wire returns a snapshot of the scheduler's transport counters,
// aggregated across every connection it has accepted.
func (s *Scheduler) Wire() WireStats { return s.wire.snapshot() }

// WorkerStats snapshots the per-worker counters of every connected
// worker, sorted by name.
func (s *Scheduler) WorkerStats() []WorkerStats {
	s.workersMu.Lock()
	proxies := make([]*workerProxy, 0, len(s.workers))
	for w := range s.workers {
		proxies = append(proxies, w)
	}
	s.workersMu.Unlock()
	out := make([]WorkerStats, 0, len(proxies))
	for _, w := range proxies {
		out = append(out, w.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close shuts the scheduler down and waits for connection handlers.
// Active worker and client connections are force-closed: their owners are
// expected to reconnect (and, for clients, resubmit) if a new scheduler
// comes up — the scheduler holds no durable state worth draining.
func (s *Scheduler) Close() error {
	s.once.Do(func() { close(s.closed) })
	err := s.ln.Close()
	s.connsMu.Lock()
	for c := range s.conns {
		//lint:ignore errdiscard force-close on shutdown by design: unblocks reader goroutines; the listener close error is what Close reports
		c.Close()
	}
	s.connsMu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Scheduler) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Scheduler) event(typ EventType, worker, taskID, detail string) {
	if s.OnEvent == nil {
		return
	}
	s.OnEvent(Event{Time: time.Now(), Type: typ, Worker: worker, TaskID: taskID, Detail: detail})
}

func (s *Scheduler) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("cluster: accept: %v", err)
				return
			}
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// handleConn peeks the first byte to negotiate the framing (binary
// frames start with wire.MagicByte0; JSON length prefixes cannot), reads
// the first message to learn whether the peer is a worker or a client,
// then runs the corresponding proxy loop.  A frame that fails to decode
// — here or in either proxy — costs only this connection: the codec
// counts the error, the handler returns, and the campaign carries on
// over the surviving connections.
func (s *Scheduler) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.connsMu.Lock()
	s.conns[conn] = struct{}{}
	s.connsMu.Unlock()
	defer func() {
		s.connsMu.Lock()
		delete(s.conns, conn)
		s.connsMu.Unlock()
	}()
	cd, br, err := negotiate(conn, &s.wire)
	if err != nil {
		return
	}
	first, err := cd.read()
	if err != nil {
		return
	}
	switch first.Type {
	case msgRegister:
		if first.Flags&flagMux != 0 && cd.transport() == TransportBinary {
			// A mux hello: from here on the connection carries only mux
			// frames.  The session takes over br (which the frame-exact
			// decoder left positioned right after the hello) and each
			// accepted stream is served like a fresh connection.
			s.runMuxSession(conn, br, first)
			return
		}
		s.runWorkerProxy(conn, cd, first)
	case msgSubmit:
		s.runClientProxy(cd, first)
	default:
		s.logf("cluster: unexpected first message %q", first.Type)
	}
}

// runMuxSession accepts logical streams off one multiplexed connection
// and serves each as if it were a fresh TCP connection: a stream's
// first message decides worker vs client, and a stream failure costs
// only that stream.  The physical connection is already registered in
// s.conns, so scheduler Close force-closes the session, which fails
// every stream and unwinds every handler.
func (s *Scheduler) runMuxSession(conn net.Conn, br *bufio.Reader, hello *message) {
	sess := mux.Server(conn, br, mux.Options{Coalesce: s.coalesce, Counters: &s.mux})
	defer sess.Close()
	s.logf("cluster: mux session from %q (%s)", hello.Name, conn.RemoteAddr())
	for {
		st, err := sess.Accept()
		if err != nil {
			s.logf("cluster: mux session from %q ended: %v", hello.Name, err)
			return
		}
		s.wg.Add(1)
		go s.handleStream(st)
	}
}

// handleStream serves one logical connection inside a mux session.  The
// codec sits directly on the stream — the session already counts
// physical bytes in (via the negotiate reader) and the codec counts
// logical frames both ways, so nothing is double-counted.
func (s *Scheduler) handleStream(st *mux.Stream) {
	defer s.wg.Done()
	defer st.Close()
	cd := newCodec(TransportBinary, st, st, &s.wire)
	first, err := cd.read()
	if err != nil {
		return
	}
	switch first.Type {
	case msgRegister:
		s.runWorkerProxy(st, cd, first)
	case msgSubmit:
		s.runClientProxy(cd, first)
	default:
		s.logf("cluster: unexpected first message %q on mux stream %d", first.Type, st.ID())
	}
}

// snapshot captures the compact catch-up state sent to a late-joining
// worker that asked for it: the campaign epoch (tasks submitted so
// far), the queue depth, and the sorted ids of every outstanding lease.
// Its cost is O(in-flight tasks) — there is no history to replay.
func (s *Scheduler) snapshot() *snapshotData {
	// Pending sums the shards under a consistent view (every shard lock
	// held at once) — reading shard lengths one at a time could count a
	// task twice or not at all while pushes and steals are in flight.
	snap := &snapshotData{
		Epoch:   uint64(atomic.LoadInt64(&s.stats.Submitted)),
		Pending: s.queue.queued(),
	}
	s.workersMu.Lock()
	for w := range s.workers {
		w.mu.Lock()
		for id := range w.inflight {
			snap.Leases = append(snap.Leases, id)
		}
		w.mu.Unlock()
	}
	s.workersMu.Unlock()
	sort.Strings(snap.Leases)
	return snap
}

// workerProxy is the scheduler-side state of one worker connection: the
// connection itself, the leases currently held by the worker, and its
// activity counters.
type workerProxy struct {
	s    *Scheduler
	conn net.Conn
	cd   codec
	name string

	mu       sync.Mutex
	inflight map[string]*lease
	ws       WorkerStats

	dead     chan struct{} // closed when the read loop exits
	deadOnce sync.Once
}

func (w *workerProxy) snapshot() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	ws := w.ws
	ws.Name = w.name
	ws.InFlight = len(w.inflight)
	return ws
}

// runWorkerProxy pulls pending tasks and leases them to one worker
// connection.  A worker that dies mid-task gets its leases requeued —
// the scheduler "reassigning tasks to other workers" after a node
// failure, with nannies disabled (§2.2.5).  A worker that is merely slow
// loses the lease but keeps the connection, so one slow task cannot
// permanently remove a healthy node from the pool.
func (s *Scheduler) runWorkerProxy(conn net.Conn, cd codec, first *message) {
	name := first.Name
	w := &workerProxy{
		s:        s,
		conn:     conn,
		cd:       cd,
		name:     name,
		inflight: make(map[string]*lease),
		dead:     make(chan struct{}),
	}
	atomic.AddInt64(&s.stats.Workers, 1)
	s.workersMu.Lock()
	s.workers[w] = struct{}{}
	s.workersMu.Unlock()
	defer func() {
		s.workersMu.Lock()
		delete(s.workers, w)
		s.workersMu.Unlock()
		atomic.AddInt64(&s.stats.Workers, -1)
		conn.Close()
		<-w.dead // reader has stopped touching shared state
		s.event(EventWorkerDisconnect, name, "", "")
		s.logf("cluster: worker %q disconnected", name)
	}()
	s.logf("cluster: worker %q connected", name)
	s.event(EventWorkerConnect, name, "", "")

	// A worker that set flagWantSnapshot (our Worker always does) gets the
	// compact catch-up state before its first assignment.  Raw registrants
	// without the flag see the exact pre-snapshot protocol.
	if first.Flags&flagWantSnapshot != 0 {
		if err := cd.write(&message{Type: msgSnapshot, Snap: s.snapshot()}); err != nil {
			return
		}
	}

	go w.readLoop()

	// Each proxy pops from its own home shard first (assigned round-robin
	// so proxies spread across shards) and steals from the rest.
	waiter := s.queue.newWaiter(s.nextHome.Add(1))
	for {
		t, ok := s.queue.pop(waiter, w.dead)
		if !ok {
			return
		}
		if t.isDone() {
			continue
		}
		if !w.dispatch(t) {
			return
		}
	}
}

// dispatch leases one task to the worker and blocks until the task is
// resolved (result delivered, lease expired, worker dead, or scheduler
// closed).  It reports whether the worker is still usable.
func (w *workerProxy) dispatch(t *task) bool {
	s := w.s
	now := time.Now()
	l := &lease{t: t, started: now, resolved: make(chan struct{})}
	if s.TaskTimeout > 0 {
		l.deadline = now.Add(s.TaskTimeout)
	}
	w.mu.Lock()
	w.inflight[t.id] = l
	w.mu.Unlock()

	if err := w.cd.write(&message{Type: msgAssign, TaskID: t.id, Payload: t.payload}); err != nil {
		w.take(t.id)
		s.requeue(t, w.name, fmt.Sprintf("assign write failed: %v", err))
		return false
	}
	s.event(EventAssign, w.name, t.id, "")

	for {
		var expiry <-chan time.Time
		var timer *time.Timer
		if s.TaskTimeout > 0 {
			w.mu.Lock()
			deadline := l.deadline
			w.mu.Unlock()
			timer = time.NewTimer(time.Until(deadline))
			expiry = timer.C
		}
		select {
		case <-l.resolved:
			if timer != nil {
				timer.Stop()
			}
			return true
		case <-expiry:
			w.mu.Lock()
			cur, held := w.inflight[t.id]
			renewed := held && time.Now().Before(cur.deadline)
			if held && !renewed {
				delete(w.inflight, t.id)
				w.ws.Expired++
			}
			w.mu.Unlock()
			if renewed {
				continue // a heartbeat extended the lease; re-arm
			}
			if !held {
				continue // the reader resolved it concurrently; resolved fires next
			}
			atomic.AddInt64(&s.stats.Expired, 1)
			s.event(EventLeaseExpired, w.name, t.id, fmt.Sprintf("after %v", s.TaskTimeout))
			s.requeue(t, w.name, "lease expired")
			// The worker stays connected: a late result will be discarded
			// as stale by the reader, and the next pending task can still
			// be leased here.
			return true
		case <-w.dead:
			if timer != nil {
				timer.Stop()
			}
			if _, held := w.take(t.id); held {
				s.requeue(t, w.name, "worker connection lost")
			}
			return false
		case <-s.closed:
			if timer != nil {
				timer.Stop()
			}
			// Leave the task unresolved: client connections are dropping
			// too, and a reconnecting client will resubmit.
			w.take(t.id)
			return false
		}
	}
}

// take removes and returns the lease for id, if the proxy still holds it.
func (w *workerProxy) take(id string) (*lease, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	l, ok := w.inflight[id]
	if ok {
		delete(w.inflight, id)
	}
	return l, ok
}

// readLoop owns reads on the worker connection: results and heartbeats.
// Results for unknown tasks — completed elsewhere, reassigned after a
// lease expiry, or duplicated — are discarded with a stale-result event
// rather than treated as protocol violations, so a worker that answers
// late is never punished for it.
func (w *workerProxy) readLoop() {
	defer w.deadOnce.Do(func() { close(w.dead) })
	s := w.s
	for {
		m, err := w.cd.read()
		if err != nil {
			return
		}
		w.mu.Lock()
		w.ws.LastSeen = time.Now()
		w.mu.Unlock()
		switch m.Type {
		case msgHeartbeat:
			if s.TaskTimeout > 0 {
				w.mu.Lock()
				if l, ok := w.inflight[m.TaskID]; ok {
					l.deadline = time.Now().Add(s.TaskTimeout)
				}
				w.mu.Unlock()
			}
		case msgResult:
			l, held := w.take(m.TaskID)
			if !held {
				atomic.AddInt64(&s.stats.Stale, 1)
				w.mu.Lock()
				w.ws.Stale++
				w.mu.Unlock()
				s.event(EventStaleResult, w.name, m.TaskID, "discarded")
				continue
			}
			w.deliver(l, m)
			close(l.resolved)
		default:
			s.logf("cluster: worker %q sent unexpected %q; ignoring", w.name, m.Type)
		}
	}
}

// deliver hands a result to the task, counting Completed/Failed only if
// this worker's result was the one actually delivered — a duplicate from
// a previously-expired lease must not inflate the books.
func (w *workerProxy) deliver(l *lease, m *message) {
	s := w.s
	if !l.t.complete(m) {
		atomic.AddInt64(&s.stats.Stale, 1)
		w.mu.Lock()
		w.ws.Stale++
		w.mu.Unlock()
		s.event(EventStaleResult, w.name, m.TaskID, "task already completed")
		return
	}
	elapsed := time.Since(l.started)
	w.mu.Lock()
	if m.Err != "" {
		w.ws.Failed++
	} else {
		w.ws.Completed++
	}
	w.ws.Latency += elapsed
	w.mu.Unlock()
	if m.Err != "" {
		atomic.AddInt64(&s.stats.Failed, 1)
	} else {
		atomic.AddInt64(&s.stats.Completed, 1)
	}
	s.event(EventResult, w.name, m.TaskID, fmt.Sprintf("after %v err=%q", elapsed.Round(time.Millisecond), m.Err))
}

// requeue puts a task back on the queue after a worker failure or lease
// expiry, or fails it permanently once attempts are exhausted.
func (s *Scheduler) requeue(t *task, worker, why string) {
	if t.isDone() {
		return
	}
	t.attempts++
	if t.attempts >= s.MaxAttempts {
		if t.complete(&message{Type: msgResult, TaskID: t.id, Err: "cluster: task abandoned after repeated worker failures"}) {
			atomic.AddInt64(&s.stats.Failed, 1)
			s.event(EventTaskAbandoned, worker, t.id, fmt.Sprintf("after %d attempts (%s)", t.attempts, why))
		}
		return
	}
	atomic.AddInt64(&s.stats.Reassigned, 1)
	s.event(EventRequeue, worker, t.id, why)
	// A push that fails means the scheduler closed; dropping the task is
	// deliberate — the client connection is going down with the scheduler,
	// and a reconnecting client resubmits.
	s.queue.push(t)
}

// runClientProxy accepts submissions from one client connection and
// returns results as they complete.  Results may arrive out of submission
// order; the TaskID correlates them.
func (s *Scheduler) runClientProxy(cd codec, first *message) {
	results := make(chan *message, 1024)
	clientDone := make(chan struct{})
	var writerWG sync.WaitGroup
	defer func() {
		close(clientDone)
		writerWG.Wait()
	}()
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for {
			select {
			case m := <-results:
				if err := cd.write(m); err != nil {
					return
				}
			case <-clientDone:
				return
			}
		}
	}()

	submit := func(m *message) error {
		t := &task{id: m.TaskID, payload: m.Payload, reply: make(chan *message, 1)}
		atomic.AddInt64(&s.stats.Submitted, 1)
		if !s.queue.push(t) {
			return errors.New("scheduler closed")
		}
		go func() {
			select {
			case r := <-t.reply:
				select {
				case results <- r:
				case <-clientDone:
				case <-s.closed:
				}
			case <-clientDone:
			case <-s.closed:
			}
		}()
		return nil
	}

	if err := submit(first); err != nil {
		return
	}
	for {
		m, err := cd.read()
		if err != nil {
			return
		}
		if m.Type != msgSubmit {
			s.logf("cluster: client protocol violation: %q", m.Type)
			return
		}
		if err := submit(m); err != nil {
			return
		}
	}
}

// ensure log is referenced for default diagnostics wiring.
var _ = log.Printf

// String describes the scheduler state for diagnostics.
func (s *Scheduler) String() string {
	st := s.Stats()
	return fmt.Sprintf("Scheduler{addr=%s workers=%d submitted=%d completed=%d failed=%d reassigned=%d expired=%d stale=%d queue_waits=%d}",
		s.Addr(), st.Workers, st.Submitted, st.Completed, st.Failed, st.Reassigned, st.Expired, st.Stale, st.QueueWaits)
}
