package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// task is one unit of work tracked by the scheduler.
type task struct {
	id       string
	payload  json.RawMessage
	attempts int
	reply    chan *message // delivers the final result to the client proxy
	mu       sync.Mutex
	done     bool
}

// complete delivers a result exactly once; late duplicates (e.g. from a
// worker that answered after being written off) are dropped.
func (t *task) complete(m *message) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return false
	}
	t.done = true
	t.reply <- m
	return true
}

// Stats reports scheduler activity counters.
type Stats struct {
	Submitted  int64 // tasks received from clients
	Completed  int64 // tasks finished successfully
	Failed     int64 // tasks finished with an application error
	Reassigned int64 // tasks requeued after a worker died
	Workers    int64 // workers currently connected
}

// Scheduler accepts worker and client connections and routes tasks.
type Scheduler struct {
	// MaxAttempts bounds how many times a task is reassigned after worker
	// deaths before being failed outright (default 3).
	MaxAttempts int
	// TaskTimeout, if positive, is the scheduler-side limit on one
	// worker round-trip.  It guards against nodes that hang without
	// dropping their connection — a hardware failure mode the paper's
	// §2.2.4 lists — by abandoning the worker proxy and requeueing the
	// task elsewhere.  Workers normally enforce their own (shorter)
	// limit; this is the backstop.
	TaskTimeout time.Duration
	// Logf, if non-nil, receives diagnostic output.
	Logf func(format string, args ...interface{})

	ln      net.Listener
	pending chan *task
	stats   Stats
	wg      sync.WaitGroup
	closed  chan struct{}
	once    sync.Once
}

// NewScheduler creates a scheduler listening on addr (e.g. "127.0.0.1:0").
func NewScheduler(addr string) (*Scheduler, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		MaxAttempts: 3,
		ln:          ln,
		pending:     make(chan *task, 4096),
		closed:      make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address for clients and workers.
func (s *Scheduler) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of activity counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Submitted:  atomic.LoadInt64(&s.stats.Submitted),
		Completed:  atomic.LoadInt64(&s.stats.Completed),
		Failed:     atomic.LoadInt64(&s.stats.Failed),
		Reassigned: atomic.LoadInt64(&s.stats.Reassigned),
		Workers:    atomic.LoadInt64(&s.stats.Workers),
	}
}

// Close shuts the scheduler down and waits for connection handlers.
func (s *Scheduler) Close() error {
	s.once.Do(func() { close(s.closed) })
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Scheduler) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Scheduler) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("cluster: accept: %v", err)
				return
			}
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// handleConn reads the first message to learn whether the peer is a
// worker or a client, then runs the corresponding proxy loop.
func (s *Scheduler) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	first, err := readMessage(conn)
	if err != nil {
		return
	}
	switch first.Type {
	case msgRegister:
		s.runWorkerProxy(conn, first.Name)
	case msgSubmit:
		s.runClientProxy(conn, first)
	default:
		s.logf("cluster: unexpected first message %q", first.Type)
	}
}

// runWorkerProxy pulls pending tasks and round-trips them through one
// worker connection.  If the worker dies mid-task, the task is requeued —
// this is the scheduler "reassigning tasks to other workers" after a node
// failure, with nannies disabled (§2.2.5).
func (s *Scheduler) runWorkerProxy(conn net.Conn, name string) {
	atomic.AddInt64(&s.stats.Workers, 1)
	defer atomic.AddInt64(&s.stats.Workers, -1)
	s.logf("cluster: worker %q connected", name)
	for {
		var t *task
		select {
		case <-s.closed:
			return
		case t = <-s.pending:
		}
		if t.isDone() {
			continue
		}
		if s.TaskTimeout > 0 {
			deadline := time.Now().Add(s.TaskTimeout)
			if err := conn.SetDeadline(deadline); err != nil {
				s.requeue(t)
				return
			}
		}
		if err := writeMessage(conn, &message{Type: msgAssign, TaskID: t.id, Payload: t.payload}); err != nil {
			s.requeue(t)
			return
		}
		resp, err := readMessage(conn)
		if err != nil {
			// Connection error or deadline expiry: the worker is dead or
			// hung.  Abandon it (no nanny) and requeue the task.
			s.requeue(t)
			return
		}
		if resp.Type != msgResult || resp.TaskID != t.id {
			s.logf("cluster: worker %q protocol violation", name)
			s.requeue(t)
			return
		}
		if resp.Err != "" {
			atomic.AddInt64(&s.stats.Failed, 1)
		} else {
			atomic.AddInt64(&s.stats.Completed, 1)
		}
		t.complete(resp)
	}
}

func (t *task) isDone() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// requeue puts a task back on the queue after a worker failure, or fails
// it permanently once attempts are exhausted.
func (s *Scheduler) requeue(t *task) {
	if t.isDone() {
		return
	}
	t.attempts++
	if t.attempts >= s.MaxAttempts {
		atomic.AddInt64(&s.stats.Failed, 1)
		t.complete(&message{Type: msgResult, TaskID: t.id, Err: "cluster: task abandoned after repeated worker failures"})
		return
	}
	atomic.AddInt64(&s.stats.Reassigned, 1)
	select {
	case s.pending <- t:
	case <-s.closed:
		t.complete(&message{Type: msgResult, TaskID: t.id, Err: "cluster: scheduler shut down"})
	}
}

// runClientProxy accepts submissions from one client connection and
// returns results as they complete.  Results may arrive out of submission
// order; the TaskID correlates them.
func (s *Scheduler) runClientProxy(conn net.Conn, first *message) {
	results := make(chan *message, 1024)
	clientDone := make(chan struct{})
	var writerWG sync.WaitGroup
	defer func() {
		close(clientDone)
		writerWG.Wait()
	}()
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for {
			select {
			case m := <-results:
				if err := writeMessage(conn, m); err != nil {
					return
				}
			case <-clientDone:
				return
			}
		}
	}()

	submit := func(m *message) error {
		t := &task{id: m.TaskID, payload: m.Payload, reply: make(chan *message, 1)}
		atomic.AddInt64(&s.stats.Submitted, 1)
		select {
		case s.pending <- t:
		case <-s.closed:
			return errors.New("scheduler closed")
		}
		go func() {
			r := <-t.reply
			select {
			case results <- r:
			case <-clientDone:
			case <-s.closed:
			}
		}()
		return nil
	}

	if err := submit(first); err != nil {
		return
	}
	for {
		m, err := readMessage(conn)
		if err != nil {
			return
		}
		if m.Type != msgSubmit {
			s.logf("cluster: client protocol violation: %q", m.Type)
			return
		}
		if err := submit(m); err != nil {
			return
		}
	}
}

// ensure log is referenced for default diagnostics wiring.
var _ = log.Printf

// String describes the scheduler state for diagnostics.
func (s *Scheduler) String() string {
	st := s.Stats()
	return fmt.Sprintf("Scheduler{addr=%s workers=%d submitted=%d completed=%d failed=%d reassigned=%d}",
		s.Addr(), st.Workers, st.Submitted, st.Completed, st.Failed, st.Reassigned)
}
