package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/cluster/wire"
)

// Transport selects the framing a worker or client speaks to the
// scheduler.  Binary is the default (the zero value): the hand-rolled
// length-prefixed codec in internal/cluster/wire, zero-copy on decode
// and allocation-free in steady state.  JSON is the compatibility
// fallback — the original length-prefixed JSON framing, still accepted
// per connection so mixed fleets can roll over gradually.
//
// The scheduler needs no configuration: it peeks the first byte of each
// accepted connection (binary frames start 0xD5, JSON length prefixes
// are ≤ 0x04) and speaks whatever the peer chose.
type Transport int

const (
	// TransportBinary is the default binary framing (internal/cluster/wire).
	TransportBinary Transport = iota
	// TransportJSON is the length-prefixed JSON fallback framing.
	TransportJSON
)

// String names the transport for flags and logs.
func (t Transport) String() string {
	switch t {
	case TransportBinary:
		return "binary"
	case TransportJSON:
		return "json"
	}
	return fmt.Sprintf("transport(%d)", int(t))
}

// ParseTransport converts a -transport flag value.
func ParseTransport(s string) (Transport, error) {
	switch s {
	case "binary":
		return TransportBinary, nil
	case "json":
		return TransportJSON, nil
	}
	return 0, fmt.Errorf("cluster: unknown transport %q (want binary or json)", s)
}

// WireStats is a snapshot of one endpoint's transport counters: frames
// and bytes in each direction, decode failures (corrupt, truncated or
// oversized frames — each one also cost the connection it arrived on),
// and how many negotiated connections chose each framing.
type WireStats struct {
	FramesIn     int64
	FramesOut    int64
	BytesIn      int64
	BytesOut     int64
	DecodeErrors int64
	BinaryConns  int64 // connections negotiated onto binary framing
	JSONConns    int64 // connections negotiated onto JSON framing
}

// String renders a one-line summary for stats dumps.
func (ws WireStats) String() string {
	return fmt.Sprintf("wire: frames_in=%d frames_out=%d bytes_in=%d bytes_out=%d decode_errors=%d conns_binary=%d conns_json=%d",
		ws.FramesIn, ws.FramesOut, ws.BytesIn, ws.BytesOut, ws.DecodeErrors, ws.BinaryConns, ws.JSONConns)
}

// wireCounters is the shared atomic backing for WireStats; one lives on
// the scheduler (aggregated across every connection) and one on each
// worker and client.
type wireCounters struct {
	framesIn, framesOut   atomic.Int64
	bytesIn, bytesOut     atomic.Int64
	decodeErrors          atomic.Int64
	binaryConns, jsonConns atomic.Int64
}

func (c *wireCounters) snapshot() WireStats {
	return WireStats{
		FramesIn:     c.framesIn.Load(),
		FramesOut:    c.framesOut.Load(),
		BytesIn:      c.bytesIn.Load(),
		BytesOut:     c.bytesOut.Load(),
		DecodeErrors: c.decodeErrors.Load(),
		BinaryConns:  c.binaryConns.Load(),
		JSONConns:    c.jsonConns.Load(),
	}
}

// countConn records one negotiated connection by framing.
func (c *wireCounters) countConn(tr Transport) {
	if tr == TransportBinary {
		c.binaryConns.Add(1)
	} else {
		c.jsonConns.Add(1)
	}
}

// codec frames protocol messages over one connection.  Implementations
// keep independent read and write state, so one goroutine may read while
// another writes (the worker's heartbeats race its results); two
// concurrent writers or readers must be serialized by the caller, which
// matches the discipline net.Conn already demands.
type codec interface {
	write(m *message) error
	read() (*message, error)
	transport() Transport
}

// newCodec builds the codec for an established connection: r is the
// (possibly buffered) read side, w the raw write side.
func newCodec(tr Transport, r io.Reader, w io.Writer, c *wireCounters) codec {
	if tr == TransportJSON {
		return &jsonCodec{r: r, w: countingWriter{w: w}, c: c}
	}
	return &binCodec{enc: wire.NewEncoder(w), dec: wire.NewDecoder(r), c: c}
}

// dialCodec sets up the codec on the dialing side (worker or client),
// where the transport is chosen by configuration rather than peeked.
func dialCodec(tr Transport, conn io.ReadWriter, c *wireCounters) codec {
	br := bufio.NewReaderSize(countingReader{conn, &c.bytesIn}, 16<<10)
	c.countConn(tr)
	return newCodec(tr, br, conn, c)
}

// jsonCodec is the original framing: 4-byte big-endian length + JSON.
type jsonCodec struct {
	r io.Reader
	w countingWriter
	c *wireCounters
}

func (j *jsonCodec) transport() Transport { return TransportJSON }

func (j *jsonCodec) write(m *message) error {
	j.w.n = 0
	if err := writeMessage(&j.w, m); err != nil {
		j.c.bytesOut.Add(j.w.n)
		return err
	}
	j.c.bytesOut.Add(j.w.n)
	j.c.framesOut.Add(1)
	return nil
}

func (j *jsonCodec) read() (*message, error) {
	m, err := readMessage(j.r)
	if err != nil {
		if errors.Is(err, errBadFrame) || errors.Is(err, io.ErrUnexpectedEOF) {
			j.c.decodeErrors.Add(1)
		}
		return nil, err
	}
	j.c.framesIn.Add(1)
	return m, nil
}

// countingWriter tallies written bytes for the JSON codec, which frames
// in two Write calls.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// binCodec adapts the wire package to the cluster message type.  The
// scratch wire.Messages keep read and write state independent; retained
// fields are copied out of the decoder's buffer at this boundary, which
// is where the per-message allocation cost of the whole binary path
// lives (the codec beneath it is allocation-free).
type binCodec struct {
	enc *wire.Encoder
	dec *wire.Decoder
	c   *wireCounters
	wm  wire.Message // write-side scratch
	rm  wire.Message // read-side scratch
}

func (b *binCodec) transport() Transport { return TransportBinary }

func (b *binCodec) write(m *message) error {
	if err := toWire(m, &b.wm); err != nil {
		return err
	}
	n, err := b.enc.Encode(&b.wm)
	b.c.bytesOut.Add(int64(n))
	if err != nil {
		return err
	}
	b.c.framesOut.Add(1)
	return nil
}

func (b *binCodec) read() (*message, error) {
	if err := b.dec.Decode(&b.rm); err != nil {
		if wire.IsDecodeError(err) {
			b.c.decodeErrors.Add(1)
		}
		return nil, err
	}
	b.c.framesIn.Add(1)
	return fromWire(&b.rm)
}

// msgTypeToWire maps the transport-independent message types onto wire
// frame types.
func msgTypeToWire(t msgType) (wire.Type, bool) {
	switch t {
	case msgRegister:
		return wire.TypeRegister, true
	case msgSubmit:
		return wire.TypeSubmit, true
	case msgAssign:
		return wire.TypeAssign, true
	case msgResult:
		return wire.TypeResult, true
	case msgHeartbeat:
		return wire.TypeHeartbeat, true
	case msgSnapshot:
		return wire.TypeSnapshot, true
	}
	return 0, false
}

func wireTypeToMsg(t wire.Type) (msgType, bool) {
	switch t {
	case wire.TypeRegister:
		return msgRegister, true
	case wire.TypeSubmit:
		return msgSubmit, true
	case wire.TypeAssign:
		return msgAssign, true
	case wire.TypeResult:
		return msgResult, true
	case wire.TypeHeartbeat:
		return msgHeartbeat, true
	case wire.TypeSnapshot:
		return msgSnapshot, true
	}
	return "", false
}

// toWire fills wm from m, reusing wm's field capacity where possible.
func toWire(m *message, wm *wire.Message) error {
	t, ok := msgTypeToWire(m.Type)
	if !ok {
		return fmt.Errorf("cluster: message type %q has no binary encoding", m.Type)
	}
	wm.Type = t
	wm.Flags = m.Flags
	wm.TaskID = append(wm.TaskID[:0], m.TaskID...)
	wm.Name = append(wm.Name[:0], m.Name...)
	wm.Err = append(wm.Err[:0], m.Err...)
	wm.Payload = append(wm.Payload[:0], m.Payload...)
	wm.Epoch, wm.Pending = 0, 0
	wm.Leases = wm.Leases[:0]
	if m.Snap != nil {
		wm.Epoch = m.Snap.Epoch
		wm.Pending = uint64(m.Snap.Pending)
		for _, id := range m.Snap.Leases {
			wm.Leases = append(wm.Leases, []byte(id))
		}
	}
	return nil
}

// fromWire converts a decoded frame into a fresh message, copying every
// retained field out of the decoder's reused buffer.
func fromWire(wm *wire.Message) (*message, error) {
	t, ok := wireTypeToMsg(wm.Type)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown wire type %d", byte(wm.Type))
	}
	m := &message{
		Type:   t,
		Flags:  wm.Flags,
		TaskID: string(wm.TaskID),
		Name:   string(wm.Name),
		Err:    string(wm.Err),
	}
	if len(wm.Payload) > 0 {
		m.Payload = append([]byte(nil), wm.Payload...)
	}
	if t == msgSnapshot {
		snap := &snapshotData{Epoch: wm.Epoch, Pending: int(wm.Pending)}
		for _, id := range wm.Leases {
			snap.Leases = append(snap.Leases, string(id))
		}
		m.Snap = snap
	}
	return m, nil
}

// negotiate inspects the first byte of an accepted connection and
// returns the codec for whichever framing the peer is speaking, plus
// the buffered reader every subsequent read must go through — a mux
// hello hands that reader (and any bytes it buffered) over to the
// session layer, so nothing on the stream is lost in the takeover.
// Binary frames open with wire.MagicByte0 (0xD5); JSON frames open
// with a length byte that the 64 MiB cap keeps ≤ 0x04.
func negotiate(conn io.ReadWriter, c *wireCounters) (codec, *bufio.Reader, error) {
	br := bufio.NewReaderSize(countingReader{conn, &c.bytesIn}, 16<<10)
	first, err := br.Peek(1)
	if err != nil {
		return nil, nil, err
	}
	tr := TransportJSON
	if first[0] == wire.MagicByte0 {
		tr = TransportBinary
	}
	c.countConn(tr)
	return newCodec(tr, br, conn, c), br, nil
}

// countingReader tallies bytes as they arrive off the connection, ahead
// of any buffering, so byte counters reflect the stream itself.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}
