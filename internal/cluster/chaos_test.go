package cluster

// This file is the fault-injection harness for the evaluation plane: a
// deterministic chaos TCP proxy that can cut, blackhole, delay, and
// truncate traffic between peers and the scheduler, plus the failure-path
// tests that exercise every recovery mechanism — lease expiry, stale
// result discard, duplicate accounting, asynchronous task timeout, worker
// and client reconnection, and a full scheduler bounce mid-campaign.
// Faults are driven explicitly from the tests (no randomness), so each
// recovery path is reproduced on every run.

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster/wire"
	"repro/internal/ea"
	"repro/internal/nsga2"
)

// chaosProxy forwards TCP between accepted connections and a target
// address, applying injected faults on the way.
type chaosProxy struct {
	ln     net.Listener
	target string

	mu        sync.Mutex
	pipes     []*chaosPipe
	blackhole bool          // swallow all forwarded bytes (peers see a hang)
	delay     time.Duration // added before each forwarded chunk
	truncate  int           // >0: forward this many more bytes toward the target side, then cut
	mutate    func([]byte)  // applied in place to the next toward-target chunk, then disarmed
	closed    bool
}

type chaosPipe struct {
	client, server net.Conn
	once           sync.Once
}

func (p *chaosPipe) close() {
	p.once.Do(func() {
		p.client.Close()
		p.server.Close()
	})
}

func newChaosProxy(t testing.TB, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("chaos proxy listen: %v", err)
	}
	cp := &chaosProxy{ln: ln, target: target}
	go cp.acceptLoop()
	t.Cleanup(cp.Close)
	return cp
}

func (cp *chaosProxy) Addr() string { return cp.ln.Addr().String() }

func (cp *chaosProxy) acceptLoop() {
	for {
		conn, err := cp.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", cp.target)
		if err != nil {
			conn.Close()
			continue
		}
		pipe := &chaosPipe{client: conn, server: server}
		cp.mu.Lock()
		if cp.closed {
			cp.mu.Unlock()
			pipe.close()
			return
		}
		cp.pipes = append(cp.pipes, pipe)
		cp.mu.Unlock()
		go cp.forward(server, conn, pipe, true)  // client → server (toward scheduler)
		go cp.forward(conn, server, pipe, false) // server → client
	}
}

// forward copies src to dst, consulting the fault settings before every
// chunk.  Truncation applies to the toward-target direction only, so a
// test can slice a specific frame in half.
func (cp *chaosProxy) forward(dst, src net.Conn, pipe *chaosPipe, towardTarget bool) {
	defer pipe.close()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			cp.mu.Lock()
			delay, blackhole := cp.delay, cp.blackhole
			cut := false
			limit := n
			if towardTarget && cp.truncate > 0 {
				if n >= cp.truncate {
					limit = cp.truncate
					cp.truncate = 0
					cut = true
				} else {
					cp.truncate -= n
				}
			}
			var mutate func([]byte)
			if towardTarget && cp.mutate != nil {
				mutate, cp.mutate = cp.mutate, nil
			}
			cp.mu.Unlock()
			if delay > 0 {
				time.Sleep(delay)
			}
			if mutate != nil {
				mutate(buf[:limit])
			}
			if !blackhole {
				if _, werr := dst.Write(buf[:limit]); werr != nil {
					return
				}
			}
			if cut {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// CutAll severs every live pipe, simulating a network partition or a
// scheduler crash as seen from the proxied peers.
func (cp *chaosProxy) CutAll() {
	cp.mu.Lock()
	pipes := append([]*chaosPipe(nil), cp.pipes...)
	cp.pipes = cp.pipes[:0]
	cp.mu.Unlock()
	for _, p := range pipes {
		p.close()
	}
}

// CutPipe severs the i-th accepted pipe (0-based, accept order), leaving
// every other pipe flowing — the blast-radius probe for mux tests, where
// one physical connection carries several logical streams and cutting it
// must cost exactly those streams.
func (cp *chaosProxy) CutPipe(i int) bool {
	cp.mu.Lock()
	var p *chaosPipe
	if i >= 0 && i < len(cp.pipes) {
		p = cp.pipes[i]
		cp.pipes = append(cp.pipes[:i], cp.pipes[i+1:]...)
	}
	cp.mu.Unlock()
	if p == nil {
		return false
	}
	p.close()
	return true
}

// PipeCount reports how many live pipes the proxy is forwarding.
func (cp *chaosProxy) PipeCount() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.pipes)
}

// SetBlackhole toggles silent byte-dropping: connections stay up but no
// data flows, the signature of a hung NIC or a stalled node.
func (cp *chaosProxy) SetBlackhole(on bool) {
	cp.mu.Lock()
	cp.blackhole = on
	cp.mu.Unlock()
}

// SetDelay adds latency before each forwarded chunk.
func (cp *chaosProxy) SetDelay(d time.Duration) {
	cp.mu.Lock()
	cp.delay = d
	cp.mu.Unlock()
}

// MutateNext applies f (in place) to the next toward-target chunk, then
// disarms — a single corrupted frame on an otherwise healthy link, for
// flipped length prefixes and bad magic bytes.
func (cp *chaosProxy) MutateNext(f func([]byte)) {
	cp.mu.Lock()
	cp.mutate = f
	cp.mu.Unlock()
}

// TruncateAfter forwards n more toward-target bytes, then cuts the pipe —
// the peer receives a sliced frame.
func (cp *chaosProxy) TruncateAfter(n int) {
	cp.mu.Lock()
	cp.truncate = n
	cp.mu.Unlock()
}

func (cp *chaosProxy) Close() {
	cp.mu.Lock()
	cp.closed = true
	cp.mu.Unlock()
	cp.ln.Close()
	cp.CutAll()
}

// --- failure-path tests -------------------------------------------------

// TestLeaseExpiryKeepsSlowWorkerAlive is the headline bugfix test: a task
// that exceeds the scheduler lease is reassigned to another worker, the
// slow worker's late result is discarded as stale, and the slow worker
// keeps serving subsequent tasks instead of being written off.
func TestLeaseExpiryKeepsSlowWorkerAlive(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sched.TaskTimeout = 80 * time.Millisecond
	sched.MaxAttempts = 10
	defer sched.Close()

	var slowCalls, slowServed atomic.Int64
	slowHandler := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		if slowCalls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // ignores ctx: the classic slow training
		}
		slowServed.Add(1)
		return payload, nil
	}
	slow, err := NewWorker(sched.Addr(), "slow", slowHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	go func() { _ = slow.Run(context.Background()) }()

	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Submit while only the slow worker is connected, so it must take the
	// first task.
	resCh := make(chan error, 1)
	go func() {
		_, err := client.Submit(context.Background(), json.RawMessage(`{"first":true}`))
		resCh <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the slow worker take the task

	rescue, err := NewWorker(sched.Addr(), "rescue", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = rescue.Run(context.Background()) }()

	select {
	case err := <-resCh:
		if err != nil {
			t.Fatalf("task not rescued after lease expiry: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("task never completed")
	}

	// Let the slow worker finish its abandoned task and send the stale
	// result.
	time.Sleep(350 * time.Millisecond)

	// Kill the rescuer so subsequent tasks can only be served by the slow
	// worker — proving it was never dropped from the pool.
	rescue.Close()
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if _, err := client.Submit(context.Background(), json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatalf("slow worker no longer serving task %d: %v", i, err)
		}
	}

	st := sched.Stats()
	if st.Expired == 0 {
		t.Errorf("no lease expiry recorded: %+v", st)
	}
	if st.Stale == 0 {
		t.Errorf("stale result not recorded: %+v", st)
	}
	if st.Completed+st.Failed != st.Submitted {
		t.Errorf("books don't balance: %+v", st)
	}
	if got := slowServed.Load(); got < 3 {
		t.Errorf("slow worker served %d tasks after lease expiry, want >= 3", got)
	}
	found := false
	for _, ws := range sched.WorkerStats() {
		if ws.Name == "slow" {
			found = true
			if ws.Expired == 0 {
				t.Errorf("per-worker expiry not recorded: %+v", ws)
			}
		}
	}
	if !found {
		t.Error("slow worker missing from WorkerStats — it was dropped")
	}
}

// TestDuplicateResultDoesNotInflateStats drives the scheduler with a raw
// hand-rolled worker that answers every assignment twice.  The duplicate
// must be discarded as stale, and Completed + Failed must still equal
// Submitted.
func TestDuplicateResultDoesNotInflateStats(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	conn, err := net.Dial("tcp", sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeMessage(conn, &message{Type: msgRegister, Name: "duplicator"}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			m, err := readMessage(conn)
			if err != nil {
				return
			}
			res := &message{Type: msgResult, TaskID: m.TaskID, Payload: m.Payload}
			_ = writeMessage(conn, res)
			_ = writeMessage(conn, res) // the duplicate
		}
	}()

	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i := 0; i < 4; i++ {
		if _, err := client.Submit(context.Background(), json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	// The final duplicate races the final result's delivery; give it a
	// moment to be read and discarded.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := sched.Stats()
		if st.Stale >= 4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := sched.Stats()
	if st.Submitted != 4 || st.Completed != 4 || st.Failed != 0 {
		t.Errorf("stats inflated by duplicates: %+v", st)
	}
	if st.Completed+st.Failed != st.Submitted {
		t.Errorf("books don't balance: %+v", st)
	}
	if st.Stale != 4 {
		t.Errorf("Stale = %d, want 4", st.Stale)
	}
	if st.Workers != 1 {
		t.Errorf("duplicator dropped from pool: %+v", st)
	}
}

// TestHungHandlerTimesOutWorkerStaysLive verifies the asynchronous worker
// timeout: a handler that ignores its context is abandoned, the failure
// result is reported, and the same worker serves the next task.
func TestHungHandlerTimesOutWorkerStaysLive(t *testing.T) {
	var calls atomic.Int64
	unblock := make(chan struct{})
	handler := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		if calls.Add(1) == 1 {
			<-unblock // ignores ctx entirely
		}
		return payload, nil
	}
	lc, err := NewLocalCluster(1, handler, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	defer close(unblock)

	start := time.Now()
	_, err = lc.Client.Submit(context.Background(), json.RawMessage(`{"hang":true}`))
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("hung handler error = %v, want timeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout did not fire promptly")
	}

	// The worker must still be live for the next task.
	out, err := lc.Client.Submit(context.Background(), json.RawMessage(`{"ok":true}`))
	if err != nil {
		t.Fatalf("worker wedged after hung handler: %v", err)
	}
	if string(out) != `{"ok":true}` {
		t.Errorf("result = %s", out)
	}
}

// TestWorkerCancellationIsNotATimeout exercises Worker.execute directly:
// parent-context cancellation (Ctrl-C) must propagate as "no result",
// while a per-task deadline with a live parent must produce a timeout
// failure result.
func TestWorkerCancellationIsNotATimeout(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	blocker := func(ctx context.Context, _ json.RawMessage) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}

	// Case 1: parent cancelled mid-task → nil (propagate shutdown).
	w := &Worker{Name: "t", Handler: blocker, TaskTimeout: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if res := w.execute(ctx, dialCodec(TransportBinary, a, &w.wire), &message{Type: msgAssign, TaskID: "x"}); res != nil {
		t.Errorf("cancelled task produced result %+v, want nil (propagated shutdown)", res)
	}

	// Case 2: per-task deadline with live parent → timeout failure result.
	w2 := &Worker{Name: "t2", Handler: blocker, TaskTimeout: 20 * time.Millisecond}
	res := w2.execute(context.Background(), dialCodec(TransportBinary, a, &w2.wire), &message{Type: msgAssign, TaskID: "y"})
	if res == nil || !strings.Contains(res.Err, "timed out") {
		t.Errorf("timed-out task result = %+v, want timeout error", res)
	}
}

// restartScheduler brings a new scheduler up on the exact address a
// previous one occupied, retrying briefly while the OS releases the port.
func restartScheduler(t *testing.T, addr string) *Scheduler {
	t.Helper()
	var lastErr error
	for i := 0; i < 100; i++ {
		s, err := NewScheduler(addr)
		if err == nil {
			return s
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("could not restart scheduler on %s: %v", addr, lastErr)
	return nil
}

// TestWorkerReconnectsAfterSchedulerRestart bounces the scheduler and
// verifies the worker re-dials with backoff and serves tasks for the new
// incarnation.
func TestWorkerReconnectsAfterSchedulerRestart(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := sched.Addr()

	w, err := NewWorker(addr, "phoenix", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	w.ReconnectInitial = 10 * time.Millisecond
	defer w.Close()
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(context.Background()) }()

	c1, err := NewClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Submit(context.Background(), json.RawMessage(`{"gen":1}`)); err != nil {
		t.Fatalf("warm-up submit: %v", err)
	}
	c1.Close()

	sched.Close()
	sched2 := restartScheduler(t, addr)
	defer sched2.Close()

	c2, err := NewClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := c2.Submit(ctx, json.RawMessage(`{"gen":2}`))
	if err != nil {
		t.Fatalf("submit after scheduler restart: %v", err)
	}
	if string(out) != `{"gen":2}` {
		t.Errorf("result = %s", out)
	}
	select {
	case err := <-runDone:
		t.Fatalf("worker Run exited instead of reconnecting: %v", err)
	default:
	}
}

// TestChaosCutWorkerReconnects cuts the worker↔scheduler link with the
// chaos proxy mid-stream and verifies the worker reconnects (through the
// proxy) and keeps serving.
func TestChaosCutWorkerReconnects(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	proxy := newChaosProxy(t, sched.Addr())

	w, err := NewWorker(proxy.Addr(), "chaotic", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	w.ReconnectInitial = 10 * time.Millisecond
	defer w.Close()
	go func() { _ = w.Run(context.Background()) }()

	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Submit(context.Background(), json.RawMessage(`{"before":1}`)); err != nil {
		t.Fatalf("submit before cut: %v", err)
	}

	proxy.CutAll()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := client.Submit(ctx, json.RawMessage(`{"after":1}`))
	if err != nil {
		t.Fatalf("submit after cut: %v", err)
	}
	if string(out) != `{"after":1}` {
		t.Errorf("result = %s", out)
	}
}

// TestChaosTruncatedResultFrame slices a worker's result frame in half.
// The scheduler's read fails, the worker proxy dies, the task is requeued,
// and the reconnected worker completes it.
func TestChaosTruncatedResultFrame(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	proxy := newChaosProxy(t, sched.Addr())

	var calls atomic.Int64
	handler := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		calls.Add(1)
		return payload, nil
	}
	w, err := NewWorker(proxy.Addr(), "truncated", handler)
	if err != nil {
		t.Fatal(err)
	}
	w.ReconnectInitial = 10 * time.Millisecond
	defer w.Close()
	go func() { _ = w.Run(context.Background()) }()

	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Wait until the registration frame has fully crossed the proxy, so
	// the truncation budget is spent on the result frame, not on it.
	deadline := time.Now().Add(2 * time.Second)
	for sched.Stats().Workers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered through proxy")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Let the worker's result frame be cut a few bytes in.
	proxy.TruncateAfter(8)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := client.Submit(ctx, json.RawMessage(`{"x":42}`))
	if err != nil {
		t.Fatalf("submit through truncation: %v", err)
	}
	if string(out) != `{"x":42}` {
		t.Errorf("result = %s", out)
	}
	if st := sched.Stats(); st.Reassigned == 0 {
		t.Errorf("truncated frame did not cause a requeue: %+v", st)
	}
	if calls.Load() < 2 {
		t.Errorf("task executed %d times, want >= 2 (original + requeue)", calls.Load())
	}
	if ws := sched.Wire(); ws.DecodeErrors == 0 {
		t.Errorf("mid-frame cut not counted as a decode error: %v", ws)
	}
}

// TestChaosCorruptedFrameDropsConnNotCampaign corrupts a single result
// frame in flight — flipped length prefix or bad magic, over both
// framings — and verifies the blast radius is exactly one connection:
// the scheduler counts a decode error and drops the worker connection,
// the worker reconnects, the task is requeued and completes, and the
// untouched client connection never notices.
func TestChaosCorruptedFrameDropsConnNotCampaign(t *testing.T) {
	cases := []struct {
		name    string
		tr      Transport
		corrupt func([]byte)
	}{
		{"binary_bad_magic", TransportBinary, func(b []byte) { b[0] = 0x00 }},
		{"binary_length_flip", TransportBinary, func(b []byte) {
			if len(b) >= wire.HeaderSize {
				binary.BigEndian.PutUint32(b[6:10], 0xFFFFFFFF)
			}
		}},
		{"json_length_flip", TransportJSON, func(b []byte) {
			if len(b) >= 4 {
				binary.BigEndian.PutUint32(b[0:4], 0xFFFFFFFF)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched, err := NewScheduler("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer sched.Close()
			proxy := newChaosProxy(t, sched.Addr())

			var calls atomic.Int64
			handler := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
				calls.Add(1)
				return payload, nil
			}
			w, err := NewWorkerTransport(proxy.Addr(), "victim", handler, tc.tr)
			if err != nil {
				t.Fatal(err)
			}
			w.ReconnectInitial = 10 * time.Millisecond
			defer w.Close()
			go func() { _ = w.Run(context.Background()) }()

			client, err := NewClientTransport(sched.Addr(), tc.tr) // direct, unproxied
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			deadline := time.Now().Add(2 * time.Second)
			for sched.Stats().Workers == 0 {
				if time.Now().After(deadline) {
					t.Fatal("worker never registered through proxy")
				}
				time.Sleep(2 * time.Millisecond)
			}
			// Corrupt the worker's next frame toward the scheduler — its
			// result for the submission below.
			proxy.MutateNext(tc.corrupt)

			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			out, err := client.Submit(ctx, json.RawMessage(`{"x":7}`))
			if err != nil {
				t.Fatalf("campaign did not survive a corrupted frame: %v", err)
			}
			if string(out) != `{"x":7}` {
				t.Errorf("result = %s", out)
			}
			if ws := sched.Wire(); ws.DecodeErrors == 0 {
				t.Errorf("corruption not counted as a decode error: %v", ws)
			}
			if calls.Load() < 2 {
				t.Errorf("task executed %d times, want >= 2 (original + requeue after drop)", calls.Load())
			}
			st := sched.Stats()
			if st.Completed+st.Failed != st.Submitted {
				t.Errorf("books don't balance after corruption: %+v", st)
			}
			// Exactly one client connection was ever dialed: the corruption
			// cost the worker's connection, nobody else's.
			cw := client.Wire()
			if conns := cw.BinaryConns + cw.JSONConns; conns != 1 {
				t.Errorf("client dialed %d connections, want 1 (its connection must survive)", conns)
			}
		})
	}
}

// TestChaosClientReconnectResubmits cuts the client↔scheduler link while
// a task is in flight; the client must reconnect and resubmit it.
func TestChaosClientReconnectResubmits(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	proxy := newChaosProxy(t, sched.Addr())

	release := make(chan struct{})
	var once sync.Once
	handler := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		once.Do(func() { <-release }) // hold the first execution until the cut happened
		return payload, nil
	}
	w, err := NewWorker(sched.Addr(), "steady", handler)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go func() { _ = w.Run(context.Background()) }()

	client, err := NewClient(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	client.ReconnectInitial = 10 * time.Millisecond
	defer client.Close()

	resCh := make(chan error, 1)
	go func() {
		_, err := client.Submit(context.Background(), json.RawMessage(`{"inflight":1}`))
		resCh <- err
	}()
	time.Sleep(30 * time.Millisecond) // task is now in flight
	proxy.CutAll()
	close(release)

	select {
	case err := <-resCh:
		if err != nil {
			t.Fatalf("in-flight task lost across client reconnect: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight task never completed after reconnect")
	}
}

// TestChaosBlackholeLeaseRescue stalls the worker link (bytes vanish, the
// connection stays up) and verifies the lease mechanism hands the task to
// a healthy worker.
func TestChaosBlackholeLeaseRescue(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sched.TaskTimeout = 60 * time.Millisecond
	sched.MaxAttempts = 20 // the stalled proxy may win the requeue race several times
	defer sched.Close()
	proxy := newChaosProxy(t, sched.Addr())

	w, err := NewWorker(proxy.Addr(), "stalled", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go func() { _ = w.Run(context.Background()) }()

	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	proxy.SetBlackhole(true) // assignments now vanish en route

	resCh := make(chan error, 1)
	go func() {
		_, err := client.Submit(context.Background(), json.RawMessage(`{"x":1}`))
		resCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	healthy, err := NewWorker(sched.Addr(), "healthy", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	go func() { _ = healthy.Run(context.Background()) }()

	select {
	case err := <-resCh:
		if err != nil {
			t.Fatalf("task not rescued from blackholed worker: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("task never rescued from blackholed worker")
	}
}

// clusterEval is a deterministic two-objective evaluator used by the
// end-to-end bounce test: pure function of the genome, so re-executed
// (resubmitted) tasks always reproduce the same fitness.
func clusterEval(_ context.Context, g ea.Genome) (ea.Fitness, error) {
	time.Sleep(time.Millisecond) // stretch the campaign so the bounce lands mid-flight
	f0 := g[0]*g[0] + g[1]*g[1]
	f1 := (g[0]-1)*(g[0]-1) + (g[1]-1)*(g[1]-1)
	return ea.Fitness{f0, f1}, nil
}

func bounceCampaignConfig(ev ea.Evaluator) nsga2.Config {
	return nsga2.Config{
		PopSize:      12,
		Generations:  4,
		Bounds:       ea.Bounds{{Lo: -2, Hi: 2}, {Lo: -2, Hi: 2}},
		InitialStd:   []float64{0.3, 0.3},
		AnnealFactor: 0.85,
		Evaluator:    ev,
		Pool:         ea.PoolConfig{Parallelism: 6, Objectives: 2},
		Seed:         2023,
	}
}

// paretoSize counts rank-0 members of the final population.
func paretoSize(pop ea.Population) int {
	fronts := nsga2.RankOrdinalSort(pop)
	if len(fronts) == 0 {
		return 0
	}
	return len(fronts[0])
}

// TestSchedulerBounceMidCampaign is the end-to-end acceptance test: a
// whole NSGA-II campaign runs through the cluster while the scheduler is
// killed and restarted mid-flight.  Workers reconnect with backoff, the
// client resubmits its in-flight generation, and the campaign finishes
// with the exact frontier a local run produces — no spurious MAXINT
// failures anywhere.  Both framings must deliver the bit-identical
// frontier.
func TestSchedulerBounceMidCampaign(t *testing.T) {
	// Reference: the same campaign evaluated in-process.
	ref, err := nsga2.Run(context.Background(), bounceCampaignConfig(ea.EvaluatorFunc(clusterEval)))
	if err != nil {
		t.Fatal(err)
	}

	for _, tr := range []Transport{TransportBinary, TransportJSON} {
		t.Run(tr.String(), func(t *testing.T) {
			sched, err := NewScheduler("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := sched.Addr()

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			var workers []*Worker
			for i := 0; i < 4; i++ {
				w, err := NewWorkerTransport(addr, fmt.Sprintf("w%d", i), EvalHandler(ea.EvaluatorFunc(clusterEval)), tr)
				if err != nil {
					t.Fatal(err)
				}
				w.ReconnectInitial = 10 * time.Millisecond
				workers = append(workers, w)
				go func() { _ = w.Run(ctx) }()
			}
			defer func() {
				for _, w := range workers {
					w.Close()
				}
			}()

			client, err := NewClientTransport(addr, tr)
			if err != nil {
				t.Fatal(err)
			}
			client.ReconnectInitial = 10 * time.Millisecond
			client.MaxReconnects = 200
			defer client.Close()

			// Bounce the scheduler once the campaign is under way.
			bounced := make(chan *Scheduler, 1)
			go func() {
				time.Sleep(60 * time.Millisecond)
				sched.Close()
				bounced <- restartScheduler(t, addr)
			}()

			res, err := nsga2.Run(ctx, bounceCampaignConfig(&Evaluator{Client: client}))
			if err != nil {
				t.Fatalf("campaign failed across scheduler bounce: %v", err)
			}
			sched2 := <-bounced
			defer sched2.Close()

			if got := res.TotalFailures(); got != 0 {
				t.Errorf("bounced campaign recorded %d spurious failures", got)
			}
			if got, want := res.TotalEvaluations(), ref.TotalEvaluations(); got != want {
				t.Errorf("evaluations = %d, want %d", got, want)
			}
			if got, want := paretoSize(res.Final), paretoSize(ref.Final); got != want {
				t.Errorf("frontier size after bounce = %d, want %d (reference run)", got, want)
			}
			for i, ind := range res.Final {
				refInd := ref.Final[i]
				for k := range ind.Fitness {
					if ind.Fitness[k] != refInd.Fitness[k] {
						t.Fatalf("final[%d].Fitness[%d] = %v, want %v", i, k, ind.Fitness[k], refInd.Fitness[k])
					}
				}
			}
		})
	}
}

// TestCancelledSubmitNoSpuriousFailure pairs with the ea-side fix: a
// campaign abort surfaces as context.Canceled from Submit, which the EA
// records as "unevaluated", not as a MAXINT timeout.
func TestCancelledSubmitNoSpuriousFailure(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	handler := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		<-block
		return payload, nil
	}
	lc, err := NewLocalCluster(2, handler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	pop := ea.Population{
		ea.NewIndividual(ea.Genome{0.1}),
		ea.NewIndividual(ea.Genome{0.2}),
		ea.NewIndividual(ea.Genome{0.3}),
		ea.NewIndividual(ea.Genome{0.4}),
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	out := ea.EvalPool(ctx, ea.Source(pop), len(pop), &Evaluator{Client: lc.Client},
		ea.PoolConfig{Parallelism: 2, Objectives: 2})

	for i, ind := range out {
		if ind.Fitness.IsFailure() {
			t.Errorf("individual %d branded MAXINT failure on campaign abort (err=%v)", i, ind.Err)
		}
		if ind.Evaluated {
			t.Errorf("individual %d marked evaluated after abort", i)
		}
		if ind.Err == nil || !errors.Is(ind.Err, context.Canceled) {
			t.Errorf("individual %d Err = %v, want context.Canceled", i, ind.Err)
		}
	}
}

// TestEventHookAndWorkerStats sanity-checks the observability surface:
// connect/assign/result events fire and per-worker counters accumulate.
func TestEventHookAndWorkerStats(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[EventType]int{}
	sched.OnEvent = func(e Event) {
		mu.Lock()
		seen[e.Type]++
		mu.Unlock()
		if e.String() == "" {
			t.Error("empty event string")
		}
	}
	defer sched.Close()

	w, err := NewWorker(sched.Addr(), "observed", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go func() { _ = w.Run(context.Background()) }()

	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 5; i++ {
		if _, err := client.Submit(context.Background(), json.RawMessage(`{}`)); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if seen[EventWorkerConnect] == 0 || seen[EventAssign] < 5 || seen[EventResult] < 5 {
		t.Errorf("events missing: %+v", seen)
	}
	ws := sched.WorkerStats()
	if len(ws) != 1 || ws[0].Name != "observed" || ws[0].Completed != 5 {
		t.Errorf("WorkerStats = %+v", ws)
	}
	if !strings.Contains(ws[0].String(), "completed=5") {
		t.Errorf("WorkerStats.String() = %q", ws[0].String())
	}
}

// TestHeartbeatRenewsLease runs a task longer than the scheduler lease on
// a worker that heartbeats: the lease must be renewed, the task must NOT
// be reassigned, and the books must balance with zero expiries.
func TestHeartbeatRenewsLease(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sched.TaskTimeout = 60 * time.Millisecond
	defer sched.Close()

	handler := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		time.Sleep(200 * time.Millisecond) // 3x the lease
		return payload, nil
	}
	w, err := NewWorker(sched.Addr(), "beating", handler)
	if err != nil {
		t.Fatal(err)
	}
	w.Heartbeat = 15 * time.Millisecond
	defer w.Close()
	go func() { _ = w.Run(context.Background()) }()

	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	out, err := client.Submit(context.Background(), json.RawMessage(`{"long":true}`))
	if err != nil {
		t.Fatalf("long task failed despite heartbeats: %v", err)
	}
	if string(out) != `{"long":true}` {
		t.Errorf("result = %s", out)
	}
	if st := sched.Stats(); st.Expired != 0 || st.Reassigned != 0 {
		t.Errorf("heartbeated lease expired anyway: %+v", st)
	}
}

// TestBackoffGrowsAndResets pins the backoff schedule's envelope.
func TestBackoffGrowsAndResets(t *testing.T) {
	b := newBackoff(10*time.Millisecond, 80*time.Millisecond)
	b.seed = 1 // deterministic jitter
	prevBase := time.Duration(0)
	for i := 0; i < 6; i++ {
		d := b.next()
		if d <= 0 || d > 80*time.Millisecond {
			t.Fatalf("attempt %d: delay %v out of envelope", i, d)
		}
		if i < 3 && d < prevBase {
			t.Fatalf("attempt %d: delay %v shrank below previous base %v before hitting the cap", i, d, prevBase)
		}
		prevBase = d / 2 // base is at least half the jittered value
	}
	b.reset()
	if d := b.next(); d > 15*time.Millisecond {
		t.Errorf("after reset, delay %v should be near the initial 10ms", d)
	}
}
