package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ea"
)

func echoHandler(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
	return payload, nil
}

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	in := &message{Type: msgSubmit, TaskID: "t1", Payload: json.RawMessage(`{"x":1}`)}
	if err := writeMessage(&buf, in); err != nil {
		t.Fatalf("writeMessage: %v", err)
	}
	out, err := readMessage(&buf)
	if err != nil {
		t.Fatalf("readMessage: %v", err)
	}
	if out.Type != in.Type || out.TaskID != in.TaskID || string(out.Payload) != string(in.Payload) {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestMessageFramingRejectsHugeFrame(t *testing.T) {
	buf := bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	if _, err := readMessage(buf); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestLocalClusterEcho(t *testing.T) {
	lc, err := NewLocalCluster(3, echoHandler, 0)
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	defer lc.Close()

	for i := 0; i < 10; i++ {
		payload := json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))
		out, err := lc.Client.Submit(context.Background(), payload)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if string(out) != string(payload) {
			t.Errorf("echo %d = %s, want %s", i, out, payload)
		}
	}
	st := lc.Scheduler.Stats()
	if st.Completed != 10 || st.Submitted != 10 {
		t.Errorf("stats = %+v, want 10 submitted/completed", st)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	lc, err := NewLocalCluster(4, echoHandler, 0)
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	defer lc.Close()

	const n = 50
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))
			out, err := lc.Client.Submit(context.Background(), payload)
			if err != nil {
				errs <- err
				return
			}
			if string(out) != string(payload) {
				errs <- fmt.Errorf("mismatch for %d: %s", i, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestWorkerErrorPropagates(t *testing.T) {
	handler := func(_ context.Context, _ json.RawMessage) (json.RawMessage, error) {
		return nil, errors.New("training crashed: bad hyperparameters")
	}
	lc, err := NewLocalCluster(1, handler, 0)
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	defer lc.Close()

	_, err = lc.Client.Submit(context.Background(), json.RawMessage(`{}`))
	if err == nil || !strings.Contains(err.Error(), "training crashed") {
		t.Errorf("Submit error = %v, want training crashed", err)
	}
	if st := lc.Scheduler.Stats(); st.Failed != 1 {
		t.Errorf("Failed = %d, want 1", st.Failed)
	}
}

func TestWorkerPanicContained(t *testing.T) {
	handler := func(_ context.Context, _ json.RawMessage) (json.RawMessage, error) {
		panic("segfault in custom kernel")
	}
	lc, err := NewLocalCluster(1, handler, 0)
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	defer lc.Close()

	_, err = lc.Client.Submit(context.Background(), json.RawMessage(`{}`))
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Errorf("Submit error = %v, want panic message", err)
	}
	// The worker must survive to serve another task.
	_, err = lc.Client.Submit(context.Background(), json.RawMessage(`{}`))
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Errorf("second Submit error = %v", err)
	}
}

func TestTaskTimeout(t *testing.T) {
	handler := func(ctx context.Context, _ json.RawMessage) (json.RawMessage, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return json.RawMessage(`{}`), nil
		}
	}
	lc, err := NewLocalCluster(1, handler, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	defer lc.Close()

	start := time.Now()
	_, err = lc.Client.Submit(context.Background(), json.RawMessage(`{}`))
	if err == nil {
		t.Fatal("timed-out task returned success")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout did not fire promptly")
	}
}

func TestWorkerDeathReassignsTask(t *testing.T) {
	// Worker 0 dies on its first task; worker 1 completes everything.
	var mu sync.Mutex
	died := false

	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	defer sched.Close()

	var killable *Worker
	killingHandler := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		mu.Lock()
		first := !died
		died = true
		mu.Unlock()
		if first {
			killable.Close() // simulate node failure mid-task
			time.Sleep(50 * time.Millisecond)
		}
		return payload, nil
	}
	killable, err = NewWorker(sched.Addr(), "doomed", killingHandler)
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	go func() { _ = killable.Run(context.Background()) }()

	healthy, err := NewWorker(sched.Addr(), "healthy", echoHandler)
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	defer healthy.Close()
	go func() { _ = healthy.Run(context.Background()) }()

	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer client.Close()

	for i := 0; i < 5; i++ {
		payload := json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))
		out, err := client.Submit(context.Background(), payload)
		if err != nil {
			t.Fatalf("Submit %d after worker death: %v", i, err)
		}
		if string(out) != string(payload) {
			t.Errorf("result %d = %s", i, out)
		}
	}
	if st := sched.Stats(); st.Reassigned == 0 {
		t.Errorf("no reassignment recorded: %+v", st)
	}
}

func TestAllWorkersDeadAbandonsTask(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	sched.MaxAttempts = 2
	defer sched.Close()

	// A worker that kills itself on every assignment.
	var workers []*Worker
	for i := 0; i < 2; i++ {
		var w *Worker
		w, err = NewWorker(sched.Addr(), fmt.Sprintf("suicidal-%d", i), func(_ context.Context, _ json.RawMessage) (json.RawMessage, error) {
			panic("unused")
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		// Close the connection as soon as a task arrives by overriding
		// Run: we just close immediately after registration and a task
		// will be assigned to a dead connection, forcing a requeue.
		workers = append(workers, w)
	}
	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer client.Close()

	// Kill both workers; the scheduler still has their proxies blocked in
	// the pending receive.  Submitting now assigns to a dead conn, which
	// requeues and eventually abandons.
	for _, w := range workers {
		w.Close()
	}
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_, err = client.Submit(ctx, json.RawMessage(`{}`))
	if err == nil {
		t.Fatal("Submit succeeded with all workers dead")
	}
}

func TestEvaluatorRoundTrip(t *testing.T) {
	inner := ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
		return ea.Fitness{g[0] * 2, g[1] + 1}, nil
	})
	lc, err := NewLocalCluster(2, EvalHandler(inner), 0)
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	defer lc.Close()

	ev := &Evaluator{Client: lc.Client}
	fit, err := ev.Evaluate(context.Background(), ea.Genome{3, 4})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if fit[0] != 6 || fit[1] != 5 {
		t.Errorf("fitness = %v, want [6 5]", fit)
	}
}

func TestEvaluatorWithEvalPool(t *testing.T) {
	inner := ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
		if g[0] < 0.1 {
			return nil, errors.New("unstable training")
		}
		return ea.Fitness{g[0], 1 - g[0]}, nil
	})
	lc, err := NewLocalCluster(3, EvalHandler(inner), 0)
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	defer lc.Close()

	pop := ea.Population{
		ea.NewIndividual(ea.Genome{0.5}),
		ea.NewIndividual(ea.Genome{0.05}), // will fail
		ea.NewIndividual(ea.Genome{0.9}),
	}
	out := ea.EvalPool(context.Background(), ea.Source(pop), 3,
		&Evaluator{Client: lc.Client}, ea.PoolConfig{Parallelism: 3, Objectives: 2})
	if !out[1].Fitness.IsFailure() {
		t.Errorf("failed task fitness = %v, want MAXINT", out[1].Fitness)
	}
	nine := 0.9
	if out[0].Fitness[0] != 0.5 || out[2].Fitness[1] != 1-nine {
		t.Errorf("fitnesses wrong: %v %v", out[0].Fitness, out[2].Fitness)
	}
}

func TestSchedulerString(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	defer sched.Close()
	if !strings.Contains(sched.String(), "Scheduler{") {
		t.Errorf("String() = %q", sched.String())
	}
}

func TestClientSubmitAfterClose(t *testing.T) {
	lc, err := NewLocalCluster(1, echoHandler, 0)
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	lc.Client.Close()
	_, err = lc.Client.Submit(context.Background(), json.RawMessage(`{}`))
	if err == nil {
		t.Error("Submit after Close succeeded")
	}
	lc.Close()
}

func TestSchedulerTaskTimeoutReassignsFromHungWorker(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	sched.TaskTimeout = 50 * time.Millisecond
	defer sched.Close()

	// A hung worker: accepts the assignment but never answers (the
	// connection stays open, unlike a crash).
	hungConn, err := net.Dial("tcp", sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer hungConn.Close()
	if err := writeMessage(hungConn, &message{Type: msgRegister, Name: "hung"}); err != nil {
		t.Fatal(err)
	}
	go func() {
		// Read assignments forever, never reply.
		for {
			if _, err := readMessage(hungConn); err != nil {
				return
			}
		}
	}()

	// Give the hung worker time to be the only one and receive the task.
	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resCh := make(chan error, 1)
	go func() {
		_, err := client.Submit(context.Background(), json.RawMessage(`{"x":1}`))
		resCh <- err
	}()

	// After the hung worker takes the task, start a healthy worker to
	// pick up the reassignment.
	time.Sleep(20 * time.Millisecond)
	healthy, err := NewWorker(sched.Addr(), "healthy", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	go func() { _ = healthy.Run(context.Background()) }()

	select {
	case err := <-resCh:
		if err != nil {
			t.Fatalf("task not rescued from hung worker: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("task never completed after worker hang")
	}
	if st := sched.Stats(); st.Reassigned == 0 {
		t.Errorf("no reassignment recorded: %+v", st)
	}
}

func TestSubmitBatchOrderAndErrors(t *testing.T) {
	handler := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		if strings.Contains(string(payload), "fail") {
			return nil, errors.New("requested failure")
		}
		return payload, nil
	}
	lc, err := NewLocalCluster(3, handler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	payloads := []json.RawMessage{
		json.RawMessage(`{"i":0}`),
		json.RawMessage(`{"fail":true}`),
		json.RawMessage(`{"i":2}`),
		json.RawMessage(`{"i":3}`),
	}
	results := lc.Client.SubmitBatch(context.Background(), payloads)
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for i := range payloads {
		if i == 1 {
			if results[i].Err == nil {
				t.Error("failing payload succeeded")
			}
			continue
		}
		if results[i].Err != nil {
			t.Errorf("result %d: %v", i, results[i].Err)
		}
		if string(results[i].Payload) != string(payloads[i]) {
			t.Errorf("result %d out of order: %s", i, results[i].Payload)
		}
	}
}

func TestMultipleClientsShareWorkers(t *testing.T) {
	lc, err := NewLocalCluster(2, echoHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	second, err := NewClient(lc.Scheduler.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 10; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			if _, err := lc.Client.Submit(context.Background(), json.RawMessage(fmt.Sprintf(`{"a":%d}`, i))); err != nil {
				errs <- err
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			if _, err := second.Submit(context.Background(), json.RawMessage(fmt.Sprintf(`{"b":%d}`, i))); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := lc.Scheduler.Stats(); st.Completed != 20 {
		t.Errorf("completed %d, want 20", st.Completed)
	}
}
