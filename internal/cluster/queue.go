package cluster

import (
	"sync"
	"sync/atomic"
)

// dispatchQueue is the scheduler's pending-task queue: N shards hashed
// by task id, each with its own lock and FIFO ring, replacing the single
// buffered channel whose one lock serialized every submit and dispatch.
// Capacity is global (depth), enforced with an atomic reservation so a
// full queue backpressures submitters exactly like the old channel did —
// but observably, via the waits counter.
//
// Dispatch keeps the channel's direct-handoff semantics: a push that
// finds a parked worker hands the task straight to it (w.task) without
// touching a shard, so a worker that just bounced a task (lease expiry
// on a hung node) cannot immediately steal it back from the queue —
// the parked healthy worker gets it first, exactly as a channel send to
// a blocked receiver did.  Tasks hit the shards only when every worker
// is busy; a worker finishing its dispatch then pops its home shard
// first and sweeps the rest (work stealing), so no task waits behind an
// accident of hashing.
//
// The lost-wakeup race is closed by ordering, not tokens: a pusher with
// no parked worker enqueues to the shard while holding idleMu, and a
// worker parks itself only after a shard sweep performed under idleMu —
// so either the pusher sees the parked worker, or the worker's final
// sweep sees the task.  A wake token is sent only after a handoff,
// which makes tokens precise: one received token always means one task
// in w.task, and there are no stale wakeups to drain.
type dispatchQueue struct {
	shards []queueShard
	mask   uint32
	depth  int

	size  atomic.Int64 // tasks currently queued (reservation counter)
	waits atomic.Int64 // pushes that had to wait on a full queue

	space  chan struct{} // capacity-1 token: a slot was freed
	closed <-chan struct{}

	idleMu   sync.Mutex
	idle     []*dispatchWaiter // parked poppers, FIFO ring (oldest first)
	idleHead int
}

// queueShard is one lock's worth of the queue: a FIFO ring over a
// reusable slice.  head indexes the next task out; popped slots are
// nilled so the slice does not retain completed tasks.
type queueShard struct {
	mu   sync.Mutex
	head int
	q    []*task
}

// dispatchWaiter is one worker proxy's parking spot: a private
// capacity-1 wake channel and the handoff slot a pusher fills before
// signalling it, plus the shard its pops sweep first.
type dispatchWaiter struct {
	wake chan struct{}
	task *task
	home uint32
}

func newDispatchQueue(depth, shards int, closed <-chan struct{}) *dispatchQueue {
	n := 1
	for n < shards {
		n <<= 1
	}
	return &dispatchQueue{
		shards: make([]queueShard, n),
		mask:   uint32(n - 1),
		depth:  depth,
		space:  make(chan struct{}, 1),
		closed: closed,
	}
}

func (q *dispatchQueue) newWaiter(home uint32) *dispatchWaiter {
	return &dispatchWaiter{wake: make(chan struct{}, 1), home: home & q.mask}
}

// shardFor hashes a task id to its home shard (FNV-1a, allocation-free).
//
//lint:hot
func (q *dispatchQueue) shardFor(id string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return h & q.mask
}

// push dispatches t — directly to a parked worker when one exists,
// otherwise onto t's home shard — blocking while the queue is at
// capacity.  It reports false if the scheduler closed before a slot
// freed (the task is dropped, exactly as the old channel path did).
//
//lint:hot
func (q *dispatchQueue) push(t *task) bool {
	waited := false
	for {
		if q.size.Add(1) <= int64(q.depth) {
			break
		}
		q.size.Add(-1)
		if !waited {
			waited = true
			q.waits.Add(1)
		}
		select {
		case <-q.space:
		case <-q.closed:
			return false
		}
	}
	if waited && q.size.Load() < int64(q.depth) {
		// Cascade the token: space may have been signalled once for two
		// freed slots (the channel holds one token), so a successful
		// waiter re-signals while capacity remains.
		q.signalSpace()
	}
	q.idleMu.Lock()
	if w := q.idlePop(); w != nil {
		q.idleMu.Unlock()
		// Handed off, never queued: release the reservation.
		q.size.Add(-1)
		q.signalSpace()
		w.task = t
		w.wake <- struct{}{}
		return true
	}
	// Enqueue while still holding idleMu: a worker parks only after a
	// shard sweep under this same lock, so it cannot miss this task.
	sh := &q.shards[q.shardFor(t.id)]
	sh.mu.Lock()
	sh.enq(t)
	sh.mu.Unlock()
	q.idleMu.Unlock()
	return true
}

// tryPop sweeps every shard starting at home and returns the first task
// found, or nil.  Starting at home spreads active workers across
// shards; sweeping the rest is the work-stealing half.
//
//lint:hot
func (q *dispatchQueue) tryPop(home uint32) *task {
	n := uint32(len(q.shards))
	for i := uint32(0); i < n; i++ {
		sh := &q.shards[(home+i)&q.mask]
		sh.mu.Lock()
		t := sh.deq()
		sh.mu.Unlock()
		if t != nil {
			q.size.Add(-1)
			q.signalSpace()
			return t
		}
	}
	return nil
}

// pop returns the next task for a worker, parking until one is handed
// over.  It reports false when the scheduler closed or the worker died.
// If a pusher claimed the waiter in the same instant one of those fired,
// the guaranteed handoff is consumed and returned anyway — the caller's
// dispatch path observes closed/dead itself and requeues as needed, so
// the task is never lost.
func (q *dispatchQueue) pop(w *dispatchWaiter, dead <-chan struct{}) (*task, bool) {
	if t := q.tryPop(w.home); t != nil {
		return t, true
	}
	q.idleMu.Lock()
	if t := q.tryPop(w.home); t != nil {
		q.idleMu.Unlock()
		return t, true
	}
	if q.idleHead > 0 && len(q.idle)+1 > cap(q.idle) {
		n := copy(q.idle, q.idle[q.idleHead:])
		q.idle = q.idle[:n]
		q.idleHead = 0
	}
	q.idle = append(q.idle, w)
	q.idleMu.Unlock()
	select {
	case <-w.wake:
		return w.take(), true
	case <-q.closed:
		if q.retire(w) {
			return nil, false
		}
		<-w.wake
		return w.take(), true
	case <-dead:
		if q.retire(w) {
			return nil, false
		}
		<-w.wake
		return w.take(), true
	}
}

// take consumes the handed-off task (always present after a wake token).
func (w *dispatchWaiter) take() *task {
	t := w.task
	w.task = nil
	return t
}

// idlePop removes and returns the oldest parked waiter, or nil.  FIFO
// order matches the channel it replaced (blocked receivers were served
// oldest-first), which both spreads load round-robin across workers and
// keeps a worker that just failed a task from winning it straight back.
// Callers hold idleMu.
func (q *dispatchQueue) idlePop() *dispatchWaiter {
	if q.idleHead == len(q.idle) {
		return nil
	}
	w := q.idle[q.idleHead]
	q.idle[q.idleHead] = nil
	q.idleHead++
	if q.idleHead == len(q.idle) {
		q.idle = q.idle[:0]
		q.idleHead = 0
	}
	return w
}

// retire removes w from the idle list, reporting whether it was still
// there.  False means a pusher already claimed w and a handoff token is
// in flight.
func (q *dispatchQueue) retire(w *dispatchWaiter) bool {
	q.idleMu.Lock()
	defer q.idleMu.Unlock()
	for i := q.idleHead; i < len(q.idle); i++ {
		if q.idle[i] == w {
			copy(q.idle[i:], q.idle[i+1:])
			last := len(q.idle) - 1
			q.idle[last] = nil
			q.idle = q.idle[:last]
			if q.idleHead == len(q.idle) {
				q.idle = q.idle[:0]
				q.idleHead = 0
			}
			return true
		}
	}
	return false
}

func (q *dispatchQueue) signalSpace() {
	select {
	case q.space <- struct{}{}:
	default:
	}
}

// depths returns the per-shard queue depths under a consistent view:
// every shard lock is held at once, so the values sum to a queue length
// that actually existed at one instant.
func (q *dispatchQueue) depths(out []int) []int {
	for i := range q.shards {
		q.shards[i].mu.Lock()
	}
	out = out[:0]
	for i := range q.shards {
		out = append(out, len(q.shards[i].q)-q.shards[i].head)
	}
	for i := range q.shards {
		q.shards[i].mu.Unlock()
	}
	return out
}

// queued returns the total queue length under the same consistent view.
func (q *dispatchQueue) queued() int {
	total := 0
	for _, d := range q.depths(make([]int, 0, len(q.shards))) {
		total += d
	}
	return total
}

func (sh *queueShard) enq(t *task) {
	if sh.head > 0 && len(sh.q)+1 > cap(sh.q) {
		// Compact instead of growing: capacity converges to the high-water
		// live count and stays there.
		n := copy(sh.q, sh.q[sh.head:])
		sh.q = sh.q[:n]
		sh.head = 0
	}
	sh.q = append(sh.q, t)
}

func (sh *queueShard) deq() *task {
	if sh.head == len(sh.q) {
		return nil
	}
	t := sh.q[sh.head]
	sh.q[sh.head] = nil
	sh.head++
	if sh.head == len(sh.q) {
		sh.q = sh.q[:0]
		sh.head = 0
	}
	return t
}
