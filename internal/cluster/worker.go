package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler executes one task payload and returns a result payload.  In the
// paper's deployment this is the multi-step DeePMD training workflow of
// §2.2.4 (decode genome → write input.json in a UUID directory → train →
// read lcurve.out).
type Handler func(ctx context.Context, payload json.RawMessage) (json.RawMessage, error)

// Worker connects to a scheduler, executes assigned tasks, and returns
// results.  There is intentionally no supervision/restart of the process
// itself: the paper found it best to "disable nannies, let workers fail,
// and have the scheduler reassign tasks" (§2.2.5).  What the worker does
// do is survive the two failure modes that are not its own death: a
// handler that hangs (the task is timed out asynchronously and abandoned,
// the worker stays live) and a scheduler connection loss (the worker
// re-dials with exponential backoff and jitter).
type Worker struct {
	// Name identifies the worker in scheduler logs.
	Name string
	// TaskTimeout, if positive, bounds each task's execution — the
	// analogue of the paper's two-hour training limit.  The limit is
	// enforced asynchronously: a handler that ignores its context is
	// abandoned (its goroutine leaks until it returns on its own) and a
	// timeout failure result is sent, so a wedged handler cannot wedge
	// the worker.
	TaskTimeout time.Duration
	// Heartbeat, if positive, is the interval at which the worker pings
	// the scheduler while executing a task, renewing the task's lease.
	// Set it well below the scheduler's TaskTimeout so a slow-but-alive
	// training is not reassigned.
	Heartbeat time.Duration
	// ReconnectInitial and ReconnectMax shape the re-dial backoff after a
	// scheduler connection loss (defaults 50ms and 5s).
	ReconnectInitial time.Duration
	ReconnectMax     time.Duration
	// MaxReconnects, if positive, bounds consecutive failed re-dial
	// attempts before Run gives up; 0 retries until the context is
	// cancelled or Close is called.
	MaxReconnects int
	// Handler executes tasks.
	Handler Handler
	// Logf, if non-nil, receives diagnostic output.
	Logf func(format string, args ...interface{})

	addr      string
	transport Transport
	dialer    Dialer
	wire      wireCounters

	mu      sync.Mutex // guards conn, cd, snap, closed
	conn    net.Conn
	cd      codec
	snap    *snapshotData
	closed  bool
	writeMu sync.Mutex // serializes frames (results vs heartbeats)
}

// NewWorker dials the scheduler and registers over the default binary
// framing.
func NewWorker(addr, name string, handler Handler) (*Worker, error) {
	return NewWorkerTransport(addr, name, handler, TransportBinary)
}

// NewWorkerTransport dials the scheduler and registers, speaking the
// given framing for the life of the worker (reconnections included).
func NewWorkerTransport(addr, name string, handler Handler, tr Transport) (*Worker, error) {
	if handler == nil {
		return nil, fmt.Errorf("cluster: worker needs a handler")
	}
	w := &Worker{Name: name, Handler: handler, addr: addr, transport: tr, dialer: tcpDialer(addr)}
	conn, cd, snap, err := w.dialAndRegister()
	if err != nil {
		return nil, err
	}
	w.conn, w.cd, w.snap = conn, cd, snap
	return w, nil
}

// NewWorkerMux dials the scheduler through a shared MuxDialer: the
// worker's "connection" is one logical stream multiplexed with its
// siblings over the dialer's TCP pool.  Framing is binary (the only
// framing mux carries); reconnection works exactly as over TCP — each
// re-dial just opens a fresh stream, re-establishing a dead physical
// session lazily if its slot needs one.
func NewWorkerMux(d *MuxDialer, name string, handler Handler) (*Worker, error) {
	if handler == nil {
		return nil, fmt.Errorf("cluster: worker needs a handler")
	}
	w := &Worker{Name: name, Handler: handler, addr: d.Addr, transport: TransportBinary, dialer: d}
	conn, cd, snap, err := w.dialAndRegister()
	if err != nil {
		return nil, err
	}
	w.conn, w.cd, w.snap = conn, cd, snap
	return w, nil
}

// dialAndRegister dials, registers with flagWantSnapshot, and waits for
// the scheduler's snapshot reply.  Registering mid-campaign therefore
// costs one compact frame — where the campaign stands and which leases
// are outstanding — never a replay of history.
func (w *Worker) dialAndRegister() (net.Conn, codec, *snapshotData, error) {
	conn, err := w.dialer.Dial()
	if err != nil {
		return nil, nil, nil, err
	}
	cd := dialCodec(w.transport, conn, &w.wire)
	if err := cd.write(&message{Type: msgRegister, Name: w.Name, Flags: flagWantSnapshot}); err != nil {
		//lint:ignore errdiscard best-effort close of a half-registered conn; the register error is returned
		conn.Close()
		return nil, nil, nil, err
	}
	first, err := cd.read()
	if err != nil {
		//lint:ignore errdiscard best-effort close of a half-registered conn; the read error is returned
		conn.Close()
		return nil, nil, nil, fmt.Errorf("cluster: reading register snapshot: %w", err)
	}
	if first.Type != msgSnapshot {
		//lint:ignore errdiscard best-effort close of a conn that broke protocol; the type error is returned
		conn.Close()
		return nil, nil, nil, fmt.Errorf("cluster: expected snapshot after register, got %q", first.Type)
	}
	snap := first.Snap
	if snap == nil {
		snap = &snapshotData{}
	}
	return conn, cd, snap, nil
}

// Snapshot is the catch-up state a worker received when it registered:
// the campaign epoch (tasks submitted before it joined), the queue depth
// at join time, and the leases that were outstanding.
type Snapshot struct {
	Epoch   uint64
	Pending int
	Leases  []string
}

// Snapshot returns the catch-up state from the most recent successful
// registration, and whether one has been received.
func (w *Worker) Snapshot() (Snapshot, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.snap == nil {
		return Snapshot{}, false
	}
	return Snapshot{
		Epoch:   w.snap.Epoch,
		Pending: w.snap.Pending,
		Leases:  append([]string(nil), w.snap.Leases...),
	}, true
}

// Wire returns a snapshot of the worker's transport counters across all
// connections it has dialed.
func (w *Worker) Wire() WireStats { return w.wire.snapshot() }

func (w *Worker) logf(format string, args ...interface{}) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) current() (net.Conn, codec) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.conn, w.cd
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// Run processes tasks until the context is cancelled or Close is called.
// A scheduler connection loss is not fatal: Run re-dials with exponential
// backoff + jitter and resumes pulling tasks (the in-flight task, if any,
// is the scheduler's to reassign).  It returns nil on clean shutdown, or
// the terminating error once MaxReconnects consecutive re-dials fail.
func (w *Worker) Run(ctx context.Context) error {
	unwatch := context.AfterFunc(ctx, func() { w.closeConn() })
	defer unwatch()

	bo := newBackoff(w.ReconnectInitial, w.ReconnectMax)
	for {
		conn, cd := w.current()
		if conn == nil {
			var err error
			if conn, cd, err = w.reconnect(ctx, bo); err != nil {
				return err
			}
			if conn == nil { // cancelled or closed
				return nil
			}
		}
		err := w.serve(ctx, cd)
		if ctx.Err() != nil || w.isClosed() {
			return nil
		}
		w.logf("cluster: worker %q lost scheduler connection: %v; reconnecting", w.Name, err)
		w.closeConn()
	}
}

// reconnect re-dials the scheduler with backoff until it succeeds, the
// context is cancelled, Close is called, or MaxReconnects consecutive
// attempts fail.
func (w *Worker) reconnect(ctx context.Context, bo *backoff) (net.Conn, codec, error) {
	attempts := 0
	for {
		if ctx.Err() != nil || w.isClosed() {
			return nil, nil, nil
		}
		conn, cd, snap, err := w.dialAndRegister()
		if err == nil {
			w.mu.Lock()
			if w.closed {
				w.mu.Unlock()
				//lint:ignore errdiscard best-effort: the worker was closed while dialing; the fresh conn is discarded unused
				conn.Close()
				return nil, nil, nil
			}
			w.conn, w.cd, w.snap = conn, cd, snap
			w.mu.Unlock()
			if ctx.Err() != nil {
				// The cancellation watcher may have fired before w.conn was
				// set; make sure a late dial never leaves a live socket.
				w.closeConn()
				return nil, nil, nil
			}
			bo.reset()
			w.logf("cluster: worker %q reconnected to %s (epoch %d, %d leases outstanding)", w.Name, w.addr, snap.Epoch, len(snap.Leases))
			return conn, cd, nil
		}
		attempts++
		if w.MaxReconnects > 0 && attempts >= w.MaxReconnects {
			return nil, nil, fmt.Errorf("cluster: worker %q gave up after %d reconnect attempts: %w", w.Name, attempts, err)
		}
		delay := bo.next()
		w.logf("cluster: worker %q reconnect attempt %d failed (%v); retrying in %v", w.Name, attempts, err, delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, nil, nil
		}
	}
}

// serve pulls assignments from one connection until it fails.
func (w *Worker) serve(ctx context.Context, cd codec) error {
	for {
		m, err := cd.read()
		if err != nil {
			return err
		}
		if m.Type == msgSnapshot {
			w.mu.Lock()
			w.snap = m.Snap
			w.mu.Unlock()
			continue
		}
		if m.Type != msgAssign {
			w.logf("cluster: worker %q got unexpected message %q; ignoring", w.Name, m.Type)
			continue
		}
		result := w.execute(ctx, cd, m)
		if result == nil {
			// Parent context cancelled mid-task: propagate the shutdown
			// instead of fabricating a failure result.
			return context.Canceled
		}
		if err := w.write(cd, result); err != nil {
			return err
		}
	}
}

// write sends one frame, serialized against concurrent heartbeats.
func (w *Worker) write(cd codec, m *message) error {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	return cd.write(m)
}

// execute runs one task with asynchronous timeout enforcement, heartbeats
// and panic containment.  It returns nil when the parent context was
// cancelled (worker shutting down), so that Ctrl-C is never misreported
// as a task timeout.
func (w *Worker) execute(ctx context.Context, cd codec, m *message) *message {
	taskCtx := ctx
	var cancel context.CancelFunc
	if w.TaskTimeout > 0 {
		taskCtx, cancel = context.WithTimeout(ctx, w.TaskTimeout)
		defer cancel()
	}

	if w.Heartbeat > 0 {
		hbDone := make(chan struct{})
		defer close(hbDone)
		go func() {
			ticker := time.NewTicker(w.Heartbeat)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					// A failed heartbeat is not fatal here; the serve loop
					// will see the connection error on its next read/write.
					_ = w.write(cd, &message{Type: msgHeartbeat, TaskID: m.TaskID})
				case <-hbDone:
					return
				}
			}
		}()
	}

	type handlerOut struct {
		payload json.RawMessage
		err     error
	}
	done := make(chan handlerOut, 1)
	go func() {
		p, err := safeHandle(taskCtx, w.Handler, m.Payload)
		done <- handlerOut{p, err}
	}()

	var out handlerOut
	select {
	case out = <-done:
	case <-taskCtx.Done():
		if ctx.Err() != nil {
			return nil // shutdown, not a task failure
		}
		// The handler ignored its context and is still running: abandon
		// it (the goroutine leaks until the handler returns on its own)
		// and report the timeout so the worker stays live for the next
		// task — a hung handler must not wedge the worker.
		w.logf("cluster: worker %q abandoning task %s after %v (handler ignored context)", w.Name, m.TaskID, w.TaskTimeout)
		return &message{Type: msgResult, TaskID: m.TaskID,
			Err: fmt.Sprintf("cluster: task timed out after %v", w.TaskTimeout)}
	}

	if out.err == nil && taskCtx.Err() != nil {
		// The handler returned success but its deadline had passed;
		// classify by cause rather than blaming every cancellation on
		// the timeout (the old bug recorded Ctrl-C as "task timed out").
		if ctx.Err() != nil {
			return nil
		}
		out.err = fmt.Errorf("cluster: task timed out: %v", taskCtx.Err())
	}
	if out.err != nil && errors.Is(out.err, context.Canceled) && ctx.Err() != nil {
		return nil
	}

	res := &message{Type: msgResult, TaskID: m.TaskID}
	if out.err != nil {
		res.Err = out.err.Error()
	} else {
		res.Payload = out.payload
	}
	return res
}

func safeHandle(ctx context.Context, h Handler, payload json.RawMessage) (out json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = fmt.Errorf("cluster: task panic: %v", r)
		}
	}()
	return h(ctx, payload)
}

// closeConn closes the current connection without marking the worker
// closed, so Run can re-dial.
func (w *Worker) closeConn() {
	w.mu.Lock()
	conn := w.conn
	w.conn, w.cd = nil, nil
	w.mu.Unlock()
	if conn != nil {
		//lint:ignore errdiscard force-drop by design: closing under the reader unblocks it; there is no recovery path for the error
		conn.Close()
	}
}

// Close terminates the worker permanently: the connection is closed and
// Run stops reconnecting.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	conn := w.conn
	w.conn, w.cd = nil, nil
	w.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
