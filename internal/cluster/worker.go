package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler executes one task payload and returns a result payload.  In the
// paper's deployment this is the multi-step DeePMD training workflow of
// §2.2.4 (decode genome → write input.json in a UUID directory → train →
// read lcurve.out).
type Handler func(ctx context.Context, payload json.RawMessage) (json.RawMessage, error)

// Worker connects to a scheduler, executes assigned tasks, and returns
// results.  There is intentionally no supervision/restart: the paper found
// it best to "disable nannies, let workers fail, and have the scheduler
// reassign tasks" (§2.2.5).
type Worker struct {
	// Name identifies the worker in scheduler logs.
	Name string
	// TaskTimeout, if positive, bounds each task's execution — the
	// analogue of the paper's two-hour training limit.  An expired task
	// returns a TimeoutError-like failure result rather than killing the
	// worker.
	TaskTimeout time.Duration
	// Handler executes tasks.
	Handler Handler

	conn net.Conn
	once sync.Once
}

// NewWorker dials the scheduler and registers.
func NewWorker(addr, name string, handler Handler) (*Worker, error) {
	if handler == nil {
		return nil, fmt.Errorf("cluster: worker needs a handler")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	w := &Worker{Name: name, Handler: handler, conn: conn}
	if err := writeMessage(conn, &message{Type: msgRegister, Name: name}); err != nil {
		conn.Close()
		return nil, err
	}
	return w, nil
}

// Run processes tasks until the context is cancelled or the scheduler
// connection drops.  It returns the terminating error (nil on clean
// context cancellation).
func (w *Worker) Run(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		w.Close()
	}()
	for {
		m, err := readMessage(w.conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if m.Type != msgAssign {
			return fmt.Errorf("cluster: worker got unexpected message %q", m.Type)
		}
		result := w.execute(ctx, m)
		if err := writeMessage(w.conn, result); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
	}
}

// execute runs one task with timeout and panic containment.
func (w *Worker) execute(ctx context.Context, m *message) *message {
	taskCtx := ctx
	var cancel context.CancelFunc
	if w.TaskTimeout > 0 {
		taskCtx, cancel = context.WithTimeout(ctx, w.TaskTimeout)
		defer cancel()
	}
	payload, err := safeHandle(taskCtx, w.Handler, m.Payload)
	if err == nil && taskCtx.Err() != nil {
		err = fmt.Errorf("cluster: task timed out: %v", taskCtx.Err())
	}
	out := &message{Type: msgResult, TaskID: m.TaskID}
	if err != nil {
		out.Err = err.Error()
	} else {
		out.Payload = payload
	}
	return out
}

func safeHandle(ctx context.Context, h Handler, payload json.RawMessage) (out json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = fmt.Errorf("cluster: task panic: %v", r)
		}
	}()
	return h(ctx, payload)
}

// Close terminates the worker's scheduler connection.
func (w *Worker) Close() error {
	var err error
	w.once.Do(func() { err = w.conn.Close() })
	return err
}
