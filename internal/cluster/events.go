package cluster

import (
	"fmt"
	"time"
)

// EventType enumerates scheduler lifecycle events.  Events are the
// observability spine of the evaluation plane: at the paper's scale (100
// nodes, multi-hour trainings, §2.2.5) the interesting questions —
// which node is slow, which task bounced, which result arrived after its
// lease was given away — are all event-shaped, not gauge-shaped.
type EventType string

const (
	// EventWorkerConnect fires when a worker registers.
	EventWorkerConnect EventType = "worker_connect"
	// EventWorkerDisconnect fires when a worker connection is torn down.
	EventWorkerDisconnect EventType = "worker_disconnect"
	// EventAssign fires when a task is written to a worker.
	EventAssign EventType = "assign"
	// EventResult fires when a result is delivered to its client.
	EventResult EventType = "result"
	// EventLeaseExpired fires when an in-flight task's lease runs out and
	// the task is handed back to the queue while the worker stays
	// connected.
	EventLeaseExpired EventType = "lease_expired"
	// EventStaleResult fires when a result arrives for a task that was
	// already completed or reassigned; the result is discarded, the
	// worker is NOT treated as a protocol violator.
	EventStaleResult EventType = "stale_result"
	// EventRequeue fires when a task returns to the pending queue after a
	// worker failure or lease expiry.
	EventRequeue EventType = "requeue"
	// EventTaskAbandoned fires when a task exhausts MaxAttempts and is
	// failed permanently.
	EventTaskAbandoned EventType = "task_abandoned"
)

// Event is one scheduler occurrence, delivered synchronously to the
// Scheduler.OnEvent hook.  Handlers must be fast and must not call back
// into the scheduler.
type Event struct {
	Time   time.Time
	Type   EventType
	Worker string // worker name, when the event concerns one
	TaskID string
	Detail string
}

// String renders the event as one log-friendly line.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s", e.Time.Format("15:04:05.000"), e.Type)
	if e.Worker != "" {
		s += " worker=" + e.Worker
	}
	if e.TaskID != "" {
		s += " task=" + e.TaskID
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// WorkerStats is a snapshot of one connected worker's activity, the
// per-node view behind the aggregate Stats counters.
type WorkerStats struct {
	Name      string
	Completed int64         // results delivered from this worker
	Failed    int64         // application-error results from this worker
	Stale     int64         // late/duplicate results discarded
	Expired   int64         // leases that ran out on this worker
	InFlight  int           // tasks currently leased to this worker
	Latency   time.Duration // cumulative round-trip time of delivered results
	LastSeen  time.Time     // last frame read from this worker
}

// String renders a one-line summary suitable for a periodic stats dump.
func (ws WorkerStats) String() string {
	avg := time.Duration(0)
	if n := ws.Completed + ws.Failed; n > 0 {
		avg = ws.Latency / time.Duration(n)
	}
	return fmt.Sprintf("worker %q: completed=%d failed=%d stale=%d expired=%d inflight=%d avg_latency=%v",
		ws.Name, ws.Completed, ws.Failed, ws.Stale, ws.Expired, ws.InFlight, avg.Round(time.Millisecond))
}
