package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cluster/mux"
	"repro/internal/cluster/wire"
)

// Dialer abstracts how a worker or client obtains a connection to the
// scheduler.  The default is one TCP connection per Dial; a MuxDialer
// returns logical streams multiplexed over a small pool of shared TCP
// connections instead.
type Dialer interface {
	Dial() (net.Conn, error)
}

// tcpDialer is the default dialer: one TCP connection per Dial.
type tcpDialer string

func (d tcpDialer) Dial() (net.Conn, error) { return net.Dial("tcp", string(d)) }

// MuxDialer hands out logical streams over a pool of Conns multiplexed
// TCP connections to one scheduler.  Each physical connection opens
// with a single binary register hello carrying wire.FlagMux, after
// which it speaks only mux frames; the scheduler serves every stream
// exactly as it would a dedicated connection, so workers and clients
// built on a MuxDialer are wire-compatible with per-connection peers —
// a fleet can mix both on one port.
//
// Streams are assigned round-robin across the pool.  A session that
// died (scheduler bounce, chaos cut) is redialed lazily on the next
// Dial that lands on its slot, which is exactly the retry loop workers
// and clients already drive; the blast radius of losing one physical
// connection is that connection's streams, nothing more.
//
// The zero value is not usable: set Addr (and optionally Conns,
// default 1, and Coalesce).  Safe for concurrent use.
type MuxDialer struct {
	// Addr is the scheduler address to dial.
	Addr string
	// Conns is the physical connection pool size (default 1).
	Conns int
	// Coalesce is the frame-coalescing latency budget for dialed
	// sessions (see mux.Options.Coalesce); 0 keeps batching purely
	// opportunistic.
	Coalesce time.Duration

	ctrs mux.Counters

	mu       sync.Mutex
	sessions []*mux.Session
	next     int
	closed   bool
}

// Dial returns a new logical stream, dialing or redialing a physical
// connection if the slot it lands on has none alive.
func (d *MuxDialer) Dial() (net.Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, errors.New("cluster: mux dialer closed")
	}
	if d.sessions == nil {
		n := d.Conns
		if n < 1 {
			n = 1
		}
		d.sessions = make([]*mux.Session, n)
	}
	n := len(d.sessions)
	var lastErr error
	for i := 0; i < n; i++ {
		slot := (d.next + i) % n
		sess := d.sessions[slot]
		if sess == nil || sess.Err() != nil {
			var err error
			if sess, err = d.dialSession(); err != nil {
				// The scheduler is unreachable; trying the other slots
				// would just dial it again.
				return nil, err
			}
			d.sessions[slot] = sess
		}
		st, err := sess.Open()
		if err != nil {
			// The session died between the health check and the open;
			// clear the slot and move on.
			lastErr = err
			d.sessions[slot] = nil
			continue
		}
		d.next = (slot + 1) % n
		return st, nil
	}
	return nil, fmt.Errorf("cluster: mux dial: %w", lastErr)
}

// dialSession establishes one physical connection: TCP dial, mux hello,
// session wrap.
func (d *MuxDialer) dialSession() (*mux.Session, error) {
	conn, err := net.Dial("tcp", d.Addr)
	if err != nil {
		return nil, err
	}
	hello := wire.Message{Type: wire.TypeRegister, Flags: wire.FlagMux, Name: []byte("mux")}
	frame, err := wire.AppendFrame(nil, &hello)
	if err == nil {
		_, err = conn.Write(frame)
	}
	if err != nil {
		//lint:ignore errdiscard best-effort close of a conn whose hello failed; the hello error is returned
		conn.Close()
		return nil, fmt.Errorf("cluster: mux hello: %w", err)
	}
	return mux.Client(conn, mux.Options{Coalesce: d.Coalesce, Counters: &d.ctrs}), nil
}

// Stats returns a snapshot of the dialer's multiplexing counters across
// every session it has established.
func (d *MuxDialer) Stats() mux.Stats { return d.ctrs.Stats() }

// Close tears down every pooled session; subsequent Dials fail.
func (d *MuxDialer) Close() error {
	d.mu.Lock()
	sessions := d.sessions
	d.sessions = nil
	d.closed = true
	d.mu.Unlock()
	for _, sess := range sessions {
		if sess != nil {
			//lint:ignore errdiscard session Close never fails (teardown by design); nothing to report per slot
			sess.Close()
		}
	}
	return nil
}
