package cluster

import (
	"sort"
	"sync"
)

// EventCounters tallies scheduler lifecycle events by type: the
// gauge-shaped digest of the event stream, cheap enough to sit directly
// on the Scheduler.OnEvent hot path and feed a /metrics endpoint.
//
// Wire it up with:
//
//	var ec cluster.EventCounters
//	sched.OnEvent = ec.Record
type EventCounters struct {
	mu     sync.Mutex
	counts map[EventType]int64
}

// Record tallies one event.  It is safe for concurrent use and never
// calls back into the scheduler, as the OnEvent contract requires.
func (ec *EventCounters) Record(e Event) {
	ec.mu.Lock()
	if ec.counts == nil {
		ec.counts = make(map[EventType]int64)
	}
	ec.counts[e.Type]++
	ec.mu.Unlock()
}

// Count returns the tally for one event type.
func (ec *EventCounters) Count(t EventType) int64 {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.counts[t]
}

// Counts returns parallel slices of the observed event types (sorted
// lexically, for deterministic rendering) and their tallies.
func (ec *EventCounters) Counts() ([]EventType, []int64) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	types := make([]EventType, 0, len(ec.counts))
	for t := range ec.counts {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	counts := make([]int64, len(types))
	for i, t := range types {
		counts[i] = ec.counts[t]
	}
	return types, counts
}
