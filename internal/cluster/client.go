package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/uuid"
)

// Client submits tasks to a scheduler and awaits results, like the Dask
// client running on the Summit batch node (§2.2.5).  It is safe for
// concurrent use, so an EA evaluation pool can fan out submissions.
type Client struct {
	conn    net.Conn
	mu      sync.Mutex // guards writes and the waiters map
	waiters map[string]chan *message
	readErr error
	done    chan struct{}
	once    sync.Once
}

// NewClient dials the scheduler.
func NewClient(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		waiters: make(map[string]chan *message),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		m, err := readMessage(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.waiters {
				close(ch)
				delete(c.waiters, id)
			}
			c.mu.Unlock()
			c.once.Do(func() { close(c.done) })
			return
		}
		c.mu.Lock()
		ch, ok := c.waiters[m.TaskID]
		if ok {
			delete(c.waiters, m.TaskID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

// Submit sends one task and blocks until its result arrives or the
// context is cancelled.  Application errors from the worker come back as
// non-nil error with nil payload.
func (c *Client) Submit(ctx context.Context, payload json.RawMessage) (json.RawMessage, error) {
	id := uuid.New().String()
	ch := make(chan *message, 1)

	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: connection down: %w", err)
	}
	c.waiters[id] = ch
	err := writeMessage(c.conn, &message{Type: msgSubmit, TaskID: id, Payload: payload})
	if err != nil {
		delete(c.waiters, id)
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()

	select {
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	case m, ok := <-ch:
		if !ok {
			return nil, errors.New("cluster: connection closed while waiting for result")
		}
		if m.Err != "" {
			return nil, errors.New(m.Err)
		}
		return m.Payload, nil
	}
}

// SubmitBatch sends all payloads concurrently and waits for every result,
// preserving order — the fan-out an EA generation performs (eval_pool in
// the paper's Listing 1).  Each element carries either a payload or an
// error; a failed submission does not abort the rest.
func (c *Client) SubmitBatch(ctx context.Context, payloads []json.RawMessage) []BatchResult {
	out := make([]BatchResult, len(payloads))
	var wg sync.WaitGroup
	for i, p := range payloads {
		wg.Add(1)
		go func(i int, p json.RawMessage) {
			defer wg.Done()
			out[i].Payload, out[i].Err = c.Submit(ctx, p)
		}(i, p)
	}
	wg.Wait()
	return out
}

// BatchResult is one SubmitBatch outcome.
type BatchResult struct {
	Payload json.RawMessage
	Err     error
}

// Close terminates the client connection.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done // wait for readLoop to drain waiters
	return err
}
