package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/uuid"
)

// pendingCall is one submitted task awaiting its result.  The payload is
// retained so the call can be resubmitted after a reconnect: the
// scheduler keeps no durable state, so a client that survives a
// scheduler bounce replays its in-flight work (cf. the paper's stance
// that tasks, not connections, are the unit of reliability, §2.2.5).
type pendingCall struct {
	ch      chan *message
	payload json.RawMessage
}

// Client submits tasks to a scheduler and awaits results, like the Dask
// client running on the Summit batch node (§2.2.5).  It is safe for
// concurrent use, so an EA evaluation pool can fan out submissions.  A
// lost scheduler connection is retried with exponential backoff + jitter
// and all in-flight tasks are resubmitted; Submit callers only see an
// error once reconnection is exhausted (or their context ends).
type Client struct {
	// ReconnectInitial and ReconnectMax shape the re-dial backoff
	// (defaults 50ms and 5s).
	ReconnectInitial time.Duration
	ReconnectMax     time.Duration
	// MaxReconnects bounds consecutive failed re-dial attempts before the
	// client gives up and fails every in-flight call (default 10; set
	// negative to disable reconnection entirely).
	MaxReconnects int
	// Logf, if non-nil, receives diagnostic output.
	Logf func(format string, args ...interface{})

	addr      string
	transport Transport
	dialer    Dialer
	wire      wireCounters

	mu      sync.Mutex // guards conn/cd writes, waiters, readErr, closed
	conn    net.Conn
	cd      codec
	waiters map[string]*pendingCall
	readErr error
	closed  bool

	closeCh chan struct{} // closed by Close, aborts reconnect sleeps
	done    chan struct{} // closed when readLoop exits
	once    sync.Once
	start   sync.Once // spawns readLoop on first Submit, so config fields
	// (ReconnectInitial etc.) may be set freely between NewClient and use
}

// NewClient dials the scheduler over the default binary framing.
func NewClient(addr string) (*Client, error) {
	return NewClientTransport(addr, TransportBinary)
}

// NewClientTransport dials the scheduler, speaking the given framing for
// the life of the client (reconnections included).
func NewClientTransport(addr string, tr Transport) (*Client, error) {
	return newClient(addr, tr, tcpDialer(addr))
}

// NewClientMux dials the scheduler through a shared MuxDialer: the
// client's "connection" is one logical stream over the dialer's TCP
// pool (binary framing, the only framing mux carries).  Reconnection
// opens a fresh stream, lazily re-establishing a dead physical session.
func NewClientMux(d *MuxDialer) (*Client, error) {
	return newClient(d.Addr, TransportBinary, d)
}

func newClient(addr string, tr Transport, dialer Dialer) (*Client, error) {
	conn, err := dialer.Dial()
	if err != nil {
		return nil, err
	}
	c := &Client{
		MaxReconnects: 10,
		addr:          addr,
		transport:     tr,
		dialer:        dialer,
		conn:          conn,
		waiters:       make(map[string]*pendingCall),
		closeCh:       make(chan struct{}),
		done:          make(chan struct{}),
	}
	c.cd = dialCodec(tr, conn, &c.wire)
	return c, nil
}

// Wire returns a snapshot of the client's transport counters across all
// connections it has dialed.
func (c *Client) Wire() WireStats { return c.wire.snapshot() }

func (c *Client) logf(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// readLoop owns reads on the scheduler connection, dispatching results to
// waiters and driving reconnection when the connection fails.
func (c *Client) readLoop() {
	defer close(c.done)
	bo := newBackoff(c.ReconnectInitial, c.ReconnectMax)
	for {
		c.mu.Lock()
		cd := c.cd
		c.mu.Unlock()
		m, err := cd.read()
		if err == nil {
			c.mu.Lock()
			pc, ok := c.waiters[m.TaskID]
			if ok {
				delete(c.waiters, m.TaskID)
			}
			c.mu.Unlock()
			if ok {
				pc.ch <- m
			}
			continue
		}
		if c.isClosed() {
			c.failAll(errors.New("cluster: client closed"))
			return
		}
		if !c.reconnectAndReplay(bo, err) {
			return
		}
	}
}

// reconnectAndReplay re-dials the scheduler and resubmits every in-flight
// task.  It reports whether the read loop should continue.
func (c *Client) reconnectAndReplay(bo *backoff, cause error) bool {
	if c.MaxReconnects < 0 {
		c.failAll(cause)
		return false
	}
	c.logf("cluster: client lost scheduler connection: %v; reconnecting", cause)
	attempts := 0
	for {
		if c.isClosed() {
			c.failAll(errors.New("cluster: client closed"))
			return false
		}
		conn, err := c.dialer.Dial()
		if err == nil {
			if replayErr := c.adopt(conn); replayErr == nil {
				bo.reset()
				return true
			}
			//lint:ignore errdiscard best-effort: the conn is being abandoned because its resubmission replay already failed
			conn.Close()
			err = errors.New("cluster: resubmission failed")
		}
		attempts++
		if c.MaxReconnects > 0 && attempts >= c.MaxReconnects {
			c.failAll(fmt.Errorf("cluster: gave up after %d reconnect attempts: %w", attempts, cause))
			return false
		}
		delay := bo.next()
		c.logf("cluster: client reconnect attempt %d failed (%v); retrying in %v", attempts, err, delay)
		select {
		case <-time.After(delay):
		case <-c.closeCh:
		}
	}
}

// adopt installs a fresh connection and replays every pending call on it.
// Replaying reuses the original task IDs: if the old scheduler somehow
// still completes a copy, the duplicate result finds no waiter and is
// dropped here, and the scheduler-side books stay balanced because each
// submission is its own task.
func (c *Client) adopt(conn net.Conn) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("cluster: client closed")
	}
	old := c.conn
	c.conn = conn
	c.cd = dialCodec(c.transport, conn, &c.wire)
	if old != nil && old != conn {
		//lint:ignore errdiscard best-effort: the stale conn was already replaced by the reconnect; its close error is unactionable
		old.Close()
	}
	n := 0
	for id, pc := range c.waiters {
		if err := c.cd.write(&message{Type: msgSubmit, TaskID: id, Payload: pc.payload}); err != nil {
			return err
		}
		n++
	}
	if n > 0 {
		c.logf("cluster: client reconnected, resubmitted %d in-flight tasks", n)
	} else {
		c.logf("cluster: client reconnected")
	}
	return nil
}

// failAll resolves every waiter with a terminal error.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	c.readErr = err
	for id, pc := range c.waiters {
		close(pc.ch)
		delete(c.waiters, id)
	}
	c.mu.Unlock()
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Submit sends one task and blocks until its result arrives or the
// context is cancelled.  Application errors from the worker come back as
// non-nil error with nil payload.  A connection loss mid-wait is handled
// transparently by reconnect + resubmit; Submit fails only when the
// client gives up or is closed.
func (c *Client) Submit(ctx context.Context, payload json.RawMessage) (json.RawMessage, error) {
	c.start.Do(func() { go c.readLoop() })
	id := uuid.New().String()
	pc := &pendingCall{ch: make(chan *message, 1), payload: payload}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("cluster: client closed")
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: connection down: %w", err)
	}
	c.waiters[id] = pc
	// A write error is not reported here: the read loop will observe the
	// same broken connection and resubmit this call after reconnecting.
	//lint:ignore errdiscard the read loop observes the same broken conn and resubmits; handling here would double-report
	_ = c.cd.write(&message{Type: msgSubmit, TaskID: id, Payload: payload})
	c.mu.Unlock()

	select {
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	case m, ok := <-pc.ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			if err == nil {
				err = errors.New("cluster: connection closed while waiting for result")
			}
			return nil, err
		}
		if m.Err != "" {
			return nil, errors.New(m.Err)
		}
		return m.Payload, nil
	}
}

// SubmitBatch sends all payloads concurrently and waits for every result,
// preserving order — the fan-out an EA generation performs (eval_pool in
// the paper's Listing 1).  Each element carries either a payload or an
// error; a failed submission does not abort the rest.
func (c *Client) SubmitBatch(ctx context.Context, payloads []json.RawMessage) []BatchResult {
	out := make([]BatchResult, len(payloads))
	var wg sync.WaitGroup
	for i, p := range payloads {
		wg.Add(1)
		go func(i int, p json.RawMessage) {
			defer wg.Done()
			out[i].Payload, out[i].Err = c.Submit(ctx, p)
		}(i, p)
	}
	wg.Wait()
	return out
}

// BatchResult is one SubmitBatch outcome.
type BatchResult struct {
	Payload json.RawMessage
	Err     error
}

// Close terminates the client connection and stops reconnection.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	c.once.Do(func() { close(c.closeCh) })
	// If Submit was never called, the read loop never started; stand in
	// for its exit so the wait below cannot hang.
	c.start.Do(func() { close(c.done) })
	var err error
	if conn != nil {
		err = conn.Close()
	}
	<-c.done // wait for readLoop to drain waiters
	return err
}
