package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/ea"
)

// LocalCluster bundles a scheduler, n workers and a client on the
// loopback interface — the single-machine analogue of the paper's batch
// script that launches the Dask scheduler, workers and client on the
// Summit batch node (§2.2.5).
type LocalCluster struct {
	Scheduler *Scheduler
	Workers   []*Worker
	Client    *Client
	// Dialer is the shared mux dialer when the cluster was built with
	// WithMuxConns, nil otherwise.
	Dialer *MuxDialer
	cancel context.CancelFunc
}

// LocalOption adjusts a LocalCluster before it starts.
type LocalOption func(*localConfig)

type localConfig struct {
	transport  Transport
	muxConns   int
	coalesce   time.Duration
	queueDepth int
}

// WithTransport selects the framing the local workers and client speak
// to the scheduler (default TransportBinary).
func WithTransport(tr Transport) LocalOption {
	return func(cfg *localConfig) { cfg.transport = tr }
}

// WithMuxConns multiplexes every local worker and the client over n
// shared TCP connections (binary framing) instead of one connection
// each.  n < 1 is treated as 1.
func WithMuxConns(n int) LocalOption {
	return func(cfg *localConfig) { cfg.muxConns = max(n, 1) }
}

// WithCoalesce sets the frame-coalescing latency budget on both ends
// of the mux sessions (scheduler side and, with WithMuxConns, the
// dialer side).
func WithCoalesce(d time.Duration) LocalOption {
	return func(cfg *localConfig) { cfg.coalesce = d }
}

// WithQueueDepth bounds the scheduler's pending-task queue; submitters
// block when it fills (default SchedulerConfig's 4096).
func WithQueueDepth(n int) LocalOption {
	return func(cfg *localConfig) { cfg.queueDepth = n }
}

// NewLocalCluster starts everything on 127.0.0.1 with the given handler
// and per-worker task timeout (0 = none).  Workers are wired with a fast
// reconnect schedule, so a locally bounced scheduler is reacquired in
// tens of milliseconds rather than the production default's seconds.
func NewLocalCluster(nWorkers int, handler Handler, taskTimeout time.Duration, opts ...LocalOption) (*LocalCluster, error) {
	var cfg localConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	sched, err := NewSchedulerWithConfig("127.0.0.1:0", SchedulerConfig{
		QueueDepth: cfg.queueDepth,
		Coalesce:   cfg.coalesce,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	lc := &LocalCluster{Scheduler: sched, cancel: cancel}
	if cfg.muxConns > 0 {
		lc.Dialer = &MuxDialer{Addr: sched.Addr(), Conns: cfg.muxConns, Coalesce: cfg.coalesce}
	}
	for i := 0; i < nWorkers; i++ {
		var w *Worker
		if lc.Dialer != nil {
			w, err = NewWorkerMux(lc.Dialer, fmt.Sprintf("worker-%d", i), handler)
		} else {
			w, err = NewWorkerTransport(sched.Addr(), fmt.Sprintf("worker-%d", i), handler, cfg.transport)
		}
		if err != nil {
			return nil, errors.Join(err, lc.Close())
		}
		w.TaskTimeout = taskTimeout
		w.ReconnectInitial = 10 * time.Millisecond
		w.ReconnectMax = 250 * time.Millisecond
		lc.Workers = append(lc.Workers, w)
		go func() { _ = w.Run(ctx) }()
	}
	var client *Client
	if lc.Dialer != nil {
		client, err = NewClientMux(lc.Dialer)
	} else {
		client, err = NewClientTransport(sched.Addr(), cfg.transport)
	}
	if err != nil {
		return nil, errors.Join(err, lc.Close())
	}
	lc.Client = client
	return lc, nil
}

// Close tears the cluster down and reports every teardown failure; a
// deferred Close remains the best-effort idiom for callers that only
// need the shutdown, not its error.
func (lc *LocalCluster) Close() error {
	lc.cancel()
	var errs []error
	if lc.Client != nil {
		errs = append(errs, lc.Client.Close())
	}
	for _, w := range lc.Workers {
		errs = append(errs, w.Close())
	}
	if lc.Dialer != nil {
		errs = append(errs, lc.Dialer.Close())
	}
	errs = append(errs, lc.Scheduler.Close())
	return errors.Join(errs...)
}

// genomeTask is the JSON payload for fitness-evaluation tasks.
type genomeTask struct {
	Genome []float64 `json:"genome"`
}

// fitnessResult is the JSON result payload.
type fitnessResult struct {
	Fitness []float64 `json:"fitness"`
}

// Evaluator adapts a cluster client into an ea.Evaluator: each genome is
// shipped to the scheduler as a task and the fitness comes back from
// whichever worker ran it.  Worker-side errors surface as evaluation
// errors, which the EA converts to MAXINT fitness (§2.2.4).
type Evaluator struct {
	Client *Client
}

// Evaluate implements ea.Evaluator.
func (ce *Evaluator) Evaluate(ctx context.Context, g ea.Genome) (ea.Fitness, error) {
	payload, err := json.Marshal(genomeTask{Genome: g})
	if err != nil {
		return nil, err
	}
	out, err := ce.Client.Submit(ctx, payload)
	if err != nil {
		return nil, err
	}
	var res fitnessResult
	if err := json.Unmarshal(out, &res); err != nil {
		return nil, fmt.Errorf("cluster: bad fitness payload: %w", err)
	}
	return ea.Fitness(res.Fitness), nil
}

// EvalHandler wraps an ea.Evaluator as a worker Handler, so the same
// fitness code runs locally or behind the scheduler.
func EvalHandler(ev ea.Evaluator) Handler {
	return func(ctx context.Context, payload json.RawMessage) (json.RawMessage, error) {
		var in genomeTask
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, fmt.Errorf("cluster: bad genome payload: %w", err)
		}
		fit, err := ev.Evaluate(ctx, ea.Genome(in.Genome))
		if err != nil {
			return nil, err
		}
		return json.Marshal(fitnessResult{Fitness: fit})
	}
}
