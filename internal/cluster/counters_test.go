package cluster

import (
	"context"
	"sync"
	"testing"
)

func TestEventCountersTallyAndOrder(t *testing.T) {
	var ec EventCounters
	if got := ec.Count(EventAssign); got != 0 {
		t.Fatalf("zero-value Count = %d, want 0", got)
	}
	if types, counts := ec.Counts(); len(types) != 0 || len(counts) != 0 {
		t.Fatalf("zero-value Counts = %v %v, want empty", types, counts)
	}

	for i := 0; i < 3; i++ {
		ec.Record(Event{Type: EventAssign})
	}
	ec.Record(Event{Type: EventResult})
	ec.Record(Event{Type: EventWorkerConnect})
	ec.Record(Event{Type: EventResult})

	if got := ec.Count(EventAssign); got != 3 {
		t.Errorf("Count(assign) = %d, want 3", got)
	}
	if got := ec.Count(EventLeaseExpired); got != 0 {
		t.Errorf("Count(lease_expired) = %d, want 0", got)
	}
	types, counts := ec.Counts()
	wantTypes := []EventType{EventAssign, EventResult, EventWorkerConnect}
	wantCounts := []int64{3, 2, 1}
	if len(types) != len(wantTypes) {
		t.Fatalf("Counts returned %d types, want %d", len(types), len(wantTypes))
	}
	for i := range wantTypes {
		if types[i] != wantTypes[i] || counts[i] != wantCounts[i] {
			t.Errorf("Counts[%d] = (%s, %d), want (%s, %d)",
				i, types[i], counts[i], wantTypes[i], wantCounts[i])
		}
	}
}

func TestEventCountersConcurrentRecord(t *testing.T) {
	var ec EventCounters
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ec.Record(Event{Type: EventAssign})
			}
		}()
	}
	wg.Wait()
	if got := ec.Count(EventAssign); got != workers*per {
		t.Fatalf("Count(assign) = %d after concurrent records, want %d", got, workers*per)
	}
}

// TestEventCountersOnScheduler wires Record into a real scheduler's
// OnEvent hook, the way cmd/serve does, and checks the connect/assign/
// result lifecycle of one task is tallied.
func TestEventCountersOnScheduler(t *testing.T) {
	var ec EventCounters
	lc, err := NewLocalCluster(1, echoHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	lc.Scheduler.OnEvent = ec.Record
	defer func() {
		if err := lc.Close(); err != nil {
			t.Logf("close: %v", err)
		}
	}()
	if _, err := lc.Client.Submit(context.Background(), []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if got := ec.Count(EventAssign); got != 1 {
		t.Errorf("Count(assign) = %d after one task, want 1", got)
	}
	if got := ec.Count(EventResult); got != 1 {
		t.Errorf("Count(result) = %d after one task, want 1", got)
	}
}
