package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestParseTransport pins the flag-value surface.
func TestParseTransport(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Transport
	}{{"binary", TransportBinary}, {"json", TransportJSON}} {
		got, err := ParseTransport(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseTransport(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseTransport("msgpack"); err == nil {
		t.Error("ParseTransport accepted an unknown transport")
	}
}

// TestTransportNegotiationMixedFleet runs binary and JSON workers and
// clients against one scheduler at the same time.  The scheduler peeks
// the first byte of each connection and speaks whichever framing the
// peer chose, so a mixed fleet interoperates without configuration.
func TestTransportNegotiationMixedFleet(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, tr := range []Transport{TransportBinary, TransportJSON} {
		w, err := NewWorkerTransport(sched.Addr(), fmt.Sprintf("worker-%v", tr), echoHandler, tr)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		defer w.Close()
		go func() { _ = w.Run(ctx) }()
	}

	for _, tr := range []Transport{TransportBinary, TransportJSON} {
		client, err := NewClientTransport(sched.Addr(), tr)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			payload := json.RawMessage(fmt.Sprintf(`{"via":"%v","i":%d}`, tr, i))
			out, err := client.Submit(ctx, payload)
			if err != nil {
				t.Fatalf("submit via %v: %v", tr, err)
			}
			if string(out) != string(payload) {
				t.Errorf("result via %v = %s, want %s", tr, out, payload)
			}
		}
		cw := client.Wire()
		if cw.FramesOut < 4 || cw.FramesIn < 4 {
			t.Errorf("client %v frame counters did not move: %v", tr, cw)
		}
		client.Close()
	}

	ws := sched.Wire()
	// One binary worker + one binary client, one JSON worker + one JSON
	// client.
	if ws.BinaryConns != 2 || ws.JSONConns != 2 {
		t.Errorf("negotiated conns = %d binary, %d json; want 2 and 2 (%v)", ws.BinaryConns, ws.JSONConns, ws)
	}
	if ws.DecodeErrors != 0 {
		t.Errorf("spurious decode errors on healthy links: %v", ws)
	}
	if ws.FramesIn == 0 || ws.FramesOut == 0 || ws.BytesIn == 0 || ws.BytesOut == 0 {
		t.Errorf("scheduler wire counters did not move: %v", ws)
	}
}

// TestSnapshotCatchUpMidCampaign is the late-joiner acceptance test: a
// worker registering mid-campaign receives one compact snapshot frame —
// campaign epoch, queue depth, outstanding leases — instead of any
// history replay, and immediately serves the backlog.
func TestSnapshotCatchUpMidCampaign(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	// The first worker takes one task and holds it, pinning one lease
	// outstanding and leaving the rest of the campaign queued.
	block := make(chan struct{})
	defer close(block)
	var first sync.Once
	holdFirst := func(_ context.Context, payload json.RawMessage) (json.RawMessage, error) {
		held := false
		first.Do(func() { held = true })
		if held {
			<-block
		}
		return payload, nil
	}
	holder, err := NewWorker(sched.Addr(), "holder", holdFirst)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { _ = holder.Run(ctx) }()

	// A worker joining an idle scheduler still gets a snapshot — an empty
	// one.
	if snap, ok := holder.Snapshot(); !ok || snap.Epoch != 0 || len(snap.Leases) != 0 {
		t.Errorf("idle-join snapshot = %+v, %v; want empty snapshot", snap, ok)
	}

	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	results := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			_, err := client.Submit(ctx, json.RawMessage(fmt.Sprintf(`{"task":%d}`, i)))
			results <- err
		}(i)
	}

	// Wait until the campaign is in the exact mid-flight shape: three
	// submissions on the books, one leased to the holder, two queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := sched.Stats()
		inflight := 0
		for _, ws := range sched.WorkerStats() {
			inflight += ws.InFlight
		}
		if st.Submitted == 3 && inflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never reached mid-flight shape: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	late, err := NewWorker(sched.Addr(), "late", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()

	snap, ok := late.Snapshot()
	if !ok {
		t.Fatal("late joiner received no snapshot")
	}
	if snap.Epoch != 3 {
		t.Errorf("snapshot epoch = %d, want 3 (tasks submitted before join)", snap.Epoch)
	}
	if snap.Pending != 2 {
		t.Errorf("snapshot pending = %d, want 2 (queued tasks at join)", snap.Pending)
	}
	if len(snap.Leases) != 1 {
		t.Errorf("snapshot leases = %v, want exactly the holder's one", snap.Leases)
	}

	go func() { _ = late.Run(ctx) }()

	// The late joiner drains the two queued tasks; releasing the holder
	// completes the third.
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("task %d failed after late join: %v", i, err)
		}
	}
	// Catch-up cost is O(1) frames, not O(history): the late worker has
	// received exactly its snapshot plus one assign per task it served.
	if lw := late.Wire(); lw.FramesIn > 3 {
		t.Errorf("late joiner received %d frames for 2 tasks; want <= 3 (snapshot + assigns, no replay)", lw.FramesIn)
	}
	block <- struct{}{}
	if err := <-results; err != nil {
		t.Fatalf("held task failed: %v", err)
	}
}
