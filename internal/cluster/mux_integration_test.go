package cluster

// Integration tests for the mux session layer inside the cluster plane:
// whole fleets multiplexed over a few TCP connections, mixed fleets
// sharing one port with per-connection peers, and chaos-injected faults
// whose blast radius must stop at the physical connection they hit.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// requireBalancedBooks asserts the scheduler's accounting invariant:
// every submitted task resolved exactly once.
func requireBalancedBooks(t *testing.T, s *Scheduler) {
	t.Helper()
	st := s.Stats()
	if st.Completed+st.Failed != st.Submitted {
		t.Fatalf("books unbalanced: completed %d + failed %d != submitted %d",
			st.Completed, st.Failed, st.Submitted)
	}
}

// TestMuxFleetRoundTrip runs a whole local fleet — workers and client —
// over two shared TCP connections and checks results, accounting and
// the mux counters on both endpoints.
func TestMuxFleetRoundTrip(t *testing.T) {
	lc, err := NewLocalCluster(6, echoHandler, 0,
		WithMuxConns(2), WithCoalesce(200*time.Microsecond))
	if err != nil {
		t.Fatalf("local mux cluster: %v", err)
	}
	defer lc.Close()

	payloads := make([]json.RawMessage, 64)
	for i := range payloads {
		payloads[i] = json.RawMessage(fmt.Sprintf(`{"n":%d}`, i))
	}
	for i, r := range lc.Client.SubmitBatch(context.Background(), payloads) {
		if r.Err != nil {
			t.Fatalf("task %d: %v", i, r.Err)
		}
		if string(r.Payload) != string(payloads[i]) {
			t.Fatalf("task %d: got %s want %s", i, r.Payload, payloads[i])
		}
	}
	requireBalancedBooks(t, lc.Scheduler)

	sm, dm := lc.Scheduler.Mux(), lc.Dialer.Stats()
	if sm.Sessions != 2 || dm.Sessions != 2 {
		t.Fatalf("sessions: scheduler %d, dialer %d, want 2 each", sm.Sessions, dm.Sessions)
	}
	// 6 workers + 1 client, each one logical stream, counted on both ends.
	if sm.Streams != 7 || dm.Streams != 7 {
		t.Fatalf("streams: scheduler %d, dialer %d, want 7 each", sm.Streams, dm.Streams)
	}
	if sm.FramesIn == 0 || sm.FramesOut == 0 || dm.Flushes == 0 {
		t.Fatalf("mux counters did not move: scheduler %+v dialer %+v", sm, dm)
	}
}

// TestMixedFleetOnePort runs mux, plain-binary and JSON workers against
// one scheduler port at the same time: negotiation keys on the first
// bytes of each connection, so all three coexist and every task lands.
func TestMixedFleetOnePort(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	defer sched.Close()

	var muxed, binary, jsonn atomic.Int64
	tag := func(ctr *atomic.Int64) Handler {
		return func(_ context.Context, p json.RawMessage) (json.RawMessage, error) {
			ctr.Add(1)
			time.Sleep(time.Millisecond) // let every worker win some tasks
			return p, nil
		}
	}

	dialer := &MuxDialer{Addr: sched.Addr(), Conns: 1}
	defer dialer.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w, err := NewWorkerMux(dialer, fmt.Sprintf("mux-%d", i), tag(&muxed))
		if err != nil {
			t.Fatalf("mux worker: %v", err)
		}
		defer w.Close()
		go func() { _ = w.Run(ctx) }()
	}
	wb, err := NewWorkerTransport(sched.Addr(), "plain-binary", tag(&binary), TransportBinary)
	if err != nil {
		t.Fatalf("binary worker: %v", err)
	}
	defer wb.Close()
	go func() { _ = wb.Run(ctx) }()
	wj, err := NewWorkerTransport(sched.Addr(), "plain-json", tag(&jsonn), TransportJSON)
	if err != nil {
		t.Fatalf("json worker: %v", err)
	}
	defer wj.Close()
	go func() { _ = wj.Run(ctx) }()

	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()

	payloads := make([]json.RawMessage, 96)
	for i := range payloads {
		payloads[i] = json.RawMessage(fmt.Sprintf(`{"n":%d}`, i))
	}
	for i, r := range client.SubmitBatch(context.Background(), payloads) {
		if r.Err != nil {
			t.Fatalf("task %d: %v", i, r.Err)
		}
	}
	requireBalancedBooks(t, sched)

	if muxed.Load() == 0 || binary.Load() == 0 || jsonn.Load() == 0 {
		t.Fatalf("not every framing served tasks: mux=%d binary=%d json=%d",
			muxed.Load(), binary.Load(), jsonn.Load())
	}
	ws := sched.Wire()
	if ws.JSONConns == 0 || ws.BinaryConns == 0 {
		t.Fatalf("negotiation counters did not see both framings: %+v", ws)
	}
	if sm := sched.Mux(); sm.Sessions != 1 || sm.Streams != 2 {
		t.Fatalf("mux counters: %+v, want 1 session / 2 streams", sm)
	}
}

// TestChaosCutOneMuxConnBlastRadius is the tentpole fault property: with
// a fleet of logical workers spread over two physical connections,
// cutting one physical connection costs exactly the streams it carried.
// The workers on the cut connection re-dial (lazily re-establishing the
// session), the workers on the surviving connection never notice, and
// the books still balance.
func TestChaosCutOneMuxConnBlastRadius(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	defer sched.Close()
	sched.TaskTimeout = 2 * time.Second

	proxy := newChaosProxy(t, sched.Addr())
	dialer := &MuxDialer{Addr: proxy.Addr(), Conns: 2}
	defer dialer.Close()

	// Sequential dials land round-robin: workers 0,2 on the first
	// physical connection (chaos pipe 0), workers 1,3 on the second.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workers := make([]*Worker, 4)
	for i := range workers {
		w, err := NewWorkerMux(dialer, fmt.Sprintf("w%d", i), func(_ context.Context, p json.RawMessage) (json.RawMessage, error) {
			time.Sleep(2 * time.Millisecond)
			return p, nil
		})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		w.ReconnectInitial = 10 * time.Millisecond
		w.ReconnectMax = 100 * time.Millisecond
		defer w.Close()
		workers[i] = w
		go func() { _ = w.Run(ctx) }()
	}
	if got := proxy.PipeCount(); got != 2 {
		t.Fatalf("expected 2 physical connections through the proxy, got %d", got)
	}

	// The client dials the scheduler directly so the cut only concerns
	// worker streams.
	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()

	const tasks = 60
	results := make(chan error, tasks)
	for i := 0; i < tasks; i++ {
		go func(i int) {
			_, err := client.Submit(context.Background(), json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)))
			results <- err
		}(i)
	}

	// Let the campaign get going, then cut the first physical connection.
	time.Sleep(20 * time.Millisecond)
	if !proxy.CutPipe(0) {
		t.Fatal("no pipe to cut")
	}

	for i := 0; i < tasks; i++ {
		if err := <-results; err != nil {
			t.Fatalf("task failed: %v", err)
		}
	}
	requireBalancedBooks(t, sched)

	// Blast radius: exactly the cut connection's workers re-dialed.
	// Each logical dial counts one binary conn in the worker's counters.
	for i, w := range workers {
		dials := w.Wire().BinaryConns
		onCut := i%2 == 0
		if onCut && dials < 2 {
			t.Errorf("worker %d rode the cut connection but never re-dialed (dials=%d)", i, dials)
		}
		if !onCut && dials != 1 {
			t.Errorf("worker %d rode the surviving connection but re-dialed (dials=%d)", i, dials)
		}
	}
}

// TestChaosMuxBlackholeLeaseRescue blackholes the shared mux connection
// mid-task: heartbeats stop arriving, the leases expire, and the tasks
// are rescued by a healthy per-connection worker outside the proxy.
func TestChaosMuxBlackholeLeaseRescue(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	defer sched.Close()
	sched.TaskTimeout = 150 * time.Millisecond
	sched.MaxAttempts = 20 // a stalled proxy may win the requeue race several times

	proxy := newChaosProxy(t, sched.Addr())
	dialer := &MuxDialer{Addr: proxy.Addr(), Conns: 1}
	defer dialer.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	block := make(chan struct{})
	for i := 0; i < 2; i++ {
		w, err := NewWorkerMux(dialer, fmt.Sprintf("doomed-%d", i), func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
			// Hold the task until the test finishes: the rescue must come
			// from reassignment, not from this worker completing late.
			select {
			case <-block:
			case <-ctx.Done():
			}
			return p, nil
		})
		if err != nil {
			t.Fatalf("mux worker: %v", err)
		}
		defer w.Close()
		go func() { _ = w.Run(ctx) }()
	}
	defer close(block)

	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := client.Submit(context.Background(), json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)))
			done <- err
		}(i)
	}
	// Give the doomed workers time to take the leases, then stall the
	// shared connection and bring in the rescuer.
	time.Sleep(50 * time.Millisecond)
	proxy.SetBlackhole(true)
	healthy, err := NewWorker(sched.Addr(), "healthy", echoHandler)
	if err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	defer healthy.Close()
	go func() { _ = healthy.Run(ctx) }()

	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("task not rescued: %v", err)
		}
	}
	if st := sched.Stats(); st.Expired == 0 {
		t.Fatalf("expected expired leases during the blackhole, got %+v", st)
	}
	requireBalancedBooks(t, sched)
}

// TestChaosMuxCorruptFrameKillsOnlyThatSession flips the first byte of a
// toward-scheduler chunk — a mux frame header — which must fail that
// whole session (framing is unrecoverable) but nothing else: the workers
// re-dial and the campaign completes with balanced books.
func TestChaosMuxCorruptFrameKillsOnlyThatSession(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	defer sched.Close()
	sched.TaskTimeout = 2 * time.Second

	proxy := newChaosProxy(t, sched.Addr())
	dialer := &MuxDialer{Addr: proxy.Addr(), Conns: 1}
	defer dialer.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w, err := NewWorkerMux(dialer, fmt.Sprintf("w%d", i), func(_ context.Context, p json.RawMessage) (json.RawMessage, error) {
			time.Sleep(2 * time.Millisecond)
			return p, nil
		})
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
		w.ReconnectInitial = 10 * time.Millisecond
		w.ReconnectMax = 100 * time.Millisecond
		defer w.Close()
		go func() { _ = w.Run(ctx) }()
	}
	client, err := NewClient(sched.Addr())
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()

	const tasks = 40
	results := make(chan error, tasks)
	for i := 0; i < tasks; i++ {
		go func(i int) {
			_, err := client.Submit(context.Background(), json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)))
			results <- err
		}(i)
	}
	time.Sleep(15 * time.Millisecond)
	// Chunks begin at flush boundaries, so byte 0 is a frame header's
	// magic byte: guaranteed decode failure, session teardown.
	proxy.MutateNext(func(b []byte) { b[0] ^= 0xFF })

	for i := 0; i < tasks; i++ {
		if err := <-results; err != nil {
			t.Fatalf("task failed: %v", err)
		}
	}
	requireBalancedBooks(t, sched)
	if sched.Wire().DecodeErrors == 0 && sched.Mux().Sessions < 2 {
		t.Fatalf("corruption left no trace: wire=%+v mux=%+v", sched.Wire(), sched.Mux())
	}
}

// TestChaosMuxDelay adds latency to every chunk on the shared connection
// and requires the campaign to complete anyway — coalescing and flow
// control must degrade gracefully, not deadlock, on a slow link.
func TestChaosMuxDelay(t *testing.T) {
	sched, err := NewScheduler("127.0.0.1:0")
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	defer sched.Close()

	proxy := newChaosProxy(t, sched.Addr())
	proxy.SetDelay(time.Millisecond)
	dialer := &MuxDialer{Addr: proxy.Addr(), Conns: 1, Coalesce: 200 * time.Microsecond}
	defer dialer.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		w, err := NewWorkerMux(dialer, fmt.Sprintf("w%d", i), echoHandler)
		if err != nil {
			t.Fatalf("worker: %v", err)
		}
		defer w.Close()
		go func() { _ = w.Run(ctx) }()
	}
	client, err := NewClientMux(dialer)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()

	payloads := make([]json.RawMessage, 24)
	for i := range payloads {
		payloads[i] = json.RawMessage(fmt.Sprintf(`{"n":%d}`, i))
	}
	for i, r := range client.SubmitBatch(context.Background(), payloads) {
		if r.Err != nil {
			t.Fatalf("task %d: %v", i, r.Err)
		}
	}
	requireBalancedBooks(t, sched)
}
