package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cluster/wire"
)

// FuzzProtoDecode feeds arbitrary bytes to the wire-format decoder.
// readMessage must never panic, and — the property the chunked frame
// reader guarantees — a hostile length header on a short stream must
// not allocate anywhere near the claimed frame size.  Accepted messages
// must survive a re-encode → re-decode round trip.
func FuzzProtoDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := writeMessage(&seed, &message{Type: msgSubmit, TaskID: "t1", Payload: []byte(`{"genome":[1,2]}`)}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	// A 63 MiB claim with no body: must fail fast without the allocation.
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], 63<<20)
	f.Add(huge[:])

	f.Fuzz(func(t *testing.T, in []byte) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		m, err := readMessage(bytes.NewReader(in))
		runtime.ReadMemStats(&after)
		if grown := after.TotalAlloc - before.TotalAlloc; grown > uint64(len(in))+1<<20 {
			t.Fatalf("decoding %d input bytes allocated %d bytes", len(in), grown)
		}
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeMessage(&out, m); err != nil {
			t.Fatalf("re-encoding accepted message: %v", err)
		}
		m2, err := readMessage(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding re-encoded message: %v", err)
		}
		if m2.Type != m.Type || m2.TaskID != m.TaskID || m2.Name != m.Name || m2.Err != m.Err {
			t.Fatalf("round trip changed message: %+v vs %+v", m, m2)
		}
	})
}

// clampUTF8 bounds s to at most n bytes of valid UTF-8.  Both framings
// must agree on the value they carry, and JSON marshaling replaces
// invalid sequences while the binary codec preserves raw bytes — so the
// differential fuzz only feeds values both can represent.
func clampUTF8(s string, n int) string {
	s = strings.ToValidUTF8(s, "?")
	if len(s) > n {
		s = strings.ToValidUTF8(s[:n], "")
	}
	return s
}

// FuzzTransportDifferential is the cross-transport oracle: one message,
// encoded and decoded through the binary codec and through the JSON
// codec, must come out semantically identical on both paths.  Any field
// one framing drops, reorders or mangles that the other keeps is a bug
// in the binary codec (the JSON path is the reference).
func FuzzTransportDifferential(f *testing.F) {
	f.Add(byte(0), byte(1), "", "worker-0", "", []byte(nil), uint64(0), uint64(0), "")
	f.Add(byte(1), byte(0), "task-1", "", "", []byte(`{"genome":[0.5,-1.5]}`), uint64(0), uint64(0), "")
	f.Add(byte(2), byte(0), "task-2", "", "", []byte(`{"genome":[1]}`), uint64(0), uint64(0), "")
	f.Add(byte(3), byte(0), "task-3", "", "diverged", []byte(`{"fitness":[2.5]}`), uint64(0), uint64(0), "")
	f.Add(byte(4), byte(0), "task-4", "", "", []byte(nil), uint64(0), uint64(0), "")
	f.Add(byte(5), byte(0), "", "", "", []byte(nil), uint64(981), uint64(12), "lease-a")

	f.Fuzz(func(t *testing.T, typ, flags byte, taskID, name, errStr string, payload []byte, epoch, pending uint64, lease string) {
		types := []msgType{msgRegister, msgSubmit, msgAssign, msgResult, msgHeartbeat, msgSnapshot}
		m := &message{Type: types[int(typ)%len(types)], Flags: flags}
		// Populate only the fields the message type carries on the binary
		// wire; the JSON framing would happily ship the rest, which is a
		// format difference, not a codec bug.
		switch m.Type {
		case msgRegister:
			m.Name = clampUTF8(name, 1<<10)
		case msgSubmit, msgAssign, msgResult, msgHeartbeat:
			m.TaskID = clampUTF8(taskID, wire.MaxTaskID)
		}
		if m.Type == msgSubmit || m.Type == msgAssign || m.Type == msgResult {
			// The JSON envelope requires the payload itself to be valid
			// JSON, so wrap the fuzz bytes as a JSON string value.
			pj, err := json.Marshal(strings.ToValidUTF8(string(payload), "?"))
			if err != nil {
				t.Fatal(err)
			}
			m.Payload = pj
		}
		if m.Type == msgResult {
			m.Err = clampUTF8(errStr, 1<<10)
		}
		if m.Type == msgSnapshot {
			m.Snap = &snapshotData{
				Epoch:   epoch,
				Pending: int(pending % (1 << 30)),
				Leases:  []string{clampUTF8(lease, 64)},
			}
		}

		roundTrip := func(tr Transport) *message {
			var buf bytes.Buffer
			var wc wireCounters
			cd := newCodec(tr, &buf, &buf, &wc)
			if err := cd.write(m); err != nil {
				t.Fatalf("%v encode of %+v: %v", tr, m, err)
			}
			out, err := cd.read()
			if err != nil {
				t.Fatalf("%v decode of own encoding of %+v: %v", tr, m, err)
			}
			return out
		}
		b, j := roundTrip(TransportBinary), roundTrip(TransportJSON)

		if b.Type != j.Type || b.Flags != j.Flags || b.TaskID != j.TaskID ||
			b.Name != j.Name || b.Err != j.Err || !bytes.Equal(b.Payload, j.Payload) {
			t.Fatalf("transports disagree:\n binary %+v\n json   %+v", b, j)
		}
		if (b.Snap == nil) != (j.Snap == nil) {
			t.Fatalf("snapshot presence disagrees: binary %+v, json %+v", b.Snap, j.Snap)
		}
		if b.Snap != nil {
			if b.Snap.Epoch != j.Snap.Epoch || b.Snap.Pending != j.Snap.Pending ||
				len(b.Snap.Leases) != len(j.Snap.Leases) {
				t.Fatalf("snapshots disagree:\n binary %+v\n json   %+v", b.Snap, j.Snap)
			}
			for i := range b.Snap.Leases {
				if b.Snap.Leases[i] != j.Snap.Leases[i] {
					t.Fatalf("lease %d disagrees: %q vs %q", i, b.Snap.Leases[i], j.Snap.Leases[i])
				}
			}
		}
	})
}
