package cluster

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
)

// FuzzProtoDecode feeds arbitrary bytes to the wire-format decoder.
// readMessage must never panic, and — the property the chunked frame
// reader guarantees — a hostile length header on a short stream must
// not allocate anywhere near the claimed frame size.  Accepted messages
// must survive a re-encode → re-decode round trip.
func FuzzProtoDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := writeMessage(&seed, &message{Type: msgSubmit, TaskID: "t1", Payload: []byte(`{"genome":[1,2]}`)}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	// A 63 MiB claim with no body: must fail fast without the allocation.
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], 63<<20)
	f.Add(huge[:])

	f.Fuzz(func(t *testing.T, in []byte) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		m, err := readMessage(bytes.NewReader(in))
		runtime.ReadMemStats(&after)
		if grown := after.TotalAlloc - before.TotalAlloc; grown > uint64(len(in))+1<<20 {
			t.Fatalf("decoding %d input bytes allocated %d bytes", len(in), grown)
		}
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeMessage(&out, m); err != nil {
			t.Fatalf("re-encoding accepted message: %v", err)
		}
		m2, err := readMessage(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding re-encoded message: %v", err)
		}
		if m2.Type != m.Type || m2.TaskID != m.TaskID || m2.Name != m.Name || m2.Err != m.Err {
			t.Fatalf("round trip changed message: %+v vs %+v", m, m2)
		}
	})
}
