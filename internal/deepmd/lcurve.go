package deepmd

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// lcurve.out column layout, following DeePMD-kit v2's file: a commented
// header naming the columns, then whitespace-separated numeric rows.  The
// paper's fitness extraction reads "the last values of the rmse_e_val and
// rmse_f_val columns" (§2.2.4), so the reader resolves columns by name.
const lcurveHeader = "#  step      rmse_e_val    rmse_e_trn    rmse_f_val    rmse_f_trn         lr"

func writeHeader(w io.Writer) {
	if w == nil {
		return
	}
	fmt.Fprintln(w, lcurveHeader)
}

func writeRecord(w io.Writer, r LCurveRecord) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, "%8d    %10.4e    %10.4e    %10.4e    %10.4e    %8.2e\n",
		r.Step, r.RmseEVal, r.RmseETrn, r.RmseFVal, r.RmseFTrn, r.LR)
}

// ReadLCurve parses an lcurve.out stream into records, resolving columns
// from the header.
func ReadLCurve(r io.Reader) ([]LCurveRecord, error) {
	sc := bufio.NewScanner(r)
	var cols []string
	var recs []LCurveRecord
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			cols = strings.Fields(strings.TrimPrefix(line, "#"))
			continue
		}
		fields := strings.Fields(line)
		if cols == nil {
			return nil, fmt.Errorf("deepmd: lcurve data before header")
		}
		if len(fields) != len(cols) {
			return nil, fmt.Errorf("deepmd: lcurve row has %d fields, header has %d", len(fields), len(cols))
		}
		var rec LCurveRecord
		for i, c := range cols {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("deepmd: bad lcurve value %q: %w", fields[i], err)
			}
			switch c {
			case "step":
				rec.Step = int(v)
			case "rmse_e_val":
				rec.RmseEVal = v
			case "rmse_e_trn":
				rec.RmseETrn = v
			case "rmse_f_val":
				rec.RmseFVal = v
			case "rmse_f_trn":
				rec.RmseFTrn = v
			case "lr":
				rec.LR = v
			}
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ReadLCurveFile reads lcurve.out from disk.
func ReadLCurveFile(path string) ([]LCurveRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLCurve(f)
}

// FinalLosses returns the last rmse_e_val and rmse_f_val of an lcurve.out
// file — the exact fitness-extraction step of §2.2.4 item 4c.
func FinalLosses(path string) (rmseEVal, rmseFVal float64, err error) {
	recs, err := ReadLCurveFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(recs) == 0 {
		return 0, 0, fmt.Errorf("deepmd: %s has no data rows", path)
	}
	last := recs[len(recs)-1]
	return last.RmseEVal, last.RmseFVal, nil
}
