package deepmd

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/descriptor"
	"repro/internal/neighbor"
	"repro/internal/nn"
)

// batchScratch is the reusable workspace of the whole-frame training
// path: per-slot descriptor environments (slot = frame·N + atom),
// per-species fitting batches spanning a frame (or, in fast mode, every
// frame of a worker batch), and the per-frame force-loss state.  One
// instance lives for a whole training run, so the hot loop allocates
// nothing in steady state.
type batchScratch struct {
	nls  []neighbor.List   // per frame
	envs []*descriptor.Env // per slot
	// energies[slot] is the atomic energy from the base fitting forward.
	energies []float64
	// dEdD[slot] views the fitting net's input gradient for the slot's
	// row; valid until the next batched fitting pass reuses the buffers.
	dEdD [][]float64
	// dc[slot] is the slot's private coordinate-gradient buffer (paper
	// mode).  Invariant outside a backward/fold pair: all zeros.
	dc [][]float64

	slots  []int // active-slot worklist for the forward pass
	rows   [][]int
	ftIn   [][]float64
	ftDy   [][]float64
	ftTape []*nn.BatchTape

	// eb and envList drive the fused embedding path (fast mode): one
	// embedding forward/backward per network spanning every active slot.
	eb      descriptor.EnvBatch
	envList []*descriptor.Env

	// sdesc shards embedding gradients per atom in paper mode so the
	// per-atom merge keeps the scalar path's reduction order.
	sdesc *descriptor.Descriptor

	// Per-frame force-loss state.
	ePred, dE, vnorm, scaleF []float64
	forces, v, pos           [][]float64
	active                   []bool

	// vframes doubles the batch for the fused ± sweep (fast mode): frame
	// f appears twice, displaced +h·v̂ as virtual frame f and −h·v̂ as B+f.
	vframes []*dataset.Frame
}

// ensure sizes the workspace for B frames of len(types) atoms.
func (ws *batchScratch) ensure(m *Model, types []int, B int, fast bool) {
	n := len(types)
	n3 := 3 * n
	slots := B * n
	if len(ws.nls) < B {
		ws.nls = append(ws.nls, make([]neighbor.List, B-len(ws.nls))...)
	}
	if len(ws.envs) < slots {
		ws.envs = append(ws.envs, make([]*descriptor.Env, slots-len(ws.envs))...)
	}
	ws.energies = ensureLen(ws.energies, slots)
	if len(ws.dEdD) < slots {
		ws.dEdD = append(ws.dEdD, make([][]float64, slots-len(ws.dEdD))...)
	}
	if !fast {
		if len(ws.dc) < slots {
			ws.dc = append(ws.dc, make([][]float64, slots-len(ws.dc))...)
		}
		for k := 0; k < slots; k++ {
			if len(ws.dc[k]) != n3 {
				ws.dc[k] = make([]float64, n3)
			}
		}
		if ws.sdesc == nil {
			ws.sdesc = m.Desc.ShadowClone()
		}
	}
	nS := m.Cfg.NumSpecies
	if len(ws.rows) < nS {
		ws.rows = append(ws.rows, make([][]int, nS-len(ws.rows))...)
		ws.ftIn = append(ws.ftIn, make([][]float64, nS-len(ws.ftIn))...)
		ws.ftDy = append(ws.ftDy, make([][]float64, nS-len(ws.ftDy))...)
		ws.ftTape = append(ws.ftTape, make([]*nn.BatchTape, nS-len(ws.ftTape))...)
	}
	ws.ePred = ensureLen(ws.ePred, B)
	ws.dE = ensureLen(ws.dE, B)
	ws.vnorm = ensureLen(ws.vnorm, B)
	ws.scaleF = ensureLen(ws.scaleF, B)
	for _, buf := range []*[][]float64{&ws.forces, &ws.v, &ws.pos} {
		if len(*buf) < B {
			*buf = append(*buf, make([][]float64, B-len(*buf))...)
		}
		for f := 0; f < B; f++ {
			if len((*buf)[f]) != n3 {
				(*buf)[f] = make([]float64, n3)
			}
		}
	}
	if len(ws.active) < B {
		ws.active = append(ws.active, make([]bool, B-len(ws.active))...)
	}
}

// accumulateBatchGrad adds the loss gradient of a batch of frames to the
// model's accumulators — the whole-frame replacement for the per-atom
// scalar path.
//
// Energy term: ∂/∂θ [p_e (ΔE/N)²] = (2·p_e·ΔE/N²)·∂E/∂θ.
//
// Force term: with F = −∇ₓE and v = F_pred − F_ref,
// ∂/∂θ [p_f/(3N)·‖v‖²] = −(2·p_f/3N)·vᵀ ∂(∇ₓE)/∂θ, and the contraction
// vᵀ∂(∇ₓE)/∂θ is evaluated exactly to O(h²) as the directional central
// difference [∂E/∂θ(x+h·v̂) − ∂E/∂θ(x−h·v̂)]·|v|/(2h) — second-order
// backprop through the descriptor without a second autodiff pass.
//
// The pass structure is three forward sweeps per frame instead of the
// scalar path's four: the base descriptor environments and fitting tapes
// serve both the force evaluation (InputGradBatch + geometry backward)
// and the base parameter pass (BackwardBatch + BackwardParams), because
// a deterministic recompute at the same coordinates would reproduce them
// bit for bit anyway.
//
// With fast=false the batch must hold exactly one frame, and every
// parameter accumulator receives its contributions in the scalar path's
// order: fitting-net gradients batch over a frame's atoms in ascending
// atom order (each batch row is bit-identical to a scalar backward, and
// blas.AccumGrad reduces rows in ascending order), and embedding
// gradients shard through sdesc and merge per atom ascending.  The result
// is bit-identical to the historical per-atom implementation.
//
// With fast=true the per-species fitting batches span every frame of the
// batch, embedding gradients accumulate directly into the model without
// per-atom sharding, and coordinate gradients skip the private-buffer
// fold.  Results stay deterministic for any thread count but follow a
// relaxed reduction order that is not bit-identical to the paper path.
//
// One neighbor list per frame serves all three sweeps: the ±h·v̂
// displacements move every atom by at most h, so a skin of a few h keeps
// the candidate lists valid at the perturbed coordinates.
func (m *Model) accumulateBatchGrad(ws *batchScratch, types []int, frames []*dataset.Frame, pe, pf, h float64, fast bool) error {
	B := len(frames)
	n := len(types)
	if fast {
		// Size for the fused ± mega-sweep's 2B virtual frames up front:
		// growing mid-pass would discard the per-frame loss state
		// (ensureLen does not preserve contents across reallocation).
		ws.ensure(m, types, 2*B, fast)
	} else {
		ws.ensure(m, types, B, fast)
	}

	for f, fr := range frames {
		ws.nls[f].Build(fr.Coord, fr.Box, m.Cfg.Descriptor.RCut, 4*h)
		ws.active[f] = true
	}

	// Base sweep: descriptor environments for every slot, then one
	// fitting-net forward batch per species.
	m.forwardSlots(ws, types, frames, false, fast)
	ws.buildRows(types, B)
	m.fitForward(ws, true)

	for f, fr := range frames {
		e := 0.0
		for i := 0; i < n; i++ {
			e += ws.energies[f*n+i]
		}
		if !finite(e) {
			return ErrDiverged
		}
		ws.ePred[f] = e
		ws.dE[f] = e - fr.Energy
	}

	// Forces: batched fitting input gradients, then the geometry backward
	// per slot.  Paper mode accumulates into per-slot private buffers and
	// folds them per atom (center first, then neighbors ascending),
	// reproducing the scalar path's reduction order exactly.
	m.fitInputGrad(ws)
	for f := range frames {
		forces := ws.forces[f]
		for k := range forces {
			forces[k] = 0
		}
	}
	if fast {
		m.Desc.BackwardEnvBatchGeometry(&ws.eb, ws.envList,
			func(vi int) []float64 { return ws.dEdD[ws.slots[vi]] },
			func(vi int) []float64 { return ws.forces[ws.slots[vi]/n] })
	} else {
		for f := range frames {
			forces := ws.forces[f]
			for i := 0; i < n; i++ {
				slot := f*n + i
				dc := ws.dc[slot]
				m.Desc.Backward(ws.envs[slot], ws.dEdD[slot], dc, false)
				foldDcoord(ws.envs[slot], dc, forces)
			}
		}
	}
	for f, fr := range frames {
		// forces currently holds +∂E/∂x; F_pred = −∂E/∂x, so the residual
		// v = F_pred − F_ref reads −forces − F_ref (negation is exact).
		forces := ws.forces[f]
		vn := 0.0
		v := ws.v[f]
		for k := range v {
			v[k] = -forces[k] - fr.Force[k]
			vn += v[k] * v[k]
		}
		ws.vnorm[f] = math.Sqrt(vn)
	}

	// Base parameter pass, reusing the environments and tapes of the base
	// sweep: dy row = 2·p_e·ΔE/N² of the row's frame.
	m.fitBackward(ws, n, func(f int) float64 { return 2 * pe * ws.dE[f] / float64(n*n) })
	m.embedBackward(ws, B, n, fast)

	// ±h·v̂ sweeps over frames with a nonzero force residual.  A frame
	// whose forces are already exact contributes no force gradient — the
	// scalar path's early return.
	any := false
	for f := range frames {
		if ws.vnorm[f] < 1e-14 {
			ws.active[f] = false
			continue
		}
		any = true
		ws.scaleF[f] = -(2 * pf / float64(3*n)) * ws.vnorm[f] / (2 * h)
	}
	if !any {
		return nil
	}
	if fast {
		// Fused ± mega-sweep: one virtual batch of 2B frames — frame f
		// displaced +h·v̂ as virtual frame f and −h·v̂ as B+f — so the
		// embedding and fitting networks see one fused pass with twice
		// the rows instead of two half-size passes.
		ws.vframes = append(ws.vframes[:0], frames...)
		ws.vframes = append(ws.vframes, frames...)
		for f, fr := range frames {
			ws.active[B+f] = ws.active[f]
			ws.nls[B+f] = ws.nls[f]
			if !ws.active[f] {
				continue
			}
			pos, neg, v, vn := ws.pos[f], ws.pos[B+f], ws.v[f], ws.vnorm[f]
			for k := range pos {
				d := h * v[k] / vn
				pos[k] = fr.Coord[k] + d
				neg[k] = fr.Coord[k] - d
			}
		}
		m.forwardSlots(ws, types, ws.vframes, true, true)
		ws.buildRows(types, 2*B)
		m.fitForward(ws, false)
		m.fitBackward(ws, n, func(f int) float64 {
			if f < B {
				return ws.scaleF[f]
			}
			return -ws.scaleF[f-B]
		})
		m.embedBackward(ws, 2*B, n, true)
		return nil
	}
	for _, sign := range [2]float64{1, -1} {
		for f, fr := range frames {
			if !ws.active[f] {
				continue
			}
			pos, v, vn := ws.pos[f], ws.v[f], ws.vnorm[f]
			sh := sign * h
			for k := range pos {
				pos[k] = fr.Coord[k] + sh*v[k]/vn
			}
		}
		m.forwardSlots(ws, types, frames, true, fast)
		ws.buildRows(types, B)
		m.fitForward(ws, false)
		m.fitBackward(ws, n, func(f int) float64 { return sign * ws.scaleF[f] })
		m.embedBackward(ws, B, n, fast)
	}
	return nil
}

// forwardSlots evaluates the descriptor environment of every active slot,
// at the frames' own coordinates or (displaced=true) at ws.pos.  Slots
// are independent, so the worker pool affects wall time only.  In fast
// mode the per-slot work is only the neighbourhood scan; the embedding
// networks then run once per net over every slot (fused), instead of
// once per slot per net.
func (m *Model) forwardSlots(ws *batchScratch, types []int, frames []*dataset.Frame, displaced, fast bool) {
	n := len(types)
	ws.slots = ws.slots[:0]
	for f := range frames {
		if !ws.active[f] {
			continue
		}
		for i := 0; i < n; i++ {
			ws.slots = append(ws.slots, f*n+i)
		}
	}
	coordOf := func(f int) []float64 {
		if displaced {
			return ws.pos[f]
		}
		return frames[f].Coord
	}
	fw := m.Desc.ForwardEnv
	if fast {
		fw = m.Desc.ScanEnv
	}
	threads := m.threads
	if threads > len(ws.slots) {
		threads = len(ws.slots)
	}
	if threads <= 1 {
		for _, slot := range ws.slots {
			f, i := slot/n, slot%n
			ws.envs[slot] = fw(ws.envs[slot], coordOf(f), types, frames[f].Box, i, ws.nls[f].Candidates(i))
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := int(atomic.AddInt64(&next, 1)) - 1
					if k >= len(ws.slots) {
						return
					}
					slot := ws.slots[k]
					f, i := slot/n, slot%n
					ws.envs[slot] = fw(ws.envs[slot], coordOf(f), types, frames[f].Box, i, ws.nls[f].Candidates(i))
				}
			}()
		}
		wg.Wait()
	}
	if fast {
		ws.envList = ws.envList[:0]
		for _, slot := range ws.slots {
			ws.envList = append(ws.envList, ws.envs[slot])
		}
		m.Desc.ForwardEnvBatch(&ws.eb, ws.envList)
	}
}

// buildRows groups the active slots by species in slot (frame-major,
// atom-ascending) order — the row layout of every batched fitting pass.
func (ws *batchScratch) buildRows(types []int, B int) {
	n := len(types)
	for t := range ws.rows {
		ws.rows[t] = ws.rows[t][:0]
	}
	for f := 0; f < B; f++ {
		if !ws.active[f] {
			continue
		}
		for i := 0; i < n; i++ {
			t := types[i]
			ws.rows[t] = append(ws.rows[t], f*n+i)
		}
	}
}

// fitForward runs one batched fitting forward per species over the
// current rows, recording tapes for the backward passes.  withEnergy
// additionally writes biased atomic energies into ws.energies.
func (m *Model) fitForward(ws *batchScratch, withEnergy bool) {
	outDim := m.Cfg.Descriptor.OutDim()
	for t, rows := range ws.rows {
		if len(rows) == 0 {
			continue
		}
		if ws.ftTape[t] == nil {
			ws.ftTape[t] = &nn.BatchTape{}
		}
		ws.ftIn[t] = ensureLen(ws.ftIn[t], len(rows)*outDim)
		in := ws.ftIn[t]
		for r, slot := range rows {
			copy(in[r*outDim:(r+1)*outDim], ws.envs[slot].Out())
		}
		out := m.Fit[t].ForwardBatch(ws.ftTape[t], in, len(rows))
		if withEnergy {
			for r, slot := range rows {
				ws.energies[slot] = out[r] + m.Bias[t]
			}
		}
	}
}

// fitInputGrad computes dE/dD for every row (dy = 1) without touching
// parameter accumulators, leaving per-slot views in ws.dEdD.  The views
// alias tape buffers: consume them before the next batched fitting pass.
func (m *Model) fitInputGrad(ws *batchScratch) {
	outDim := m.Cfg.Descriptor.OutDim()
	for t, rows := range ws.rows {
		if len(rows) == 0 {
			continue
		}
		ws.ftDy[t] = ensureLen(ws.ftDy[t], len(rows))
		dy := ws.ftDy[t]
		for r := range dy {
			dy[r] = 1
		}
		dx := m.Fit[t].InputGradBatch(ws.ftTape[t], dy, len(rows))
		for r, slot := range rows {
			ws.dEdD[slot] = dx[r*outDim : (r+1)*outDim]
		}
	}
}

// fitBackward runs one batched fitting backward per species with
// dy row = scaleOf(row's frame), accumulating parameter gradients
// directly into m.Fit and leaving scaled dL/dD views in ws.dEdD.  Rows
// ascend in atom order, so the accumulation is bit-identical to the
// scalar path's per-atom shard merges.
func (m *Model) fitBackward(ws *batchScratch, n int, scaleOf func(f int) float64) {
	outDim := m.Cfg.Descriptor.OutDim()
	for t, rows := range ws.rows {
		if len(rows) == 0 {
			continue
		}
		ws.ftDy[t] = ensureLen(ws.ftDy[t], len(rows))
		dy := ws.ftDy[t]
		for r, slot := range rows {
			dy[r] = scaleOf(slot / n)
		}
		dx := m.Fit[t].BackwardBatch(ws.ftTape[t], dy, len(rows))
		for r, slot := range rows {
			ws.dEdD[slot] = dx[r*outDim : (r+1)*outDim]
		}
	}
}

// embedBackward propagates the slots' dL/dD into the embedding-network
// parameter accumulators.  Paper mode shards each atom through ws.sdesc
// and merges per atom in ascending order (the scalar path's reduction
// order); fast mode runs one fused backward per embedding network
// spanning every active slot.
func (m *Model) embedBackward(ws *batchScratch, B, n int, fast bool) {
	if fast {
		m.Desc.BackwardEnvBatchParams(&ws.eb, ws.envList,
			func(vi int) []float64 { return ws.dEdD[ws.slots[vi]] })
		return
	}
	for f := 0; f < B; f++ {
		if !ws.active[f] {
			continue
		}
		for i := 0; i < n; i++ {
			slot := f*n + i
			env := ws.envs[slot]
			ws.sdesc.BackwardParams(env, ws.dEdD[slot])
			for _, e := range env.EmbedNets() {
				nn.AddGradsAndReset(m.Desc.Embed[e], ws.sdesc.Embed[e])
			}
		}
	}
}

// foldDcoord folds a slot's private coordinate gradients into dst and
// restores the buffer's all-zeros invariant, in the merge order of the
// scalar path: center coordinates first, then neighbors ascending.
func foldDcoord(env *descriptor.Env, dc, dst []float64) {
	c := env.Center()
	for x := 0; x < 3; x++ {
		dst[3*c+x] += dc[3*c+x]
		dc[3*c+x] = 0
	}
	for _, j := range env.NeighborAtoms() {
		for x := 0; x < 3; x++ {
			dst[3*j+x] += dc[3*j+x]
			dc[3*j+x] = 0
		}
	}
}
