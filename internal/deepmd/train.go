package deepmd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/ddp"
	"repro/internal/nn"
)

// TrainConfig parameterizes a training run; field names follow the
// corresponding DeePMD input.json entries where one exists.
type TrainConfig struct {
	// Steps is numb_steps; the paper trains every candidate for 40 000.
	Steps int
	// BatchSize is frames per worker per step.
	BatchSize int
	// StartLR and StopLR bound the exponential learning-rate decay (genes
	// start_lr and stop_lr).
	StartLR, StopLR float64
	// ScaleByWorker is "linear", "sqrt" or "none" (gene scale_by_worker).
	ScaleByWorker string
	// Workers is the simulated data-parallel width (6 GPUs per Summit
	// node in the paper).
	Workers int
	// Prefactors weight the loss; zero value means PaperPrefactors.
	Prefactors LossPrefactors
	// DispFreq is how often (in steps) validation errors are appended to
	// the learning curve (disp_freq).
	DispFreq int
	// ValFrames caps validation frames per evaluation (0 = all).
	ValFrames int
	// ForceFDh is the step for the central-difference directional
	// derivative used in the force-loss gradient; 0 means 1e-4 Å.
	ForceFDh float64
	// Threads bounds the evaluation worker pool: per-atom parallelism
	// inside gradient accumulation and per-frame parallelism in the
	// validation evaluations.  0 means GOMAXPROCS.  Training output is
	// bit-identical for every value — gradient shards are merged in a
	// fixed order — so Threads trades wall time only.
	Threads int
	// Seed drives batch sampling.
	Seed int64
	// Fast selects the cross-frame fused gradient path: per-species
	// fitting-net batches span every frame of a worker batch and
	// embedding gradients accumulate directly instead of through
	// per-atom shards.  Training stays deterministic for any thread
	// count but follows a relaxed floating-point reduction order, so the
	// learning curve is NOT bit-identical to the default (paper) path;
	// EXPERIMENTS.md quantifies the divergence.
	Fast bool
}

// Validate checks the configuration.
func (c *TrainConfig) Validate() error {
	if c.Steps <= 0 {
		return errors.New("deepmd: Steps must be positive")
	}
	if c.StartLR <= 0 || c.StopLR <= 0 || c.StopLR > c.StartLR {
		return fmt.Errorf("deepmd: need 0 < stop_lr <= start_lr, got %g, %g", c.StopLR, c.StartLR)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return nil
}

// LCurveRecord is one line of the learning curve.
type LCurveRecord struct {
	Step     int
	RmseEVal float64 // eV/atom
	RmseETrn float64
	RmseFVal float64 // eV/Å
	RmseFTrn float64
	LR       float64
}

// TrainResult summarizes a completed training.
type TrainResult struct {
	LCurve []LCurveRecord
	// FinalEnergyRMSE and FinalForceRMSE are the last validation errors —
	// exactly what the EA reads from lcurve.out as fitness (§2.2.4).
	FinalEnergyRMSE float64
	FinalForceRMSE  float64
	StepsRun        int
}

// ErrDiverged is returned when the loss becomes NaN/Inf — the analogue of
// the hyperparameter combinations the paper observed crashing training.
var ErrDiverged = errors.New("deepmd: training diverged (non-finite loss)")

// Train fits the model to the in-memory training set; see TrainSource.
func Train(ctx context.Context, m *Model, train, val *dataset.Dataset, cfg TrainConfig, lcurve io.Writer) (*TrainResult, error) {
	return TrainSource(ctx, m, train, val, cfg, lcurve)
}

// TrainSource fits the model to the training source, evaluating on the
// validation source every DispFreq steps and appending lcurve.out lines
// to lcurve (if non-nil).  The context cancels long runs, standing in
// for the paper's two-hour subprocess limit.
//
// Sources are sampled by index only, so an out-of-core stream.Store and
// an in-memory dataset over the same system directory produce
// bit-identical training.  If the training source implements Prefetcher,
// each step's sample indices are announced one step ahead — the random
// sequence is unchanged (indices are drawn in the same order, just one
// step early) — letting the source overlap shard I/O with compute.
func TrainSource(ctx context.Context, m *Model, train, val FrameSource, cfg TrainConfig, lcurve io.Writer) (*TrainResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, errors.New("deepmd: empty training set")
	}
	if cfg.Prefactors == (LossPrefactors{}) {
		cfg.Prefactors = PaperPrefactors()
	}
	if cfg.DispFreq <= 0 {
		cfg.DispFreq = 100
	}
	h := cfg.ForceFDh
	if h <= 0 {
		h = 1e-4
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	initBias(m, train)
	m.SetThreads(cfg.Threads)
	types := train.AtomTypes()

	sched := nn.ExpDecaySchedule{Start: cfg.StartLR, Stop: cfg.StopLR, TotalSteps: cfg.Steps}
	opt := nn.NewAdam()
	params := m.Params()
	nParams := m.ParamCount()
	grads := make([][]float64, cfg.Workers)
	for w := range grads {
		grads[w] = make([]float64, nParams)
	}
	ws := &batchScratch{}
	batch := make([]*dataset.Frame, cfg.BatchSize)

	// Sampling is drawn one step ahead of consumption: idx holds the
	// current step's frame indices, nextIdx the following step's.  The
	// rng.Intn call sequence is exactly the scalar path's (step-major,
	// worker-major, batch-minor) — drawing early changes when the calls
	// happen, not their order — so seeded runs reproduce historical
	// learning curves byte for byte, with or without a prefetcher.
	prefetcher, _ := train.(Prefetcher)
	idx := make([]int, cfg.Workers*cfg.BatchSize)
	nextIdx := make([]int, cfg.Workers*cfg.BatchSize)
	drawIndices := func(dst []int) {
		for k := range dst {
			dst[k] = rng.Intn(train.Len())
		}
	}
	drawIndices(idx)
	if prefetcher != nil {
		prefetcher.Prefetch(idx)
	}

	// How many training frames each rmse_*_trn evaluation sees: ValFrames
	// capped to the training set, where 0 (like EvalErrors' contract)
	// means all frames.
	trnFrames := cfg.ValFrames
	if trnFrames <= 0 || trnFrames > train.Len() {
		trnFrames = train.Len()
	}

	res := &TrainResult{}
	writeHeader(lcurve)

	for step := 0; step < cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		baseLR := sched.At(step)
		lr := nn.WorkerScale(cfg.ScaleByWorker, baseLR, cfg.Workers)
		pe, pf := cfg.Prefactors.At(baseLR / cfg.StartLR)

		if step+1 < cfg.Steps {
			drawIndices(nextIdx)
			if prefetcher != nil {
				prefetcher.Prefetch(nextIdx)
			}
		}

		// Each simulated worker computes gradients on its own random
		// batch; the replicas are identical, so running them sequentially
		// against the shared parameters is equivalent to synchronized
		// data-parallel training.
		for w := 0; w < cfg.Workers; w++ {
			m.ZeroGrad()
			widx := idx[w*cfg.BatchSize : (w+1)*cfg.BatchSize]
			if cfg.Fast {
				for b, fi := range widx {
					fr, err := train.Frame(fi)
					if err != nil {
						return res, err
					}
					batch[b] = fr
				}
				if err := m.accumulateBatchGrad(ws, types, batch, pe, pf, h, true); err != nil {
					return res, err
				}
			} else {
				for _, fi := range widx {
					fr, err := train.Frame(fi)
					if err != nil {
						return res, err
					}
					batch[0] = fr
					if err := m.accumulateBatchGrad(ws, types, batch[:1], pe, pf, h, false); err != nil {
						return res, err
					}
				}
			}
			if cfg.BatchSize > 1 {
				scaleFlat(m, 1/float64(cfg.BatchSize))
			}
			m.FlatGrad(grads[w])
		}
		idx, nextIdx = nextIdx, idx
		if err := ddp.AllReduceMean(grads); err != nil {
			return res, err
		}
		m.SetFlatGrad(grads[0])
		opt.Step(params, lr)
		res.StepsRun = step + 1

		if (step+1)%cfg.DispFreq == 0 || step == cfg.Steps-1 {
			rec := LCurveRecord{Step: step + 1, LR: lr}
			var err error
			if rec.RmseEVal, rec.RmseFVal, err = EvalErrorsSource(m, val, cfg.ValFrames); err != nil {
				return res, err
			}
			if rec.RmseETrn, rec.RmseFTrn, err = EvalErrorsSource(m, train, trnFrames); err != nil {
				return res, err
			}
			res.LCurve = append(res.LCurve, rec)
			writeRecord(lcurve, rec)
			if !finite(rec.RmseEVal) || !finite(rec.RmseFVal) {
				return res, ErrDiverged
			}
		}
	}
	if n := len(res.LCurve); n > 0 {
		res.FinalEnergyRMSE = res.LCurve[n-1].RmseEVal
		res.FinalForceRMSE = res.LCurve[n-1].RmseFVal
	}
	return res, nil
}

// initBias sets the per-species energy bias so the untrained network
// predicts the training-set mean energy, the same trick DeePMD uses to
// avoid learning a huge constant.
func initBias(m *Model, src FrameSource) {
	natoms := len(src.AtomTypes())
	if src.Len() == 0 || natoms == 0 {
		// An empty source has no frames or no atoms to average over;
		// dividing by the atom count would poison the biases.
		return
	}
	perAtom := src.MeanEnergy() / float64(natoms)
	for t := range m.Bias {
		m.Bias[t] = perAtom
	}
}

// scaleFlat multiplies every gradient accumulator by s.
func scaleFlat(m *Model, s float64) {
	for _, pg := range m.Params() {
		for i := range pg.Grad {
			pg.Grad[i] *= s
		}
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
