package deepmd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/ddp"
	"repro/internal/neighbor"
	"repro/internal/nn"
)

// TrainConfig parameterizes a training run; field names follow the
// corresponding DeePMD input.json entries where one exists.
type TrainConfig struct {
	// Steps is numb_steps; the paper trains every candidate for 40 000.
	Steps int
	// BatchSize is frames per worker per step.
	BatchSize int
	// StartLR and StopLR bound the exponential learning-rate decay (genes
	// start_lr and stop_lr).
	StartLR, StopLR float64
	// ScaleByWorker is "linear", "sqrt" or "none" (gene scale_by_worker).
	ScaleByWorker string
	// Workers is the simulated data-parallel width (6 GPUs per Summit
	// node in the paper).
	Workers int
	// Prefactors weight the loss; zero value means PaperPrefactors.
	Prefactors LossPrefactors
	// DispFreq is how often (in steps) validation errors are appended to
	// the learning curve (disp_freq).
	DispFreq int
	// ValFrames caps validation frames per evaluation (0 = all).
	ValFrames int
	// ForceFDh is the step for the central-difference directional
	// derivative used in the force-loss gradient; 0 means 1e-4 Å.
	ForceFDh float64
	// Threads bounds the evaluation worker pool: per-atom parallelism
	// inside gradient accumulation and per-frame parallelism in the
	// validation evaluations.  0 means GOMAXPROCS.  Training output is
	// bit-identical for every value — gradient shards are merged in a
	// fixed order — so Threads trades wall time only.
	Threads int
	// Seed drives batch sampling.
	Seed int64
}

// Validate checks the configuration.
func (c *TrainConfig) Validate() error {
	if c.Steps <= 0 {
		return errors.New("deepmd: Steps must be positive")
	}
	if c.StartLR <= 0 || c.StopLR <= 0 || c.StopLR > c.StartLR {
		return fmt.Errorf("deepmd: need 0 < stop_lr <= start_lr, got %g, %g", c.StopLR, c.StartLR)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return nil
}

// LCurveRecord is one line of the learning curve.
type LCurveRecord struct {
	Step     int
	RmseEVal float64 // eV/atom
	RmseETrn float64
	RmseFVal float64 // eV/Å
	RmseFTrn float64
	LR       float64
}

// TrainResult summarizes a completed training.
type TrainResult struct {
	LCurve []LCurveRecord
	// FinalEnergyRMSE and FinalForceRMSE are the last validation errors —
	// exactly what the EA reads from lcurve.out as fitness (§2.2.4).
	FinalEnergyRMSE float64
	FinalForceRMSE  float64
	StepsRun        int
}

// ErrDiverged is returned when the loss becomes NaN/Inf — the analogue of
// the hyperparameter combinations the paper observed crashing training.
var ErrDiverged = errors.New("deepmd: training diverged (non-finite loss)")

// Train fits the model to the training set, evaluating on the validation
// set every DispFreq steps and appending lcurve.out lines to lcurve (if
// non-nil).  The context cancels long runs, standing in for the paper's
// two-hour subprocess limit.
func Train(ctx context.Context, m *Model, train, val *dataset.Dataset, cfg TrainConfig, lcurve io.Writer) (*TrainResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, errors.New("deepmd: empty training set")
	}
	if cfg.Prefactors == (LossPrefactors{}) {
		cfg.Prefactors = PaperPrefactors()
	}
	if cfg.DispFreq <= 0 {
		cfg.DispFreq = 100
	}
	h := cfg.ForceFDh
	if h <= 0 {
		h = 1e-4
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	initBias(m, train)
	m.SetThreads(cfg.Threads)

	sched := nn.ExpDecaySchedule{Start: cfg.StartLR, Stop: cfg.StopLR, TotalSteps: cfg.Steps}
	opt := nn.NewAdam()
	params := m.Params()
	nParams := m.ParamCount()
	grads := make([][]float64, cfg.Workers)
	for w := range grads {
		grads[w] = make([]float64, nParams)
	}
	fs := &frameScratch{}

	// How many training frames each rmse_*_trn evaluation sees: ValFrames
	// capped to the training set, where 0 (like EvalErrors' contract)
	// means all frames.
	trnFrames := cfg.ValFrames
	if trnFrames <= 0 || trnFrames > train.Len() {
		trnFrames = train.Len()
	}

	res := &TrainResult{}
	writeHeader(lcurve)

	for step := 0; step < cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		baseLR := sched.At(step)
		lr := nn.WorkerScale(cfg.ScaleByWorker, baseLR, cfg.Workers)
		pe, pf := cfg.Prefactors.At(baseLR / cfg.StartLR)

		// Each simulated worker computes gradients on its own random
		// batch; the replicas are identical, so running them sequentially
		// against the shared parameters is equivalent to synchronized
		// data-parallel training.
		for w := 0; w < cfg.Workers; w++ {
			m.ZeroGrad()
			for b := 0; b < cfg.BatchSize; b++ {
				fr := &train.Frames[rng.Intn(train.Len())]
				if err := accumulateFrameGrad(m, train.Types, fr, pe, pf, h, fs); err != nil {
					return res, err
				}
			}
			if cfg.BatchSize > 1 {
				scaleFlat(m, 1/float64(cfg.BatchSize))
			}
			m.FlatGrad(grads[w])
		}
		if err := ddp.AllReduceMean(grads); err != nil {
			return res, err
		}
		m.SetFlatGrad(grads[0])
		opt.Step(params, lr)
		res.StepsRun = step + 1

		if (step+1)%cfg.DispFreq == 0 || step == cfg.Steps-1 {
			rec := LCurveRecord{Step: step + 1, LR: lr}
			rec.RmseEVal, rec.RmseFVal = EvalErrors(m, val, cfg.ValFrames)
			rec.RmseETrn, rec.RmseFTrn = EvalErrors(m, train, trnFrames)
			res.LCurve = append(res.LCurve, rec)
			writeRecord(lcurve, rec)
			if !finite(rec.RmseEVal) || !finite(rec.RmseFVal) {
				return res, ErrDiverged
			}
		}
	}
	if n := len(res.LCurve); n > 0 {
		res.FinalEnergyRMSE = res.LCurve[n-1].RmseEVal
		res.FinalForceRMSE = res.LCurve[n-1].RmseFVal
	}
	return res, nil
}

// frameScratch holds per-frame training buffers that live for the whole
// run: the shared neighbor list, the force-residual direction v, the
// displaced coordinates, and the predicted-force buffer.  Reusing them
// removes every per-frame allocation from the training hot path.
type frameScratch struct {
	nl     neighbor.List
	v      []float64
	pos    []float64
	forces []float64
}

func (fs *frameScratch) resize(n3 int) {
	if cap(fs.v) < n3 {
		fs.v = make([]float64, n3)
		fs.pos = make([]float64, n3)
		fs.forces = make([]float64, n3)
	}
	fs.v, fs.pos, fs.forces = fs.v[:n3], fs.pos[:n3], fs.forces[:n3]
}

// accumulateFrameGrad adds one frame's loss gradient to the model's
// accumulators.
//
// Energy term: ∂/∂θ [p_e (ΔE/N)²] = (2·p_e·ΔE/N²)·∂E/∂θ.
//
// Force term: with F = −∇ₓE and v = F_pred − F_ref,
// ∂/∂θ [p_f/(3N)·‖v‖²] = −(2·p_f/3N)·vᵀ ∂(∇ₓE)/∂θ, and the contraction
// vᵀ∂(∇ₓE)/∂θ is evaluated exactly to O(h²) as the directional central
// difference [∂E/∂θ(x+h·v̂) − ∂E/∂θ(x−h·v̂)]·|v|/(2h) — second-order
// backprop through the descriptor without implementing a second autodiff
// pass (the role TensorFlow's double-gradient plays in DeePMD-kit).
//
// One neighbor list serves all four model evaluations of the frame: the
// ±h·v̂ displacements move every atom by at most h, so a skin of a few h
// keeps the candidate list valid at the perturbed coordinates.
func accumulateFrameGrad(m *Model, types []int, fr *dataset.Frame, pe, pf, h float64, fs *frameScratch) error {
	n := len(types)
	fs.resize(len(fr.Coord))
	fs.nl.Build(fr.Coord, fr.Box, m.Cfg.Descriptor.RCut, 4*h)

	ePred := m.EnergyForcesNL(&fs.nl, fr.Coord, types, fr.Box, fs.forces)
	fPred := fs.forces
	if !finite(ePred) {
		return ErrDiverged
	}
	dE := ePred - fr.Energy

	// Energy-loss gradient.
	m.AccumulateEnergyGradNL(&fs.nl, fr.Coord, types, fr.Box, 2*pe*dE/float64(n*n))

	// Force-loss gradient via directional central difference.
	var vnorm float64
	v := fs.v
	for k := range v {
		v[k] = fPred[k] - fr.Force[k]
		vnorm += v[k] * v[k]
	}
	vnorm = math.Sqrt(vnorm)
	if vnorm < 1e-14 {
		return nil // forces already exact; no gradient contribution
	}
	pos := fs.pos
	scale := -(2 * pf / float64(3*n)) * vnorm / (2 * h)
	for k := range pos {
		pos[k] = fr.Coord[k] + h*v[k]/vnorm
	}
	m.AccumulateEnergyGradNL(&fs.nl, pos, types, fr.Box, scale)
	for k := range pos {
		pos[k] = fr.Coord[k] - h*v[k]/vnorm
	}
	m.AccumulateEnergyGradNL(&fs.nl, pos, types, fr.Box, -scale)
	return nil
}

// initBias sets the per-species energy bias so the untrained network
// predicts the training-set mean energy, the same trick DeePMD uses to
// avoid learning a huge constant.
func initBias(m *Model, d *dataset.Dataset) {
	if d.Len() == 0 || d.NAtoms() == 0 {
		// A nil or empty-but-nonnil dataset has no frames or no atoms to
		// average over; dividing by NAtoms() would poison the biases.
		return
	}
	mean := 0.0
	for _, f := range d.Frames {
		mean += f.Energy
	}
	mean /= float64(d.Len())
	perAtom := mean / float64(d.NAtoms())
	for t := range m.Bias {
		m.Bias[t] = perAtom
	}
}

// scaleFlat multiplies every gradient accumulator by s.
func scaleFlat(m *Model, s float64) {
	for _, pg := range m.Params() {
		for i := range pg.Grad {
			pg.Grad[i] *= s
		}
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
