package deepmd

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/md"
)

// Ensemble is a committee of independently initialized deep-potential
// models.  The spread of their force predictions ("model deviation") is
// the standard uncertainty signal driving active-learning data selection
// in the DeePMD ecosystem (DP-GEN; cf. the on-the-fly force-field
// generation of the paper's ref. [18]).
type Ensemble struct {
	Models []*Model
}

// NewEnsemble builds n models with the same architecture but different
// random initializations.
func NewEnsemble(rng *rand.Rand, cfg ModelConfig, n int) (*Ensemble, error) {
	if n < 2 {
		return nil, fmt.Errorf("deepmd: ensemble needs at least 2 models")
	}
	e := &Ensemble{}
	for i := 0; i < n; i++ {
		m, err := NewModel(rand.New(rand.NewSource(rng.Int63())), cfg)
		if err != nil {
			return nil, err
		}
		e.Models = append(e.Models, m)
	}
	return e, nil
}

// TrainAll fits every committee member on the same data with distinct
// sampling seeds.
func (e *Ensemble) TrainAll(ctx context.Context, train, val *dataset.Dataset, cfg TrainConfig) error {
	for i, m := range e.Models {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1000003
		if _, err := Train(ctx, m, train, val, c, nil); err != nil {
			return fmt.Errorf("deepmd: ensemble member %d: %w", i, err)
		}
	}
	return nil
}

// Predict returns the committee-mean energy and forces plus the maximum
// per-atom force deviation: max_i sqrt(mean_m |F_m(i) − F̄(i)|²), DP-GEN's
// selection criterion.
func (e *Ensemble) Predict(coord []float64, types []int, box float64) (energy float64, forces []float64, maxDev float64) {
	nm := len(e.Models)
	n3 := 3 * len(types)
	all := make([][]float64, nm)
	for m, model := range e.Models {
		em, fm := model.EnergyForces(coord, types, box)
		energy += em / float64(nm)
		all[m] = fm
	}
	forces = make([]float64, n3)
	for k := 0; k < n3; k++ {
		for m := 0; m < nm; m++ {
			forces[k] += all[m][k] / float64(nm)
		}
	}
	for atom := 0; atom < len(types); atom++ {
		dev := 0.0
		for m := 0; m < nm; m++ {
			for k := 0; k < 3; k++ {
				d := all[m][3*atom+k] - forces[3*atom+k]
				dev += d * d
			}
		}
		dev = math.Sqrt(dev / float64(nm))
		if dev > maxDev {
			maxDev = dev
		}
	}
	return energy, forces, maxDev
}

// EnsemblePotential drives MD with the committee-mean force while
// recording the model deviation of every visited configuration — the
// exploration step of an active-learning round.
type EnsemblePotential struct {
	Ensemble *Ensemble
	// LastDeviation is the max force deviation of the most recent
	// Compute call.
	LastDeviation float64
	types         []int
	coord         []float64
}

// Cutoff implements md.Potential.
func (p *EnsemblePotential) Cutoff() float64 {
	return p.Ensemble.Models[0].Cfg.Descriptor.RCut
}

// Compute implements md.Potential.
func (p *EnsemblePotential) Compute(sys *md.System) {
	n := sys.N()
	if len(p.types) != n {
		p.types = make([]int, n)
		for i, s := range sys.Species {
			p.types[i] = int(s)
		}
		p.coord = make([]float64, 3*n)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			p.coord[3*i+k] = sys.Pos[i][k]
		}
	}
	energy, forces, dev := p.Ensemble.Predict(p.coord, p.types, sys.Box)
	p.LastDeviation = dev
	sys.PotEng = energy
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			sys.Frc[i][k] = forces[3*i+k]
		}
	}
}
