package deepmd

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/descriptor"
	"repro/internal/md"
	"repro/internal/nn"
)

func tinyModelConfig() ModelConfig {
	return ModelConfig{
		Descriptor: descriptor.Config{
			RCut: 4.0, RCutSmth: 1.0,
			EmbeddingSizes: []int{4, 8},
			AxisNeurons:    2,
			Activation:     nn.Tanh,
			NumSpecies:     3,
			NeighborNorm:   6,
		},
		FittingSizes:      []int{10},
		FittingActivation: nn.Tanh,
		NumSpecies:        3,
	}
}

func tinyData(t *testing.T, frames int) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	species := []md.Species{md.Al, md.Cl, md.Cl, md.Cl, md.K, md.Cl}
	pot := md.NewPaperBMH(4.0)
	d := dataset.Generate(rng, species, 7.0, 498, pot, 0.5, 100, 10, frames)
	return d
}

func TestModelForcesMatchFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewModel(rng, tinyModelConfig())
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	d := tinyData(t, 1)
	fr := &d.Frames[0]

	_, forces := m.EnergyForces(fr.Coord, d.Types, fr.Box)
	const h = 1e-5
	coord := append([]float64(nil), fr.Coord...)
	for k := 0; k < len(coord); k += 4 {
		orig := coord[k]
		coord[k] = orig + h
		ep := m.Energy(coord, d.Types, fr.Box)
		coord[k] = orig - h
		em := m.Energy(coord, d.Types, fr.Box)
		coord[k] = orig
		fd := -(ep - em) / (2 * h)
		if math.Abs(fd-forces[k]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("force[%d] = %v, finite diff %v", k, forces[k], fd)
		}
	}
}

func TestModelEnergyPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, _ := NewModel(rng, tinyModelConfig())
	d := tinyData(t, 1)
	fr := &d.Frames[0]
	e1 := m.Energy(fr.Coord, d.Types, fr.Box)

	// Swap two same-species atoms (indices 1 and 2 are both Cl).
	coord := append([]float64(nil), fr.Coord...)
	for k := 0; k < 3; k++ {
		coord[3*1+k], coord[3*2+k] = coord[3*2+k], coord[3*1+k]
	}
	e2 := m.Energy(coord, d.Types, fr.Box)
	if math.Abs(e1-e2) > 1e-9 {
		t.Errorf("energy changed under same-species swap: %v vs %v", e1, e2)
	}
}

func TestAccumulateEnergyGradMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := NewModel(rng, tinyModelConfig())
	d := tinyData(t, 1)
	fr := &d.Frames[0]

	m.ZeroGrad()
	m.AccumulateEnergyGrad(fr.Coord, d.Types, fr.Box, 1.0)

	const h = 1e-6
	for pi, pg := range m.Params() {
		for j := 0; j < len(pg.Param); j += 11 {
			orig := pg.Param[j]
			pg.Param[j] = orig + h
			ep := m.Energy(fr.Coord, d.Types, fr.Box)
			pg.Param[j] = orig - h
			em := m.Energy(fr.Coord, d.Types, fr.Box)
			pg.Param[j] = orig
			fd := (ep - em) / (2 * h)
			if math.Abs(fd-pg.Grad[j]) > 1e-4*(1+math.Abs(fd)) {
				t.Errorf("param %d[%d]: grad %v, finite diff %v", pi, j, pg.Grad[j], fd)
			}
		}
	}
}

func TestFlatGradRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, _ := NewModel(rng, tinyModelConfig())
	d := tinyData(t, 1)
	fr := &d.Frames[0]
	m.ZeroGrad()
	m.AccumulateEnergyGrad(fr.Coord, d.Types, fr.Box, 1.0)
	flat := m.FlatGrad(nil)
	if len(flat) != m.ParamCount() {
		t.Fatalf("flat grad length %d, want %d", len(flat), m.ParamCount())
	}
	for i := range flat {
		flat[i] *= 2
	}
	m.SetFlatGrad(flat)
	flat2 := m.FlatGrad(nil)
	for i := range flat {
		if flat2[i] != flat[i] {
			t.Fatal("SetFlatGrad/FlatGrad not inverse")
		}
	}
}

func TestTrainingReducesLosses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _ := NewModel(rng, tinyModelConfig())
	d := tinyData(t, 24)
	d.Shuffle(rand.New(rand.NewSource(6)))
	train, val := d.Split(0.25)

	e0, f0 := EvalErrors(m, val, 0)
	cfg := TrainConfig{
		Steps: 150, BatchSize: 2, StartLR: 0.005, StopLR: 1e-4,
		ScaleByWorker: "none", Workers: 1, DispFreq: 50, Seed: 7,
	}
	var buf bytes.Buffer
	res, err := Train(context.Background(), m, train, val, cfg, &buf)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if res.StepsRun != 150 {
		t.Errorf("StepsRun = %d, want 150", res.StepsRun)
	}
	if res.FinalForceRMSE >= f0 {
		t.Errorf("force RMSE did not improve: %v -> %v", f0, res.FinalForceRMSE)
	}
	if res.FinalEnergyRMSE >= e0 {
		t.Errorf("energy RMSE did not improve: %v -> %v", e0, res.FinalEnergyRMSE)
	}
	if !strings.Contains(buf.String(), "rmse_e_val") {
		t.Error("lcurve output missing header")
	}
	recs, err := ReadLCurve(&buf)
	if err != nil {
		t.Fatalf("ReadLCurve: %v", err)
	}
	if len(recs) != len(res.LCurve) {
		t.Errorf("lcurve rows %d, want %d", len(recs), len(res.LCurve))
	}
	last := recs[len(recs)-1]
	if math.Abs(last.RmseEVal-res.FinalEnergyRMSE) > 1e-6*(1+res.FinalEnergyRMSE) {
		t.Errorf("lcurve last rmse_e_val %v != result %v", last.RmseEVal, res.FinalEnergyRMSE)
	}
}

func TestTrainingWithWorkersMatchesSingle(t *testing.T) {
	// With identical total batch content this can't be bit-identical
	// (different RNG draws), but multi-worker training must run and
	// produce finite, improving losses.
	rng := rand.New(rand.NewSource(8))
	m, _ := NewModel(rng, tinyModelConfig())
	d := tinyData(t, 16)
	train, val := d.Split(0.25)
	cfg := TrainConfig{
		Steps: 60, BatchSize: 1, StartLR: 0.003, StopLR: 1e-4,
		ScaleByWorker: "sqrt", Workers: 3, DispFreq: 30, Seed: 9,
	}
	res, err := Train(context.Background(), m, train, val, cfg, nil)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if !finite(res.FinalForceRMSE) || !finite(res.FinalEnergyRMSE) {
		t.Error("non-finite final losses")
	}
}

func TestTrainingDivergesWithAbsurdLR(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, _ := NewModel(rng, tinyModelConfig())
	d := tinyData(t, 8)
	train, val := d.Split(0.25)
	cfg := TrainConfig{
		Steps: 400, BatchSize: 1, StartLR: 500.0, StopLR: 499.0,
		ScaleByWorker: "linear", Workers: 6, DispFreq: 10, Seed: 11,
	}
	_, err := Train(context.Background(), m, train, val, cfg, nil)
	// Divergence is expected but not guaranteed; if training survives the
	// losses must at least be finite.
	if err != nil && err != ErrDiverged {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestTrainCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, _ := NewModel(rng, tinyModelConfig())
	d := tinyData(t, 8)
	train, val := d.Split(0.25)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := TrainConfig{Steps: 100, StartLR: 0.001, StopLR: 1e-5}
	if _, err := Train(ctx, m, train, val, cfg, nil); err == nil {
		t.Error("cancelled training returned nil error")
	}
}

func TestTrainConfigValidation(t *testing.T) {
	bad := []TrainConfig{
		{Steps: 0, StartLR: 0.01, StopLR: 1e-5},
		{Steps: 10, StartLR: 0, StopLR: 1e-5},
		{Steps: 10, StartLR: 1e-5, StopLR: 0.01}, // stop > start
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := TrainConfig{Steps: 10, StartLR: 0.01, StopLR: 1e-5}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if good.Workers != 1 || good.BatchSize != 1 {
		t.Error("Validate did not default Workers/BatchSize")
	}
}

func TestPrefactorSchedule(t *testing.T) {
	p := PaperPrefactors()
	pe, pf := p.At(1) // start of training
	if math.Abs(pe-0.02) > 1e-12 || math.Abs(pf-1000) > 1e-12 {
		t.Errorf("At(1) = %v, %v; want 0.02, 1000", pe, pf)
	}
	pe, pf = p.At(0) // end of training (lr → 0)
	if math.Abs(pe-1) > 1e-12 || math.Abs(pf-1) > 1e-12 {
		t.Errorf("At(0) = %v, %v; want 1, 1", pe, pf)
	}
	// Force dominates early, energy weight grows monotonically.
	peMid, pfMid := p.At(0.5)
	if pfMid >= 1000 || pfMid <= 1 || peMid >= 1 || peMid <= 0.02 {
		t.Errorf("At(0.5) = %v, %v out of range", peMid, pfMid)
	}
}

func TestFrameErrors(t *testing.T) {
	fr := &dataset.Frame{
		Coord:  make([]float64, 6),
		Force:  []float64{1, 0, 0, 0, 0, 0},
		Energy: 10,
	}
	ePA, fRMSE := FrameErrors(fr, 12, []float64{1, 0, 0, 0, 0, 2})
	if math.Abs(ePA-1) > 1e-12 { // (12-10)/2 atoms
		t.Errorf("ePerAtom = %v, want 1", ePA)
	}
	want := math.Sqrt(4.0 / 6.0)
	if math.Abs(fRMSE-want) > 1e-12 {
		t.Errorf("fRMSE = %v, want %v", fRMSE, want)
	}
}

func TestLCurveRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	writeHeader(&buf)
	recs := []LCurveRecord{
		{Step: 100, RmseEVal: 0.0016, RmseETrn: 0.001, RmseFVal: 0.0357, RmseFTrn: 0.03, LR: 0.001},
		{Step: 200, RmseEVal: 0.0012, RmseETrn: 0.0009, RmseFVal: 0.0351, RmseFTrn: 0.029, LR: 0.0005},
	}
	for _, r := range recs {
		writeRecord(&buf, r)
	}
	got, err := ReadLCurve(&buf)
	if err != nil {
		t.Fatalf("ReadLCurve: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if got[1].Step != 200 || math.Abs(got[1].RmseFVal-0.0351) > 1e-6 {
		t.Errorf("record mismatch: %+v", got[1])
	}
}

func TestReadLCurveRejectsMalformed(t *testing.T) {
	if _, err := ReadLCurve(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("data before header accepted")
	}
	if _, err := ReadLCurve(strings.NewReader("# step lr\n1 2 3\n")); err == nil {
		t.Error("column count mismatch accepted")
	}
	if _, err := ReadLCurve(strings.NewReader("# step lr\nx y\n")); err == nil {
		t.Error("non-numeric value accepted")
	}
}

const sampleInput = `{
  "model": {
    "type_map": ["Al", "K", "Cl"],
    "descriptor": {
      "type": "se_e2_a",
      "rcut": 8.77, "rcut_smth": 2.42,
      "neuron": [25, 50, 100], "axis_neuron": 4,
      "activation_function": "tanh"
    },
    "fitting_net": {"neuron": [240, 240, 240], "activation_function": "softplus"}
  },
  "learning_rate": {"type": "exp", "start_lr": 0.0047, "stop_lr": 0.0001, "scale_by_worker": "none"},
  "loss": {"start_pref_e": 0.02, "limit_pref_e": 1, "start_pref_f": 1000, "limit_pref_f": 1},
  "training": {"numb_steps": 40000, "batch_size": 1, "seed": 1, "disp_freq": 1000,
    "systems": ["../data/train"], "validation_data": {"systems": ["../data/val"]}}
}`

func TestParseInput(t *testing.T) {
	in, err := ParseInput(strings.NewReader(sampleInput))
	if err != nil {
		t.Fatalf("ParseInput: %v", err)
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if in.Model.Descriptor.RCut != 8.77 || in.LearningRate.ScaleByWorker != "none" {
		t.Errorf("parsed values wrong: %+v", in)
	}
	mc, err := in.ModelConfig()
	if err != nil {
		t.Fatalf("ModelConfig: %v", err)
	}
	if mc.Descriptor.M1() != 100 || mc.Descriptor.OutDim() != 400 {
		t.Errorf("descriptor dims: M1=%d OutDim=%d", mc.Descriptor.M1(), mc.Descriptor.OutDim())
	}
	if mc.FittingActivation.Name() != "softplus" {
		t.Errorf("fitting activation %q", mc.FittingActivation.Name())
	}
	tc := in.TrainConfig(6)
	if tc.Steps != 40000 || tc.Workers != 6 || tc.ScaleByWorker != "none" {
		t.Errorf("train config wrong: %+v", tc)
	}
	if tc.Prefactors.StartPrefF != 1000 {
		t.Errorf("prefactors wrong: %+v", tc.Prefactors)
	}
}

func TestInputValidateRejects(t *testing.T) {
	mutate := []func(*Input){
		func(in *Input) { in.Model.Descriptor.RCut = 0 },
		func(in *Input) { in.Model.Descriptor.RCutSmth = 99 },
		func(in *Input) { in.Model.Descriptor.ActivationFunction = "swish" },
		func(in *Input) { in.Model.FittingNet.ActivationFunction = "gelu" },
		func(in *Input) { in.LearningRate.StartLR = -1 },
		func(in *Input) { in.LearningRate.StopLR = 1 },
		func(in *Input) { in.LearningRate.ScaleByWorker = "quadratic" },
		func(in *Input) { in.Training.NumbSteps = 0 },
		func(in *Input) { in.Model.TypeMap = nil },
	}
	for i, mut := range mutate {
		in, err := ParseInput(strings.NewReader(sampleInput))
		if err != nil {
			t.Fatal(err)
		}
		mut(in)
		if err := in.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestEvalErrorsEmptyDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, _ := NewModel(rng, tinyModelConfig())
	empty := &dataset.Dataset{Types: []int{0}}
	e, f := EvalErrors(m, empty, 0)
	if e != 0 || f != 0 {
		t.Errorf("EvalErrors(empty) = %v, %v", e, f)
	}
}

func TestModelConfigValidate(t *testing.T) {
	good := tinyModelConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	c := tinyModelConfig()
	c.FittingSizes = nil
	if err := c.Validate(); err == nil {
		t.Error("empty fitting sizes accepted")
	}
	c = tinyModelConfig()
	c.NumSpecies = 2 // mismatch with descriptor's 3
	if err := c.Validate(); err == nil {
		t.Error("species mismatch accepted")
	}
	c = tinyModelConfig()
	c.FittingActivation = nil
	if err := c.Validate(); err == nil {
		t.Error("nil activation accepted")
	}
}
