package deepmd

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/md"
)

func benchData(b *testing.B, frames int) *dataset.Dataset {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	species := []md.Species{md.Al, md.Cl, md.Cl, md.Cl, md.K, md.Cl}
	pot := md.NewPaperBMH(4.0)
	return dataset.Generate(rng, species, 7.0, 498, pot, 0.5, 50, 5, frames)
}

func BenchmarkEnergyForces(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewModel(rng, tinyModelConfig())
	if err != nil {
		b.Fatal(err)
	}
	d := benchData(b, 1)
	fr := &d.Frames[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EnergyForces(fr.Coord, d.Types, fr.Box)
	}
}

// BenchmarkTrainStepByWorkers measures one optimizer step as the
// simulated data-parallel width grows (1, 2, 6 GPUs).
func BenchmarkTrainStepByWorkers(b *testing.B) {
	d := benchData(b, 8)
	train, val := d.Split(0.25)
	for _, workers := range []int{1, 2, 6} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			m, err := NewModel(rng, tinyModelConfig())
			if err != nil {
				b.Fatal(err)
			}
			cfg := TrainConfig{
				Steps: b.N, BatchSize: 1, StartLR: 0.001, StopLR: 1e-5,
				ScaleByWorker: "sqrt", Workers: workers,
				DispFreq: b.N + 1, // no validation inside the loop
				Seed:     4,
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := Train(context.Background(), m, train, val, cfg, nil); err != nil && err != ErrDiverged {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkTrainStepBatch measures one optimizer step of the whole-frame
// batched gradient path — the paper (bit-exact reduction order) and fast
// (cross-frame fused) modes at growing worker-batch sizes.  Per-frame
// cost is ns/op divided by batch; scripts/bench.sh computes the speedup
// against the previous PR's TrainStepByWorkers/workers=1 baseline.
func BenchmarkTrainStepBatch(b *testing.B) {
	d := benchData(b, 8)
	train, val := d.Split(0.25)
	for _, tc := range []struct {
		name  string
		batch int
		fast  bool
	}{
		{"mode=paper/batch=1", 1, false},
		{"mode=fast/batch=1", 1, true},
		{"mode=fast/batch=2", 2, true},
		{"mode=fast/batch=4", 4, true},
		{"mode=fast/batch=6", 6, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			m, err := NewModel(rng, tinyModelConfig())
			if err != nil {
				b.Fatal(err)
			}
			// StartLR is kept small enough that the run cannot diverge at
			// any b.N: an early ErrDiverged abort would leave the remaining
			// claimed iterations free and understate ns/op.
			cfg := TrainConfig{
				Steps: b.N, BatchSize: tc.batch, StartLR: 1e-4, StopLR: 1e-6,
				ScaleByWorker: "sqrt", Workers: 1, Fast: tc.fast,
				DispFreq: b.N + 1, // no validation inside the loop
				Seed:     4,
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := Train(context.Background(), m, train, val, cfg, nil); err != nil && err != ErrDiverged {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkEvalErrors(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m, _ := NewModel(rng, tinyModelConfig())
	d := benchData(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalErrors(m, d, 0)
	}
}

func BenchmarkParseInput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in, err := ParseInput(strings.NewReader(sampleInput))
		if err != nil {
			b.Fatal(err)
		}
		if err := in.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
