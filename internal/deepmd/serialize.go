package deepmd

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/descriptor"
	"repro/internal/nn"
)

// newZeroRand seeds throwaway weight initialization that LoadModel
// immediately overwrites.
func newZeroRand() *rand.Rand { return rand.New(rand.NewSource(0)) }

// savedModel is the on-disk representation of a trained potential — the
// analogue of DeePMD-kit's frozen model file.  Activations are stored by
// name; weights in Params() order.
type savedModel struct {
	Format   string // "repro-deeppot"
	Version  int
	RCut     float64
	RCutSmth float64
	EmbSizes []int
	AxisN    int
	DescAct  string
	NSpecies int
	NbrNorm  float64
	FitSizes []int
	FitAct   string
	Bias     []float64
	Weights  [][]float64
}

const (
	modelFormat  = "repro-deeppot"
	modelVersion = 1
)

// Save serializes the trained model (configuration, biases and weights) —
// the `dp freeze` step of the DeePMD workflow.
func (m *Model) Save(w io.Writer) error {
	sm := savedModel{
		Format:   modelFormat,
		Version:  modelVersion,
		RCut:     m.Cfg.Descriptor.RCut,
		RCutSmth: m.Cfg.Descriptor.RCutSmth,
		EmbSizes: m.Cfg.Descriptor.EmbeddingSizes,
		AxisN:    m.Cfg.Descriptor.AxisNeurons,
		DescAct:  m.Cfg.Descriptor.Activation.Name(),
		NSpecies: m.Cfg.NumSpecies,
		NbrNorm:  m.Cfg.Descriptor.NeighborNorm,
		FitSizes: m.Cfg.FittingSizes,
		FitAct:   m.Cfg.FittingActivation.Name(),
		Bias:     m.Bias,
	}
	for _, pg := range m.Params() {
		sm.Weights = append(sm.Weights, pg.Param)
	}
	return gob.NewEncoder(w).Encode(&sm)
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel reconstructs a model saved with Save; predictions are
// bit-identical to the original.
func LoadModel(r io.Reader) (*Model, error) {
	var sm savedModel
	if err := gob.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("deepmd: decoding model: %w", err)
	}
	if sm.Format != modelFormat {
		return nil, fmt.Errorf("deepmd: not a frozen model (format %q)", sm.Format)
	}
	if sm.Version != modelVersion {
		return nil, fmt.Errorf("deepmd: unsupported model version %d", sm.Version)
	}
	descAct, err := nn.ActivationByName(sm.DescAct)
	if err != nil {
		return nil, err
	}
	fitAct, err := nn.ActivationByName(sm.FitAct)
	if err != nil {
		return nil, err
	}
	cfg := ModelConfig{
		Descriptor: descriptor.Config{
			RCut: sm.RCut, RCutSmth: sm.RCutSmth,
			EmbeddingSizes: sm.EmbSizes, AxisNeurons: sm.AxisN,
			Activation: descAct, NumSpecies: sm.NSpecies,
			NeighborNorm: sm.NbrNorm,
		},
		FittingSizes:      sm.FitSizes,
		FittingActivation: fitAct,
		NumSpecies:        sm.NSpecies,
	}
	m, err := NewModel(newZeroRand(), cfg)
	if err != nil {
		return nil, err
	}
	copy(m.Bias, sm.Bias)
	params := m.Params()
	if len(params) != len(sm.Weights) {
		return nil, fmt.Errorf("deepmd: model has %d parameter tensors, file has %d",
			len(params), len(sm.Weights))
	}
	for i, pg := range params {
		if len(pg.Param) != len(sm.Weights[i]) {
			return nil, fmt.Errorf("deepmd: parameter tensor %d has %d values, file has %d",
				i, len(pg.Param), len(sm.Weights[i]))
		}
		copy(pg.Param, sm.Weights[i])
	}
	return m, nil
}

// LoadModelFile reads a frozen model from path.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
