package deepmd

import "repro/internal/dataset"

// FrameSource is the sampling interface behind Train: anything that can
// hand out labeled frames by index over a fixed atom typing.  The two
// implementations are *dataset.Dataset (in-memory, never fails) and
// stream.Store (out-of-core shard reads).  Frames returned by a source
// are treated as immutable and may be shared; Train never writes to
// them.
//
// Keeping sampling behind this interface is what lets the streamed and
// in-memory paths produce bit-identical training: Train consumes the
// same frame indices in the same order either way, and a conforming
// source returns value-identical frames for equal indices.
type FrameSource interface {
	// Len returns the number of frames.
	Len() int
	// AtomTypes returns the per-atom species indices, constant across
	// frames.
	AtomTypes() []int
	// Frame returns frame i (0 <= i < Len).
	Frame(i int) (*dataset.Frame, error)
	// MeanEnergy returns the mean frame energy accumulated in ascending
	// frame order — the bias-initialization statistic.
	MeanEnergy() float64
}

// Prefetcher is optionally implemented by sources that can overlap frame
// I/O with compute.  Train announces each step's sampled indices one
// step ahead; implementations load them in the background and must not
// block.
type Prefetcher interface {
	Prefetch(indices []int)
}
