package deepmd

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dataset/stream"
)

// streamTrainConfig is the shared seed configuration for the streamed
// and fast-path training tests.
func streamTrainConfig() TrainConfig {
	return TrainConfig{
		Steps: 6, BatchSize: 2, StartLR: 1e-3, StopLR: 1e-5,
		Workers: 2, DispFreq: 2, Seed: 9,
	}
}

// TestTrainStreamedBitIdentical is the out-of-core acceptance test:
// training against a stream.Store whose LRU budget holds only a fraction
// of the dataset must produce byte-for-byte the learning curve of the
// same training against the fully materialized dataset — while actually
// evicting (proving the run was out-of-core, not incidentally resident).
func TestTrainStreamedBitIdentical(t *testing.T) {
	d := tinyData(t, 9)
	train, val := d.Split(0.33)
	trainDir, valDir := t.TempDir(), t.TempDir()
	if err := train.Save(trainDir, 2); err != nil {
		t.Fatal(err)
	}
	if err := val.Save(valDir, 2); err != nil {
		t.Fatal(err)
	}

	run := func(tr, vl FrameSource) string {
		m := newTestModel(t, 23)
		var buf bytes.Buffer
		if _, err := TrainSource(context.Background(), m, tr, vl, streamTrainConfig(), &buf); err != nil {
			t.Fatalf("TrainSource: %v", err)
		}
		return buf.String()
	}
	memOut := run(train, val)

	// Budget: two frames of the six-frame training set; prefetch on so the
	// background worker races the training loop (and still changes nothing).
	width := 3 * train.NAtoms()
	ts, err := stream.Open(trainDir, stream.Options{
		CacheBytes: 2 * (int64(16*width) + 64), Prefetch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	vs, err := stream.Open(valDir, stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	if ts.FrameBytes() <= ts.Stats().CacheBudget {
		t.Fatalf("training set %d B fits budget %d B; test would not be out-of-core",
			ts.FrameBytes(), ts.Stats().CacheBudget)
	}

	streamOut := run(ts, vs)
	if memOut != streamOut {
		t.Fatalf("streamed lcurve differs from in-memory:\n--- in-memory ---\n%s--- streamed ---\n%s", memOut, streamOut)
	}
	st := ts.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions: the streamed run was not out-of-core")
	}
	if st.CachedBytes > st.CacheBudget {
		t.Fatalf("CachedBytes %d exceeds budget %d", st.CachedBytes, st.CacheBudget)
	}
}

// TestTrainFastDeterministicAcrossThreads checks the fast path's own
// contract: relaxed reduction order versus the paper path, but still
// bit-identical between repeated runs and across thread counts, with
// multi-frame worker batches fused cross-frame.
func TestTrainFastDeterministicAcrossThreads(t *testing.T) {
	d := tinyData(t, 6)
	train, val := d.Split(0.33)

	run := func(threads int) string {
		m := newTestModel(t, 23)
		var buf bytes.Buffer
		cfg := streamTrainConfig()
		cfg.Fast = true
		cfg.Threads = threads
		if _, err := TrainSource(context.Background(), m, train, val, cfg, &buf); err != nil {
			t.Fatalf("TrainSource(fast, threads=%d): %v", threads, err)
		}
		return buf.String()
	}

	out1 := run(1)
	if again := run(1); again != out1 {
		t.Fatal("fast path is not deterministic across repeated runs")
	}
	if out4 := run(4); out4 != out1 {
		t.Fatal("fast path differs between 1 and 4 threads")
	}
}

// TestTrainFastTracksPaperPath bounds the fast path's divergence from
// the bit-exact paper reduction order: same data, same seed, same steps —
// the final validation errors must agree to well within the noise that
// separates one hyperparameter candidate from another.
func TestTrainFastTracksPaperPath(t *testing.T) {
	d := tinyData(t, 6)
	train, val := d.Split(0.33)

	run := func(fast bool) *TrainResult {
		m := newTestModel(t, 23)
		cfg := streamTrainConfig()
		cfg.Fast = fast
		res, err := TrainSource(context.Background(), m, train, val, cfg, nil)
		if err != nil {
			t.Fatalf("TrainSource(fast=%v): %v", fast, err)
		}
		return res
	}
	paper, fast := run(false), run(true)
	if len(paper.LCurve) != len(fast.LCurve) {
		t.Fatalf("lcurve lengths differ: %d vs %d", len(paper.LCurve), len(fast.LCurve))
	}
	relClose := func(a, b, tol float64) bool {
		return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
	}
	for i := range paper.LCurve {
		p, f := paper.LCurve[i], fast.LCurve[i]
		if !relClose(p.RmseEVal, f.RmseEVal, 1e-6) || !relClose(p.RmseFVal, f.RmseFVal, 1e-6) {
			t.Fatalf("record %d: paper (%v, %v) vs fast (%v, %v) beyond reduction-order noise",
				i, p.RmseEVal, p.RmseFVal, f.RmseEVal, f.RmseFVal)
		}
	}
}

// TestEvalErrorsSourcePropagatesReadFailure: a frame source whose read
// fails must surface the error (deterministically, first failed frame in
// frame order) instead of evaluating garbage.
func TestEvalErrorsSourcePropagatesReadFailure(t *testing.T) {
	d := tinyData(t, 4)
	m := newTestModel(t, 23)
	src := &failingSource{Dataset: d, failAt: 2}
	if _, _, err := EvalErrorsSource(m, src, 0); err == nil {
		t.Fatal("EvalErrorsSource swallowed a frame read error")
	}
}

// failingSource wraps a dataset and fails reads of one frame index.
type failingSource struct {
	*dataset.Dataset
	failAt int
}

func (f *failingSource) Frame(i int) (*dataset.Frame, error) {
	if i == f.failAt {
		return nil, errFailingSource
	}
	return f.Dataset.Frame(i)
}

var errFailingSource = errStr("failingSource: injected read failure")

type errStr string

func (e errStr) Error() string { return string(e) }
