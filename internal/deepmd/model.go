// Package deepmd reimplements the DeePMD-kit training pipeline the paper
// tunes (§1, §2.1.2): a DeepPot-SE descriptor feeding per-species fitting
// networks whose summed atomic energies give the total energy, with forces
// obtained as the exact negative gradient of the predicted energy with
// respect to coordinates.  Training minimizes the DeePMD weighted
// energy+force loss with learning-rate-coupled prefactors, supports the
// three worker learning-rate scaling schemes, and emits an `lcurve.out`
// whose last rmse_e_val / rmse_f_val values are the EA's two fitness
// objectives (§2.2.4).
package deepmd

import (
	"fmt"
	"math/rand"

	"repro/internal/descriptor"
	"repro/internal/nn"
)

// ModelConfig describes a Deep Potential model.
type ModelConfig struct {
	// Descriptor is the DeepPot-SE configuration (rcut, rcut_smth,
	// embedding {25,50,100}, descriptor activation).
	Descriptor descriptor.Config
	// FittingSizes are the fitting-network hidden sizes; the paper fixes
	// {240, 240, 240}.
	FittingSizes []int
	// FittingActivation is the fitting-network activation (gene
	// fitting_activ_func).
	FittingActivation nn.Activation
	// NumSpecies is the number of atom types (3: Al, K, Cl).
	NumSpecies int
}

// Validate checks the configuration.
func (c *ModelConfig) Validate() error {
	if err := c.Descriptor.Validate(); err != nil {
		return err
	}
	if len(c.FittingSizes) == 0 {
		return fmt.Errorf("deepmd: FittingSizes empty")
	}
	if c.NumSpecies <= 0 || c.NumSpecies != c.Descriptor.NumSpecies {
		return fmt.Errorf("deepmd: NumSpecies %d inconsistent with descriptor %d",
			c.NumSpecies, c.Descriptor.NumSpecies)
	}
	if c.FittingActivation == nil {
		return fmt.Errorf("deepmd: FittingActivation required")
	}
	return nil
}

// Model is a trained or trainable Deep Potential.
type Model struct {
	Cfg  ModelConfig
	Desc *descriptor.Descriptor
	// Fit[t] maps the descriptor of an atom of species t to its atomic
	// energy contribution.
	Fit []*nn.MLP
	// Bias[t] is a constant atomic-energy offset per species, initialized
	// from the training-set mean so the networks only learn residuals.
	Bias []float64
}

// NewModel builds a model with randomly initialized networks.
func NewModel(rng *rand.Rand, cfg ModelConfig) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	desc, err := descriptor.New(rng, cfg.Descriptor)
	if err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg, Desc: desc, Bias: make([]float64, cfg.NumSpecies)}
	for t := 0; t < cfg.NumSpecies; t++ {
		m.Fit = append(m.Fit, nn.NewMLP(rng, cfg.Descriptor.OutDim(), cfg.FittingSizes, 1, cfg.FittingActivation))
	}
	return m, nil
}

// Energy returns the predicted total energy of a configuration.
func (m *Model) Energy(coord []float64, types []int, box float64) float64 {
	e := 0.0
	for i := range types {
		env := m.Desc.Forward(coord, types, box, i)
		out, _ := m.Fit[types[i]].Forward(env.Out())
		e += out[0] + m.Bias[types[i]]
	}
	return e
}

// EnergyForces returns the predicted total energy and per-coordinate
// forces F = −∂E/∂x (flat, atom-major xyz).
func (m *Model) EnergyForces(coord []float64, types []int, box float64) (energy float64, forces []float64) {
	n := len(types)
	dcoord := make([]float64, 3*n)
	for i := 0; i < n; i++ {
		env := m.Desc.Forward(coord, types, box, i)
		out, tape := m.Fit[types[i]].Forward(env.Out())
		energy += out[0] + m.Bias[types[i]]
		dEdD := m.Fit[types[i]].InputGrad(tape, []float64{1})
		m.Desc.Backward(env, dEdD, dcoord, false)
	}
	forces = make([]float64, 3*n)
	for k := range dcoord {
		forces[k] = -dcoord[k]
	}
	return energy, forces
}

// AccumulateEnergyGrad adds scale·∂E/∂θ to the parameter-gradient
// accumulators for the given configuration and returns the predicted
// energy.  It is the training building block: energy-loss gradients use it
// directly; force-loss gradients use it at coordinate-perturbed
// configurations (see Trainer).
func (m *Model) AccumulateEnergyGrad(coord []float64, types []int, box float64, scale float64) float64 {
	energy := 0.0
	sink := make([]float64, len(coord)) // coordinate grads discarded here
	for i := range types {
		env := m.Desc.Forward(coord, types, box, i)
		out, tape := m.Fit[types[i]].Forward(env.Out())
		energy += out[0] + m.Bias[types[i]]
		dEdD := m.Fit[types[i]].Backward(tape, []float64{scale})
		m.Desc.Backward(env, dEdD, sink, true)
	}
	return energy
}

// Params returns every trainable parameter (descriptor embeddings plus
// fitting networks) for optimizers and data-parallel reduction.
func (m *Model) Params() []nn.ParamGrad {
	out := m.Desc.Params()
	for _, f := range m.Fit {
		out = append(out, f.Params()...)
	}
	return out
}

// ZeroGrad clears all gradient accumulators.
func (m *Model) ZeroGrad() {
	m.Desc.ZeroGrad()
	for _, f := range m.Fit {
		f.ZeroGrad()
	}
}

// ParamCount returns the total number of trainable parameters.
func (m *Model) ParamCount() int {
	n := m.Desc.ParamCount()
	for _, f := range m.Fit {
		n += f.ParamCount()
	}
	return n
}

// FlatGrad copies all gradient accumulators into a single vector.
func (m *Model) FlatGrad(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.ParamCount())
	}
	k := 0
	for _, pg := range m.Params() {
		k += copy(dst[k:], pg.Grad)
	}
	return dst
}

// SetFlatGrad overwrites the gradient accumulators from a flat vector.
func (m *Model) SetFlatGrad(src []float64) {
	k := 0
	for _, pg := range m.Params() {
		k += copy(pg.Grad, src[k:k+len(pg.Grad)])
	}
}
