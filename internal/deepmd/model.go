// Package deepmd reimplements the DeePMD-kit training pipeline the paper
// tunes (§1, §2.1.2): a DeepPot-SE descriptor feeding per-species fitting
// networks whose summed atomic energies give the total energy, with forces
// obtained as the exact negative gradient of the predicted energy with
// respect to coordinates.  Training minimizes the DeePMD weighted
// energy+force loss with learning-rate-coupled prefactors, supports the
// three worker learning-rate scaling schemes, and emits an `lcurve.out`
// whose last rmse_e_val / rmse_f_val values are the EA's two fitness
// objectives (§2.2.4).
package deepmd

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/descriptor"
	"repro/internal/neighbor"
	"repro/internal/nn"
)

// ModelConfig describes a Deep Potential model.
type ModelConfig struct {
	// Descriptor is the DeepPot-SE configuration (rcut, rcut_smth,
	// embedding {25,50,100}, descriptor activation).
	Descriptor descriptor.Config
	// FittingSizes are the fitting-network hidden sizes; the paper fixes
	// {240, 240, 240}.
	FittingSizes []int
	// FittingActivation is the fitting-network activation (gene
	// fitting_activ_func).
	FittingActivation nn.Activation
	// NumSpecies is the number of atom types (3: Al, K, Cl).
	NumSpecies int
}

// Validate checks the configuration.
func (c *ModelConfig) Validate() error {
	if err := c.Descriptor.Validate(); err != nil {
		return err
	}
	if len(c.FittingSizes) == 0 {
		return fmt.Errorf("deepmd: FittingSizes empty")
	}
	if c.NumSpecies <= 0 || c.NumSpecies != c.Descriptor.NumSpecies {
		return fmt.Errorf("deepmd: NumSpecies %d inconsistent with descriptor %d",
			c.NumSpecies, c.Descriptor.NumSpecies)
	}
	if c.FittingActivation == nil {
		return fmt.Errorf("deepmd: FittingActivation required")
	}
	return nil
}

// Model is a trained or trainable Deep Potential.
type Model struct {
	Cfg  ModelConfig
	Desc *descriptor.Descriptor
	// Fit[t] maps the descriptor of an atom of species t to its atomic
	// energy contribution.
	Fit []*nn.MLP
	// Bias[t] is a constant atomic-energy offset per species, initialized
	// from the training-set mean so the networks only learn residuals.
	Bias []float64

	// threads bounds the per-atom worker pool (and EvalErrors' frame
	// pool).  Results are bit-identical for every value: per-atom
	// contributions are always merged in atom-index order.
	threads int
	// params caches the Params() view, built once at construction.
	params []nn.ParamGrad
	// scratch pools per-worker evaluation state (environments, tapes,
	// shadow gradient shards, neighbor lists).
	scratch sync.Pool
}

// NewModel builds a model with randomly initialized networks.
func NewModel(rng *rand.Rand, cfg ModelConfig) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	desc, err := descriptor.New(rng, cfg.Descriptor)
	if err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg, Desc: desc, Bias: make([]float64, cfg.NumSpecies)}
	for t := 0; t < cfg.NumSpecies; t++ {
		m.Fit = append(m.Fit, nn.NewMLP(rng, cfg.Descriptor.OutDim(), cfg.FittingSizes, 1, cfg.FittingActivation))
	}
	m.threads = runtime.GOMAXPROCS(0)
	m.params = m.buildParams()
	m.scratch.New = func() any { return &evalScratch{} }
	return m, nil
}

// SetThreads bounds the worker pool used inside EnergyForces /
// AccumulateEnergyGrad (per-atom parallelism) and EvalErrors (per-frame
// parallelism).  n <= 0 restores the default, GOMAXPROCS.  Predictions
// and gradients are bit-identical for every setting; only wall time
// changes.  Not safe to call concurrently with evaluations.
func (m *Model) SetThreads(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	m.threads = n
}

// Threads reports the current worker-pool bound.
func (m *Model) Threads() int { return m.threads }

// evalScratch is the reusable per-worker state of one in-flight atom (or,
// in EvalErrors, one in-flight frame).  Buffers are either overwritten on
// use or zeroed after merging, so pooled reuse never affects results.
type evalScratch struct {
	env     *descriptor.Env
	fitTape *nn.Tape
	dy      [1]float64
	energy  float64

	// dcoord receives coordinate gradients for the scratch's current
	// atom.  Invariant outside a compute/merge pair: all zeros.
	dcoord []float64

	// Shadow gradient shards, created lazily for training-mode calls.
	sdesc *descriptor.Descriptor
	sfit  []*nn.MLP

	// Frame-level scratch for EvalErrors / public wrappers.
	nl     neighbor.List
	forces []float64
}

func (m *Model) getScratch(n3 int) *evalScratch {
	s := m.scratch.Get().(*evalScratch)
	if len(s.dcoord) != n3 {
		s.dcoord = make([]float64, n3)
	}
	return s
}

func (m *Model) putScratch(s *evalScratch) { m.scratch.Put(s) }

// ensureShadows makes sure the scratch carries gradient shards matching
// this model's architecture.
func (m *Model) ensureShadows(s *evalScratch) {
	if s.sdesc != nil && len(s.sfit) == len(m.Fit) {
		return
	}
	s.sdesc = m.Desc.ShadowClone()
	s.sfit = make([]*nn.MLP, len(m.Fit))
	for t, f := range m.Fit {
		s.sfit[t] = f.ShadowClone()
	}
}

// evalMode selects what a per-atom evaluation computes.
type evalMode int

const (
	modeEnergy evalMode = iota // energy only
	modeForces                 // energy + coordinate gradients
	modeGrad                   // energy + parameter gradients (training)
)

// computeAtom evaluates atom i into the scratch: descriptor forward,
// fitting forward, and the backward pass the mode calls for.  It touches
// no shared mutable state; gradients land in the scratch's shadow shards
// and s.dcoord.
func (m *Model) computeAtom(s *evalScratch, mode evalMode, coord []float64, types []int, box float64, i int, nl *neighbor.List, scale float64) {
	desc := m.Desc
	fit := m.Fit[types[i]]
	if mode == modeGrad {
		m.ensureShadows(s)
		desc = s.sdesc
		fit = s.sfit[types[i]]
	}
	s.env = desc.ForwardEnv(s.env, coord, types, box, i, nl.Candidates(i))
	if s.fitTape == nil {
		s.fitTape = &nn.Tape{}
	}
	out := fit.ForwardT(s.fitTape, s.env.Out())
	s.energy = out[0] + m.Bias[types[i]]
	switch mode {
	case modeForces:
		s.dy[0] = 1
		dEdD := fit.InputGrad(s.fitTape, s.dy[:])
		desc.Backward(s.env, dEdD, s.dcoord, false)
	case modeGrad:
		s.dy[0] = scale
		dEdD := fit.Backward(s.fitTape, s.dy[:])
		desc.Backward(s.env, dEdD, s.dcoord, true)
	}
}

// mergeAtom folds the scratch's per-atom results into the global
// accumulators and restores the scratch invariants (zeroed dcoord
// entries, zeroed shadow grads).  forEachAtom calls it in strict
// atom-index order, which fixes the floating-point reduction order
// independent of the worker count.
func (m *Model) mergeAtom(s *evalScratch, mode evalMode, t int, energy *float64, dcoord []float64) {
	*energy += s.energy
	if mode == modeEnergy {
		return
	}
	c := s.env.Center()
	nbrs := s.env.NeighborAtoms()
	for k := 0; k < 3; k++ {
		if dcoord != nil {
			dcoord[3*c+k] += s.dcoord[3*c+k]
		}
		s.dcoord[3*c+k] = 0
	}
	for _, j := range nbrs {
		for k := 0; k < 3; k++ {
			if dcoord != nil {
				dcoord[3*j+k] += s.dcoord[3*j+k]
			}
			s.dcoord[3*j+k] = 0
		}
	}
	if mode == modeGrad {
		nn.AddGradsAndReset(m.Fit[t], s.sfit[t])
		for _, e := range s.env.EmbedNets() {
			nn.AddGradsAndReset(m.Desc.Embed[e], s.sdesc.Embed[e])
		}
	}
}

// forEachAtom runs compute for every atom and merge in strict atom order.
// With threads <= 1 (or few atoms) it runs inline; otherwise a bounded
// worker pool computes atoms concurrently while the calling goroutine
// merges results as their turn comes up.  Because merge order is always
// ascending atom index, the arithmetic — and therefore every bit of the
// output — is identical for any worker count.
func (m *Model) forEachAtom(nAtoms, n3 int, compute func(*evalScratch, int), merge func(*evalScratch, int)) {
	threads := m.threads
	if threads > nAtoms {
		threads = nAtoms
	}
	if threads <= 1 {
		s := m.getScratch(n3)
		for i := 0; i < nAtoms; i++ {
			compute(s, i)
			merge(s, i)
		}
		m.putScratch(s)
		return
	}

	nScratch := threads + 1
	free := make(chan *evalScratch, nScratch)
	for j := 0; j < nScratch; j++ {
		free <- m.getScratch(n3)
	}
	type result struct {
		i int
		s *evalScratch
	}
	results := make(chan result, nScratch)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Take a scratch before claiming an index: a worker that
				// owns the next-to-merge atom must never block on the
				// free list, or the pipeline deadlocks.
				s := <-free
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= nAtoms {
					free <- s
					return
				}
				compute(s, i)
				results <- result{i, s}
			}
		}()
	}
	pending := make([]*evalScratch, nAtoms)
	for want := 0; want < nAtoms; {
		r := <-results
		pending[r.i] = r.s
		for want < nAtoms && pending[want] != nil {
			merge(pending[want], want)
			free <- pending[want]
			pending[want] = nil
			want++
		}
	}
	wg.Wait()
	close(free)
	for s := range free {
		m.putScratch(s)
	}
}

// withList builds a skinless neighbor list for the configuration in
// pooled scratch and hands it to fn.
func (m *Model) withList(coord []float64, box float64, fn func(nl *neighbor.List)) {
	s := m.scratch.Get().(*evalScratch)
	s.nl.Build(coord, box, m.Cfg.Descriptor.RCut, 0)
	fn(&s.nl)
	m.scratch.Put(s)
}

// Energy returns the predicted total energy of a configuration.
func (m *Model) Energy(coord []float64, types []int, box float64) (energy float64) {
	m.withList(coord, box, func(nl *neighbor.List) {
		energy = m.EnergyNL(nl, coord, types, box)
	})
	return energy
}

// EnergyNL is Energy against a caller-provided neighbor list (built for
// these coordinates, or for nearby ones within the list's skin).
func (m *Model) EnergyNL(nl *neighbor.List, coord []float64, types []int, box float64) float64 {
	energy := 0.0
	m.forEachAtom(len(types), len(coord),
		func(s *evalScratch, i int) {
			m.computeAtom(s, modeEnergy, coord, types, box, i, nl, 0)
		},
		func(s *evalScratch, i int) {
			m.mergeAtom(s, modeEnergy, types[i], &energy, nil)
		})
	return energy
}

// EnergyForces returns the predicted total energy and per-coordinate
// forces F = −∂E/∂x (flat, atom-major xyz).
func (m *Model) EnergyForces(coord []float64, types []int, box float64) (energy float64, forces []float64) {
	forces = make([]float64, len(coord))
	m.withList(coord, box, func(nl *neighbor.List) {
		energy = m.EnergyForcesNL(nl, coord, types, box, forces)
	})
	return energy, forces
}

// EnergyForcesNL is EnergyForces against a caller-provided neighbor list,
// writing forces into the caller's buffer (len 3N, contents overwritten).
func (m *Model) EnergyForcesNL(nl *neighbor.List, coord []float64, types []int, box float64, forces []float64) (energy float64) {
	for k := range forces {
		forces[k] = 0
	}
	m.forEachAtom(len(types), len(coord),
		func(s *evalScratch, i int) {
			m.computeAtom(s, modeForces, coord, types, box, i, nl, 0)
		},
		func(s *evalScratch, i int) {
			m.mergeAtom(s, modeForces, types[i], &energy, forces)
		})
	for k := range forces {
		forces[k] = -forces[k]
	}
	return energy
}

// AccumulateEnergyGrad adds scale·∂E/∂θ to the parameter-gradient
// accumulators for the given configuration and returns the predicted
// energy.  It is the training building block: energy-loss gradients use it
// directly; force-loss gradients use it at coordinate-perturbed
// configurations (see Trainer).
func (m *Model) AccumulateEnergyGrad(coord []float64, types []int, box float64, scale float64) (energy float64) {
	m.withList(coord, box, func(nl *neighbor.List) {
		energy = m.AccumulateEnergyGradNL(nl, coord, types, box, scale)
	})
	return energy
}

// AccumulateEnergyGradNL is AccumulateEnergyGrad against a caller-provided
// neighbor list; the list's skin must cover any displacement between the
// list's build coordinates and coord.
func (m *Model) AccumulateEnergyGradNL(nl *neighbor.List, coord []float64, types []int, box float64, scale float64) float64 {
	energy := 0.0
	m.forEachAtom(len(types), len(coord),
		func(s *evalScratch, i int) {
			m.computeAtom(s, modeGrad, coord, types, box, i, nl, scale)
		},
		func(s *evalScratch, i int) {
			m.mergeAtom(s, modeGrad, types[i], &energy, nil)
		})
	return energy
}

// evalFrame computes one frame's energy and forces serially on the given
// scratch, reusing the scratch's neighbor list and force buffer.  It is
// the building block EvalErrors parallelizes over frames; the returned
// slice is scratch-owned.
func (m *Model) evalFrame(s *evalScratch, coord []float64, types []int, box float64) (float64, []float64) {
	s.nl.Build(coord, box, m.Cfg.Descriptor.RCut, 0)
	if cap(s.forces) < len(coord) {
		s.forces = make([]float64, len(coord))
	}
	s.forces = s.forces[:len(coord)]
	for k := range s.forces {
		s.forces[k] = 0
	}
	if len(s.dcoord) != len(coord) {
		s.dcoord = make([]float64, len(coord))
	}
	energy := 0.0
	for i := range types {
		m.computeAtom(s, modeForces, coord, types, box, i, &s.nl, 0)
		m.mergeAtom(s, modeForces, types[i], &energy, s.forces)
	}
	for k := range s.forces {
		s.forces[k] = -s.forces[k]
	}
	return energy, s.forces
}

// Params returns every trainable parameter (descriptor embeddings plus
// fitting networks) for optimizers and data-parallel reduction.  The
// result is cached at construction; callers must not append to it.
func (m *Model) Params() []nn.ParamGrad {
	if m.params != nil {
		return m.params
	}
	return m.buildParams()
}

func (m *Model) buildParams() []nn.ParamGrad {
	out := append([]nn.ParamGrad(nil), m.Desc.Params()...)
	for _, f := range m.Fit {
		out = append(out, f.Params()...)
	}
	return out
}

// ZeroGrad clears all gradient accumulators.
func (m *Model) ZeroGrad() {
	m.Desc.ZeroGrad()
	for _, f := range m.Fit {
		f.ZeroGrad()
	}
}

// ParamCount returns the total number of trainable parameters.
func (m *Model) ParamCount() int {
	n := m.Desc.ParamCount()
	for _, f := range m.Fit {
		n += f.ParamCount()
	}
	return n
}

// FlatGrad copies all gradient accumulators into a single vector.
func (m *Model) FlatGrad(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.ParamCount())
	}
	k := 0
	for _, pg := range m.Params() {
		k += copy(dst[k:], pg.Grad)
	}
	return dst
}

// SetFlatGrad overwrites the gradient accumulators from a flat vector.
func (m *Model) SetFlatGrad(src []float64) {
	k := 0
	for _, pg := range m.Params() {
		k += copy(pg.Grad, src[k:k+len(pg.Grad)])
	}
}
