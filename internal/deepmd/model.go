// Package deepmd reimplements the DeePMD-kit training pipeline the paper
// tunes (§1, §2.1.2): a DeepPot-SE descriptor feeding per-species fitting
// networks whose summed atomic energies give the total energy, with forces
// obtained as the exact negative gradient of the predicted energy with
// respect to coordinates.  Training minimizes the DeePMD weighted
// energy+force loss with learning-rate-coupled prefactors, supports the
// three worker learning-rate scaling schemes, and emits an `lcurve.out`
// whose last rmse_e_val / rmse_f_val values are the EA's two fitness
// objectives (§2.2.4).
package deepmd

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/descriptor"
	"repro/internal/neighbor"
	"repro/internal/nn"
)

// ModelConfig describes a Deep Potential model.
type ModelConfig struct {
	// Descriptor is the DeepPot-SE configuration (rcut, rcut_smth,
	// embedding {25,50,100}, descriptor activation).
	Descriptor descriptor.Config
	// FittingSizes are the fitting-network hidden sizes; the paper fixes
	// {240, 240, 240}.
	FittingSizes []int
	// FittingActivation is the fitting-network activation (gene
	// fitting_activ_func).
	FittingActivation nn.Activation
	// NumSpecies is the number of atom types (3: Al, K, Cl).
	NumSpecies int
}

// Validate checks the configuration.
func (c *ModelConfig) Validate() error {
	if err := c.Descriptor.Validate(); err != nil {
		return err
	}
	if len(c.FittingSizes) == 0 {
		return fmt.Errorf("deepmd: FittingSizes empty")
	}
	if c.NumSpecies <= 0 || c.NumSpecies != c.Descriptor.NumSpecies {
		return fmt.Errorf("deepmd: NumSpecies %d inconsistent with descriptor %d",
			c.NumSpecies, c.Descriptor.NumSpecies)
	}
	if c.FittingActivation == nil {
		return fmt.Errorf("deepmd: FittingActivation required")
	}
	return nil
}

// Model is a trained or trainable Deep Potential.
type Model struct {
	Cfg  ModelConfig
	Desc *descriptor.Descriptor
	// Fit[t] maps the descriptor of an atom of species t to its atomic
	// energy contribution.
	Fit []*nn.MLP
	// Bias[t] is a constant atomic-energy offset per species, initialized
	// from the training-set mean so the networks only learn residuals.
	Bias []float64

	// threads bounds the per-atom worker pool (and EvalErrors' frame
	// pool).  Results are bit-identical for every value: per-atom
	// contributions are always merged in atom-index order.
	threads int
	// params caches the Params() view, built once at construction.
	params []nn.ParamGrad
	// scratch pools per-worker evaluation state (environments, tapes,
	// shadow gradient shards, neighbor lists).
	scratch sync.Pool
}

// NewModel builds a model with randomly initialized networks.
func NewModel(rng *rand.Rand, cfg ModelConfig) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	desc, err := descriptor.New(rng, cfg.Descriptor)
	if err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg, Desc: desc, Bias: make([]float64, cfg.NumSpecies)}
	for t := 0; t < cfg.NumSpecies; t++ {
		m.Fit = append(m.Fit, nn.NewMLP(rng, cfg.Descriptor.OutDim(), cfg.FittingSizes, 1, cfg.FittingActivation))
	}
	m.threads = runtime.GOMAXPROCS(0)
	m.params = m.buildParams()
	m.scratch.New = func() any { return &evalScratch{} }
	return m, nil
}

// SetThreads bounds the worker pool used inside EnergyForces /
// AccumulateEnergyGrad (per-atom parallelism) and EvalErrors (per-frame
// parallelism).  n <= 0 restores the default, GOMAXPROCS.  Predictions
// and gradients are bit-identical for every setting; only wall time
// changes.  Not safe to call concurrently with evaluations.
func (m *Model) SetThreads(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	m.threads = n
}

// Threads reports the current worker-pool bound.
func (m *Model) Threads() int { return m.threads }

// evalScratch is the reusable per-worker state of one in-flight atom (or,
// in EvalErrors, one in-flight frame).  Buffers are either overwritten on
// use or zeroed after merging, so pooled reuse never affects results.
type evalScratch struct {
	env     *descriptor.Env
	fitTape *nn.Tape
	dy      [1]float64
	energy  float64

	// dcoord receives coordinate gradients for the scratch's current
	// atom.  Invariant outside a compute/merge pair: all zeros.
	dcoord []float64

	// Shadow gradient shards, created lazily for training-mode calls.
	sdesc *descriptor.Descriptor
	sfit  []*nn.MLP

	// Tiled-evaluation state (computeTile): per-slot environments,
	// energies, and coordinate-gradient buffers, plus fitting-net batch
	// scratch.  Each slot's dcoord buffer shares s.dcoord's invariant:
	// all zeros outside a compute/merge pair.
	envs   []*descriptor.Env
	tileE  []float64
	tileDc [][]float64
	ftTape *nn.BatchTape
	ftIn   []float64
	ftDy   []float64
	ftRows []int

	// Frame-level scratch for EvalErrors / public wrappers.
	nl     neighbor.List
	forces []float64
}

// ensureTile sizes the tiled-evaluation buffers for n atom slots in a
// configuration of n3 coordinates.
func (s *evalScratch) ensureTile(n, n3 int) {
	if len(s.envs) < n {
		s.envs = append(s.envs, make([]*descriptor.Env, n-len(s.envs))...)
	}
	if len(s.tileE) < n {
		s.tileE = append(s.tileE, make([]float64, n-len(s.tileE))...)
	}
	if len(s.tileDc) < n {
		s.tileDc = append(s.tileDc, make([][]float64, n-len(s.tileDc))...)
	}
	for k := 0; k < n; k++ {
		if len(s.tileDc[k]) != n3 {
			s.tileDc[k] = make([]float64, n3)
		}
	}
}

// ensureLen returns buf resized to n, reusing its backing array when the
// capacity allows.
func ensureLen(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func (m *Model) getScratch(n3 int) *evalScratch {
	s := m.scratch.Get().(*evalScratch)
	if len(s.dcoord) != n3 {
		s.dcoord = make([]float64, n3)
	}
	return s
}

func (m *Model) putScratch(s *evalScratch) { m.scratch.Put(s) }

// ensureShadows makes sure the scratch carries gradient shards matching
// this model's architecture.
func (m *Model) ensureShadows(s *evalScratch) {
	if s.sdesc != nil && len(s.sfit) == len(m.Fit) {
		return
	}
	s.sdesc = m.Desc.ShadowClone()
	s.sfit = make([]*nn.MLP, len(m.Fit))
	for t, f := range m.Fit {
		s.sfit[t] = f.ShadowClone()
	}
}

// evalMode selects what a per-atom evaluation computes.
type evalMode int

const (
	modeEnergy evalMode = iota // energy only
	modeForces                 // energy + coordinate gradients
	modeGrad                   // energy + parameter gradients (training)
)

// computeAtom evaluates atom i into the scratch: descriptor forward,
// fitting forward, and the backward pass the mode calls for.  It touches
// no shared mutable state; gradients land in the scratch's shadow shards
// and s.dcoord.  The batched inference paths use computeTile instead;
// this per-atom path remains for modeGrad, whose shard merge is per-atom.
//lint:hot
func (m *Model) computeAtom(s *evalScratch, mode evalMode, coord []float64, types []int, box float64, i int, nl *neighbor.List, scale float64) {
	desc := m.Desc
	fit := m.Fit[types[i]]
	if mode == modeGrad {
		m.ensureShadows(s)
		desc = s.sdesc
		fit = s.sfit[types[i]]
	}
	s.env = desc.ForwardEnv(s.env, coord, types, box, i, nl.Candidates(i))
	if s.fitTape == nil {
		s.fitTape = &nn.Tape{}
	}
	out := fit.ForwardT(s.fitTape, s.env.Out())
	s.energy = out[0] + m.Bias[types[i]]
	switch mode {
	case modeForces:
		s.dy[0] = 1
		dEdD := fit.InputGrad(s.fitTape, s.dy[:])
		desc.Backward(s.env, dEdD, s.dcoord, false)
	case modeGrad:
		s.dy[0] = scale
		dEdD := fit.Backward(s.fitTape, s.dy[:])
		desc.Backward(s.env, dEdD, s.dcoord, true)
	}
}

// fitTile is the atom-tile width of the batched inference paths: energy
// and force evaluation feed up to this many descriptor outputs through
// each fitting network per ForwardBatch/InputGradBatch call.  Training-
// mode gradient accumulation stays per-atom (tile 1) so the per-atom
// shard merge keeps its fixed reduction order.
const fitTile = 16

// tileBounds returns the atom index range [lo, hi) of tile u.
func tileBounds(u, nAtoms int) (lo, hi int) {
	lo = u * fitTile
	hi = lo + fitTile
	if hi > nAtoms {
		hi = nAtoms
	}
	return lo, hi
}

// computeTile evaluates atoms [u·fitTile, …) into the scratch's tile
// slots: per-atom descriptor forwards, then one batched fitting-net
// forward (and, for modeForces, one batched input-gradient pass) per
// species present in the tile.  Every per-atom value is bit-identical to
// computeAtom's: batch rows reduce in the scalar order, and each slot's
// coordinate gradients accumulate into a private buffer exactly as the
// per-atom path did.  mode must be modeEnergy or modeForces.
//lint:hot
func (m *Model) computeTile(s *evalScratch, mode evalMode, coord []float64, types []int, box float64, u int, nl *neighbor.List) {
	lo, hi := tileBounds(u, len(types))
	n := hi - lo
	s.ensureTile(n, len(coord))
	outDim := m.Cfg.Descriptor.OutDim()
	for k := 0; k < n; k++ {
		s.envs[k] = m.Desc.ForwardEnv(s.envs[k], coord, types, box, lo+k, nl.Candidates(lo+k))
	}
	if s.ftTape == nil {
		s.ftTape = &nn.BatchTape{}
	}
	for t := 0; t < m.Cfg.NumSpecies; t++ {
		rows := s.ftRows[:0]
		for k := 0; k < n; k++ {
			if types[lo+k] == t {
				rows = append(rows, k)
			}
		}
		s.ftRows = rows
		if len(rows) == 0 {
			continue
		}
		s.ftIn = ensureLen(s.ftIn, len(rows)*outDim)
		for r, k := range rows {
			copy(s.ftIn[r*outDim:(r+1)*outDim], s.envs[k].Out())
		}
		out := m.Fit[t].ForwardBatch(s.ftTape, s.ftIn, len(rows))
		for r, k := range rows {
			s.tileE[k] = out[r] + m.Bias[t]
		}
		if mode == modeForces {
			s.ftDy = ensureLen(s.ftDy, len(rows))
			for r := range s.ftDy {
				s.ftDy[r] = 1
			}
			dEdD := m.Fit[t].InputGradBatch(s.ftTape, s.ftDy, len(rows))
			for r, k := range rows {
				m.Desc.Backward(s.envs[k], dEdD[r*outDim:(r+1)*outDim], s.tileDc[k], false)
			}
		}
	}
}

// mergeTile folds a computed tile into the global accumulators in strict
// atom order, restoring each slot's zeroed-dcoord invariant.
//lint:hot
func (m *Model) mergeTile(s *evalScratch, mode evalMode, types []int, u int, energy *float64, dcoord []float64) {
	lo, hi := tileBounds(u, len(types))
	for k := 0; k < hi-lo; k++ {
		*energy += s.tileE[k]
		if mode == modeEnergy {
			continue
		}
		env := s.envs[k]
		dc := s.tileDc[k]
		c := env.Center()
		for x := 0; x < 3; x++ {
			if dcoord != nil {
				dcoord[3*c+x] += dc[3*c+x]
			}
			dc[3*c+x] = 0
		}
		for _, j := range env.NeighborAtoms() {
			for x := 0; x < 3; x++ {
				if dcoord != nil {
					dcoord[3*j+x] += dc[3*j+x]
				}
				dc[3*j+x] = 0
			}
		}
	}
}

// mergeAtom folds the scratch's per-atom results into the global
// accumulators and restores the scratch invariants (zeroed dcoord
// entries, zeroed shadow grads).  forEachUnit calls it in strict
// atom-index order, which fixes the floating-point reduction order
// independent of the worker count.
//lint:hot
func (m *Model) mergeAtom(s *evalScratch, mode evalMode, t int, energy *float64, dcoord []float64) {
	*energy += s.energy
	if mode == modeEnergy {
		return
	}
	c := s.env.Center()
	nbrs := s.env.NeighborAtoms()
	for k := 0; k < 3; k++ {
		if dcoord != nil {
			dcoord[3*c+k] += s.dcoord[3*c+k]
		}
		s.dcoord[3*c+k] = 0
	}
	for _, j := range nbrs {
		for k := 0; k < 3; k++ {
			if dcoord != nil {
				dcoord[3*j+k] += s.dcoord[3*j+k]
			}
			s.dcoord[3*j+k] = 0
		}
	}
	if mode == modeGrad {
		nn.AddGradsAndReset(m.Fit[t], s.sfit[t])
		for _, e := range s.env.EmbedNets() {
			nn.AddGradsAndReset(m.Desc.Embed[e], s.sdesc.Embed[e])
		}
	}
}

// forEachUnit runs compute for every work unit (an atom, or a fitTile of
// atoms) and merge in strict unit order.  With threads <= 1 (or few
// units) it runs inline; otherwise a bounded worker pool computes units
// concurrently while the calling goroutine merges results as their turn
// comes up.  Because merge order is always ascending unit index — and
// units cover ascending atom ranges — the arithmetic, and therefore every
// bit of the output, is identical for any worker count.
func (m *Model) forEachUnit(nUnits, n3 int, compute func(*evalScratch, int), merge func(*evalScratch, int)) {
	threads := m.threads
	if threads > nUnits {
		threads = nUnits
	}
	if threads <= 1 {
		s := m.getScratch(n3)
		for i := 0; i < nUnits; i++ {
			compute(s, i)
			merge(s, i)
		}
		m.putScratch(s)
		return
	}

	nScratch := threads + 1
	free := make(chan *evalScratch, nScratch)
	for j := 0; j < nScratch; j++ {
		free <- m.getScratch(n3)
	}
	type result struct {
		i int
		s *evalScratch
	}
	results := make(chan result, nScratch)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Take a scratch before claiming an index: a worker that
				// owns the next-to-merge unit must never block on the
				// free list, or the pipeline deadlocks.
				s := <-free
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= nUnits {
					free <- s
					return
				}
				compute(s, i)
				results <- result{i, s}
			}
		}()
	}
	pending := make([]*evalScratch, nUnits)
	for want := 0; want < nUnits; {
		r := <-results
		pending[r.i] = r.s
		for want < nUnits && pending[want] != nil {
			merge(pending[want], want)
			free <- pending[want]
			pending[want] = nil
			want++
		}
	}
	wg.Wait()
	close(free)
	for s := range free {
		m.putScratch(s)
	}
}

// forEachTile is forEachUnit over fitTile-wide atom tiles.
func (m *Model) forEachTile(nAtoms, n3 int, compute func(*evalScratch, int), merge func(*evalScratch, int)) {
	m.forEachUnit((nAtoms+fitTile-1)/fitTile, n3, compute, merge)
}

// withList builds a skinless neighbor list for the configuration in
// pooled scratch and hands it to fn.
func (m *Model) withList(coord []float64, box float64, fn func(nl *neighbor.List)) {
	s := m.scratch.Get().(*evalScratch)
	s.nl.Build(coord, box, m.Cfg.Descriptor.RCut, 0)
	fn(&s.nl)
	m.scratch.Put(s)
}

// Energy returns the predicted total energy of a configuration.
func (m *Model) Energy(coord []float64, types []int, box float64) (energy float64) {
	m.withList(coord, box, func(nl *neighbor.List) {
		energy = m.EnergyNL(nl, coord, types, box)
	})
	return energy
}

// EnergyNL is Energy against a caller-provided neighbor list (built for
// these coordinates, or for nearby ones within the list's skin).
func (m *Model) EnergyNL(nl *neighbor.List, coord []float64, types []int, box float64) float64 {
	energy := 0.0
	m.forEachTile(len(types), len(coord),
		func(s *evalScratch, u int) {
			m.computeTile(s, modeEnergy, coord, types, box, u, nl)
		},
		func(s *evalScratch, u int) {
			m.mergeTile(s, modeEnergy, types, u, &energy, nil)
		})
	return energy
}

// EnergyForces returns the predicted total energy and per-coordinate
// forces F = −∂E/∂x (flat, atom-major xyz).
func (m *Model) EnergyForces(coord []float64, types []int, box float64) (energy float64, forces []float64) {
	forces = make([]float64, len(coord))
	m.withList(coord, box, func(nl *neighbor.List) {
		energy = m.EnergyForcesNL(nl, coord, types, box, forces)
	})
	return energy, forces
}

// EnergyForcesNL is EnergyForces against a caller-provided neighbor list,
// writing forces into the caller's buffer (len 3N, contents overwritten).
func (m *Model) EnergyForcesNL(nl *neighbor.List, coord []float64, types []int, box float64, forces []float64) (energy float64) {
	for k := range forces {
		forces[k] = 0
	}
	m.forEachTile(len(types), len(coord),
		func(s *evalScratch, u int) {
			m.computeTile(s, modeForces, coord, types, box, u, nl)
		},
		func(s *evalScratch, u int) {
			m.mergeTile(s, modeForces, types, u, &energy, forces)
		})
	for k := range forces {
		forces[k] = -forces[k]
	}
	return energy
}

// AccumulateEnergyGrad adds scale·∂E/∂θ to the parameter-gradient
// accumulators for the given configuration and returns the predicted
// energy.  It is the training building block: energy-loss gradients use it
// directly; force-loss gradients use it at coordinate-perturbed
// configurations (see Trainer).
func (m *Model) AccumulateEnergyGrad(coord []float64, types []int, box float64, scale float64) (energy float64) {
	m.withList(coord, box, func(nl *neighbor.List) {
		energy = m.AccumulateEnergyGradNL(nl, coord, types, box, scale)
	})
	return energy
}

// AccumulateEnergyGradNL is AccumulateEnergyGrad against a caller-provided
// neighbor list; the list's skin must cover any displacement between the
// list's build coordinates and coord.
func (m *Model) AccumulateEnergyGradNL(nl *neighbor.List, coord []float64, types []int, box float64, scale float64) float64 {
	energy := 0.0
	m.forEachUnit(len(types), len(coord),
		func(s *evalScratch, i int) {
			m.computeAtom(s, modeGrad, coord, types, box, i, nl, scale)
		},
		func(s *evalScratch, i int) {
			m.mergeAtom(s, modeGrad, types[i], &energy, nil)
		})
	return energy
}

// evalFrame computes one frame's energy and forces serially on the given
// scratch, reusing the scratch's neighbor list and force buffer.  It is
// the building block EvalErrors parallelizes over frames; the returned
// slice is scratch-owned.
func (m *Model) evalFrame(s *evalScratch, coord []float64, types []int, box float64) (float64, []float64) {
	s.nl.Build(coord, box, m.Cfg.Descriptor.RCut, 0)
	if cap(s.forces) < len(coord) {
		s.forces = make([]float64, len(coord))
	}
	s.forces = s.forces[:len(coord)]
	for k := range s.forces {
		s.forces[k] = 0
	}
	energy := 0.0
	nUnits := (len(types) + fitTile - 1) / fitTile
	for u := 0; u < nUnits; u++ {
		m.computeTile(s, modeForces, coord, types, box, u, &s.nl)
		m.mergeTile(s, modeForces, types, u, &energy, s.forces)
	}
	for k := range s.forces {
		s.forces[k] = -s.forces[k]
	}
	return energy, s.forces
}

// Params returns every trainable parameter (descriptor embeddings plus
// fitting networks) for optimizers and data-parallel reduction.  The
// result is cached at construction; callers must not append to it.
func (m *Model) Params() []nn.ParamGrad {
	if m.params != nil {
		return m.params
	}
	return m.buildParams()
}

func (m *Model) buildParams() []nn.ParamGrad {
	out := append([]nn.ParamGrad(nil), m.Desc.Params()...)
	for _, f := range m.Fit {
		out = append(out, f.Params()...)
	}
	return out
}

// ZeroGrad clears all gradient accumulators.
func (m *Model) ZeroGrad() {
	m.Desc.ZeroGrad()
	for _, f := range m.Fit {
		f.ZeroGrad()
	}
}

// ParamCount returns the total number of trainable parameters.
func (m *Model) ParamCount() int {
	n := m.Desc.ParamCount()
	for _, f := range m.Fit {
		n += f.ParamCount()
	}
	return n
}

// FlatGrad copies all gradient accumulators into a single vector.
func (m *Model) FlatGrad(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.ParamCount())
	}
	k := 0
	for _, pg := range m.Params() {
		k += copy(dst[k:], pg.Grad)
	}
	return dst
}

// SetFlatGrad overwrites the gradient accumulators from a flat vector.
func (m *Model) SetFlatGrad(src []float64) {
	k := 0
	for _, pg := range m.Params() {
		k += copy(pg.Grad, src[k:k+len(pg.Grad)])
	}
}
