package deepmd

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/descriptor"
	"repro/internal/nn"
)

// Input mirrors the subset of DeePMD-kit's input.json that the paper's
// workflow generates by template substitution (§2.2.4 item 3).  Field
// names match the DeePMD configuration keys.
type Input struct {
	Model        InputModel    `json:"model"`
	LearningRate InputLR       `json:"learning_rate"`
	Loss         InputLoss     `json:"loss"`
	Training     InputTraining `json:"training"`
}

// InputModel is the "model" section.
type InputModel struct {
	TypeMap    []string        `json:"type_map"`
	Descriptor InputDescriptor `json:"descriptor"`
	FittingNet InputFitting    `json:"fitting_net"`
}

// InputDescriptor is the "model.descriptor" section.
type InputDescriptor struct {
	Type               string    `json:"type"` // "se_e2_a"
	RCut               float64   `json:"rcut"`
	RCutSmth           float64   `json:"rcut_smth"`
	Neuron             []int     `json:"neuron"`
	AxisNeuron         int       `json:"axis_neuron"`
	ActivationFunction string    `json:"activation_function"`
	Sel                []float64 `json:"sel,omitempty"`
}

// InputFitting is the "model.fitting_net" section.
type InputFitting struct {
	Neuron             []int  `json:"neuron"`
	ActivationFunction string `json:"activation_function"`
}

// InputLR is the "learning_rate" section plus the worker-scaling scheme
// the paper tunes.
type InputLR struct {
	Type          string  `json:"type"` // "exp"
	StartLR       float64 `json:"start_lr"`
	StopLR        float64 `json:"stop_lr"`
	ScaleByWorker string  `json:"scale_by_worker"`
}

// InputLoss is the "loss" section.
type InputLoss struct {
	StartPrefE float64 `json:"start_pref_e"`
	LimitPrefE float64 `json:"limit_pref_e"`
	StartPrefF float64 `json:"start_pref_f"`
	LimitPrefF float64 `json:"limit_pref_f"`
}

// InputTraining is the "training" section.
type InputTraining struct {
	NumbSteps      int      `json:"numb_steps"`
	BatchSize      int      `json:"batch_size"`
	Seed           int64    `json:"seed"`
	DispFreq       int      `json:"disp_freq"`
	Systems        []string `json:"systems"`
	ValidationData struct {
		Systems []string `json:"systems"`
	} `json:"validation_data"`
}

// ParseInput decodes an input.json stream.
func ParseInput(r io.Reader) (*Input, error) {
	dec := json.NewDecoder(r)
	var in Input
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("deepmd: parsing input.json: %w", err)
	}
	return &in, nil
}

// ParseInputFile decodes input.json from disk.
func ParseInputFile(path string) (*Input, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseInput(f)
}

// Validate checks ranges and names.
func (in *Input) Validate() error {
	d := in.Model.Descriptor
	if d.RCut <= 0 || d.RCutSmth < 0 || d.RCutSmth >= d.RCut {
		return fmt.Errorf("deepmd: invalid cutoffs rcut=%g rcut_smth=%g", d.RCut, d.RCutSmth)
	}
	if len(d.Neuron) == 0 || len(in.Model.FittingNet.Neuron) == 0 {
		return fmt.Errorf("deepmd: empty network sizes")
	}
	if _, err := nn.ActivationByName(d.ActivationFunction); err != nil {
		return err
	}
	if _, err := nn.ActivationByName(in.Model.FittingNet.ActivationFunction); err != nil {
		return err
	}
	lr := in.LearningRate
	if lr.StartLR <= 0 || lr.StopLR <= 0 || lr.StopLR > lr.StartLR {
		return fmt.Errorf("deepmd: invalid learning rates start=%g stop=%g", lr.StartLR, lr.StopLR)
	}
	switch lr.ScaleByWorker {
	case "linear", "sqrt", "none", "":
	default:
		return fmt.Errorf("deepmd: unknown scale_by_worker %q", lr.ScaleByWorker)
	}
	if in.Training.NumbSteps <= 0 {
		return fmt.Errorf("deepmd: numb_steps must be positive")
	}
	if len(in.Model.TypeMap) == 0 {
		return fmt.Errorf("deepmd: empty type_map")
	}
	return nil
}

// ModelConfig converts the parsed input into a ModelConfig.
func (in *Input) ModelConfig() (ModelConfig, error) {
	descAct, err := nn.ActivationByName(in.Model.Descriptor.ActivationFunction)
	if err != nil {
		return ModelConfig{}, err
	}
	fitAct, err := nn.ActivationByName(in.Model.FittingNet.ActivationFunction)
	if err != nil {
		return ModelConfig{}, err
	}
	axis := in.Model.Descriptor.AxisNeuron
	if axis <= 0 {
		axis = 4
	}
	nsp := len(in.Model.TypeMap)
	return ModelConfig{
		Descriptor: descriptor.Config{
			RCut:           in.Model.Descriptor.RCut,
			RCutSmth:       in.Model.Descriptor.RCutSmth,
			EmbeddingSizes: in.Model.Descriptor.Neuron,
			AxisNeurons:    axis,
			Activation:     descAct,
			NumSpecies:     nsp,
		},
		FittingSizes:      in.Model.FittingNet.Neuron,
		FittingActivation: fitAct,
		NumSpecies:        nsp,
	}, nil
}

// TrainConfig converts the parsed input into a TrainConfig with the given
// simulated worker count (6 GPUs per node in the paper).
func (in *Input) TrainConfig(workers int) TrainConfig {
	batch := in.Training.BatchSize
	if batch <= 0 {
		batch = 1
	}
	scheme := in.LearningRate.ScaleByWorker
	if scheme == "" {
		scheme = "linear" // DeePMD's distributed default (§2.2.1)
	}
	return TrainConfig{
		Steps:         in.Training.NumbSteps,
		BatchSize:     batch,
		StartLR:       in.LearningRate.StartLR,
		StopLR:        in.LearningRate.StopLR,
		ScaleByWorker: scheme,
		Workers:       workers,
		Prefactors: LossPrefactors{
			StartPrefE: in.Loss.StartPrefE, LimitPrefE: in.Loss.LimitPrefE,
			StartPrefF: in.Loss.StartPrefF, LimitPrefF: in.Loss.LimitPrefF,
		},
		DispFreq: in.Training.DispFreq,
		Seed:     in.Training.Seed,
	}
}
