package deepmd

import (
	"repro/internal/md"
)

// MDPotential deploys a trained deep potential inside the MD engine —
// the end goal of the whole pipeline: quantum-accuracy dynamics at
// classical cost (§1).  It implements md.Potential, so a trained model
// drops into the same integrators and thermostats as the reference
// Born–Mayer–Huggins potential.
type MDPotential struct {
	Model *Model
	// types caches the per-atom species indices for the current system.
	types []int
	// scratch buffers to avoid per-step allocation.
	coord []float64
}

// NewMDPotential wraps a trained model for MD deployment.
func NewMDPotential(m *Model) *MDPotential { return &MDPotential{Model: m} }

// Cutoff implements md.Potential.
func (p *MDPotential) Cutoff() float64 { return p.Model.Cfg.Descriptor.RCut }

// Compute implements md.Potential: predicted energy into sys.PotEng and
// forces (−∇E, exact gradients through the descriptor) into sys.Frc.
func (p *MDPotential) Compute(sys *md.System) {
	n := sys.N()
	if len(p.types) != n {
		p.types = make([]int, n)
		for i, s := range sys.Species {
			p.types[i] = int(s)
		}
		p.coord = make([]float64, 3*n)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			p.coord[3*i+k] = sys.Pos[i][k]
		}
	}
	energy, forces := p.Model.EnergyForces(p.coord, p.types, sys.Box)
	sys.PotEng = energy
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			sys.Frc[i][k] = forces[3*i+k]
		}
	}
}
