package deepmd

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
)

// LossPrefactors holds the DeePMD loss weighting.  The training loss per
// frame is
//
//	L(t) = p_e(t)·(ΔE/N)² + p_f(t)/(3N)·Σ‖ΔF‖²
//
// where each prefactor interpolates between its start and limit value with
// the decaying learning rate: p(t) = limit + (start − limit)·lr(t)/lr(0).
// The paper fixes start/limit to (0.02, 1) for energy and (1000, 1) for
// force (§2.1.2), so training initially minimizes force error and
// gradually shifts weight onto the energy error (§2.2.1).
type LossPrefactors struct {
	StartPrefE, LimitPrefE float64
	StartPrefF, LimitPrefF float64
}

// PaperPrefactors returns the fixed prefactors of §2.1.2.
func PaperPrefactors() LossPrefactors {
	return LossPrefactors{StartPrefE: 0.02, LimitPrefE: 1, StartPrefF: 1000, LimitPrefF: 1}
}

// At returns (p_e, p_f) for learning-rate ratio lrRatio = lr(t)/lr(0).
func (p LossPrefactors) At(lrRatio float64) (pe, pf float64) {
	pe = p.LimitPrefE + (p.StartPrefE-p.LimitPrefE)*lrRatio
	pf = p.LimitPrefF + (p.StartPrefF-p.LimitPrefF)*lrRatio
	return pe, pf
}

// FrameErrors returns the per-atom energy error ΔE/N and the force
// component RMSE for a single frame prediction.
func FrameErrors(f *dataset.Frame, ePred float64, fPred []float64) (ePerAtom, fRMSE float64) {
	n := len(f.Coord) / 3
	ePerAtom = (ePred - f.Energy) / float64(n)
	s := 0.0
	for k := range fPred {
		d := fPred[k] - f.Force[k]
		s += d * d
	}
	fRMSE = math.Sqrt(s / float64(len(fPred)))
	return ePerAtom, fRMSE
}

// EvalErrors computes the dataset-level RMSEs DeePMD reports in
// lcurve.out: rmse_e is the RMS of per-atom energy errors over frames,
// rmse_f the RMS over all force components — the two quantities the EA
// minimizes (§2.2.4).  frames limits how many frames are evaluated (0 =
// all).
func EvalErrors(m *Model, d *dataset.Dataset, frames int) (rmseE, rmseF float64) {
	// The in-memory source never fails to produce a frame.
	rmseE, rmseF, _ = EvalErrorsSource(m, d, frames)
	return rmseE, rmseF
}

// EvalErrorsSource is EvalErrors over any FrameSource; the error reports
// a failed frame read (out-of-core sources only).
//
// Frames are evaluated on a worker pool bounded by m.Threads(); the
// per-frame error terms are reduced in frame order afterwards, so the
// result is bit-identical for every worker count.
func EvalErrorsSource(m *Model, src FrameSource, frames int) (rmseE, rmseF float64, err error) {
	if frames <= 0 || frames > src.Len() {
		frames = src.Len()
	}
	if frames == 0 {
		return 0, 0, nil
	}
	types := src.AtomTypes()
	type frameErr struct {
		se, sf float64
		nf     int
		err    error
	}
	res := make([]frameErr, frames)
	evalOne := func(s *evalScratch, i int) {
		fr, err := src.Frame(i)
		if err != nil {
			res[i] = frameErr{err: err}
			return
		}
		e, f := m.evalFrame(s, fr.Coord, types, fr.Box)
		de, _ := FrameErrors(fr, e, f)
		var sf float64
		for k := range f {
			diff := f[k] - fr.Force[k]
			sf += diff * diff
		}
		res[i] = frameErr{se: de * de, sf: sf, nf: len(f)}
	}

	threads := m.Threads()
	if threads > frames {
		threads = frames
	}
	if threads <= 1 {
		s := m.getScratch(3 * len(types))
		for i := 0; i < frames; i++ {
			evalOne(s, i)
		}
		m.putScratch(s)
	} else {
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := m.getScratch(3 * len(types))
				defer m.putScratch(s)
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= frames {
						return
					}
					evalOne(s, i)
				}
			}()
		}
		wg.Wait()
	}

	var se, sf float64
	var nf int
	for i := range res {
		if res[i].err != nil {
			// First failed frame wins, deterministically.
			return 0, 0, res[i].err
		}
		se += res[i].se
		sf += res[i].sf
		nf += res[i].nf
	}
	return math.Sqrt(se / float64(frames)), math.Sqrt(sf / float64(nf)), nil
}
