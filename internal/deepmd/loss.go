package deepmd

import (
	"math"

	"repro/internal/dataset"
)

// LossPrefactors holds the DeePMD loss weighting.  The training loss per
// frame is
//
//	L(t) = p_e(t)·(ΔE/N)² + p_f(t)/(3N)·Σ‖ΔF‖²
//
// where each prefactor interpolates between its start and limit value with
// the decaying learning rate: p(t) = limit + (start − limit)·lr(t)/lr(0).
// The paper fixes start/limit to (0.02, 1) for energy and (1000, 1) for
// force (§2.1.2), so training initially minimizes force error and
// gradually shifts weight onto the energy error (§2.2.1).
type LossPrefactors struct {
	StartPrefE, LimitPrefE float64
	StartPrefF, LimitPrefF float64
}

// PaperPrefactors returns the fixed prefactors of §2.1.2.
func PaperPrefactors() LossPrefactors {
	return LossPrefactors{StartPrefE: 0.02, LimitPrefE: 1, StartPrefF: 1000, LimitPrefF: 1}
}

// At returns (p_e, p_f) for learning-rate ratio lrRatio = lr(t)/lr(0).
func (p LossPrefactors) At(lrRatio float64) (pe, pf float64) {
	pe = p.LimitPrefE + (p.StartPrefE-p.LimitPrefE)*lrRatio
	pf = p.LimitPrefF + (p.StartPrefF-p.LimitPrefF)*lrRatio
	return pe, pf
}

// FrameErrors returns the per-atom energy error ΔE/N and the force
// component RMSE for a single frame prediction.
func FrameErrors(f *dataset.Frame, ePred float64, fPred []float64) (ePerAtom, fRMSE float64) {
	n := len(f.Coord) / 3
	ePerAtom = (ePred - f.Energy) / float64(n)
	s := 0.0
	for k := range fPred {
		d := fPred[k] - f.Force[k]
		s += d * d
	}
	fRMSE = math.Sqrt(s / float64(len(fPred)))
	return ePerAtom, fRMSE
}

// EvalErrors computes the dataset-level RMSEs DeePMD reports in
// lcurve.out: rmse_e is the RMS of per-atom energy errors over frames,
// rmse_f the RMS over all force components — the two quantities the EA
// minimizes (§2.2.4).  frames limits how many frames are evaluated (0 =
// all).
func EvalErrors(m *Model, d *dataset.Dataset, frames int) (rmseE, rmseF float64) {
	if frames <= 0 || frames > d.Len() {
		frames = d.Len()
	}
	if frames == 0 {
		return 0, 0
	}
	var se, sf float64
	var nf int
	for i := 0; i < frames; i++ {
		fr := &d.Frames[i]
		e, f := m.EnergyForces(fr.Coord, d.Types, fr.Box)
		de, _ := FrameErrors(fr, e, f)
		se += de * de
		for k := range f {
			diff := f[k] - fr.Force[k]
			sf += diff * diff
			nf++
		}
	}
	return math.Sqrt(se / float64(frames)), math.Sqrt(sf / float64(nf))
}
