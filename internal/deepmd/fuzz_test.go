package deepmd

import (
	"strings"
	"testing"
)

// FuzzInputJSON feeds arbitrary bytes through the whole DeePMD input
// pipeline — parse, validate, decode into model and training configs.
// None of the stages may panic, whatever the JSON claims about network
// sizes, learning rates or activation names.
func FuzzInputJSON(f *testing.F) {
	f.Add(`{"model":{"descriptor":{"rcut":6.0,"rcut_smth":1.0,"neuron":[25,50,100],"axis_neuron":16,"activation_function":"tanh"},"fitting_net":{"neuron":[240,240,240],"activation_function":"tanh"}},"learning_rate":{"start_lr":0.001,"stop_lr":1e-8},"training":{"numb_steps":40000,"batch_size":1,"disp_freq":100}}`)
	f.Add(`{}`)
	f.Add(`{"model":{"descriptor":{"neuron":[]}}}`)
	f.Add(`not json`)

	f.Fuzz(func(t *testing.T, in string) {
		input, err := ParseInput(strings.NewReader(in))
		if err != nil {
			return
		}
		_ = input.Validate()
		_, _ = input.ModelConfig()
		_ = input.TrainConfig(6)
	})
}
