package deepmd

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/neighbor"
)

// newTestModel builds two structurally identical models from the same
// seed so one can run serial and the other parallel.
func newTestModel(t *testing.T, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := NewModel(rng, tinyModelConfig())
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

// TestEnergyForcesParallelBitIdentical checks the determinism contract:
// the same model evaluated with 1 thread and with 4 threads must produce
// bit-for-bit identical energies, forces and parameter gradients.  The
// container may have a single CPU; SetThreads forces the pool path
// regardless, which is exactly what we want to exercise.
func TestEnergyForcesParallelBitIdentical(t *testing.T) {
	m := newTestModel(t, 21)
	d := tinyData(t, 2)

	for _, fr := range d.Frames {
		m.SetThreads(1)
		e1, f1 := m.EnergyForces(fr.Coord, d.Types, fr.Box)
		m.ZeroGrad()
		m.AccumulateEnergyGrad(fr.Coord, d.Types, fr.Box, 1.25)
		g1 := m.FlatGrad(nil)

		m.SetThreads(4)
		e4, f4 := m.EnergyForces(fr.Coord, d.Types, fr.Box)
		m.ZeroGrad()
		m.AccumulateEnergyGrad(fr.Coord, d.Types, fr.Box, 1.25)
		g4 := m.FlatGrad(nil)

		if e1 != e4 {
			t.Fatalf("energy differs: serial %v, parallel %v", e1, e4)
		}
		for k := range f1 {
			if f1[k] != f4[k] {
				t.Fatalf("force[%d] differs: serial %v, parallel %v", k, f1[k], f4[k])
			}
		}
		for k := range g1 {
			if g1[k] != g4[k] {
				t.Fatalf("grad[%d] differs: serial %v, parallel %v", k, g1[k], g4[k])
			}
		}
	}
}

// TestEvalErrorsParallelBitIdentical does the same for the frame-parallel
// validation evaluation.
func TestEvalErrorsParallelBitIdentical(t *testing.T) {
	m := newTestModel(t, 22)
	d := tinyData(t, 6)

	m.SetThreads(1)
	e1, f1 := EvalErrors(m, d, 0)
	m.SetThreads(4)
	e4, f4 := EvalErrors(m, d, 0)
	if e1 != e4 || f1 != f4 {
		t.Fatalf("EvalErrors differ: serial (%v, %v), parallel (%v, %v)", e1, f1, e4, f4)
	}
}

// TestTrainParallelBitIdentical trains the same seed twice, serial and
// with a 4-thread pool, and requires identical learning curves — the
// acceptance criterion that parallelism trades wall time only, never
// reproducibility of lcurve.out.
func TestTrainParallelBitIdentical(t *testing.T) {
	d := tinyData(t, 6)
	train, val := d.Split(0.33)

	run := func(threads int) ([]LCurveRecord, string) {
		m := newTestModel(t, 23)
		var buf bytes.Buffer
		cfg := TrainConfig{
			Steps: 6, BatchSize: 2, StartLR: 1e-3, StopLR: 1e-5,
			Workers: 2, DispFreq: 2, Threads: threads, Seed: 9,
		}
		res, err := Train(context.Background(), m, train, val, cfg, &buf)
		if err != nil {
			t.Fatalf("Train(threads=%d): %v", threads, err)
		}
		return res.LCurve, buf.String()
	}

	lc1, out1 := run(1)
	lc4, out4 := run(4)
	if len(lc1) != len(lc4) {
		t.Fatalf("lcurve lengths differ: %d vs %d", len(lc1), len(lc4))
	}
	for i := range lc1 {
		if lc1[i] != lc4[i] {
			t.Fatalf("lcurve record %d differs:\nserial   %+v\nparallel %+v", i, lc1[i], lc4[i])
		}
	}
	if out1 != out4 {
		t.Fatalf("lcurve.out text differs between serial and parallel runs")
	}
}

// TestNeighborListSkinCoversFDDisplacement checks the training-loop skin
// contract directly: a list built at the frame coordinates with skin 4h
// must give bit-identical results at coordinates displaced by h along a
// unit direction — the exact evaluation pattern of accumulateFrameGrad.
func TestNeighborListSkinCoversFDDisplacement(t *testing.T) {
	m := newTestModel(t, 24)
	d := tinyData(t, 1)
	fr := &d.Frames[0]
	const h = 1e-4

	var nl neighbor.List
	nl.Build(fr.Coord, fr.Box, m.Cfg.Descriptor.RCut, 4*h)

	rng := rand.New(rand.NewSource(31))
	moved := make([]float64, len(fr.Coord))
	dir := make([]float64, len(fr.Coord))
	var norm float64
	for k := range dir {
		dir[k] = rng.NormFloat64()
		norm += dir[k] * dir[k]
	}
	norm = 1 / math.Sqrt(norm+1e-30)
	for k := range moved {
		moved[k] = fr.Coord[k] + h*dir[k]*norm
	}

	forces := make([]float64, len(fr.Coord))
	eNL := m.EnergyForcesNL(&nl, moved, d.Types, fr.Box, forces)
	eFresh, fFresh := m.EnergyForces(moved, d.Types, fr.Box)
	if eNL != eFresh {
		t.Fatalf("energy with stale-list differs: %v vs %v", eNL, eFresh)
	}
	for k := range forces {
		if forces[k] != fFresh[k] {
			t.Fatalf("force[%d] with stale-list differs: %v vs %v", k, forces[k], fFresh[k])
		}
	}
}
