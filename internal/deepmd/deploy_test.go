package deepmd

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/md"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewModel(rng, tinyModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.Bias = []float64{-1.5, -2.0, -0.5}
	d := tinyData(t, 1)
	fr := &d.Frames[0]
	eWant, fWant := m.EnergyForces(fr.Coord, d.Types, fr.Box)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	eGot, fGot := got.EnergyForces(fr.Coord, d.Types, fr.Box)
	if eGot != eWant {
		t.Errorf("energy after round trip: %v != %v", eGot, eWant)
	}
	for k := range fWant {
		if fGot[k] != fWant[k] {
			t.Fatalf("force[%d] after round trip: %v != %v", k, fGot[k], fWant[k])
		}
	}
	if got.Cfg.FittingActivation.Name() != m.Cfg.FittingActivation.Name() {
		t.Error("fitting activation lost")
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, _ := NewModel(rng, tinyModelConfig())
	path := filepath.Join(t.TempDir(), "frozen.model")
	if err := m.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadModelFile(path)
	if err != nil {
		t.Fatalf("LoadModelFile: %v", err)
	}
	if got.ParamCount() != m.ParamCount() {
		t.Errorf("param count %d != %d", got.ParamCount(), m.ParamCount())
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage accepted")
	}
	// A valid gob of the wrong format string.
	var buf bytes.Buffer
	m, _ := NewModel(rand.New(rand.NewSource(3)), tinyModelConfig())
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the format marker bytes.
	idx := bytes.Index(raw, []byte(modelFormat))
	if idx < 0 {
		t.Fatal("format marker not found in encoding")
	}
	raw[idx] = 'X'
	if _, err := LoadModel(bytes.NewReader(raw)); err == nil {
		t.Error("wrong-format model accepted")
	}
}

func TestMDPotentialMatchesEnergyForces(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, _ := NewModel(rng, tinyModelConfig())
	species := []md.Species{md.Al, md.Cl, md.Cl, md.Cl, md.K, md.Cl}
	sys := md.NewSystem(rng, species, 7.0, 498)

	pot := NewMDPotential(m)
	if pot.Cutoff() != m.Cfg.Descriptor.RCut {
		t.Errorf("Cutoff = %v", pot.Cutoff())
	}
	pot.Compute(sys)

	coord := make([]float64, 3*sys.N())
	types := make([]int, sys.N())
	for i := 0; i < sys.N(); i++ {
		types[i] = int(sys.Species[i])
		for k := 0; k < 3; k++ {
			coord[3*i+k] = sys.Pos[i][k]
		}
	}
	eWant, fWant := m.EnergyForces(coord, types, sys.Box)
	if math.Abs(sys.PotEng-eWant) > 1e-12 {
		t.Errorf("PotEng %v != %v", sys.PotEng, eWant)
	}
	for i := 0; i < sys.N(); i++ {
		for k := 0; k < 3; k++ {
			if sys.Frc[i][k] != fWant[3*i+k] {
				t.Fatalf("force mismatch at %d,%d", i, k)
			}
		}
	}
}

func TestMDWithNNPotentialConservesEnergy(t *testing.T) {
	// The learned potential is smooth and its forces are exact gradients,
	// so NVE dynamics under it must conserve energy — this is the whole
	// point of the DeepPot-SE smooth edition (§1) and validates the
	// descriptor/fitting gradients in a dynamical setting.
	rng := rand.New(rand.NewSource(5))
	m, _ := NewModel(rng, tinyModelConfig())
	species := []md.Species{md.Al, md.Cl, md.Cl, md.Cl, md.K, md.Cl}
	sys := md.NewSystem(rng, species, 7.0, 150)
	pot := NewMDPotential(m)

	it := md.NewIntegrator(pot, nil, 0.25)
	pot.Compute(sys)
	e0 := md.TotalEnergy(sys)
	var maxDrift float64
	it.Run(sys, 200, 20, func(step int) {
		d := math.Abs(md.TotalEnergy(sys) - e0)
		if d > maxDrift {
			maxDrift = d
		}
	})
	scale := math.Abs(e0) + sys.KineticEnergy() + 1
	if maxDrift/scale > 0.05 {
		t.Errorf("NN-potential NVE drift %v (scale %v)", maxDrift, scale)
	}
}

func TestMDPotentialNewtonThirdLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, _ := NewModel(rng, tinyModelConfig())
	species := []md.Species{md.Al, md.Cl, md.Cl, md.Cl, md.K, md.Cl}
	sys := md.NewSystem(rng, species, 7.0, 300)
	pot := NewMDPotential(m)
	pot.Compute(sys)
	var sum md.Vec3
	for _, f := range sys.Frc {
		sum = sum.Add(f)
	}
	if sum.Norm() > 1e-8 {
		t.Errorf("net force %v under NN potential (translation invariance broken)", sum.Norm())
	}
}

func TestTrainingResumesFromFrozenModel(t *testing.T) {
	// The paper's two-hour limit kills long trainings; DeePMD checkpoints
	// and restarts.  Freeze after a first leg, reload in a "new process",
	// continue training: losses must keep improving from where they were
	// (Adam moments are not persisted, so exact-match with an unbroken run
	// is not expected).
	rng := rand.New(rand.NewSource(40))
	m, _ := NewModel(rng, tinyModelConfig())
	d := tinyData(t, 16)
	d.Shuffle(rand.New(rand.NewSource(41)))
	train, val := d.Split(0.25)

	cfg := TrainConfig{
		Steps: 120, BatchSize: 2, StartLR: 0.005, StopLR: 1e-4,
		ScaleByWorker: "none", Workers: 1, DispFreq: 60, Seed: 42,
	}
	res1, err := Train(context.Background(), m, train, val, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	cfg.StartLR = 0.002 // continue near where the schedule left off
	res2, err := Train(context.Background(), resumed, train, val, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FinalForceRMSE > res1.FinalForceRMSE*1.3 {
		t.Errorf("resumed training regressed: %v -> %v", res1.FinalForceRMSE, res2.FinalForceRMSE)
	}
}
