package surrogate

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/deepmd"
	"repro/internal/descriptor"
	"repro/internal/md"
	"repro/internal/nn"
)

// These tests validate the DESIGN.md substitution claim: the surrogate's
// response axes point the same way as the real in-process DeePMD trainer.
// Each check trains two tiny real models differing in one hyperparameter
// and verifies the loss ordering agrees with the surrogate's.

// trainReal trains a miniature model and returns final validation losses.
func trainReal(t *testing.T, rcut float64, act nn.Activation, startLR, stopLR float64, seed int64) (rmseE, rmseF float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	species := []md.Species{md.Al, md.Cl, md.Cl, md.Cl, md.K, md.Cl, md.Cl, md.K}
	pot := md.NewPaperBMH(4.0)
	data := dataset.Generate(rng, species, 7.5, 498, pot, 0.5, 80, 8, 20)
	data.Shuffle(rand.New(rand.NewSource(22)))
	train, val := data.Split(0.25)

	m, err := deepmd.NewModel(rand.New(rand.NewSource(seed)), deepmd.ModelConfig{
		Descriptor: descriptor.Config{
			RCut: rcut, RCutSmth: 1.0,
			EmbeddingSizes: []int{4, 8}, AxisNeurons: 2,
			Activation: act, NumSpecies: 3, NeighborNorm: 7,
		},
		FittingSizes:      []int{10},
		FittingActivation: act,
		NumSpecies:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := deepmd.Train(context.Background(), m, train, val, deepmd.TrainConfig{
		Steps: 120, BatchSize: 2, StartLR: startLR, StopLR: stopLR,
		ScaleByWorker: "none", Workers: 1, DispFreq: 60, Seed: seed,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.FinalEnergyRMSE, res.FinalForceRMSE
}

func TestRealTrainerAgreesOnLearningRateAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("real training in -short mode")
	}
	// A collapsed learning rate must undertrain (higher losses), exactly
	// as the surrogate's u-penalty encodes.
	_, fGood := trainReal(t, 3.0, nn.Tanh, 0.005, 1e-4, 31)
	_, fTiny := trainReal(t, 3.0, nn.Tanh, 1e-7, 5e-8, 31)
	if fTiny <= fGood {
		t.Errorf("real trainer: tiny lr force %v not worse than good lr %v", fTiny, fGood)
	}
	s := newQuiet()
	hGood := goodParams()
	hTiny := goodParams()
	hTiny.StartLR, hTiny.StopLR = 1e-7, 5e-8
	if s.EvaluateParams(hTiny, 1).ForceLoss <= s.EvaluateParams(hGood, 1).ForceLoss {
		t.Error("surrogate disagrees with itself on lr axis")
	}
}

func TestRealTrainerAgreesOnRCutAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("real training in -short mode")
	}
	// A cutoff so small the descriptor sees almost no neighbours must
	// train worse than a cutoff covering the first coordination shells.
	_, fBig := trainReal(t, 3.2, nn.Tanh, 0.005, 1e-4, 33)
	_, fSmall := trainReal(t, 1.6, nn.Tanh, 0.005, 1e-4, 33)
	if fSmall <= fBig {
		t.Errorf("real trainer: small rcut force %v not worse than larger rcut %v", fSmall, fBig)
	}
}
