package surrogate

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ea"
	"repro/internal/hpo"
)

// goodParams is a near-optimal configuration (Table 3 solution 1).
func goodParams() hpo.HParams {
	return hpo.HParams{
		StartLR: 0.0047, StopLR: 0.0001, RCut: 11.32, RCutSmth: 2.42,
		ScaleByWorker: "none", DescActiv: "tanh", FittingActiv: "tanh",
	}
}

func newQuiet() *Evaluator {
	return NewEvaluator(Config{Seed: 1, NoiseScale: -1, DisableFailures: true})
}

func evalP(t *testing.T, s *Evaluator, h hpo.HParams) Result {
	t.Helper()
	return s.EvaluateParams(h, 12345)
}

func TestDeterministicForGenome(t *testing.T) {
	s := NewEvaluator(Config{Seed: 7})
	g, err := hpo.Encode(goodParams())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.EvaluateGenome(g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.EvaluateGenome(g)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("same genome gave different results: %+v vs %+v", r1, r2)
	}
	// A different seed decorrelates the noise.
	s2 := NewEvaluator(Config{Seed: 8})
	r3, _ := s2.EvaluateGenome(g)
	if r1 == r3 {
		t.Error("different campaign seeds gave identical noise")
	}
}

func TestGoodParamsNearPaperOptimum(t *testing.T) {
	s := newQuiet()
	r := evalP(t, s, goodParams())
	if r.Failed {
		t.Fatal("good params failed")
	}
	if r.ForceLoss < 0.030 || r.ForceLoss > 0.042 {
		t.Errorf("force loss %v outside the paper's frontier band", r.ForceLoss)
	}
	if r.EnergyLoss < 0.0003 || r.EnergyLoss > 0.002 {
		t.Errorf("energy loss %v outside the paper's frontier band", r.EnergyLoss)
	}
	if !hpo.ChemicallyAccurate(ea.Fitness{r.EnergyLoss, r.ForceLoss}) {
		t.Errorf("paper's best solution not chemically accurate: %+v", r)
	}
	if r.Runtime > 80*time.Minute {
		t.Errorf("runtime %v exceeds the paper's observed 80 min ceiling", r.Runtime)
	}
}

func TestSmallRCutBreaksChemicalAccuracy(t *testing.T) {
	// §3.2: no chemically accurate solution has rcut below ≈8.5 Å.
	s := newQuiet()
	for _, rcut := range []float64{6.0, 7.0, 8.0, 8.3} {
		h := goodParams()
		h.RCut = rcut
		r := evalP(t, s, h)
		if hpo.ChemicallyAccurate(ea.Fitness{r.EnergyLoss, r.ForceLoss}) {
			t.Errorf("rcut=%v chemically accurate (energy %v, force %v); paper requires ≥8.5",
				rcut, r.EnergyLoss, r.ForceLoss)
		}
	}
	for _, rcut := range []float64{9.0, 10.0, 11.5} {
		h := goodParams()
		h.RCut = rcut
		r := evalP(t, s, h)
		if !hpo.ChemicallyAccurate(ea.Fitness{r.EnergyLoss, r.ForceLoss}) {
			t.Errorf("rcut=%v not accurate (energy %v, force %v)", rcut, r.EnergyLoss, r.ForceLoss)
		}
	}
}

func TestRCutMonotoneImprovement(t *testing.T) {
	s := newQuiet()
	prevE, prevF := math.Inf(1), math.Inf(1)
	for _, rcut := range []float64{6.5, 7.5, 8.5, 9.5, 10.5, 11.5} {
		h := goodParams()
		h.RCut = rcut
		r := evalP(t, s, h)
		if r.EnergyLoss > prevE+1e-12 || r.ForceLoss > prevF+1e-12 {
			t.Errorf("losses not improving with rcut at %v: e %v→%v f %v→%v",
				rcut, prevE, r.EnergyLoss, prevF, r.ForceLoss)
		}
		prevE, prevF = r.EnergyLoss, r.ForceLoss
	}
}

func TestFittingReluHeavilyPenalized(t *testing.T) {
	// §3.2: relu/relu6 fitting activations drop out of the final
	// populations entirely.
	s := newQuiet()
	base := evalP(t, s, goodParams())
	for _, act := range []string{"relu", "relu6"} {
		h := goodParams()
		h.FittingActiv = act
		r := evalP(t, s, h)
		if r.ForceLoss < base.ForceLoss*1.3 {
			t.Errorf("fitting %s force loss %v not strongly worse than tanh %v",
				act, r.ForceLoss, base.ForceLoss)
		}
		if hpo.ChemicallyAccurate(ea.Fitness{r.EnergyLoss, r.ForceLoss}) {
			t.Errorf("fitting %s chemically accurate; should be excluded", act)
		}
	}
}

func TestDescriptorSigmoidExcludedFromAccuracy(t *testing.T) {
	s := newQuiet()
	h := goodParams()
	h.DescActiv = "sigmoid"
	r := evalP(t, s, h)
	if hpo.ChemicallyAccurate(ea.Fitness{r.EnergyLoss, r.ForceLoss}) {
		t.Errorf("descriptor sigmoid chemically accurate (%v, %v); §3.2 excludes it",
			r.EnergyLoss, r.ForceLoss)
	}
}

func TestFittingSigmoidAndSoftplusExcellent(t *testing.T) {
	// §3.2: "Softplus and sigmoid for the fitting activation function
	// provided excellent results."
	s := newQuiet()
	base := evalP(t, s, goodParams())
	for _, act := range []string{"sigmoid", "softplus"} {
		h := goodParams()
		h.FittingActiv = act
		r := evalP(t, s, h)
		if r.ForceLoss > base.ForceLoss*1.1 {
			t.Errorf("fitting %s force %v much worse than tanh %v", act, r.ForceLoss, base.ForceLoss)
		}
		if !hpo.ChemicallyAccurate(ea.Fitness{r.EnergyLoss, r.ForceLoss}) {
			t.Errorf("fitting %s not chemically accurate", act)
		}
	}
}

func TestStopLRTradeoff(t *testing.T) {
	// Higher stop_lr → better force, worse energy (the frontier axis).
	s := newQuiet()
	hi := goodParams() // stop 1e-4
	lo := goodParams()
	lo.StopLR = 3e-6
	rHi := evalP(t, s, hi)
	rLo := evalP(t, s, lo)
	if rHi.ForceLoss >= rLo.ForceLoss {
		t.Errorf("high stop_lr force %v not better than low %v", rHi.ForceLoss, rLo.ForceLoss)
	}
	if rHi.EnergyLoss <= rLo.EnergyLoss {
		t.Errorf("high stop_lr energy %v not worse than low %v", rHi.EnergyLoss, rLo.EnergyLoss)
	}
}

func TestScaleSchemesOrdering(t *testing.T) {
	// With start_lr at the paper's default 0.001 and 6 workers, "linear"
	// over-scales (0.006) past the sweet spot while "sqrt" and "none"
	// stay near it; more accurate solutions come from sqrt/none (§3.2).
	s := newQuiet()
	losses := map[string]Result{}
	for _, scheme := range []string{"linear", "sqrt", "none"} {
		h := goodParams()
		h.StartLR = 0.004 // sweet spot for "none"
		h.ScaleByWorker = scheme
		losses[scheme] = evalP(t, s, h)
	}
	if losses["linear"].ForceLoss <= losses["none"].ForceLoss {
		t.Errorf("linear force %v not worse than none %v",
			losses["linear"].ForceLoss, losses["none"].ForceLoss)
	}
	if losses["linear"].EnergyLoss <= losses["sqrt"].EnergyLoss {
		t.Errorf("linear energy %v not worse than sqrt %v",
			losses["linear"].EnergyLoss, losses["sqrt"].EnergyLoss)
	}
}

func TestTinyLearningRateUndertrains(t *testing.T) {
	// Gen-0 outliers: near-zero start_lr leaves the model untrained with
	// force losses far above the cluster (Fig. 1 cropped outliers).
	s := newQuiet()
	h := goodParams()
	h.StartLR = 5e-8
	h.StopLR = 4e-8
	r := evalP(t, s, h)
	if r.ForceLoss < 0.3 {
		t.Errorf("untrained force loss %v, want ≥ 0.3 (outlier region)", r.ForceLoss)
	}
	if r.EnergyLoss < 0.01 {
		t.Errorf("untrained energy loss %v, want ≥ 0.01", r.EnergyLoss)
	}
}

func TestRuntimeGrowsWithRCutAndStaysUnder80(t *testing.T) {
	s := newQuiet()
	small := goodParams()
	small.RCut = 6.5
	large := goodParams()
	large.RCut = 12.0
	rSmall := evalP(t, s, small)
	rLarge := evalP(t, s, large)
	if rLarge.Runtime <= rSmall.Runtime {
		t.Errorf("runtime not growing with rcut: %v vs %v", rSmall.Runtime, rLarge.Runtime)
	}
	if rLarge.Runtime > 80*time.Minute {
		t.Errorf("rcut=12 runtime %v exceeds 80 min", rLarge.Runtime)
	}
}

func TestFailuresAtOverScaledLR(t *testing.T) {
	// start_lr 0.01 with linear scaling at 6 workers → lrEff 0.06:
	// failure probability should be substantial.
	s := NewEvaluator(Config{Seed: 3})
	h := goodParams()
	h.StartLR = 0.01
	h.ScaleByWorker = "linear"
	failures := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		r := s.EvaluateParams(h, int64(i))
		if r.Failed {
			failures++
			if r.Runtime > 15*time.Minute {
				t.Errorf("failed training runtime %v, want short (§3.2)", r.Runtime)
			}
		}
	}
	if failures < trials/10 {
		t.Errorf("only %d/%d failures at lrEff=0.06, want many", failures, trials)
	}
	// And near-zero failures at good settings.
	good := 0
	for i := 0; i < trials; i++ {
		if r := s.EvaluateParams(goodParams(), int64(i)); r.Failed {
			good++
		}
	}
	if good > trials/20 {
		t.Errorf("%d/%d failures at good settings, want rare", good, trials)
	}
}

func TestDisableFailures(t *testing.T) {
	s := NewEvaluator(Config{Seed: 3, DisableFailures: true})
	h := goodParams()
	h.StartLR = 0.01
	h.ScaleByWorker = "linear"
	for i := 0; i < 100; i++ {
		if r := s.EvaluateParams(h, int64(i)); r.Failed {
			t.Fatal("failure despite DisableFailures")
		}
	}
}

func TestEvaluateReturnsErrorOnFailure(t *testing.T) {
	s := NewEvaluator(Config{Seed: 3})
	h := goodParams()
	h.StartLR = 0.01
	h.ScaleByWorker = "linear"
	sawError := false
	rng := rand.New(rand.NewSource(4))
	rep := hpo.PaperRepresentation()
	for i := 0; i < 400 && !sawError; i++ {
		g, _ := hpo.Encode(h)
		// Jitter continuous genes so the noise key varies.
		g[hpo.GeneRCut] = 6 + 6*rng.Float64()
		if _, err := s.Evaluate(context.Background(), g); err != nil {
			sawError = true
		}
		_ = rep
	}
	if !sawError {
		t.Error("no failure surfaced as error in 400 evaluations at lrEff=0.06")
	}
}

func TestEvaluateRejectsBadGenome(t *testing.T) {
	s := NewEvaluator(Config{Seed: 1})
	if _, err := s.Evaluate(context.Background(), ea.Genome{1, 2}); err == nil {
		t.Error("short genome accepted")
	}
}

func TestNoiseScaleSpread(t *testing.T) {
	s := NewEvaluator(Config{Seed: 5}) // default 3% noise
	h := goodParams()
	var lo, hi float64 = math.Inf(1), 0
	for i := 0; i < 200; i++ {
		r := s.EvaluateParams(h, int64(i))
		if r.Failed {
			continue
		}
		lo = math.Min(lo, r.ForceLoss)
		hi = math.Max(hi, r.ForceLoss)
	}
	if hi/lo < 1.05 || hi/lo > 1.6 {
		t.Errorf("noise spread hi/lo = %v, want moderate scatter", hi/lo)
	}
}

func TestSmoothingDistanceMildEffect(t *testing.T) {
	// §3.2: the smoothing distance varies across the whole range among
	// good solutions — its effect must be weak relative to rcut's.
	s := newQuiet()
	h1 := goodParams()
	h1.RCutSmth = 2.0
	h2 := goodParams()
	h2.RCutSmth = 5.9
	r1 := evalP(t, s, h1)
	r2 := evalP(t, s, h2)
	ratio := r2.ForceLoss / r1.ForceLoss
	if ratio > 1.15 || ratio < 0.87 {
		t.Errorf("rcut_smth effect too strong: force ratio %v", ratio)
	}
	if hpo.ChemicallyAccurate(ea.Fitness{r1.EnergyLoss, r1.ForceLoss}) !=
		hpo.ChemicallyAccurate(ea.Fitness{r2.EnergyLoss, r2.ForceLoss}) {
		t.Error("rcut_smth alone flipped chemical accuracy")
	}
}

func TestQuickSurrogateTotalOnBounds(t *testing.T) {
	// Robustness: any genome inside Table 1's bounds decodes and scores
	// without panic, returning finite positive losses or a failure.
	s := NewEvaluator(Config{Seed: 9})
	rep := hpo.PaperRepresentation()
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		g := rep.Bounds.Sample(rng)
		r, err := s.EvaluateGenome(g)
		if err != nil {
			t.Fatalf("EvaluateGenome(%v): %v", g, err)
		}
		if r.Failed {
			if r.Runtime <= 0 {
				t.Fatal("failed run without runtime")
			}
			continue
		}
		if !(r.EnergyLoss > 0) || !(r.ForceLoss > 0) ||
			math.IsInf(r.EnergyLoss, 0) || math.IsInf(r.ForceLoss, 0) {
			t.Fatalf("non-finite losses for %v: %+v", g, r)
		}
		if r.Runtime <= 0 || r.Runtime > 3*time.Hour {
			t.Fatalf("implausible runtime %v", r.Runtime)
		}
	}
}
