// Package surrogate is the stand-in for the paper's 3500 two-hour DeePMD
// trainings on Summit (§2.2.5): a deterministic, seeded response surface
// mapping the seven tuned hyperparameters to (validation energy loss,
// validation force loss, training runtime, failure).  One full-size
// training is ~12 GPU-hours; the campaign needs thousands, so the paper's
// compute substrate is simulated while the optimization machinery under
// study — NSGA-II, the operator pipeline, failure handling — runs for
// real.
//
// The surface is calibrated to reproduce every qualitative finding of §3:
//
//   - Frontier force errors land in ≈[0.035, 0.041] eV/Å and energy errors
//     in ≈[0.0004, 0.0017] eV/atom (Table 2), with an explicit trade-off
//     axis so a non-degenerate Pareto frontier exists (Fig. 2).
//   - Chemically accurate solutions require rcut ≳ 8.5 Å (Fig. 3).
//   - relu/relu6 fitting activations are strongly penalized (they drop
//     out of the final population); sigmoid descriptor activation is
//     moderately penalized (excluded from accurate solutions);
//     tanh/softplus excel for both networks (§3.2).
//   - Linear learning-rate scaling at 6 workers often over-scales the
//     learning rate; "sqrt" and "none" yield more accurate solutions.
//   - Runtimes stay below ~80 minutes, growing with rcut³ (neighbour
//     count); failed trainings return after only a few minutes.
//   - A small fraction of evaluations fail outright (≈25 of 3500 in the
//     paper), concentrated where the effective learning rate explodes.
//
// The real in-process trainer (internal/deepmd) moves in the same
// directions along each axis, which is validated by tests in this package
// — the surrogate's landscape is an extrapolation of a real, runnable
// trainer, not an arbitrary function.
package surrogate

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"repro/internal/ea"
	"repro/internal/hpo"
	"repro/internal/nn"
)

// Result is one simulated training outcome.
type Result struct {
	EnergyLoss float64       // validation RMSE, eV/atom
	ForceLoss  float64       // validation RMSE, eV/Å
	Runtime    time.Duration // simulated wall-clock training time
	Failed     bool          // training crashed / timed out / diverged
}

// Config tunes the surrogate.
type Config struct {
	// Seed decorrelates campaigns; the same (Seed, genome) pair always
	// produces the same Result.
	Seed int64
	// Workers is the data-parallel width the learning rate is scaled by
	// (6 GPUs per Summit node in the paper).
	Workers int
	// NoiseScale is the multiplicative log-normal noise σ on both losses
	// (default 0.05).  Zero keeps the default; negative disables noise.
	NoiseScale float64
	// DisableFailures turns the failure hazard off (ablation runs).
	DisableFailures bool
}

// Evaluator is a deterministic surrogate implementing ea.Evaluator.
type Evaluator struct {
	cfg Config
}

// NewEvaluator builds a surrogate with paper-like defaults.
func NewEvaluator(cfg Config) *Evaluator {
	if cfg.Workers <= 0 {
		cfg.Workers = 6
	}
	if cfg.NoiseScale == 0 {
		cfg.NoiseScale = 0.03
	}
	if cfg.NoiseScale < 0 {
		cfg.NoiseScale = 0
	}
	return &Evaluator{cfg: cfg}
}

// Evaluate implements ea.Evaluator: fitness is (energy loss, force loss),
// and a failed training returns an error so the EA assigns MAXINT
// (§2.2.4).
func (s *Evaluator) Evaluate(_ context.Context, g ea.Genome) (ea.Fitness, error) {
	res, err := s.EvaluateGenome(g)
	if err != nil {
		return nil, err
	}
	if res.Failed {
		return nil, fmt.Errorf("surrogate: training failed after %v", res.Runtime)
	}
	return ea.Fitness{res.EnergyLoss, res.ForceLoss}, nil
}

// EvaluateGenome decodes and scores a genome.  Because the mapping is
// deterministic, callers can re-invoke it later to recover the simulated
// runtime of any individual (used by the Fig. 3 / Table 3 analyses).
func (s *Evaluator) EvaluateGenome(g ea.Genome) (Result, error) {
	h, err := hpo.Decode(g)
	if err != nil {
		return Result{}, err
	}
	return s.EvaluateParams(h, genomeHash(s.cfg.Seed, g)), nil
}

// EvaluateParams scores decoded hyperparameters with the given noise
// stream key.
func (s *Evaluator) EvaluateParams(h hpo.HParams, noiseKey int64) Result {
	rng := rand.New(rand.NewSource(noiseKey))
	noise := func() float64 {
		if s.cfg.NoiseScale == 0 {
			return 1
		}
		return math.Exp(rng.NormFloat64() * s.cfg.NoiseScale)
	}

	lrEff := nn.WorkerScale(h.ScaleByWorker, h.StartLR, s.cfg.Workers)
	// u is the log₁₀ misfit of the effective learning rate from its sweet
	// spot (≈4e-3, near Table 3's best start_lr values with "none").
	u := math.Log10(lrEff / 4e-3)
	// w parameterizes the energy↔force trade-off through stop_lr: a higher
	// stop rate leaves training in the force-dominated prefactor phase
	// longer (better forces, worse energies), a lower one buys extra
	// energy refinement at slight force cost — mirroring Table 3, where
	// the lowest-force solution has the highest stop_lr.
	w := math.Log10(h.StopLR / 3e-5)

	// ---- Failure hazard -------------------------------------------------
	if !s.cfg.DisableFailures {
		p := 0.0008 // residual hardware / node-failure hazard
		if lrEff > 0.045 {
			// The learning rate has been over-scaled (typically "linear"
			// at 6 workers with a large start_lr): divergence risk.
			p += 0.35 * math.Min(1, (lrEff-0.045)/0.015)
		}
		if (h.FittingActiv == "relu" || h.FittingActiv == "relu6") && lrEff > 0.025 {
			p += 0.12 // dead-unit collapse at high rate
		}
		if rng.Float64() < p {
			// Failed trainings die early — the paper observed "very short
			// runtimes corresponding to failed training tasks" (§3.2).
			return Result{Failed: true, Runtime: minutes(2 + 8*rng.Float64())}
		}
	}

	// ---- Force loss (eV/Å) ----------------------------------------------
	var lrF float64
	if u < 0 {
		// Undertrained: error grows quickly as the rate collapses.
		lrF = 0.30*u*u + 0.05*math.Abs(u*u*u)
	} else {
		lrF = 0.10 * u * u
	}
	if lrEff > 0.02 {
		// Surviving but unstable training: large, noisy errors.
		lrF += 2.5 * (lrEff - 0.02) / 0.02
	}
	tradeF := -0.12 * math.Tanh(w) // higher stop_lr → better forces
	stopF := 0.0
	if w < -1.2 {
		stopF = 0.10 * sq(w+1.2) // fine-tuning never completes
	}
	// The gentle exponential is the overall more-neighbours-more-accuracy
	// trend; the sharp sigmoid near 8.5 Å models the third coordination
	// shell of the melt falling outside the cutoff, which is what makes
	// rcut ≳ 8.5 a hard requirement for chemical accuracy (§3.2).
	rcutF := 0.55*math.Exp(-(h.RCut-6.2)/0.9) + 0.06*sigmoidFn((8.55-h.RCut)/0.10)
	smthF := 0.010 * sq((h.RCutSmth-3.2)/2.8)
	actF := fittingPenaltyF(h.FittingActiv) + descPenaltyF(h.DescActiv)
	scaleF := 0.0
	if h.ScaleByWorker == "linear" {
		scaleF = 0.03 // large-batch noise beyond the pure lr effect
	}
	force := 0.0375 * (1 + rcutF + lrF + tradeF + stopF + smthF + actF + scaleF) * noise()
	force = math.Max(force, 0.034)

	// ---- Energy loss (eV/atom) -------------------------------------------
	var lrE float64
	if u < 0 {
		lrE = 0.5*u*u + 0.08*math.Abs(u*u*u)
	} else {
		lrE = 0.4 * u * u
	}
	if lrEff > 0.02 {
		lrE += 6 * (lrEff - 0.02) / 0.02
	}
	tradeE := 1.1 * math.Tanh(w) // higher stop_lr → worse energies
	stopE := 0.0
	if w < -1.2 {
		stopE = 0.5 * sq(w+1.2)
	}
	rcutE := 1.5*math.Exp(-(h.RCut-6.0)/0.9) + 4.0*sigmoidFn((8.55-h.RCut)/0.10)
	smthE := 0.05 * sq((h.RCutSmth-3.0)/3.0)
	actE := fittingPenaltyE(h.FittingActiv) + descPenaltyE(h.DescActiv)
	energy := 0.00105 * (1 + rcutE + lrE + tradeE + stopE + smthE + actE) * noise()
	energy = math.Max(energy, 0.00035)

	// ---- Runtime ----------------------------------------------------------
	// Neighbour count grows with rcut³; activation choice changes the
	// kernel cost; everything stays under the paper's observed 80 minutes.
	rt := 30 + 0.020*h.RCut*h.RCut*h.RCut
	rt += activationCost(h.DescActiv)*2 + activationCost(h.FittingActiv)
	rt *= 1 + 0.04*rng.NormFloat64()
	if rt < 15 {
		rt = 15
	}

	return Result{EnergyLoss: energy, ForceLoss: force, Runtime: minutes(rt)}
}

// fittingPenaltyF: relative force-loss penalties for the fitting-network
// activation.  relu/relu6 are heavily penalized (they vanish from the
// final populations); softplus and sigmoid are excellent (§3.2).
func fittingPenaltyF(act string) float64 {
	switch act {
	case "relu":
		return 0.80
	case "relu6":
		return 0.70
	case "sigmoid":
		return 0.02
	case "softplus":
		return 0.00
	default: // tanh
		return 0
	}
}

func fittingPenaltyE(act string) float64 {
	switch act {
	case "relu":
		return 3.0
	case "relu6":
		return 2.5
	case "sigmoid":
		return -0.05
	case "softplus":
		return -0.08
	default:
		return 0
	}
}

// descPenaltyF: descriptor-network activation penalties.  sigmoid is
// excluded from chemically accurate solutions; softplus performs well;
// tanh is the default and fine.
func descPenaltyF(act string) float64 {
	switch act {
	case "relu":
		return 0.30
	case "relu6":
		return 0.26
	case "sigmoid":
		return 0.18
	case "softplus":
		return 0.005
	default:
		return 0
	}
}

func descPenaltyE(act string) float64 {
	switch act {
	case "relu":
		return 1.6
	case "relu6":
		return 1.3
	case "sigmoid":
		return 1.1
	case "softplus":
		return -0.03
	default:
		return 0
	}
}

// activationCost is the relative kernel cost in minutes added per network
// using the activation; transcendental activations cost more than relu.
func activationCost(act string) float64 {
	switch act {
	case "relu", "relu6":
		return 0
	case "sigmoid":
		return 2
	case "softplus":
		return 3
	default: // tanh
		return 2.5
	}
}

func sq(x float64) float64 { return x * x }

// sigmoidFn is the logistic function used for sharp-threshold terms.
func sigmoidFn(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func minutes(m float64) time.Duration { return time.Duration(m * float64(time.Minute)) }

// genomeHash derives a deterministic per-genome noise key from the
// campaign seed and the genome bits.
func genomeHash(seed int64, g ea.Genome) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	for _, v := range g {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return int64(h.Sum64())
}
