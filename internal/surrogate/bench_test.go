package surrogate

import (
	"context"
	"testing"

	"repro/internal/hpo"
)

func BenchmarkEvaluateGenome(b *testing.B) {
	s := NewEvaluator(Config{Seed: 1})
	g, err := hpo.Encode(goodParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EvaluateGenome(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateAsEvaluator(b *testing.B) {
	s := NewEvaluator(Config{Seed: 1, DisableFailures: true})
	g, err := hpo.Encode(goodParams())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(ctx, g); err != nil {
			b.Fatal(err)
		}
	}
}
