package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/ea"
	"repro/internal/hpo"
)

// Spec is the client-supplied description of one campaign: the JSON body
// of POST /v1/campaigns.  Zero fields take the documented defaults.
type Spec struct {
	// Tenant is the owning namespace; required.  Quotas and fairness are
	// enforced per tenant.
	Tenant string `json:"tenant"`
	// Name is a human label; defaults to a prefix of the campaign ID.
	Name string `json:"name,omitempty"`
	// Runs is the number of independent NSGA-II runs (default 1, max 16).
	Runs int `json:"runs,omitempty"`
	// PopSize is parents = offspring per generation (default 20, max 512).
	PopSize int `json:"pop_size,omitempty"`
	// Generations is the number of offspring generations (default 3,
	// max 10000; 0 evaluates only the initial population).
	Generations *int `json:"generations,omitempty"`
	// BaseSeed seeds the campaign's RNG streams (default 0).
	BaseSeed int64 `json:"base_seed,omitempty"`
	// AnnealFactor multiplies mutation σ per generation (default 0.85).
	AnnealFactor float64 `json:"anneal_factor,omitempty"`
	// Parallelism is concurrent evaluations per run (default: the
	// evaluation pool's own default; the tenant in-flight quota applies
	// regardless).
	Parallelism int `json:"parallelism,omitempty"`
	// EvalTimeoutMS bounds one evaluation in milliseconds (0 = none).
	EvalTimeoutMS int64 `json:"eval_timeout_ms,omitempty"`
}

// gens returns the target offspring-generation count with the default
// applied; callers must have run validate first.
func (sp *Spec) gens() int { return *sp.Generations }

func validName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

// validate normalizes defaults in place and rejects malformed specs.
func (sp *Spec) validate() error {
	if !validName(sp.Tenant) {
		return fmt.Errorf("service: tenant must be 1-64 chars of [a-zA-Z0-9._-], got %q", sp.Tenant)
	}
	if sp.Name != "" && !validName(sp.Name) {
		return fmt.Errorf("service: name must be 1-64 chars of [a-zA-Z0-9._-], got %q", sp.Name)
	}
	if sp.Runs == 0 {
		sp.Runs = 1
	}
	if sp.Runs < 0 || sp.Runs > 16 {
		return fmt.Errorf("service: runs must be in [1,16], got %d", sp.Runs)
	}
	if sp.PopSize == 0 {
		sp.PopSize = 20
	}
	if sp.PopSize < 0 || sp.PopSize > 512 {
		return fmt.Errorf("service: pop_size must be in [1,512], got %d", sp.PopSize)
	}
	if sp.Generations == nil {
		g := 3
		sp.Generations = &g
	}
	if *sp.Generations < 0 || *sp.Generations > 10000 {
		return fmt.Errorf("service: generations must be in [0,10000], got %d", *sp.Generations)
	}
	if sp.AnnealFactor == 0 {
		sp.AnnealFactor = 0.85
	}
	if sp.AnnealFactor < 0 || sp.AnnealFactor > 2 {
		return fmt.Errorf("service: anneal_factor must be in (0,2], got %g", sp.AnnealFactor)
	}
	if sp.Parallelism < 0 {
		return fmt.Errorf("service: parallelism must be >= 0, got %d", sp.Parallelism)
	}
	if sp.EvalTimeoutMS < 0 {
		return fmt.Errorf("service: eval_timeout_ms must be >= 0, got %d", sp.EvalTimeoutMS)
	}
	return nil
}

// State is a campaign's lifecycle position.
type State string

const (
	// StateQueued: created, awaiting admission.
	StateQueued State = "queued"
	// StateRunning: admitted, legs executing.
	StateRunning State = "running"
	// StateDone: all generations completed.
	StateDone State = "done"
	// StateFailed: a leg failed for a non-cancellation reason.
	StateFailed State = "failed"
	// StateCancelled: stopped by client request.
	StateCancelled State = "cancelled"
	// StateSuspended: interrupted by drain; resumable via Restore.
	StateSuspended State = "suspended"
)

// Terminal reports whether the state is final for the campaign (a
// suspended campaign is final only for this process — Restore requeues
// it).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Campaign is one tenant-owned NSGA-II campaign inside the service.
// Exported fields are immutable after creation; everything else is
// guarded by mu.
type Campaign struct {
	ID      string
	Tenant  string
	Spec    Spec
	Created time.Time
	ring    *Ring

	mu        sync.Mutex
	state     State
	cancel    context.CancelFunc
	cancelled bool // Cancel() requested while running (vs. drain)
	admitSeq  int64
	result    *hpo.CampaignResult
	errMsg    string
}

// emit appends an event to the campaign's ring, stamping campaign ID and
// wall time.
func (c *Campaign) emit(e Event) {
	e.Campaign = c.ID
	e.Time = now()
	c.ring.Append(e)
}

// State returns the current lifecycle state.
func (c *Campaign) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Result returns the accumulated campaign result (nil before the first
// completed generation).  The returned structure is safe to read: legs
// replace it wholesale and never mutate published individuals' genomes
// or fitnesses.
func (c *Campaign) Result() *hpo.CampaignResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.result
}

// Events returns the campaign's event ring.
func (c *Campaign) Events() *Ring { return c.ring }

// gensDoneLocked counts completed offspring generations.  Caller holds
// c.mu.  Generation 0 (the initial-population evaluation) is round
// zero: a result whose runs hold n generation records has n-1 offspring
// generations behind it.
func (c *Campaign) gensDoneLocked() int {
	if c.result == nil || len(c.result.Runs) == 0 {
		return 0
	}
	n := len(c.result.Runs[0].Generations) - 1
	if n < 0 {
		return 0
	}
	return n
}

// Status is the JSON shape of GET /v1/campaigns/{id}.
type Status struct {
	ID          string `json:"id"`
	Tenant      string `json:"tenant"`
	Name        string `json:"name"`
	State       State  `json:"state"`
	Generations int    `json:"generations"`
	GensDone    int    `json:"gens_done"`
	Evaluations int    `json:"evaluations"`
	Failures    int    `json:"failures"`
	Frontier    int    `json:"frontier_size"`
	// AdmitSeq is the global admission order (1 = first admitted, 0 =
	// not yet admitted): the observable form of round-robin fairness.
	AdmitSeq int64  `json:"admit_seq,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Status snapshots the campaign for API responses.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID:          c.ID,
		Tenant:      c.Tenant,
		Name:        c.Spec.Name,
		State:       c.state,
		Generations: c.Spec.gens(),
		GensDone:    c.gensDoneLocked(),
		AdmitSeq:    c.admitSeq,
		Error:       c.errMsg,
	}
	if c.result != nil {
		st.Evaluations = c.result.TotalEvaluations()
		st.Failures = c.result.TotalFailures()
		st.Frontier = len(c.result.ParetoFront())
	}
	return st
}

// campaignConfig builds the hpo config for one leg of c.  The evaluator
// chain is shared-memo behind the tenant's in-flight gate; gens is the
// leg length (0 for the initial-population leg, since RunCampaign's
// generation count excludes generation 0).
func (s *Service) campaignConfig(c *Campaign, t *tenant, gens int) hpo.CampaignConfig {
	return hpo.CampaignConfig{
		Runs:         c.Spec.Runs,
		PopSize:      c.Spec.PopSize,
		Generations:  gens,
		Evaluator:    gatedEvaluator{inner: s.eval, gate: t.gate},
		Parallelism:  c.Spec.Parallelism,
		EvalTimeout:  time.Duration(c.Spec.EvalTimeoutMS) * time.Millisecond,
		AnnealFactor: c.Spec.AnnealFactor,
		BaseSeed:     c.Spec.BaseSeed,
	}
}

// run executes a campaign as a sequence of one-generation legs,
// checkpointing after each.  Leg 0 evaluates the initial population
// (hpo.RunCampaign with Generations=0); every later leg resumes the
// accumulated result for exactly one generation, so each leg's RNG seed
// is hpo.ResumeSeed(BaseSeed, run, gensDone) — a pure function of how
// far the campaign has come, never of which process is executing it.
// That invariance is the whole checkpoint/resume story: a bounced
// service replays the same legs and lands on the same frontier.
func (s *Service) run(ctx context.Context, c *Campaign, t *tenant) {
	defer s.wg.Done()
	defer s.release(c, t)

	c.emit(Event{Type: "admitted"})
	s.logf("campaign_admitted", "id", c.ID, "tenant", c.Tenant, "gens_done", func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.gensDoneLocked()
	}())

	for {
		c.mu.Lock()
		prev := c.result
		target := c.Spec.gens()
		finished := prev != nil && c.gensDoneLocked() >= target
		c.mu.Unlock()
		if finished {
			break
		}

		var res *hpo.CampaignResult
		var err error
		if prev == nil {
			res, err = hpo.RunCampaign(ctx, s.campaignConfig(c, t, 0))
		} else {
			res, err = hpo.ResumeCampaign(ctx, prev, s.campaignConfig(c, t, 0), 1)
		}
		if err != nil {
			s.finishLeg(ctx, c, err)
			return
		}

		c.mu.Lock()
		c.result = res
		gd := c.gensDoneLocked()
		evals := res.TotalEvaluations()
		fails := res.TotalFailures()
		frontier := len(res.ParetoFront())
		c.mu.Unlock()

		if err := s.checkpoint(c); err != nil {
			s.logf("checkpoint_error", "id", c.ID, "err", err)
		}
		c.emit(Event{Type: "generation", Gen: gd, Evals: evals, Failures: fails, Frontier: frontier})
		s.logf("campaign_generation", "id", c.ID, "tenant", c.Tenant,
			"gen", gd, "of", target, "evals", evals, "failures", fails, "frontier", frontier)
	}

	c.mu.Lock()
	c.state = StateDone
	c.mu.Unlock()
	if err := s.checkpoint(c); err != nil {
		s.logf("checkpoint_error", "id", c.ID, "err", err)
	}
	c.emit(Event{Type: "done"})
	s.logf("campaign_done", "id", c.ID, "tenant", c.Tenant)
}

// finishLeg classifies a failed leg: context cancellation is either a
// client cancel or a drain suspension; anything else fails the campaign.
// Either way the campaign is checkpointed so no completed generation is
// lost.
func (s *Service) finishLeg(ctx context.Context, c *Campaign, legErr error) {
	c.mu.Lock()
	var typ string
	switch {
	case ctx.Err() != nil && c.cancelled:
		c.state = StateCancelled
		typ = "cancelled"
	case ctx.Err() != nil:
		c.state = StateSuspended
		typ = "suspended"
	default:
		c.state = StateFailed
		c.errMsg = legErr.Error()
		typ = "failed"
	}
	gd := c.gensDoneLocked()
	c.mu.Unlock()

	if err := s.checkpoint(c); err != nil {
		s.logf("checkpoint_error", "id", c.ID, "err", err)
	}
	c.emit(Event{Type: typ, Gen: gd, Detail: legErr.Error()})
	s.logf("campaign_"+typ, "id", c.ID, "tenant", c.Tenant, "gens_done", gd, "err", legErr)
}

// lcurve returns the per-generation frontier-size / evaluation history
// used by GET /v1/campaigns/{id}/lcurve.
type lcurvePoint struct {
	Gen      int `json:"gen"`
	Evals    int `json:"evals"`
	Failures int `json:"failures"`
}

// Lcurve summarizes evaluation effort per completed generation round
// (round 0 is the initial population).
func (c *Campaign) Lcurve() []lcurvePoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.result == nil {
		return []lcurvePoint{}
	}
	byGen := map[int]*lcurvePoint{}
	var gens []int
	for _, run := range c.result.Runs {
		for _, rec := range run.Generations {
			p, ok := byGen[rec.Gen]
			if !ok {
				p = &lcurvePoint{Gen: rec.Gen}
				byGen[rec.Gen] = p
				gens = append(gens, rec.Gen)
			}
			p.Evals += len(rec.Evaluated)
			p.Failures += rec.Failures
		}
	}
	// Generation records arrive in order within each run, and runs are
	// lockstep, so gens is already ascending.
	out := make([]lcurvePoint, 0, len(gens))
	for _, g := range gens {
		out = append(out, *byGen[g])
	}
	return out
}

var _ ea.Evaluator = gatedEvaluator{}
