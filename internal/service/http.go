package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/hpo"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/campaigns                create a campaign (body: Spec)
//	GET    /v1/campaigns[?tenant=t]     list campaign statuses
//	GET    /v1/campaigns/{id}           one campaign's status
//	DELETE /v1/campaigns/{id}           cancel (queued or running)
//	GET    /v1/campaigns/{id}/events    SSE stream (Accept: text/event-stream)
//	                                    or JSON long-poll (?after=N&wait_ms=M)
//	GET    /v1/campaigns/{id}/frontier  Pareto frontier, canonical bytes
//	GET    /v1/campaigns/{id}/lcurve    per-generation evaluation history
//	GET    /v1/campaigns/{id}/result    full hpo campaign document
//	GET    /healthz                     liveness
//	GET    /metrics                     Prometheus text format
//	GET    /debug/pprof/...             runtime profiling
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleCreate)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/frontier", s.handleFrontier)
	mux.HandleFunc("GET /v1/campaigns/{id}/lcurve", s.handleLcurve)
	mux.HandleFunc("GET /v1/campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func (s *Service) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		s.logf("response_encode_error", "err", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(data, '\n')); err != nil {
		s.logf("response_write_error", "err", err)
	}
}

func (s *Service) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var quota quotaError
	switch {
	case errors.Is(err, errUnknownCampaign):
		status = http.StatusNotFound
	case errors.Is(err, errDraining):
		status = http.StatusServiceUnavailable
	case errors.As(err, &quota):
		status = http.StatusTooManyRequests
	case strings.Contains(err.Error(), "already"):
		status = http.StatusConflict
	case strings.HasPrefix(err.Error(), "service:"):
		status = http.StatusBadRequest
	}
	s.writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: "decoding spec: " + err.Error()})
		return
	}
	c, err := s.Create(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, c.Status())
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	statuses := []Status{}
	for _, c := range s.Campaigns(r.URL.Query().Get("tenant")) {
		statuses = append(statuses, c.Status())
	}
	s.writeJSON(w, http.StatusOK, statuses)
}

// lookup resolves {id} or writes a 404.
func (s *Service) lookup(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	c, ok := s.Campaign(r.PathValue("id"))
	if !ok {
		s.writeError(w, errUnknownCampaign)
	}
	return c, ok
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.lookup(w, r); ok {
		s.writeJSON(w, http.StatusOK, c.Status())
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if err := s.Cancel(c.ID); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, c.Status())
}

// handleEvents serves the campaign event feed.  With Accept:
// text/event-stream it streams SSE frames (id = sequence number, so a
// dropped client reconnects with ?after=<last id>); otherwise it is a
// JSON long-poll: ?after=N returns buffered events past N, blocking up
// to ?wait_ms=M (max 60s) when none are ready.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamSSE(w, r, c, after)
		return
	}
	waitMS, _ := strconv.ParseInt(q.Get("wait_ms"), 10, 64)
	if waitMS > 60_000 {
		waitMS = 60_000
	}
	evs := c.ring.Since(after)
	if len(evs) == 0 && waitMS > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), time.Duration(waitMS)*time.Millisecond)
		evs, _ = c.ring.Next(ctx, after) // timeout → empty batch, next=after
		cancel()
	}
	next := after
	if len(evs) > 0 {
		next = evs[len(evs)-1].Seq
	}
	if evs == nil {
		evs = []Event{}
	}
	s.writeJSON(w, http.StatusOK, struct {
		Events []Event `json:"events"`
		Next   uint64  `json:"next"`
	}{evs, next})
}

// streamSSE replays buffered events past `after`, then follows the ring
// live until the campaign reaches a state that ends the feed (terminal,
// or suspended — this process is draining) and every event has been
// delivered.
func (s *Service) streamSSE(w http.ResponseWriter, r *http.Request, c *Campaign, after uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported by connection"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		// Capture the wake channel BEFORE draining, so an event landing
		// between Since and the select still wakes the loop (Ring.WaitCh).
		wake := c.ring.WaitCh()
		evs := c.ring.Since(after)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				s.logf("sse_encode_error", "err", err)
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data); err != nil {
				return // client went away
			}
			after = e.Seq
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		st := c.State()
		if (st.Terminal() || st == StateSuspended) && len(c.ring.Since(after)) == 0 {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
	}
}

// frontierPoint is one Pareto-frontier member.  hpo.JSONFloats carries
// non-finite fitness (a frontier can legitimately hold +Inf objectives
// when every evaluation failed).
type frontierPoint struct {
	Genome  hpo.JSONFloats `json:"genome"`
	Fitness hpo.JSONFloats `json:"fitness"`
}

// orderKey maps a float64 onto the IEEE-754 total order as a uint64, so
// frontier sorting is deterministic even across NaN/±Inf.
func orderKey(v float64) uint64 {
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}

func lessFloats(a, b []float64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		ka, kb := orderKey(a[i]), orderKey(b[i])
		if ka != kb {
			return ka < kb
		}
	}
	return len(a) < len(b)
}

// handleFrontier serves the campaign's current Pareto frontier in a
// canonical form: points sorted by (fitness, genome) under IEEE total
// order, no identifiers, no timestamps.  Two campaigns that took the
// same decisions produce byte-identical frontier documents — the
// property the bounce/resume integration test asserts.
func (s *Service) handleFrontier(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	res := c.Result()
	points := []frontierPoint{}
	if res != nil {
		for _, ind := range res.ParetoFront() {
			points = append(points, frontierPoint{
				Genome:  hpo.JSONFloats(ind.Genome),
				Fitness: hpo.JSONFloats(ind.Fitness),
			})
		}
		sort.SliceStable(points, func(i, j int) bool {
			if !lessFloats(points[i].Fitness, points[j].Fitness) &&
				!lessFloats(points[j].Fitness, points[i].Fitness) {
				return lessFloats(points[i].Genome, points[j].Genome)
			}
			return lessFloats(points[i].Fitness, points[j].Fitness)
		})
	}
	s.writeJSON(w, http.StatusOK, struct {
		Size   int             `json:"size"`
		Points []frontierPoint `json:"points"`
	}{len(points), points})
}

func (s *Service) handleLcurve(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.lookup(w, r); ok {
		s.writeJSON(w, http.StatusOK, c.Lcurve())
	}
}

// handleResult streams the full hpo campaign document (every evaluation
// of every generation), loadable by hpo.LoadCampaign and the offline
// analysis CLIs.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	res := c.Result()
	if res == nil {
		s.writeJSON(w, http.StatusConflict, apiError{Error: "no completed generation yet"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := hpo.SaveCampaign(w, res); err != nil {
		s.logf("result_write_error", "id", c.ID, "err", err)
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, struct {
		Status string `json:"status"`
	}{status})
}
