package service

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
)

// Metrics are rendered in the Prometheus text exposition format with
// only stdlib machinery.  Everything is emitted in a fixed order —
// states from a constant list, workers and event types pre-sorted — so
// consecutive scrapes of an idle service are byte-stable.

// metricStates fixes the emission order of the per-state campaign gauge.
var metricStates = []State{
	StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateSuspended,
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer

	counts := map[State]int{}
	s.mu.Lock()
	for _, id := range s.order {
		c := s.campaigns[id]
		counts[c.State()]++
	}
	tenants := len(s.tenants)
	active := s.active
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()

	fmt.Fprintf(&buf, "# HELP repro_service_campaigns Campaigns by lifecycle state.\n")
	fmt.Fprintf(&buf, "# TYPE repro_service_campaigns gauge\n")
	for _, st := range metricStates {
		fmt.Fprintf(&buf, "repro_service_campaigns{state=%q} %d\n", string(st), counts[st])
	}
	fmt.Fprintf(&buf, "# TYPE repro_service_tenants gauge\nrepro_service_tenants %d\n", tenants)
	fmt.Fprintf(&buf, "# TYPE repro_service_active_campaigns gauge\nrepro_service_active_campaigns %d\n", active)
	fmt.Fprintf(&buf, "# TYPE repro_service_draining gauge\nrepro_service_draining %d\n", draining)
	fmt.Fprintf(&buf, "# HELP repro_service_evaluations_total Evaluations dispatched to the backend (memo hits excluded).\n")
	fmt.Fprintf(&buf, "# TYPE repro_service_evaluations_total counter\nrepro_service_evaluations_total %d\n", s.EvaluationsTotal())

	ms := s.MemoStats()
	fmt.Fprintf(&buf, "# HELP repro_service_memo Memo-cache counters shared across all campaigns.\n")
	fmt.Fprintf(&buf, "# TYPE repro_service_memo_hits_total counter\nrepro_service_memo_hits_total %d\n", ms.Hits)
	fmt.Fprintf(&buf, "# TYPE repro_service_memo_misses_total counter\nrepro_service_memo_misses_total %d\n", ms.Misses)
	fmt.Fprintf(&buf, "# TYPE repro_service_memo_entries gauge\nrepro_service_memo_entries %d\n", ms.Entries)

	if s.cfg.SchedulerStats != nil {
		st, workers := s.cfg.SchedulerStats()
		fmt.Fprintf(&buf, "# HELP repro_cluster_tasks Lease-scheduler task counters.\n")
		fmt.Fprintf(&buf, "# TYPE repro_cluster_tasks_submitted_total counter\nrepro_cluster_tasks_submitted_total %d\n", st.Submitted)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_tasks_completed_total counter\nrepro_cluster_tasks_completed_total %d\n", st.Completed)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_tasks_failed_total counter\nrepro_cluster_tasks_failed_total %d\n", st.Failed)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_tasks_reassigned_total counter\nrepro_cluster_tasks_reassigned_total %d\n", st.Reassigned)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_tasks_expired_total counter\nrepro_cluster_tasks_expired_total %d\n", st.Expired)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_tasks_stale_total counter\nrepro_cluster_tasks_stale_total %d\n", st.Stale)
		fmt.Fprintf(&buf, "# HELP repro_cluster_queue_waits_total Submissions that blocked on a full pending queue (backpressure).\n")
		fmt.Fprintf(&buf, "# TYPE repro_cluster_queue_waits_total counter\nrepro_cluster_queue_waits_total %d\n", st.QueueWaits)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_workers gauge\nrepro_cluster_workers %d\n", len(workers))
		fmt.Fprintf(&buf, "# TYPE repro_cluster_worker_inflight gauge\n")
		for _, ws := range workers { // WorkerStats arrives sorted by name
			fmt.Fprintf(&buf, "repro_cluster_worker_inflight{worker=%q} %d\n", ws.Name, ws.InFlight)
		}
		fmt.Fprintf(&buf, "# TYPE repro_cluster_worker_completed_total counter\n")
		for _, ws := range workers {
			fmt.Fprintf(&buf, "repro_cluster_worker_completed_total{worker=%q} %d\n", ws.Name, ws.Completed)
		}
	}
	if s.cfg.SchedulerWire != nil {
		ws := s.cfg.SchedulerWire()
		fmt.Fprintf(&buf, "# HELP repro_cluster_wire Transport-level frame and byte counters.\n")
		fmt.Fprintf(&buf, "# TYPE repro_cluster_wire_frames_in_total counter\nrepro_cluster_wire_frames_in_total %d\n", ws.FramesIn)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_wire_frames_out_total counter\nrepro_cluster_wire_frames_out_total %d\n", ws.FramesOut)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_wire_bytes_in_total counter\nrepro_cluster_wire_bytes_in_total %d\n", ws.BytesIn)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_wire_bytes_out_total counter\nrepro_cluster_wire_bytes_out_total %d\n", ws.BytesOut)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_wire_decode_errors_total counter\nrepro_cluster_wire_decode_errors_total %d\n", ws.DecodeErrors)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_wire_conns_total counter\n")
		fmt.Fprintf(&buf, "repro_cluster_wire_conns_total{transport=\"binary\"} %d\n", ws.BinaryConns)
		fmt.Fprintf(&buf, "repro_cluster_wire_conns_total{transport=\"json\"} %d\n", ws.JSONConns)
	}
	if s.cfg.SchedulerQueue != nil {
		depths := s.cfg.SchedulerQueue()
		fmt.Fprintf(&buf, "# HELP repro_cluster_queue_depth Pending tasks per dispatch-queue shard.\n")
		fmt.Fprintf(&buf, "# TYPE repro_cluster_queue_depth gauge\n")
		for i, d := range depths {
			fmt.Fprintf(&buf, "repro_cluster_queue_depth{shard=\"%d\"} %d\n", i, d)
		}
	}
	if s.cfg.SchedulerMux != nil {
		ms := s.cfg.SchedulerMux()
		fmt.Fprintf(&buf, "# HELP repro_cluster_mux Session-layer multiplexing and frame-coalescing counters.\n")
		fmt.Fprintf(&buf, "# TYPE repro_cluster_mux_sessions_total counter\nrepro_cluster_mux_sessions_total %d\n", ms.Sessions)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_mux_streams_total counter\nrepro_cluster_mux_streams_total %d\n", ms.Streams)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_mux_frames_in_total counter\nrepro_cluster_mux_frames_in_total %d\n", ms.FramesIn)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_mux_frames_out_total counter\nrepro_cluster_mux_frames_out_total %d\n", ms.FramesOut)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_mux_flushes_total counter\nrepro_cluster_mux_flushes_total %d\n", ms.Flushes)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_mux_batched_flushes_total counter\nrepro_cluster_mux_batched_flushes_total %d\n", ms.BatchedFlushes)
		fmt.Fprintf(&buf, "# TYPE repro_cluster_mux_coalesced_frames_total counter\nrepro_cluster_mux_coalesced_frames_total %d\n", ms.CoalescedFrames)
	}
	if s.cfg.SchedulerEvents != nil {
		types, counts := s.cfg.SchedulerEvents.Counts()
		fmt.Fprintf(&buf, "# HELP repro_cluster_events_total Scheduler lifecycle events by type.\n")
		fmt.Fprintf(&buf, "# TYPE repro_cluster_events_total counter\n")
		for i, t := range types {
			fmt.Fprintf(&buf, "repro_cluster_events_total{type=%q} %d\n", string(t), counts[i])
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.logf("metrics_write_error", "err", err)
	}
}

// sortedTenantNames is a metrics/debug helper returning tenant names in
// deterministic order.
func (s *Service) sortedTenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.tenantOrder...)
	sort.Strings(out)
	return out
}
