package service

import (
	"errors"
	"fmt"
)

// errDraining rejects campaign creation during shutdown.
var errDraining = errors.New("service: draining, not accepting campaigns")

// errUnknownCampaign is returned for lookups of nonexistent IDs.
var errUnknownCampaign = errors.New("service: unknown campaign")

// quotaError rejects creation beyond a tenant's campaign quota; the API
// layer maps it to 429.
type quotaError struct {
	tenant string
	limit  int
}

func (e quotaError) Error() string {
	return fmt.Sprintf("service: tenant %q at campaign quota (%d queued+running)", e.tenant, e.limit)
}
