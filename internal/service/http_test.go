package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/mux"
	"repro/internal/hpo"
	"repro/internal/service"
)

func newTestServer(t *testing.T, mutate func(*service.Config)) (*service.Service, *httptest.Server) {
	t.Helper()
	svc := newTestService(t, mutate)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, body)
		}
	}
	return resp
}

func postCampaign(t *testing.T, base, specJSON string) service.Status {
	t.Helper()
	resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitStatusHTTP(t *testing.T, base, id string, want service.State) service.Status {
	t.Helper()
	var st service.Status
	for i := 0; i < 4000; i++ {
		getJSON(t, base+"/v1/campaigns/"+id, &st)
		if st.State == want {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s stuck in %s over HTTP, want %s", id, st.State, want)
	return st
}

func TestHTTPCampaignLifecycle(t *testing.T) {
	_, srv := newTestServer(t, func(cfg *service.Config) {
		cfg.SchedulerWire = func() cluster.WireStats {
			return cluster.WireStats{FramesIn: 7, FramesOut: 9, BytesIn: 512, BytesOut: 1024, BinaryConns: 3}
		}
		cfg.SchedulerQueue = func() []int { return []int{2, 0, 5} }
		cfg.SchedulerMux = func() mux.Stats {
			return mux.Stats{Sessions: 2, Streams: 11, FramesOut: 40, Flushes: 13, BatchedFlushes: 6, CoalescedFrames: 27}
		}
	})
	base := srv.URL

	// Malformed bodies are 400s.
	for _, body := range []string{"not json", `{"tenant":"x","bogus_field":1}`, `{"tenant":""}`} {
		resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	st := postCampaign(t, base, `{"tenant":"alice","name":"demo","runs":1,"pop_size":6,"generations":2,"base_seed":7}`)
	if st.State != service.StateQueued && st.State != service.StateRunning && st.State != service.StateDone {
		t.Fatalf("fresh campaign in state %s", st.State)
	}
	done := waitStatusHTTP(t, base, st.ID, service.StateDone)
	if done.Evaluations != 18 || done.GensDone != 2 {
		t.Fatalf("final status %+v", done)
	}

	// List, filtered and not.
	var all, mine, none []service.Status
	getJSON(t, base+"/v1/campaigns", &all)
	getJSON(t, base+"/v1/campaigns?tenant=alice", &mine)
	getJSON(t, base+"/v1/campaigns?tenant=stranger", &none)
	if len(all) != 1 || len(mine) != 1 || len(none) != 0 {
		t.Fatalf("list lengths: all=%d mine=%d none=%d", len(all), len(mine), len(none))
	}

	// Long-poll events: everything already buffered arrives immediately.
	var feed struct {
		Events []service.Event `json:"events"`
		Next   uint64          `json:"next"`
	}
	getJSON(t, base+"/v1/campaigns/"+st.ID+"/events?after=0", &feed)
	if len(feed.Events) == 0 || feed.Events[len(feed.Events)-1].Type != "done" {
		t.Fatalf("event feed: %+v", feed)
	}
	if feed.Next != feed.Events[len(feed.Events)-1].Seq {
		t.Fatalf("next cursor %d != last seq", feed.Next)
	}
	// Polling past the end with a wait bound returns empty, not a hang.
	var empty struct {
		Events []service.Event `json:"events"`
	}
	getJSON(t, fmt.Sprintf("%s/v1/campaigns/%s/events?after=%d&wait_ms=50", base, st.ID, feed.Next), &empty)
	if len(empty.Events) != 0 {
		t.Fatalf("expected empty poll, got %+v", empty.Events)
	}

	// Frontier document: canonical, non-empty, genome+fitness only.
	var frontier struct {
		Size   int `json:"size"`
		Points []struct {
			Genome  hpo.JSONFloats `json:"genome"`
			Fitness hpo.JSONFloats `json:"fitness"`
		} `json:"points"`
	}
	getJSON(t, base+"/v1/campaigns/"+st.ID+"/frontier", &frontier)
	if frontier.Size == 0 || len(frontier.Points) != frontier.Size {
		t.Fatalf("frontier: %+v", frontier)
	}

	// Lcurve rounds.
	var lc []struct {
		Gen   int `json:"gen"`
		Evals int `json:"evals"`
	}
	getJSON(t, base+"/v1/campaigns/"+st.ID+"/lcurve", &lc)
	if len(lc) != 3 || lc[0].Evals != 6 {
		t.Fatalf("lcurve: %+v", lc)
	}

	// The result endpoint streams a loadable hpo campaign document.
	resp, err := http.Get(base + "/v1/campaigns/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hpo.LoadCampaign(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("result not loadable: %v", err)
	}
	if res.TotalEvaluations() != 18 {
		t.Fatalf("loaded result has %d evaluations", res.TotalEvaluations())
	}

	// Unknown IDs are 404s on every campaign route.
	for _, path := range []string{"", "/events", "/frontier", "/lcurve", "/result"} {
		resp := getJSON(t, base+"/v1/campaigns/nope"+path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET nope%s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Health and metrics.
	var health struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, base+"/healthz", &health); resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`repro_service_campaigns{state="done"} 1`,
		"repro_service_evaluations_total",
		"repro_service_memo_misses_total",
		"repro_cluster_wire_frames_in_total 7",
		`repro_cluster_wire_conns_total{transport="binary"} 3`,
		`repro_cluster_queue_depth{shard="2"} 5`,
		"repro_cluster_mux_sessions_total 2",
		"repro_cluster_mux_coalesced_frames_total 27",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// pprof is mounted.
	presp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("pprof: status %d", presp.StatusCode)
	}
}

func TestHTTPQuotaAndCancel(t *testing.T) {
	be := &blockingEvaluator{release: make(chan struct{})}
	_, srv := newTestServer(t, func(cfg *service.Config) {
		cfg.Evaluator = be
		cfg.MaxCampaignsPerTenant = 1
		cfg.MaxConcurrent = 1
	})
	base := srv.URL

	st := postCampaign(t, base, `{"tenant":"alice","runs":1,"pop_size":1,"generations":0,"base_seed":1}`)
	resp, err := http.Post(base+"/v1/campaigns", "application/json",
		strings.NewReader(`{"tenant":"alice","runs":1,"pop_size":1,"generations":0,"base_seed":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota create: status %d, want 429", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/campaigns/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}
	waitStatusHTTP(t, base, st.ID, service.StateCancelled)
	close(be.release)
}

// TestHTTPSSEStream drives the Server-Sent-Events feed end to end: the
// replayed backlog, live generation events, ordered IDs, and stream
// termination once the campaign is done.
func TestHTTPSSEStream(t *testing.T) {
	_, srv := newTestServer(t, nil)
	base := srv.URL

	st := postCampaign(t, base, `{"tenant":"alice","runs":1,"pop_size":5,"generations":2,"base_seed":3}`)

	req, err := http.NewRequest(http.MethodGet, base+"/v1/campaigns/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	type frame struct {
		id    uint64
		event string
		data  service.Event
	}
	var frames []frame
	var cur frame
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			frames = append(frames, cur)
			cur = frame{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(frames) < 4 {
		t.Fatalf("only %d frames", len(frames))
	}
	if frames[0].event != "created" || frames[len(frames)-1].event != "done" {
		t.Fatalf("frame types: first=%s last=%s", frames[0].event, frames[len(frames)-1].event)
	}
	gens := 0
	for i, f := range frames {
		if f.id != f.data.Seq || (i > 0 && f.id <= frames[i-1].id) {
			t.Fatalf("frame %d: id %d, data seq %d, prev %d", i, f.id, f.data.Seq, frames[max(i-1, 0)].id)
		}
		if f.event == "generation" {
			gens++
			if f.data.Evals == 0 {
				t.Errorf("generation frame without eval count: %+v", f.data)
			}
		}
	}
	if gens != 3 {
		t.Fatalf("saw %d generation frames, want 3 (rounds 0..2)", gens)
	}

	// Reconnect with ?after=<mid-stream id>: only the tail replays.
	mid := frames[2].id
	req2, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/campaigns/%s/events?after=%d", base, st.ID, mid), nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Accept", "text/event-stream")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("id: %d\n", mid+1); !strings.HasPrefix(string(tail), want) {
		t.Fatalf("resumed stream starts %q, want prefix %q", tail[:min(len(tail), 20)], want)
	}
	if strings.Contains(string(tail), fmt.Sprintf("id: %d\n", mid)) {
		t.Fatal("resumed stream replayed already-delivered events")
	}
}
