package service_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ea"
	"repro/internal/service"
	"repro/internal/surrogate"
)

// getBytes fetches a URL's body verbatim.
func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// waitGensDone polls until the campaign has completed at least n
// offspring generations.
func waitGensDone(t *testing.T, base, id string, n int) {
	t.Helper()
	for i := 0; i < 4000; i++ {
		var st service.Status
		getJSON(t, base+"/v1/campaigns/"+id, &st)
		if st.GensDone >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("campaign %s never completed %d generations", id, n)
}

// soleCampaign returns the tenant's only campaign on the given service.
func soleCampaign(t *testing.T, svc *service.Service, tenant string) *service.Campaign {
	t.Helper()
	cs := svc.Campaigns(tenant)
	if len(cs) != 1 {
		t.Fatalf("tenant %s has %d campaigns, want 1", tenant, len(cs))
	}
	return cs[0]
}

// TestServiceBounceResumeByteIdenticalFrontier is the end-to-end
// checkpoint/resume contract: two tenants run campaigns against one
// LocalCluster fleet; the service is bounced mid-campaign (drain — the
// SIGTERM path in cmd/serve — then a fresh service restoring from the
// same checkpoint directory, while the worker fleet keeps running); and
// the resumed campaigns must finish with frontier and lcurve documents
// byte-identical to an uninterrupted service's, with zero completed
// generations lost at the bounce.
func TestServiceBounceResumeByteIdenticalFrontier(t *testing.T) {
	// One shared fleet for all three service instances, evaluating with
	// the deterministic surrogate slowed enough that the drain reliably
	// lands mid-campaign.
	sur := surrogate.NewEvaluator(surrogate.Config{Seed: 2023})
	slow := ea.EvaluatorFunc(func(ctx context.Context, g ea.Genome) (ea.Fitness, error) {
		time.Sleep(8 * time.Millisecond)
		return sur.Evaluate(ctx, g)
	})
	lc, err := cluster.NewLocalCluster(3, cluster.EvalHandler(slow), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := lc.Close(); err != nil {
			t.Logf("fleet close: %v", err)
		}
	}()

	specAlice := `{"tenant":"alice","name":"al","runs":1,"pop_size":6,"generations":5,"base_seed":11,"parallelism":3}`
	specBob := `{"tenant":"bob","name":"bo","runs":1,"pop_size":5,"generations":5,"base_seed":99,"parallelism":3}`

	newSvc := func(dir string) (*service.Service, *httptest.Server) {
		svc, err := service.New(service.Config{
			Evaluator:     &cluster.Evaluator{Client: lc.Client},
			CheckpointDir: dir,
			MaxConcurrent: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(srv.Close)
		return svc, srv
	}

	// Reference: an uninterrupted service runs both campaigns to done.
	refSvc, refSrv := newSvc("")
	refAlice := postCampaign(t, refSrv.URL, specAlice)
	refBob := postCampaign(t, refSrv.URL, specBob)
	waitStatusHTTP(t, refSrv.URL, refAlice.ID, service.StateDone)
	waitStatusHTTP(t, refSrv.URL, refBob.ID, service.StateDone)
	refFrontierAlice := getBytes(t, refSrv.URL+"/v1/campaigns/"+refAlice.ID+"/frontier")
	refFrontierBob := getBytes(t, refSrv.URL+"/v1/campaigns/"+refBob.ID+"/frontier")
	refLcurveAlice := getBytes(t, refSrv.URL+"/v1/campaigns/"+refAlice.ID+"/lcurve")
	_ = refSvc

	// Bounced: same specs into a checkpointing service, drained once both
	// campaigns are mid-flight with at least one completed generation.
	dir := t.TempDir()
	svc1, srv1 := newSvc(dir)
	bAlice := postCampaign(t, srv1.URL, specAlice)
	bBob := postCampaign(t, srv1.URL, specBob)
	waitGensDone(t, srv1.URL, bAlice.ID, 1)
	waitGensDone(t, srv1.URL, bBob.ID, 1)

	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc1.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	stAlice := soleCampaign(t, svc1, "alice").Status()
	stBob := soleCampaign(t, svc1, "bob").Status()
	if stAlice.State != service.StateSuspended {
		t.Fatalf("alice is %s after drain, want suspended mid-campaign (gens_done=%d)",
			stAlice.State, stAlice.GensDone)
	}
	if stBob.State != service.StateSuspended {
		t.Fatalf("bob is %s after drain, want suspended mid-campaign (gens_done=%d)",
			stBob.State, stBob.GensDone)
	}
	if stAlice.GensDone < 1 || stAlice.GensDone >= 5 {
		t.Fatalf("alice suspended at %d generations; the bounce must land mid-campaign", stAlice.GensDone)
	}

	// Restart: a fresh service restores from the checkpoint directory and
	// finishes both campaigns on the still-running fleet.
	svc2, srv2 := newSvc(dir)
	restored, err := svc2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored %d campaigns, want 2", restored)
	}
	rAlice := soleCampaign(t, svc2, "alice")
	rBob := soleCampaign(t, svc2, "bob")
	// Zero lost completed generations: the restored campaigns start from
	// exactly where the drain checkpointed them.
	if got := rAlice.Status().GensDone; got != stAlice.GensDone {
		t.Fatalf("alice restored at %d generations, checkpointed at %d", got, stAlice.GensDone)
	}
	if got := rBob.Status().GensDone; got != stBob.GensDone {
		t.Fatalf("bob restored at %d generations, checkpointed at %d", got, stBob.GensDone)
	}
	waitStatusHTTP(t, srv2.URL, rAlice.ID, service.StateDone)
	waitStatusHTTP(t, srv2.URL, rBob.ID, service.StateDone)

	// The resume contract itself: byte-identical frontier and lcurve
	// documents, as if the bounce never happened.
	gotFrontierAlice := getBytes(t, srv2.URL+"/v1/campaigns/"+rAlice.ID+"/frontier")
	gotFrontierBob := getBytes(t, srv2.URL+"/v1/campaigns/"+rBob.ID+"/frontier")
	gotLcurveAlice := getBytes(t, srv2.URL+"/v1/campaigns/"+rAlice.ID+"/lcurve")
	if string(gotFrontierAlice) != string(refFrontierAlice) {
		t.Errorf("alice frontier diverged after bounce:\nuninterrupted: %s\nresumed:       %s",
			refFrontierAlice, gotFrontierAlice)
	}
	if string(gotFrontierBob) != string(refFrontierBob) {
		t.Errorf("bob frontier diverged after bounce:\nuninterrupted: %s\nresumed:       %s",
			refFrontierBob, gotFrontierBob)
	}
	if string(gotLcurveAlice) != string(refLcurveAlice) {
		t.Errorf("alice lcurve diverged after bounce:\nuninterrupted: %s\nresumed:       %s",
			refLcurveAlice, gotLcurveAlice)
	}
}

// TestRestoreRegistersTerminalCampaigns checks that done campaigns stay
// queryable (frontier and all) across a bounce without being re-run.
func TestRestoreRegistersTerminalCampaigns(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*service.Service, *httptest.Server) {
		svc, err := service.New(service.Config{
			Evaluator:     surrogate.NewEvaluator(surrogate.Config{Seed: 2023}),
			CheckpointDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(srv.Close)
		return svc, srv
	}
	_, srv1 := mk()
	st := postCampaign(t, srv1.URL, `{"tenant":"alice","runs":1,"pop_size":5,"generations":1,"base_seed":5}`)
	waitStatusHTTP(t, srv1.URL, st.ID, service.StateDone)
	frontier := getBytes(t, srv1.URL+"/v1/campaigns/"+st.ID+"/frontier")
	evals := getJSONStatus(t, srv1.URL, st.ID).Evaluations

	svc2, srv2 := mk()
	restored, err := svc2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Fatalf("restored %d campaigns, want 0 (done is terminal)", restored)
	}
	got := getJSONStatus(t, srv2.URL, st.ID)
	if got.State != service.StateDone || got.Evaluations != evals {
		t.Fatalf("terminal campaign mangled by restore: %+v", got)
	}
	if f := getBytes(t, srv2.URL+"/v1/campaigns/"+st.ID+"/frontier"); string(f) != string(frontier) {
		t.Fatal("terminal campaign's frontier changed across restore")
	}
}

func getJSONStatus(t *testing.T, base, id string) service.Status {
	t.Helper()
	var st service.Status
	getJSON(t, base+"/v1/campaigns/"+id, &st)
	return st
}
