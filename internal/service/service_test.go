package service_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ea"
	"repro/internal/service"
	"repro/internal/surrogate"
)

// intp is shorthand for Spec.Generations pointers.
func intp(n int) *int { return &n }

// newTestService builds a service over the deterministic surrogate.
func newTestService(t *testing.T, mutate func(*service.Config)) *service.Service {
	t.Helper()
	cfg := service.Config{
		Evaluator: surrogate.NewEvaluator(surrogate.Config{Seed: 2023}),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// waitState polls until the campaign reaches one of the wanted states.
func waitState(t *testing.T, c *service.Campaign, want ...service.State) service.State {
	t.Helper()
	for i := 0; i < 4000; i++ {
		st := c.State()
		for _, w := range want {
			if st == w {
				return st
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s stuck in %s, wanted one of %v", c.ID, c.State(), want)
	return ""
}

func TestSpecValidation(t *testing.T) {
	svc := newTestService(t, nil)
	bad := []service.Spec{
		{},                                    // missing tenant
		{Tenant: "has space"},                 // bad charset
		{Tenant: strings.Repeat("x", 65)},     // too long
		{Tenant: "ok", Runs: 17},              // over run cap
		{Tenant: "ok", PopSize: 1024},         // over pop cap
		{Tenant: "ok", Generations: intp(-1)}, // negative gens
		{Tenant: "ok", AnnealFactor: -0.5},    // negative anneal
		{Tenant: "ok", Name: "bad name"},      // bad name charset
		{Tenant: "ok", EvalTimeoutMS: -1},     // negative timeout
	}
	for i, sp := range bad {
		if _, err := svc.Create(sp); err == nil {
			t.Errorf("spec %d accepted: %+v", i, sp)
		}
	}
	// Defaults: a bare tenant-only spec runs 1×20 for 3 generations.
	c, err := svc.Create(service.Spec{Tenant: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Generations != 3 || st.Name == "" {
		t.Fatalf("defaults not applied: %+v", st)
	}
	waitState(t, c, service.StateDone)
}

func TestCampaignRunsToDone(t *testing.T) {
	svc := newTestService(t, nil)
	c, err := svc.Create(service.Spec{
		Tenant: "alice", Name: "first", Runs: 1, PopSize: 6,
		Generations: intp(2), BaseSeed: 7, Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, service.StateDone)

	st := c.Status()
	if st.Evaluations != 6*3 { // pop × (gens+1 rounds)
		t.Errorf("evaluations = %d, want 18", st.Evaluations)
	}
	if st.GensDone != 2 || st.Frontier == 0 {
		t.Errorf("status = %+v", st)
	}
	lc := c.Lcurve()
	if len(lc) != 3 {
		t.Fatalf("lcurve has %d rounds, want 3", len(lc))
	}
	for _, p := range lc {
		if p.Evals != 6 {
			t.Errorf("round %d evaluated %d, want 6", p.Gen, p.Evals)
		}
	}
	// The ring must tell the whole story in order.
	evs := c.Events().Since(0)
	var types []string
	for _, e := range evs {
		types = append(types, e.Type)
	}
	want := []string{"created", "admitted", "generation", "generation", "generation", "done"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Errorf("event sequence %v, want %v", types, want)
	}
	if svc.EvaluationsTotal() == 0 {
		t.Error("backend evaluation counter never moved")
	}
}

// blockingEvaluator completes one evaluation per token sent to release,
// and honors cancellation while waiting.
type blockingEvaluator struct {
	release chan struct{}
	calls   int64
}

func (b *blockingEvaluator) Evaluate(ctx context.Context, g ea.Genome) (ea.Fitness, error) {
	atomic.AddInt64(&b.calls, 1)
	select {
	case <-b.release:
		return ea.Fitness{g[0], -g[0]}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// onePerCampaign are spec fields making a campaign cost exactly one
// evaluation (pop 1, generation 0 only), so a blockingEvaluator token
// completes exactly one campaign.
func onePerCampaign(tenant string, seed int64) service.Spec {
	return service.Spec{Tenant: tenant, Runs: 1, PopSize: 1, Generations: intp(0), BaseSeed: seed}
}

func TestTenantCampaignQuota(t *testing.T) {
	be := &blockingEvaluator{release: make(chan struct{})}
	svc := newTestService(t, func(cfg *service.Config) {
		cfg.Evaluator = be
		cfg.MaxCampaignsPerTenant = 2
	})
	if _, err := svc.Create(onePerCampaign("alice", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Create(onePerCampaign("alice", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Create(onePerCampaign("alice", 3)); err == nil {
		t.Fatal("third campaign admitted past a quota of 2")
	}
	// Another tenant's quota is untouched.
	if _, err := svc.Create(onePerCampaign("bob", 4)); err != nil {
		t.Fatalf("bob rejected by alice's quota: %v", err)
	}
	close(be.release)
}

func TestRoundRobinAdmission(t *testing.T) {
	be := &blockingEvaluator{release: make(chan struct{})}
	svc := newTestService(t, func(cfg *service.Config) {
		cfg.Evaluator = be
		cfg.MaxConcurrent = 1
		cfg.DisableMemo = true
	})
	// Alice floods first; bob arrives last.  With one slot, round-robin
	// must hand the second admission to bob, not alice's backlog.
	a1, err := svc.Create(onePerCampaign("alice", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a1, service.StateRunning)
	a2, err := svc.Create(onePerCampaign("alice", 2))
	if err != nil {
		t.Fatal(err)
	}
	a3, err := svc.Create(onePerCampaign("alice", 3))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := svc.Create(onePerCampaign("bob", 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*service.Campaign{a2, a3, b1} {
		if st := c.Status(); st.State != service.StateQueued {
			t.Fatalf("campaign %s is %s before any release", c.ID, st.State)
		}
	}
	for i := 0; i < 4; i++ {
		be.release <- struct{}{}
	}
	for _, c := range []*service.Campaign{a1, a2, a3, b1} {
		waitState(t, c, service.StateDone)
	}
	order := []int64{a1.Status().AdmitSeq, b1.Status().AdmitSeq, a2.Status().AdmitSeq, a3.Status().AdmitSeq}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("admission order a1,b1,a2,a3 violated: got seqs %v "+
				"(bob must preempt alice's backlog under round-robin)", order)
		}
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	be := &blockingEvaluator{release: make(chan struct{})}
	svc := newTestService(t, func(cfg *service.Config) {
		cfg.Evaluator = be
		cfg.MaxConcurrent = 1
	})
	running, err := svc.Create(onePerCampaign("alice", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, service.StateRunning)
	queued, err := svc.Create(onePerCampaign("alice", 2))
	if err != nil {
		t.Fatal(err)
	}

	if err := svc.Cancel(queued.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if st := queued.State(); st != service.StateCancelled {
		t.Fatalf("queued campaign is %s after cancel", st)
	}
	if err := svc.Cancel(running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	waitState(t, running, service.StateCancelled)
	if err := svc.Cancel(running.ID); err == nil {
		t.Fatal("double cancel must fail")
	}
	if err := svc.Cancel("no-such-id"); err == nil {
		t.Fatal("cancelling unknown campaign must fail")
	}
}

func TestFailedEvaluatorFailsNothing(t *testing.T) {
	// Evaluator errors become MAXINT fitness inside the EA, not campaign
	// failures: the campaign completes with failure counts recorded.
	failing := ea.EvaluatorFunc(func(ctx context.Context, g ea.Genome) (ea.Fitness, error) {
		return nil, errors.New("node fell over")
	})
	svc := newTestService(t, func(cfg *service.Config) { cfg.Evaluator = failing })
	c, err := svc.Create(service.Spec{Tenant: "alice", Runs: 1, PopSize: 3, Generations: intp(1)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, service.StateDone)
	if st := c.Status(); st.Failures != st.Evaluations || st.Failures == 0 {
		t.Fatalf("status = %+v, want all evaluations counted as failures", st)
	}
}

func TestDrainRejectsNewCampaigns(t *testing.T) {
	svc := newTestService(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Create(service.Spec{Tenant: "late"}); err == nil {
		t.Fatal("create during drain must be rejected")
	}
}

func TestInFlightQuotaBoundsConcurrency(t *testing.T) {
	var inflight, peak int64
	slow := ea.EvaluatorFunc(func(ctx context.Context, g ea.Genome) (ea.Fitness, error) {
		cur := atomic.AddInt64(&inflight, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt64(&inflight, -1)
		return ea.Fitness{g[0], -g[0]}, nil
	})
	svc := newTestService(t, func(cfg *service.Config) {
		cfg.Evaluator = slow
		cfg.MaxInFlightPerTenant = 2
		cfg.DisableMemo = true
	})
	c, err := svc.Create(service.Spec{
		Tenant: "alice", Runs: 1, PopSize: 8, Generations: intp(1), Parallelism: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, service.StateDone)
	if p := atomic.LoadInt64(&peak); p > 2 {
		t.Fatalf("peak in-flight %d exceeds tenant quota 2", p)
	}
}
