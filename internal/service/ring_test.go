package service_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/service"
)

func TestRingSequenceAndEviction(t *testing.T) {
	r := service.NewRing(4)
	for i := 0; i < 6; i++ {
		e := r.Append(service.Event{Type: "gen"})
		if e.Seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, e.Seq)
		}
	}
	evs := r.Since(0)
	if len(evs) != 4 {
		t.Fatalf("ring of 4 holds %d events", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+3) {
			t.Fatalf("event %d: seq %d, want %d (oldest two evicted)", i, e.Seq, i+3)
		}
	}
	if got := r.Since(5); len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("Since(5) = %+v, want single seq-6 event", got)
	}
	if got := r.Since(6); len(got) != 0 {
		t.Fatalf("Since(6) = %+v, want empty", got)
	}
}

func TestRingNextWakesOnAppend(t *testing.T) {
	r := service.NewRing(8)
	done := make(chan []service.Event, 1)
	go func() {
		evs, err := r.Next(context.Background(), 0)
		if err != nil {
			t.Errorf("Next: %v", err)
		}
		done <- evs
	}()
	// Next may or may not be blocked yet; Append's close-and-replace wake
	// guarantees no lost wakeup either way.
	r.Append(service.Event{Type: "created"})
	select {
	case evs := <-done:
		if len(evs) != 1 || evs[0].Type != "created" {
			t.Fatalf("woke with %+v", evs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke after Append")
	}
}

func TestRingNextHonorsContext(t *testing.T) {
	r := service.NewRing(8)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := r.Next(ctx, 0); err == nil {
		t.Fatal("Next on an empty ring must fail when ctx expires")
	}
}

func TestRingWaitChCapturedBeforeSince(t *testing.T) {
	r := service.NewRing(8)
	ch := r.WaitCh()
	r.Append(service.Event{Type: "x"})
	select {
	case <-ch:
	default:
		t.Fatal("channel captured before Append must be closed by it")
	}
}
