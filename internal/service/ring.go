package service

import (
	"context"
	"sync"
	"time"
)

// Event is one campaign lifecycle occurrence, delivered to API clients
// over SSE or long-poll.  Seq is a per-campaign monotonic sequence
// number (starting at 1) that doubles as the SSE event ID, so clients
// resume a dropped stream with ?after=<last seq>.  Events live in a
// bounded per-campaign ring and are per-process: sequence numbers reset
// when the service restarts.
type Event struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	Type     string    `json:"type"`
	Campaign string    `json:"campaign"`
	Gen      int       `json:"gen,omitempty"`
	Evals    int       `json:"evals,omitempty"`
	Failures int       `json:"failures,omitempty"`
	Frontier int       `json:"frontier,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// Ring is a bounded, broadcast-capable event buffer.  Appends assign
// sequence numbers and evict the oldest events once full; readers poll
// Since for history and block on WaitCh (a close-on-append channel) for
// new arrivals.  The close-and-replace wake channel gives every blocked
// reader a level-triggered signal with no per-subscriber bookkeeping.
type Ring struct {
	mu    sync.Mutex
	buf   []Event // circular storage
	head  int     // index of the oldest event
	count int
	next  uint64        // sequence number the next Append receives
	wake  chan struct{} // closed and replaced on every Append
}

// NewRing returns a ring holding at most n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n), next: 1, wake: make(chan struct{})}
}

// Append stamps e with the next sequence number, stores it (evicting the
// oldest event when full) and wakes all blocked readers.  The stamped
// event is returned.
func (r *Ring) Append(e Event) Event {
	r.mu.Lock()
	e.Seq = r.next
	r.next++
	tail := (r.head + r.count) % len(r.buf)
	r.buf[tail] = e
	if r.count < len(r.buf) {
		r.count++
	} else {
		r.head = (r.head + 1) % len(r.buf)
	}
	wake := r.wake
	r.wake = make(chan struct{})
	r.mu.Unlock()
	close(wake)
	return e
}

// Since returns, oldest first, every buffered event with Seq > after.
// Events evicted from the ring are silently absent — clients that lag
// more than the buffer size lose the gap, which the bounded-memory
// contract accepts.
func (r *Ring) Since(after uint64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.count)
	for i := 0; i < r.count; i++ {
		e := r.buf[(r.head+i)%len(r.buf)]
		if e.Seq > after {
			out = append(out, e)
		}
	}
	return out
}

// WaitCh returns a channel closed by the next Append.  To avoid lost
// wakeups, capture the channel BEFORE calling Since: any event appended
// after the capture closes the captured channel, even if a later Append
// has already replaced it.
func (r *Ring) WaitCh() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wake
}

// Next blocks until at least one event with Seq > after exists (or ctx
// ends) and returns the batch.  It is the long-poll primitive.
func (r *Ring) Next(ctx context.Context, after uint64) ([]Event, error) {
	for {
		ch := r.WaitCh()
		if evs := r.Since(after); len(evs) > 0 {
			return evs, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ch:
		}
	}
}
