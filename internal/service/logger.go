package service

import (
	"fmt"
	"strings"
)

// logf emits one structured key=value line through cfg.Logf: the event
// name first, then alternating key/value pairs.  Values are formatted
// with %v and quoted when they contain spaces, so lines stay
// grep-and-split friendly: `campaign_done id=3f2a… tenant=alice`.
func (s *Service) logf(event string, kv ...interface{}) {
	if s.cfg.Logf == nil {
		return
	}
	s.cfg.Logf("%s", formatKV(event, kv...))
}

func formatKV(event string, kv ...interface{}) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", event)
	for i := 0; i+1 < len(kv); i += 2 {
		val := fmt.Sprintf("%v", kv[i+1])
		if strings.ContainsAny(val, " \t\n\"=") {
			val = fmt.Sprintf("%q", val)
		}
		fmt.Fprintf(&b, " %v=%s", kv[i], val)
	}
	if len(kv)%2 == 1 {
		fmt.Fprintf(&b, " !dangling=%v", kv[len(kv)-1])
	}
	return b.String()
}
