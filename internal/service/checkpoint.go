package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/hpo"
)

// Checkpoints are one JSON file per campaign — service metadata wrapped
// around the standard hpo campaign format — rewritten atomically
// (write-temp-then-rename) after every completed generation and on every
// state change.  Because campaign execution is legged with
// restart-invariant seeds (see Campaign run), a checkpoint taken at any
// generation boundary resumes onto exactly the trajectory an
// uninterrupted run would have taken: a bounce loses at most the
// in-flight generation's work, never a completed generation, and never
// changes the final frontier.

const (
	checkpointFormat  = "repro-service-campaign"
	checkpointVersion = 1
)

type checkpointMeta struct {
	ID      string    `json:"id"`
	Tenant  string    `json:"tenant"`
	Created time.Time `json:"created"`
	Spec    Spec      `json:"spec"`
	State   State     `json:"state"`
	Error   string    `json:"error,omitempty"`
}

type checkpointFile struct {
	Format  string         `json:"format"`
	Version int            `json:"version"`
	Meta    checkpointMeta `json:"meta"`
	// Campaign is the raw hpo.SaveCampaign document; absent before the
	// first completed generation.
	Campaign json.RawMessage `json:"campaign,omitempty"`
}

// checkpoint persists c to CheckpointDir/<id>.json; a no-op without a
// checkpoint directory.
func (s *Service) checkpoint(c *Campaign) error {
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	c.mu.Lock()
	cf := checkpointFile{
		Format:  checkpointFormat,
		Version: checkpointVersion,
		Meta: checkpointMeta{
			ID:      c.ID,
			Tenant:  c.Tenant,
			Created: c.Created,
			Spec:    c.Spec,
			State:   c.state,
			Error:   c.errMsg,
		},
	}
	res := c.result
	c.mu.Unlock()

	if res != nil {
		var buf bytes.Buffer
		if err := hpo.SaveCampaign(&buf, res); err != nil {
			return fmt.Errorf("service: checkpoint %s: %w", c.ID, err)
		}
		cf.Campaign = json.RawMessage(buf.Bytes())
	}
	data, err := json.Marshal(&cf)
	if err != nil {
		return fmt.Errorf("service: checkpoint %s: %w", c.ID, err)
	}
	path := filepath.Join(s.cfg.CheckpointDir, c.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Restore loads every checkpoint from CheckpointDir into the registry
// and requeues the resumable ones (queued, running or suspended at
// checkpoint time — "running" means the previous process died without
// draining).  Terminal campaigns are registered read-only so clients can
// still fetch their frontiers and results.  Call once, after New and
// before serving traffic.  It returns the number of campaigns requeued.
func (s *Service) Restore() (int, error) {
	if s.cfg.CheckpointDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}

	type loadedCampaign struct {
		meta checkpointMeta
		res  *hpo.CampaignResult
	}
	var loaded []loadedCampaign
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.cfg.CheckpointDir, name))
		if err != nil {
			return 0, err
		}
		var cf checkpointFile
		if err := json.Unmarshal(data, &cf); err != nil {
			return 0, fmt.Errorf("service: checkpoint %s: %w", name, err)
		}
		if cf.Format != checkpointFormat {
			return 0, fmt.Errorf("service: checkpoint %s: not a service checkpoint (format %q)", name, cf.Format)
		}
		if cf.Version != checkpointVersion {
			return 0, fmt.Errorf("service: checkpoint %s: unsupported version %d", name, cf.Version)
		}
		if err := (&cf.Meta.Spec).validate(); err != nil {
			return 0, fmt.Errorf("service: checkpoint %s: %w", name, err)
		}
		lc := loadedCampaign{meta: cf.Meta}
		if len(cf.Campaign) > 0 {
			lc.res, err = hpo.LoadCampaign(bytes.NewReader(cf.Campaign))
			if err != nil {
				return 0, fmt.Errorf("service: checkpoint %s: %w", name, err)
			}
		}
		loaded = append(loaded, lc)
	}
	// Recover the original admission order: creation time, then ID as the
	// tiebreak, so fairness after a bounce matches fairness before it.
	sort.Slice(loaded, func(i, j int) bool {
		if !loaded[i].meta.Created.Equal(loaded[j].meta.Created) {
			return loaded[i].meta.Created.Before(loaded[j].meta.Created)
		}
		return loaded[i].meta.ID < loaded[j].meta.ID
	})

	requeued := 0
	var resumed []*Campaign
	s.mu.Lock()
	for _, lc := range loaded {
		if _, exists := s.campaigns[lc.meta.ID]; exists {
			continue
		}
		c := &Campaign{
			ID:      lc.meta.ID,
			Tenant:  lc.meta.Tenant,
			Spec:    lc.meta.Spec,
			Created: lc.meta.Created,
			ring:    NewRing(s.cfg.EventBuffer),
			result:  lc.res,
			errMsg:  lc.meta.Error,
		}
		s.campaigns[c.ID] = c
		s.order = append(s.order, c.ID)
		t := s.tenantLocked(c.Tenant)
		if lc.meta.State.Terminal() {
			c.state = lc.meta.State
			continue
		}
		c.state = StateQueued
		t.total++
		t.queue = append(t.queue, c)
		requeued++
		resumed = append(resumed, c)
	}
	s.mu.Unlock()

	for _, c := range resumed {
		c.emit(Event{Type: "restored", Gen: func() int {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.gensDoneLocked()
		}()})
		s.logf("campaign_restored", "id", c.ID, "tenant", c.Tenant)
	}
	s.logf("restore_done", "loaded", len(loaded), "requeued", requeued)

	s.mu.Lock()
	s.dispatchLocked()
	s.mu.Unlock()
	return requeued, nil
}
