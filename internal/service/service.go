// Package service is the long-running, multi-tenant HPO control plane:
// the promotion of the one-shot cmd/hpo / cmd/cluster-drive binaries
// into an always-on campaign service, the operational pattern behind the
// paper's chained 12-hour Summit submissions (§2.2.5) run as a product
// instead of a batch script.
//
// Clients create campaigns over an HTTP/JSON API, poll or stream
// per-generation events (SSE with a long-poll fallback), and fetch
// frontiers and full campaign records.  Every campaign shares one
// elastic worker fleet through the configured evaluator — typically a
// cluster client in front of the lease scheduler, wrapped in the shared
// genome-keyed memo cache — while keeping its own RNG stream, EA context
// and event ring.
//
// Execution is *legged*: each campaign advances one offspring generation
// per leg via hpo.RunCampaign (generation 0) and hpo.ResumeCampaign
// (every later generation), checkpointing after every leg.  Because each
// leg's RNG seed is derived from (BaseSeed, run, gensDone) alone, the
// result of a campaign is a pure function of its spec — independent of
// where process restarts fall — so a scheduler bounce or deploy loses at
// most the in-flight generation and the resumed frontier is byte-
// identical to an uninterrupted run's.
package service

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/mux"
	"repro/internal/ea"
	"repro/internal/uuid"
)

// now is the package's single sanctioned wall-clock source; it feeds
// event timestamps and log lines — operational telemetry that never
// reaches campaign results.  A variable so tests can freeze it.
//
//lint:ignore determinism event/log timestamps are ops telemetry only; campaign results never read the clock
var now = time.Now

// Config parameterizes a Service.
type Config struct {
	// Evaluator is the shared backend that scores genomes — a
	// cluster.Evaluator in front of the lease scheduler in production, a
	// surrogate in tests.  It must be safe for concurrent use.
	Evaluator ea.Evaluator
	// DisableMemo turns off the shared genome-keyed memo cache.
	DisableMemo bool
	// CheckpointDir, when non-empty, persists every campaign (spec +
	// full result so far) after each generation; Restore resumes them.
	CheckpointDir string
	// MaxConcurrent caps campaigns running at once (default 4).
	MaxConcurrent int
	// MaxActivePerTenant caps one tenant's running campaigns (default 2).
	MaxActivePerTenant int
	// MaxCampaignsPerTenant caps one tenant's queued+running campaigns;
	// creation beyond it is rejected with 429 (default 16).
	MaxCampaignsPerTenant int
	// MaxInFlightPerTenant caps one tenant's concurrent evaluation
	// requests against the shared fleet (default 64).
	MaxInFlightPerTenant int
	// EventBuffer is the per-campaign event-ring capacity (default 256).
	EventBuffer int
	// Logf, if non-nil, receives structured key=value log lines.
	Logf func(format string, args ...interface{})
	// SchedulerStats, if non-nil, feeds lease-scheduler counters into
	// /metrics (wire it to Scheduler.Stats + Scheduler.WorkerStats).
	SchedulerStats func() (cluster.Stats, []cluster.WorkerStats)
	// SchedulerEvents, if non-nil, feeds scheduler lifecycle-event
	// counts into /metrics (wire it to Scheduler.OnEvent).
	SchedulerEvents *cluster.EventCounters
	// SchedulerWire, if non-nil, feeds transport-level frame/byte/error
	// counters into /metrics (wire it to Scheduler.Wire, or Client.Wire
	// for a remote backend).
	SchedulerWire func() cluster.WireStats
	// SchedulerQueue, if non-nil, feeds per-shard pending-queue depths
	// into /metrics (wire it to Scheduler.QueueDepths).
	SchedulerQueue func() []int
	// SchedulerMux, if non-nil, feeds mux session/stream/coalescing
	// counters into /metrics (wire it to Scheduler.Mux, or
	// MuxDialer.Stats for a remote backend dialing through a mux pool).
	SchedulerMux func() mux.Stats
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxActivePerTenant <= 0 {
		cfg.MaxActivePerTenant = 2
	}
	if cfg.MaxCampaignsPerTenant <= 0 {
		cfg.MaxCampaignsPerTenant = 16
	}
	if cfg.MaxInFlightPerTenant <= 0 {
		cfg.MaxInFlightPerTenant = 64
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 256
	}
	return cfg
}

// tenant is one client namespace sharing the fleet.
type tenant struct {
	name      string
	queue     []*Campaign   // admission FIFO
	active    int           // campaigns currently running
	total     int           // queued + running (quota basis)
	lastAdmit int64         // admitSeq of this tenant's latest admission
	gate      chan struct{} // in-flight evaluation semaphore
}

// Service owns the campaign registry, the admission loop and the shared
// evaluator chain.  Lock order: Service.mu before Campaign.mu; never the
// reverse.
type Service struct {
	cfg        Config
	memo       *ea.MemoEvaluator
	eval       ea.Evaluator // shared chain: memo? → counting → backend
	evalsTotal int64        // atomic: evaluations dispatched to the backend

	mu          sync.Mutex
	campaigns   map[string]*Campaign
	order       []string // campaign IDs in creation order
	tenants     map[string]*tenant
	tenantOrder []string // sorted tenant names: the fair-admission universe
	active      int      // campaigns running now
	admitSeq    int64    // admission counter (fairness-observable)
	draining    bool
	wg          sync.WaitGroup
}

// New builds a Service.  cfg.Evaluator is required.
func New(cfg Config) (*Service, error) {
	if cfg.Evaluator == nil {
		return nil, fmt.Errorf("service: Config.Evaluator is required")
	}
	cfg = cfg.withDefaults()
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: checkpoint dir: %w", err)
		}
	}
	s := &Service{
		cfg:       cfg,
		campaigns: make(map[string]*Campaign),
		tenants:   make(map[string]*tenant),
	}
	s.eval = countingEvaluator{inner: cfg.Evaluator, n: &s.evalsTotal}
	if !cfg.DisableMemo {
		s.memo = ea.NewMemoEvaluator(s.eval)
		s.eval = s.memo
	}
	return s, nil
}

// countingEvaluator counts evaluations that actually reach the backend
// (memo hits never get here): the /metrics eval-throughput counter.
type countingEvaluator struct {
	inner ea.Evaluator
	n     *int64
}

func (c countingEvaluator) Evaluate(ctx context.Context, g ea.Genome) (ea.Fitness, error) {
	atomic.AddInt64(c.n, 1)
	return c.inner.Evaluate(ctx, g)
}

// gatedEvaluator enforces a tenant's in-flight evaluation quota in front
// of the shared chain.
type gatedEvaluator struct {
	inner ea.Evaluator
	gate  chan struct{}
}

func (g gatedEvaluator) Evaluate(ctx context.Context, genome ea.Genome) (ea.Fitness, error) {
	select {
	case g.gate <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-g.gate }()
	return g.inner.Evaluate(ctx, genome)
}

// tenantLocked returns (creating if needed) the tenant record.  Caller
// holds s.mu.
func (s *Service) tenantLocked(name string) *tenant {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	t := &tenant{name: name, gate: make(chan struct{}, s.cfg.MaxInFlightPerTenant)}
	s.tenants[name] = t
	i := sort.SearchStrings(s.tenantOrder, name)
	s.tenantOrder = append(s.tenantOrder, "")
	copy(s.tenantOrder[i+1:], s.tenantOrder[i:])
	s.tenantOrder[i] = name
	return t
}

// Create registers a campaign and queues it for admission.  It is the
// programmatic form of POST /v1/campaigns.
func (s *Service) Create(spec Spec) (*Campaign, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	c := &Campaign{
		ID:      uuid.New().String(),
		Tenant:  spec.Tenant,
		Spec:    spec,
		Created: now(),
		ring:    NewRing(s.cfg.EventBuffer),
		state:   StateQueued,
	}
	if c.Spec.Name == "" {
		c.Spec.Name = c.ID[:8]
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	t := s.tenantLocked(spec.Tenant)
	if t.total >= s.cfg.MaxCampaignsPerTenant {
		s.mu.Unlock()
		return nil, quotaError{tenant: spec.Tenant, limit: s.cfg.MaxCampaignsPerTenant}
	}
	t.total++
	t.queue = append(t.queue, c)
	s.campaigns[c.ID] = c
	s.order = append(s.order, c.ID)
	s.mu.Unlock()

	c.emit(Event{Type: "created", Detail: spec.Name})
	s.logf("campaign_created", "id", c.ID, "tenant", c.Tenant, "name", c.Spec.Name,
		"runs", c.Spec.Runs, "pop", c.Spec.PopSize, "gens", c.Spec.gens())
	if err := s.checkpoint(c); err != nil {
		s.logf("checkpoint_error", "id", c.ID, "err", err)
	}

	s.mu.Lock()
	s.dispatchLocked()
	s.mu.Unlock()
	return c, nil
}

// dispatchLocked admits queued campaigns while capacity remains,
// round-robin across tenants: each slot goes to the least-recently
// admitted tenant with eligible work (ties broken by name), so one
// chatty tenant cannot starve the rest, and a tenant that appears
// mid-stream slots in immediately rather than waiting a full cycle.
// Caller holds s.mu.
func (s *Service) dispatchLocked() {
	for s.active < s.cfg.MaxConcurrent && !s.draining {
		var best *tenant
		for _, name := range s.tenantOrder { // ascending name = stable tiebreak
			t := s.tenants[name]
			if len(t.queue) == 0 || t.active >= s.cfg.MaxActivePerTenant {
				continue
			}
			if best == nil || t.lastAdmit < best.lastAdmit {
				best = t
			}
		}
		if best == nil {
			return
		}
		c := best.queue[0]
		best.queue = best.queue[1:]
		best.active++
		s.active++
		s.admitSeq++
		best.lastAdmit = s.admitSeq
		ctx, cancel := context.WithCancel(context.Background())
		c.mu.Lock()
		c.state = StateRunning
		c.cancel = cancel
		c.admitSeq = s.admitSeq
		c.mu.Unlock()
		s.wg.Add(1)
		go s.run(ctx, c, best)
	}
}

// release returns a finished campaign's capacity and re-dispatches.
func (s *Service) release(c *Campaign, t *tenant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active--
	t.active--
	if c.State().Terminal() {
		t.total--
	}
	s.dispatchLocked()
}

// Campaign looks a campaign up by ID.
func (s *Service) Campaign(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// Campaigns returns all campaigns in creation order, optionally filtered
// by tenant.
func (s *Service) Campaigns(tenantFilter string) []*Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Campaign, 0, len(s.order))
	for _, id := range s.order {
		c := s.campaigns[id]
		if tenantFilter != "" && c.Tenant != tenantFilter {
			continue
		}
		out = append(out, c)
	}
	return out
}

// Cancel stops a campaign: a queued one is removed from its tenant's
// admission queue; a running one has its leg context cancelled and
// finishes as cancelled after the in-flight generation aborts.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	if !ok {
		s.mu.Unlock()
		return errUnknownCampaign
	}
	c.mu.Lock()
	switch c.state {
	case StateQueued:
		t := s.tenants[c.Tenant]
		for i, qc := range t.queue {
			if qc == c {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				break
			}
		}
		t.total--
		c.state = StateCancelled
		c.mu.Unlock()
		s.mu.Unlock()
		c.emit(Event{Type: "cancelled"})
		s.logf("campaign_cancelled", "id", c.ID, "tenant", c.Tenant, "while", "queued")
		if err := s.checkpoint(c); err != nil {
			s.logf("checkpoint_error", "id", c.ID, "err", err)
		}
		return nil
	case StateRunning:
		c.cancelled = true
		cancel := c.cancel
		c.mu.Unlock()
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		st := c.state
		c.mu.Unlock()
		s.mu.Unlock()
		return fmt.Errorf("service: campaign %s already %s", id, st)
	}
}

// Drain stops admission, cancels the in-flight leg of every running
// campaign and waits for the runners to checkpoint and exit.  After
// Drain returns, every non-terminal campaign has a checkpoint from which
// Restore continues it with zero completed generations lost.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	var cancels []context.CancelFunc
	for _, id := range s.order {
		c := s.campaigns[id]
		c.mu.Lock()
		if c.state == StateRunning && c.cancel != nil {
			cancels = append(cancels, c.cancel)
		}
		c.mu.Unlock()
	}
	s.mu.Unlock()

	s.logf("drain_begin", "running", len(cancels))
	for _, cancel := range cancels {
		cancel()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
	s.logf("drain_done")
	return nil
}

// EvaluationsTotal reports evaluations dispatched to the backend.
func (s *Service) EvaluationsTotal() int64 { return atomic.LoadInt64(&s.evalsTotal) }

// MemoStats returns the shared memo-cache counters (zero when disabled).
func (s *Service) MemoStats() ea.MemoStats {
	if s.memo == nil {
		return ea.MemoStats{}
	}
	return s.memo.Stats()
}
