package refcheck

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

// TestHypervolumeMatchesSweepOracle cross-checks the production
// staircase hypervolume against the independent breakpoint-integration
// oracle over randomized bi-objective instances: duplicated points,
// points outside the reference box, points exactly on the reference
// point, MAXINT failures and non-finite fitnesses.  The two algorithms
// sum different rectangle decompositions, so agreement is checked to a
// tight relative tolerance rather than bit-for-bit.
func TestHypervolumeMatchesSweepOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	const instances = 250
	for trial := 0; trial < instances; trial++ {
		n := rng.Intn(60)
		fits := randFitnesses(rng, n, 2, 0.1, 0.1)
		// Push some points onto and beyond the reference boundary.
		ref := ea.Fitness{0.5 + rng.Float64()*4, 0.5 + rng.Float64()*4}
		for i := range fits {
			if broken(fits[i]) || fits[i].IsFailure() {
				continue
			}
			switch rng.Intn(8) {
			case 0:
				fits[i][0] = ref[0]
			case 1:
				fits[i][1] = ref[1]
			case 2:
				fits[i] = ea.Fitness{ref[0], ref[1]}
			}
		}
		want := Hypervolume2D(fits, ref)
		got := nsga2.Hypervolume2D(popOf(fits), ref)
		tol := 1e-12 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("trial %d (n=%d ref=%v): Hypervolume2D = %.17g, oracle %.17g", trial, n, ref, got, want)
		}
		if got < 0 {
			t.Fatalf("trial %d: negative hypervolume %v", trial, got)
		}
	}
}

// TestHypervolumeMCAgreesWithOracle sanity-checks the Monte Carlo
// estimator against the exact oracle on a few instances — loose
// tolerance, but an independent path through the same geometry.
func TestHypervolumeMCAgreesWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(25)
		fits := make([]ea.Fitness, n)
		for i := range fits {
			fits[i] = ea.Fitness{rng.Float64(), rng.Float64()}
		}
		ref := ea.Fitness{1, 1}
		exact := Hypervolume2D(fits, ref)
		mc := nsga2.HypervolumeMC(popOf(fits), ref, 200000, int64(trial))
		if math.Abs(mc-exact) > 0.03*(exact+0.01) {
			t.Fatalf("trial %d: MC %v vs oracle %v", trial, mc, exact)
		}
	}
}
