package refcheck

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/deepmd"
	"repro/internal/descriptor"
	"repro/internal/nn"
)

// smoothActivations excludes relu/relu6: central differences straddling
// a kink measure the subgradient average, not the analytic derivative.
var smoothActivations = []nn.Activation{nn.Tanh, nn.Sigmoid, nn.Softplus}

// randSystem draws a small configuration with a minimum pair separation
// so finite differences are not dominated by switching-function
// curvature from nearly coincident atoms.
func randSystem(rng *rand.Rand, nAtoms, nSpecies int, box float64) (coord []float64, types []int) {
	coord = make([]float64, 3*nAtoms)
	types = make([]int, nAtoms)
	span := box
	if span <= 0 {
		span = 6
	}
	for i := 0; i < nAtoms; i++ {
		types[i] = rng.Intn(nSpecies)
	retry:
		for attempt := 0; ; attempt++ {
			for k := 0; k < 3; k++ {
				coord[3*i+k] = rng.Float64() * span
			}
			if attempt > 200 {
				break
			}
			for j := 0; j < i; j++ {
				var d2 float64
				for k := 0; k < 3; k++ {
					dk := coord[3*i+k] - coord[3*j+k]
					if box > 0 {
						dk -= box * math.Round(dk/box)
					}
					d2 += dk * dk
				}
				if d2 < 0.8*0.8 {
					continue retry
				}
			}
			break
		}
	}
	return coord, types
}

func randTinyModel(rng *rand.Rand) (*deepmd.Model, int) {
	nSpecies := 1 + rng.Intn(2)
	act := smoothActivations[rng.Intn(len(smoothActivations))]
	cfg := deepmd.ModelConfig{
		Descriptor: descriptor.Config{
			RCut:           3 + rng.Float64(),
			RCutSmth:       0.5 + rng.Float64()*0.5,
			EmbeddingSizes: []int{2 + rng.Intn(3), 4},
			AxisNeurons:    1 + rng.Intn(2),
			Activation:     act,
			NumSpecies:     nSpecies,
			NeighborNorm:   6,
		},
		FittingSizes:      []int{3 + rng.Intn(4)},
		FittingActivation: act,
		NumSpecies:        nSpecies,
	}
	m, err := deepmd.NewModel(rng, cfg)
	if err != nil {
		panic(err)
	}
	return m, nSpecies
}

func fdTol(analytic float64) float64 {
	return 1e-6 * (1 + math.Abs(analytic))
}

// TestForcesMatchFiniteDifferences cross-checks the reverse-mode forces
// from EnergyForces against central finite differences of Energy over
// 200 random tiny systems — open and periodic boxes, mixed species,
// every smooth activation.  A handful of random force components are
// probed per instance.
func TestForcesMatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	const instances = 200
	const h = 1e-5
	for trial := 0; trial < instances; trial++ {
		m, nSpecies := randTinyModel(rng)
		nAtoms := 3 + rng.Intn(4)
		var box float64
		if rng.Intn(3) > 0 {
			box = 5 + rng.Float64()*3
		}
		coord, types := randSystem(rng, nAtoms, nSpecies, box)

		energy, forces := m.EnergyForces(coord, types, box)
		if e2 := m.Energy(coord, types, box); e2 != energy {
			t.Fatalf("trial %d: Energy %v disagrees with EnergyForces energy %v", trial, e2, energy)
		}
		for probe := 0; probe < 3; probe++ {
			k := rng.Intn(3 * nAtoms)
			want := ForceFD(m, coord, types, box, k, h)
			if math.Abs(forces[k]-want) > fdTol(want) {
				t.Fatalf("trial %d (box=%g, %d atoms): force[%d] = %v, finite difference %v",
					trial, box, nAtoms, k, forces[k], want)
			}
		}
	}
}

// TestParamGradMatchesFiniteDifferences cross-checks the reverse-mode
// parameter gradient of the total energy (AccumulateEnergyGrad with
// scale 1) against central finite differences under parameter
// perturbation, probing random entries across embedding and fitting
// networks of 200 random tiny models.
func TestParamGradMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	const instances = 200
	const h = 1e-5
	for trial := 0; trial < instances; trial++ {
		m, nSpecies := randTinyModel(rng)
		nAtoms := 3 + rng.Intn(3)
		var box float64
		if rng.Intn(3) == 0 {
			box = 5 + rng.Float64()*3
		}
		coord, types := randSystem(rng, nAtoms, nSpecies, box)

		m.ZeroGrad()
		m.AccumulateEnergyGrad(coord, types, box, 1)
		params := m.Params()
		for probe := 0; probe < 3; probe++ {
			p := rng.Intn(len(params))
			if len(params[p].Param) == 0 {
				continue
			}
			j := rng.Intn(len(params[p].Param))
			got := params[p].Grad[j]
			want := ParamGradFD(m, coord, types, box, p, j, h)
			if math.Abs(got-want) > fdTol(want) {
				t.Fatalf("trial %d: grad of param[%d][%d] = %v, finite difference %v",
					trial, p, j, got, want)
			}
		}
	}
}
