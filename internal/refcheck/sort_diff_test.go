package refcheck

import (
	"math/rand"
	"testing"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

// TestSortsMatchBruteOracle cross-checks all three production
// non-dominated sorts against the O(N³·M) peeling oracle over hundreds of
// randomized instances, including duplicate objective vectors, MAXINT
// failures, NaN/Inf objectives and empty populations.
func TestSortsMatchBruteOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	sorts := map[string]nsga2.SortFunc{
		"FastNonDominatedSort": nsga2.FastNonDominatedSort,
		"RankOrdinalSort":      nsga2.RankOrdinalSort,
		"TwoObjectiveSort":     nsga2.TwoObjectiveSort,
	}
	const instances = 250
	for trial := 0; trial < instances; trial++ {
		n := rng.Intn(81) // includes the empty population
		m := 2 + rng.Intn(3)
		fits := randFitnesses(rng, n, m, 0.1, 0.1)
		want := ParetoRanks(fits)

		for name, fn := range sorts {
			if name == "TwoObjectiveSort" && m != 2 {
				continue
			}
			pop := popOf(fits)
			fronts := fn(pop)
			total := 0
			for fi, front := range fronts {
				total += len(front)
				for _, ind := range front {
					if ind.Rank != fi {
						t.Fatalf("trial %d: %s stored rank %d for a member of front %d", trial, name, ind.Rank, fi)
					}
				}
			}
			if total != n {
				t.Fatalf("trial %d: %s fronts cover %d of %d members", trial, name, total, n)
			}
			for i, ind := range pop {
				if ind.Rank != want[i] {
					t.Fatalf("trial %d: %s rank[%d] = %d, oracle %d (fitness %v, n=%d m=%d)",
						trial, name, i, ind.Rank, want[i], fits[i], n, m)
				}
			}
		}
	}
}

// TestNonDominatedMatchesOracleFrontZero checks the frontier extraction
// the paper's Fig. 2 uses against the oracle's rank-0 layer.
func TestNonDominatedMatchesOracleFrontZero(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		fits := randFitnesses(rng, n, 2, 0.15, 0.15)
		ranks := ParetoRanks(fits)
		pop := popOf(fits)
		nd := nsga2.NonDominated(pop)
		inND := map[*ea.Individual]bool{}
		for _, ind := range nd {
			inND[ind] = true
		}
		for i, ind := range pop {
			if inND[ind] != (ranks[i] == 0) {
				t.Fatalf("trial %d: member %d (fitness %v, oracle rank %d) NonDominated=%v",
					trial, i, fits[i], ranks[i], inND[ind])
			}
		}
	}
}
