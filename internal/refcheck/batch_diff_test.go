package refcheck

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/ea"
	"repro/internal/nn"
)

// TestBatchedMLPMatchesScalarBitwise is the differential check behind the
// batched-kernel contract: for randomized network shapes and batch sizes
// — including N=0, N=1, and ragged last tiles — ForwardBatch,
// BackwardBatch, and InputGradBatch must be bit-identical to replaying
// the rows one at a time through the scalar Forward/Backward/InputGrad
// path, outputs and every accumulated parameter gradient alike.
func TestBatchedMLPMatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		n, in  int
		hidden []int
		out    int
		act    nn.Activation
	}{
		{0, 4, []int{6}, 2, nn.Tanh},
		{1, 1, nil, 1, nn.Tanh},
		{1, 5, []int{7, 3}, 2, nn.Sigmoid},
		{3, 8, []int{9}, 4, nn.ReLU6},
		{4, 6, []int{5, 5}, 1, nn.Softplus},
		{5, 3, []int{4}, 3, nn.Tanh},   // ragged: one full tile + 1
		{7, 10, []int{12}, 6, nn.Tanh}, // ragged: one full tile + 3
		{16, 4, []int{8}, 2, nn.Sigmoid},
		{19, 7, []int{6, 6}, 5, nn.Tanh},
	}
	for _, tc := range cases {
		// Two models with identical parameters: one driven batched, one
		// scalar, so gradient accumulators can be compared afterwards.
		batched := nn.NewMLP(rand.New(rand.NewSource(99)), tc.in, tc.hidden, tc.out, tc.act)
		scalar := nn.NewMLP(rand.New(rand.NewSource(99)), tc.in, tc.hidden, tc.out, tc.act)

		x := make([]float64, tc.n*tc.in)
		dy := make([]float64, tc.n*tc.out)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range dy {
			dy[i] = rng.NormFloat64()
		}

		btape := &nn.BatchTape{}
		gotOut := batched.ForwardBatch(btape, x, tc.n)
		gotDx := batched.BackwardBatch(btape, dy, tc.n)

		stape := &nn.Tape{}
		for r := 0; r < tc.n; r++ {
			wantOut := scalar.ForwardT(stape, x[r*tc.in:(r+1)*tc.in])
			for o, v := range wantOut {
				if gotOut[r*tc.out+o] != v {
					t.Fatalf("case %+v row %d: out[%d] = %v, want %v", tc, r, o, gotOut[r*tc.out+o], v)
				}
			}
			wantDx := scalar.Backward(stape, dy[r*tc.out:(r+1)*tc.out])
			for i, v := range wantDx {
				if gotDx[r*tc.in+i] != v {
					t.Fatalf("case %+v row %d: dx[%d] = %v, want %v", tc, r, i, gotDx[r*tc.in+i], v)
				}
			}
		}

		bp, sp := batched.Params(), scalar.Params()
		for p := range bp {
			for j := range bp[p].Grad {
				if bp[p].Grad[j] != sp[p].Grad[j] {
					t.Fatalf("case %+v: param %d grad[%d] = %v, want %v",
						tc, p, j, bp[p].Grad[j], sp[p].Grad[j])
				}
			}
		}

		// InputGradBatch: same dx, no gradient side effects.
		batched.ZeroGrad()
		batched.ForwardBatch(btape, x, tc.n)
		gotDx = batched.InputGradBatch(btape, dy, tc.n)
		for r := 0; r < tc.n; r++ {
			scalar.ForwardT(stape, x[r*tc.in:(r+1)*tc.in])
			wantDx := scalar.InputGrad(stape, dy[r*tc.out:(r+1)*tc.out])
			for i, v := range wantDx {
				if gotDx[r*tc.in+i] != v {
					t.Fatalf("case %+v row %d: inputgrad dx[%d] = %v, want %v", tc, r, i, gotDx[r*tc.in+i], v)
				}
			}
		}
		for p := range bp {
			for j := range bp[p].Grad {
				if bp[p].Grad[j] != 0 {
					t.Fatalf("case %+v: InputGradBatch touched param %d grad[%d] = %v", tc, p, j, bp[p].Grad[j])
				}
			}
		}
	}
}

// TestGoldenCampaignMemoized reruns the golden campaign behind a
// MemoEvaluator and requires the identical frontier and hypervolume
// bytes: interposing the cache must not perturb a single bit of the
// campaign.  A campaign genome is then resubmitted to prove duplicates
// are served from the cache with the exact recorded fitness.
func TestGoldenCampaignMemoized(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	train, val := goldenDataset(t)
	memo := ea.NewMemoEvaluator(&GoldenEvaluator{Train: train, Val: val, Threads: 1})
	res, err := RunGoldenCampaign(context.Background(), memo, 2)
	if err != nil {
		t.Fatalf("golden campaign memoized: %v", err)
	}
	checkGolden(t, "frontier.txt", []byte(FormatFrontier(res.Final)))
	checkGolden(t, "hypervolume.txt", []byte(FormatHypervolume(res.Final)))
	st := memo.Stats()
	if st.Misses == 0 || st.Entries != st.Misses {
		t.Fatalf("memo stats insane: %+v", st)
	}

	// An exact-duplicate genome must hit the cache and return the bits the
	// campaign recorded, without re-training.
	ind := res.Final[0]
	fit, err := memo.Evaluate(context.Background(), ind.Genome)
	if err != nil {
		t.Fatalf("duplicate evaluation: %v", err)
	}
	for i := range fit {
		if fit[i] != ind.Fitness[i] {
			t.Fatalf("cached fitness %v != recorded %v", fit, ind.Fitness)
		}
	}
	if after := memo.Stats(); after.Hits != st.Hits+1 || after.Misses != st.Misses {
		t.Fatalf("duplicate did not hit the cache: before %+v, after %+v", st, after)
	}
}
