package refcheck

import (
	"repro/internal/deepmd"
)

// ForceFD returns the force on coordinate k, −∂E/∂x_k, of a model by
// symmetric central finite difference with step h: the reference against
// which the analytic backward pass of descriptor+fitting networks is
// verified.  Accurate to O(h²) for the smooth activations.
func ForceFD(m *deepmd.Model, coord []float64, types []int, box float64, k int, h float64) float64 {
	pos := append([]float64(nil), coord...)
	pos[k] = coord[k] + h
	ep := m.Energy(pos, types, box)
	pos[k] = coord[k] - h
	em := m.Energy(pos, types, box)
	return -(ep - em) / (2 * h)
}

// ParamGradFD returns ∂E/∂θ by central finite difference for entry j of
// the model's p-th parameter block (the flat ordering of Model.Params),
// restoring the parameter before returning.  It is the oracle for the
// training path's AccumulateEnergyGrad.
func ParamGradFD(m *deepmd.Model, coord []float64, types []int, box float64, p, j int, h float64) float64 {
	pg := m.Params()[p]
	orig := pg.Param[j]
	pg.Param[j] = orig + h
	ep := m.Energy(coord, types, box)
	pg.Param[j] = orig - h
	em := m.Energy(coord, types, box)
	pg.Param[j] = orig
	return (ep - em) / (2 * h)
}
