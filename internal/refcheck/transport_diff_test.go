package refcheck

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/deepmd"
)

// TestGoldenCampaignTransportDifferential is the cross-transport oracle
// for the whole pipeline: the golden campaign run over the cluster plane
// with binary framing, with JSON framing, and at different per-worker
// thread counts must reproduce the committed local fixtures byte for
// byte.  Local execution pins the same fixtures in
// TestGoldenCampaignLocal, so any divergence here isolates a transport
// bug rather than a numeric one.
func TestGoldenCampaignTransportDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	train, val := goldenDataset(t)
	cases := []struct {
		name      string
		transport cluster.Transport
		threads   int
		muxConns  int
	}{
		{"binary_threads1", cluster.TransportBinary, 1, 0},
		{"binary_threads8", cluster.TransportBinary, 8, 0},
		{"json_threads1", cluster.TransportJSON, 1, 0},
		// The mux leg multiplexes both workers and the client over one
		// shared TCP connection with coalescing on: batching frames must
		// never change a byte of what they carry.
		{"mux_conns1_threads1", cluster.TransportBinary, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			worker := &GoldenEvaluator{Train: train, Val: val, Threads: tc.threads}
			opts := []cluster.LocalOption{cluster.WithTransport(tc.transport)}
			if tc.muxConns > 0 {
				opts = append(opts, cluster.WithMuxConns(tc.muxConns),
					cluster.WithCoalesce(200*time.Microsecond))
			}
			lc, err := cluster.NewLocalCluster(2, cluster.EvalHandler(worker), 0, opts...)
			if err != nil {
				t.Fatalf("local cluster: %v", err)
			}
			defer lc.Close()

			res, err := RunGoldenCampaign(context.Background(), &cluster.Evaluator{Client: lc.Client}, 2)
			if err != nil {
				t.Fatalf("golden campaign via %v cluster: %v", tc.transport, err)
			}
			checkGolden(t, "frontier.txt", []byte(FormatFrontier(res.Final)))
			checkGolden(t, "hypervolume.txt", []byte(FormatHypervolume(res.Final)))
		})
	}
}

// TestGoldenLCurveTransportInvariance ships the reference candidate's
// raw learning-curve bytes through a cluster round trip on each framing
// and requires both to deliver the committed lcurve.out fixture exactly.
// The lcurve is the most fragile artifact we emit — free-form text with
// scientific-notation floats — so it makes a good payload-transparency
// probe for the binary codec.
func TestGoldenLCurveTransportInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	train, val := goldenDataset(t)
	handler := func(ctx context.Context, _ json.RawMessage) (json.RawMessage, error) {
		ev := &GoldenEvaluator{Train: train, Val: val, Threads: 1}
		cfg := ev.GoldenTrainConfig(GoldenReferenceGenome)
		rng := rand.New(rand.NewSource(genomeSeed(GoldenReferenceGenome)))
		m, err := deepmd.NewModel(rng, goldenModelConfig())
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if _, err := deepmd.Train(ctx, m, train, val, cfg, &buf); err != nil {
			return nil, err
		}
		return json.Marshal(buf.String())
	}

	legs := []struct {
		name string
		opts []cluster.LocalOption
	}{
		{"binary", []cluster.LocalOption{cluster.WithTransport(cluster.TransportBinary)}},
		{"json", []cluster.LocalOption{cluster.WithTransport(cluster.TransportJSON)}},
		{"mux", []cluster.LocalOption{cluster.WithMuxConns(1), cluster.WithCoalesce(200 * time.Microsecond)}},
	}
	for _, leg := range legs {
		t.Run(leg.name, func(t *testing.T) {
			lc, err := cluster.NewLocalCluster(1, handler, 0, leg.opts...)
			if err != nil {
				t.Fatalf("local cluster: %v", err)
			}
			defer lc.Close()

			out, err := lc.Client.Submit(context.Background(), json.RawMessage(`{}`))
			if err != nil {
				t.Fatalf("lcurve round trip via %s: %v", leg.name, err)
			}
			var lcurve string
			if err := json.Unmarshal(out, &lcurve); err != nil {
				t.Fatalf("bad lcurve payload via %s: %v", leg.name, err)
			}
			checkGolden(t, "lcurve.out", []byte(lcurve))
		})
	}
}
