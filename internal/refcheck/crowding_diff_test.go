package refcheck

import (
	"math/rand"
	"testing"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

func fitnessSlice(pop ea.Population) []ea.Fitness {
	out := make([]ea.Fitness, len(pop))
	for i, ind := range pop {
		out[i] = ind.Fitness
	}
	return out
}

// TestCrowdingMatchesNaiveOracle cross-checks the production crowding
// distance against the independent reference over randomized fronts,
// including duplicate vectors, degenerate (constant) objectives,
// non-finite members, and tiny fronts of 0, 1 and 2 members.  Both
// implementations pin tie-breaking to a stable sort on the objective
// value, so finite distances must agree bit-for-bit.
func TestCrowdingMatchesNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	const instances = 250
	for trial := 0; trial < instances; trial++ {
		n := rng.Intn(40) // includes empty, singleton and pair fronts
		m := 2 + rng.Intn(3)
		fits := randFitnesses(rng, n, m, 0.1, 0.15)
		want := CrowdingDistances(fits)

		front := popOf(fits)
		nsga2.CrowdingDistance(front)
		for i, ind := range front {
			if !sameFloat(ind.Distance, want[i]) {
				t.Fatalf("trial %d (n=%d m=%d): distance[%d] = %v, oracle %v (fitness %v)",
					trial, n, m, i, ind.Distance, want[i], fits[i])
			}
		}
	}
}

// TestCrowdingOracleOnSortedFronts runs the full production pipeline —
// sort into fronts, assign crowding per front — and checks every front
// against the oracle, the exact shape Select sees during a campaign.
func TestCrowdingOracleOnSortedFronts(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(80)
		fits := randFitnesses(rng, n, 2, 0.1, 0.1)
		fronts := nsga2.RankOrdinalSort(popOf(fits))
		nsga2.CrowdingDistanceAll(fronts)
		for fi, front := range fronts {
			want := CrowdingDistances(fitnessSlice(front))
			for i, ind := range front {
				if !sameFloat(ind.Distance, want[i]) {
					t.Fatalf("trial %d front %d: distance[%d] = %v, oracle %v",
						trial, fi, i, ind.Distance, want[i])
				}
			}
		}
	}
}
