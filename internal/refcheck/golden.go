package refcheck

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/deepmd"
	"repro/internal/descriptor"
	"repro/internal/ea"
	"repro/internal/md"
	"repro/internal/nn"
	"repro/internal/nsga2"
)

// The golden campaign is a miniature but fully wired NSGA-II
// hyperparameter search: a synthetic MD dataset, a real deepmd training
// run per candidate, two RMSE objectives, and the paper's selection
// loop.  Every quantity it produces is bit-deterministic — the frontier,
// its hypervolume and the reference learning curve are committed under
// testdata/golden/ and diffed exactly, across -count=2, Threads=1 vs N,
// and the in-process pool vs the cluster scheduler.

// GoldenRef is the hypervolume reference point for the golden frontier.
var GoldenRef = ea.Fitness{100, 100}

// GoldenBounds are the campaign's gene bounds: log10 of the start
// learning rate and the stop/start learning-rate ratio.
var GoldenBounds = ea.Bounds{{Lo: -3, Hi: -1}, {Lo: 0.1, Hi: 0.9}}

// GoldenReferenceGenome is the fixed candidate whose learning curve is
// the committed lcurve.out golden.
var GoldenReferenceGenome = ea.Genome{-2, 0.5}

// GoldenDataset builds the campaign's synthetic AlCl3-KCl training and
// validation sets from a fixed seed.
func GoldenDataset() (train, val *dataset.Dataset) {
	rng := rand.New(rand.NewSource(7))
	species := []md.Species{md.Al, md.Cl, md.Cl, md.Cl, md.K, md.Cl}
	pot := md.NewPaperBMH(4.0)
	d := dataset.Generate(rng, species, 7.0, 498, pot, 0.5, 60, 5, 6)
	train = &dataset.Dataset{Types: d.Types, Frames: d.Frames[:4]}
	val = &dataset.Dataset{Types: d.Types, Frames: d.Frames[4:]}
	return train, val
}

func goldenModelConfig() deepmd.ModelConfig {
	return deepmd.ModelConfig{
		Descriptor: descriptor.Config{
			RCut: 4.0, RCutSmth: 1.0,
			EmbeddingSizes: []int{4, 8},
			AxisNeurons:    2,
			Activation:     nn.Tanh,
			NumSpecies:     3,
			NeighborNorm:   6,
		},
		FittingSizes:      []int{10},
		FittingActivation: nn.Tanh,
		NumSpecies:        3,
	}
}

// genomeSeed derives a deterministic model/training seed from the exact
// bits of the genome.  Genomes survive the cluster's JSON round trip
// bit-for-bit (encoding/json emits the shortest representation that
// parses back exactly), so local and cluster evaluations of the same
// candidate initialize identical models.
func genomeSeed(g ea.Genome) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range g {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return int64(h.Sum64())
}

// GoldenEvaluator trains a fresh model per candidate and reports the
// final validation RMSEs as the two objectives — the in-miniature
// version of the paper's per-node DeePMD-kit job.
type GoldenEvaluator struct {
	Train, Val *dataset.Dataset
	// Threads bounds the per-evaluation worker pool.  The campaign
	// output must be bit-identical for every value.
	Threads int
}

// GoldenTrainConfig is the training schedule the evaluator runs for a
// genome; exported so the lcurve golden uses exactly the same schedule.
func (e *GoldenEvaluator) GoldenTrainConfig(g ea.Genome) deepmd.TrainConfig {
	startLR := math.Pow(10, g[0])
	return deepmd.TrainConfig{
		Steps:         40,
		BatchSize:     2,
		StartLR:       startLR,
		StopLR:        startLR * g[1],
		ScaleByWorker: "none",
		Workers:       1,
		DispFreq:      10,
		Threads:       e.Threads,
		Seed:          genomeSeed(g),
	}
}

// Evaluate implements ea.Evaluator.
func (e *GoldenEvaluator) Evaluate(ctx context.Context, g ea.Genome) (ea.Fitness, error) {
	if len(g) != len(GoldenBounds) {
		return nil, fmt.Errorf("refcheck: golden genome has %d genes, want %d", len(g), len(GoldenBounds))
	}
	rng := rand.New(rand.NewSource(genomeSeed(g)))
	m, err := deepmd.NewModel(rng, goldenModelConfig())
	if err != nil {
		return nil, err
	}
	res, err := deepmd.Train(ctx, m, e.Train, e.Val, e.GoldenTrainConfig(g), nil)
	if err != nil {
		return nil, err
	}
	return ea.Fitness{res.FinalEnergyRMSE, res.FinalForceRMSE}, nil
}

// RunGoldenCampaign runs the fixed-seed campaign against the given
// evaluator (in-process or cluster-backed) and evaluation parallelism.
func RunGoldenCampaign(ctx context.Context, ev ea.Evaluator, parallelism int) (*nsga2.Result, error) {
	return nsga2.Run(ctx, nsga2.Config{
		PopSize:      6,
		Generations:  3,
		Bounds:       GoldenBounds,
		InitialStd:   []float64{0.3, 0.1},
		AnnealFactor: 0.85,
		Evaluator:    ev,
		Pool:         ea.PoolConfig{Parallelism: parallelism, Objectives: len(GoldenRef)},
		Seed:         42,
	})
}

// FormatFrontier renders the non-dominated set of the final population
// as one canonical line per member — full-precision genes then
// objectives — sorted so the rendering is independent of evaluation
// completion order.
func FormatFrontier(final ea.Population) string {
	frontier := nsga2.NonDominated(final)
	lines := make([]string, 0, len(frontier))
	for _, ind := range frontier {
		fields := make([]string, 0, len(ind.Genome)+len(ind.Fitness))
		for _, v := range ind.Genome {
			fields = append(fields, strconv.FormatFloat(v, 'g', -1, 64))
		}
		for _, v := range ind.Fitness {
			fields = append(fields, strconv.FormatFloat(v, 'g', -1, 64))
		}
		lines = append(lines, strings.Join(fields, " "))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// FormatHypervolume renders the frontier hypervolume at the golden
// reference point with full float64 precision.
func FormatHypervolume(final ea.Population) string {
	hv := nsga2.Hypervolume2D(nsga2.NonDominated(final), GoldenRef)
	return strconv.FormatFloat(hv, 'g', -1, 64) + "\n"
}
