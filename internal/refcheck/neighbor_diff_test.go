package refcheck

import (
	"math/rand"
	"testing"

	"repro/internal/neighbor"
)

// randConfiguration draws a random atomic configuration.  Periodic
// instances deliberately place some atoms exactly on cell boundaries —
// at 0, at the box edge, on multiples of the cell size, and outside the
// primary cell (negative or > box, exercising the wrap) — the corners
// where a cell-list implementation is most likely to disagree with the
// definition.
func randConfiguration(rng *rand.Rand, n int, box float64, reach float64) []float64 {
	coord := make([]float64, 3*n)
	for k := range coord {
		coord[k] = (rng.Float64()*2 - 0.5) * box // spills outside [0, box)
	}
	if box > 0 {
		nc := int(box / reach)
		if nc < 1 {
			nc = 1
		}
		cell := box / float64(nc)
		for i := 0; i < n; i++ {
			switch rng.Intn(5) {
			case 0:
				coord[3*i+rng.Intn(3)] = 0
			case 1:
				coord[3*i+rng.Intn(3)] = box
			case 2:
				coord[3*i+rng.Intn(3)] = cell * float64(rng.Intn(nc+1))
			case 3:
				coord[3*i+rng.Intn(3)] = -cell * rng.Float64()
			// case 4: leave the uniform draw.
			}
		}
	}
	return coord
}

// TestNeighborListMatchesAllPairsOracle cross-checks the production
// linked-cell candidate lists (and the production brute path) against
// the independent all-pairs scan over hundreds of random instances:
// open and periodic boundaries, sizes straddling the brute/cell
// threshold, and boxes small enough to force the wrap-degenerate brute
// fallback.  Candidate lists must match index-for-index.
func TestNeighborListMatchesAllPairsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	var list, brute neighbor.List
	const instances = 220
	for trial := 0; trial < instances; trial++ {
		n := 1 + rng.Intn(150) // below and above the cell-grid threshold
		var box float64
		if rng.Intn(4) > 0 {
			box = 4 + rng.Float64()*12 // some boxes force nc < 3
		}
		rcut := 0.5 + rng.Float64()*2.5
		skin := 0.0
		if rng.Intn(2) == 0 {
			skin = rng.Float64() * 0.5
		}
		coord := randConfiguration(rng, n, box, rcut+skin)

		want := AllPairsCandidates(coord, box, rcut, skin)
		list.Build(coord, box, rcut, skin)
		brute.BuildBrute(coord, box, rcut, skin)
		for name, l := range map[string]*neighbor.List{"Build": &list, "BuildBrute": &brute} {
			if l.N() != n {
				t.Fatalf("trial %d: %s N = %d, want %d", trial, name, l.N(), n)
			}
			for i := 0; i < n; i++ {
				got := l.Candidates(i)
				if len(got) != len(want[i]) {
					t.Fatalf("trial %d (n=%d box=%g rcut=%g skin=%g): %s atom %d has %d candidates, oracle %d\n got  %v\n want %v",
						trial, n, box, rcut, skin, name, i, len(got), len(want[i]), got, want[i])
				}
				for k := range got {
					if got[k] != want[i][k] {
						t.Fatalf("trial %d: %s atom %d candidate[%d] = %d, oracle %d",
							trial, name, i, k, got[k], want[i][k])
					}
				}
			}
		}
	}
}

// TestNeighborListReuseMatchesOracle rebuilds one List across many
// configurations (the training loop's reuse pattern) and checks each
// rebuild against the oracle — stale state from a previous, larger build
// must never leak into a smaller one.
func TestNeighborListReuseMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	var list neighbor.List
	sizes := []int{120, 7, 64, 1, 33, 90, 2, 50}
	for trial, n := range sizes {
		box := 6 + rng.Float64()*6
		rcut := 1 + rng.Float64()
		coord := randConfiguration(rng, n, box, rcut)
		want := AllPairsCandidates(coord, box, rcut, 0)
		list.Build(coord, box, rcut, 0)
		for i := 0; i < n; i++ {
			got := list.Candidates(i)
			if len(got) != len(want[i]) {
				t.Fatalf("rebuild %d (n=%d): atom %d has %d candidates, oracle %d",
					trial, n, i, len(got), len(want[i]))
			}
			for k := range got {
				if got[k] != want[i][k] {
					t.Fatalf("rebuild %d (n=%d): atom %d candidate[%d] = %d, oracle %d",
						trial, n, i, k, got[k], want[i][k])
				}
			}
		}
	}
}
