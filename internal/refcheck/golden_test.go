package refcheck

import (
	"bytes"
	"context"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/deepmd"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden fixtures from the current implementation")

var goldenData struct {
	once       sync.Once
	train, val *dataset.Dataset
}

func goldenDataset(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	goldenData.once.Do(func() {
		goldenData.train, goldenData.val = GoldenDataset()
	})
	return goldenData.train, goldenData.val
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name)
}

// checkGolden compares got against the committed fixture byte-for-byte,
// or rewrites the fixture under -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (run `go test ./internal/refcheck -update-golden`): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the golden fixture.\n--- got ---\n%s--- want ---\n%s"+
			"If the change is intentional, regenerate with `go test ./internal/refcheck -update-golden`.",
			name, got, want)
	}
}

// runCampaign executes the golden campaign with the in-process pool and
// returns the canonical frontier and hypervolume renderings.
func runCampaign(t *testing.T, threads, parallelism int) (frontier, hv string) {
	t.Helper()
	train, val := goldenDataset(t)
	ev := &GoldenEvaluator{Train: train, Val: val, Threads: threads}
	res, err := RunGoldenCampaign(context.Background(), ev, parallelism)
	if err != nil {
		t.Fatalf("golden campaign: %v", err)
	}
	return FormatFrontier(res.Final), FormatHypervolume(res.Final)
}

// TestGoldenCampaignLocal pins the whole pipeline — dataset generation,
// model init, training, NSGA-II selection, frontier extraction and
// hypervolume — to committed fixtures, byte-for-byte.  Run with
// -count=2 to confirm the process itself is replay-stable.
func TestGoldenCampaignLocal(t *testing.T) {
	frontier, hv := runCampaign(t, 1, 2)
	checkGolden(t, "frontier.txt", []byte(frontier))
	checkGolden(t, "hypervolume.txt", []byte(hv))
}

// TestGoldenCampaignThreadInvariance reruns the campaign with a wide
// per-evaluation thread pool and serial evaluation; every byte must
// match the Threads=1, Parallelism=2 golden.
func TestGoldenCampaignThreadInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	frontier, hv := runCampaign(t, 8, 1)
	checkGolden(t, "frontier.txt", []byte(frontier))
	checkGolden(t, "hypervolume.txt", []byte(hv))
}

// TestGoldenCampaignCluster runs the same campaign through the cluster
// plane — scheduler, two TCP workers, JSON task round trips — and
// requires the identical frontier and hypervolume bytes.  Genomes and
// fitnesses must survive serialization exactly for this to hold.
func TestGoldenCampaignCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	train, val := goldenDataset(t)
	worker := &GoldenEvaluator{Train: train, Val: val, Threads: 1}
	lc, err := cluster.NewLocalCluster(2, cluster.EvalHandler(worker), 0)
	if err != nil {
		t.Fatalf("local cluster: %v", err)
	}
	defer lc.Close()

	res, err := RunGoldenCampaign(context.Background(), &cluster.Evaluator{Client: lc.Client}, 2)
	if err != nil {
		t.Fatalf("golden campaign via cluster: %v", err)
	}
	checkGolden(t, "frontier.txt", []byte(FormatFrontier(res.Final)))
	checkGolden(t, "hypervolume.txt", []byte(FormatHypervolume(res.Final)))
}

// TestGoldenLCurve pins the reference candidate's learning-curve bytes
// — the exact lcurve.out a DeePMD-kit run would leave behind — and
// checks they are identical under Threads=1 and Threads=8.
func TestGoldenLCurve(t *testing.T) {
	train, val := goldenDataset(t)
	curves := make([][]byte, 0, 2)
	for _, threads := range []int{1, 8} {
		ev := &GoldenEvaluator{Train: train, Val: val, Threads: threads}
		cfg := ev.GoldenTrainConfig(GoldenReferenceGenome)
		rng := rand.New(rand.NewSource(genomeSeed(GoldenReferenceGenome)))
		m, err := deepmd.NewModel(rng, goldenModelConfig())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := deepmd.Train(context.Background(), m, train, val, cfg, &buf); err != nil {
			t.Fatalf("train reference genome: %v", err)
		}
		curves = append(curves, buf.Bytes())
	}
	if !bytes.Equal(curves[0], curves[1]) {
		t.Fatalf("lcurve bytes differ between Threads=1 and Threads=8:\n%s\nvs\n%s", curves[0], curves[1])
	}
	checkGolden(t, "lcurve.out", curves[0])
}

// TestGoldenEvaluatorRejectsBadGenome documents the evaluator's
// contract for malformed cluster payloads.
func TestGoldenEvaluatorRejectsBadGenome(t *testing.T) {
	train, val := goldenDataset(t)
	ev := &GoldenEvaluator{Train: train, Val: val, Threads: 1}
	if _, err := ev.Evaluate(context.Background(), nil); err == nil {
		t.Fatal("expected error for empty genome")
	}
}
