// Package refcheck holds slow, obviously-correct reference
// implementations of the production hot paths — brute-force O(N²·M)
// dominance ranking, naive crowding distance, an all-pairs neighbor scan
// with no cell list, an independent 2-D hypervolume sweep, and
// central-finite-difference energy/force gradients — together with the
// golden-campaign fixture that locks the end-to-end NSGA-II behavior in
// place (see golden.go).
//
// The oracles deliberately share no code with the optimized
// implementations in internal/nsga2, internal/neighbor, internal/nn and
// internal/deepmd: each re-derives its answer from the definition, so the
// seeded differential drivers in this package's tests catch any
// behavioral drift an optimization introduces.  Every future perf PR
// regression-tests against this package.
package refcheck

import (
	"math"
	"sort"

	"repro/internal/ea"
)

// broken reports whether a fitness carries any NaN or ±Inf objective.
// The production semantics (nsga2.Dominates) rank such fitnesses like
// MAXINT failures: below every finite fitness, mutually incomparable.
func broken(f ea.Fitness) bool {
	for _, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// dominates is the reference dominance relation under minimization,
// written straight from the definition plus the non-finite rule.
func dominates(a, b ea.Fitness) bool {
	if broken(a) {
		return false
	}
	if broken(b) {
		return true
	}
	better := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

// ParetoRanks assigns every fitness its Pareto front index (0 = best) by
// repeated peeling: front k is the set of members not dominated by any
// member outside fronts 0..k-1.  Each peel rescans all remaining pairs,
// so the total cost is O(N³·M) in the worst case — unmistakably correct,
// never fast.
func ParetoRanks(fits []ea.Fitness) []int {
	n := len(fits)
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = -1
	}
	assigned := 0
	for rank := 0; assigned < n; rank++ {
		var layer []int
		for i := 0; i < n; i++ {
			if ranks[i] != -1 {
				continue
			}
			dominated := false
			for j := 0; j < n; j++ {
				if j == i || ranks[j] != -1 {
					continue
				}
				if dominates(fits[j], fits[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				layer = append(layer, i)
			}
		}
		if len(layer) == 0 {
			// Impossible for a strict partial order; bail out rather than
			// loop forever if dominance is ever broken.
			panic("refcheck: dominance relation admits no minimal element")
		}
		for _, i := range layer {
			ranks[i] = rank
		}
		assigned += len(layer)
	}
	return ranks
}

// CrowdingDistances computes Deb's crowding distance for one front of
// fitness vectors, independently of nsga2.CrowdingDistance but pinning
// the same tie-breaking convention: members are ordered per objective by
// a stable sort on the objective value, so duplicates keep their input
// order and the same members land on the boundaries.  Members with a
// non-finite fitness receive 0 and are excluded from the spacing of the
// finite members; if one or two finite members remain they receive +Inf.
func CrowdingDistances(fits []ea.Fitness) []float64 {
	out := make([]float64, len(fits))
	var valid []int
	for i, f := range fits {
		if !broken(f) {
			valid = append(valid, i)
		}
	}
	n := len(valid)
	if n == 0 {
		return out
	}
	if n <= 2 {
		for _, i := range valid {
			out[i] = math.Inf(1)
		}
		return out
	}
	m := len(fits[valid[0]])
	for obj := 0; obj < m; obj++ {
		order := append([]int(nil), valid...)
		sort.SliceStable(order, func(a, b int) bool {
			return fits[order[a]][obj] < fits[order[b]][obj]
		})
		lo := fits[order[0]][obj]
		hi := fits[order[n-1]][obj]
		out[order[0]] = math.Inf(1)
		out[order[n-1]] = math.Inf(1)
		//lint:ignore floateq degenerate-range guard: every objective value identical means crowding distance is undefined
		if hi == lo {
			continue
		}
		for k := 1; k < n-1; k++ {
			i := order[k]
			if math.IsInf(out[i], 1) {
				continue
			}
			out[i] += (fits[order[k+1]][obj] - fits[order[k-1]][obj]) / (hi - lo)
		}
	}
	return out
}

// AllPairsCandidates is the no-cell-list neighbor oracle: for each atom it
// scans every other atom and keeps those within reach = rcut+skin of the
// minimum-image distance (cubic periodic box when box > 0, open
// boundaries otherwise), in ascending index order — the exact contract of
// neighbor.List.Build.
func AllPairsCandidates(coord []float64, box, rcut, skin float64) [][]int {
	if skin < 0 {
		skin = 0
	}
	n := len(coord) / 3
	reach := rcut + skin
	reach2 := reach * reach
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			r2 := 0.0
			for k := 0; k < 3; k++ {
				d := coord[3*j+k] - coord[3*i+k]
				if box > 0 {
					d -= box * math.Round(d/box)
				}
				r2 += d * d
			}
			if r2 < reach2 {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// Hypervolume2D is the reference bi-objective hypervolume: the exact area
// of the union of boxes [f0, ref0]×[f1, ref1] over all members strictly
// inside the reference point, computed by integrating over the distinct
// f0 breakpoints — for each x-interval the covered height is
// ref1 − min{f1 of members with f0 ≤ x}.  Structurally different from the
// production staircase sweep in nsga2.Hypervolume2D.
func Hypervolume2D(fits []ea.Fitness, ref ea.Fitness) float64 {
	var pts [][2]float64
	for _, f := range fits {
		if len(f) != 2 || broken(f) || f.IsFailure() {
			continue
		}
		if f[0] < ref[0] && f[1] < ref[1] {
			pts = append(pts, [2]float64{f[0], f[1]})
		}
	}
	if len(pts) == 0 {
		return 0
	}
	// Distinct x breakpoints, ascending.
	xs := make([]float64, 0, len(pts))
	for _, p := range pts {
		xs = append(xs, p[0])
	}
	sort.Float64s(xs)
	uniq := xs[:1]
	for _, x := range xs[1:] {
		//lint:ignore floateq dedup over a sorted slice: only bitwise-identical breakpoints are duplicates
		if x != uniq[len(uniq)-1] {
			uniq = append(uniq, x)
		}
	}
	hv := 0.0
	for k, x := range uniq {
		next := ref[0]
		if k+1 < len(uniq) {
			next = uniq[k+1]
		}
		minF1 := math.Inf(1)
		for _, p := range pts {
			if p[0] <= x && p[1] < minF1 {
				minF1 = p[1]
			}
		}
		hv += (next - x) * (ref[1] - minF1)
	}
	return hv
}
