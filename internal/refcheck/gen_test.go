package refcheck

import (
	"math"
	"math/rand"

	"repro/internal/ea"
)

// randFitnesses draws a random multiobjective instance designed to hit
// the degenerate corners: coarse value grids force duplicate objective
// vectors, and with the given probabilities whole rows become MAXINT
// failures or individual components become NaN / ±Inf.
func randFitnesses(rng *rand.Rand, n, m int, pFail, pNonFinite float64) []ea.Fitness {
	fits := make([]ea.Fitness, n)
	coarse := rng.Intn(2) == 0
	for i := range fits {
		if rng.Float64() < pFail {
			fits[i] = ea.FailureFitness(m)
			continue
		}
		f := make(ea.Fitness, m)
		for k := range f {
			if coarse {
				f[k] = float64(rng.Intn(5))
			} else {
				f[k] = rng.Float64()
			}
		}
		if rng.Float64() < pNonFinite {
			switch rng.Intn(3) {
			case 0:
				f[rng.Intn(m)] = math.NaN()
			case 1:
				f[rng.Intn(m)] = math.Inf(1)
			default:
				f[rng.Intn(m)] = math.Inf(-1)
			}
		}
		fits[i] = f
	}
	return fits
}

// popOf wraps fitness vectors in a fresh population.
func popOf(fits []ea.Fitness) ea.Population {
	pop := make(ea.Population, len(fits))
	for i, f := range fits {
		pop[i] = &ea.Individual{Fitness: f, Evaluated: true}
	}
	return pop
}

// sameFloat treats two values as equal when they are bitwise-comparable
// floats: exact equality, both +Inf, or both NaN.
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	//lint:ignore floateq sameFloat IS the bit-identity helper the golden campaign is built on
	return a == b
}
