package stats

import (
	"math/rand"
	"testing"
)

func BenchmarkHist2DAdd(b *testing.B) {
	h := NewHist2D(0, 1, 60, 0, 1, 20)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	ys := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(xs[i%1024], ys[i%1024])
	}
}

func BenchmarkSpearman(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 500)
	y := make([]float64, 500)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Spearman(x, y)
	}
}

func BenchmarkSummarize(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}
