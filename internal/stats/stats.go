// Package stats provides the analysis primitives behind the paper's
// figures: 2-D histogram binning for the energy-vs-force level plots
// (Fig. 1), parallel-coordinates tables (Fig. 3), and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, Std        float64
	Median, P25, P75 float64
}

// Summarize computes descriptive statistics; NaNs are excluded.
func Summarize(xs []float64) Summary {
	var clean []float64
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	s := Summary{N: len(clean)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), clean...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	for _, x := range clean {
		s.Mean += x
	}
	s.Mean /= float64(s.N)
	for _, x := range clean {
		d := x - s.Mean
		s.Std += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(s.Std / float64(s.N-1))
	} else {
		s.Std = 0
	}
	return s
}

// Quantile returns the q-quantile of an ascending-sorted sample using
// linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Hist2D is a fixed-grid two-dimensional histogram, the data structure
// behind a level (density) plot.
type Hist2D struct {
	XMin, XMax float64
	YMin, YMax float64
	NX, NY     int
	Counts     [][]int // Counts[iy][ix]
	Clipped    int     // points outside the plotted window (Fig. 1 crops outliers)
	Total      int
}

// NewHist2D creates an empty histogram over the given window.
func NewHist2D(xmin, xmax float64, nx int, ymin, ymax float64, ny int) *Hist2D {
	h := &Hist2D{XMin: xmin, XMax: xmax, YMin: ymin, YMax: ymax, NX: nx, NY: ny}
	h.Counts = make([][]int, ny)
	for i := range h.Counts {
		h.Counts[i] = make([]int, nx)
	}
	return h
}

// Add bins one point; out-of-window points are counted as clipped.
func (h *Hist2D) Add(x, y float64) {
	h.Total++
	if x < h.XMin || x >= h.XMax || y < h.YMin || y >= h.YMax ||
		math.IsNaN(x) || math.IsNaN(y) {
		h.Clipped++
		return
	}
	ix := int((x - h.XMin) / (h.XMax - h.XMin) * float64(h.NX))
	iy := int((y - h.YMin) / (h.YMax - h.YMin) * float64(h.NY))
	if ix >= h.NX {
		ix = h.NX - 1
	}
	if iy >= h.NY {
		iy = h.NY - 1
	}
	h.Counts[iy][ix]++
}

// MaxCount returns the largest bin count.
func (h *Hist2D) MaxCount() int {
	m := 0
	for _, row := range h.Counts {
		for _, c := range row {
			if c > m {
				m = c
			}
		}
	}
	return m
}

// Render draws the histogram as ASCII art with density glyphs, y
// increasing upward — a terminal rendition of the paper's level plots.
func (h *Hist2D) Render() string {
	glyphs := []byte(" .:-=+*#%@")
	maxC := h.MaxCount()
	var b strings.Builder
	for iy := h.NY - 1; iy >= 0; iy-- {
		yHi := h.YMin + (h.YMax-h.YMin)*float64(iy+1)/float64(h.NY)
		fmt.Fprintf(&b, "%9.4f |", yHi)
		for ix := 0; ix < h.NX; ix++ {
			c := h.Counts[iy][ix]
			g := glyphs[0]
			if c > 0 && maxC > 0 {
				idx := 1 + c*(len(glyphs)-2)/maxC
				if idx >= len(glyphs) {
					idx = len(glyphs) - 1
				}
				g = glyphs[idx]
			}
			b.WriteByte(g)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%9s +%s\n", "", strings.Repeat("-", h.NX))
	fmt.Fprintf(&b, "%9s  %-*.4f%*.4f\n", "", h.NX-8, h.XMin, 8, h.XMax)
	if h.Clipped > 0 {
		fmt.Fprintf(&b, "(%d of %d points outside window cropped)\n", h.Clipped, h.Total)
	}
	return b.String()
}

// ParallelCoordinates holds one axis-normalized dataset for a parallel-
// coordinates plot: each row is one solution, each column one dimension.
type ParallelCoordinates struct {
	Axes []string
	Rows [][]float64 // raw values, Rows[i][j] on axis j
	// Tag marks rows (e.g. chemically accurate = true → "blue" in Fig. 3).
	Tag []bool
}

// AddRow appends a solution.
func (p *ParallelCoordinates) AddRow(values []float64, tagged bool) {
	if len(values) != len(p.Axes) {
		panic(fmt.Sprintf("stats: row has %d values for %d axes", len(values), len(p.Axes)))
	}
	p.Rows = append(p.Rows, append([]float64(nil), values...))
	p.Tag = append(p.Tag, tagged)
}

// AxisRange returns the min and max of axis j over all rows.
func (p *ParallelCoordinates) AxisRange(j int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, row := range p.Rows {
		if row[j] < lo {
			lo = row[j]
		}
		if row[j] > hi {
			hi = row[j]
		}
	}
	return lo, hi
}

// TaggedStats returns summaries of axis j split by tag.
func (p *ParallelCoordinates) TaggedStats(j int) (tagged, untagged Summary) {
	var a, b []float64
	for i, row := range p.Rows {
		if p.Tag[i] {
			a = append(a, row[j])
		} else {
			b = append(b, row[j])
		}
	}
	return Summarize(a), Summarize(b)
}

// RenderTable renders the parallel-coordinates data as a text table with
// one row per solution, sorted tagged-first.
func (p *ParallelCoordinates) RenderTable(maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s", "acc")
	for _, a := range p.Axes {
		fmt.Fprintf(&b, " %14s", a)
	}
	b.WriteByte('\n')
	order := make([]int, len(p.Rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return p.Tag[order[x]] && !p.Tag[order[y]]
	})
	n := 0
	for _, i := range order {
		if maxRows > 0 && n >= maxRows {
			fmt.Fprintf(&b, "… (%d more rows)\n", len(p.Rows)-n)
			break
		}
		mark := " "
		if p.Tag[i] {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-4s", mark)
		for _, v := range p.Rows[i] {
			fmt.Fprintf(&b, " %14.6g", v)
		}
		b.WriteByte('\n')
		n++
	}
	return b.String()
}
