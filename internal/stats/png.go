package stats

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"
)

// WritePNG renders the 2-D histogram as a level-plot PNG with a
// white-to-dark sequential colormap, cellSize pixels per bin and a thin
// frame — a publication-style rendition of the paper's Fig. 1/2 panels
// without any plotting dependency.
func (h *Hist2D) WritePNG(w io.Writer, cellSize int) error {
	if cellSize < 1 {
		cellSize = 4
	}
	const margin = 2
	width := h.NX*cellSize + 2*margin
	height := h.NY*cellSize + 2*margin
	img := image.NewRGBA(image.Rect(0, 0, width, height))

	// Background and frame.
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			c := color.RGBA{255, 255, 255, 255}
			if x < margin || x >= width-margin || y < margin || y >= height-margin {
				c = color.RGBA{60, 60, 60, 255}
			}
			img.SetRGBA(x, y, c)
		}
	}

	maxC := h.MaxCount()
	for iy := 0; iy < h.NY; iy++ {
		for ix := 0; ix < h.NX; ix++ {
			n := h.Counts[iy][ix]
			if n == 0 {
				continue
			}
			// Log-scaled intensity so sparse and dense bins both read.
			t := math.Log1p(float64(n)) / math.Log1p(float64(maxC))
			c := levelColor(t)
			// y axis increases upward: bin iy=0 is the bottom row.
			py0 := margin + (h.NY-1-iy)*cellSize
			px0 := margin + ix*cellSize
			for dy := 0; dy < cellSize; dy++ {
				for dx := 0; dx < cellSize; dx++ {
					img.SetRGBA(px0+dx, py0+dy, c)
				}
			}
		}
	}
	return png.Encode(w, img)
}

// levelColor maps t∈[0,1] onto a white→blue→dark sequential ramp.
func levelColor(t float64) color.RGBA {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// Interpolate white (255,255,255) → mid blue (66,106,235) → dark navy
	// (18,26,84).
	lerp := func(a, b float64, u float64) uint8 { return uint8(a + (b-a)*u + 0.5) }
	if t < 0.5 {
		u := t * 2
		return color.RGBA{lerp(255, 66, u), lerp(255, 106, u), lerp(255, 235, u), 255}
	}
	u := (t - 0.5) * 2
	return color.RGBA{lerp(66, 18, u), lerp(106, 26, u), lerp(235, 84, u), 255}
}

// WritePNGFile writes the level plot to path.
func (h *Hist2D) WritePNGFile(path string, cellSize int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := h.WritePNG(f, cellSize); err != nil {
		f.Close()
		return fmt.Errorf("stats: encoding %s: %w", path, err)
	}
	return f.Close()
}
