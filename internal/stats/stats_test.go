package stats

import (
	"bytes"
	"image/color"
	"image/png"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("N/Min/Max = %d/%v/%v", s.N, s.Min, s.Max)
	}
	if s.Mean != 3 || s.Median != 3 {
		t.Errorf("Mean/Median = %v/%v", s.Mean, s.Median)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, math.Sqrt(2.5))
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles = %v, %v", s.P25, s.P75)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty sample")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 {
		t.Errorf("singleton: %+v", s)
	}
	s = Summarize([]float64{1, math.NaN(), 3})
	if s.N != 2 || s.Mean != 2 {
		t.Errorf("NaN filtering: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 30}, {0.5, 15}, {1.0 / 3.0, 10}, {-0.5, 0}, {2, 30},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) not NaN")
	}
}

func TestQuickQuantileWithinRange(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		var clean []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		q = math.Abs(math.Mod(q, 1))
		sorted := append([]float64(nil), clean...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		v := Quantile(sorted, q)
		return v >= sorted[0] && v <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHist2DBinning(t *testing.T) {
	h := NewHist2D(0, 10, 10, 0, 1, 10)
	h.Add(0.5, 0.05)  // bin (0,0)
	h.Add(9.99, 0.99) // bin (9,9)
	h.Add(5, 0.5)     // bin (5,5)
	h.Add(11, 0.5)    // clipped
	h.Add(5, -0.1)    // clipped
	if h.Counts[0][0] != 1 || h.Counts[9][9] != 1 || h.Counts[5][5] != 1 {
		t.Errorf("bins wrong: %v", h.Counts)
	}
	if h.Clipped != 2 || h.Total != 5 {
		t.Errorf("Clipped/Total = %d/%d", h.Clipped, h.Total)
	}
	if h.MaxCount() != 1 {
		t.Errorf("MaxCount = %d", h.MaxCount())
	}
}

func TestHist2DBoundaryPointsNotLost(t *testing.T) {
	h := NewHist2D(0, 1, 4, 0, 1, 4)
	h.Add(0, 0)
	if h.Counts[0][0] != 1 {
		t.Error("lower-left corner lost")
	}
	h.Add(1, 1) // exactly on the open upper edge: clipped by convention
	if h.Clipped != 1 {
		t.Error("upper edge should clip")
	}
}

func TestHist2DRender(t *testing.T) {
	h := NewHist2D(0, 1, 20, 0, 1, 5)
	for i := 0; i < 50; i++ {
		h.Add(0.5, 0.5)
	}
	h.Add(2, 2)
	out := h.Render()
	if !strings.Contains(out, "@") {
		t.Error("dense bin not rendered with densest glyph")
	}
	if !strings.Contains(out, "cropped") {
		t.Error("clipped count not reported")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 7 {
		t.Error("render too short")
	}
}

func TestParallelCoordinates(t *testing.T) {
	p := &ParallelCoordinates{Axes: []string{"rcut", "force"}}
	p.AddRow([]float64{11.3, 0.0357}, true)
	p.AddRow([]float64{6.2, 0.09}, false)
	p.AddRow([]float64{10.1, 0.0374}, true)

	lo, hi := p.AxisRange(0)
	if lo != 6.2 || hi != 11.3 {
		t.Errorf("AxisRange = %v, %v", lo, hi)
	}
	tagged, untagged := p.TaggedStats(0)
	if tagged.N != 2 || untagged.N != 1 {
		t.Errorf("tagged split %d/%d", tagged.N, untagged.N)
	}
	if tagged.Min != 10.1 {
		t.Errorf("tagged min rcut = %v", tagged.Min)
	}
	out := p.RenderTable(0)
	if !strings.HasPrefix(strings.TrimSpace(strings.Split(out, "\n")[1]), "*") {
		t.Errorf("tagged rows not sorted first:\n%s", out)
	}
}

func TestParallelCoordinatesRowLimit(t *testing.T) {
	p := &ParallelCoordinates{Axes: []string{"x"}}
	for i := 0; i < 10; i++ {
		p.AddRow([]float64{float64(i)}, false)
	}
	out := p.RenderTable(3)
	if !strings.Contains(out, "7 more rows") {
		t.Errorf("row limit not applied:\n%s", out)
	}
}

func TestParallelCoordinatesPanicsOnBadRow(t *testing.T) {
	p := &ParallelCoordinates{Axes: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("mismatched row accepted")
		}
	}()
	p.AddRow([]float64{1}, false)
}

func TestPearsonKnown(t *testing.T) {
	if r := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect positive r = %v", r)
	}
	if r := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative r = %v", r)
	}
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("degenerate column should give NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{1})) {
		t.Error("n<2 should give NaN")
	}
}

func TestSpearmanMonotoneNonlinear(t *testing.T) {
	// y = exp(x) is monotone: Spearman must be exactly 1 even though
	// Pearson is below 1.
	x := []float64{0, 1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v)
	}
	if r := Spearman(x, y); math.Abs(r-1) > 1e-12 {
		t.Errorf("Spearman of monotone data = %v, want 1", r)
	}
	if r := Pearson(x, y); r >= 1-1e-9 {
		t.Errorf("Pearson of exp data = %v, expected < 1", r)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("ranks[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestCorrelationMatrix(t *testing.T) {
	cols := [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}}
	targets := [][]float64{{2, 4, 6, 8}}
	m, err := NewCorrelationMatrix([]string{"up", "down"}, cols, []string{"obj"}, targets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Rho[0][0]-1) > 1e-12 || math.Abs(m.Rho[1][0]+1) > 1e-12 {
		t.Errorf("matrix = %v", m.Rho)
	}
	if !strings.Contains(m.Render(), "obj") {
		t.Error("render missing target name")
	}
	if _, err := NewCorrelationMatrix([]string{"a"}, nil, nil, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestWritePNG(t *testing.T) {
	h := NewHist2D(0, 1, 30, 0, 1, 10)
	for i := 0; i < 500; i++ {
		h.Add(float64(i%30)/30+0.001, float64(i%10)/10+0.001)
	}
	var buf bytes.Buffer
	if err := h.WritePNG(&buf, 4); err != nil {
		t.Fatalf("WritePNG: %v", err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("decoding produced PNG: %v", err)
	}
	b := img.Bounds()
	if b.Dx() != 30*4+4 || b.Dy() != 10*4+4 {
		t.Errorf("image %dx%d, want 124x44", b.Dx(), b.Dy())
	}
	// Empty histogram still renders.
	var buf2 bytes.Buffer
	if err := NewHist2D(0, 1, 5, 0, 1, 5).WritePNG(&buf2, 0); err != nil {
		t.Errorf("empty histogram: %v", err)
	}
}

func TestWritePNGFile(t *testing.T) {
	h := NewHist2D(0, 1, 5, 0, 1, 5)
	h.Add(0.5, 0.5)
	path := filepath.Join(t.TempDir(), "fig.png")
	if err := h.WritePNGFile(path, 3); err != nil {
		t.Fatalf("WritePNGFile: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Errorf("file missing or empty: %v", err)
	}
}

func TestLevelColorRange(t *testing.T) {
	for _, tt := range []float64{-1, 0, 0.25, 0.5, 0.75, 1, 2} {
		c := levelColor(tt)
		if c.A != 255 {
			t.Errorf("alpha %d at t=%v", c.A, tt)
		}
	}
	if levelColor(0) != (color.RGBA{255, 255, 255, 255}) {
		t.Error("t=0 not white")
	}
}
