package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Pearson returns the Pearson linear correlation coefficient of two equal-
// length samples, or NaN for degenerate input.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return math.NaN()
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation: Pearson on fractional
// ranks, robust to monotone-nonlinear relationships — the right tool for
// hyperparameter-vs-loss association where effects are rarely linear.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks converts values to fractional ranks (ties averaged).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		//lint:ignore floateq Spearman tie groups are defined by exact value identity; an epsilon would merge distinct ranks
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// CorrelationMatrix computes Spearman correlations of every column in
// data against every target column.  data is column-major: data[c][i] is
// observation i of column c.
type CorrelationMatrix struct {
	ColumnNames []string
	TargetNames []string
	// Rho[c][t] is Spearman(data column c, target t).
	Rho [][]float64
}

// NewCorrelationMatrix builds the matrix.
func NewCorrelationMatrix(colNames []string, cols [][]float64, targetNames []string, targets [][]float64) (*CorrelationMatrix, error) {
	if len(colNames) != len(cols) || len(targetNames) != len(targets) {
		return nil, fmt.Errorf("stats: name/data arity mismatch")
	}
	m := &CorrelationMatrix{ColumnNames: colNames, TargetNames: targetNames}
	for c := range cols {
		row := make([]float64, len(targets))
		for t := range targets {
			row[t] = Spearman(cols[c], targets[t])
		}
		m.Rho = append(m.Rho, row)
	}
	return m, nil
}

// Render formats the matrix as a table.
func (m *CorrelationMatrix) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s", "")
	for _, t := range m.TargetNames {
		fmt.Fprintf(&b, " %12s", t)
	}
	b.WriteByte('\n')
	for c, name := range m.ColumnNames {
		fmt.Fprintf(&b, "%-20s", name)
		for t := range m.TargetNames {
			fmt.Fprintf(&b, " %12.3f", m.Rho[c][t])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
