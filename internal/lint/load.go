package lint

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker complaints.  Analysis still runs
	// (the checker fills Info best-effort), but the driver surfaces them
	// so a finding is never silently missed due to missing type info.
	TypeErrors []error
}

// listPkg mirrors the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks every module package matching the
// go-list patterns, including in-package and external test variants.
// Type information for imports is read from compiler export data
// produced by `go list -export`, so the loader needs nothing outside
// the standard library and the go tool itself.
//
// File positions are recorded relative to the module root, which keeps
// diagnostics and baseline entries stable regardless of where the
// driver runs.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-test", "-export",
		"-json=Dir,ImportPath,Name,Export,Standard,DepOnly,ForTest,GoFiles,Error",
	}, patterns...)

	moduleDir, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	out, err := listOutput(moduleDir, dir, args)
	if err != nil {
		return nil, err
	}

	var pkgs []*listPkg
	exports := map[string]string{}     // plain import path -> export file
	testExports := map[string]string{} // ForTest path -> test-variant export file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		lp := p
		pkgs = append(pkgs, &lp)
		if lp.Export != "" {
			switch {
			case lp.ForTest == "":
				exports[lp.ImportPath] = lp.Export
			case strings.HasPrefix(lp.ImportPath, lp.ForTest+" ["):
				// Only the in-package variant `P [P.test]` provides P's
				// test-augmented export data.  The external test package
				// `P_test [P.test]` shares the same ForTest but exports
				// package P_test — recording it here would shadow P and
				// break every import of P from its own external tests.
				testExports[lp.ForTest] = lp.Export
			}
		}
	}

	// Pick analysis targets: module packages explicitly matched by the
	// patterns.  When both "P" and its in-package test variant
	// "P [P.test]" are listed, keep only the variant — it carries the
	// same non-test files plus the _test.go files, so analyzing both
	// would duplicate every diagnostic.
	hasTestVariant := map[string]bool{}
	for _, p := range pkgs {
		// The in-package variant is named `P [P.test]`; the external
		// _test package is `P_test [P.test]` and supersedes nothing.
		if p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" [") {
			hasTestVariant[p.ForTest] = true
		}
	}
	var targets []*listPkg
	for _, p := range pkgs {
		switch {
		case p.Standard || p.DepOnly:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"):
			continue // synthetic test main
		case p.Error != nil:
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		case len(p.GoFiles) == 0:
			continue
		case p.ForTest == "" && hasTestVariant[p.ImportPath]:
			continue // superseded by the test variant
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var loaded []*Package
	for _, t := range targets {
		lookup := exportLookup(exports, testExports, t.ForTest, moduleDir)
		pkg, err := checkPackage(t, moduleDir, lookup)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		loaded = append(loaded, pkg)
	}
	return loaded, nil
}

// listOutput memoizes the expensive `go list -deps -test -export` run
// behind a content-hash cache under <module>/.lintcache.  The key
// covers the go toolchain version, the list arguments, go.mod/go.sum
// and the content of every tracked .go file, so any edit anywhere in
// the module misses the cache; a hit is additionally validated by
// checking that every referenced export file still exists (the build
// cache may have been pruned since the entry was written).
func listOutput(moduleDir, dir string, args []string) ([]byte, error) {
	key, keyErr := golistCacheKey(moduleDir, args)
	cacheDir := filepath.Join(moduleDir, ".lintcache")
	cachePath := filepath.Join(cacheDir, "golist-"+key+".json")
	if keyErr == nil {
		if out, err := os.ReadFile(cachePath); err == nil && exportsExist(out) {
			return out, nil
		}
	}

	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	if keyErr == nil {
		if err := os.MkdirAll(cacheDir, 0o755); err == nil {
			// One live entry: stale keys are dead weight, drop them.
			if old, err := filepath.Glob(filepath.Join(cacheDir, "golist-*.json")); err == nil {
				for _, f := range old {
					os.Remove(f)
				}
			}
			os.WriteFile(cachePath, out, 0o644)
		}
	}
	return out, nil
}

// golistCacheKey hashes everything that can change go list output.
func golistCacheKey(moduleDir string, args []string) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, runtime.Version())
	fmt.Fprintln(h, strings.Join(args, "\x00"))
	for _, name := range []string{"go.mod", "go.sum"} {
		b, err := os.ReadFile(filepath.Join(moduleDir, name))
		if err == nil {
			fmt.Fprintf(h, "%s %d\n", name, len(b))
			h.Write(b)
		}
	}
	err := filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != moduleDir && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(moduleDir, path)
		fmt.Fprintf(h, "%s %d\n", filepath.ToSlash(rel), len(b))
		h.Write(b)
		return nil
	})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:24], nil
}

// exportsExist validates a cached go list stream: every export file it
// references must still be present in the build cache.
func exportsExist(out []byte) bool {
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			return true
		} else if err != nil {
			return false
		}
		if p.Export != "" {
			if _, err := os.Stat(p.Export); err != nil {
				return false
			}
		}
	}
}

// LoadDir parses every .go file directly inside dir as a single package
// and type-checks it, resolving imports on demand via `go list -export`.
// This is how the golden-test harness loads testdata packages that are
// invisible to the go tool.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	t := &listPkg{Dir: dir, ImportPath: dir, GoFiles: files}
	return checkPackage(t, dir, onDemandLookup(dir))
}

// checkPackage parses t's files and runs the type checker over them.
func checkPackage(t *listPkg, baseDir string, lookup func(path string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	return checkPackageWith(t, baseDir, fset, importer.ForCompiler(fset, "gc", lookup))
}

// checkPackageWith is checkPackage with caller-supplied fileset and
// importer, so multi-package fixture programs can share one type
// universe (stdlib and sibling types must unify across packages).
func checkPackageWith(t *listPkg, baseDir string, fset *token.FileSet, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		abs := filepath.Join(t.Dir, name)
		display := abs
		if rel, err := filepath.Rel(baseDir, abs); err == nil && !strings.HasPrefix(rel, "..") {
			display = filepath.ToSlash(rel)
		}
		src, err := os.ReadFile(abs)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, display, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	// "P [P.test]" type-checks under path P so self-references resolve.
	path := t.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if tpkg == nil {
		tpkg = types.NewPackage(path, files[0].Name.Name)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Name:       files[0].Name.Name,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}, nil
}

// LoadDirProgram loads a multi-package fixture tree: every immediate
// subdirectory of dir containing .go files is one package, addressed by
// its directory name as import path (`import "util"`).  All packages
// share one fileset and one importer, so sibling and stdlib types
// unify across the mini program — the same property the export-data
// loader gives real module packages.  This is how the golden harness
// exercises the interprocedural analyzers, which only produce findings
// across package boundaries.
func LoadDirProgram(dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range sub {
			if !f.IsDir() && strings.HasSuffix(f.Name(), ".go") {
				names = append(names, e.Name())
				break
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no package directories in %s", dir)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	im := &srcImporter{
		dir:     dir,
		fset:    fset,
		loaded:  map[string]*Package{},
		loading: map[string]bool{},
	}
	im.gc = importer.ForCompiler(fset, "gc", onDemandLookup(dir))
	var pkgs []*Package
	for _, name := range names {
		p, err := im.load(name)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// srcImporter type-checks fixture packages from source on demand,
// memoized, falling back to compiler export data for everything else.
type srcImporter struct {
	dir     string
	fset    *token.FileSet
	gc      types.Importer
	loaded  map[string]*Package
	loading map[string]bool
}

func (im *srcImporter) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(im.dir, path)); err == nil && st.IsDir() {
		p, err := im.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return im.gc.Import(path)
}

func (im *srcImporter) load(rel string) (*Package, error) {
	if p, ok := im.loaded[rel]; ok {
		return p, nil
	}
	if im.loading[rel] {
		return nil, fmt.Errorf("import cycle through fixture package %q", rel)
	}
	im.loading[rel] = true
	defer delete(im.loading, rel)

	pkgDir := filepath.Join(im.dir, rel)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	t := &listPkg{Dir: pkgDir, ImportPath: rel, GoFiles: files}
	p, err := checkPackageWith(t, im.dir, im.fset, im)
	if err != nil {
		return nil, err
	}
	im.loaded[rel] = p
	return p, nil
}

// exportLookup resolves import paths against the export files collected
// from one `go list -deps` run.  A package under test (ForTest) resolves
// to its test variant so external _test packages see test-only symbols.
func exportLookup(exports, testExports map[string]string, forTest, moduleDir string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file := ""
		if forTest != "" && path == forTest {
			file = testExports[path]
		}
		if file == "" {
			file = exports[path]
		}
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return openExport(file)
	}
}

var (
	onDemandMu    sync.Mutex
	onDemandCache = map[string]string{}
)

// onDemandLookup resolves imports by shelling out to `go list -export`
// per package, with a process-wide cache.  Used only for testdata
// packages, whose import sets are tiny (stdlib packages).
func onDemandLookup(dir string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		onDemandMu.Lock()
		file, ok := onDemandCache[path]
		onDemandMu.Unlock()
		if !ok {
			cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
			cmd.Dir = dir
			out, err := cmd.Output()
			if err != nil {
				return nil, fmt.Errorf("go list -export %s: %v", path, err)
			}
			file = strings.TrimSpace(string(out))
			if file == "" {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			onDemandMu.Lock()
			onDemandCache[path] = file
			onDemandMu.Unlock()
		}
		return openExport(file)
	}
}

func openExport(file string) (io.ReadCloser, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	return struct {
		io.Reader
		io.Closer
	}{bufio.NewReader(f), f}, nil
}

// ModuleRoot returns the directory containing go.mod for dir.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not in a module (go env GOMOD empty)")
	}
	return filepath.Dir(gomod), nil
}
