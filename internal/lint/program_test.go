package lint

import (
	"path/filepath"
	"sort"
	"testing"
)

// loadEngineProgram loads the two-package engine fixture and builds its
// call graph.
func loadEngineProgram(t *testing.T) *Program {
	t.Helper()
	pkgs, err := LoadDirProgram(filepath.Join("testdata", "prog", "engine"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			t.Fatalf("type error in %s: %v", pkg.ImportPath, e)
		}
	}
	return NewProgram(pkgs)
}

// edgesTo returns n's outgoing edges landing on callee key.
func edgesTo(n *FuncNode, key string) []CallEdge {
	var out []CallEdge
	for _, e := range n.Out {
		if e.Callee.Key == key {
			out = append(out, e)
		}
	}
	return out
}

func mustNode(t *testing.T, prog *Program, key string) *FuncNode {
	t.Helper()
	n := prog.Funcs[key]
	if n == nil {
		var keys []string
		for k := range prog.Funcs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		t.Fatalf("no FuncNode for %q; have %v", key, keys)
	}
	return n
}

// TestEngineFuncKeys pins the cross-package key scheme: pkgpath.Name
// for functions, pkgpath.Recv.Name for methods.
func TestEngineFuncKeys(t *testing.T) {
	prog := loadEngineProgram(t)
	for _, key := range []string{
		"alpha.Helper",
		"alpha.Direct",
		"alpha.Recurse",
		"alpha.Dispatch",
		"alpha.Impl.Run",
		"alpha.Hot",
		"beta.Other.Run",
		"beta.Cross",
	} {
		mustNode(t, prog, key)
	}
}

func TestEngineNodesDeterministicOrder(t *testing.T) {
	prog := loadEngineProgram(t)
	nodes := prog.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].Key >= nodes[i].Key {
			t.Fatalf("Nodes() not strictly key-sorted: %q before %q", nodes[i-1].Key, nodes[i].Key)
		}
	}
}

func TestEngineStaticEdge(t *testing.T) {
	prog := loadEngineProgram(t)
	es := edgesTo(mustNode(t, prog, "alpha.Direct"), "alpha.Helper")
	if len(es) != 1 || es[0].Kind != CallStatic {
		t.Fatalf("Direct→Helper edges = %+v, want one CallStatic", es)
	}
}

func TestEngineRecursionEdge(t *testing.T) {
	prog := loadEngineProgram(t)
	es := edgesTo(mustNode(t, prog, "alpha.Recurse"), "alpha.Recurse")
	if len(es) != 1 || es[0].Kind != CallStatic {
		t.Fatalf("Recurse self-edges = %+v, want one CallStatic", es)
	}
}

func TestEngineCrossPackageEdge(t *testing.T) {
	prog := loadEngineProgram(t)
	es := edgesTo(mustNode(t, prog, "beta.Cross"), "alpha.Helper")
	if len(es) != 1 || es[0].Kind != CallStatic {
		t.Fatalf("Cross→Helper edges = %+v, want one CallStatic", es)
	}
}

// TestEngineDynamicDispatch: an interface call fans out to every
// compatible concrete method in the module, across packages.
func TestEngineDynamicDispatch(t *testing.T) {
	prog := loadEngineProgram(t)
	n := mustNode(t, prog, "alpha.Dispatch")
	for _, key := range []string{"alpha.Impl.Run", "beta.Other.Run"} {
		es := edgesTo(n, key)
		if len(es) != 1 || es[0].Kind != CallDynamic {
			t.Errorf("Dispatch→%s edges = %+v, want one CallDynamic", key, es)
		}
	}
}

// TestEngineMethodValueRef: i.Run referenced without call position is a
// CallRef edge — the method may run later through the returned value.
func TestEngineMethodValueRef(t *testing.T) {
	prog := loadEngineProgram(t)
	es := edgesTo(mustNode(t, prog, "alpha.Bind"), "alpha.Impl.Run")
	if len(es) != 1 || es[0].Kind != CallRef {
		t.Fatalf("Bind→Impl.Run edges = %+v, want one CallRef", es)
	}
}

func TestEngineSpawnFlags(t *testing.T) {
	prog := loadEngineProgram(t)
	n := mustNode(t, prog, "alpha.Spawn")
	goEdges := edgesTo(n, "alpha.Direct")
	if len(goEdges) != 1 || !goEdges[0].Go || goEdges[0].Deferred {
		t.Errorf("Spawn→Direct = %+v, want one edge with Go set", goEdges)
	}
	defEdges := edgesTo(n, "alpha.Helper")
	if len(defEdges) != 1 || !defEdges[0].Deferred || defEdges[0].Go {
		t.Errorf("Spawn→Helper = %+v, want one edge with Deferred set", defEdges)
	}
}

// TestEngineUnreachableCall: the CFG proves the call after Dead's
// return unreachable, and unreachableIn answers through the memoized
// graph.
func TestEngineUnreachableCall(t *testing.T) {
	prog := loadEngineProgram(t)
	n := mustNode(t, prog, "alpha.Dead")
	es := edgesTo(n, "alpha.Helper")
	if len(es) != 1 {
		t.Fatalf("Dead→Helper edges = %+v, want exactly one", es)
	}
	if !prog.unreachableIn(n, es[0].Site.Pos()) {
		t.Error("call after return not reported unreachable")
	}
	if prog.unreachableIn(n, n.Decl.Body.List[0].Pos()) {
		t.Error("first statement wrongly reported unreachable")
	}
}

func TestEngineHotRoots(t *testing.T) {
	prog := loadEngineProgram(t)
	roots := prog.HotRoots()
	if len(roots) != 1 || roots[0].Key != "alpha.Hot" {
		var keys []string
		for _, r := range roots {
			keys = append(keys, r.Key)
		}
		t.Fatalf("HotRoots = %v, want [alpha.Hot]", keys)
	}
	if len(prog.hotOrphans) != 0 {
		t.Errorf("engine fixture has %d orphan //lint:hot directives, want 0", len(prog.hotOrphans))
	}
}

// TestEngineSuppressedAt: the program indexes every package's ignore
// directives so interprocedural analyzers can keep suppressed sources
// out of their summaries.
func TestEngineSuppressedAt(t *testing.T) {
	prog := loadEngineProgram(t)
	dirs := prog.ignores["alpha/alpha.go"]
	if len(dirs) != 1 {
		t.Fatalf("ignores[alpha/alpha.go] = %+v, want one directive", dirs)
	}
	line := dirs[0].line
	if !prog.suppressedAt("alpha/alpha.go", line, "determinism") {
		t.Error("same-line suppression not honored")
	}
	if !prog.suppressedAt("alpha/alpha.go", line+1, "determinism") {
		t.Error("line-above suppression not honored")
	}
	if prog.suppressedAt("alpha/alpha.go", line, "floateq") {
		t.Error("directive suppresses a rule it does not name")
	}
	if prog.suppressedAt("beta/beta.go", line, "determinism") {
		t.Error("directive leaks into another file")
	}
}
