package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errDiscardPkgs are the persistence and transport packages where a
// dropped Write/Close/Encode error means silent data loss: a short write
// to an .npy shard or a swallowed frame-encode error corrupts campaign
// state without any test noticing.
var errDiscardPkgs = map[string]bool{
	"cluster": true,
	"npy":     true,
	"dataset": true,
	"stream":  true,
	// service writes campaign checkpoints and HTTP responses; a dropped
	// write error there is a silently lost generation or a half-sent
	// frontier.
	"service": true,
	// wire is the binary framing layer itself; a swallowed encode or
	// short-write error there desynchronizes the stream for every
	// message that follows.
	"wire": true,
	// mux is the session layer over wire; a dropped flush or frame
	// error there silently stalls every stream on the connection.
	"mux": true,
}

// ErrDiscard flags discarded errors on I/O, network and encode paths in
// the persistence-critical packages: bare-call statements whose error
// result vanishes, and `_ =` assignments of such errors.  Deferred
// calls are exempt (best-effort cleanup is the defer idiom); genuinely
// best-effort discards take a //lint:ignore with the reason.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "no dropped errors on io/net/encode paths in cluster, npy, dataset, stream",
	Run:  runErrDiscard,
}

// ioMethodNames are method names whose error result reports I/O failure.
var ioMethodNames = map[string]bool{
	"Close": true, "CloseWrite": true, "Write": true, "WriteString": true,
	"WriteByte": true, "WriteRune": true, "Flush": true, "Sync": true,
	"Encode": true, "Decode": true, "Shutdown": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// ioPkgPaths are packages all of whose error-returning functions count.
var ioPkgPaths = map[string]bool{
	"io": true, "bufio": true, "os": true,
	"encoding/json": true, "encoding/binary": true, "encoding/gob": true,
}

// ioFuncPrefixes match project-local helpers on the wire/shard paths
// (writeMessage, readFrame, sendResult, …).
var ioFuncPrefixes = []string{"write", "read", "send", "recv", "flush", "encode", "decode", "marshal", "unmarshal"}

func runErrDiscard(pass *Pass) {
	if !errDiscardPkgs[basePkgName(pass)] {
		return
	}
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		if inTestFile(pass, n) {
			return
		}
		// The defer exemption covers the whole deferred subtree, so a
		// `defer func() { _ = c.Close() }()` cleanup closure is as
		// idiomatic as `defer c.Close()` itself.
		for _, anc := range stack {
			if _, ok := anc.(*ast.DeferStmt); ok {
				return
			}
		}
		switch node := n.(type) {
		case *ast.ExprStmt:
			call, ok := node.X.(*ast.CallExpr)
			if !ok || !returnsError(pass.Info, call) {
				return
			}
			if name, ok := ioCallee(pass.Info, call); ok {
				pass.Reportf(node.Pos(), "error from %s dropped by bare call: a failed write/close here is silent data loss; handle it or //lint:ignore with the reason it is best-effort", name)
			}
		case *ast.AssignStmt:
			checkBlankErrAssign(pass, node)
		}
	})
}

// checkBlankErrAssign flags assignments whose error results all land in
// the blank identifier (`_ = conn.Close()`, `n, _ := w.Write(p)`).
func checkBlankErrAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := ioCallee(pass.Info, call)
	if !ok {
		return
	}
	sig := pass.Info.TypeOf(call)
	if sig == nil {
		return
	}
	errIdx := errorResultIndices(sig)
	if len(errIdx) == 0 {
		return
	}
	for _, i := range errIdx {
		if i >= len(as.Lhs) {
			return
		}
		id, isIdent := as.Lhs[i].(*ast.Ident)
		if !isIdent || id.Name != "_" {
			return // at least one error result is bound
		}
	}
	pass.Reportf(as.Pos(), "error from %s assigned to _: a failed write/close here is silent data loss; handle it or //lint:ignore with the reason it is best-effort", name)
}

// errorResultIndices returns the result positions of type error.
func errorResultIndices(t types.Type) []int {
	var idx []int
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				idx = append(idx, i)
			}
		}
	default:
		if isErrorType(rt) {
			idx = append(idx, 0)
		}
	}
	return idx
}

func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	return t != nil && len(errorResultIndices(t)) > 0
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// ioCallee classifies the callee; it returns a printable name and
// whether the call sits on an I/O, network or encode path.
func ioCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if path, name := pkgCall(info, fun); path != "" {
			if ioPkgPaths[path] {
				return path + "." + name, true
			}
			return "", false
		}
		if ioMethodNames[fun.Sel.Name] {
			return types.ExprString(fun.X) + "." + fun.Sel.Name, true
		}
	case *ast.Ident:
		lower := strings.ToLower(fun.Name)
		for _, p := range ioFuncPrefixes {
			if strings.HasPrefix(lower, p) {
				return fun.Name, true
			}
		}
	}
	return "", false
}
