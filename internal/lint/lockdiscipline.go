package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline enforces two lock invariants go vet does not fully
// cover:
//
//   - sync.Mutex / sync.RWMutex / sync.WaitGroup passed or returned by
//     value (a copied lock guards nothing; vet's copylocks catches many
//     copies but not signature-level ones in all positions);
//   - a Lock()/RLock() whose matching Unlock is neither deferred nor
//     reached before a return statement — an early return on that path
//     leaks the lock and deadlocks the next caller.
//
// Deliberate unlock-before-blocking patterns (drop the lock, then wait)
// pass as long as no return sits between Lock and the first matching
// explicit Unlock; genuinely intentional leaks (lock handoff) take a
// //lint:ignore with the reason.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no by-value locks in signatures, no returns while a lock is held without defer",
	Run:  runLockDiscipline,
}

var syncValueTypes = []string{"Mutex", "RWMutex", "WaitGroup"}

func runLockDiscipline(pass *Pass) {
	inspectWithStack(pass.Files, func(n ast.Node, _ []ast.Node) {
		switch node := n.(type) {
		case *ast.FuncDecl:
			checkSignature(pass, node.Type)
			if node.Body != nil {
				checkLockPaths(pass, node.Body)
			}
		case *ast.FuncLit:
			checkSignature(pass, node.Type)
			checkLockPaths(pass, node.Body)
		}
	})
}

// checkSignature flags by-value sync.Mutex/RWMutex/WaitGroup parameters
// and results.
func checkSignature(pass *Pass, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			for _, name := range syncValueTypes {
				if isNamedType(t, "sync", name) {
					pass.Reportf(field.Pos(), "sync.%s %s by value: the copy guards nothing; pass *sync.%s", name, kind, name)
				}
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// lockCall describes one X.Lock()/X.RLock() statement.
type lockCall struct {
	pos    token.Pos
	key    string // printed receiver expression, e.g. "s.mu"
	unlock string // matching unlock method name
}

// checkLockPaths analyzes one function body (nested function literals
// are analyzed separately when the walker reaches them).
func checkLockPaths(pass *Pass, body *ast.BlockStmt) {
	var (
		locks    []lockCall
		unlocks  = map[string][]token.Pos{} // key+name -> explicit unlock positions
		deferred = map[string]bool{}        // key+name -> deferred
		returns  []token.Pos
	)
	record := func(n ast.Node, inDefer bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isSyncLockerRecv(pass, sel.X) {
			return
		}
		key := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Lock":
			if !inDefer {
				locks = append(locks, lockCall{call.Pos(), key, "Unlock"})
			}
		case "RLock":
			if !inDefer {
				locks = append(locks, lockCall{call.Pos(), key, "RUnlock"})
			}
		case "Unlock", "RUnlock":
			if inDefer {
				deferred[key+"."+sel.Sel.Name] = true
			} else {
				unlocks[key+"."+sel.Sel.Name] = append(unlocks[key+"."+sel.Sel.Name], call.Pos())
			}
		}
	}
	walkSameFunc(body, func(n ast.Node) {
		switch node := n.(type) {
		case *ast.DeferStmt:
			record(node.Call, true)
			// defer func() { …mu.Unlock()… }() also releases on return.
			if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					record(m, true)
					return true
				})
			}
		case *ast.ExprStmt:
			record(node.X, false)
		case *ast.ReturnStmt:
			returns = append(returns, node.Pos())
		}
	})
	for _, l := range locks {
		if deferred[l.key+"."+l.unlock] {
			continue
		}
		// The window the lock is provably held: from Lock to the first
		// explicit matching Unlock after it (or end of function).
		end := body.End()
		for _, u := range unlocks[l.key+"."+l.unlock] {
			if u > l.pos && u < end {
				end = u
			}
		}
		for _, r := range returns {
			if r > l.pos && r < end {
				pass.Reportf(l.pos, "%s held across a return at line %d with no defer %s.%s(): the early-return path leaks the lock", l.key, pass.Fset.Position(r).Line, l.key, l.unlock)
				break
			}
		}
	}
}

// walkSameFunc visits body without descending into nested function
// literals (their bodies are separate lock scopes).
func walkSameFunc(body *ast.BlockStmt, fn func(n ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		fn(n)
		return true
	})
}

// isSyncLockerRecv reports whether e's type is sync.Mutex or
// sync.RWMutex (directly or through a pointer).
func isSyncLockerRecv(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}
